# CMake generated Testfile for 
# Source directory: /root/repo/examples
# Build directory: /root/repo/build/examples
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(example_quickstart "/root/repo/build/examples/quickstart" "--nranks" "3" "--count" "20")
set_tests_properties(example_quickstart PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;16;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_wavefront_lcs "/root/repo/build/examples/wavefront_lcs" "--n" "256" "--bs" "32")
set_tests_properties(example_wavefront_lcs PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;17;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_cholesky_demo "/root/repo/build/examples/cholesky_demo" "--n" "128" "--bs" "32")
set_tests_properties(example_cholesky_demo PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;18;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_fw_paths_demo "/root/repo/build/examples/fw_paths_demo" "--vertices" "64" "--bs" "16")
set_tests_properties(example_fw_paths_demo PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;19;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_bspmm_demo "/root/repo/build/examples/bspmm_demo" "--natoms" "40")
set_tests_properties(example_bspmm_demo PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;20;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_mra_demo "/root/repo/build/examples/mra_demo" "--k" "6" "--funcs" "3" "--tol" "1e-6")
set_tests_properties(example_mra_demo PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;21;add_test;/root/repo/examples/CMakeLists.txt;0;")
