# Empty dependencies file for cholesky_demo.
# This may be replaced when dependencies are built.
