file(REMOVE_RECURSE
  "CMakeFiles/cholesky_demo.dir/cholesky_demo.cpp.o"
  "CMakeFiles/cholesky_demo.dir/cholesky_demo.cpp.o.d"
  "cholesky_demo"
  "cholesky_demo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cholesky_demo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
