# Empty dependencies file for mra_demo.
# This may be replaced when dependencies are built.
