file(REMOVE_RECURSE
  "CMakeFiles/bspmm_demo.dir/bspmm_demo.cpp.o"
  "CMakeFiles/bspmm_demo.dir/bspmm_demo.cpp.o.d"
  "bspmm_demo"
  "bspmm_demo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bspmm_demo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
