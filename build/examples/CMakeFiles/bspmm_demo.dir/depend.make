# Empty dependencies file for bspmm_demo.
# This may be replaced when dependencies are built.
