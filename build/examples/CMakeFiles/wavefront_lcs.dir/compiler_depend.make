# Empty compiler generated dependencies file for wavefront_lcs.
# This may be replaced when dependencies are built.
