file(REMOVE_RECURSE
  "CMakeFiles/wavefront_lcs.dir/wavefront_lcs.cpp.o"
  "CMakeFiles/wavefront_lcs.dir/wavefront_lcs.cpp.o.d"
  "wavefront_lcs"
  "wavefront_lcs.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wavefront_lcs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
