file(REMOVE_RECURSE
  "CMakeFiles/fw_paths_demo.dir/fw_paths_demo.cpp.o"
  "CMakeFiles/fw_paths_demo.dir/fw_paths_demo.cpp.o.d"
  "fw_paths_demo"
  "fw_paths_demo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fw_paths_demo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
