# Empty dependencies file for fw_paths_demo.
# This may be replaced when dependencies are built.
