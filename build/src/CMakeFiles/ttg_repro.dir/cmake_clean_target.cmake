file(REMOVE_RECURSE
  "libttg_repro.a"
)
