# Empty dependencies file for ttg_repro.
# This may be replaced when dependencies are built.
