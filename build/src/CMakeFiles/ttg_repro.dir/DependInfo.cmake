
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/apps/bspmm/bspmm_ttg.cpp" "src/CMakeFiles/ttg_repro.dir/apps/bspmm/bspmm_ttg.cpp.o" "gcc" "src/CMakeFiles/ttg_repro.dir/apps/bspmm/bspmm_ttg.cpp.o.d"
  "/root/repo/src/apps/cholesky/cholesky_ttg.cpp" "src/CMakeFiles/ttg_repro.dir/apps/cholesky/cholesky_ttg.cpp.o" "gcc" "src/CMakeFiles/ttg_repro.dir/apps/cholesky/cholesky_ttg.cpp.o.d"
  "/root/repo/src/apps/fw_apsp/fw_ttg.cpp" "src/CMakeFiles/ttg_repro.dir/apps/fw_apsp/fw_ttg.cpp.o" "gcc" "src/CMakeFiles/ttg_repro.dir/apps/fw_apsp/fw_ttg.cpp.o.d"
  "/root/repo/src/apps/mra/mra_ttg.cpp" "src/CMakeFiles/ttg_repro.dir/apps/mra/mra_ttg.cpp.o" "gcc" "src/CMakeFiles/ttg_repro.dir/apps/mra/mra_ttg.cpp.o.d"
  "/root/repo/src/baselines/bsp_cholesky.cpp" "src/CMakeFiles/ttg_repro.dir/baselines/bsp_cholesky.cpp.o" "gcc" "src/CMakeFiles/ttg_repro.dir/baselines/bsp_cholesky.cpp.o.d"
  "/root/repo/src/baselines/chameleon_like.cpp" "src/CMakeFiles/ttg_repro.dir/baselines/chameleon_like.cpp.o" "gcc" "src/CMakeFiles/ttg_repro.dir/baselines/chameleon_like.cpp.o.d"
  "/root/repo/src/baselines/dbcsr_like.cpp" "src/CMakeFiles/ttg_repro.dir/baselines/dbcsr_like.cpp.o" "gcc" "src/CMakeFiles/ttg_repro.dir/baselines/dbcsr_like.cpp.o.d"
  "/root/repo/src/baselines/dplasma_like.cpp" "src/CMakeFiles/ttg_repro.dir/baselines/dplasma_like.cpp.o" "gcc" "src/CMakeFiles/ttg_repro.dir/baselines/dplasma_like.cpp.o.d"
  "/root/repo/src/baselines/fw_mpi_omp.cpp" "src/CMakeFiles/ttg_repro.dir/baselines/fw_mpi_omp.cpp.o" "gcc" "src/CMakeFiles/ttg_repro.dir/baselines/fw_mpi_omp.cpp.o.d"
  "/root/repo/src/baselines/madness_native_mra.cpp" "src/CMakeFiles/ttg_repro.dir/baselines/madness_native_mra.cpp.o" "gcc" "src/CMakeFiles/ttg_repro.dir/baselines/madness_native_mra.cpp.o.d"
  "/root/repo/src/graph/fw_kernels.cpp" "src/CMakeFiles/ttg_repro.dir/graph/fw_kernels.cpp.o" "gcc" "src/CMakeFiles/ttg_repro.dir/graph/fw_kernels.cpp.o.d"
  "/root/repo/src/linalg/kernels.cpp" "src/CMakeFiles/ttg_repro.dir/linalg/kernels.cpp.o" "gcc" "src/CMakeFiles/ttg_repro.dir/linalg/kernels.cpp.o.d"
  "/root/repo/src/linalg/matrix_gen.cpp" "src/CMakeFiles/ttg_repro.dir/linalg/matrix_gen.cpp.o" "gcc" "src/CMakeFiles/ttg_repro.dir/linalg/matrix_gen.cpp.o.d"
  "/root/repo/src/linalg/tile.cpp" "src/CMakeFiles/ttg_repro.dir/linalg/tile.cpp.o" "gcc" "src/CMakeFiles/ttg_repro.dir/linalg/tile.cpp.o.d"
  "/root/repo/src/mra/function_tree.cpp" "src/CMakeFiles/ttg_repro.dir/mra/function_tree.cpp.o" "gcc" "src/CMakeFiles/ttg_repro.dir/mra/function_tree.cpp.o.d"
  "/root/repo/src/mra/legendre.cpp" "src/CMakeFiles/ttg_repro.dir/mra/legendre.cpp.o" "gcc" "src/CMakeFiles/ttg_repro.dir/mra/legendre.cpp.o.d"
  "/root/repo/src/mra/twoscale.cpp" "src/CMakeFiles/ttg_repro.dir/mra/twoscale.cpp.o" "gcc" "src/CMakeFiles/ttg_repro.dir/mra/twoscale.cpp.o.d"
  "/root/repo/src/net/network.cpp" "src/CMakeFiles/ttg_repro.dir/net/network.cpp.o" "gcc" "src/CMakeFiles/ttg_repro.dir/net/network.cpp.o.d"
  "/root/repo/src/runtime/bsp.cpp" "src/CMakeFiles/ttg_repro.dir/runtime/bsp.cpp.o" "gcc" "src/CMakeFiles/ttg_repro.dir/runtime/bsp.cpp.o.d"
  "/root/repo/src/runtime/comm_madness.cpp" "src/CMakeFiles/ttg_repro.dir/runtime/comm_madness.cpp.o" "gcc" "src/CMakeFiles/ttg_repro.dir/runtime/comm_madness.cpp.o.d"
  "/root/repo/src/runtime/comm_parsec.cpp" "src/CMakeFiles/ttg_repro.dir/runtime/comm_parsec.cpp.o" "gcc" "src/CMakeFiles/ttg_repro.dir/runtime/comm_parsec.cpp.o.d"
  "/root/repo/src/runtime/scheduler.cpp" "src/CMakeFiles/ttg_repro.dir/runtime/scheduler.cpp.o" "gcc" "src/CMakeFiles/ttg_repro.dir/runtime/scheduler.cpp.o.d"
  "/root/repo/src/runtime/world.cpp" "src/CMakeFiles/ttg_repro.dir/runtime/world.cpp.o" "gcc" "src/CMakeFiles/ttg_repro.dir/runtime/world.cpp.o.d"
  "/root/repo/src/sim/engine.cpp" "src/CMakeFiles/ttg_repro.dir/sim/engine.cpp.o" "gcc" "src/CMakeFiles/ttg_repro.dir/sim/engine.cpp.o.d"
  "/root/repo/src/sim/machine.cpp" "src/CMakeFiles/ttg_repro.dir/sim/machine.cpp.o" "gcc" "src/CMakeFiles/ttg_repro.dir/sim/machine.cpp.o.d"
  "/root/repo/src/sim/resource.cpp" "src/CMakeFiles/ttg_repro.dir/sim/resource.cpp.o" "gcc" "src/CMakeFiles/ttg_repro.dir/sim/resource.cpp.o.d"
  "/root/repo/src/sparse/block_sparse.cpp" "src/CMakeFiles/ttg_repro.dir/sparse/block_sparse.cpp.o" "gcc" "src/CMakeFiles/ttg_repro.dir/sparse/block_sparse.cpp.o.d"
  "/root/repo/src/sparse/yukawa_gen.cpp" "src/CMakeFiles/ttg_repro.dir/sparse/yukawa_gen.cpp.o" "gcc" "src/CMakeFiles/ttg_repro.dir/sparse/yukawa_gen.cpp.o.d"
  "/root/repo/src/support/cli.cpp" "src/CMakeFiles/ttg_repro.dir/support/cli.cpp.o" "gcc" "src/CMakeFiles/ttg_repro.dir/support/cli.cpp.o.d"
  "/root/repo/src/support/rng.cpp" "src/CMakeFiles/ttg_repro.dir/support/rng.cpp.o" "gcc" "src/CMakeFiles/ttg_repro.dir/support/rng.cpp.o.d"
  "/root/repo/src/support/table.cpp" "src/CMakeFiles/ttg_repro.dir/support/table.cpp.o" "gcc" "src/CMakeFiles/ttg_repro.dir/support/table.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
