# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/test_support[1]_include.cmake")
include("/root/repo/build/tests/test_sim[1]_include.cmake")
include("/root/repo/build/tests/test_serialization[1]_include.cmake")
include("/root/repo/build/tests/test_network[1]_include.cmake")
include("/root/repo/build/tests/test_runtime[1]_include.cmake")
include("/root/repo/build/tests/test_ttg_core[1]_include.cmake")
include("/root/repo/build/tests/test_linalg[1]_include.cmake")
include("/root/repo/build/tests/test_cholesky[1]_include.cmake")
include("/root/repo/build/tests/test_fw[1]_include.cmake")
include("/root/repo/build/tests/test_bspmm[1]_include.cmake")
include("/root/repo/build/tests/test_mra[1]_include.cmake")
include("/root/repo/build/tests/test_integration[1]_include.cmake")
include("/root/repo/build/tests/test_properties[1]_include.cmake")
