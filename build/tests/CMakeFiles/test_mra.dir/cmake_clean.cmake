file(REMOVE_RECURSE
  "CMakeFiles/test_mra.dir/test_mra.cpp.o"
  "CMakeFiles/test_mra.dir/test_mra.cpp.o.d"
  "test_mra"
  "test_mra.pdb"
  "test_mra[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_mra.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
