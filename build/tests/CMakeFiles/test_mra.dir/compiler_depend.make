# Empty compiler generated dependencies file for test_mra.
# This may be replaced when dependencies are built.
