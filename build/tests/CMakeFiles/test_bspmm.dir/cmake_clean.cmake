file(REMOVE_RECURSE
  "CMakeFiles/test_bspmm.dir/test_bspmm.cpp.o"
  "CMakeFiles/test_bspmm.dir/test_bspmm.cpp.o.d"
  "test_bspmm"
  "test_bspmm.pdb"
  "test_bspmm[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_bspmm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
