# Empty compiler generated dependencies file for test_bspmm.
# This may be replaced when dependencies are built.
