# Empty dependencies file for test_ttg_core.
# This may be replaced when dependencies are built.
