file(REMOVE_RECURSE
  "CMakeFiles/test_ttg_core.dir/test_ttg_core.cpp.o"
  "CMakeFiles/test_ttg_core.dir/test_ttg_core.cpp.o.d"
  "test_ttg_core"
  "test_ttg_core.pdb"
  "test_ttg_core[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_ttg_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
