# Empty dependencies file for test_fw.
# This may be replaced when dependencies are built.
