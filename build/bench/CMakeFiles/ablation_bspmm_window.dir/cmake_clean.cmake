file(REMOVE_RECURSE
  "CMakeFiles/ablation_bspmm_window.dir/ablation_bspmm_window.cpp.o"
  "CMakeFiles/ablation_bspmm_window.dir/ablation_bspmm_window.cpp.o.d"
  "ablation_bspmm_window"
  "ablation_bspmm_window.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_bspmm_window.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
