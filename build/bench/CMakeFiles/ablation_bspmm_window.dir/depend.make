# Empty dependencies file for ablation_bspmm_window.
# This may be replaced when dependencies are built.
