# Empty dependencies file for fig9_fw_seawulf.
# This may be replaced when dependencies are built.
