file(REMOVE_RECURSE
  "CMakeFiles/fig9_fw_seawulf.dir/fig9_fw_seawulf.cpp.o"
  "CMakeFiles/fig9_fw_seawulf.dir/fig9_fw_seawulf.cpp.o.d"
  "fig9_fw_seawulf"
  "fig9_fw_seawulf.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig9_fw_seawulf.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
