file(REMOVE_RECURSE
  "CMakeFiles/fig13a_mra_seawulf.dir/fig13a_mra_seawulf.cpp.o"
  "CMakeFiles/fig13a_mra_seawulf.dir/fig13a_mra_seawulf.cpp.o.d"
  "fig13a_mra_seawulf"
  "fig13a_mra_seawulf.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig13a_mra_seawulf.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
