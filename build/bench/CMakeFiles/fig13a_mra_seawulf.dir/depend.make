# Empty dependencies file for fig13a_mra_seawulf.
# This may be replaced when dependencies are built.
