file(REMOVE_RECURSE
  "CMakeFiles/fig8_fw_hawk.dir/fig8_fw_hawk.cpp.o"
  "CMakeFiles/fig8_fw_hawk.dir/fig8_fw_hawk.cpp.o.d"
  "fig8_fw_hawk"
  "fig8_fw_hawk.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig8_fw_hawk.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
