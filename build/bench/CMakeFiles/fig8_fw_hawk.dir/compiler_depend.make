# Empty compiler generated dependencies file for fig8_fw_hawk.
# This may be replaced when dependencies are built.
