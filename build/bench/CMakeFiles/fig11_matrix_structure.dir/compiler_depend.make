# Empty compiler generated dependencies file for fig11_matrix_structure.
# This may be replaced when dependencies are built.
