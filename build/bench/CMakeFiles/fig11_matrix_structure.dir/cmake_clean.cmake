file(REMOVE_RECURSE
  "CMakeFiles/fig11_matrix_structure.dir/fig11_matrix_structure.cpp.o"
  "CMakeFiles/fig11_matrix_structure.dir/fig11_matrix_structure.cpp.o.d"
  "fig11_matrix_structure"
  "fig11_matrix_structure.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig11_matrix_structure.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
