file(REMOVE_RECURSE
  "CMakeFiles/fig6_potrf_problem.dir/fig6_potrf_problem.cpp.o"
  "CMakeFiles/fig6_potrf_problem.dir/fig6_potrf_problem.cpp.o.d"
  "fig6_potrf_problem"
  "fig6_potrf_problem.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig6_potrf_problem.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
