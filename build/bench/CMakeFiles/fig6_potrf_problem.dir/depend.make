# Empty dependencies file for fig6_potrf_problem.
# This may be replaced when dependencies are built.
