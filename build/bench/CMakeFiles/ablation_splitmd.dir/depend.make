# Empty dependencies file for ablation_splitmd.
# This may be replaced when dependencies are built.
