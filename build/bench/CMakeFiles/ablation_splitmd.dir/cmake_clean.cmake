file(REMOVE_RECURSE
  "CMakeFiles/ablation_splitmd.dir/ablation_splitmd.cpp.o"
  "CMakeFiles/ablation_splitmd.dir/ablation_splitmd.cpp.o.d"
  "ablation_splitmd"
  "ablation_splitmd.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_splitmd.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
