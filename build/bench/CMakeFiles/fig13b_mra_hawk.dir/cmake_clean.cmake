file(REMOVE_RECURSE
  "CMakeFiles/fig13b_mra_hawk.dir/fig13b_mra_hawk.cpp.o"
  "CMakeFiles/fig13b_mra_hawk.dir/fig13b_mra_hawk.cpp.o.d"
  "fig13b_mra_hawk"
  "fig13b_mra_hawk.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig13b_mra_hawk.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
