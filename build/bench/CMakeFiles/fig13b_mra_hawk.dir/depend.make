# Empty dependencies file for fig13b_mra_hawk.
# This may be replaced when dependencies are built.
