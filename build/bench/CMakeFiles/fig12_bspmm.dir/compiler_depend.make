# Empty compiler generated dependencies file for fig12_bspmm.
# This may be replaced when dependencies are built.
