file(REMOVE_RECURSE
  "CMakeFiles/fig12_bspmm.dir/fig12_bspmm.cpp.o"
  "CMakeFiles/fig12_bspmm.dir/fig12_bspmm.cpp.o.d"
  "fig12_bspmm"
  "fig12_bspmm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig12_bspmm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
