# Empty compiler generated dependencies file for fig5_potrf_weak.
# This may be replaced when dependencies are built.
