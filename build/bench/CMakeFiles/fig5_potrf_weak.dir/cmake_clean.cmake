file(REMOVE_RECURSE
  "CMakeFiles/fig5_potrf_weak.dir/fig5_potrf_weak.cpp.o"
  "CMakeFiles/fig5_potrf_weak.dir/fig5_potrf_weak.cpp.o.d"
  "fig5_potrf_weak"
  "fig5_potrf_weak.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig5_potrf_weak.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
