#!/usr/bin/env bash
# Regenerate every checked-in perf baseline from a Release build.
#
# Run this after an *intentional* performance or counting change, review the
# diff (the simulator is deterministic, so every changed field is a real
# behavioral change), and commit the result. CI gates each bench's fresh
# JSON against these files via ci/check_perf.py.
#
# Baselines that carry a top-level "schema" object (what check_perf gates:
# key/exact/tolerance/floor fields) keep it: the bench tools emit plain
# result JSON, and this script re-attaches the existing baseline's schema to
# the fresh output. Baselines without a schema are replaced verbatim and are
# gated with check_perf's legacy defaults.
#
# Usage: ci/refresh_baselines.sh [build-dir]   (default: build)

set -euo pipefail

cd "$(dirname "$0")/.."
BUILD="${1:-build}"

cmake -B "$BUILD" -S . -DCMAKE_BUILD_TYPE=Release
cmake --build "$BUILD" -j "$(nproc)" \
  --target fig5_potrf_weak fig12_bspmm serve_jobs scale_engine ablation_device

TMP="$(mktemp -d)"
trap 'rm -rf "$TMP"' EXIT

# merge FRESH BASELINE: copy the old baseline's schema (if any) onto the
# fresh bench output, then replace the baseline.
merge() {
  python3 - "$1" "$2" <<'EOF'
import json, sys
fresh_path, base_path = sys.argv[1], sys.argv[2]
fresh = json.load(open(fresh_path))
try:
    schema = json.load(open(base_path)).get("schema")
except FileNotFoundError:
    schema = None
if schema is not None:
    # Keep key order stable: config scalars, schema, points.
    out = {k: v for k, v in fresh.items() if k != "points"}
    out["schema"] = schema
    out["points"] = fresh["points"]
    with open(base_path, "w") as f:
        json.dump(out, f, indent=1)
        f.write("\n")
else:
    with open(base_path, "w") as f:
        f.write(open(fresh_path).read())
print(f"refreshed {base_path}")
EOF
}

"./$BUILD/bench/fig5_potrf_weak" --per-node 2048 --bs 256 --max-nodes 8 \
  --json "$TMP/fig5.json"
merge "$TMP/fig5.json" ci/BENCH_baseline.json

"./$BUILD/bench/fig12_bspmm" --natoms 180 --max-nodes 32 \
  --json "$TMP/bspmm.json"
merge "$TMP/bspmm.json" ci/BENCH_bspmm_baseline.json

"./$BUILD/bench/serve_jobs" --jobs 24 --max-nodes 8 --max-concurrent 4 \
  --mode open --arrival 0.02 --seed 1 --json "$TMP/jobs.json"
merge "$TMP/jobs.json" ci/BENCH_jobs_baseline.json

"./$BUILD/bench/scale_engine" --json "$TMP/scale.json"
merge "$TMP/scale.json" ci/BENCH_scale_baseline.json

"./$BUILD/bench/ablation_device" --json "$TMP/device.json"
merge "$TMP/device.json" ci/BENCH_device_baseline.json

echo
echo "All baselines refreshed; self-gating each against its own output:"
python3 ci/check_perf.py "$TMP/fig5.json"  ci/BENCH_baseline.json
python3 ci/check_perf.py "$TMP/bspmm.json" ci/BENCH_bspmm_baseline.json
python3 ci/check_perf.py "$TMP/jobs.json"  ci/BENCH_jobs_baseline.json
python3 ci/check_perf.py "$TMP/scale.json" ci/BENCH_scale_baseline.json
python3 ci/check_perf.py "$TMP/device.json" ci/BENCH_device_baseline.json
echo "Review 'git diff ci/' before committing."
