#!/usr/bin/env python3
"""Gate deterministic benchmark results against a checked-in baseline.

The simulator is a discrete-event model: for a fixed configuration the
makespans and message counts are bit-reproducible, so any drift in them is a
real behavioral change, not measurement noise. Wall-clock rates
(events/sec) are machine-dependent and get wide tolerances or are gated as
ratios measured within one run.

What is gated is declared by the *baseline* via an optional top-level
"schema" object, so one script serves every bench:

    "schema": {
      "key":       ["nodes", "backend"],      # fields identifying a point
      "exact":     ["messages", "makespan"],  # == between current/baseline
      "tolerance": {"makespan": 0.15,         # shorthand: higher is worse
                    "events_per_sec": {"rel": 0.9, "worse": "below"}},
      "floor":     {"speedup": 2.0},          # current value must be >= this
      "relations": [                          # cross-point asserts, current run
        {"metric": "makespan", "op": "<=", "factor": 0.5,
         "left":  {"workload": "potrf", "placement": "gpu-greedy"},
         "right": {"workload": "potrf", "placement": "cpu-only"}}
      ]
    }

  * key       — tuple of point fields forming the point's identity.
  * exact     — compared with ==. Counts, and makespans where bit-identity
                itself is the contract.
  * tolerance — relative drift bounds vs the baseline value. A bare number t
                means the current value may exceed baseline by at most t
                (makespan semantics: higher is worse). The long form picks
                the bad direction: "above" fails when current > base*(1+rel),
                "below" fails when current < base*(1-rel).
  * floor     — absolute lower bounds on the current value, independent of
                the baseline value. For host-independent ratios (e.g. the
                sharded/serial speedup) measured within a single run.
                Points lacking the field are not gated on it.
  * relations — ordering asserts between two points of the *current* run
                (host-independent, like floor): left/right each name one
                point by its full key, and the check is
                left[metric] op factor * right[metric] with op "<" or "<="
                (factor defaults to 1). This is how the device-placement
                baseline pins "gpu-greedy beats cpu-only" structurally
                instead of through drift-prone absolute values.

Baselines without a "schema" use the legacy default (key nodes/backend,
the historical exact-count list, makespan tolerance from --tolerance), so
the fig5 / bspmm / serve_jobs baselines are gated exactly as before.

Every other top-level scalar is a config field the two documents must agree
on. Exit code 0 = within bounds, 1 = regression/mismatch, 2 = usage error.
Only the Python standard library is used. Unit tests: ci/test_check_perf.py.
"""

import argparse
import json
import sys

# Legacy exact-count list, used when the baseline declares no schema.
# serializations/serialize_hits come from the DataCopy layer;
# broadcast_forwards/am_batches/batched_msgs from the collective data plane;
# reduce_forwards/reduce_combines from tree-routed streaming reductions;
# intra/inter_node_hops classify payload-bearing tree hops against the
# topology; jobs/job_messages/job_splitmd/cache_hits/cache_misses from the
# multi-tenant serving bench; steals_local/steals_remote/steal_fail from
# the work-stealing scheduler (zero unless --steal). Fields absent from
# both documents compare equal, so older benches are unaffected.
LEGACY_EXACT = (
    "messages", "splitmd_sends", "serializations", "serialize_hits",
    "broadcast_forwards", "am_batches", "batched_msgs", "reduce_forwards",
    "reduce_combines", "intra_node_hops", "inter_node_hops", "jobs",
    "job_messages", "job_splitmd", "cache_hits", "cache_misses",
    "steals_local", "steals_remote", "steal_fail",
)
LEGACY_KEY = ("nodes", "backend")


def normalize_tolerance(spec):
    """Expand shorthand tolerances to {"rel": float, "worse": "above"|"below"}."""
    out = {}
    for field, rule in spec.items():
        if isinstance(rule, dict):
            rel, worse = rule.get("rel"), rule.get("worse", "above")
        else:
            rel, worse = rule, "above"
        if not isinstance(rel, (int, float)) or rel < 0:
            sys.exit(f"error: bad tolerance for '{field}': {rule!r}")
        if worse not in ("above", "below"):
            sys.exit(f"error: bad 'worse' direction for '{field}': {worse!r}")
        out[field] = {"rel": float(rel), "worse": worse}
    return out


def normalize_relations(spec, key_fields):
    """Validate relation entries and pre-resolve their selectors to keys."""
    out = []
    for rel in spec:
        metric, op = rel.get("metric"), rel.get("op", "<")
        factor = rel.get("factor", 1.0)
        if not isinstance(metric, str) or not metric:
            sys.exit(f"error: relation lacks a 'metric': {rel!r}")
        if op not in ("<", "<="):
            sys.exit(f"error: bad relation op {op!r} (use '<' or '<=')")
        if not isinstance(factor, (int, float)) or factor <= 0:
            sys.exit(f"error: bad relation factor for '{metric}': {factor!r}")
        sides = {}
        for side in ("left", "right"):
            sel = rel.get(side)
            if not isinstance(sel, dict):
                sys.exit(f"error: relation '{metric}' lacks a '{side}' selector")
            try:
                sides[side] = tuple(sel[k] for k in key_fields)
            except KeyError as e:
                sys.exit(f"error: relation '{metric}' {side} selector lacks "
                         f"key field {e}")
        out.append({"metric": metric, "op": op, "factor": float(factor),
                    "left": sides["left"], "right": sides["right"]})
    return out


def load_schema(baseline_doc, default_tolerance):
    raw = baseline_doc.get("schema")
    if raw is None:
        return {
            "key": list(LEGACY_KEY),
            "exact": list(LEGACY_EXACT),
            "tolerance": normalize_tolerance({"makespan": default_tolerance}),
            "floor": {},
            "relations": [],
        }
    schema = {
        "key": list(raw.get("key", LEGACY_KEY)),
        "exact": list(raw.get("exact", ())),
        "tolerance": normalize_tolerance(raw.get("tolerance", {})),
        "floor": dict(raw.get("floor", {})),
    }
    if not schema["key"]:
        sys.exit("error: schema 'key' must name at least one field")
    schema["relations"] = normalize_relations(raw.get("relations", ()),
                                              schema["key"])
    return schema


def load_points(path, key_fields):
    with open(path) as f:
        doc = json.load(f)
    points = {}
    for p in doc.get("points", []):
        try:
            key = tuple(p[k] for k in key_fields)
        except KeyError as e:
            sys.exit(f"error: point in {path} lacks key field {e}")
        if key in points:
            sys.exit(f"error: duplicate point {key} in {path}")
        points[key] = p
    if not points:
        sys.exit(f"error: no points in {path}")
    return doc, points


def check_point(base, cur, schema):
    """Return a list of failure strings for one (baseline, current) pair."""
    problems = []
    for f in schema["exact"]:
        if cur.get(f, 0) != base.get(f, 0):
            problems.append(f"{f} {base.get(f, 0)} -> {cur.get(f, 0)} (exact)")
    for f, rule in schema["tolerance"].items():
        if f not in base or f not in cur:
            continue
        b, c = base[f], cur[f]
        if rule["worse"] == "above" and c > b * (1.0 + rule["rel"]):
            problems.append(
                f"{f} {c:.6g} above {b:.6g} by more than {100 * rule['rel']:.0f}%")
        if rule["worse"] == "below" and c < b * (1.0 - rule["rel"]):
            problems.append(
                f"{f} {c:.6g} below {b:.6g} by more than {100 * rule['rel']:.0f}%")
    for f, bound in schema["floor"].items():
        if f not in cur and f not in base:
            continue
        if cur.get(f) is None or cur[f] < bound:
            problems.append(f"{f} {cur.get(f)} under floor {bound}")
    return problems


def check_relations(cur, schema):
    """Cross-point ordering asserts over the current run. Returns failures."""
    failures = []
    for rel in schema["relations"]:
        metric, op, factor = rel["metric"], rel["op"], rel["factor"]
        label = (f"{','.join(map(str, rel['left']))} {metric} {op} "
                 f"{factor:g} * {','.join(map(str, rel['right']))} {metric}")
        sides = []
        for side in ("left", "right"):
            p = cur.get(rel[side])
            if p is None:
                failures.append(f"{label}: current run lacks point {rel[side]}")
                break
            if metric not in p:
                failures.append(f"{label}: point {rel[side]} lacks '{metric}'")
                break
            sides.append(p[metric])
        if len(sides) != 2:
            continue
        lv, rv = sides
        ok = lv < factor * rv if op == "<" else lv <= factor * rv
        print(f"  relation {label}: {lv:.6g} vs {factor * rv:.6g} "
              f"{'ok' if ok else 'VIOLATED'}")
        if not ok:
            failures.append(f"{label}: {lv:.6g} !{op} {factor * rv:.6g}")
    return failures


def main():
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("current", help="freshly produced BENCH_*.json")
    ap.add_argument("baseline", help="checked-in baseline JSON")
    ap.add_argument("--tolerance", type=float, default=0.15,
                    help="legacy makespan tolerance, used only when the "
                         "baseline declares no schema (default 0.15)")
    args = ap.parse_args()

    with open(args.baseline) as f:
        schema = load_schema(json.load(f), args.tolerance)

    base_doc, base = load_points(args.baseline, schema["key"])
    cur_doc, cur = load_points(args.current, schema["key"])

    # Every top-level scalar except the point list and the schema is a config
    # field the two documents must agree on.
    config_fields = sorted((set(cur_doc) | set(base_doc)) - {"points", "schema"})
    for field in config_fields:
        if cur_doc.get(field) != base_doc.get(field):
            sys.exit(f"error: config mismatch on '{field}': "
                     f"current={cur_doc.get(field)} baseline={base_doc.get(field)} "
                     f"(refresh {args.baseline})")

    missing = sorted(set(base) - set(cur))
    if missing:
        sys.exit(f"error: current run is missing baseline points: {missing}")

    key_hdr = "/".join(schema["key"])
    failures = []
    for key in sorted(base, key=str):
        problems = check_point(base[key], cur[key], schema)
        label = ",".join(str(k) for k in key)
        print(f"  {key_hdr}=({label}): {'ok' if not problems else '; '.join(problems)}")
        if problems:
            failures.append((key, problems))

    extra = sorted(set(cur) - set(base), key=str)
    if extra:
        print(f"note: current run has points absent from baseline "
              f"(not gated): {extra}")

    for problem in check_relations(cur, schema):
        failures.append(("relation", [problem]))

    if failures:
        print(f"\nFAIL: {len(failures)} point(s) out of bounds. If the change "
              "is intentional, refresh the baseline (ci/refresh_baselines.sh "
              f"regenerates every BENCH_*.json, including {args.baseline}).")
        return 1
    print(f"\nOK: all {len(base)} points within the baseline's schema bounds.")
    return 0


if __name__ == "__main__":
    sys.exit(main())
