#!/usr/bin/env python3
"""Gate deterministic benchmark results against a checked-in baseline.

Compares a BENCH_ci.json produced by `fig5_potrf_weak --json` (against
ci/BENCH_baseline.json) or `fig12_bspmm --json` (against
ci/BENCH_bspmm_baseline.json). The simulator is a discrete-event model, so
for a fixed configuration the makespan and message counts are
bit-reproducible; any drift is a real behavioral change, not measurement
noise. We still allow a tolerance on makespan so intentional small
scheduling tweaks do not force a baseline refresh, but message counts must
match exactly.

Exit code 0 = within tolerance, 1 = regression/mismatch, 2 = usage error.
Only the Python standard library is used.
"""

import argparse
import json
import sys


def load_points(path):
    with open(path) as f:
        doc = json.load(f)
    points = {}
    for p in doc.get("points", []):
        key = (p["nodes"], p["backend"])
        if key in points:
            sys.exit(f"error: duplicate point {key} in {path}")
        points[key] = p
    if not points:
        sys.exit(f"error: no points in {path}")
    return doc, points


def main():
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("current", help="freshly produced BENCH_ci.json")
    ap.add_argument("baseline", help="checked-in baseline JSON")
    ap.add_argument("--tolerance", type=float, default=0.15,
                    help="allowed relative makespan increase (default 0.15)")
    args = ap.parse_args()

    cur_doc, cur = load_points(args.current)
    base_doc, base = load_points(args.baseline)

    # Every top-level scalar except the point list is a config field the two
    # documents must agree on (fig5: bench/per_node/bs; fig12: bench/natoms).
    config_fields = sorted((set(cur_doc) | set(base_doc)) - {"points"})
    for field in config_fields:
        if cur_doc.get(field) != base_doc.get(field):
            sys.exit(f"error: config mismatch on '{field}': "
                     f"current={cur_doc.get(field)} baseline={base_doc.get(field)} "
                     f"(refresh {args.baseline})")

    missing = sorted(set(base) - set(cur))
    if missing:
        sys.exit(f"error: current run is missing baseline points: {missing}")

    # Counters gated exactly: any drift is a protocol/copy-semantics change,
    # not noise. serializations/serialize_hits come from the DataCopy layer
    # (archive passes vs. serialized-buffer cache reuses);
    # broadcast_forwards/am_batches/batched_msgs from the collective data
    # plane (tree hops re-injected by interior ranks, coalesced AM flushes);
    # reduce_forwards/reduce_combines from the tree-routed streaming
    # reductions (combined partials shipped up / absorbed at interior
    # ranks); intra/inter_node_hops classify every payload-bearing tree hop
    # against the topology layout.
    # jobs/job_messages/job_splitmd/cache_hits/cache_misses come from the
    # multi-tenant serving bench (serve_jobs): per-job attributed traffic
    # and the template-graph instantiation cache. Fields absent from both
    # documents compare equal, so older benches are unaffected.
    exact_fields = ("messages", "splitmd_sends", "serializations",
                    "serialize_hits", "broadcast_forwards", "am_batches",
                    "batched_msgs", "reduce_forwards", "reduce_combines",
                    "intra_node_hops", "inter_node_hops", "jobs",
                    "job_messages", "job_splitmd", "cache_hits",
                    "cache_misses")

    failures = []
    print(f"{'nodes':>5} {'backend':>8} {'baseline[s]':>14} {'current[s]':>14} "
          f"{'ratio':>7}  counters")
    for key in sorted(base):
        b, c = base[key], cur[key]
        ratio = c["makespan"] / b["makespan"] if b["makespan"] > 0 else float("inf")
        drifted = [f for f in exact_fields
                   if c.get(f, 0) != b.get(f, 0)]
        status = []
        if ratio > 1.0 + args.tolerance:
            status.append(f"makespan regressed {100.0 * (ratio - 1.0):.1f}% "
                          f"(> {100.0 * args.tolerance:.0f}% allowed)")
        if drifted:
            status.append("counts changed: " + ", ".join(
                f"{f} {b.get(f, 0)}->{c.get(f, 0)}" for f in drifted))
        print(f"{key[0]:>5} {key[1]:>8} {b['makespan']:>14.6e} "
              f"{c['makespan']:>14.6e} {ratio:>7.3f}  "
              f"{'ok' if not status else '; '.join(status)}")
        if status:
            failures.append((key, status))

    extra = sorted(set(cur) - set(base))
    if extra:
        print(f"note: current run has points absent from baseline "
              f"(not gated): {extra}")

    if failures:
        cfg = " ".join(f"{k}={base_doc[k]}" for k in config_fields
                       if k != "bench")
        print(f"\nFAIL: {len(failures)} point(s) regressed. If the change is "
              "intentional, refresh the baseline by re-running "
              f"{base_doc.get('bench', 'the bench')} --json {args.baseline} "
              f"with the baseline config ({cfg}).")
        return 1
    print(f"\nOK: all {len(base)} points within {100.0 * args.tolerance:.0f}% "
          "of baseline; message/serialization counts identical.")
    return 0


if __name__ == "__main__":
    sys.exit(main())
