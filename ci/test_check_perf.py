#!/usr/bin/env python3
"""Unit tests for the schema-driven baseline gate (ci/check_perf.py).

Stdlib-only; run directly or via `python3 -m unittest` from ci/. Each test
writes a baseline/current JSON pair into a temp dir and drives check_perf's
main() through sys.argv, asserting on the exit status — the same interface
CI uses.
"""

import contextlib
import copy
import io
import json
import os
import sys
import tempfile
import unittest

sys.path.insert(0, os.path.dirname(os.path.abspath(__file__)))
import check_perf  # noqa: E402


def run_gate(baseline, current, extra_args=()):
    """Run check_perf.main() on two documents; return (exit_code, stdout)."""
    with tempfile.TemporaryDirectory() as td:
        bpath = os.path.join(td, "baseline.json")
        cpath = os.path.join(td, "current.json")
        with open(bpath, "w") as f:
            json.dump(baseline, f)
        with open(cpath, "w") as f:
            json.dump(current, f)
        argv = ["check_perf.py", cpath, bpath, *extra_args]
        out = io.StringIO()
        old_argv = sys.argv
        sys.argv = argv
        try:
            with contextlib.redirect_stdout(out):
                try:
                    code = check_perf.main()
                except SystemExit as e:  # load/config errors exit directly
                    code = e.code if isinstance(e.code, int) else 2
        finally:
            sys.argv = old_argv
        return code, out.getvalue()


def legacy_doc(makespan=1.0, messages=100):
    return {
        "bench": "fig5",
        "bs": 256,
        "points": [
            {"nodes": 4, "backend": "parsec", "makespan": makespan,
             "messages": messages},
        ],
    }


def schema_doc(**point_overrides):
    point = {"phase": "storm", "ranks": 1024, "mode": "both",
             "events": 8388608, "end": 1.5e-5, "events_per_sec": 1.0e6,
             "speedup": 2.9}
    point.update(point_overrides)
    return {
        "bench": "scale_engine",
        "schema": {
            "key": ["phase", "ranks", "mode"],
            "exact": ["events", "end"],
            "tolerance": {"events_per_sec": {"rel": 0.9, "worse": "below"}},
            "floor": {"speedup": 2.0},
        },
        "points": [point],
    }


class LegacyDefaults(unittest.TestCase):
    """Baselines without a schema keep the historical behavior."""

    def test_identical_documents_pass(self):
        code, out = run_gate(legacy_doc(), legacy_doc())
        self.assertEqual(code, 0, out)

    def test_exact_count_drift_fails(self):
        code, out = run_gate(legacy_doc(), legacy_doc(messages=101))
        self.assertEqual(code, 1, out)
        self.assertIn("messages", out)

    def test_makespan_within_default_tolerance_passes(self):
        code, out = run_gate(legacy_doc(), legacy_doc(makespan=1.10))
        self.assertEqual(code, 0, out)

    def test_makespan_regression_fails(self):
        code, out = run_gate(legacy_doc(), legacy_doc(makespan=1.20))
        self.assertEqual(code, 1, out)

    def test_makespan_improvement_passes(self):
        code, out = run_gate(legacy_doc(), legacy_doc(makespan=0.5))
        self.assertEqual(code, 0, out)

    def test_cli_tolerance_overrides_default(self):
        code, out = run_gate(legacy_doc(), legacy_doc(makespan=1.20),
                             ["--tolerance", "0.30"])
        self.assertEqual(code, 0, out)

    def test_config_mismatch_is_an_error(self):
        cur = legacy_doc()
        cur["bs"] = 128
        code, _ = run_gate(legacy_doc(), cur)
        self.assertNotEqual(code, 0)

    def test_missing_point_is_an_error(self):
        base = legacy_doc()
        base["points"].append({"nodes": 8, "backend": "parsec",
                               "makespan": 1.0, "messages": 7})
        code, _ = run_gate(base, legacy_doc())
        self.assertNotEqual(code, 0)

    def test_extra_current_points_are_noted_not_gated(self):
        cur = legacy_doc()
        cur["points"].append({"nodes": 8, "backend": "parsec",
                              "makespan": 99.0, "messages": 1})
        code, out = run_gate(legacy_doc(), cur)
        self.assertEqual(code, 0, out)
        self.assertIn("not gated", out)


class SchemaDriven(unittest.TestCase):
    """Baselines declare what is gated; the script follows the declaration."""

    def test_identical_documents_pass(self):
        code, out = run_gate(schema_doc(), schema_doc())
        self.assertEqual(code, 0, out)

    def test_custom_key_fields_identify_points(self):
        base, cur = schema_doc(), schema_doc(ranks=2048)
        code, _ = run_gate(base, cur)
        self.assertNotEqual(code, 0)  # (storm, 1024, both) missing from cur

    def test_exact_float_field_fails_on_any_drift(self):
        code, out = run_gate(schema_doc(), schema_doc(end=1.5000001e-5))
        self.assertEqual(code, 1, out)
        self.assertIn("end", out)

    def test_floor_violation_fails(self):
        code, out = run_gate(schema_doc(), schema_doc(speedup=1.4))
        self.assertEqual(code, 1, out)
        self.assertIn("floor", out)

    def test_floor_met_passes_even_above_baseline(self):
        code, out = run_gate(schema_doc(), schema_doc(speedup=5.0))
        self.assertEqual(code, 0, out)

    def test_floor_ignores_points_without_the_field(self):
        base, cur = schema_doc(), schema_doc()
        for doc in (base, cur):
            del doc["points"][0]["speedup"]
        code, out = run_gate(base, cur)
        self.assertEqual(code, 0, out)

    def test_below_direction_tolerance_guards_throughput(self):
        code, out = run_gate(schema_doc(), schema_doc(events_per_sec=0.05e6))
        self.assertEqual(code, 1, out)
        self.assertIn("events_per_sec", out)

    def test_below_direction_allows_faster_hosts(self):
        code, out = run_gate(schema_doc(), schema_doc(events_per_sec=9.0e6))
        self.assertEqual(code, 0, out)

    def test_makespan_is_not_gated_unless_declared(self):
        # The schema above declares no makespan rule: drift passes.
        base, cur = schema_doc(), schema_doc()
        base["points"][0]["makespan"] = 1.0
        cur["points"][0]["makespan"] = 3.0
        code, out = run_gate(base, cur)
        self.assertEqual(code, 0, out)

    def test_shorthand_tolerance_means_higher_is_worse(self):
        base = schema_doc()
        base["schema"]["tolerance"] = {"end": 0.10}
        base["schema"]["exact"] = ["events"]
        cur = copy.deepcopy(base)
        cur["points"][0]["end"] = base["points"][0]["end"] * 1.2
        code, _ = run_gate(base, cur)
        self.assertEqual(code, 1)
        cur["points"][0]["end"] = base["points"][0]["end"] * 0.5
        code, _ = run_gate(base, cur)
        self.assertEqual(code, 0)

    def test_bad_tolerance_spec_is_a_usage_error(self):
        base = schema_doc()
        base["schema"]["tolerance"] = {"end": {"rel": 0.1, "worse": "sideways"}}
        code, _ = run_gate(base, schema_doc())
        self.assertEqual(code, 2)

    def test_empty_key_is_a_usage_error(self):
        base = schema_doc()
        base["schema"]["key"] = []
        code, _ = run_gate(base, schema_doc())
        self.assertEqual(code, 2)


def relations_doc(greedy=0.4, cpu=1.0):
    """Two-arm ablation document with a greedy-beats-cpu relation."""
    return {
        "bench": "ablation_device",
        "schema": {
            "key": ["workload", "placement"],
            "exact": ["device_tasks"],
            "relations": [
                {"metric": "makespan", "op": "<=", "factor": 0.5,
                 "left": {"workload": "potrf", "placement": "gpu-greedy"},
                 "right": {"workload": "potrf", "placement": "cpu-only"}},
            ],
        },
        "points": [
            {"workload": "potrf", "placement": "cpu-only", "makespan": cpu,
             "device_tasks": 0},
            {"workload": "potrf", "placement": "gpu-greedy", "makespan": greedy,
             "device_tasks": 16},
        ],
    }


class Relations(unittest.TestCase):
    """Cross-point ordering asserts evaluated on the current run."""

    def test_satisfied_relation_passes(self):
        code, out = run_gate(relations_doc(), relations_doc())
        self.assertEqual(code, 0, out)

    def test_violated_relation_fails(self):
        # greedy only 1.25x faster: misses the <= 0.5x factor.
        code, out = run_gate(relations_doc(), relations_doc(greedy=0.8))
        self.assertEqual(code, 1, out)
        self.assertIn("VIOLATED", out)

    def test_relation_reads_the_current_run_not_the_baseline(self):
        # Baseline itself violates the relation; only the current run counts.
        code, out = run_gate(relations_doc(greedy=0.9), relations_doc())
        self.assertEqual(code, 0, out)

    def test_strict_less_than_rejects_equality(self):
        base = relations_doc()
        base["schema"]["relations"][0].update({"op": "<", "factor": 1.0})
        cur = copy.deepcopy(base)
        cur["points"][1]["makespan"] = cur["points"][0]["makespan"]
        code, out = run_gate(base, cur)
        self.assertEqual(code, 1, out)

    def test_missing_relation_point_fails(self):
        base = relations_doc()
        base["schema"]["relations"][0]["left"]["placement"] = "gpu-always"
        code, _ = run_gate(base, relations_doc())
        self.assertEqual(code, 1)

    def test_bad_relation_op_is_a_usage_error(self):
        base = relations_doc()
        base["schema"]["relations"][0]["op"] = ">"
        code, _ = run_gate(base, relations_doc())
        self.assertEqual(code, 2)

    def test_selector_missing_key_field_is_a_usage_error(self):
        base = relations_doc()
        del base["schema"]["relations"][0]["left"]["workload"]
        code, _ = run_gate(base, relations_doc())
        self.assertEqual(code, 2)


if __name__ == "__main__":
    unittest.main()
