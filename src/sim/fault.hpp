// Deterministic fault injection for the simulated cluster.
//
// The paper's evaluation platforms (Hawk, Seawulf) are real machines where
// stragglers, NIC contention, and lost or late messages happen; the perfect
// fabric the simulator models by default cannot answer "does the runtime
// still win when rank 3 runs 2x slow and 1% of messages die?". A FaultPlan
// describes a perturbation scenario:
//
//   * per-rank compute slowdown (stragglers)        -> Scheduler
//   * per-link latency / bandwidth perturbation     -> Network
//   * message drop / duplication                    -> Network
//   * delayed RMA completion                        -> Network (splitmd path)
//
// plus the resilience knobs (retransmission timeout, backoff, retry bound)
// the comm plane uses to recover. Every decision is a pure function of
// (seed, decision stream, ordinal) via support::hash_uniform, so two runs of
// the same workload with the same plan perturb bit-identically.
//
// Plans are built programmatically or parsed from a compact spec string
// (the `--fault-spec` grammar, clauses separated by commas):
//
//   drop=P              drop each payload transfer with probability P
//   dup=P               deliver each payload transfer twice with prob. P
//   straggler=R:F       rank R (or '*') computes F times slower
//   latency=L:F         link L multiplies its propagation latency by F
//   bw=L:F              link L achieves fraction F of its bandwidth
//   rma-delay=P:T       with probability P an RMA get lands T seconds late
//   rto=T | retries=N | backoff=F    resilience-layer tuning
//
// where L is 'S-D' (source-destination rank pair, either side '*') or '*'.
// Example: "drop=0.01,straggler=3:2.0,latency=*:1.5,rma-delay=0.05:1e-4".
#pragma once

#include <cstddef>
#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace ttg::sim {

/// What kind of perturbation or recovery action occurred (trace/report).
enum class FaultKind {
  Drop,        ///< payload transfer vanished in the fabric
  Duplicate,   ///< payload transfer delivered twice
  RmaDelay,    ///< one-sided get completion delayed
  Retry,       ///< comm-plane retransmission after an ack timeout
  RmaRetry,    ///< splitmd re-fetch after a get timeout
  Recovered,   ///< delivery that needed at least one retry
  DeadLetter,  ///< gave up after the bounded retries were exhausted
};

[[nodiscard]] const char* to_string(FaultKind k);

/// Multiplicative perturbation of one link's latency and bandwidth.
struct LinkPerturb {
  double latency_factor = 1.0;  ///< multiplies propagation latency
  double bw_factor = 1.0;       ///< fraction of nominal bandwidth achieved
};

/// One declarative fault scenario (see file comment for the grammar).
struct FaultPlan {
  std::uint64_t seed = 0;  ///< --fault-seed; decorrelates scenarios

  // --- message-level faults ---
  double drop_prob = 0.0;
  double dup_prob = 0.0;
  double rma_delay_prob = 0.0;
  double rma_delay = 0.0;  ///< extra seconds added to a delayed get

  // --- stragglers (compute slowdown factors, 1.0 = nominal) ---
  double straggler_all = 1.0;
  std::map<int, double> straggler;  ///< per-rank overrides

  // --- link perturbations ---
  struct LinkRule {
    int src = -1;  ///< -1 = any source
    int dst = -1;  ///< -1 = any destination
    LinkPerturb perturb;
  };
  LinkPerturb all_links;
  std::vector<LinkRule> links;  ///< most-specific match wins, later ties win

  // --- resilience knobs (used by the comm plane when recovering) ---
  double rto_base = 5.0e-4;  ///< base retransmission timeout [s]
  double backoff = 2.0;      ///< timeout multiplier per retry
  int max_retries = 8;       ///< bounded retries before dead-lettering

  bool active = false;  ///< any clause present (parse sets this)

  [[nodiscard]] bool enabled() const { return active; }

  /// True when the plan can lose or delay in-flight data, i.e. the comm
  /// plane must run its ack/timeout/retry machinery. Straggler- or
  /// perturbation-only plans keep the fault-free protocol.
  [[nodiscard]] bool needs_reliability() const {
    return drop_prob > 0.0 || dup_prob > 0.0 || rma_delay_prob > 0.0;
  }

  [[nodiscard]] double compute_factor(int rank) const;
  [[nodiscard]] LinkPerturb link(int src, int dst) const;

  /// Worst-case factors across all links (resilience timeout sizing).
  [[nodiscard]] double max_latency_factor() const;
  [[nodiscard]] double min_bw_factor() const;

  /// Best-case latency factor across all links, clamped to (0, 1]. The
  /// sharded engine's conservative lookahead is machine.net_latency scaled
  /// by this: no cross-rank delivery can undercut it.
  [[nodiscard]] double min_latency_factor() const;

  /// Parse a spec string (empty -> inactive plan carrying only the seed).
  /// Throws support::ApiError on malformed clauses.
  static FaultPlan parse(const std::string& spec, std::uint64_t seed = 0);

  /// Human-readable one-line description for bench preambles.
  [[nodiscard]] std::string describe() const;
};

/// Runtime decision maker for one simulated world. Owns the per-stream
/// ordinals; decisions are made in deterministic event order, and each
/// stream's draws are independent of the others'.
class FaultInjector {
 public:
  explicit FaultInjector(FaultPlan plan) : plan_(std::move(plan)) {}

  [[nodiscard]] const FaultPlan& plan() const { return plan_; }

  /// Decide whether the next payload transfer is dropped / duplicated.
  bool drop_payload();
  bool duplicate_payload();
  /// Extra completion delay for the next RMA get (0.0 = on time).
  double rma_extra_delay();

  [[nodiscard]] double latency_factor(int src, int dst) const {
    return plan_.link(src, dst).latency_factor;
  }
  [[nodiscard]] double bw_factor(int src, int dst) const {
    return plan_.link(src, dst).bw_factor;
  }
  [[nodiscard]] double compute_factor(int rank) const {
    return plan_.compute_factor(rank);
  }

 private:
  FaultPlan plan_;
  std::uint64_t n_drop_ = 0;
  std::uint64_t n_dup_ = 0;
  std::uint64_t n_rma_ = 0;
};

}  // namespace ttg::sim
