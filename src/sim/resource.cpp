#include "sim/resource.hpp"

#include <algorithm>

namespace ttg::sim {

FifoResource::FifoResource(Engine& engine, std::string name)
    : engine_(engine), name_(std::move(name)) {}

Time FifoResource::reserve(Time service_time) {
  TTG_CHECK(service_time >= 0.0, "negative service time");
  const Time start = std::max(engine_.now(), free_at_);
  const Time done = start + service_time;
  free_at_ = done;
  busy_ += service_time;
  return done;
}

PoolResource::PoolResource(Engine& engine, std::string name, int servers)
    : engine_(engine), name_(std::move(name)), free_at_(static_cast<std::size_t>(servers), 0.0) {
  TTG_CHECK(servers > 0, "pool needs at least one server");
}

Time PoolResource::reserve(Time service_time) {
  TTG_CHECK(service_time >= 0.0, "negative service time");
  auto it = std::min_element(free_at_.begin(), free_at_.end());
  const Time start = std::max(engine_.now(), *it);
  const Time done = start + service_time;
  *it = done;
  busy_ += service_time;
  return done;
}

}  // namespace ttg::sim
