#include "sim/machine.hpp"

namespace ttg::sim {

MachineModel hawk() {
  MachineModel m;
  m.name = "Hawk";
  // EPYC 7742 @2.25 GHz, AVX2 FMA: 36 GF/s peak per core; effective DGEMM
  // on 512x512 tiles with MKL/BLIS lands around 30 GF/s.
  m.cores_per_node = 60;
  m.core_gflops = 30.0;
  m.copy_bw = 10.0e9;
  // Dual-socket node; Infinity Fabric keeps cross-socket line bounces cheap.
  m.sockets_per_node = 2;
  m.steal_latency_local = 2.0e-7;
  m.steal_latency_remote = 8.0e-7;
  // IB HDR200: 200 Gb/s = 25 GB/s line rate, ~1.2 us MPI latency; achieved
  // injection ~23 GB/s with Open MPI/UCX.
  m.net_latency = 1.2e-6;
  m.nic_bw = 23.0e9;
  m.bisection_factor = 0.75;  // 9D enhanced hypercube, near-full bisection
  m.eager_threshold = 8192;
  m.am_cpu = 4.0e-7;
  // Accelerator partition: 4 GPUs per node of roughly V100-class effective
  // DGEMM (~7 TF/s on large tiles), PCIe gen3 x16 staging (~12 GB/s
  // effective), 16 GB HBM each, ~5 us kernel launch.
  m.gpus_per_node = 4;
  m.gpu_gflops = 7000.0;
  m.gpu_launch_overhead = 5.0e-6;
  m.pcie_bw = 12.0e9;
  m.pcie_latency = 5.0e-6;
  m.hbm_bytes = 16.0e9;
  return m;
}

MachineModel seawulf() {
  MachineModel m;
  m.name = "Seawulf";
  // Xeon Gold 6148 @2.4 GHz, AVX-512: 76.8 GF/s peak; effective DGEMM with
  // downclocking under AVX-512 around 45 GF/s per core.
  m.cores_per_node = 40;
  m.core_gflops = 45.0;
  m.copy_bw = 9.0e9;
  // Dual-socket Xeon; UPI cross-socket transfers are slower than Hawk's IF.
  m.sockets_per_node = 2;
  m.steal_latency_local = 2.5e-7;
  m.steal_latency_remote = 1.0e-6;
  // IB FDR: 56 Gb/s = 7 GB/s line rate, ~1.7 us latency (Intel MPI).
  m.net_latency = 1.7e-6;
  m.nic_bw = 6.0e9;
  m.bisection_factor = 0.5;  // older 2:1 oversubscribed fat tree
  m.eager_threshold = 8192;
  m.am_cpu = 5.0e-7;
  // Older accelerator partition: 2 P100-class GPUs per node (~4.5 TF/s
  // effective DGEMM), slightly slower PCIe staging, 12 GB HBM each.
  m.gpus_per_node = 2;
  m.gpu_gflops = 4500.0;
  m.gpu_launch_overhead = 6.0e-6;
  m.pcie_bw = 10.0e9;
  m.pcie_latency = 6.0e-6;
  m.hbm_bytes = 12.0e9;
  return m;
}

}  // namespace ttg::sim
