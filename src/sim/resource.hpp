// Simulated exclusive resources (NICs, AM server threads, fabric bisection).
//
// A FifoResource models a single server with a work-conserving FIFO queue:
// each request occupies the server for a caller-supplied service time, and
// the completion callback fires on the engine when the request finishes.
// This is how per-rank NIC injection bandwidth, the MADNESS backend's
// active-message server thread, and the global fabric bisection capacity
// are all modeled.
//
// submit() is a template so the completion closure converts to EventFn at
// the engine boundary — inside the engine's arena-aware at() — rather than
// through a std::function hop that would heap-allocate capture-heavy
// callbacks on the hot path.
#pragma once

#include <string>
#include <utility>

#include "sim/engine.hpp"

namespace ttg::sim {

/// Single-server FIFO queue over virtual time.
class FifoResource {
 public:
  FifoResource(Engine& engine, std::string name);

  /// Occupy the server for `service_time` seconds (queued after earlier
  /// requests); calls `on_done` on completion. Returns the completion time.
  template <class F>
  Time submit(Time service_time, F&& on_done) {
    const Time done = reserve(service_time);
    engine_.at(done, std::forward<F>(on_done));
    return done;
  }

  /// Time at which the server next becomes free.
  [[nodiscard]] Time free_at() const { return free_at_; }

  /// Total busy seconds accumulated (utilization accounting).
  [[nodiscard]] Time busy_time() const { return busy_; }

  [[nodiscard]] const std::string& name() const { return name_; }

 private:
  /// Queue one request: advance the server's busy horizon and return the
  /// completion time (the non-template half of submit()).
  Time reserve(Time service_time);

  Engine& engine_;
  std::string name_;
  Time free_at_ = 0.0;
  Time busy_ = 0.0;
};

/// Multi-server FIFO queue: like FifoResource but with `n` identical
/// servers (e.g. a pool of DMA engines). Requests go to the earliest-free
/// server.
class PoolResource {
 public:
  PoolResource(Engine& engine, std::string name, int servers);

  template <class F>
  Time submit(Time service_time, F&& on_done) {
    const Time done = reserve(service_time);
    engine_.at(done, std::forward<F>(on_done));
    return done;
  }

  [[nodiscard]] int servers() const { return static_cast<int>(free_at_.size()); }
  [[nodiscard]] Time busy_time() const { return busy_; }

 private:
  Time reserve(Time service_time);

  Engine& engine_;
  std::string name_;
  std::vector<Time> free_at_;
  Time busy_ = 0.0;
};

}  // namespace ttg::sim
