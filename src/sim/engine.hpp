// Discrete-event simulation engine.
//
// The paper's evaluation ran on real clusters (Hawk, Seawulf). We do not
// have a cluster, so distributed execution is reproduced as a deterministic
// discrete-event simulation: ranks, worker threads and NICs are virtual
// resources, a single OS thread drains a time-ordered event queue, and task
// bodies execute real C++ code while their *duration* is charged to the
// virtual clock from a calibrated cost model. Events at equal times are
// ordered by insertion sequence, making every run bit-reproducible.
//
// Hot-path engineering: the queue is a binary heap over a reserved vector
// (no node allocations, events move -- never copy -- on pop), and
// cancellable events borrow a pooled cancel slot instead of allocating a
// shared_ptr flag per timer, so arming and cancelling retransmission
// timeouts is allocation-free at steady state.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <vector>

#include "support/error.hpp"

namespace ttg::sim {

/// Virtual time in seconds.
using Time = double;

/// Pooled cancellation flag for one armed cancellable event. The generation
/// stamp invalidates tokens left over from a previous occupancy of the slot.
struct CancelSlot {
  std::uint32_t gen = 0;
  bool cancelled = false;
};

/// The event queue + virtual clock. One Engine underlies one simulated
/// cluster run; all runtimes, networks, and BSP executors schedule on it.
class Engine {
 public:
  Engine() { queue_.reserve(kInitialQueueCapacity); }
  Engine(const Engine&) = delete;
  Engine& operator=(const Engine&) = delete;

  /// Current virtual time.
  [[nodiscard]] Time now() const { return now_; }

  /// Schedule `fn` at absolute virtual time `t` (must be >= now()).
  void at(Time t, std::function<void()> fn);

  /// Schedule `fn` `dt` seconds from now.
  void after(Time dt, std::function<void()> fn) { at(now_ + dt, std::move(fn)); }

  /// Handle to a cancellable event (see at_cancellable). Tokens refer to a
  /// pooled slot plus a generation stamp: cancelling a stale token (whose
  /// event already ran and returned the slot to the pool) is a safe no-op.
  struct CancelToken {
    CancelSlot* slot = nullptr;
    std::uint32_t gen = 0;
    [[nodiscard]] explicit operator bool() const { return slot != nullptr; }
  };

  /// Schedule `fn` like at(), returning a token that can cancel it. A
  /// cancelled event behaves as if it were never scheduled: it does not run,
  /// does not advance the clock, and does not count as processed. The
  /// resilience layer uses this for retransmission timeouts so an acked
  /// message leaves no trace on the virtual timeline.
  CancelToken at_cancellable(Time t, std::function<void()> fn);
  CancelToken after_cancellable(Time dt, std::function<void()> fn) {
    return at_cancellable(now_ + dt, std::move(fn));
  }
  static void cancel(const CancelToken& token);

  /// Run until the event queue is empty. Returns the final virtual time,
  /// i.e. the makespan of everything scheduled.
  Time run();

  /// Run until `pred()` becomes true after some event, or the queue drains.
  Time run_until(const std::function<bool()>& pred);

  /// Number of events processed so far (for tests / stats).
  [[nodiscard]] std::uint64_t events_processed() const { return processed_; }

  /// True if no pending events remain.
  [[nodiscard]] bool idle() const { return queue_.empty(); }

  /// Cancel slots currently on the free list (for tests of the pool).
  [[nodiscard]] std::size_t pooled_cancel_slots() const { return free_slots_.size(); }

 private:
  static constexpr std::size_t kInitialQueueCapacity = 1024;

  struct Event {
    Time time = 0.0;
    std::uint64_t seq = 0;  // tie-break: FIFO among simultaneous events
    std::function<void()> fn;
    CancelSlot* slot = nullptr;  // null for ordinary (non-cancellable) events
    std::uint32_t gen = 0;       // generation the slot had when this event armed
  };
  struct Later {
    bool operator()(const Event& a, const Event& b) const {
      if (a.time != b.time) return a.time > b.time;
      return a.seq > b.seq;
    }
  };

  void push(Time t, std::function<void()> fn, CancelSlot* slot, std::uint32_t gen);
  /// Pop the earliest event off the heap (moved out, never copied).
  Event pop_front();
  CancelSlot* acquire_slot();

  Time now_ = 0.0;
  std::uint64_t next_seq_ = 0;
  std::uint64_t processed_ = 0;
  std::vector<Event> queue_;  // binary heap ordered by Later
  // Cancel-slot pool: deque gives stable addresses for outstanding tokens;
  // slots recycle through free_slots_ when their event pops.
  std::deque<CancelSlot> slots_;
  std::vector<CancelSlot*> free_slots_;
};

}  // namespace ttg::sim
