// Discrete-event simulation engine.
//
// The paper's evaluation ran on real clusters (Hawk, Seawulf). We do not
// have a cluster, so distributed execution is reproduced as a deterministic
// discrete-event simulation: ranks, worker threads and NICs are virtual
// resources, a single OS thread drains a time-ordered event queue, and task
// bodies execute real C++ code while their *duration* is charged to the
// virtual clock from a calibrated cost model. Events at equal times are
// ordered by insertion sequence, making every run bit-reproducible.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <queue>
#include <vector>

#include "support/error.hpp"

namespace ttg::sim {

/// Virtual time in seconds.
using Time = double;

/// The event queue + virtual clock. One Engine underlies one simulated
/// cluster run; all runtimes, networks, and BSP executors schedule on it.
class Engine {
 public:
  Engine() = default;
  Engine(const Engine&) = delete;
  Engine& operator=(const Engine&) = delete;

  /// Current virtual time.
  [[nodiscard]] Time now() const { return now_; }

  /// Schedule `fn` at absolute virtual time `t` (must be >= now()).
  void at(Time t, std::function<void()> fn);

  /// Schedule `fn` `dt` seconds from now.
  void after(Time dt, std::function<void()> fn) { at(now_ + dt, std::move(fn)); }

  /// Handle to a cancellable event (see at_cancellable).
  using CancelToken = std::shared_ptr<bool>;

  /// Schedule `fn` like at(), returning a token that can cancel it. A
  /// cancelled event behaves as if it were never scheduled: it does not run,
  /// does not advance the clock, and does not count as processed. The
  /// resilience layer uses this for retransmission timeouts so an acked
  /// message leaves no trace on the virtual timeline.
  CancelToken at_cancellable(Time t, std::function<void()> fn);
  CancelToken after_cancellable(Time dt, std::function<void()> fn) {
    return at_cancellable(now_ + dt, std::move(fn));
  }
  static void cancel(const CancelToken& token) {
    if (token) *token = true;
  }

  /// Run until the event queue is empty. Returns the final virtual time,
  /// i.e. the makespan of everything scheduled.
  Time run();

  /// Run until `pred()` becomes true after some event, or the queue drains.
  Time run_until(const std::function<bool()>& pred);

  /// Number of events processed so far (for tests / stats).
  [[nodiscard]] std::uint64_t events_processed() const { return processed_; }

  /// True if no pending events remain.
  [[nodiscard]] bool idle() const { return queue_.empty(); }

 private:
  struct Event {
    Time time;
    std::uint64_t seq;  // tie-break: FIFO among simultaneous events
    std::function<void()> fn;
    CancelToken cancelled;  // null for ordinary (non-cancellable) events
  };
  struct Later {
    bool operator()(const Event& a, const Event& b) const {
      if (a.time != b.time) return a.time > b.time;
      return a.seq > b.seq;
    }
  };

  Time now_ = 0.0;
  std::uint64_t next_seq_ = 0;
  std::uint64_t processed_ = 0;
  std::priority_queue<Event, std::vector<Event>, Later> queue_;
};

}  // namespace ttg::sim
