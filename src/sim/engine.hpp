// Discrete-event simulation engine.
//
// The paper's evaluation ran on real clusters (Hawk, Seawulf). We do not
// have a cluster, so distributed execution is reproduced as a deterministic
// discrete-event simulation: ranks, worker threads and NICs are virtual
// resources, a time-ordered event queue is drained, and task bodies execute
// real C++ code while their *duration* is charged to the virtual clock from
// a calibrated cost model. Events at equal times are ordered by insertion
// sequence, making every run bit-reproducible.
//
// Two execution modes share this interface:
//
//   * serial  — the reference engine: one binary heap, one OS thread. Every
//               baseline number in ci/BENCH_*.json was produced by this mode
//               and stays bit-identical.
//   * sharded — conservative parallel DES for 1k–10k simulated ranks. Ranks
//               are partitioned into per-lane event heaps; lanes drain
//               epochs [T, W_l) independently (optionally on a thread
//               pool), where each lane's window W_l is bounded by the
//               cross-lane delivery contract (see "Adaptive lookahead"
//               below), and merge at an epoch barrier. The barrier
//               renumbers every deferred push in *serial* push order (see
//               OrderKey below), so a sharded run is bit-identical to the
//               serial reference — pinned by tests/test_scale_equiv.cpp.
//
// Hot-path engineering: queues are binary heaps over reserved vectors (no
// node allocations, events move — never copy — on pop), cancellable events
// borrow a pooled cancel slot instead of allocating a shared_ptr flag per
// timer, and event closures live in a move-only EventFn whose inline buffer
// covers typical captures and whose overflow blocks come from per-lane
// free-list arenas (FnArena) — so arming, firing and cancelling timers is
// allocation-free at steady state even for capture-heavy closures. The
// sharded mode's per-lane heaps stay small and cache-resident where the
// serial heap grows with total in-flight events; this is where its
// throughput advantage at scale comes from.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <cstring>
#include <deque>
#include <functional>
#include <limits>
#include <memory>
#include <mutex>
#include <new>
#include <thread>
#include <type_traits>
#include <utility>
#include <vector>

#include "support/error.hpp"

namespace ttg::sim {

/// Virtual time in seconds.
using Time = double;

/// Pooled cancellation flag for one armed cancellable event. The generation
/// stamp invalidates tokens left over from a previous occupancy of the slot.
struct CancelSlot {
  std::uint32_t gen = 0;
  bool cancelled = false;
};

/// Free-list arena for EventFn overflow blocks. Each engine lane owns one:
/// closures that do not fit EventFn's inline buffer borrow a fixed-size
/// block from the arena of the lane that *created* them, and return it when
/// the event is destroyed — possibly from another lane's draining thread
/// (cross-lane deliveries execute, and die, on their destination lane).
///
/// Concurrency contract: acquire() is only called by the thread currently
/// executing the owning lane (one thread at a time; epochs are ordered by
/// the worker-pool mutex). release() may be called from any thread; while
/// the draining thread holds an OwnerScope claim on the arena, its own
/// frees (same-lane timers, the overwhelmingly common case) go straight
/// onto the plain local list, and only genuinely cross-thread frees pay a
/// lock-free remote push (one CAS); the owner refills its plain local list
/// by stealing the whole remote list with a single exchange. Single-owner
/// pop + push-only remote list means no ABA hazard. Steady state allocates
/// nothing: blocks recycle through the free lists and slabs are never
/// returned.
class FnArena {
 public:
  /// Overflow payload size. Covers every closure the runtime builds today
  /// (retransmit timers, tree-forward hops capture ~64–120 bytes); larger
  /// closures fall back to a counted heap allocation.
  static constexpr std::size_t kPayload = 128;

  struct State;
  struct Block {
    State* owner = nullptr;  ///< home arena state (frees route back here)
    Block* next = nullptr;   ///< free-list link
    alignas(alignof(std::max_align_t)) unsigned char payload[kPayload];
  };

  /// The arena's storage, heap-pinned so outstanding Blocks keep a stable
  /// owner pointer even when the FnArena handle itself moves (lanes live in
  /// a vector).
  struct State {
    static constexpr std::size_t kSlabBlocks = 256;
    std::vector<std::unique_ptr<Block[]>> slabs;
    std::size_t slab_used = 0;
    std::uint64_t slabs_allocated = 0;
    Block* local_free = nullptr;             ///< owner-thread free list
    std::atomic<Block*> remote_free{nullptr};  ///< any-thread free list
  };

  FnArena() : st_(new State) {}
  FnArena(FnArena&&) noexcept = default;
  FnArena& operator=(FnArena&&) noexcept = default;
  FnArena(const FnArena&) = delete;
  FnArena& operator=(const FnArena&) = delete;

  /// Borrow a block (owner thread only — see the concurrency contract).
  Block* acquire() {
    State& s = *st_;
    if (s.local_free == nullptr)
      s.local_free = s.remote_free.exchange(nullptr, std::memory_order_acquire);
    if (s.local_free != nullptr) {
      Block* b = s.local_free;
      s.local_free = b->next;
      return b;
    }
    if (s.slabs.empty() || s.slab_used == State::kSlabBlocks) {
      s.slabs.emplace_back(new Block[State::kSlabBlocks]);
      s.slab_used = 0;
      ++s.slabs_allocated;
    }
    Block* b = &s.slabs.back()[s.slab_used++];
    b->owner = &s;
    return b;
  }

  /// Return a block to its home arena (any thread). If the calling thread
  /// currently holds the OwnerScope claim on that arena, the push is a
  /// plain local-list link (no atomics) — the same exclusivity that makes
  /// acquire() safe makes this safe.
  static void release(Block* b) {
    State* s = b->owner;
    if (s == tls_owner_) {
      b->next = s->local_free;
      s->local_free = b;
      return;
    }
    Block* head = s->remote_free.load(std::memory_order_relaxed);
    do {
      b->next = head;
    } while (!s->remote_free.compare_exchange_weak(
        head, b, std::memory_order_release, std::memory_order_relaxed));
  }

  /// RAII claim of exclusive arena ownership by the calling thread. Taken
  /// by the thread draining the owning lane (and by the serial engine for
  /// its whole run): it must be the only thread touching the local free
  /// list for the claim's duration. Claims nest (restore-on-exit), but a
  /// thread owns at most one arena at a time in practice.
  class OwnerScope {
   public:
    explicit OwnerScope(FnArena& a) : prev_(tls_owner_) {
      tls_owner_ = a.st_.get();
    }
    ~OwnerScope() { tls_owner_ = prev_; }
    OwnerScope(const OwnerScope&) = delete;
    OwnerScope& operator=(const OwnerScope&) = delete;

   private:
    State* prev_;
  };

  /// Slabs allocated so far — flat across steady-state epochs (the
  /// zero-allocation claim gated by the storm bench).
  [[nodiscard]] std::uint64_t slabs_allocated() const {
    return st_->slabs_allocated;
  }

 private:
  static thread_local State* tls_owner_;  ///< arena claimed by this thread

  std::unique_ptr<State> st_;
};

/// Move-only type-erased callable for event closures. Replaces
/// std::function<void()> on the engine hot path:
///
///   * 48-byte inline buffer (vs std::function's 16 on libstdc++), sized so
///     scheduler completions, network hops and storm timers stay inline;
///   * overflow storage borrowed from a per-lane FnArena instead of the
///     global heap, so capture-heavy closures allocate nothing at steady
///     state;
///   * closures larger than FnArena::kPayload fall back to a heap
///     allocation counted in heap_allocations() (the storm bench asserts
///     the counter stays flat).
///
/// Dispatch is one ops-table load + one indirect call, same as
/// std::function, but construction and destruction never touch the
/// allocator on the pooled paths.
class EventFn {
 public:
  static constexpr std::size_t kInlineSize = 48;

  EventFn() = default;
  EventFn(EventFn&& o) noexcept : ops_(o.ops_) {
    if (ops_ != nullptr) ops_->relocate(buf_, o.buf_);
    o.ops_ = nullptr;
  }
  EventFn& operator=(EventFn&& o) noexcept {
    if (this != &o) {
      reset();
      ops_ = o.ops_;
      if (ops_ != nullptr) ops_->relocate(buf_, o.buf_);
      o.ops_ = nullptr;
    }
    return *this;
  }
  EventFn(const EventFn&) = delete;
  EventFn& operator=(const EventFn&) = delete;
  ~EventFn() { reset(); }

  /// Wrap `f`, borrowing overflow storage from `arena` when it does not fit
  /// inline (null arena: heap fallback). The engine passes the arena of the
  /// lane executing the push; World/driver code passes the shared lane's.
  template <class F, class = std::enable_if_t<
                         !std::is_same_v<std::remove_cv_t<std::remove_reference_t<F>>,
                                         EventFn>>>
  explicit EventFn(F&& f, FnArena* arena = nullptr) {
    using Fd = std::remove_cv_t<std::remove_reference_t<F>>;
    if constexpr (sizeof(Fd) <= kInlineSize &&
                  alignof(Fd) <= alignof(std::max_align_t) &&
                  std::is_nothrow_move_constructible_v<Fd>) {
      (void)arena;
      new (buf_) Fd(std::forward<F>(f));
      ops_ = &kInlineOps<Fd>;
    } else if (arena != nullptr && sizeof(Fd) <= FnArena::kPayload &&
               alignof(Fd) <= alignof(std::max_align_t)) {
      FnArena::Block* b = arena->acquire();
      new (b->payload) Fd(std::forward<F>(f));
      std::memcpy(buf_, &b, sizeof b);
      ops_ = &kArenaOps<Fd>;
    } else {
      Fd* p = new Fd(std::forward<F>(f));
      heap_allocs_.fetch_add(1, std::memory_order_relaxed);
      std::memcpy(buf_, &p, sizeof p);
      ops_ = &kHeapOps<Fd>;
    }
  }

  void operator()() { ops_->invoke(buf_); }
  [[nodiscard]] explicit operator bool() const { return ops_ != nullptr; }

  void reset() {
    if (ops_ != nullptr) {
      ops_->destroy(buf_);
      ops_ = nullptr;
    }
  }

  /// Process-wide count of closures that overflowed both the inline buffer
  /// and the arena block size (test/bench hook for the zero-alloc claim).
  [[nodiscard]] static std::uint64_t heap_allocations() {
    return heap_allocs_.load(std::memory_order_relaxed);
  }

 private:
  struct Ops {
    void (*invoke)(unsigned char* buf);
    void (*destroy)(unsigned char* buf);
    void (*relocate)(unsigned char* dst, unsigned char* src);
  };

  template <class F>
  static F* ext(unsigned char* buf, std::size_t off) {
    void* p = nullptr;
    std::memcpy(&p, buf, sizeof p);
    return reinterpret_cast<F*>(static_cast<unsigned char*>(p) + off);
  }

  template <class F>
  static constexpr Ops kInlineOps = {
      [](unsigned char* buf) { (*reinterpret_cast<F*>(buf))(); },
      [](unsigned char* buf) { reinterpret_cast<F*>(buf)->~F(); },
      [](unsigned char* dst, unsigned char* src) {
        F* s = reinterpret_cast<F*>(src);
        new (dst) F(std::move(*s));
        s->~F();
      }};

  template <class F>
  static constexpr Ops kArenaOps = {
      [](unsigned char* buf) {
        (*ext<F>(buf, offsetof(FnArena::Block, payload)))();
      },
      [](unsigned char* buf) {
        void* p = nullptr;
        std::memcpy(&p, buf, sizeof p);
        auto* b = static_cast<FnArena::Block*>(p);
        reinterpret_cast<F*>(b->payload)->~F();
        FnArena::release(b);
      },
      [](unsigned char* dst, unsigned char* src) {
        std::memcpy(dst, src, sizeof(void*));
      }};

  template <class F>
  static constexpr Ops kHeapOps = {
      [](unsigned char* buf) { (*ext<F>(buf, 0))(); },
      [](unsigned char* buf) { delete ext<F>(buf, 0); },
      [](unsigned char* dst, unsigned char* src) {
        std::memcpy(dst, src, sizeof(void*));
      }};

  alignas(alignof(std::max_align_t)) unsigned char buf_[kInlineSize];
  const Ops* ops_ = nullptr;

  static std::atomic<std::uint64_t> heap_allocs_;
};

/// Construction parameters for a sharded engine. Default-constructed (or
/// lanes <= 0) selects the serial reference engine. lanes == 1 runs the full
/// sharded machinery (epochs, deferral, renumbering) over a single lane —
/// the cheapest configuration that exercises every sharded code path, pinned
/// bit-identical to serial by the equivalence tests.
struct EngineConfig {
  int lanes = 0;       ///< event lanes; <= 0 selects the serial engine
  int threads = 1;     ///< OS threads draining lanes within an epoch
  int nranks = 1;      ///< rank space partitioned onto the lanes
  Time lookahead = 0.0;  ///< conservative window; must be > 0 when sharded
  /// Adaptive lookahead: when every pending event sits on one lane (a
  /// low-traffic phase — a straggler finishing a tail, gaps between jobs),
  /// extend that lane's epoch window from the actual pending-delivery
  /// picture instead of the static start+lookahead bound, up to window_cap
  /// lookaheads, shrinking back dynamically to the first event that escapes
  /// the epoch. One wide epoch then replaces up to window_cap barrier
  /// crossings. Results are bit-identical to conservative mode: the
  /// extension only fires when the epoch is a serial prefix, and the shrink
  /// keeps it a clean time cut of the serial execution.
  bool adaptive = false;
  /// Cap on adaptive windows, in lookahead units past the epoch start,
  /// bounding per-epoch deferred-buffer growth.
  double window_cap = 64.0;
};

/// Aggregate engine counters (see Engine::stats). Zero-cost bookkeeping —
/// everything here is maintained on paths that already touch the fields.
struct EngineStats {
  std::uint64_t epochs = 0;            ///< completed [T, W) windows
  std::uint64_t deferred_events = 0;   ///< pushes renumbered at barriers
  std::uint64_t deferred_txns = 0;     ///< shared() transactions replayed
  std::uint64_t adaptive_extensions = 0;  ///< epochs with a window beyond
                                          ///< the conservative bound
  double barrier_seconds = 0.0;  ///< wall time inside epoch barriers
  double run_seconds = 0.0;      ///< wall time inside Engine::run
  std::uint64_t fn_arena_slabs = 0;    ///< closure-arena slab allocations
  std::uint64_t fn_heap_allocs = 0;    ///< process-wide oversize closures
};

/// The event queue + virtual clock. One Engine underlies one simulated
/// cluster run; all runtimes, networks, and BSP executors schedule on it.
class Engine {
 public:
  Engine() { queue_.reserve(kInitialQueueCapacity); }
  explicit Engine(const EngineConfig& cfg);
  Engine(const Engine&) = delete;
  Engine& operator=(const Engine&) = delete;
  ~Engine();

  /// True when this engine runs the sharded (lane + epoch barrier) core.
  [[nodiscard]] bool sharded() const { return sharded_; }
  /// Number of event lanes (1 in serial mode; excludes the shared lane).
  [[nodiscard]] int lanes() const {
    return sharded_ ? static_cast<int>(lanes_.size()) - 1 : 1;
  }
  /// Lane owning simulated rank r (0 in serial mode). Contiguous blocks of
  /// ranks share a lane so nearest-neighbour traffic stays lane-local.
  [[nodiscard]] int lane_of(int rank) const {
    if (!sharded_) return 0;
    return static_cast<int>((static_cast<long long>(rank) * lanes()) / nranks_);
  }
  /// The coordinator lane for state shared by all ranks (fabric bisection,
  /// fault draws). Its events execute serially at epoch barriers.
  [[nodiscard]] int shared_lane() const { return sharded_ ? lanes() : 0; }

  /// Current virtual time (of the executing lane during a sharded epoch).
  [[nodiscard]] Time now() const;

  /// Schedule `fn` at absolute virtual time `t` (must be >= now()) on the
  /// current lane (the ambient lane under World::run_as, or the executing
  /// event's lane). The templates wrap the callable in an EventFn backed by
  /// the executing lane's closure arena; pre-built EventFns pass through.
  void at(Time t, EventFn fn);
  template <class F, class = std::enable_if_t<!std::is_same_v<
                         std::remove_cv_t<std::remove_reference_t<F>>, EventFn>>>
  void at(Time t, F&& fn) {
    at(t, EventFn(std::forward<F>(fn), &push_arena()));
  }

  /// Schedule `fn` `dt` seconds from now.
  template <class F>
  void after(Time dt, F&& fn) {
    at(now() + dt, std::forward<F>(fn));
  }

  /// Schedule on an explicit lane. Cross-lane events must land at or beyond
  /// the destination lane's epoch window (conservative lookahead); the
  /// network layer guarantees this because every cross-rank delivery pays at
  /// least the minimum link latency. In serial mode these are plain at().
  void at_on(int lane, Time t, EventFn fn);
  template <class F, class = std::enable_if_t<!std::is_same_v<
                         std::remove_cv_t<std::remove_reference_t<F>>, EventFn>>>
  void at_on(int lane, Time t, F&& fn) {
    at_on(lane, t, EventFn(std::forward<F>(fn), &push_arena()));
  }
  template <class F>
  void after_on(int lane, Time dt, F&& fn) {
    at_on(lane, now() + dt, std::forward<F>(fn));
  }

  /// Run `fn` against shared simulator state (fabric bisection queue, fault
  /// ordinals). Serial mode: an inline call — zero behavioral change. In a
  /// sharded epoch the call is deferred to the barrier and replayed in
  /// exact serial order with the virtual clock rewound to the caller's now,
  /// so shared FIFO queues and fault draws observe the same sequence of
  /// requests as the serial reference.
  void shared(EventFn fn);
  template <class F, class = std::enable_if_t<!std::is_same_v<
                         std::remove_cv_t<std::remove_reference_t<F>>, EventFn>>>
  void shared(F&& fn) {
    shared(EventFn(std::forward<F>(fn), &push_arena()));
  }

  /// Handle to a cancellable event (see at_cancellable). Tokens refer to a
  /// pooled slot plus a generation stamp: cancelling a stale token (whose
  /// event already ran and returned the slot to the pool) is a safe no-op.
  struct CancelToken {
    CancelSlot* slot = nullptr;
    std::uint32_t gen = 0;
    [[nodiscard]] explicit operator bool() const { return slot != nullptr; }
  };

  /// Schedule `fn` like at(), returning a token that can cancel it. A
  /// cancelled event behaves as if it were never scheduled: it does not run,
  /// does not advance the clock, and does not count as processed. The
  /// resilience layer uses this for retransmission timeouts so an acked
  /// message leaves no trace on the virtual timeline. Cancellable events
  /// are lane-local: both the arm and the cancel must happen on the owning
  /// lane (retransmission timers arm and cancel on the sender's rank).
  CancelToken at_cancellable(Time t, EventFn fn);
  template <class F, class = std::enable_if_t<!std::is_same_v<
                         std::remove_cv_t<std::remove_reference_t<F>>, EventFn>>>
  CancelToken at_cancellable(Time t, F&& fn) {
    return at_cancellable(t, EventFn(std::forward<F>(fn), &push_arena()));
  }
  template <class F>
  CancelToken after_cancellable(Time dt, F&& fn) {
    return at_cancellable(now() + dt, std::forward<F>(fn));
  }
  static void cancel(const CancelToken& token);

  /// Run until the event queue is empty. Returns the final virtual time,
  /// i.e. the makespan of everything scheduled.
  Time run();

  /// Run until `pred()` becomes true after some event, or the queue drains.
  /// Serial mode only (tests).
  Time run_until(const std::function<bool()>& pred);

  /// Number of events processed so far (for tests / stats).
  [[nodiscard]] std::uint64_t events_processed() const;

  /// True if no pending events remain.
  [[nodiscard]] bool idle() const;

  /// Cancel slots currently on the free list (for tests of the pool).
  [[nodiscard]] std::size_t pooled_cancel_slots() const;

  /// Epochs completed so far (0 on the serial engine). An epoch is one
  /// [T, W) window: lane drains + one barrier.
  [[nodiscard]] std::uint64_t epochs() const { return epochs_; }

  /// Aggregate counters: epochs, deferred work, barrier wall-time share,
  /// closure-arena allocation totals. Surfaced by --trace-summary and the
  /// scale bench; cheap enough to keep always-on.
  [[nodiscard]] EngineStats stats() const;

  /// Scoped ambient-lane override: while alive, at()/after() calls with no
  /// explicit lane route to `lane`. World::run_as(r, ...) wraps execution in
  /// a LaneScope for r's lane so existing runtime code routes correctly
  /// without per-call plumbing. No-op on a serial engine.
  class LaneScope {
   public:
    LaneScope(Engine& eng, int lane);
    ~LaneScope();
    LaneScope(const LaneScope&) = delete;
    LaneScope& operator=(const LaneScope&) = delete;

   private:
    int* slot_ = nullptr;  // ambient-lane variable overridden (null = no-op)
    int saved_ = 0;
  };

 private:
  static constexpr std::size_t kInitialQueueCapacity = 1024;
  /// Child-index stride of a normal push; barrier-replayed shared
  /// transactions interleave their pushes at their own index with unit
  /// stride (matching the serial engine, where the transaction body ran
  /// inline inside the parent event).
  static constexpr std::uint64_t kIdxStep = 1ull << 20;
  static constexpr int kNoLane = -1;

  // ---- serial reference engine ----
  struct Event {
    Time time = 0.0;
    std::uint64_t seq = 0;  // tie-break: FIFO among simultaneous events
    EventFn fn;
    CancelSlot* slot = nullptr;  // null for ordinary (non-cancellable) events
    std::uint32_t gen = 0;       // generation the slot had when this event armed
  };
  struct Later {
    bool operator()(const Event& a, const Event& b) const {
      if (a.time != b.time) return a.time > b.time;
      return a.seq > b.seq;
    }
  };

  void push(Time t, EventFn fn, CancelSlot* slot, std::uint32_t gen);
  /// Pop the earliest event off the heap (moved out, never copied).
  Event pop_front();
  CancelSlot* acquire_slot();

  Time now_ = 0.0;
  std::uint64_t next_seq_ = 0;
  std::uint64_t processed_ = 0;
  // The serial engine's closure arena; declared before queue_ so pending
  // events (holding arena blocks) are destroyed before their storage.
  FnArena fn_arena_;
  std::vector<Event> queue_;  // binary heap ordered by Later
  // Cancel-slot pool: deque gives stable addresses for outstanding tokens;
  // slots recycle through free_slots_ when their event pops.
  std::deque<CancelSlot> slots_;
  std::vector<CancelSlot*> free_slots_;

  // ---- sharded engine ----
  //
  // OrderKey: the serial engine breaks time ties by global push sequence.
  // During a sharded epoch that sequence is unknowable (lanes drain
  // concurrently), so an event pushed within the current epoch instead
  // carries a *composite* key naming its push position: (parent execution
  // time, parent's key, child index within the parent). Keys compare as the
  // serial push order would:
  //
  //   * scalar vs scalar     — numeric (both were assigned in serial order);
  //   * scalar vs composite  — the scalar first (every scalar was assigned
  //                            before the current epoch began, i.e. pushed
  //                            serially before any push of this epoch);
  //   * composite vs composite — lexicographic (parent time, parent key
  //                            recursively, child index): pushes happen
  //                            during parent executions, which are ordered
  //                            by (time, key), and within one parent by
  //                            child index.
  //
  // At the epoch barrier every deferred push (cross-lane, or same-lane
  // beyond the epoch) is sorted by its composite key and assigned the next
  // scalar from a monotone global counter — exactly the sequence numbers
  // the serial engine would have handed out. Composite keys never survive a
  // barrier, so the scalar-before-composite rule stays valid every epoch.
  struct KeyNode {
    Time ptime = 0.0;               ///< parent's execution time
    const KeyNode* pkey = nullptr;  ///< parent's composite key (else scalar)
    std::uint64_t pscalar = 0;      ///< parent's scalar key when pkey null
    std::uint64_t idx = 0;          ///< push index within the parent
  };
  [[nodiscard]] static bool key_less(std::uint64_t as, const KeyNode* an,
                                     std::uint64_t bs, const KeyNode* bn);
  [[nodiscard]] static bool node_less(const KeyNode& a, const KeyNode& b);

  struct Ev {
    Time time = 0.0;
    std::uint64_t scalar = 0;       ///< order key when node == nullptr
    const KeyNode* key = nullptr;   ///< composite order key (epoch-local)
    EventFn fn;
    CancelSlot* slot = nullptr;
    std::uint32_t gen = 0;
  };
  struct EvLater {
    bool operator()(const Ev& a, const Ev& b) const {
      if (a.time != b.time) return a.time > b.time;
      return key_less(b.scalar, b.key, a.scalar, a.key);
    }
  };

  /// A push (or shared transaction) buffered during an epoch, renumbered /
  /// replayed at the barrier. The (ptime, pscalar/pkey, idx) triple is its
  /// serial push position.
  struct Deferred {
    Time ptime = 0.0;
    std::uint64_t pscalar = 0;
    const KeyNode* pkey = nullptr;
    std::uint64_t idx = 0;
    int lane = 0;     ///< destination lane (events) — unused for txns
    Time time = 0.0;  ///< event time; == ptime for shared transactions
    EventFn fn;
    CancelSlot* slot = nullptr;
    std::uint32_t gen = 0;
    bool txn = false;
    std::uint64_t scalar = 0;  ///< renumbered key (assigned at the barrier)
  };
  [[nodiscard]] static bool deferred_less(const Deferred& a, const Deferred& b);

  /// Bump allocator for epoch-local composite keys. Chunks give stable
  /// addresses (heap events hold KeyNode pointers across pushes) and are
  /// kept across epochs: reset() just rewinds the bump cursor, so steady
  /// state allocates nothing — unlike a deque, whose clear() returns its
  /// blocks to the allocator every epoch.
  class KeyArena {
   public:
    const KeyNode* make(Time ptime, const KeyNode* pkey, std::uint64_t pscalar,
                        std::uint64_t idx) {
      const std::size_t c = used_ / kChunk;
      if (c == chunks_.size()) chunks_.emplace_back(kChunk);
      KeyNode* n = &chunks_[c][used_ % kChunk];
      ++used_;
      *n = KeyNode{ptime, pkey, pscalar, idx};
      return n;
    }
    void reset() { used_ = 0; }

   private:
    static constexpr std::size_t kChunk = 4096;
    // Full-sized inner vectors: growing the outer vector moves them without
    // touching their elements, so handed-out KeyNode* stay valid.
    std::vector<std::vector<KeyNode>> chunks_;
    std::size_t used_ = 0;
  };

  struct Lane {
    // The closure arena outlives every container that can hold EventFns
    // borrowing its blocks (members destroy in reverse declaration order;
    // ~Engine additionally clears all heaps first for cross-lane blocks).
    FnArena fn_arena;
    std::vector<Ev> heap;  // binary heap ordered by EvLater
    std::deque<CancelSlot> slots;
    std::vector<CancelSlot*> free_slots;
    KeyArena arena;                  ///< epoch-local composite keys
    std::vector<Deferred> deferred;  ///< pushes buffered for the barrier,
                                     ///< appended — hence kept — in serial
                                     ///< push order (see drain_lane)
    Time now = 0.0;
    std::uint64_t processed = 0;
  };

  /// Everything "who is executing right now" — one per draining thread.
  struct ExecCtx {
    Engine* eng = nullptr;
    int lane = kNoLane;   ///< lane whose events are executing
    int ambient = kNoLane;  ///< default push target (LaneScope overrides)
    Time now = 0.0;
    std::uint64_t pscalar = 0;       ///< executing event's key...
    const KeyNode* pkey = nullptr;   ///< ...(scalar or composite)
    std::uint64_t next_idx = 0;      ///< child counter for pushes
    std::uint64_t idx_step = kIdxStep;
    bool barrier = false;  ///< replaying shared work at the epoch barrier
  };

  /// The executing context on this thread, if it belongs to this engine.
  static thread_local ExecCtx* tls_ctx_;

  [[nodiscard]] ExecCtx* ctx() const;
  [[nodiscard]] int current_target_lane() const;
  /// Closure arena for a push made right now: the executing lane's (the
  /// shared lane's at the barrier or from driver context), the engine-wide
  /// arena when serial. Cross-lane pushes still draw from the *source*
  /// lane's arena; the block routes home on release.
  [[nodiscard]] FnArena& push_arena();
  void sharded_at(int lane, Time t, EventFn fn, CancelSlot* slot,
                  std::uint32_t gen);
  void lane_push(Lane& ln, Time t, EventFn fn, std::uint64_t scalar,
                 const KeyNode* key, CancelSlot* slot, std::uint32_t gen);
  void drain_lane(int lane_idx);
  void redistribute_lane(int lane_idx);
  void merge_deferred();
  Time compute_windows();
  void run_pool_phase(int phase, int count);
  void run_epoch_lanes();
  void barrier();
  Time sharded_run();
  void start_workers();
  void stop_workers();

  bool sharded_ = false;
  int nranks_ = 1;
  int threads_ = 1;
  Time lookahead_ = 0.0;
  bool adaptive_ = false;
  double window_cap_ = 64.0;
  std::vector<Lane> lanes_;  ///< [0, lanes) rank lanes + [lanes] shared lane
  std::uint64_t next_scalar_ = 0;
  std::uint64_t epochs_ = 0;
  /// Per-lane epoch windows [start, window_[l]): conservative mode sets all
  /// of them to start+lookahead. Adaptive mode additionally extends the one
  /// lane holding every pending event (single-active-lane regime) up to
  /// start + window_cap * lookahead; the extended lane's own escaped pushes
  /// and transactions shrink its entry mid-drain back to the first time that
  /// leaves the epoch, so the epoch stays a time cut of the serial run.
  std::vector<Time> window_;
  /// Lane extended this epoch under adaptive lookahead, -1 when none. Set
  /// between epochs; during the epoch only that lane's thread executes
  /// events, so the mid-drain window shrinks are single-writer.
  int extended_lane_ = -1;
  Time global_now_ = 0.0;  ///< driver-visible clock between epochs/runs
  bool in_epoch_ = false;
  int driver_ambient_ = kNoLane;  ///< ambient lane outside event execution
  std::vector<Deferred> barrier_deferred_;  ///< pushes made during replay
  // Barrier scratch, reused every epoch (capacity survives; steady-state
  // barriers allocate nothing). merged_ holds the k-way merge of the lanes'
  // already-sorted deferred vectors; redist_ buckets renumbered records by
  // destination lane for the parallel heap-push phase.
  std::vector<Deferred*> merged_;
  std::vector<std::pair<Deferred*, Deferred*>> merge_cursors_;
  std::vector<std::vector<Deferred*>> redist_;

  // ---- stats ----
  std::uint64_t deferred_events_ = 0;
  std::uint64_t deferred_txns_ = 0;
  std::uint64_t adaptive_extensions_ = 0;
  std::uint64_t barrier_ns_ = 0;
  std::uint64_t run_ns_ = 0;

  // Worker pool (threads_ > 1): persistent threads woken per phase; work
  // items (lanes to drain, destination lanes to redistribute into) are
  // claimed via an atomic cursor so the partition is dynamic, and every
  // per-lane structure is touched by exactly one thread per phase.
  static constexpr int kPhaseDrain = 0;
  static constexpr int kPhaseRedistribute = 1;
  std::vector<std::thread> workers_;
  std::mutex pool_mu_;
  std::condition_variable pool_cv_;
  std::condition_variable pool_done_cv_;
  std::uint64_t phase_gen_ = 0;
  int pool_active_ = 0;
  bool pool_shutdown_ = false;
  int pool_phase_ = kPhaseDrain;
  int pool_count_ = 0;
  std::atomic<int> work_cursor_{0};
};

}  // namespace ttg::sim
