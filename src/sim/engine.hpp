// Discrete-event simulation engine.
//
// The paper's evaluation ran on real clusters (Hawk, Seawulf). We do not
// have a cluster, so distributed execution is reproduced as a deterministic
// discrete-event simulation: ranks, worker threads and NICs are virtual
// resources, a time-ordered event queue is drained, and task bodies execute
// real C++ code while their *duration* is charged to the virtual clock from
// a calibrated cost model. Events at equal times are ordered by insertion
// sequence, making every run bit-reproducible.
//
// Two execution modes share this interface:
//
//   * serial  — the reference engine: one binary heap, one OS thread. Every
//               baseline number in ci/BENCH_*.json was produced by this mode
//               and stays bit-identical.
//   * sharded — conservative parallel DES for 1k–10k simulated ranks. Ranks
//               are partitioned into per-lane event heaps; lanes drain
//               epochs [T, T+L) independently (optionally on a thread
//               pool), where the lookahead L is bounded by the minimum
//               cross-rank link latency, and merge at an epoch barrier. The
//               barrier renumbers every deferred push in *serial* push
//               order (see OrderKey below), so a sharded run is
//               bit-identical to the serial reference — pinned by
//               tests/test_scale_equiv.cpp.
//
// Hot-path engineering: queues are binary heaps over reserved vectors (no
// node allocations, events move — never copy — on pop), and cancellable
// events borrow a pooled cancel slot instead of allocating a shared_ptr
// flag per timer, so arming and cancelling retransmission timeouts is
// allocation-free at steady state. The sharded mode's per-lane heaps stay
// small and cache-resident where the serial heap grows with total in-flight
// events; this is where its throughput advantage at scale comes from.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <limits>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "support/error.hpp"

namespace ttg::sim {

/// Virtual time in seconds.
using Time = double;

/// Pooled cancellation flag for one armed cancellable event. The generation
/// stamp invalidates tokens left over from a previous occupancy of the slot.
struct CancelSlot {
  std::uint32_t gen = 0;
  bool cancelled = false;
};

/// Construction parameters for a sharded engine. Default-constructed (or
/// lanes <= 0) selects the serial reference engine. lanes == 1 runs the full
/// sharded machinery (epochs, deferral, renumbering) over a single lane —
/// the cheapest configuration that exercises every sharded code path, pinned
/// bit-identical to serial by the equivalence tests.
struct EngineConfig {
  int lanes = 0;       ///< event lanes; <= 0 selects the serial engine
  int threads = 1;     ///< OS threads draining lanes within an epoch
  int nranks = 1;      ///< rank space partitioned onto the lanes
  Time lookahead = 0.0;  ///< conservative window; must be > 0 when sharded
};

/// The event queue + virtual clock. One Engine underlies one simulated
/// cluster run; all runtimes, networks, and BSP executors schedule on it.
class Engine {
 public:
  Engine() { queue_.reserve(kInitialQueueCapacity); }
  explicit Engine(const EngineConfig& cfg);
  Engine(const Engine&) = delete;
  Engine& operator=(const Engine&) = delete;
  ~Engine();

  /// True when this engine runs the sharded (lane + epoch barrier) core.
  [[nodiscard]] bool sharded() const { return sharded_; }
  /// Number of event lanes (1 in serial mode; excludes the shared lane).
  [[nodiscard]] int lanes() const {
    return sharded_ ? static_cast<int>(lanes_.size()) - 1 : 1;
  }
  /// Lane owning simulated rank r (0 in serial mode). Contiguous blocks of
  /// ranks share a lane so nearest-neighbour traffic stays lane-local.
  [[nodiscard]] int lane_of(int rank) const {
    if (!sharded_) return 0;
    return static_cast<int>((static_cast<long long>(rank) * lanes()) / nranks_);
  }
  /// The coordinator lane for state shared by all ranks (fabric bisection,
  /// fault draws). Its events execute serially at epoch barriers.
  [[nodiscard]] int shared_lane() const { return sharded_ ? lanes() : 0; }

  /// Current virtual time (of the executing lane during a sharded epoch).
  [[nodiscard]] Time now() const;

  /// Schedule `fn` at absolute virtual time `t` (must be >= now()) on the
  /// current lane (the ambient lane under World::run_as, or the executing
  /// event's lane).
  void at(Time t, std::function<void()> fn);

  /// Schedule `fn` `dt` seconds from now.
  void after(Time dt, std::function<void()> fn) { at(now() + dt, std::move(fn)); }

  /// Schedule on an explicit lane. Cross-lane events must land at or beyond
  /// the current epoch's end (conservative lookahead); the network layer
  /// guarantees this because every cross-rank delivery pays at least the
  /// minimum link latency. In serial mode these are plain at()/after().
  void at_on(int lane, Time t, std::function<void()> fn);
  void after_on(int lane, Time dt, std::function<void()> fn) {
    at_on(lane, now() + dt, std::move(fn));
  }

  /// Run `fn` against shared simulator state (fabric bisection queue, fault
  /// ordinals). Serial mode: an inline call — zero behavioral change. In a
  /// sharded epoch the call is deferred to the barrier and replayed in
  /// exact serial order with the virtual clock rewound to the caller's now,
  /// so shared FIFO queues and fault draws observe the same sequence of
  /// requests as the serial reference.
  void shared(std::function<void()> fn);

  /// Handle to a cancellable event (see at_cancellable). Tokens refer to a
  /// pooled slot plus a generation stamp: cancelling a stale token (whose
  /// event already ran and returned the slot to the pool) is a safe no-op.
  struct CancelToken {
    CancelSlot* slot = nullptr;
    std::uint32_t gen = 0;
    [[nodiscard]] explicit operator bool() const { return slot != nullptr; }
  };

  /// Schedule `fn` like at(), returning a token that can cancel it. A
  /// cancelled event behaves as if it were never scheduled: it does not run,
  /// does not advance the clock, and does not count as processed. The
  /// resilience layer uses this for retransmission timeouts so an acked
  /// message leaves no trace on the virtual timeline. Cancellable events
  /// are lane-local: both the arm and the cancel must happen on the owning
  /// lane (retransmission timers arm and cancel on the sender's rank).
  CancelToken at_cancellable(Time t, std::function<void()> fn);
  CancelToken after_cancellable(Time dt, std::function<void()> fn) {
    return at_cancellable(now() + dt, std::move(fn));
  }
  static void cancel(const CancelToken& token);

  /// Run until the event queue is empty. Returns the final virtual time,
  /// i.e. the makespan of everything scheduled.
  Time run();

  /// Run until `pred()` becomes true after some event, or the queue drains.
  /// Serial mode only (tests).
  Time run_until(const std::function<bool()>& pred);

  /// Number of events processed so far (for tests / stats).
  [[nodiscard]] std::uint64_t events_processed() const;

  /// True if no pending events remain.
  [[nodiscard]] bool idle() const;

  /// Cancel slots currently on the free list (for tests of the pool).
  [[nodiscard]] std::size_t pooled_cancel_slots() const;

  /// Epochs completed so far (0 on the serial engine). An epoch is one
  /// [T, T+L) window: lane drains + one barrier.
  [[nodiscard]] std::uint64_t epochs() const { return epochs_; }

  /// Scoped ambient-lane override: while alive, at()/after() calls with no
  /// explicit lane route to `lane`. World::run_as(r, ...) wraps execution in
  /// a LaneScope for r's lane so existing runtime code routes correctly
  /// without per-call plumbing. No-op on a serial engine.
  class LaneScope {
   public:
    LaneScope(Engine& eng, int lane);
    ~LaneScope();
    LaneScope(const LaneScope&) = delete;
    LaneScope& operator=(const LaneScope&) = delete;

   private:
    int* slot_ = nullptr;  // ambient-lane variable overridden (null = no-op)
    int saved_ = 0;
  };

 private:
  static constexpr std::size_t kInitialQueueCapacity = 1024;
  /// Child-index stride of a normal push; barrier-replayed shared
  /// transactions interleave their pushes at their own index with unit
  /// stride (matching the serial engine, where the transaction body ran
  /// inline inside the parent event).
  static constexpr std::uint64_t kIdxStep = 1ull << 20;
  static constexpr int kNoLane = -1;

  // ---- serial reference engine ----
  struct Event {
    Time time = 0.0;
    std::uint64_t seq = 0;  // tie-break: FIFO among simultaneous events
    std::function<void()> fn;
    CancelSlot* slot = nullptr;  // null for ordinary (non-cancellable) events
    std::uint32_t gen = 0;       // generation the slot had when this event armed
  };
  struct Later {
    bool operator()(const Event& a, const Event& b) const {
      if (a.time != b.time) return a.time > b.time;
      return a.seq > b.seq;
    }
  };

  void push(Time t, std::function<void()> fn, CancelSlot* slot, std::uint32_t gen);
  /// Pop the earliest event off the heap (moved out, never copied).
  Event pop_front();
  CancelSlot* acquire_slot();

  Time now_ = 0.0;
  std::uint64_t next_seq_ = 0;
  std::uint64_t processed_ = 0;
  std::vector<Event> queue_;  // binary heap ordered by Later
  // Cancel-slot pool: deque gives stable addresses for outstanding tokens;
  // slots recycle through free_slots_ when their event pops.
  std::deque<CancelSlot> slots_;
  std::vector<CancelSlot*> free_slots_;

  // ---- sharded engine ----
  //
  // OrderKey: the serial engine breaks time ties by global push sequence.
  // During a sharded epoch that sequence is unknowable (lanes drain
  // concurrently), so an event pushed within the current epoch instead
  // carries a *composite* key naming its push position: (parent execution
  // time, parent's key, child index within the parent). Keys compare as the
  // serial push order would:
  //
  //   * scalar vs scalar     — numeric (both were assigned in serial order);
  //   * scalar vs composite  — the scalar first (every scalar was assigned
  //                            before the current epoch began, i.e. pushed
  //                            serially before any push of this epoch);
  //   * composite vs composite — lexicographic (parent time, parent key
  //                            recursively, child index): pushes happen
  //                            during parent executions, which are ordered
  //                            by (time, key), and within one parent by
  //                            child index.
  //
  // At the epoch barrier every deferred push (cross-lane, or same-lane
  // beyond the epoch) is sorted by its composite key and assigned the next
  // scalar from a monotone global counter — exactly the sequence numbers
  // the serial engine would have handed out. Composite keys never survive a
  // barrier, so the scalar-before-composite rule stays valid every epoch.
  struct KeyNode {
    Time ptime = 0.0;               ///< parent's execution time
    const KeyNode* pkey = nullptr;  ///< parent's composite key (else scalar)
    std::uint64_t pscalar = 0;      ///< parent's scalar key when pkey null
    std::uint64_t idx = 0;          ///< push index within the parent
  };
  [[nodiscard]] static bool key_less(std::uint64_t as, const KeyNode* an,
                                     std::uint64_t bs, const KeyNode* bn);
  [[nodiscard]] static bool node_less(const KeyNode& a, const KeyNode& b);

  struct Ev {
    Time time = 0.0;
    std::uint64_t scalar = 0;       ///< order key when node == nullptr
    const KeyNode* key = nullptr;   ///< composite order key (epoch-local)
    std::function<void()> fn;
    CancelSlot* slot = nullptr;
    std::uint32_t gen = 0;
  };
  struct EvLater {
    bool operator()(const Ev& a, const Ev& b) const {
      if (a.time != b.time) return a.time > b.time;
      return key_less(b.scalar, b.key, a.scalar, a.key);
    }
  };

  /// A push (or shared transaction) buffered during an epoch, renumbered /
  /// replayed at the barrier. The (ptime, pscalar/pkey, idx) triple is its
  /// serial push position.
  struct Deferred {
    Time ptime = 0.0;
    std::uint64_t pscalar = 0;
    const KeyNode* pkey = nullptr;
    std::uint64_t idx = 0;
    int lane = 0;     ///< destination lane (events) — unused for txns
    Time time = 0.0;  ///< event time; == ptime for shared transactions
    std::function<void()> fn;
    CancelSlot* slot = nullptr;
    std::uint32_t gen = 0;
    bool txn = false;
  };
  [[nodiscard]] static bool deferred_less(const Deferred& a, const Deferred& b);

  /// Bump allocator for epoch-local composite keys. Chunks give stable
  /// addresses (heap events hold KeyNode pointers across pushes) and are
  /// kept across epochs: reset() just rewinds the bump cursor, so steady
  /// state allocates nothing — unlike a deque, whose clear() returns its
  /// blocks to the allocator every epoch.
  class KeyArena {
   public:
    const KeyNode* make(Time ptime, const KeyNode* pkey, std::uint64_t pscalar,
                        std::uint64_t idx) {
      const std::size_t c = used_ / kChunk;
      if (c == chunks_.size()) chunks_.emplace_back(kChunk);
      KeyNode* n = &chunks_[c][used_ % kChunk];
      ++used_;
      *n = KeyNode{ptime, pkey, pscalar, idx};
      return n;
    }
    void reset() { used_ = 0; }

   private:
    static constexpr std::size_t kChunk = 4096;
    // Full-sized inner vectors: growing the outer vector moves them without
    // touching their elements, so handed-out KeyNode* stay valid.
    std::vector<std::vector<KeyNode>> chunks_;
    std::size_t used_ = 0;
  };

  struct Lane {
    std::vector<Ev> heap;  // binary heap ordered by EvLater
    std::deque<CancelSlot> slots;
    std::vector<CancelSlot*> free_slots;
    KeyArena arena;                  ///< epoch-local composite keys
    std::vector<Deferred> deferred;  ///< pushes buffered for the barrier
    Time now = 0.0;
    std::uint64_t processed = 0;
  };

  /// Everything "who is executing right now" — one per draining thread.
  struct ExecCtx {
    Engine* eng = nullptr;
    int lane = kNoLane;   ///< lane whose events are executing
    int ambient = kNoLane;  ///< default push target (LaneScope overrides)
    Time now = 0.0;
    std::uint64_t pscalar = 0;       ///< executing event's key...
    const KeyNode* pkey = nullptr;   ///< ...(scalar or composite)
    std::uint64_t next_idx = 0;      ///< child counter for pushes
    std::uint64_t idx_step = kIdxStep;
    bool barrier = false;  ///< replaying shared work at the epoch barrier
  };

  /// The executing context on this thread, if it belongs to this engine.
  static thread_local ExecCtx* tls_ctx_;

  [[nodiscard]] ExecCtx* ctx() const;
  [[nodiscard]] int current_target_lane() const;
  void sharded_at(int lane, Time t, std::function<void()> fn, CancelSlot* slot,
                  std::uint32_t gen);
  void lane_push(Lane& ln, Time t, std::function<void()> fn, std::uint64_t scalar,
                 const KeyNode* key, CancelSlot* slot, std::uint32_t gen);
  void drain_lane(int lane_idx);
  void run_epoch_lanes();
  void barrier();
  Time sharded_run();
  void start_workers();
  void stop_workers();

  bool sharded_ = false;
  int nranks_ = 1;
  int threads_ = 1;
  Time lookahead_ = 0.0;
  std::vector<Lane> lanes_;  ///< [0, lanes) rank lanes + [lanes] shared lane
  std::uint64_t next_scalar_ = 0;
  std::uint64_t epochs_ = 0;
  Time epoch_end_ = 0.0;
  Time global_now_ = 0.0;  ///< driver-visible clock between epochs/runs
  bool in_epoch_ = false;
  int driver_ambient_ = kNoLane;  ///< ambient lane outside event execution
  std::vector<Deferred> barrier_deferred_;  ///< pushes made during replay
  // Barrier scratch, reused every epoch (capacity survives; steady-state
  // barriers allocate nothing). Sorting 32-bit positions instead of the
  // ~100-byte Deferred records keeps the sort's data movement small.
  std::vector<Deferred> defer_scratch_;
  std::vector<std::uint32_t> order_scratch_;

  // Worker pool (threads_ > 1): persistent threads woken per epoch; lanes
  // are claimed via an atomic cursor so the partition is dynamic, and every
  // per-lane structure is touched by exactly one thread per epoch.
  std::vector<std::thread> workers_;
  std::mutex pool_mu_;
  std::condition_variable pool_cv_;
  std::condition_variable pool_done_cv_;
  std::uint64_t epoch_gen_ = 0;
  int pool_active_ = 0;
  bool pool_shutdown_ = false;
  std::atomic<int> lane_cursor_{0};
};

}  // namespace ttg::sim
