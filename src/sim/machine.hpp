// Machine models of the paper's evaluation platforms.
//
// Table I + Section III-A of the paper describe two clusters:
//   Hawk    — HPE Apollo at HLRS: dual-socket 64-core AMD EPYC 7742 nodes
//             (evaluation used 60 worker threads/node), 256 GB RAM,
//             Mellanox InfiniBand HDR200 fabric.
//   Seawulf — SBU cluster: dual-socket Intel Xeon Gold 6148 (2x20 cores,
//             evaluation used up to 40 threads), 192 GB RAM, IB FDR.
//
// We reproduce them as parameter sets for the discrete-event simulator.
// Absolute rates are calibration constants (per-core effective DGEMM rate,
// NIC bandwidth/latency, copy bandwidth); all *relative* effects in the
// figures come from the structure of the task graphs and protocols, not
// from these constants.
#pragma once

#include <cstddef>
#include <string>

namespace ttg::sim {

/// Hardware parameters of one simulated cluster.
struct MachineModel {
  std::string name;

  // --- node compute ---
  int cores_per_node = 1;        ///< worker threads used per node
  double core_gflops = 10.0;     ///< effective per-core DGEMM rate [GFLOP/s]
  double copy_bw = 8.0e9;        ///< single-thread memcpy bandwidth [B/s]

  // --- intra-node scheduling (work-stealing substrate) ---
  // Cores split evenly over sockets; a thief core popping another core's
  // deque pays the steal distance in virtual time: bouncing the deque's
  // cache lines stays cheap inside one socket and crosses the inter-socket
  // fabric (Infinity Fabric / UPI) otherwise. Only exercised when
  // WorldConfig::work_stealing is on.
  int sockets_per_node = 1;             ///< NUMA domains per node
  double steal_latency_local = 2.5e-7;  ///< intra-socket steal cost [s]
  double steal_latency_remote = 1.0e-6; ///< cross-socket steal cost [s]

  // --- network ---
  double net_latency = 1.5e-6;   ///< end-to-end small-message latency [s]
  double nic_bw = 12.0e9;        ///< per-node injection bandwidth [B/s]
  double bisection_factor = 0.7; ///< achieved fraction of full bisection bw
  std::size_t eager_threshold = 8192;  ///< bytes; above this use rendezvous
  double am_cpu = 4.0e-7;        ///< CPU time to handle one active message [s]

  // --- accelerators (device compute plane) ---
  // Simulated GPUs per node, mirroring TTG's op_cuda device variants: a task
  // with a registered device op may execute on one of these instead of a
  // core, paying kernel launch overhead plus host<->device staging for any
  // operand not already resident in that GPU's memory. gpus_per_node = 0
  // (the historical models' value) means no device plane exists and every
  // code path is byte-identical to the pre-device runtime.
  int gpus_per_node = 0;            ///< simulated accelerators per node
  double gpu_gflops = 0.0;          ///< effective per-GPU DGEMM rate [GFLOP/s]
  double gpu_launch_overhead = 0.0; ///< per-kernel-launch cost [s]
  double pcie_bw = 1.0;             ///< host<->device staging bandwidth [B/s]
  double pcie_latency = 0.0;        ///< per-staging-transfer latency [s]
  double hbm_bytes = 0.0;           ///< device memory capacity per GPU [B]

  /// Time to execute `flops` floating-point ops on one core at the given
  /// efficiency relative to the effective DGEMM rate.
  [[nodiscard]] double flops_time(double flops, double efficiency = 1.0) const {
    return flops / (efficiency * core_gflops * 1e9);
  }

  /// Time for a single-thread memory copy of `bytes`.
  [[nodiscard]] double copy_time(std::size_t bytes) const {
    return static_cast<double>(bytes) / copy_bw;
  }

  /// Wire time for `bytes` through one NIC.
  [[nodiscard]] double wire_time(std::size_t bytes) const {
    return static_cast<double>(bytes) / nic_bw;
  }

  /// Aggregate node DGEMM rate [GFLOP/s].
  [[nodiscard]] double node_gflops() const { return cores_per_node * core_gflops; }

  /// Time to execute `flops` on one GPU at the given efficiency relative to
  /// the device's effective DGEMM rate (kernel launch overhead not included;
  /// the scheduler charges that per dispatched device task).
  [[nodiscard]] double gpu_flops_time(double flops, double efficiency = 1.0) const {
    return flops / (efficiency * gpu_gflops * 1e9);
  }

  /// Time to stage `bytes` across the host<->device interconnect (one DMA
  /// transfer: fixed latency plus bandwidth term).
  [[nodiscard]] double stage_time(std::size_t bytes) const {
    return pcie_latency + static_cast<double>(bytes) / pcie_bw;
  }
};

/// HLRS Hawk (AMD EPYC 7742, IB HDR200). 60 worker threads per node as in
/// the paper's POTRF/FW experiments.
MachineModel hawk();

/// SBU Seawulf (Xeon Gold 6148, IB FDR). 40 threads, older slower fabric.
MachineModel seawulf();

}  // namespace ttg::sim
