#include "sim/engine.hpp"

#include <algorithm>
#include <cmath>
#include <iterator>
#include <utility>

namespace ttg::sim {

thread_local Engine::ExecCtx* Engine::tls_ctx_ = nullptr;

// ---------------------------------------------------------------------------
// Serial reference engine. This path is byte-for-byte the pre-sharding
// engine: every checked-in baseline was produced by it and must stay
// bit-identical.
// ---------------------------------------------------------------------------

void Engine::push(Time t, std::function<void()> fn, CancelSlot* slot,
                  std::uint32_t gen) {
  queue_.push_back(Event{t, next_seq_++, std::move(fn), slot, gen});
  std::push_heap(queue_.begin(), queue_.end(), Later{});
}

Engine::Event Engine::pop_front() {
  std::pop_heap(queue_.begin(), queue_.end(), Later{});
  Event ev = std::move(queue_.back());
  queue_.pop_back();
  return ev;
}

CancelSlot* Engine::acquire_slot() {
  if (!free_slots_.empty()) {
    CancelSlot* s = free_slots_.back();
    free_slots_.pop_back();
    return s;
  }
  slots_.emplace_back();
  return &slots_.back();
}

void Engine::at(Time t, std::function<void()> fn) {
  if (sharded_) {
    sharded_at(current_target_lane(), t, std::move(fn), nullptr, 0);
    return;
  }
  TTG_CHECK(t >= now_, "event scheduled in the past");
  push(t, std::move(fn), nullptr, 0);
}

void Engine::at_on(int lane, Time t, std::function<void()> fn) {
  if (sharded_) {
    sharded_at(lane, t, std::move(fn), nullptr, 0);
    return;
  }
  TTG_CHECK(t >= now_, "event scheduled in the past");
  push(t, std::move(fn), nullptr, 0);
}

Engine::CancelToken Engine::at_cancellable(Time t, std::function<void()> fn) {
  if (sharded_) {
    const int lane = current_target_lane();
    ExecCtx* c = ctx();
    if (c != nullptr) {
      // Both the timer and its cancel must live on the owning lane: the slot
      // is recycled by whichever lane pops the event, and a cross-lane
      // cancel would race the pop under a threaded drain.
      TTG_CHECK(lane == (c->barrier ? shared_lane() : c->lane),
                "cancellable events are lane-local");
    }
    Lane& ln = lanes_[static_cast<std::size_t>(lane)];
    CancelSlot* slot = nullptr;
    if (!ln.free_slots.empty()) {
      slot = ln.free_slots.back();
      ln.free_slots.pop_back();
    } else {
      ln.slots.emplace_back();
      slot = &ln.slots.back();
    }
    const std::uint32_t gen = slot->gen;
    sharded_at(lane, t, std::move(fn), slot, gen);
    return CancelToken{slot, gen};
  }
  TTG_CHECK(t >= now_, "event scheduled in the past");
  CancelSlot* slot = acquire_slot();
  push(t, std::move(fn), slot, slot->gen);
  return CancelToken{slot, slot->gen};
}

void Engine::cancel(const CancelToken& token) {
  // A stale token (its event already popped, slot recycled under a newer
  // generation) must be a no-op: the slot now guards someone else's event.
  if (token.slot != nullptr && token.slot->gen == token.gen)
    token.slot->cancelled = true;
}

Time Engine::run() {
  if (sharded_) return sharded_run();
  while (!queue_.empty()) {
    Event ev = pop_front();
    if (ev.slot != nullptr) {
      const bool skip = ev.slot->cancelled;
      // Retire the slot: bump the generation so outstanding tokens go stale,
      // then return it to the pool for the next at_cancellable.
      ev.slot->gen += 1;
      ev.slot->cancelled = false;
      free_slots_.push_back(ev.slot);
      if (skip) continue;  // as if never scheduled
    }
    now_ = ev.time;
    ++processed_;
    ev.fn();
  }
  return now_;
}

Time Engine::run_until(const std::function<bool()>& pred) {
  TTG_CHECK(!sharded_, "run_until is only supported by the serial engine");
  while (!queue_.empty()) {
    Event ev = pop_front();
    if (ev.slot != nullptr) {
      const bool skip = ev.slot->cancelled;
      ev.slot->gen += 1;
      ev.slot->cancelled = false;
      free_slots_.push_back(ev.slot);
      if (skip) continue;
    }
    now_ = ev.time;
    ++processed_;
    ev.fn();
    if (pred()) break;
  }
  return now_;
}

// ---------------------------------------------------------------------------
// Sharded engine.
// ---------------------------------------------------------------------------

Engine::Engine(const EngineConfig& cfg) {
  queue_.reserve(kInitialQueueCapacity);
  if (cfg.lanes <= 0) return;  // serial reference engine
  sharded_ = true;
  nranks_ = std::max(1, cfg.nranks);
  threads_ = std::max(1, cfg.threads);
  lookahead_ = cfg.lookahead;
  TTG_CHECK(lookahead_ > 0.0, "sharded engine requires a positive lookahead");
  const int nl = std::min(cfg.lanes, nranks_);
  lanes_.resize(static_cast<std::size_t>(nl) + 1);  // + the shared lane
  for (Lane& ln : lanes_) ln.heap.reserve(kInitialQueueCapacity);
  if (threads_ > 1 && nl > 1) start_workers();
}

Engine::~Engine() { stop_workers(); }

Time Engine::now() const {
  if (!sharded_) return now_;
  const ExecCtx* c = tls_ctx_;
  if (c != nullptr && c->eng == this) return c->now;
  return global_now_;
}

std::uint64_t Engine::events_processed() const {
  if (!sharded_) return processed_;
  std::uint64_t n = 0;
  for (const Lane& ln : lanes_) n += ln.processed;
  return n;
}

bool Engine::idle() const {
  if (!sharded_) return queue_.empty();
  for (const Lane& ln : lanes_)
    if (!ln.heap.empty()) return false;
  return true;
}

std::size_t Engine::pooled_cancel_slots() const {
  if (!sharded_) return free_slots_.size();
  std::size_t n = 0;
  for (const Lane& ln : lanes_) n += ln.free_slots.size();
  return n;
}

Engine::LaneScope::LaneScope(Engine& eng, int lane) {
  if (!eng.sharded_) return;  // no-op: the serial engine has one lane
  ExecCtx* c = Engine::tls_ctx_;
  slot_ = (c != nullptr && c->eng == &eng) ? &c->ambient : &eng.driver_ambient_;
  saved_ = *slot_;
  *slot_ = lane;
}

Engine::LaneScope::~LaneScope() {
  if (slot_ != nullptr) *slot_ = saved_;
}

bool Engine::key_less(std::uint64_t as, const KeyNode* an, std::uint64_t bs,
                      const KeyNode* bn) {
  if (an == nullptr) {
    if (bn == nullptr) return as < bs;
    // Scalars were assigned (in serial push order) no later than the start
    // of the current epoch; composites name pushes made *during* it.
    return true;
  }
  if (bn == nullptr) return false;
  if (an == bn) return false;
  return node_less(*an, *bn);
}

bool Engine::node_less(const KeyNode& a, const KeyNode& b) {
  // A push happens during its parent's execution, so push order is parent
  // execution order — (time, parent key) — then child index within one
  // parent. Note this is deliberately ONE level of time comparison: a
  // deeper "full path" lexicographic compare would mis-order a grandchild
  // against a sibling pushed by an earlier-executing grandparent.
  if (a.ptime != b.ptime) return a.ptime < b.ptime;
  if (a.pkey != b.pkey || (a.pkey == nullptr && a.pscalar != b.pscalar)) {
    if (key_less(a.pscalar, a.pkey, b.pscalar, b.pkey)) return true;
    if (key_less(b.pscalar, b.pkey, a.pscalar, a.pkey)) return false;
  }
  return a.idx < b.idx;
}

bool Engine::deferred_less(const Deferred& a, const Deferred& b) {
  if (a.ptime != b.ptime) return a.ptime < b.ptime;
  if (a.pkey != b.pkey || (a.pkey == nullptr && a.pscalar != b.pscalar)) {
    if (key_less(a.pscalar, a.pkey, b.pscalar, b.pkey)) return true;
    if (key_less(b.pscalar, b.pkey, a.pscalar, a.pkey)) return false;
  }
  return a.idx < b.idx;
}

Engine::ExecCtx* Engine::ctx() const {
  ExecCtx* c = tls_ctx_;
  return (c != nullptr && c->eng == this) ? c : nullptr;
}

int Engine::current_target_lane() const {
  const ExecCtx* c = ctx();
  if (c != nullptr) return c->ambient;
  if (driver_ambient_ != kNoLane) return driver_ambient_;
  return shared_lane();
}

void Engine::lane_push(Lane& ln, Time t, std::function<void()> fn,
                       std::uint64_t scalar, const KeyNode* key, CancelSlot* slot,
                       std::uint32_t gen) {
  ln.heap.push_back(Ev{t, scalar, key, std::move(fn), slot, gen});
  std::push_heap(ln.heap.begin(), ln.heap.end(), EvLater{});
}

void Engine::sharded_at(int lane, Time t, std::function<void()> fn,
                        CancelSlot* slot, std::uint32_t gen) {
  TTG_CHECK(lane >= 0 && lane < static_cast<int>(lanes_.size()),
            "event scheduled on an invalid lane");
  ExecCtx* c = ctx();
  if (c == nullptr) {
    // Driver context (no epoch running): insert directly, keyed by the next
    // scalar — driver pushes are serial, so call order IS serial order.
    TTG_CHECK(t >= global_now_, "event scheduled in the past");
    lane_push(lanes_[static_cast<std::size_t>(lane)], t, std::move(fn),
              next_scalar_++, nullptr, slot, gen);
    return;
  }
  TTG_CHECK(t >= c->now, "event scheduled in the past");
  const std::uint64_t idx = c->next_idx;
  c->next_idx += c->idx_step;
  const int home = c->barrier ? shared_lane() : c->lane;
  if (lane == home && t < epoch_end_) {
    // Same-lane, inside the window: straight into our own heap under a
    // composite key; the ongoing drain will reach it in correct order.
    Lane& ln = lanes_[static_cast<std::size_t>(home)];
    lane_push(ln, t, std::move(fn), 0, ln.arena.make(c->now, c->pkey, c->pscalar, idx),
              slot, gen);
    return;
  }
  if (lane != home) {
    // Conservative lookahead: a cross-lane event must land at or beyond the
    // epoch end. The network guarantees this (minimum link latency >= the
    // lookahead); anything else is a lane-safety bug.
    TTG_CHECK(t >= epoch_end_, "cross-lane event inside the lookahead window");
  }
  // Buffered until the barrier, where it is renumbered in serial push order.
  Deferred d;
  d.ptime = c->now;
  d.pscalar = c->pscalar;
  d.pkey = c->pkey;
  d.idx = idx;
  d.lane = lane;
  d.time = t;
  d.fn = std::move(fn);
  d.slot = slot;
  d.gen = gen;
  d.txn = false;
  if (c->barrier)
    barrier_deferred_.push_back(std::move(d));
  else
    lanes_[static_cast<std::size_t>(c->lane)].deferred.push_back(std::move(d));
}

void Engine::shared(std::function<void()> fn) {
  if (!sharded_) {
    fn();  // serial engine: a plain inline call — zero behavioral change
    return;
  }
  ExecCtx* c = ctx();
  if (c == nullptr || c->barrier) {
    fn();  // driver context / already replaying at the barrier: serial now
    return;
  }
  // Mid-epoch on a lane: defer the whole transaction. It replays at the
  // barrier in serial (time, key) order with the clock rewound to our now,
  // and its pushes interleave into our child-index space at this slot.
  Deferred d;
  d.ptime = c->now;
  d.pscalar = c->pscalar;
  d.pkey = c->pkey;
  d.idx = c->next_idx;
  c->next_idx += c->idx_step;
  d.lane = shared_lane();
  d.time = c->now;
  d.fn = std::move(fn);
  d.txn = true;
  lanes_[static_cast<std::size_t>(c->lane)].deferred.push_back(std::move(d));
}

void Engine::drain_lane(int lane_idx) {
  Lane& ln = lanes_[static_cast<std::size_t>(lane_idx)];
  ExecCtx c;
  c.eng = this;
  c.lane = lane_idx;
  ExecCtx* prev = tls_ctx_;
  tls_ctx_ = &c;
  while (!ln.heap.empty() && ln.heap.front().time < epoch_end_) {
    std::pop_heap(ln.heap.begin(), ln.heap.end(), EvLater{});
    Ev ev = std::move(ln.heap.back());
    ln.heap.pop_back();
    if (ev.slot != nullptr) {
      const bool skip = ev.slot->cancelled;
      ev.slot->gen += 1;
      ev.slot->cancelled = false;
      ln.free_slots.push_back(ev.slot);
      if (skip) continue;
    }
    ln.now = ev.time;
    ++ln.processed;
    c.now = ev.time;
    c.pscalar = ev.scalar;
    c.pkey = ev.key;
    c.next_idx = 0;
    c.idx_step = kIdxStep;
    c.ambient = lane_idx;
    c.barrier = false;
    ev.fn();
  }
  tls_ctx_ = prev;
}

void Engine::run_epoch_lanes() {
  const int nl = lanes();
  if (workers_.empty()) {
    for (int i = 0; i < nl; ++i) drain_lane(i);
    return;
  }
  lane_cursor_.store(0, std::memory_order_relaxed);
  std::unique_lock<std::mutex> lk(pool_mu_);
  ++epoch_gen_;
  pool_active_ = static_cast<int>(workers_.size());
  pool_cv_.notify_all();
  pool_done_cv_.wait(lk, [&] { return pool_active_ == 0; });
}

void Engine::start_workers() {
  const int n = std::min(threads_, lanes());
  workers_.reserve(static_cast<std::size_t>(n));
  for (int w = 0; w < n; ++w) {
    workers_.emplace_back([this] {
      std::uint64_t seen = 0;
      for (;;) {
        std::unique_lock<std::mutex> lk(pool_mu_);
        pool_cv_.wait(lk, [&] { return pool_shutdown_ || epoch_gen_ != seen; });
        if (pool_shutdown_) return;
        seen = epoch_gen_;
        lk.unlock();
        // Claim lanes off the shared cursor: each lane's heap, arena, slot
        // pool and deferred list are touched by exactly one thread per
        // epoch, and the pool mutex orders epochs against each other.
        const int nl = lanes();
        for (;;) {
          const int i = lane_cursor_.fetch_add(1, std::memory_order_relaxed);
          if (i >= nl) break;
          drain_lane(i);
        }
        lk.lock();
        if (--pool_active_ == 0) pool_done_cv_.notify_all();
      }
    });
  }
}

void Engine::stop_workers() {
  if (workers_.empty()) return;
  {
    std::lock_guard<std::mutex> lk(pool_mu_);
    pool_shutdown_ = true;
    pool_cv_.notify_all();
  }
  for (std::thread& t : workers_) t.join();
  workers_.clear();
}

void Engine::barrier() {
  Lane& sh = lanes_[static_cast<std::size_t>(shared_lane())];

  // 1. Gather every push and transaction deferred during the lane drains and
  // order them by serial push position. The records stay where the gather
  // put them; only their 32-bit positions are sorted, and one pass splits
  // the sorted order into transactions (replayed in step 2) and events
  // (renumbered in step 3) without moving a record.
  std::vector<Deferred>& defer = defer_scratch_;
  defer.clear();
  for (int i = 0; i < lanes(); ++i) {
    Lane& ln = lanes_[static_cast<std::size_t>(i)];
    std::move(ln.deferred.begin(), ln.deferred.end(), std::back_inserter(defer));
    ln.deferred.clear();
  }
  std::vector<std::uint32_t>& order = order_scratch_;
  order.resize(defer.size());
  for (std::uint32_t i = 0; i < order.size(); ++i) order[i] = i;
  // deferred_less is a total order with no ties (child indices are unique
  // within a parent, keys unique across parents), so the unstable sort is
  // deterministic regardless of the gather's lane concatenation order.
  std::sort(order.begin(), order.end(), [&](std::uint32_t a, std::uint32_t b) {
    return deferred_less(defer[a], defer[b]);
  });

  // 2. Replay: merge the shared lane's due events with the deferred shared
  // transactions in serial (time, key) order, rewinding the virtual clock to
  // each item's serial timestamp. Shared FIFO resources and fault ordinal
  // counters therefore observe exactly the serial sequence of requests.
  ExecCtx c;
  c.eng = this;
  c.lane = shared_lane();
  c.barrier = true;
  ExecCtx* prev = tls_ctx_;
  tls_ctx_ = &c;
  std::size_t ti = 0;  // cursor over order[], parked on the next transaction
  for (;;) {
    while (ti < order.size() && !defer[order[ti]].txn) ++ti;
    const bool txn_ready = ti < order.size();
    const bool ev_ready = !sh.heap.empty() && sh.heap.front().time < epoch_end_;
    if (!txn_ready && !ev_ready) break;
    bool take_event;
    if (!txn_ready) {
      take_event = true;
    } else if (!ev_ready) {
      take_event = false;
    } else {
      // A transaction's serial position is its parent's execution position.
      const Ev& e = sh.heap.front();
      const Deferred& d = defer[order[ti]];
      take_event = (e.time != d.ptime) ? e.time < d.ptime
                                       : key_less(e.scalar, e.key, d.pscalar, d.pkey);
    }
    if (take_event) {
      std::pop_heap(sh.heap.begin(), sh.heap.end(), EvLater{});
      Ev ev = std::move(sh.heap.back());
      sh.heap.pop_back();
      if (ev.slot != nullptr) {
        const bool skip = ev.slot->cancelled;
        ev.slot->gen += 1;
        ev.slot->cancelled = false;
        sh.free_slots.push_back(ev.slot);
        if (skip) continue;
      }
      sh.now = ev.time;
      ++sh.processed;
      c.now = ev.time;
      c.pscalar = ev.scalar;
      c.pkey = ev.key;
      c.next_idx = 0;
      c.idx_step = kIdxStep;
      c.ambient = shared_lane();
      ev.fn();
    } else {
      Deferred d = std::move(defer[order[ti]]);
      ++ti;
      c.now = d.ptime;
      c.pscalar = d.pscalar;
      c.pkey = d.pkey;
      // The transaction body ran inline inside its parent in the serial
      // engine: its pushes take unit-stride indices at the transaction's own
      // child slot, landing between the parent's surrounding children.
      c.next_idx = d.idx;
      c.idx_step = 1;
      c.ambient = shared_lane();
      d.fn();
    }
  }
  tls_ctx_ = prev;

  // 3. Renumber: every surviving deferred push — cross-lane, same-lane
  // beyond the window, or made during replay — gets the next scalar key in
  // serial push order and enters its destination heap. Replay executed in
  // serial order, so barrier_deferred_ is already sorted: a two-pointer
  // merge with the sorted lane-deferred events avoids re-sorting, and every
  // record moves exactly once, straight into its destination heap. After
  // this no heap holds a composite key, so the epoch arenas can rewind.
  std::size_t ei = 0, bi = 0;
  for (;;) {
    while (ei < order.size() && defer[order[ei]].txn) ++ei;
    const bool ev_ready = ei < order.size();
    const bool rp_ready = bi < barrier_deferred_.size();
    if (!ev_ready && !rp_ready) break;
    Deferred& d = (!rp_ready || (ev_ready && deferred_less(defer[order[ei]],
                                                           barrier_deferred_[bi])))
                      ? defer[order[ei++]]
                      : barrier_deferred_[bi++];
    lane_push(lanes_[static_cast<std::size_t>(d.lane)], d.time, std::move(d.fn),
              next_scalar_++, nullptr, d.slot, d.gen);
  }
  barrier_deferred_.clear();
  for (Lane& ln : lanes_) ln.arena.reset();
}

Time Engine::sharded_run() {
  TTG_CHECK(!in_epoch_, "Engine::run is not reentrant");
  for (;;) {
    Time start = std::numeric_limits<Time>::infinity();
    for (const Lane& ln : lanes_)
      if (!ln.heap.empty()) start = std::min(start, ln.heap.front().time);
    if (start == std::numeric_limits<Time>::infinity()) break;
    epoch_end_ = start + lookahead_;
    // Degenerate guard (t >> lookahead in double precision): drain at least
    // the events at exactly `start` so the loop always makes progress.
    if (!(epoch_end_ > start))
      epoch_end_ = std::nextafter(start, std::numeric_limits<Time>::infinity());
    in_epoch_ = true;
    run_epoch_lanes();
    barrier();
    in_epoch_ = false;
    ++epochs_;
  }
  Time end = global_now_;
  for (const Lane& ln : lanes_) end = std::max(end, ln.now);
  global_now_ = end;
  return global_now_;
}

}  // namespace ttg::sim
