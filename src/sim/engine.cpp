#include "sim/engine.hpp"

#include <utility>

namespace ttg::sim {

void Engine::at(Time t, std::function<void()> fn) {
  TTG_CHECK(t >= now_, "event scheduled in the past");
  queue_.push(Event{t, next_seq_++, std::move(fn), nullptr});
}

Engine::CancelToken Engine::at_cancellable(Time t, std::function<void()> fn) {
  TTG_CHECK(t >= now_, "event scheduled in the past");
  auto token = std::make_shared<bool>(false);
  queue_.push(Event{t, next_seq_++, std::move(fn), token});
  return token;
}

Time Engine::run() {
  while (!queue_.empty()) {
    // Move out of the queue before popping: fn may schedule new events.
    Event ev = std::move(const_cast<Event&>(queue_.top()));
    queue_.pop();
    if (ev.cancelled && *ev.cancelled) continue;  // as if never scheduled
    now_ = ev.time;
    ++processed_;
    ev.fn();
  }
  return now_;
}

Time Engine::run_until(const std::function<bool()>& pred) {
  while (!queue_.empty()) {
    Event ev = std::move(const_cast<Event&>(queue_.top()));
    queue_.pop();
    if (ev.cancelled && *ev.cancelled) continue;
    now_ = ev.time;
    ++processed_;
    ev.fn();
    if (pred()) break;
  }
  return now_;
}

}  // namespace ttg::sim
