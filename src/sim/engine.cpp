#include "sim/engine.hpp"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <utility>

namespace ttg::sim {

thread_local Engine::ExecCtx* Engine::tls_ctx_ = nullptr;
thread_local FnArena::State* FnArena::tls_owner_ = nullptr;

std::atomic<std::uint64_t> EventFn::heap_allocs_{0};

namespace {
std::uint64_t ns_since(const std::chrono::steady_clock::time_point& t0) {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now() - t0)
          .count());
}
}  // namespace

// ---------------------------------------------------------------------------
// Serial reference engine. This path is behaviorally the pre-sharding
// engine: every checked-in baseline was produced by it and must stay
// bit-identical.
// ---------------------------------------------------------------------------

void Engine::push(Time t, EventFn fn, CancelSlot* slot, std::uint32_t gen) {
  queue_.push_back(Event{t, next_seq_++, std::move(fn), slot, gen});
  std::push_heap(queue_.begin(), queue_.end(), Later{});
}

Engine::Event Engine::pop_front() {
  std::pop_heap(queue_.begin(), queue_.end(), Later{});
  Event ev = std::move(queue_.back());
  queue_.pop_back();
  return ev;
}

CancelSlot* Engine::acquire_slot() {
  if (!free_slots_.empty()) {
    CancelSlot* s = free_slots_.back();
    free_slots_.pop_back();
    return s;
  }
  slots_.emplace_back();
  return &slots_.back();
}

FnArena& Engine::push_arena() {
  if (!sharded_) return fn_arena_;
  ExecCtx* c = ctx();
  const int lane = c != nullptr ? (c->barrier ? shared_lane() : c->lane)
                                : shared_lane();
  return lanes_[static_cast<std::size_t>(lane)].fn_arena;
}

void Engine::at(Time t, EventFn fn) {
  if (sharded_) {
    sharded_at(current_target_lane(), t, std::move(fn), nullptr, 0);
    return;
  }
  TTG_CHECK(t >= now_, "event scheduled in the past");
  push(t, std::move(fn), nullptr, 0);
}

void Engine::at_on(int lane, Time t, EventFn fn) {
  if (sharded_) {
    sharded_at(lane, t, std::move(fn), nullptr, 0);
    return;
  }
  TTG_CHECK(t >= now_, "event scheduled in the past");
  push(t, std::move(fn), nullptr, 0);
}

Engine::CancelToken Engine::at_cancellable(Time t, EventFn fn) {
  if (sharded_) {
    const int lane = current_target_lane();
    ExecCtx* c = ctx();
    if (c != nullptr) {
      // Both the timer and its cancel must live on the owning lane: the slot
      // is recycled by whichever lane pops the event, and a cross-lane
      // cancel would race the pop under a threaded drain.
      TTG_CHECK(lane == (c->barrier ? shared_lane() : c->lane),
                "cancellable events are lane-local");
    }
    Lane& ln = lanes_[static_cast<std::size_t>(lane)];
    CancelSlot* slot = nullptr;
    if (!ln.free_slots.empty()) {
      slot = ln.free_slots.back();
      ln.free_slots.pop_back();
    } else {
      ln.slots.emplace_back();
      slot = &ln.slots.back();
    }
    const std::uint32_t gen = slot->gen;
    sharded_at(lane, t, std::move(fn), slot, gen);
    return CancelToken{slot, gen};
  }
  TTG_CHECK(t >= now_, "event scheduled in the past");
  CancelSlot* slot = acquire_slot();
  push(t, std::move(fn), slot, slot->gen);
  return CancelToken{slot, slot->gen};
}

void Engine::cancel(const CancelToken& token) {
  // A stale token (its event already popped, slot recycled under a newer
  // generation) must be a no-op: the slot now guards someone else's event.
  if (token.slot != nullptr && token.slot->gen == token.gen)
    token.slot->cancelled = true;
}

Time Engine::run() {
  if (sharded_) return sharded_run();
  const auto t0 = std::chrono::steady_clock::now();
  FnArena::OwnerScope arena_own(fn_arena_);
  while (!queue_.empty()) {
    Event ev = pop_front();
    if (ev.slot != nullptr) {
      const bool skip = ev.slot->cancelled;
      // Retire the slot: bump the generation so outstanding tokens go stale,
      // then return it to the pool for the next at_cancellable.
      ev.slot->gen += 1;
      ev.slot->cancelled = false;
      free_slots_.push_back(ev.slot);
      if (skip) continue;  // as if never scheduled
    }
    now_ = ev.time;
    ++processed_;
    ev.fn();
  }
  run_ns_ += ns_since(t0);
  return now_;
}

Time Engine::run_until(const std::function<bool()>& pred) {
  TTG_CHECK(!sharded_, "run_until is only supported by the serial engine");
  FnArena::OwnerScope arena_own(fn_arena_);
  while (!queue_.empty()) {
    Event ev = pop_front();
    if (ev.slot != nullptr) {
      const bool skip = ev.slot->cancelled;
      ev.slot->gen += 1;
      ev.slot->cancelled = false;
      free_slots_.push_back(ev.slot);
      if (skip) continue;
    }
    now_ = ev.time;
    ++processed_;
    ev.fn();
    if (pred()) break;
  }
  return now_;
}

// ---------------------------------------------------------------------------
// Sharded engine.
// ---------------------------------------------------------------------------

Engine::Engine(const EngineConfig& cfg) {
  queue_.reserve(kInitialQueueCapacity);
  if (cfg.lanes <= 0) return;  // serial reference engine
  sharded_ = true;
  nranks_ = std::max(1, cfg.nranks);
  threads_ = std::max(1, cfg.threads);
  lookahead_ = cfg.lookahead;
  adaptive_ = cfg.adaptive;
  window_cap_ = std::max(1.0, cfg.window_cap);
  TTG_CHECK(lookahead_ > 0.0, "sharded engine requires a positive lookahead");
  const int nl = std::min(cfg.lanes, nranks_);
  lanes_.resize(static_cast<std::size_t>(nl) + 1);  // + the shared lane
  for (Lane& ln : lanes_) ln.heap.reserve(kInitialQueueCapacity);
  window_.assign(lanes_.size(), 0.0);
  redist_.resize(lanes_.size());
  if (threads_ > 1 && nl > 1) start_workers();
}

Engine::~Engine() {
  stop_workers();
  // Destroy every container that can hold EventFns before the lanes (and
  // their closure arenas) go away: a pending event's closure may live in a
  // block owned by *another* lane's arena, so all arenas must outlive all
  // heaps.
  queue_.clear();
  barrier_deferred_.clear();
  for (Lane& ln : lanes_) {
    ln.heap.clear();
    ln.deferred.clear();
  }
}

Time Engine::now() const {
  if (!sharded_) return now_;
  const ExecCtx* c = tls_ctx_;
  if (c != nullptr && c->eng == this) return c->now;
  return global_now_;
}

std::uint64_t Engine::events_processed() const {
  if (!sharded_) return processed_;
  std::uint64_t n = 0;
  for (const Lane& ln : lanes_) n += ln.processed;
  return n;
}

bool Engine::idle() const {
  if (!sharded_) return queue_.empty();
  for (const Lane& ln : lanes_)
    if (!ln.heap.empty()) return false;
  return true;
}

std::size_t Engine::pooled_cancel_slots() const {
  if (!sharded_) return free_slots_.size();
  std::size_t n = 0;
  for (const Lane& ln : lanes_) n += ln.free_slots.size();
  return n;
}

EngineStats Engine::stats() const {
  EngineStats s;
  s.epochs = epochs_;
  s.deferred_events = deferred_events_;
  s.deferred_txns = deferred_txns_;
  s.adaptive_extensions = adaptive_extensions_;
  s.barrier_seconds = static_cast<double>(barrier_ns_) * 1e-9;
  s.run_seconds = static_cast<double>(run_ns_) * 1e-9;
  s.fn_heap_allocs = EventFn::heap_allocations();
  if (sharded_) {
    for (const Lane& ln : lanes_) s.fn_arena_slabs += ln.fn_arena.slabs_allocated();
  } else {
    s.fn_arena_slabs = fn_arena_.slabs_allocated();
  }
  return s;
}

Engine::LaneScope::LaneScope(Engine& eng, int lane) {
  if (!eng.sharded_) return;  // no-op: the serial engine has one lane
  ExecCtx* c = Engine::tls_ctx_;
  slot_ = (c != nullptr && c->eng == &eng) ? &c->ambient : &eng.driver_ambient_;
  saved_ = *slot_;
  *slot_ = lane;
}

Engine::LaneScope::~LaneScope() {
  if (slot_ != nullptr) *slot_ = saved_;
}

bool Engine::key_less(std::uint64_t as, const KeyNode* an, std::uint64_t bs,
                      const KeyNode* bn) {
  if (an == nullptr) {
    if (bn == nullptr) return as < bs;
    // Scalars were assigned (in serial push order) no later than the start
    // of the current epoch; composites name pushes made *during* it.
    return true;
  }
  if (bn == nullptr) return false;
  if (an == bn) return false;
  return node_less(*an, *bn);
}

bool Engine::node_less(const KeyNode& a, const KeyNode& b) {
  // A push happens during its parent's execution, so push order is parent
  // execution order — (time, parent key) — then child index within one
  // parent. Note this is deliberately ONE level of time comparison: a
  // deeper "full path" lexicographic compare would mis-order a grandchild
  // against a sibling pushed by an earlier-executing grandparent.
  if (a.ptime != b.ptime) return a.ptime < b.ptime;
  if (a.pkey != b.pkey || (a.pkey == nullptr && a.pscalar != b.pscalar)) {
    if (key_less(a.pscalar, a.pkey, b.pscalar, b.pkey)) return true;
    if (key_less(b.pscalar, b.pkey, a.pscalar, a.pkey)) return false;
  }
  return a.idx < b.idx;
}

bool Engine::deferred_less(const Deferred& a, const Deferred& b) {
  if (a.ptime != b.ptime) return a.ptime < b.ptime;
  if (a.pkey != b.pkey || (a.pkey == nullptr && a.pscalar != b.pscalar)) {
    if (key_less(a.pscalar, a.pkey, b.pscalar, b.pkey)) return true;
    if (key_less(b.pscalar, b.pkey, a.pscalar, a.pkey)) return false;
  }
  return a.idx < b.idx;
}

Engine::ExecCtx* Engine::ctx() const {
  ExecCtx* c = tls_ctx_;
  return (c != nullptr && c->eng == this) ? c : nullptr;
}

int Engine::current_target_lane() const {
  const ExecCtx* c = ctx();
  if (c != nullptr) return c->ambient;
  if (driver_ambient_ != kNoLane) return driver_ambient_;
  return shared_lane();
}

void Engine::lane_push(Lane& ln, Time t, EventFn fn, std::uint64_t scalar,
                       const KeyNode* key, CancelSlot* slot, std::uint32_t gen) {
  ln.heap.push_back(Ev{t, scalar, key, std::move(fn), slot, gen});
  std::push_heap(ln.heap.begin(), ln.heap.end(), EvLater{});
}

void Engine::sharded_at(int lane, Time t, EventFn fn, CancelSlot* slot,
                        std::uint32_t gen) {
  TTG_CHECK(lane >= 0 && lane < static_cast<int>(lanes_.size()),
            "event scheduled on an invalid lane");
  ExecCtx* c = ctx();
  if (c == nullptr) {
    // Driver context (no epoch running): insert directly, keyed by the next
    // scalar — driver pushes are serial, so call order IS serial order.
    TTG_CHECK(t >= global_now_, "event scheduled in the past");
    lane_push(lanes_[static_cast<std::size_t>(lane)], t, std::move(fn),
              next_scalar_++, nullptr, slot, gen);
    return;
  }
  TTG_CHECK(t >= c->now, "event scheduled in the past");
  const std::uint64_t idx = c->next_idx;
  c->next_idx += c->idx_step;
  const int home = c->barrier ? shared_lane() : c->lane;
  if (lane == home && t < window_[static_cast<std::size_t>(home)]) {
    // Same-lane, inside the window: straight into our own heap under a
    // composite key; the ongoing drain will reach it in correct order.
    Lane& ln = lanes_[static_cast<std::size_t>(home)];
    lane_push(ln, t, std::move(fn), 0, ln.arena.make(c->now, c->pkey, c->pscalar, idx),
              slot, gen);
    return;
  }
  if (lane != home) {
    // Lane safety: a cross-lane event must land at or beyond the
    // *destination* lane's window. The network guarantees this (every
    // cross-rank delivery pays at least the minimum link latency, and a
    // lane's window never extends past another lane's next event plus that
    // latency); anything else is a lane-safety bug.
    TTG_CHECK(t >= window_[static_cast<std::size_t>(lane)],
              "cross-lane event inside the lookahead window");
  }
  if (!c->barrier && c->lane == extended_lane_) {
    // Extended-epoch cut maintenance: this push escapes the epoch, so the
    // epoch boundary moves down to the event's own time — the serial engine
    // would run it before anything later, and nothing already executed is
    // past it (every executed event precedes the pusher's now; the
    // one-ULP floor keeps the boundary strictly ahead of the pusher).
    Time& w = window_[static_cast<std::size_t>(c->lane)];
    Time s = t < w ? t : w;
    const Time floor =
        std::nextafter(c->now, std::numeric_limits<Time>::infinity());
    w = s < floor ? floor : s;
  }
  // Buffered until the barrier, where it is renumbered in serial push order.
  Deferred d;
  d.ptime = c->now;
  d.pscalar = c->pscalar;
  d.pkey = c->pkey;
  d.idx = idx;
  d.lane = lane;
  d.time = t;
  d.fn = std::move(fn);
  d.slot = slot;
  d.gen = gen;
  d.txn = false;
  if (c->barrier)
    barrier_deferred_.push_back(std::move(d));
  else
    lanes_[static_cast<std::size_t>(c->lane)].deferred.push_back(std::move(d));
}

void Engine::shared(EventFn fn) {
  if (!sharded_) {
    fn();  // serial engine: a plain inline call — zero behavioral change
    return;
  }
  ExecCtx* c = ctx();
  if (c == nullptr || c->barrier) {
    fn();  // driver context / already replaying at the barrier: serial now
    return;
  }
  // Mid-epoch on a lane: defer the whole transaction. It replays at the
  // barrier in serial (time, key) order with the clock rewound to our now,
  // and its pushes interleave into our child-index space at this slot.
  if (c->lane == extended_lane_) {
    // The transaction replays at this epoch's barrier and may push events at
    // now + lookahead or later (the cross-lane delivery contract); cap the
    // extended window there so those pushes stay at or beyond the cut.
    Time& w = window_[static_cast<std::size_t>(c->lane)];
    const Time lim = c->now + lookahead_;
    Time s = lim < w ? lim : w;
    const Time floor =
        std::nextafter(c->now, std::numeric_limits<Time>::infinity());
    w = s < floor ? floor : s;
  }
  Deferred d;
  d.ptime = c->now;
  d.pscalar = c->pscalar;
  d.pkey = c->pkey;
  d.idx = c->next_idx;
  c->next_idx += c->idx_step;
  d.lane = shared_lane();
  d.time = c->now;
  d.fn = std::move(fn);
  d.txn = true;
  lanes_[static_cast<std::size_t>(c->lane)].deferred.push_back(std::move(d));
}

void Engine::drain_lane(int lane_idx) {
  Lane& ln = lanes_[static_cast<std::size_t>(lane_idx)];
  const std::size_t li = static_cast<std::size_t>(lane_idx);
  // Claim the lane's closure arena: this thread is its exclusive driver for
  // the drain, so same-lane frees (timers firing, cancel-skip destruction)
  // recycle through the plain local list without an atomic.
  FnArena::OwnerScope arena_own(ln.fn_arena);
  ExecCtx c;
  c.eng = this;
  c.lane = lane_idx;
  ExecCtx* prev = tls_ctx_;
  tls_ctx_ = &c;
  // The window is re-read every pop: in an extended epoch this lane's own
  // pushes shrink it mid-drain (see sharded_at), and the loop must stop at
  // the final cut. Only this lane's thread ever writes its entry.
  while (!ln.heap.empty() && ln.heap.front().time < window_[li]) {
    std::pop_heap(ln.heap.begin(), ln.heap.end(), EvLater{});
    Ev ev = std::move(ln.heap.back());
    ln.heap.pop_back();
    if (ev.slot != nullptr) {
      const bool skip = ev.slot->cancelled;
      ev.slot->gen += 1;
      ev.slot->cancelled = false;
      ln.free_slots.push_back(ev.slot);
      if (skip) continue;
    }
    ln.now = ev.time;
    ++ln.processed;
    c.now = ev.time;
    c.pscalar = ev.scalar;
    c.pkey = ev.key;
    c.next_idx = 0;
    c.idx_step = kIdxStep;
    c.ambient = lane_idx;
    c.barrier = false;
    ev.fn();
  }
  tls_ctx_ = prev;
  if (lane_idx == extended_lane_) {
    // A mid-drain shrink can strand events pushed in-window earlier in the
    // epoch (composite keys) above the final cut. They have not executed, so
    // they must be renumbered with every other escaped push: convert them
    // back to deferred records — their composite key IS the push-order key —
    // and drop them from the heap. Pre-existing scalar-keyed events are
    // ordinary next-epoch work and stay put.
    auto is_scalar = [](const Ev& e) { return e.key == nullptr; };
    auto mid = std::partition(ln.heap.begin(), ln.heap.end(), is_scalar);
    if (mid != ln.heap.end()) {
      for (auto it = mid; it != ln.heap.end(); ++it) {
        Deferred d;
        d.ptime = it->key->ptime;
        d.pscalar = it->key->pscalar;
        d.pkey = it->key->pkey;
        d.idx = it->key->idx;
        d.lane = lane_idx;
        d.time = it->time;
        d.fn = std::move(it->fn);
        d.slot = it->slot;
        d.gen = it->gen;
        ln.deferred.push_back(std::move(d));
      }
      ln.heap.erase(mid, ln.heap.end());
      std::make_heap(ln.heap.begin(), ln.heap.end(), EvLater{});
    }
  }
  // The lane's deferred vector was appended in pop order — events execute in
  // (time, key) order and child indices grow within a parent — which IS
  // deferred_less order, so the barrier can k-way merge the per-lane vectors
  // instead of sorting the union. Verify the invariant (one linear pass per
  // drain, done in parallel here rather than serially at the barrier) and
  // fall back to a real sort if a future push path ever breaks it.
  if (!std::is_sorted(ln.deferred.begin(), ln.deferred.end(), deferred_less))
    std::sort(ln.deferred.begin(), ln.deferred.end(),
              [](const Deferred& a, const Deferred& b) { return deferred_less(a, b); });
}

void Engine::redistribute_lane(int lane_idx) {
  Lane& ln = lanes_[static_cast<std::size_t>(lane_idx)];
  for (Deferred* d : redist_[static_cast<std::size_t>(lane_idx)])
    lane_push(ln, d->time, std::move(d->fn), d->scalar, nullptr, d->slot, d->gen);
}

void Engine::run_pool_phase(int phase, int count) {
  work_cursor_.store(0, std::memory_order_relaxed);
  std::unique_lock<std::mutex> lk(pool_mu_);
  pool_phase_ = phase;
  pool_count_ = count;
  ++phase_gen_;
  pool_active_ = static_cast<int>(workers_.size());
  pool_cv_.notify_all();
  pool_done_cv_.wait(lk, [&] { return pool_active_ == 0; });
}

void Engine::run_epoch_lanes() {
  const int nl = lanes();
  if (workers_.empty()) {
    for (int i = 0; i < nl; ++i) drain_lane(i);
    return;
  }
  run_pool_phase(kPhaseDrain, nl);
}

void Engine::start_workers() {
  const int n = std::min(threads_, lanes());
  workers_.reserve(static_cast<std::size_t>(n));
  for (int w = 0; w < n; ++w) {
    workers_.emplace_back([this] {
      std::uint64_t seen = 0;
      for (;;) {
        std::unique_lock<std::mutex> lk(pool_mu_);
        pool_cv_.wait(lk, [&] { return pool_shutdown_ || phase_gen_ != seen; });
        if (pool_shutdown_) return;
        seen = phase_gen_;
        const int phase = pool_phase_;
        const int count = pool_count_;
        lk.unlock();
        // Claim work items off the shared cursor: each lane's heap, arenas,
        // slot pool and deferred list (drain phase), or destination bucket
        // (redistribute phase), are touched by exactly one thread per
        // phase, and the pool mutex orders phases against each other.
        for (;;) {
          const int i = work_cursor_.fetch_add(1, std::memory_order_relaxed);
          if (i >= count) break;
          if (phase == kPhaseDrain)
            drain_lane(i);
          else
            redistribute_lane(i);
        }
        lk.lock();
        if (--pool_active_ == 0) pool_done_cv_.notify_all();
      }
    });
  }
}

void Engine::stop_workers() {
  if (workers_.empty()) return;
  {
    std::lock_guard<std::mutex> lk(pool_mu_);
    pool_shutdown_ = true;
    pool_cv_.notify_all();
  }
  for (std::thread& t : workers_) t.join();
  workers_.clear();
}

void Engine::merge_deferred() {
  // K-way merge of the per-lane deferred vectors (each already in
  // deferred_less order — see drain_lane) into one pointer sequence. The
  // ~100-byte records never move; O(N log lanes) comparisons instead of the
  // former O(N log N) central sort.
  merged_.clear();
  auto& cur = merge_cursors_;
  cur.clear();
  std::size_t total = 0;
  for (int i = 0; i < lanes(); ++i) {
    auto& d = lanes_[static_cast<std::size_t>(i)].deferred;
    if (!d.empty()) {
      cur.emplace_back(d.data(), d.data() + d.size());
      total += d.size();
    }
  }
  if (cur.empty()) return;
  merged_.reserve(total);
  // deferred_less is a total order with no ties (child indices are unique
  // within a parent, keys unique across parents), so the merge is
  // deterministic regardless of lane enumeration order.
  const auto later = [](const std::pair<Deferred*, Deferred*>& a,
                        const std::pair<Deferred*, Deferred*>& b) {
    return deferred_less(*b.first, *a.first);
  };
  std::make_heap(cur.begin(), cur.end(), later);
  while (!cur.empty()) {
    std::pop_heap(cur.begin(), cur.end(), later);
    auto& c = cur.back();
    merged_.push_back(c.first++);
    if (c.first == c.second)
      cur.pop_back();
    else
      std::push_heap(cur.begin(), cur.end(), later);
  }
}

void Engine::barrier() {
  const auto bt0 = std::chrono::steady_clock::now();
  Lane& sh = lanes_[static_cast<std::size_t>(shared_lane())];

  // 1. Merge every push and transaction deferred during the lane drains
  // into serial push order (pre-sorted per lane; a k-way merge of
  // pointers).
  merge_deferred();

  // 2. Replay: merge the shared lane's due events with the deferred shared
  // transactions in serial (time, key) order, rewinding the virtual clock to
  // each item's serial timestamp. Shared FIFO resources and fault ordinal
  // counters therefore observe exactly the serial sequence of requests.
  //
  // The replay drains shared-heap events past the shared window whenever
  // they precede a pending transaction in serial order (in an extended
  // epoch the transactions' parent times can lie beyond it). Sound: such an
  // event executes at v >= the shared lane's epoch top, and its own pushes
  // pay the full lookahead from v.
  const Time wsh = window_[static_cast<std::size_t>(shared_lane())];
  // The workers are parked between phases, so the barrier thread is the
  // shared lane's exclusive driver: claim its arena for local-list frees.
  FnArena::OwnerScope arena_own(sh.fn_arena);
  ExecCtx c;
  c.eng = this;
  c.lane = shared_lane();
  c.barrier = true;
  ExecCtx* prev = tls_ctx_;
  tls_ctx_ = &c;
  std::size_t ti = 0;  // cursor over merged_, parked on the next transaction
  for (;;) {
    while (ti < merged_.size() && !merged_[ti]->txn) ++ti;
    const bool txn_ready = ti < merged_.size();
    bool take_event;
    if (!sh.heap.empty()) {
      if (txn_ready) {
        // A transaction's serial position is its parent's execution
        // position.
        const Ev& e = sh.heap.front();
        const Deferred& d = *merged_[ti];
        take_event = (e.time != d.ptime)
                         ? e.time < d.ptime
                         : key_less(e.scalar, e.key, d.pscalar, d.pkey);
      } else {
        if (!(sh.heap.front().time < wsh)) break;
        take_event = true;
      }
    } else {
      if (!txn_ready) break;
      take_event = false;
    }
    if (take_event) {
      std::pop_heap(sh.heap.begin(), sh.heap.end(), EvLater{});
      Ev ev = std::move(sh.heap.back());
      sh.heap.pop_back();
      if (ev.slot != nullptr) {
        const bool skip = ev.slot->cancelled;
        ev.slot->gen += 1;
        ev.slot->cancelled = false;
        sh.free_slots.push_back(ev.slot);
        if (skip) continue;
      }
      sh.now = ev.time;
      ++sh.processed;
      c.now = ev.time;
      c.pscalar = ev.scalar;
      c.pkey = ev.key;
      c.next_idx = 0;
      c.idx_step = kIdxStep;
      c.ambient = shared_lane();
      ev.fn();
    } else {
      Deferred& d = *merged_[ti];
      ++ti;
      ++deferred_txns_;
      c.now = d.ptime;
      c.pscalar = d.pscalar;
      c.pkey = d.pkey;
      // The transaction body ran inline inside its parent in the serial
      // engine: its pushes take unit-stride indices at the transaction's own
      // child slot, landing between the parent's surrounding children.
      c.next_idx = d.idx;
      c.idx_step = 1;
      c.ambient = shared_lane();
      EventFn fn = std::move(d.fn);
      fn();
    }
  }
  tls_ctx_ = prev;

  // 3. Renumber: every surviving deferred push — cross-lane, same-lane
  // beyond the window, or made during replay — gets the next scalar key in
  // serial push order. Replay executed in serial order, so
  // barrier_deferred_ is already sorted: a two-pointer merge with the
  // merged lane events assigns scalars without re-sorting, bucketing each
  // record by destination lane.
  const std::size_t nl = lanes_.size();
  for (auto& bucket : redist_) bucket.clear();
  std::size_t ei = 0, bi = 0;
  for (;;) {
    while (ei < merged_.size() && merged_[ei]->txn) ++ei;
    const bool ev_ready = ei < merged_.size();
    const bool rp_ready = bi < barrier_deferred_.size();
    if (!ev_ready && !rp_ready) break;
    Deferred* d = (!rp_ready || (ev_ready && deferred_less(*merged_[ei],
                                                           barrier_deferred_[bi])))
                      ? merged_[ei++]
                      : &barrier_deferred_[bi++];
    d->scalar = next_scalar_++;
    redist_[static_cast<std::size_t>(d->lane)].push_back(d);
    ++deferred_events_;
  }

  // 4. Redistribute: the actual heap insertions — the expensive part of the
  // old serial barrier — run one destination lane per worker. Scalar keys
  // were assigned above, so insertion order within a lane cannot affect pop
  // order (the comparator is total on (time, scalar)).
  if (workers_.empty()) {
    for (int i = 0; i < static_cast<int>(nl); ++i) redistribute_lane(i);
  } else {
    run_pool_phase(kPhaseRedistribute, static_cast<int>(nl));
  }

  // 5. Epoch teardown. Composite KeyNode pointers were last read by the
  // renumber merge above, so the key arenas can rewind now. The deferred
  // vectors only hold moved-out shells at this point.
  for (int i = 0; i < lanes(); ++i)
    lanes_[static_cast<std::size_t>(i)].deferred.clear();
  barrier_deferred_.clear();
  for (Lane& ln : lanes_) ln.arena.reset();
  barrier_ns_ += ns_since(bt0);
}

Time Engine::compute_windows() {
  // Epoch start = earliest pending event anywhere. For the adaptive mode we
  // also need the second-smallest lane top, to detect the single-active-lane
  // regime (the only one where an extension is sound).
  const std::size_t n = lanes_.size();
  constexpr Time kInf = std::numeric_limits<Time>::infinity();
  Time min1 = kInf, min2 = kInf;
  std::size_t argmin = 0;
  for (std::size_t i = 0; i < n; ++i) {
    const Time top = lanes_[i].heap.empty() ? kInf : lanes_[i].heap.front().time;
    if (top < min1) {
      min2 = min1;
      min1 = top;
      argmin = i;
    } else if (top < min2) {
      min2 = top;
    }
  }
  if (min1 == kInf) return kInf;  // no pending events: run is complete
  const Time start = min1;
  Time conservative = start + lookahead_;
  // Degenerate guard (t >> lookahead in double precision): drain at least
  // the events at exactly `start` so the loop always makes progress.
  if (!(conservative > start)) conservative = std::nextafter(start, kInf);
  for (std::size_t i = 0; i < n; ++i) window_[i] = conservative;
  // Adaptive extension, and why it is restricted to one pending lane:
  // with two active lanes, lane A draining past start + L can replay a
  // shared() transaction at the barrier before lane B has even executed an
  // earlier-time event that also issues one — shared FIFO resources and
  // fault ordinal streams would then observe requests out of serial order.
  // When exactly one regular lane holds every pending event (and the shared
  // heap is empty), the epoch IS a serial prefix: the lane may run ahead up
  // to the cap, and the dynamic shrink in sharded_at/shared() pulls the
  // boundary back to the first event that escapes it, keeping the epoch a
  // clean time cut of the serial execution.
  extended_lane_ = -1;
  if (adaptive_ && min2 == kInf &&
      argmin != static_cast<std::size_t>(shared_lane())) {
    const Time cap = start + window_cap_ * lookahead_;
    if (cap > conservative) {
      window_[argmin] = cap;
      extended_lane_ = static_cast<int>(argmin);
      ++adaptive_extensions_;
    }
  }
  return start;
}

Time Engine::sharded_run() {
  TTG_CHECK(!in_epoch_, "Engine::run is not reentrant");
  const auto t0 = std::chrono::steady_clock::now();
  for (;;) {
    const Time start = compute_windows();
    if (start == std::numeric_limits<Time>::infinity()) break;
    in_epoch_ = true;
    run_epoch_lanes();
    barrier();
    in_epoch_ = false;
    ++epochs_;
  }
  Time end = global_now_;
  for (const Lane& ln : lanes_) end = std::max(end, ln.now);
  global_now_ = end;
  run_ns_ += ns_since(t0);
  return global_now_;
}

}  // namespace ttg::sim
