#include "sim/engine.hpp"

#include <algorithm>
#include <utility>

namespace ttg::sim {

void Engine::push(Time t, std::function<void()> fn, CancelSlot* slot,
                  std::uint32_t gen) {
  queue_.push_back(Event{t, next_seq_++, std::move(fn), slot, gen});
  std::push_heap(queue_.begin(), queue_.end(), Later{});
}

Engine::Event Engine::pop_front() {
  std::pop_heap(queue_.begin(), queue_.end(), Later{});
  Event ev = std::move(queue_.back());
  queue_.pop_back();
  return ev;
}

CancelSlot* Engine::acquire_slot() {
  if (!free_slots_.empty()) {
    CancelSlot* s = free_slots_.back();
    free_slots_.pop_back();
    return s;
  }
  slots_.emplace_back();
  return &slots_.back();
}

void Engine::at(Time t, std::function<void()> fn) {
  TTG_CHECK(t >= now_, "event scheduled in the past");
  push(t, std::move(fn), nullptr, 0);
}

Engine::CancelToken Engine::at_cancellable(Time t, std::function<void()> fn) {
  TTG_CHECK(t >= now_, "event scheduled in the past");
  CancelSlot* slot = acquire_slot();
  push(t, std::move(fn), slot, slot->gen);
  return CancelToken{slot, slot->gen};
}

void Engine::cancel(const CancelToken& token) {
  // A stale token (its event already popped, slot recycled under a newer
  // generation) must be a no-op: the slot now guards someone else's event.
  if (token.slot != nullptr && token.slot->gen == token.gen)
    token.slot->cancelled = true;
}

Time Engine::run() {
  while (!queue_.empty()) {
    Event ev = pop_front();
    if (ev.slot != nullptr) {
      const bool skip = ev.slot->cancelled;
      // Retire the slot: bump the generation so outstanding tokens go stale,
      // then return it to the pool for the next at_cancellable.
      ev.slot->gen += 1;
      ev.slot->cancelled = false;
      free_slots_.push_back(ev.slot);
      if (skip) continue;  // as if never scheduled
    }
    now_ = ev.time;
    ++processed_;
    ev.fn();
  }
  return now_;
}

Time Engine::run_until(const std::function<bool()>& pred) {
  while (!queue_.empty()) {
    Event ev = pop_front();
    if (ev.slot != nullptr) {
      const bool skip = ev.slot->cancelled;
      ev.slot->gen += 1;
      ev.slot->cancelled = false;
      free_slots_.push_back(ev.slot);
      if (skip) continue;
    }
    now_ = ev.time;
    ++processed_;
    ev.fn();
    if (pred()) break;
  }
  return now_;
}

}  // namespace ttg::sim
