#include "sim/fault.hpp"

#include <algorithm>
#include <sstream>

#include "support/error.hpp"
#include "support/rng.hpp"

namespace ttg::sim {

namespace {

// Decision streams: keep each fault dimension's draws independent.
constexpr std::uint64_t kDropStream = 0xd201;
constexpr std::uint64_t kDupStream = 0xd202;
constexpr std::uint64_t kRmaStream = 0xd203;

double parse_double(const std::string& s, const std::string& clause) {
  try {
    std::size_t pos = 0;
    const double v = std::stod(s, &pos);
    TTG_REQUIRE(pos == s.size(), "trailing characters in fault clause: " + clause);
    return v;
  } catch (const support::ApiError&) {
    throw;
  } catch (const std::exception&) {
    throw support::ApiError("bad number '" + s + "' in fault clause: " + clause);
  }
}

int parse_rank(const std::string& s, const std::string& clause) {
  if (s == "*") return -1;
  try {
    std::size_t pos = 0;
    const int v = std::stoi(s, &pos);
    TTG_REQUIRE(pos == s.size() && v >= 0, "bad rank '" + s + "' in: " + clause);
    return v;
  } catch (const support::ApiError&) {
    throw;
  } catch (const std::exception&) {
    throw support::ApiError("bad rank '" + s + "' in fault clause: " + clause);
  }
}

double parse_prob(const std::string& s, const std::string& clause) {
  const double p = parse_double(s, clause);
  TTG_REQUIRE(p >= 0.0 && p <= 1.0, "probability out of [0,1] in: " + clause);
  return p;
}

}  // namespace

const char* to_string(FaultKind k) {
  switch (k) {
    case FaultKind::Drop:
      return "drop";
    case FaultKind::Duplicate:
      return "duplicate";
    case FaultKind::RmaDelay:
      return "rma-delay";
    case FaultKind::Retry:
      return "retry";
    case FaultKind::RmaRetry:
      return "rma-retry";
    case FaultKind::Recovered:
      return "recovered";
    case FaultKind::DeadLetter:
      return "dead-letter";
  }
  return "?";
}

double FaultPlan::compute_factor(int rank) const {
  const auto it = straggler.find(rank);
  return it != straggler.end() ? it->second : straggler_all;
}

LinkPerturb FaultPlan::link(int src, int dst) const {
  // Most-specific rule wins (exact endpoints beat one wildcard beats the
  // global default); among equally specific rules the last parsed wins.
  const LinkRule* best = nullptr;
  int best_score = -1;
  for (const auto& r : links) {
    if ((r.src != -1 && r.src != src) || (r.dst != -1 && r.dst != dst)) continue;
    const int score = (r.src != -1 ? 1 : 0) + (r.dst != -1 ? 1 : 0);
    if (score >= best_score) {
      best_score = score;
      best = &r;
    }
  }
  return best != nullptr ? best->perturb : all_links;
}

double FaultPlan::max_latency_factor() const {
  double f = all_links.latency_factor;
  for (const auto& r : links) f = std::max(f, r.perturb.latency_factor);
  return std::max(f, 1.0);
}

double FaultPlan::min_latency_factor() const {
  double f = all_links.latency_factor;
  for (const auto& r : links) f = std::min(f, r.perturb.latency_factor);
  return std::min(std::max(f, 1e-6), 1.0);
}

double FaultPlan::min_bw_factor() const {
  double f = all_links.bw_factor;
  for (const auto& r : links) f = std::min(f, r.perturb.bw_factor);
  return std::min(std::max(f, 1e-6), 1.0);
}

FaultPlan FaultPlan::parse(const std::string& spec, std::uint64_t seed) {
  FaultPlan plan;
  plan.seed = seed;
  if (spec.empty()) return plan;
  plan.active = true;

  std::stringstream ss(spec);
  std::string clause;
  while (std::getline(ss, clause, ',')) {
    if (clause.empty()) continue;
    const auto eq = clause.find('=');
    TTG_REQUIRE(eq != std::string::npos && eq > 0 && eq + 1 < clause.size(),
                "fault clause is not key=value: " + clause);
    const std::string key = clause.substr(0, eq);
    const std::string val = clause.substr(eq + 1);

    auto split_colon = [&clause](const std::string& s) {
      const auto c = s.find(':');
      TTG_REQUIRE(c != std::string::npos && c > 0 && c + 1 < s.size(),
                  "expected A:B value in fault clause: " + clause);
      return std::pair<std::string, std::string>{s.substr(0, c), s.substr(c + 1)};
    };

    if (key == "drop") {
      plan.drop_prob = parse_prob(val, clause);
    } else if (key == "dup") {
      plan.dup_prob = parse_prob(val, clause);
    } else if (key == "straggler") {
      const auto [rank, factor] = split_colon(val);
      const double f = parse_double(factor, clause);
      TTG_REQUIRE(f > 0.0, "straggler factor must be positive: " + clause);
      const int r = parse_rank(rank, clause);
      if (r < 0) {
        plan.straggler_all = f;
      } else {
        plan.straggler[r] = f;
      }
    } else if (key == "latency" || key == "bw") {
      // LINK:FACTOR, or a bare factor meaning every link.
      std::string link = "*";
      std::string factor = val;
      if (const auto c = val.find(':'); c != std::string::npos) {
        link = val.substr(0, c);
        factor = val.substr(c + 1);
      }
      const double f = parse_double(factor, clause);
      TTG_REQUIRE(f > 0.0, "link factor must be positive: " + clause);
      int src = -1, dst = -1;
      if (link != "*") {
        const auto dash = link.find('-');
        TTG_REQUIRE(dash != std::string::npos, "link must be SRC-DST or '*': " + clause);
        src = parse_rank(link.substr(0, dash), clause);
        dst = parse_rank(link.substr(dash + 1), clause);
      }
      if (src == -1 && dst == -1) {
        (key == "latency" ? plan.all_links.latency_factor : plan.all_links.bw_factor) = f;
      } else {
        // Reuse an existing rule for the same endpoints so "latency=0-1:2,
        // bw=0-1:0.5" perturbs one link both ways.
        LinkRule* rule = nullptr;
        for (auto& r : plan.links) {
          if (r.src == src && r.dst == dst) rule = &r;
        }
        if (rule == nullptr) {
          plan.links.push_back(LinkRule{src, dst, {}});
          rule = &plan.links.back();
        }
        (key == "latency" ? rule->perturb.latency_factor : rule->perturb.bw_factor) = f;
      }
    } else if (key == "rma-delay") {
      const auto [prob, delay] = split_colon(val);
      plan.rma_delay_prob = parse_prob(prob, clause);
      plan.rma_delay = parse_double(delay, clause);
      TTG_REQUIRE(plan.rma_delay >= 0.0, "rma delay must be >= 0: " + clause);
    } else if (key == "rto") {
      plan.rto_base = parse_double(val, clause);
      TTG_REQUIRE(plan.rto_base > 0.0, "rto must be positive: " + clause);
    } else if (key == "retries") {
      plan.max_retries = static_cast<int>(parse_double(val, clause));
      TTG_REQUIRE(plan.max_retries >= 0, "retries must be >= 0: " + clause);
    } else if (key == "backoff") {
      plan.backoff = parse_double(val, clause);
      TTG_REQUIRE(plan.backoff >= 1.0, "backoff must be >= 1: " + clause);
    } else {
      throw support::ApiError("unknown fault clause key '" + key + "' in: " + clause);
    }
  }
  return plan;
}

std::string FaultPlan::describe() const {
  if (!active) return "no faults";
  std::ostringstream os;
  os << "seed=" << seed;
  if (drop_prob > 0.0) os << " drop=" << drop_prob;
  if (dup_prob > 0.0) os << " dup=" << dup_prob;
  if (straggler_all != 1.0) os << " straggler=*:" << straggler_all;
  for (const auto& [r, f] : straggler) os << " straggler=" << r << ":" << f;
  if (all_links.latency_factor != 1.0) os << " latency=*:" << all_links.latency_factor;
  if (all_links.bw_factor != 1.0) os << " bw=*:" << all_links.bw_factor;
  for (const auto& r : links) {
    auto side = [](int v) { return v < 0 ? std::string("*") : std::to_string(v); };
    if (r.perturb.latency_factor != 1.0)
      os << " latency=" << side(r.src) << "-" << side(r.dst) << ":"
         << r.perturb.latency_factor;
    if (r.perturb.bw_factor != 1.0)
      os << " bw=" << side(r.src) << "-" << side(r.dst) << ":" << r.perturb.bw_factor;
  }
  if (rma_delay_prob > 0.0)
    os << " rma-delay=" << rma_delay_prob << ":" << rma_delay;
  return os.str();
}

bool FaultInjector::drop_payload() {
  if (plan_.drop_prob <= 0.0) return false;
  return support::hash_uniform(plan_.seed, kDropStream, n_drop_++) < plan_.drop_prob;
}

bool FaultInjector::duplicate_payload() {
  if (plan_.dup_prob <= 0.0) return false;
  return support::hash_uniform(plan_.seed, kDupStream, n_dup_++) < plan_.dup_prob;
}

double FaultInjector::rma_extra_delay() {
  if (plan_.rma_delay_prob <= 0.0) return 0.0;
  return support::hash_uniform(plan_.seed, kRmaStream, n_rma_++) < plan_.rma_delay_prob
             ? plan_.rma_delay
             : 0.0;
}

}  // namespace ttg::sim
