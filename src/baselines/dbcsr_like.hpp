// DBCSR-like 2.5D SUMMA comparator (Section III-D).
//
// DBCSR (the block-sparse engine of CP2K) implements a 2.5D
// communication-reducing SUMMA: with replication factor c, the P processes
// form a sqrt(P/c) x sqrt(P/c) x c grid; A and B panels are broadcast
// within smaller rows/columns and partial C results are reduced across the
// c layers. The paper: "The 2.5D SUMMA algorithm implemented in DBCSR
// continues to scale due to its ability to leverage greater cross-section
// bandwidth compared to the 2D SUMMA variant that was implemented in TTG."
//
// We model it analytically over the same machine parameters: per-rank
// compute F/P, per-rank communication volume ~ S / sqrt(P c), bisection
// floor from the total cross traffic (reduced by sqrt(c)), and the layer
// reduction of C. The replication factor is auto-tuned like DBCSR does.
#pragma once

#include "sim/machine.hpp"
#include "sparse/block_sparse.hpp"

namespace ttg::baselines {

struct DbcsrResult {
  double makespan = 0.0;
  double gflops = 0.0;
  int replication = 1;  ///< the chosen c
};

DbcsrResult run_dbcsr(const sim::MachineModel& machine, int nranks,
                      const sparse::BlockSparseMatrix& a,
                      const sparse::BlockSparseMatrix& b);

}  // namespace ttg::baselines
