// Native-MADNESS MRA comparator (Section III-E).
//
// "The native MADNESS implementation computes on each tree in parallel,
// but there is an explicit barrier after each computational step
// (projection, compression, reconstruction, norm) as the in-memory data
// structure is completed." We reproduce that execution model on the
// MADNESS-like backend: each step runs as its own flowgraph to quiescence
// (a fence is a global barrier), the explicit tree is materialized between
// steps (charged as a re-allocation copy of every node's coefficients on
// its owner), and the norm is a separate reduction step. The math and the
// adaptive trees are identical to the TTG pipeline — only the
// synchronization structure and data-structure handling differ, which is
// exactly the comparison the paper makes in Fig. 13.
#pragma once

#include <cstdint>
#include <map>

#include "mra/function_tree.hpp"
#include "runtime/world.hpp"

namespace ttg::baselines {

struct NativeMraOptions {
  double tol = 1e-8;
  int max_level = 16;
  int rand_level = 2;
  /// Skip compress/reconstruct arithmetic (bench mode; see
  /// apps::mra::Options::light_math). Norms are not computed.
  bool light_math = false;
};

struct NativeMraResult {
  double makespan = 0.0;
  std::uint64_t tree_nodes = 0;
  std::map<int, double> norm2_compressed;
  std::map<int, double> norm2_reconstructed;
};

/// Run project / compress / reconstruct / norm as four barrier-separated
/// steps. The world should use the MADNESS backend for the paper's
/// configuration, but any backend works.
NativeMraResult run_native_mra(rt::World& world, const ttg::mra::MraContext& ctx,
                               const NativeMraOptions& opt = {});

}  // namespace ttg::baselines
