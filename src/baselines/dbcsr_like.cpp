#include "baselines/dbcsr_like.hpp"

#include <algorithm>
#include <cmath>

#include "linalg/kernels.hpp"
#include "support/error.hpp"

namespace ttg::baselines {

namespace {
// DBCSR's CSR bookkeeping and irregular small-GEMM batching (libxsmm-style
// kernels over <=256 panels) reach roughly half of one large DGEMM's rate
// on CPUs — consistent with published CP2K/DBCSR node efficiencies, and
// with Fig. 12 where DBCSR and TTG perform similarly per node.
constexpr double kDbcsrEff = 0.55;

/// One (P, c) configuration's estimated makespan.
double config_time(const sim::MachineModel& m, int nranks, int c, double flops,
                   double op_bytes, double c_bytes) {
  const int layer = nranks / c;
  const int pr = static_cast<int>(std::lround(std::sqrt(static_cast<double>(layer))));
  if (pr * pr != layer) return -1.0;  // infeasible grid

  const double compute =
      flops / (static_cast<double>(nranks) * m.node_gflops() * 1e9 * kDbcsrEff);

  // Row/column broadcasts within a layer: every operand byte is sent to pr
  // ranks of its row/column; replication divides the per-rank share by c
  // but the initial replication itself costs one copy of the operands.
  const double total_traffic = op_bytes * pr + (c > 1 ? op_bytes * (c - 1) : 0.0);
  const double per_rank_bytes = total_traffic / nranks;
  const int rounds = std::max(1, pr / std::max(1, c));
  const double comm = per_rank_bytes / m.nic_bw +
                      rounds * std::ceil(std::log2(std::max(2, pr))) * m.net_latency;

  // Partial-result reduction across layers.
  const double reduce =
      c > 1 ? (c_bytes * (c - 1) / nranks) / m.nic_bw +
                  std::ceil(std::log2(c)) * m.net_latency
            : 0.0;

  // Bisection floor: roughly half the traffic crosses the network cut.
  // Same capped cross-section model as the event-driven network.
  const double eff_nodes =
      nranks > 1 ? std::min<double>(nranks, 128.0) / 2.0 : 1.0;
  const double bis_bw = m.bisection_factor * eff_nodes * m.nic_bw;
  const double fabric = (total_traffic / 2.0) / bis_bw;

  // DBCSR pipelines compute with communication within a round; the phase
  // times overlap up to the larger of the two, plus the reduction epilogue.
  return std::max({compute, comm, fabric}) + reduce;
}
}  // namespace

DbcsrResult run_dbcsr(const sim::MachineModel& machine, int nranks,
                      const sparse::BlockSparseMatrix& a,
                      const sparse::BlockSparseMatrix& b) {
  TTG_REQUIRE(nranks >= 1, "dbcsr needs ranks");
  const double flops = sparse::multiply_flops(a, b);
  const double op_bytes =
      static_cast<double>(a.nnz_elements() + b.nnz_elements()) * sizeof(double);
  // C footprint ~ the denser of the operands squared pattern; use the
  // reference pattern size bound: occupancy of A * B rows.
  const double c_bytes = op_bytes;  // same order; C of A*A is similarly sparse

  DbcsrResult best;
  best.makespan = -1.0;
  for (int c : {1, 2, 4, 8}) {
    if (nranks % c != 0) continue;
    const double t = config_time(machine, nranks, c, flops, op_bytes, c_bytes);
    if (t < 0) continue;
    if (best.makespan < 0 || t < best.makespan) {
      best.makespan = t;
      best.replication = c;
    }
  }
  TTG_REQUIRE(best.makespan > 0, "dbcsr: no feasible process grid for this rank count");
  best.gflops = flops / best.makespan / 1e9;
  return best;
}

}  // namespace ttg::baselines
