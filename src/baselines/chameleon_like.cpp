#include "baselines/chameleon_like.hpp"

namespace ttg::baselines {

rt::WorldConfig chameleon_profile(const sim::MachineModel& machine, int nranks) {
  rt::WorldConfig cfg;
  cfg.machine = machine;
  cfg.nranks = nranks;
  cfg.backend = rt::BackendKind::Parsec;  // task-based engine...
  cfg.enable_splitmd = false;             // ...but two-sided MPI data movement
  // StarPU-MPI caches received data per node, so a tile still crosses the
  // wire once per rank — the deficit is protocol overhead, not volume.
  cfg.optimized_broadcast = true;
  cfg.am_cpu_factor = 2.0;              // StarPU/MPI progression overhead
  cfg.task_overhead_override = 6.0e-7;  // StarPU per-task submission cost
  return cfg;
}

apps::cholesky::Result run_chameleon_cholesky(const sim::MachineModel& machine,
                                              int nranks,
                                              const linalg::TiledMatrix& a) {
  rt::World world(chameleon_profile(machine, nranks));
  apps::cholesky::Options opt;
  opt.collect = false;
  return apps::cholesky::run(world, a, opt);
}

}  // namespace ttg::baselines
