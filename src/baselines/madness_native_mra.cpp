#include "baselines/madness_native_mra.hpp"

#include <cmath>
#include <unordered_map>

#include "ttg/ttg.hpp"

namespace ttg::baselines {

using ttg::mra::Coeffs;
using ttg::mra::MraContext;
using ttg::mra::TreeKey;

namespace {

/// Child slice message for the compress step.
struct Slice {
  int child = 0;
  Coeffs s;
  double dnorm2 = 0.0;
  std::vector<std::pair<int, std::vector<double>>> more;  // reducer merges here

  [[nodiscard]] std::size_t wire_bytes() const { return s.wire_bytes() + 16; }
  template <typename Ar>
  void serialize(Ar& ar) {
    ar& child& s& dnorm2& more;
  }
};

}  // namespace

NativeMraResult run_native_mra(rt::World& world, const MraContext& ctx,
                               const NativeMraOptions& opt) {
  const auto& machine = world.machine();
  const auto& ts = ctx.twoscale();
  const int nranks = world.nranks();
  auto keymap = [nranks, rl = opt.rand_level](const TreeKey& key) {
    return static_cast<int>(key.ancestor_at(rl).hash() %
                            static_cast<std::uint64_t>(nranks));
  };

  NativeMraResult res;
  const double t0 = world.engine().now();

  /* Explicit per-rank tree storage — the in-memory data structure that the
     native implementation completes (and re-allocates) at every step. */
  using LeafStore = std::unordered_map<TreeKey, Coeffs, KeyHash<TreeKey>>;
  using DStore =
      std::unordered_map<TreeKey, std::array<Coeffs, 8>, KeyHash<TreeKey>>;
  std::vector<LeafStore> leaves(static_cast<std::size_t>(nranks));
  std::vector<DStore> dstore(static_cast<std::size_t>(nranks));
  std::vector<std::unordered_map<int, Coeffs>> roots(
      static_cast<std::size_t>(nranks));

  /// Charge the per-rank re-allocation of the stored tree between steps.
  auto charge_realloc = [&](std::size_t bytes_per_node, std::size_t nodes_rank[]) {
    for (int r = 0; r < nranks; ++r) {
      const double t = machine.copy_time(bytes_per_node * nodes_rank[r]);
      world.scheduler(r).submit(0, t, []() {});
    }
    world.fence();
  };
  (void)charge_realloc;

  const std::size_t node_bytes =
      static_cast<std::size_t>(ts.coeffs_per_node()) * sizeof(double);

  /* ---------------- step 1: projection ---------------- */
  {
    Edge<TreeKey, Void> ctl("proj_ctl");
    auto fn = [&](const TreeKey& key, Void&, std::tuple<Out<TreeKey, Void>>& out) {
      auto np = ctx.project_node(key);
      ++res.tree_nodes;
      const bool refine = (std::sqrt(np.dnorm2) > opt.tol || ctx.must_refine(key)) &&
                          key.level < opt.max_level;
      if (!refine) {
        leaves[static_cast<std::size_t>(keymap(key))][key] = std::move(np.parent);
      } else {
        for (int c = 0; c < 8; ++c) ttg::sendk<0>(key.child(c), out);
      }
    };
    auto tt = make_tt(world, fn, edges(ctl), edges(ctl), "NativeProject");
    tt->set_keymap(keymap);
    tt->set_costmap([&](const TreeKey&, const Void&) {
      return machine.flops_time(ctx.project_flops(), 0.5);
    });
    make_graph_executable(*tt);
    for (int fid = 0; fid < ctx.nfunctions(); ++fid)
      tt->invoke(TreeKey{fid, 0, 0, 0, 0}, Void{});
    world.fence();  // explicit barrier after the step
  }

  // Re-allocation of the completed tree before the next step.
  for (int r = 0; r < nranks; ++r) {
    world.scheduler(r).submit(
        0, machine.copy_time(node_bytes * leaves[static_cast<std::size_t>(r)].size()),
        []() {});
  }
  world.fence();

  /* ---------------- step 2: compression ---------------- */
  {
    Edge<TreeKey, Slice> up("compress_up");
    auto fn = [&](const TreeKey& key, Slice& batch,
                  std::tuple<Out<TreeKey, Slice>>& out) {
      std::array<std::vector<double>, 8> child_s;
      child_s[static_cast<std::size_t>(batch.child)] = std::move(batch.s.v);
      for (auto& [c, v] : batch.more) child_s[static_cast<std::size_t>(c)] =
          std::move(v);
      std::vector<double> parent_s;
      auto& d = dstore[static_cast<std::size_t>(keymap(key))][key];
      double own_d2 = 0.0;
      if (opt.light_math) {
        // All 8 child blocks are present; reuse one to keep sizes.
        parent_s = std::move(child_s[0]);
        for (int c = 0; c < 8; ++c)
          d[static_cast<std::size_t>(c)].v.resize(parent_s.size());
      } else {
        parent_s = ts.filter(child_s);
        for (int c = 0; c < 8; ++c) {
          const auto proj = ts.unfilter_child(parent_s, c);
          auto& dc = d[static_cast<std::size_t>(c)];
          dc.v.resize(proj.size());
          for (std::size_t i = 0; i < proj.size(); ++i) {
            dc.v[i] = child_s[static_cast<std::size_t>(c)][i] - proj[i];
            own_d2 += dc.v[i] * dc.v[i];
          }
        }
      }
      Coeffs s;
      s.v = std::move(parent_s);
      const double up_d2 = batch.dnorm2 + own_d2;
      if (key.level == 0) {
        res.norm2_compressed[key.fid] += up_d2 + s.norm2();
        roots[static_cast<std::size_t>(keymap(key))][key.fid] = std::move(s);
      } else {
        Slice next;
        next.child = key.child_index();
        next.s = std::move(s);
        next.dnorm2 = up_d2;
        ttg::send<0>(key.parent(), std::move(next), out);
      }
    };
    auto tt = make_tt(world, fn, edges(up), edges(up), "NativeCompress");
    tt->set_keymap(keymap);
    tt->set_input_reducer<0>(
        [](Slice& acc, Slice&& next) {
          acc.more.emplace_back(next.child, std::move(next.s.v));
          for (auto& m : next.more) acc.more.push_back(std::move(m));
          acc.dnorm2 += next.dnorm2;
        },
        /*size=*/8);
    tt->set_costmap([&](const TreeKey&, const Slice&) {
      return machine.flops_time(ctx.compress_flops(), 0.5);
    });
    make_graph_executable(*tt);
    // Inject the stored leaves (single-node trees are already compressed).
    for (int r = 0; r < nranks; ++r) {
      for (auto& [key, s] : leaves[static_cast<std::size_t>(r)]) {
        if (key.level == 0) {
          res.norm2_compressed[key.fid] += s.norm2();
          roots[static_cast<std::size_t>(r)][key.fid] = s;
          continue;
        }
        Slice sl;
        sl.child = key.child_index();
        sl.s = s;
        world.run_as(r, [&]() {
          tt->out<0>().send(key.parent(), std::move(sl));
        });
      }
    }
    world.fence();
  }

  for (int r = 0; r < nranks; ++r) {
    world.scheduler(r).submit(
        0,
        machine.copy_time(node_bytes * 8 *
                          dstore[static_cast<std::size_t>(r)].size()),
        []() {});
  }
  world.fence();

  /* ---------------- step 3: reconstruction ---------------- */
  {
    Edge<TreeKey, Coeffs> down("recon_down");
    auto fn = [&](const TreeKey& key, Coeffs& s,
                  std::tuple<Out<TreeKey, Coeffs>>& out) {
      auto& store = dstore[static_cast<std::size_t>(keymap(key))];
      auto it = store.find(key);
      if (it == store.end()) {
        res.norm2_reconstructed[key.fid] += s.norm2();
        return;
      }
      for (int c = 0; c < 8; ++c) {
        std::vector<double> child;
        if (opt.light_math) {
          child = s.v;
        } else {
          child = ts.unfilter_child(s.v, c);
          const auto& dc = it->second[static_cast<std::size_t>(c)];
          for (std::size_t i = 0; i < child.size(); ++i) child[i] += dc.v[i];
        }
        Coeffs cs;
        cs.v = std::move(child);
        ttg::send<0>(key.child(c), std::move(cs), out);
      }
    };
    auto tt = make_tt(world, fn, edges(down), edges(down), "NativeReconstruct");
    tt->set_keymap(keymap);
    tt->set_costmap([&](const TreeKey&, const Coeffs&) {
      return machine.flops_time(ctx.reconstruct_flops(), 0.5);
    });
    make_graph_executable(*tt);
    for (int r = 0; r < nranks; ++r) {
      for (auto& [fid, s] : roots[static_cast<std::size_t>(r)]) {
        world.run_as(r, [&]() {
          tt->out<0>().send(TreeKey{fid, 0, 0, 0, 0}, Coeffs(s));
        });
      }
    }
    world.fence();
  }

  /* ---------------- step 4: norm (allreduce-style epilogue) ---------------- */
  {
    const double hops =
        nranks > 1 ? 2.0 * std::ceil(std::log2(static_cast<double>(nranks))) : 0.0;
    for (int r = 0; r < nranks; ++r)
      world.scheduler(r).submit(0, hops * machine.net_latency, []() {});
    world.fence();
  }

  res.makespan = world.engine().now() - t0;
  return res;
}

}  // namespace ttg::baselines
