#include "baselines/bsp_cholesky.hpp"

#include <algorithm>
#include <cmath>
#include <vector>

#include "apps/cholesky/cholesky_ttg.hpp"
#include "linalg/kernels.hpp"

namespace ttg::baselines {

namespace {
// Fork-join tail of the bulk-synchronous update phase: threaded BLAS over
// an irregular local tile set leaves workers idle at the barrier.
constexpr double kBspTailFactor = 1.15;
}  // namespace

BspCholeskyResult run_bsp_cholesky(const sim::MachineModel& machine, int nranks, int n,
                                   int bs, BspVariant variant) {
  const int nt = (n + bs - 1) / bs;
  const auto dist = linalg::BlockCyclic2D::make(nranks);
  rt::BspExecutor bsp(machine, nranks);
  const std::size_t tile_bytes = static_cast<std::size_t>(bs) * bs * sizeof(double);

  auto tile_rows = [&](int i) { return std::min(bs, n - i * bs); };

  double prev_update_credit = 0.0;  // SLATE lookahead: overlap with next panel
  double slate_credit = 0.0;        // total overlapped time, subtracted at the end

  for (int k = 0; k < nt; ++k) {
    // --- phase 1: POTRF(k) on the diagonal owner ---
    std::vector<double> phase(static_cast<std::size_t>(nranks), 0.0);
    phase[static_cast<std::size_t>(dist.owner(k, k))] =
        linalg::potrf_time(machine, tile_rows(k));
    double panel_time = *std::max_element(phase.begin(), phase.end());
    bsp.compute_phase(phase);

    // --- phase 2: broadcast L(k,k) down the column owners ---
    std::vector<int> col_group{dist.owner(k, k)};
    for (int m = k + 1; m < nt; ++m) {
      int o = dist.owner(m, k);
      if (std::find(col_group.begin(), col_group.end(), o) == col_group.end())
        col_group.push_back(o);
    }
    bsp.broadcast(dist.owner(k, k), tile_bytes, col_group);

    // The panel factorization itself proceeds column by column with a
    // synchronous broadcast per column inside the panel (the classic
    // latency term of right-looking BSP factorizations). Everyone waits
    // for it at the next barrier.
    if (nranks > 1) {
      const double panel_lat =
          bs * 2.0 *
          std::ceil(std::log2(static_cast<double>(std::max(2, dist.Q)))) *
          machine.net_latency;
      std::vector<double> lat_phase(static_cast<std::size_t>(nranks), panel_lat);
      bsp.compute_phase(lat_phase);
    }

    // --- phase 3: panel TRSMs, list-scheduled per rank ---
    std::vector<std::vector<double>> trsm_tasks(static_cast<std::size_t>(nranks));
    for (int m = k + 1; m < nt; ++m) {
      trsm_tasks[static_cast<std::size_t>(dist.owner(m, k))].push_back(
          linalg::trsm_time(machine, tile_rows(m), tile_rows(k)));
    }
    std::fill(phase.begin(), phase.end(), 0.0);
    for (int r = 0; r < nranks; ++r) {
      phase[static_cast<std::size_t>(r)] =
          rt::BspExecutor::list_schedule(trsm_tasks[static_cast<std::size_t>(r)],
                                         bsp.workers());
      panel_time = std::max(panel_time, phase[static_cast<std::size_t>(r)]);
    }
    bsp.compute_phase(phase);

    // --- phase 4: broadcast the panel along rows and columns ---
    // Per rank, the bytes it must receive: one panel tile per distinct tile
    // row / tile column it owns in the trailing submatrix.
    std::fill(phase.begin(), phase.end(), 0.0);
    const int trailing = nt - k - 1;
    for (int r = 0; r < nranks; ++r) {
      const int rows_here = (trailing + dist.P - 1) / dist.P;
      const int cols_here = (trailing + dist.Q - 1) / dist.Q;
      const std::size_t recv_bytes =
          static_cast<std::size_t>(rows_here + cols_here) * tile_bytes;
      phase[static_cast<std::size_t>(r)] =
          machine.net_latency * 2 + machine.wire_time(recv_bytes);
    }
    bsp.compute_phase(phase);

    // --- phase 5: trailing update (SYRK on diagonal, GEMM elsewhere) ---
    std::vector<std::vector<double>> upd_tasks(static_cast<std::size_t>(nranks));
    for (int m = k + 1; m < nt; ++m) {
      upd_tasks[static_cast<std::size_t>(dist.owner(m, m))].push_back(
          linalg::syrk_time(machine, tile_rows(m), tile_rows(k)));
      for (int nn = k + 1; nn < m; ++nn) {
        upd_tasks[static_cast<std::size_t>(dist.owner(m, nn))].push_back(
            linalg::gemm_time(machine, tile_rows(m), tile_rows(nn), tile_rows(k)));
      }
    }
    std::fill(phase.begin(), phase.end(), 0.0);
    double update_time = 0.0;
    for (int r = 0; r < nranks; ++r) {
      phase[static_cast<std::size_t>(r)] =
          kBspTailFactor * rt::BspExecutor::list_schedule(
                               upd_tasks[static_cast<std::size_t>(r)], bsp.workers());
      update_time = std::max(update_time, phase[static_cast<std::size_t>(r)]);
    }

    bsp.compute_phase(phase);
    if (variant == BspVariant::Slate) {
      // Lookahead 1: part of the panel work (POTRF + TRSM) of this
      // iteration overlaps the *previous* trailing update. The clocks are
      // monotone, so account the overlap as a credit subtracted at the
      // end; the 0.7 factor reflects that the lookahead column competes
      // with the update for the same cores.
      slate_credit += 0.7 * std::min(prev_update_credit, panel_time);
      prev_update_credit = update_time;
    }
  }

  BspCholeskyResult res;
  res.makespan = bsp.now() - slate_credit;
  res.gflops = apps::cholesky::flop_count(n) / res.makespan / 1e9;
  return res;
}

}  // namespace ttg::baselines
