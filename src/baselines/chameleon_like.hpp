// Chameleon/StarPU-like tiled Cholesky comparator.
//
// Chameleon runs the same tiled algorithm (same DAG, same potential
// parallelism) over StarPU. The paper observes it "slightly trails behind
// the TTG and DPLASMA despite having the same potential parallelism",
// attributing the gap to "a more efficient communication substrate in
// PaRSEC, including the collective communication". We model Chameleon as
// the same task graph executed with StarPU's communication profile:
//
//   * no rank-coalesced broadcast — a tile sent to r tasks on one remote
//     rank crosses the wire r times (MPI point-to-point per dependence);
//   * no one-sided split-metadata path (plain MPI sends with staging
//     copies);
//   * higher per-message software overhead (StarPU/MPI progression).
#pragma once

#include "apps/cholesky/cholesky_ttg.hpp"

namespace ttg::baselines {

/// World configuration implementing the StarPU-like communication profile.
[[nodiscard]] rt::WorldConfig chameleon_profile(const sim::MachineModel& machine,
                                                int nranks);

/// Run tiled Cholesky with the Chameleon profile.
apps::cholesky::Result run_chameleon_cholesky(const sim::MachineModel& machine,
                                              int nranks,
                                              const linalg::TiledMatrix& a);

}  // namespace ttg::baselines
