#include "baselines/fw_mpi_omp.hpp"

#include <algorithm>
#include <cmath>

#include "linalg/kernels.hpp"
#include "support/error.hpp"

namespace ttg::baselines {

namespace {
// OpenMP task spawn + sync cost per recursive subtask.
constexpr double kOmpTaskOverhead = 2.0e-6;

/// Node-level fork-join execution time of `flops` min-plus work split into
/// (s/bs)^2-ish subtasks per wave of the recursive decomposition.
double forkjoin_time(const sim::MachineModel& m, double flops, int s, int bs,
                     int workers) {
  const int tiles_per_dim = std::max(1, s / bs);
  // Artificial dependencies of the two-way recursive divide-and-conquer:
  // only a fraction of the tile wavefront is simultaneously available.
  const double avail = std::max(1.0, tiles_per_dim * tiles_per_dim / 4.0);
  const double parallelism = std::min<double>(workers, avail);
  const double compute =
      flops / (m.core_gflops * 1e9 * linalg::kMinplusEff * parallelism);
  const double ntasks = std::pow(static_cast<double>(tiles_per_dim), 3);
  const double overhead = ntasks * kOmpTaskOverhead / workers;
  return compute + overhead;
}
}  // namespace

bool fw_mpi_omp_supports(int nranks) {
  if (nranks == 1) return true;
  const int r = static_cast<int>(std::lround(std::sqrt(static_cast<double>(nranks))));
  return r * r == nranks && nranks % 2 == 0;
}

FwMpiOmpResult run_fw_mpi_omp(const sim::MachineModel& machine, int nranks, int n,
                              int bs) {
  TTG_REQUIRE(fw_mpi_omp_supports(nranks),
              "MPI+OpenMP FW requires a square, even process count");
  const int grid = static_cast<int>(std::lround(std::sqrt(static_cast<double>(nranks))));
  const int s = (n + grid - 1) / grid;  // super-tile size per process
  rt::BspExecutor bsp(machine, nranks);
  const std::size_t super_bytes = static_cast<std::size_t>(s) * s * sizeof(double);

  auto owner = [grid](int r, int c) { return r * grid + c; };

  for (int k = 0; k < grid; ++k) {
    // --- A phase: diagonal super-tile, fork-join FW on its owner ---
    std::vector<double> phase(static_cast<std::size_t>(nranks), 0.0);
    phase[static_cast<std::size_t>(owner(k, k))] =
        forkjoin_time(machine, linalg::flops::minplus(s, s, s), s, bs, bsp.workers());
    bsp.compute_phase(phase);

    // --- broadcast the diagonal super-tile along row k and column k ---
    std::vector<int> row_group, col_group;
    for (int c = 0; c < grid; ++c) row_group.push_back(owner(k, c));
    for (int r = 0; r < grid; ++r) col_group.push_back(owner(r, k));
    bsp.broadcast(owner(k, k), super_bytes, row_group);
    bsp.broadcast(owner(k, k), super_bytes, col_group);

    // --- B/C phase: row and column panels, fork-join per owner ---
    std::fill(phase.begin(), phase.end(), 0.0);
    for (int c = 0; c < grid; ++c)
      if (c != k)
        phase[static_cast<std::size_t>(owner(k, c))] += forkjoin_time(
            machine, linalg::flops::minplus(s, s, s), s, bs, bsp.workers());
    for (int r = 0; r < grid; ++r)
      if (r != k)
        phase[static_cast<std::size_t>(owner(r, k))] += forkjoin_time(
            machine, linalg::flops::minplus(s, s, s), s, bs, bsp.workers());
    bsp.compute_phase(phase);

    // --- exchange of super-tiles along rows and columns (MPI_Bcast) ---
    for (int c = 0; c < grid; ++c) {
      if (c == k) continue;
      bsp.broadcast(owner(k, c), super_bytes, [&] {
        std::vector<int> g;
        for (int r = 0; r < grid; ++r) g.push_back(owner(r, c));
        return g;
      }());
    }
    for (int r = 0; r < grid; ++r) {
      if (r == k) continue;
      bsp.broadcast(owner(r, k), super_bytes, [&] {
        std::vector<int> g;
        for (int c = 0; c < grid; ++c) g.push_back(owner(r, c));
        return g;
      }());
    }

    // --- D phase: every interior super-tile, fork-join per owner ---
    std::fill(phase.begin(), phase.end(), 0.0);
    for (int r = 0; r < grid; ++r)
      for (int c = 0; c < grid; ++c)
        if (r != k && c != k)
          phase[static_cast<std::size_t>(owner(r, c))] = forkjoin_time(
              machine, linalg::flops::minplus(s, s, s), s, bs, bsp.workers());
    bsp.compute_phase(phase);
  }

  FwMpiOmpResult res;
  res.makespan = bsp.now();
  res.gflops = 2.0 * n * n * n / res.makespan / 1e9;
  return res;
}

}  // namespace ttg::baselines
