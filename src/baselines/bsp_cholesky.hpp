// ScaLAPACK-like and SLATE-like tiled Cholesky comparators.
//
// Figure 5/6 of the paper shows "a clear separation between two sets of
// scalability trends": ScaLAPACK and SLATE grow slowly because of "the
// sequentiality induced by the compute flow in the Cholesky algorithm
// without lookahead implemented in these two libraries", while the
// task-based versions (TTG, DPLASMA, Chameleon) exploit the full tile-level
// parallelism. We model the two BSP libraries at exactly that level:
//
//   ScaLAPACK-like: per iteration k — factor the diagonal tile, broadcast
//   the panel, panel solve, broadcast row/column panels, trailing update,
//   with a barrier after every phase and no inter-iteration overlap.
//
//   SLATE-like: same bulk-synchronous structure but with lookahead depth 1:
//   the trailing update of iteration k overlaps the panel work of k+1
//   (SLATE's column lookahead), and slightly better node-level threading.
//
// Kernel times and communication use the same machine model as the
// event-driven runtimes, so GFLOP/s numbers are directly comparable.
#pragma once

#include "linalg/dist.hpp"
#include "runtime/bsp.hpp"

namespace ttg::baselines {

enum class BspVariant { ScaLapack, Slate };

struct BspCholeskyResult {
  double makespan = 0.0;
  double gflops = 0.0;
};

/// Simulate a tiled Cholesky of an n x n matrix in bs x bs tiles over
/// `nranks` nodes of `machine`.
BspCholeskyResult run_bsp_cholesky(const sim::MachineModel& machine, int nranks, int n,
                                   int bs, BspVariant variant);

}  // namespace ttg::baselines
