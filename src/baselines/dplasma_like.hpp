// DPLASMA-like tiled Cholesky: a Parameterized Task Graph executor.
//
// DPLASMA expresses the tiled Cholesky as a PTG running natively on
// PaRSEC: the DAG is never discovered dynamically — every task's
// dependences are algebraic functions of its (m, n, k) parameters, so each
// process activates exactly its own tasks by counting satisfied
// dependences. This file implements that executor directly on the
// simulator's Scheduler + CommEngine, bypassing the TTG layer entirely:
// per-rank dependence counters, a per-rank tile store, rank-deduplicated
// data propagation using the PaRSEC one-sided (split-metadata-equivalent)
// transfer. In the paper's Figs. 5-6, DPLASMA and TTG-over-PaRSEC are the
// two nearly-overlapping top curves; the residual difference is the TTG
// layer's dynamic task-matching overhead.
#pragma once

#include <cstdint>

#include "linalg/matrix_gen.hpp"
#include "runtime/world.hpp"

namespace ttg::baselines {

struct DplasmaResult {
  double makespan = 0.0;
  double gflops = 0.0;
  std::uint64_t tasks = 0;
  linalg::TiledMatrix matrix;  ///< factored L if collect was requested
};

/// Factor `a` with the PTG executor over `nranks` simulated nodes.
DplasmaResult run_dplasma_cholesky(const sim::MachineModel& machine, int nranks,
                                   const linalg::TiledMatrix& a, bool collect = false);

}  // namespace ttg::baselines
