// MPI+OpenMP recursive multi-level tiled FW-APSP comparator
// (Javanmard et al., referenced in Section III-C of the paper).
//
// The comparator distributes the adjacency matrix as one super-tile per
// process on a square process grid (the implementation "puts significant
// constraints on the available process configurations by requiring process
// numbers that are both square and multiples of 2"), exchanges super-tiles
// along rows and columns with MPI broadcasts each round, and applies the
// kernels to recursive sub-tiles with OpenMP tasks.
//
// The paper attributes its deficit to fork-join execution: "a data-flow
// implementation outperforms its fork-join counterpart when, due to
// artificial dependencies, the fork-join implementation fails to generate
// enough subtasks to keep all processors busy". We model the node-level
// fork-join with (a) a parallelism cap from the recursive dependency
// structure, (b) a per-subtask OpenMP spawn overhead that grows as the
// block size shrinks, and (c) barriers between the A, B/C, and D phases of
// every round.
#pragma once

#include "runtime/bsp.hpp"

namespace ttg::baselines {

struct FwMpiOmpResult {
  double makespan = 0.0;
  double gflops = 0.0;
};

/// True if this process count is accepted by the comparator (square and a
/// multiple of 2, or 1).
[[nodiscard]] bool fw_mpi_omp_supports(int nranks);

/// Simulate the MPI+OpenMP recursive FW on an n x n matrix with inner block
/// size `bs` over `nranks` nodes.
FwMpiOmpResult run_fw_mpi_omp(const sim::MachineModel& machine, int nranks, int n,
                              int bs);

}  // namespace ttg::baselines
