#include "baselines/dplasma_like.hpp"

#include <memory>
#include <unordered_map>
#include <vector>

#include "apps/cholesky/cholesky_ttg.hpp"
#include "linalg/dist.hpp"
#include "linalg/kernels.hpp"

namespace ttg::baselines {

using linalg::Tile;
using linalg::TiledMatrix;

namespace {

// PTG avoids TTG's dynamic key matching: per-task bookkeeping is a counter
// decrement, cheaper than even PaRSEC's generic path.
constexpr double kPtgTaskOverhead = 1.5e-7;

enum class Kind : std::uint64_t { Potrf = 0, Trsm = 1, Syrk = 2, Gemm = 3 };

/// Packed task identifier: kind | m | n | k.
constexpr std::uint64_t tid(Kind kind, int m, int n, int k) {
  return (static_cast<std::uint64_t>(kind) << 60) |
         (static_cast<std::uint64_t>(static_cast<std::uint32_t>(m)) << 40) |
         (static_cast<std::uint64_t>(static_cast<std::uint32_t>(n)) << 20) |
         static_cast<std::uint64_t>(static_cast<std::uint32_t>(k));
}

/// Packed data identifier for the per-rank tile store.
constexpr std::uint64_t did(char tag, int m, int k) {
  return (static_cast<std::uint64_t>(tag) << 48) |
         (static_cast<std::uint64_t>(static_cast<std::uint32_t>(m)) << 24) |
         static_cast<std::uint64_t>(static_cast<std::uint32_t>(k));
}

/// Whole executor state: one instance per run.
class PtgCholesky {
 public:
  PtgCholesky(rt::World& world, const TiledMatrix& a, bool collect)
      : world_(world),
        a_(a),
        nt_(a.ntiles()),
        dist_(linalg::BlockCyclic2D::make(world.nranks())),
        rank_state_(static_cast<std::size_t>(world.nranks())),
        collect_(collect) {
    if (collect_) l_out_ = TiledMatrix(a.n(), a.block(), /*allocate=*/false);
  }

  void inject() {
    // Every rank starts with its owned tiles in its store; the "initial"
    // dependence of the first task of each tile chain is satisfied.
    for (int m = 0; m < nt_; ++m) {
      for (int n = 0; n <= m; ++n) {
        const int r = dist_.owner(m, n);
        world_.run_as(r, [&]() {
          store(r, did('C', m, n)) = a_.tile(m, n);
          if (m == 0 && n == 0) {
            notify(r, tid(Kind::Potrf, 0, 0, 0));
          } else if (m == n) {
            notify(r, tid(Kind::Syrk, m, m, 0));
          } else if (n == 0) {
            notify(r, tid(Kind::Trsm, m, 0, 0));
          } else {
            notify(r, tid(Kind::Gemm, m, n, 0));
          }
        });
      }
    }
  }

  [[nodiscard]] std::uint64_t tasks_run() const { return tasks_; }
  [[nodiscard]] TiledMatrix take_matrix() { return std::move(l_out_); }

 private:
  struct RankState {
    std::unordered_map<std::uint64_t, int> missing;  // deps not yet satisfied
    std::unordered_map<std::uint64_t, Tile> store;   // local data
  };

  Tile& store(int rank, std::uint64_t id) {
    return rank_state_[static_cast<std::size_t>(rank)].store[id];
  }

  static int static_deps(Kind kind) {
    switch (kind) {
      case Kind::Potrf:
        return 1;  // tile state (initial or last SYRK)
      case Kind::Trsm:
        return 2;  // L(k,k) + tile state
      case Kind::Syrk:
        return 2;  // L(m,k) + tile state
      case Kind::Gemm:
        return 3;  // L(m,k) + L(n,k) + tile state
    }
    return 0;
  }

  /// One dependence of `task` satisfied on `rank`; activate when complete.
  void notify(int rank, std::uint64_t task) {
    auto& st = rank_state_[static_cast<std::size_t>(rank)];
    auto [it, fresh] = st.missing.try_emplace(
        task, static_deps(static_cast<Kind>(task >> 60)));
    (void)fresh;
    if (--it->second == 0) {
      st.missing.erase(it);
      schedule(rank, task);
    }
  }

  void schedule(int rank, std::uint64_t task) {
    const auto kind = static_cast<Kind>(task >> 60);
    const int m = static_cast<int>((task >> 40) & 0xfffff);
    const int n = static_cast<int>((task >> 20) & 0xfffff);
    const int k = static_cast<int>(task & 0xfffff);
    const auto& machine = world_.machine();
    auto rows = [this](int i) { return a_.tile_rows(i); };

    double cost = kPtgTaskOverhead;
    int prio = 0;
    switch (kind) {
      case Kind::Potrf:
        cost += linalg::potrf_time(machine, rows(k));
        prio = 3 * (nt_ - k);
        break;
      case Kind::Trsm:
        cost += linalg::trsm_time(machine, rows(m), rows(k));
        prio = 2 * (nt_ - k);
        break;
      case Kind::Syrk:
        cost += linalg::syrk_time(machine, rows(m), rows(k));
        prio = nt_ - k;
        break;
      case Kind::Gemm:
        cost += linalg::gemm_time(machine, rows(m), rows(n), rows(k));
        prio = nt_ - k;
        break;
    }
    world_.scheduler(rank).submit(prio, cost, [this, rank, kind, m, n, k]() {
      world_.run_as(rank, [&]() {
        ++tasks_;
        execute(rank, kind, m, n, k);
      });
    });
  }

  void execute(int rank, Kind kind, int m, int n, int k) {
    switch (kind) {
      case Kind::Potrf: {
        Tile& c = store(rank, did('C', k, k));
        TTG_CHECK(linalg::potrf(c), "dplasma: matrix not SPD");
        if (collect_) l_out_.tile(k, k) = c;
        Tile l = std::move(c);
        rank_state_[static_cast<std::size_t>(rank)].store.erase(did('C', k, k));
        // Propagate L(k,k) to every rank owning a TRSM of column k —
        // once per rank (PaRSEC's dep-engine collective).
        propagate(rank, did('L', k, k), std::move(l), [this, k](int dst) {
          std::vector<std::uint64_t> v;
          for (int mm = k + 1; mm < nt_; ++mm)
            if (dist_.owner(mm, k) == dst) v.push_back(tid(Kind::Trsm, mm, 0, k));
          return v;
        });
        break;
      }
      case Kind::Trsm: {
        Tile& c = store(rank, did('C', m, k));
        const Tile& lkk = store(rank, did('L', k, k));
        linalg::trsm(lkk, c);
        if (collect_) l_out_.tile(m, k) = c;
        Tile l = std::move(c);
        rank_state_[static_cast<std::size_t>(rank)].store.erase(did('C', m, k));
        // L(m,k) feeds SYRK(k,m), GEMMs in row m and column m.
        propagate(rank, did('L', m, k), std::move(l), [this, m, k](int dst) {
          std::vector<std::uint64_t> v;
          if (dist_.owner(m, m) == dst) v.push_back(tid(Kind::Syrk, m, m, k));
          for (int nn = k + 1; nn < m; ++nn)
            if (dist_.owner(m, nn) == dst) v.push_back(tid(Kind::Gemm, m, nn, k));
          for (int mm = m + 1; mm < nt_; ++mm)
            if (dist_.owner(mm, m) == dst) v.push_back(tid(Kind::Gemm, mm, m, k));
          return v;
        });
        break;
      }
      case Kind::Syrk: {
        Tile& c = store(rank, did('C', m, m));
        const Tile& l = store(rank, did('L', m, k));
        linalg::syrk(l, c);
        if (k == m - 1) {
          notify(rank, tid(Kind::Potrf, m, m, m));  // same owner: diagonal
        } else {
          notify(rank, tid(Kind::Syrk, m, m, k + 1));
        }
        break;
      }
      case Kind::Gemm: {
        Tile& c = store(rank, did('C', m, n));
        const Tile& lmk = store(rank, did('L', m, k));
        const Tile& lnk = store(rank, did('L', n, k));
        linalg::gemm_nt(c, lmk, lnk);
        if (k == n - 1) {
          notify(rank, tid(Kind::Trsm, m, 0, n));  // same owner: tile (m,n)
        } else {
          notify(rank, tid(Kind::Gemm, m, n, k + 1));
        }
        break;
      }
    }
  }

  /// Deliver `tile` under `data_id` to every rank with successors (from
  /// `succ_of(dst)`), shipping it once per remote rank via the one-sided
  /// protocol, then satisfy the L-dependence of each successor task.
  template <typename SuccFn>
  void propagate(int src, std::uint64_t data_id, Tile&& tile, SuccFn succ_of) {
    auto shared = std::make_shared<Tile>(std::move(tile));
    for (int dst = 0; dst < world_.nranks(); ++dst) {
      auto succ = succ_of(dst);
      if (succ.empty()) continue;
      if (dst == src) {
        store(src, data_id) = *shared;
        for (auto t : succ) notify(src, t);
        continue;
      }
      const std::size_t payload = shared->wire_bytes();
      auto& comm = world_.comm();
      const double cpu = comm.send_side_cpu(payload, ser::Protocol::SplitMetadata);
      const double delay = world_.scheduler(src).charge(cpu);
      world_.engine().after(delay, [this, &comm, src, dst, payload, data_id, shared,
                                    succ = std::move(succ)]() {
        comm.send_splitmd(
            src, dst, /*md_bytes=*/96, payload,
            /*on_metadata=*/[]() {},
            /*on_payload=*/
            [this, dst, data_id, shared, succ]() {
              world_.run_as(dst, [&]() {
                store(dst, data_id) = *shared;
                for (auto t : succ) notify(dst, t);
              });
            },
            /*on_release=*/[shared]() {});
      });
    }
  }

  rt::World& world_;
  const TiledMatrix& a_;
  int nt_;
  linalg::BlockCyclic2D dist_;
  std::vector<RankState> rank_state_;
  bool collect_;
  TiledMatrix l_out_;
  std::uint64_t tasks_ = 0;
};

}  // namespace

DplasmaResult run_dplasma_cholesky(const sim::MachineModel& machine, int nranks,
                                   const TiledMatrix& a, bool collect) {
  rt::WorldConfig cfg;
  cfg.machine = machine;
  cfg.nranks = nranks;
  cfg.backend = rt::BackendKind::Parsec;
  rt::World world(cfg);
  PtgCholesky ptg(world, a, collect);
  const double t0 = world.engine().now();
  ptg.inject();
  const double t1 = world.engine().run();
  DplasmaResult res;
  res.makespan = t1 - t0;
  res.gflops = apps::cholesky::flop_count(a.n()) / res.makespan / 1e9;
  res.tasks = ptg.tasks_run();
  if (collect) res.matrix = ptg.take_matrix();
  return res;
}

}  // namespace ttg::baselines
