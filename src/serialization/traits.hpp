// Serialization protocol selection (Section II-C of the paper).
//
// TTG picks, per data type and at compile time, the cheapest available
// serialization protocol in this order of preference:
//
//   1. splitmd  — 2-stage: eager metadata + one-sided RMA fetch of the
//                 contiguous payload (intrusive: the type opts in through a
//                 SplitMetadata<T> specialization; only the PaRSEC-like
//                 backend supports it).
//   2. trivial  — memcpy of trivially-copyable types.
//   3. archive  — user serialize() via the in-memory binary archives
//                 (stands in for the paper's Boost/MADNESS protocols).
//
// Types may additionally declare a *wire size* different from their
// serialized buffer size via a `wire_bytes()` member. "Ghost" payloads use
// this: a bench-scale tile carries only dimensions and a checksum but is
// charged its full data size on the simulated network, so communication
// behaviour at 256 nodes is reproduced faithfully on a laptop.
#pragma once

#include <cstddef>
#include <span>
#include <type_traits>

#include "serialization/archive.hpp"

namespace ttg::ser {

/// Split-metadata descriptor: specialize for types supporting the 2-stage
/// protocol. A specialization must provide:
///   using metadata_type = <small serializable struct>;
///   static metadata_type get_metadata(const T&);
///   static T create(const metadata_type&);       // allocated-not-initialized
///   static std::size_t payload_bytes(const T&);  // wire size of the payload
///   static std::span<const std::byte> payload(const T&);
///   static std::span<std::byte> payload(T&);
template <typename T>
struct SplitMetadata;  // primary template intentionally undefined

namespace detail {
template <typename T>
concept HasSplitMetadata = requires(const T& ct, T& t) {
  typename SplitMetadata<T>::metadata_type;
  { SplitMetadata<T>::get_metadata(ct) } -> std::same_as<typename SplitMetadata<T>::metadata_type>;
  { SplitMetadata<T>::create(SplitMetadata<T>::get_metadata(ct)) } -> std::same_as<T>;
  { SplitMetadata<T>::payload_bytes(ct) } -> std::convertible_to<std::size_t>;
  { SplitMetadata<T>::payload(ct) } -> std::same_as<std::span<const std::byte>>;
  { SplitMetadata<T>::payload(t) } -> std::same_as<std::span<std::byte>>;
};

template <typename T>
concept HasWireBytes = requires(const T& t) {
  { t.wire_bytes() } -> std::convertible_to<std::size_t>;
};
}  // namespace detail

/// Which protocol TTG would choose for T (for tests and introspection).
enum class Protocol { SplitMetadata, Trivial, Archive };

template <typename T>
inline constexpr bool is_splitmd_v = detail::HasSplitMetadata<T>;

template <typename T>
inline constexpr bool is_trivially_serializable_v = detail::is_memcpyable_v<T>;

namespace detail {
/// Recursive archive-serializability: user hooks, memcpyable scalars, or
/// one of the container shapes the archives handle natively.
template <typename T>
struct ArchiveSerializable
    : std::bool_constant<HasMemberSerialize<T, OutputArchive> ||
                         HasAdlSerialize<T, OutputArchive> || is_memcpyable_v<T>> {};
template <typename T, typename A>
struct ArchiveSerializable<std::vector<T, A>> : ArchiveSerializable<T> {};
template <>
struct ArchiveSerializable<std::string> : std::true_type {};
template <typename A, typename B>
struct ArchiveSerializable<std::pair<A, B>>
    : std::bool_constant<ArchiveSerializable<A>::value && ArchiveSerializable<B>::value> {
};
template <typename... Ts>
struct ArchiveSerializable<std::tuple<Ts...>>
    : std::bool_constant<(ArchiveSerializable<Ts>::value && ...)> {};
template <typename K, typename V, typename C, typename A>
struct ArchiveSerializable<std::map<K, V, C, A>>
    : std::bool_constant<ArchiveSerializable<K>::value && ArchiveSerializable<V>::value> {
};
template <typename T, std::size_t N>
struct ArchiveSerializable<std::array<T, N>> : ArchiveSerializable<T> {};
}  // namespace detail

template <typename T>
inline constexpr bool is_archive_serializable_v = detail::ArchiveSerializable<T>::value;

template <typename T>
inline constexpr bool is_serializable_v =
    is_splitmd_v<T> || is_trivially_serializable_v<T> || is_archive_serializable_v<T>;

/// Protocol choice as specified in the paper: splitmd > trivial > archive.
/// (The backend may downgrade splitmd to archive if it lacks RMA support —
/// the MADNESS-like backend does exactly that.)
template <typename T>
constexpr Protocol protocol_for() {
  if constexpr (is_splitmd_v<T>) {
    return Protocol::SplitMetadata;
  } else if constexpr (is_trivially_serializable_v<T>) {
    return Protocol::Trivial;
  } else {
    static_assert(is_archive_serializable_v<T>, "type is not serializable by TTG");
    return Protocol::Archive;
  }
}

/// Serialize a value whole-object (trivial or archive path).
template <typename T>
std::vector<std::byte> to_bytes(const T& v) {
  OutputArchive ar;
  ar& v;
  return ar.release();
}

/// Deserialize a value produced by to_bytes.
template <typename T>
T from_bytes(const std::vector<std::byte>& buf) {
  InputArchive ar(buf);
  T v{};
  ar& v;
  TTG_CHECK(ar.remaining() == 0, "trailing bytes after deserialization");
  return v;
}

/// Wire size charged to the simulated network for a whole-object send:
/// the declared wire_bytes() if the type provides it (ghost payloads),
/// otherwise the actual serialized size.
template <typename T>
std::size_t wire_size(const T& v, std::size_t serialized_size) {
  if constexpr (detail::HasWireBytes<T>) {
    return std::max(v.wire_bytes(), serialized_size);
  } else {
    return serialized_size;
  }
}

}  // namespace ttg::ser
