// In-memory binary archives.
//
// Section II-C of the paper: TTG supports several serialization protocols —
// memcpy for trivially-copyable types, Boost.Serialization / MADNESS
// serialization for user types (via custom high-performance in-memory
// archives, without the archival features like versioning and pointer
// tracking), and the 2-stage split-metadata protocol. This header provides
// the archive pair those protocols are built on: append-only OutputArchive
// and a bounds-checked InputArchive reading the same byte layout.
#pragma once

#include <array>
#include <cstddef>
#include <cstdint>
#include <cstring>
#include <map>
#include <string>
#include <tuple>
#include <type_traits>
#include <unordered_map>
#include <utility>
#include <vector>

#include "support/error.hpp"

namespace ttg::ser {

class OutputArchive;
class InputArchive;

namespace detail {

template <typename T, typename Ar>
concept HasMemberSerialize = requires(T& t, Ar& ar) { t.serialize(ar); };

template <typename T, typename Ar>
concept HasAdlSerialize = requires(T& t, Ar& ar) { serialize(ar, t); };

template <typename T>
inline constexpr bool is_memcpyable_v =
    std::is_trivially_copyable_v<T> && !std::is_pointer_v<T>;

}  // namespace detail

/// Append-only binary serializer into a contiguous buffer.
///
/// Usage mirrors Boost.Serialization: `ar & x & y;` or `ar << x;`.
/// User types participate via a member `template <class Ar> void
/// serialize(Ar&)` (symmetric read/write) or a free `serialize(Ar&, T&)`
/// found by ADL.
class OutputArchive {
 public:
  static constexpr bool is_output = true;

  void write_bytes(const void* data, std::size_t n) {
    const auto* p = static_cast<const std::byte*>(data);
    buf_.insert(buf_.end(), p, p + n);
  }

  template <typename T>
  OutputArchive& operator&(const T& v) {
    save(v);
    return *this;
  }
  template <typename T>
  OutputArchive& operator<<(const T& v) {
    return *this & v;
  }

  [[nodiscard]] const std::vector<std::byte>& buffer() const { return buf_; }
  [[nodiscard]] std::vector<std::byte> release() { return std::move(buf_); }
  [[nodiscard]] std::size_t size() const { return buf_.size(); }

 private:
  template <typename T>
  void save(const T& v) {
    if constexpr (detail::is_memcpyable_v<T>) {
      write_bytes(&v, sizeof(T));
    } else if constexpr (detail::HasMemberSerialize<T, OutputArchive>) {
      // serialize() is symmetric; it only reads from v on the output path.
      const_cast<T&>(v).serialize(*this);
    } else if constexpr (detail::HasAdlSerialize<T, OutputArchive>) {
      serialize(*this, const_cast<T&>(v));
    } else {
      static_assert(detail::is_memcpyable_v<T>,
                    "type is not serializable: add a serialize() method or "
                    "make it trivially copyable");
    }
  }

  // --- native container support ---
  template <typename T, typename A>
  void save(const std::vector<T, A>& v) {
    save_size(v.size());
    if constexpr (detail::is_memcpyable_v<T>) {
      if (!v.empty()) write_bytes(v.data(), v.size() * sizeof(T));
    } else {
      for (const auto& e : v) save(e);
    }
  }
  void save(const std::string& s) {
    save_size(s.size());
    write_bytes(s.data(), s.size());
  }
  template <typename A, typename B>
  void save(const std::pair<A, B>& p) {
    save(p.first);
    save(p.second);
  }
  template <typename... Ts>
  void save(const std::tuple<Ts...>& t) {
    std::apply([this](const auto&... e) { (save(e), ...); }, t);
  }
  template <typename K, typename V, typename C, typename A>
  void save(const std::map<K, V, C, A>& m) {
    save_size(m.size());
    for (const auto& [k, v] : m) {
      save(k);
      save(v);
    }
  }
  template <typename T, std::size_t N>
  void save(const std::array<T, N>& a) {
    if constexpr (detail::is_memcpyable_v<T>) {
      write_bytes(a.data(), N * sizeof(T));
    } else {
      for (const auto& e : a) save(e);
    }
  }

  void save_size(std::size_t n) {
    auto n64 = static_cast<std::uint64_t>(n);
    write_bytes(&n64, sizeof n64);
  }

  std::vector<std::byte> buf_;
};

/// Bounds-checked binary deserializer over a byte span.
class InputArchive {
 public:
  static constexpr bool is_output = false;

  InputArchive(const std::byte* data, std::size_t size) : data_(data), size_(size) {}
  explicit InputArchive(const std::vector<std::byte>& buf)
      : InputArchive(buf.data(), buf.size()) {}

  void read_bytes(void* out, std::size_t n) {
    TTG_CHECK(pos_ + n <= size_, "archive underrun");
    std::memcpy(out, data_ + pos_, n);
    pos_ += n;
  }

  template <typename T>
  InputArchive& operator&(T& v) {
    load(v);
    return *this;
  }
  template <typename T>
  InputArchive& operator>>(T& v) {
    return *this & v;
  }

  [[nodiscard]] std::size_t remaining() const { return size_ - pos_; }

 private:
  template <typename T>
  void load(T& v) {
    if constexpr (detail::is_memcpyable_v<T>) {
      read_bytes(&v, sizeof(T));
    } else if constexpr (detail::HasMemberSerialize<T, InputArchive>) {
      v.serialize(*this);
    } else if constexpr (detail::HasAdlSerialize<T, InputArchive>) {
      serialize(*this, v);
    } else {
      static_assert(detail::is_memcpyable_v<T>, "type is not deserializable");
    }
  }

  template <typename T, typename A>
  void load(std::vector<T, A>& v) {
    v.resize(load_size());
    if constexpr (detail::is_memcpyable_v<T>) {
      if (!v.empty()) read_bytes(v.data(), v.size() * sizeof(T));
    } else {
      for (auto& e : v) load(e);
    }
  }
  void load(std::string& s) {
    s.resize(load_size());
    read_bytes(s.data(), s.size());
  }
  template <typename A, typename B>
  void load(std::pair<A, B>& p) {
    load(p.first);
    load(p.second);
  }
  template <typename... Ts>
  void load(std::tuple<Ts...>& t) {
    std::apply([this](auto&... e) { (load(e), ...); }, t);
  }
  template <typename K, typename V, typename C, typename A>
  void load(std::map<K, V, C, A>& m) {
    m.clear();
    const std::size_t n = load_size();
    for (std::size_t i = 0; i < n; ++i) {
      std::pair<K, V> kv;
      load(kv.first);
      load(kv.second);
      m.emplace(std::move(kv));
    }
  }
  template <typename T, std::size_t N>
  void load(std::array<T, N>& a) {
    if constexpr (detail::is_memcpyable_v<T>) {
      read_bytes(a.data(), N * sizeof(T));
    } else {
      for (auto& e : a) load(e);
    }
  }

  std::size_t load_size() {
    std::uint64_t n = 0;
    read_bytes(&n, sizeof n);
    return static_cast<std::size_t>(n);
  }

  const std::byte* data_;
  std::size_t size_;
  std::size_t pos_ = 0;
};

}  // namespace ttg::ser
