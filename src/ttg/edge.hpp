// Typed edges and the input-terminal interface.
//
// "TTG represents an algorithm as a flowgraph composed of one or more nodes
// (template tasks) equipped with ordered sets of input and output terminals
// connected by directed edges. Template tasks, terminals, and edges are
// explicitly and strongly typed. Edges encode all possible flows of
// messages." (Section II.)
//
// An Edge<Key, Value> is a lightweight shared handle; connecting it as an
// input of a template task registers that task's input terminal as a sink,
// and every output terminal attached to the edge fans its messages out to
// all sinks. One output terminal may feed any number of input terminals.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "runtime/world.hpp"

namespace ttg {

/// Interface of a template task's input terminal, as seen by edges and
/// output terminals. Implementations live inside TT (one per input slot).
template <typename Key, typename Value>
class InTerminalBase {
 public:
  virtual ~InTerminalBase() = default;

  /// Rank that owns task `key` of the consumer (its keymap).
  [[nodiscard]] virtual int owner(const Key& key) const = 0;

  /// Deliver a value for `key` on the *current* rank (copies the value).
  virtual void put_local(const Key& key, const Value& value) = 0;
  /// Deliver a value for `key` on the current rank (moves the value).
  virtual void put_local_move(const Key& key, Value&& value) = 0;

  /// Declare the number of stream items task `key` expects on this
  /// (streaming) terminal.
  virtual void set_stream_size_local(const Key& key, std::size_t n) = 0;
  /// Close the stream for task `key` at its current length.
  virtual void finalize_stream_local(const Key& key) = 0;

  /// True when this streaming terminal combines contributions up a
  /// reduction tree: output terminals then fold every contribution into the
  /// *contributing* rank's partial accumulator (a local put), and the
  /// consumer's tree layer relays combined values toward each key's owner
  /// (see the reduce_* protocol in ttg/tt.hpp). Non-streaming terminals and
  /// flat-policy backends return false and route point-to-point as before.
  [[nodiscard]] virtual bool stream_reduces_via_tree() const { return false; }

  [[nodiscard]] virtual rt::World& world() const = 0;
  [[nodiscard]] virtual const std::string& consumer_name() const = 0;
};

namespace detail {

/// Shared state of an edge: the registered sinks.
template <typename Key, typename Value>
struct EdgeImpl {
  std::string name;
  std::vector<InTerminalBase<Key, Value>*> sinks;
};

}  // namespace detail

/// Strongly-typed edge carrying (Key, Value) messages.
template <typename Key, typename Value>
class Edge {
 public:
  using key_type = Key;
  using value_type = Value;

  explicit Edge(std::string name = "edge")
      : impl_(std::make_shared<detail::EdgeImpl<Key, Value>>()) {
    impl_->name = std::move(name);
  }

  [[nodiscard]] const std::string& name() const { return impl_->name; }
  [[nodiscard]] std::size_t fanout() const { return impl_->sinks.size(); }

  [[nodiscard]] detail::EdgeImpl<Key, Value>* impl() const { return impl_.get(); }
  [[nodiscard]] std::shared_ptr<detail::EdgeImpl<Key, Value>> impl_ptr() const {
    return impl_;
  }

 private:
  std::shared_ptr<detail::EdgeImpl<Key, Value>> impl_;
};

/// Group edges for make_tt: `ttg::edges(a, b, c)`.
template <typename... Es>
auto edges(Es&&... es) {
  return std::make_tuple(std::forward<Es>(es)...);
}

}  // namespace ttg
