// Process-map-aware keymaps.
//
// The paper's apps install a keymap on every template task to place tasks
// (and thereby their output tiles) on ranks. The classic choice is 2D
// block-cyclic over a near-square process grid (linalg::BlockCyclic2D),
// which is oblivious to *machine* topology: with several ranks per node the
// cyclic layout scatters a tile's neighborhood across nodes and every halo
// edge crosses the network.
//
// These helpers make the keymap see WorldConfig::ranks_per_node (the same
// knob collective::Topology uses for tree layout), so neighboring tiles
// land on ranks that share a node and their edges become intra-node hops:
//
//   cyclic     — exactly BlockCyclic2D::make(nranks); the historical layout
//                every checked-in baseline was produced with. The other two
//                kinds degenerate to it bit-identically at ranks_per_node=1.
//   node2d     — two-level grid: nodes form a near-square node grid
//                (block-cyclic over supertiles of ranks_per_node tiles), and
//                within a node the tile is scattered cyclically over the
//                node's ranks. Keeps load balance of cyclic, adds node
//                locality along one axis.
//   node-aware — supertile placement: a ri x rj block of adjacent tiles
//                (ri*rj == ranks_per_node) maps onto one node, one tile per
//                rank; supertiles are block-cyclic over the node grid. Both
//                axes gain node locality (the bulk of a tile's halo stays
//                on-node), at the cost of slightly coarser balance.
//
// For tree-structured keys (MRA), node_aware_owner() routes a coarse
// ancestor hash to a node and a finer hash to a lane within it, so whole
// subtrees share a node while leaves still spread over its ranks.
#pragma once

#include <cstdint>
#include <string>

#include "linalg/dist.hpp"
#include "support/error.hpp"

namespace ttg {

enum class KeymapKind { Cyclic, Node2D, NodeAware };

[[nodiscard]] inline const char* to_string(KeymapKind k) {
  switch (k) {
    case KeymapKind::Cyclic:
      return "cyclic";
    case KeymapKind::Node2D:
      return "node2d";
    case KeymapKind::NodeAware:
      return "node-aware";
  }
  return "?";
}

[[nodiscard]] inline KeymapKind keymap_from_string(const std::string& s) {
  if (s == "cyclic") return KeymapKind::Cyclic;
  if (s == "node2d") return KeymapKind::Node2D;
  if (s == "node-aware" || s == "node_aware") return KeymapKind::NodeAware;
  TTG_REQUIRE(false, "unknown keymap '" + s + "' (cyclic|node2d|node-aware)");
  return KeymapKind::Cyclic;
}

/// Tile-indexed keymap: owner(i, j) under one of the three placement kinds.
/// Construct through make_keymap2d().
struct Keymap2D {
  KeymapKind kind = KeymapKind::Cyclic;
  linalg::BlockCyclic2D grid;  ///< cyclic: rank grid; others: node grid
  int rpn = 1;                 ///< ranks per node
  int ri = 1, rj = 1;          ///< node-aware: in-node supertile shape

  [[nodiscard]] int owner(int i, int j) const {
    switch (kind) {
      case KeymapKind::Cyclic:
        return grid.owner(i, j);
      case KeymapKind::Node2D: {
        // Node via the node grid, lane via a cyclic scatter of the tile's
        // flattened diagonal index over the node's ranks.
        const int node = grid.owner(i, j);
        const int lane = (i / grid.P + j / grid.Q) % rpn;
        return node * rpn + lane;
      }
      case KeymapKind::NodeAware: {
        // Adjacent ri x rj tiles share a node, one tile per rank.
        const int node = grid.owner(i / ri, j / rj);
        const int lane = (i % ri) * rj + (j % rj);
        return node * rpn + lane;
      }
    }
    return 0;
  }

  [[nodiscard]] int nranks() const {
    return kind == KeymapKind::Cyclic ? grid.nranks() : grid.nranks() * rpn;
  }
};

/// Build a keymap for `nranks` ranks with `ranks_per_node` packed per node
/// (consecutive ranks share a node, as in collective::Topology). Falls back
/// to cyclic when the node structure is degenerate (ranks_per_node <= 1 or
/// not dividing nranks), so every kind is total.
[[nodiscard]] inline Keymap2D make_keymap2d(KeymapKind kind, int nranks,
                                            int ranks_per_node) {
  TTG_CHECK(nranks >= 1, "need at least one rank");
  Keymap2D km;
  const bool nodal = ranks_per_node > 1 && nranks % ranks_per_node == 0;
  if (kind == KeymapKind::Cyclic || !nodal) {
    km.kind = KeymapKind::Cyclic;
    km.grid = linalg::BlockCyclic2D::make(nranks);
    return km;
  }
  km.kind = kind;
  km.rpn = ranks_per_node;
  km.grid = linalg::BlockCyclic2D::make(nranks / ranks_per_node);
  // Near-square in-node supertile: ri <= rj, ri * rj == ranks_per_node.
  km.ri = 1;
  for (int f = 1; f * f <= ranks_per_node; ++f) {
    if (ranks_per_node % f == 0) km.ri = f;
  }
  km.rj = ranks_per_node / km.ri;
  return km;
}

/// Node-aware owner for tree-structured keys (MRA): the coarse hash (of an
/// ancestor a few levels up) picks the node, the fine hash (of the key
/// itself) picks the lane, so whole subtrees share a node while leaves
/// spread over its ranks. Degenerates to `fine_hash % nranks` when the node
/// structure is degenerate.
[[nodiscard]] inline int node_aware_owner(std::uint64_t coarse_hash,
                                          std::uint64_t fine_hash, int nranks,
                                          int ranks_per_node) {
  if (ranks_per_node <= 1 || nranks % ranks_per_node != 0)
    return static_cast<int>(fine_hash % static_cast<std::uint64_t>(nranks));
  const int nodes = nranks / ranks_per_node;
  const int node = static_cast<int>(coarse_hash % static_cast<std::uint64_t>(nodes));
  const int lane =
      static_cast<int>(fine_hash % static_cast<std::uint64_t>(ranks_per_node));
  return node * ranks_per_node + lane;
}

}  // namespace ttg
