// Template tasks (the TT in TTG) and make_tt.
//
// "Once every input terminal of a given template task has received one
// message with the same value of task ID, a task is created with the data
// parts of the corresponding messages." (Section II.) This header implements
// that matching logic, plus the features the paper added:
//
//   * priority maps (set_priomap) forwarded to the runtime scheduler;
//   * streaming terminals (set_input_reducer / stream sizes / finalize)
//     that accept a bounded or unbounded stream of messages reduced into a
//     single task input;
//   * user-defined process maps (set_keymap) deciding where each task runs;
//   * cost maps (set_costmap) — a simulator extension: the virtual compute
//     duration of a task, derived from kernel flop counts.
//
// A task body is any callable `fn(const Key&, InV&..., OutTuple&)`; inputs
// arrive as private, mutable values ("tasks mutating inputs receive private
// copies"), and the terminal tuple is used with ttg::send / ttg::broadcast.
#pragma once

#include <array>
#include <bitset>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <tuple>
#include <unordered_map>
#include <utility>
#include <vector>

#include "ttg/keys.hpp"
#include "ttg/terminal.hpp"

namespace ttg {

template <typename Key, typename Fn, typename InTuple, typename OutTuple>
class TT;

/// Template task with inputs InV... keyed by Key, producing messages on
/// output terminals OutTerm... via callable Fn.
template <typename Key, typename Fn, typename... InV, typename... OutTerm>
class TT<Key, Fn, std::tuple<InV...>, std::tuple<OutTerm...>> final : public rt::TTBase {
 public:
  static constexpr std::size_t kNumIn = sizeof...(InV);
  static constexpr std::size_t kNumOut = sizeof...(OutTerm);
  using key_type = Key;
  using input_values = std::tuple<InV...>;
  using out_terminals = std::tuple<OutTerm...>;

  template <typename InEdges, typename OutEdges>
  TT(rt::World& world, Fn fn, const InEdges& ins, const OutEdges& outs, std::string name)
      : world_(world),
        fn_(std::move(fn)),
        name_(std::move(name)),
        records_(static_cast<std::size_t>(world.nranks())) {
    slots_ = make_slots(std::make_index_sequence<kNumIn>{});
    keymap_ = [n = world.nranks()](const Key& k) {
      return static_cast<int>(support::hash_value(k) % static_cast<std::uint64_t>(n));
    };
    stream_size_.fill(-1);
    init_reduce(std::make_index_sequence<kNumIn>{});
    connect_inputs(ins, std::make_index_sequence<kNumIn>{});
    connect_outputs(outs, std::make_index_sequence<kNumOut>{});
    world_.register_tt(this);
  }

  ~TT() override { world_.deregister_tt(this); }
  TT(const TT&) = delete;
  TT& operator=(const TT&) = delete;

  // --- configuration (call before injecting data) ---

  /// Process map: task ID -> owning rank.
  void set_keymap(std::function<int(const Key&)> f) {
    keymap_ = std::move(f);
    note_mutation();
  }
  /// Priority map: task ID -> scheduler priority (higher runs first).
  void set_priomap(std::function<int(const Key&)> f) {
    priomap_ = std::move(f);
    note_mutation();
  }
  /// Cost map: virtual compute seconds of a task given its key and inputs.
  void set_costmap(std::function<double(const Key&, const InV&...)> f) {
    costmap_ = std::move(f);
    note_mutation();
  }

  /// Device variant (mirrors TTG's op_cuda registration): declare that this
  /// TT's tasks can also run on a simulated GPU. The function maps a task to
  /// its DeviceCall — device-kernel seconds plus the datums (tag, bytes,
  /// read/write) the kernel touches, which drive staging and residency. The
  /// scheduler picks host vs device per task under the world's
  /// DevicePlacement policy; with placement Off the registration is inert
  /// and scheduling stays bit-identical to a TT without a device op.
  void set_device_op(std::function<rt::DeviceCall(const Key&, const InV&...)> f) {
    device_op_ = std::move(f);
    note_mutation();
  }
  [[nodiscard]] bool have_device_op() const { return device_op_ != nullptr; }

  /// Turn input terminal I into a streaming terminal: incoming messages are
  /// folded into the accumulated value with `reducer`; the task fires after
  /// `size` messages (size < 0: unbounded until set_size/finalize).
  template <std::size_t I>
  void set_input_reducer(
      std::function<void(std::tuple_element_t<I, input_values>&,
                         std::tuple_element_t<I, input_values>&&)>
          reducer,
      std::int64_t size = -1) {
    std::get<I>(reducers_) = std::move(reducer);
    is_stream_[I] = true;
    stream_size_[I] = size;
    note_mutation();
  }

  /// Change the static stream size of streaming terminal I.
  template <std::size_t I>
  void set_static_argstream_size(std::int64_t n) {
    TTG_REQUIRE(is_stream_[I], "terminal is not streaming");
    stream_size_[I] = n;
  }

  /// Declare, for one specific task ID, how many stream items terminal I
  /// expects (Listing 3: per-task stream sizes). Runs on the key's owner;
  /// call during graph setup or from a task on any rank.
  template <std::size_t I>
  void set_argstream_size(const Key& key, std::int64_t n) {
    world_.run_as(keymap_(key), [&]() { set_stream_size<I>(key, n); });
  }

  // --- introspection ---

  [[nodiscard]] const std::string& name() const override { return name_; }
  [[nodiscard]] std::size_t pending_records() const override {
    std::size_t n = 0;
    for (const auto& m : records_) n += m.size();
    return n + reduce_pending(std::make_index_sequence<kNumIn>{});
  }
  [[nodiscard]] std::uint64_t tasks_executed() const override { return executed_; }
  [[nodiscard]] int keymap(const Key& k) const { return keymap_(k); }
  [[nodiscard]] rt::World& world() const { return world_; }

  /// Access output terminal I (e.g. for manual injection in tests).
  template <std::size_t I>
  [[nodiscard]] auto& out() {
    return std::get<I>(outs_);
  }

  // --- data injection (the INITIATOR pattern) ---

  /// Create task `key` directly with the given input values, on its owner
  /// rank. Represents reading locally-available data into the graph.
  void invoke(const Key& key, InV... vals)
    requires(kNumIn > 0)
  {
    input_values tup(std::move(vals)...);
    inject(key, std::move(tup), std::make_index_sequence<kNumIn>{});
  }

  /// Create an input-less task `key` on its owner rank.
  void invoke(const Key& key)
    requires(kNumIn == 0)
  {
    world_.run_as(keymap_(key), [&]() { create_task(key, input_values{}); });
  }

 private:
  // ---- input slots: the typed InTerminalBase implementations ----
  template <std::size_t I>
  class Slot final : public InTerminalBase<Key, std::tuple_element_t<I, input_values>> {
   public:
    using value_type = std::tuple_element_t<I, input_values>;
    explicit Slot(TT* tt = nullptr) : tt_(tt) {}
    [[nodiscard]] int owner(const Key& k) const override { return tt_->keymap_(k); }
    void put_local(const Key& k, const value_type& v) override {
      // Each task owns private inputs: this is the one physical copy every
      // by-reference delivery pays, accounted in the data-lifecycle layer.
      tt_->world_.data_tracker().on_input_copy(tt_->world_.rank(),
                                               rt::detail::payload_bytes(v));
      value_type copy = v;
      tt_->template put<I>(k, std::move(copy));
    }
    void put_local_move(const Key& k, value_type&& v) override {
      tt_->template put<I>(k, std::move(v));
    }
    void set_stream_size_local(const Key& k, std::size_t n) override {
      tt_->template set_stream_size<I>(k, static_cast<std::int64_t>(n));
    }
    void finalize_stream_local(const Key& k) override {
      tt_->template finalize_stream<I>(k);
    }
    [[nodiscard]] bool stream_reduces_via_tree() const override {
      return tt_->template reduce_tree_active<I>();
    }
    [[nodiscard]] rt::World& world() const override { return tt_->world_; }
    [[nodiscard]] const std::string& consumer_name() const override { return tt_->name_; }

   private:
    TT* tt_;
  };

  template <std::size_t... Is>
  auto make_slots(std::index_sequence<Is...>) {
    return std::tuple<Slot<Is>...>(Slot<Is>(this)...);
  }

  template <typename InEdges, std::size_t... Is>
  void connect_inputs(const InEdges& ins, std::index_sequence<Is...>) {
    ((std::get<Is>(in_edges_) = std::get<Is>(ins).impl_ptr()), ...);
    (std::get<Is>(in_edges_)->sinks.push_back(&std::get<Is>(slots_)), ...);
  }

  template <typename OutEdges, std::size_t... Is>
  void connect_outputs(const OutEdges& outs, std::index_sequence<Is...>) {
    ((std::get<Is>(outs_) =
          std::tuple_element_t<Is, out_terminals>(&world_, std::get<Is>(outs).impl_ptr())),
     ...);
  }

  // ---- task record: inputs received so far for one task ID ----
  static constexpr std::size_t kSlots = kNumIn > 0 ? kNumIn : 1;
  struct Record {
    input_values vals{};
    std::array<std::int64_t, kSlots> received{};
    std::array<std::int64_t, kSlots> target{};
    std::bitset<kSlots> done;
  };

  Record& record(const Key& key) {
    auto& map = records_[static_cast<std::size_t>(world_.rank())];
    auto it = map.find(key);
    if (it == map.end()) {
      Record rec;
      for (std::size_t i = 0; i < kNumIn; ++i)
        rec.target[i] = is_stream_[i] ? stream_size_[i] : 1;
      it = map.emplace(key, std::move(rec)).first;
    }
    return it->second;
  }

  template <std::size_t I>
  void put(const Key& key, std::tuple_element_t<I, input_values>&& v) {
    static_assert(I < kNumIn);
    if (reduce_tree_active<I>()) {
      // Tree-reducing stream: fold into the *current* rank's partial (the
      // contribution may arrive on any rank — see Out::route); the combined
      // value reaches the owner's task record via stream_complete.
      reduce_put<I>(key, std::move(v));
      return;
    }
    Record& rec = record(key);
    TTG_CHECK(!rec.done[I], "input terminal " + std::to_string(I) + " of '" + name_ +
                                "' received a message for an already-satisfied task " +
                                "(duplicate input or stream overflow)");
    if (is_stream_[I]) {
      if (rec.received[I] == 0) {
        std::get<I>(rec.vals) = std::move(v);
      } else {
        auto& reducer = std::get<I>(reducers_);
        reducer(std::get<I>(rec.vals), std::move(v));
      }
      ++rec.received[I];
      if (rec.target[I] >= 0 && rec.received[I] == rec.target[I]) {
        rec.done[I] = true;
        maybe_fire(key);
      } else {
        TTG_CHECK(rec.target[I] < 0 || rec.received[I] < rec.target[I],
                  "stream overflow on '" + name_ + "'");
      }
    } else {
      TTG_CHECK(rec.received[I] == 0,
                "duplicate input on terminal " + std::to_string(I) + " of '" + name_ +
                    "' for task " + key_to_string(key));
      std::get<I>(rec.vals) = std::move(v);
      rec.received[I] = 1;
      rec.done[I] = true;
      maybe_fire(key);
    }
  }

  template <std::size_t I>
  void set_stream_size(const Key& key, std::int64_t n) {
    TTG_REQUIRE(is_stream_[I], "set_size on a non-streaming terminal of '" + name_ + "'");
    if (reduce_tree_active<I>()) {
      reduce_set_target<I>(key, n);
      return;
    }
    Record& rec = record(key);
    TTG_CHECK(!rec.done[I], "stream size set after completion");
    TTG_CHECK(rec.received[I] <= n, "stream size below already-received count");
    rec.target[I] = n;
    if (rec.received[I] == n) {
      rec.done[I] = true;
      maybe_fire(key);
    }
  }

  template <std::size_t I>
  void finalize_stream(const Key& key) {
    TTG_REQUIRE(is_stream_[I], "finalize on a non-streaming terminal of '" + name_ + "'");
    if (reduce_tree_active<I>()) {
      reduce_finalize<I>(key);
      return;
    }
    Record& rec = record(key);
    TTG_CHECK(!rec.done[I], "stream finalized twice");
    rec.target[I] = rec.received[I];
    rec.done[I] = true;
    maybe_fire(key);
  }

  // ------------------------------------------------------------------
  // Tree-routed streaming reductions (count-then-collect protocol).
  //
  // When the consumer backend declares a reduction arity (CollectivePolicy
  // ::reduce_arity, overridable per world) and the world is wide enough
  // ((nranks - 1) > arity), a streaming terminal stops routing every
  // contribution to the key's owner. Instead:
  //
  //   * contributions fold into the *contributing* rank's partial value
  //     (Out::route delivers them locally — see terminal.hpp);
  //   * all ranks form the inverted topology-aware k-ary tree rooted at
  //     the key's owner (collective::build_tree), and each rank eagerly
  //     relays its cumulative subtree contribution *count* to its parent
  //     (64-byte AMs, merged monotone-max so reordered or retransmitted
  //     relays are harmless);
  //   * when the owner's count view reaches the declared stream size the
  //     counts are provably final (the view is a lower bound on real
  //     contributions that reaches the target only once every relay chain
  //     has drained), and a Collect wave walks down the non-empty
  //     subtrees; finalize() instead sends a Close wave down *all* edges,
  //     whose replies carry the authoritative final counts;
  //   * each collected rank folds its local partial with its children's
  //     combined partials in a deterministic order (local value first,
  //     then children by ascending child slot — reproducible under
  //     arbitrary arrival order, including fault-induced retransmits) and
  //     sends ONE combined partial up: the owner receives O(arity)
  //     messages and reduce calls per key instead of O(nranks).
  //
  // Every hop is an ordinary payload/AM send through the comm engine, so
  // ReliableLink acks/retransmits protect reduction traffic exactly like
  // broadcasts, and partials live in leak-checked DataCopy blocks.
  // ------------------------------------------------------------------

  /// Per-(rank, key) state of one reduction subtree.
  template <typename V>
  struct ReduceRec {
    V value{};  ///< this subtree's combined partial (valid when has_value)
    bool has_value = false;
    std::int64_t local = 0;         ///< contributions folded on this rank
    std::int64_t reported_cum = 0;  ///< largest cum relayed to the parent
    std::int64_t target = -1;       ///< owner only: declared stream size
    std::vector<std::int64_t> child_cum;      ///< per child: counted view
    std::vector<std::optional<V>> child_val;  ///< buffered child partials
    std::vector<bool> replied;                ///< per child: wave reply seen
    bool closed = false;      ///< no further local contributions accepted
    bool collecting = false;  ///< sized Collect wave (vs finalize Close wave)
    bool done = false;        ///< tombstone: absorbs stale count relays
    int pending = 0;          ///< child replies still outstanding
  };

  /// Reduction tree over *all* ranks rooted at a key's owner, cached per
  /// (owner, arity) — a pure function of the world, shared by every key.
  struct ReduceShape {
    rt::collective::TreeShape shape;
    std::vector<int> pos_of_rank;  ///< rank -> tree position
  };

  /// Reduction arity for slot I. The adaptive hint must be rank-invariant
  /// (every rank derives the tree independently), so it is the static
  /// sizeof of the value type, never a measured payload size.
  template <std::size_t I>
  [[nodiscard]] int reduce_arity() const {
    using V = std::tuple_element_t<I, input_values>;
    return rt::collective::pick_arity(world_.comm().collective(), /*reduce=*/true,
                                      world_.nranks() - 1, sizeof(V));
  }

  /// Tree reduction runs for streaming slot I iff the backend declares an
  /// arity >= 2 and the world is wide enough that the tree differs from
  /// the flat fan-in; otherwise the historical flat path runs untouched
  /// (bit-identical degeneracy).
  template <std::size_t I>
  [[nodiscard]] bool reduce_tree_active() const {
    if (!is_stream_[I]) return false;
    const int arity = reduce_arity<I>();
    return arity >= 2 && (world_.nranks() - 1) > arity;
  }

  template <std::size_t I>
  const ReduceShape& reduce_shape(int owner) {
    const int arity = reduce_arity<I>();
    auto it = reduce_shapes_.find({owner, arity});
    if (it == reduce_shapes_.end()) {
      std::vector<int> members;
      members.reserve(static_cast<std::size_t>(world_.nranks() - 1));
      for (int r = 0; r < world_.nranks(); ++r)
        if (r != owner) members.push_back(r);
      ReduceShape rs;
      rs.shape = rt::collective::build_tree(owner, std::move(members), arity,
                                            world_.topology());
      rs.pos_of_rank.assign(static_cast<std::size_t>(world_.nranks()), -1);
      for (std::size_t p = 0; p < rs.shape.ranks.size(); ++p)
        rs.pos_of_rank[static_cast<std::size_t>(rs.shape.ranks[p])] =
            static_cast<int>(p);
      it = reduce_shapes_.emplace(std::make_pair(owner, arity), std::move(rs)).first;
    }
    return it->second;
  }

  /// The current rank's reduction record for `key` (created on demand with
  /// child bookkeeping sized from the tree shape).
  template <std::size_t I>
  auto& rrec(const Key& key, int owner, const ReduceShape& rs) {
    auto& map = std::get<I>(reduce_)[static_cast<std::size_t>(world_.rank())];
    auto it = map.find(key);
    if (it == map.end()) {
      ReduceRec<std::tuple_element_t<I, input_values>> rec;
      const int pos = rs.pos_of_rank[static_cast<std::size_t>(world_.rank())];
      const auto& ch = rs.shape.children[static_cast<std::size_t>(pos)];
      rec.child_cum.assign(ch.size(), 0);
      rec.child_val.resize(ch.size());
      rec.replied.assign(ch.size(), false);
      if (world_.rank() == owner) rec.target = stream_size_[I];
      it = map.emplace(key, std::move(rec)).first;
    }
    return it->second;
  }

  template <typename R>
  [[nodiscard]] static std::int64_t reduce_view(const R& rec) {
    std::int64_t s = rec.local;
    for (const std::int64_t c : rec.child_cum) s += c;
    return s;
  }

  [[nodiscard]] static int slot_in_parent(const ReduceShape& rs, int pos) {
    const int pp = rs.shape.parent[static_cast<std::size_t>(pos)];
    const auto& ch = rs.shape.children[static_cast<std::size_t>(pp)];
    for (std::size_t i = 0; i < ch.size(); ++i)
      if (ch[i] == pos) return static_cast<int>(i);
    TTG_CHECK(false, "tree position missing from its parent's child list");
    return -1;
  }

  /// A contribution (put) on the current rank for a tree-reduced stream.
  template <std::size_t I>
  void reduce_put(const Key& key, std::tuple_element_t<I, input_values>&& v) {
    const int me = world_.rank();
    const int owner = keymap_(key);
    const ReduceShape& rs = reduce_shape<I>(owner);
    auto& rec = rrec<I>(key, owner, rs);
    TTG_CHECK(!rec.closed, "stream overflow on '" + name_ +
                               "' (contribution after the reduction closed)");
    if (!rec.has_value) {
      rec.value = std::move(v);
      rec.has_value = true;
    } else {
      std::get<I>(reducers_)(rec.value, std::move(v));
    }
    ++rec.local;
    if (me == owner) {
      owner_progress<I>(key, rec, rs);
    } else {
      relay_count<I>(key, rec, rs);
    }
  }

  /// Eagerly relay this subtree's cumulative count to the parent whenever
  /// it grows. Cumulative + monotone-max merging makes duplicates and
  /// reordering (AM coalescing, retransmits) harmless.
  template <std::size_t I>
  void relay_count(const Key& key,
                   ReduceRec<std::tuple_element_t<I, input_values>>& rec,
                   const ReduceShape& rs) {
    if (rec.closed) return;  // a wave reply now carries the final count
    const std::int64_t cum = reduce_view(rec);
    if (cum <= rec.reported_cum) return;
    rec.reported_cum = cum;
    const int me = world_.rank();
    const int pos = rs.pos_of_rank[static_cast<std::size_t>(me)];
    const int parent = rs.shape.ranks[static_cast<std::size_t>(
        rs.shape.parent[static_cast<std::size_t>(pos)])];
    const int slot = slot_in_parent(rs, pos);
    reduce_ctrl(me, parent,
                [this, key, slot, cum]() { this->template on_count<I>(key, slot, cum); });
  }

  template <std::size_t I>
  void on_count(const Key& key, int slot, std::int64_t cum) {
    const int me = world_.rank();
    const int owner = keymap_(key);
    const ReduceShape& rs = reduce_shape<I>(owner);
    auto& rec = rrec<I>(key, owner, rs);
    if (rec.closed) {
      // Stale or superseded relay racing the wave. Under a sized Collect
      // the recorded view is provably final, so a larger count means more
      // contributions than the stream declared.
      TTG_CHECK(!rec.collecting ||
                    cum <= rec.child_cum[static_cast<std::size_t>(slot)],
                "stream overflow on '" + name_ + "' (count beyond declared size)");
      return;
    }
    if (cum <= rec.child_cum[static_cast<std::size_t>(slot)]) return;  // stale
    rec.child_cum[static_cast<std::size_t>(slot)] = cum;
    if (me == owner) {
      owner_progress<I>(key, rec, rs);
    } else {
      relay_count<I>(key, rec, rs);
    }
  }

  /// Owner: launch the Collect wave the instant the count view reaches the
  /// declared size (at which point conservation proves the counts final).
  template <std::size_t I>
  void owner_progress(const Key& key,
                      ReduceRec<std::tuple_element_t<I, input_values>>& rec,
                      const ReduceShape& rs) {
    if (rec.closed || rec.target < 0) return;
    const std::int64_t total = reduce_view(rec);
    TTG_CHECK(total <= rec.target, "stream overflow on '" + name_ + "'");
    if (total < rec.target) return;
    rec.closed = true;
    rec.collecting = true;
    start_collect<I>(key, rec, rs);
  }

  template <std::size_t I>
  void start_collect(const Key& key,
                     ReduceRec<std::tuple_element_t<I, input_values>>& rec,
                     const ReduceShape& rs) {
    const int me = world_.rank();
    const int pos = rs.pos_of_rank[static_cast<std::size_t>(me)];
    const auto& ch = rs.shape.children[static_cast<std::size_t>(pos)];
    rec.pending = 0;
    for (std::size_t c = 0; c < ch.size(); ++c) {
      if (rec.child_cum[c] == 0) {
        rec.replied[c] = true;  // nothing to collect from an empty subtree
        continue;
      }
      ++rec.pending;
      const int child = rs.shape.ranks[static_cast<std::size_t>(ch[c])];
      reduce_ctrl(me, child, [this, key]() { this->template on_collect<I>(key); });
    }
    if (rec.pending == 0) finish_subtree<I>(key, rec, rs);
  }

  template <std::size_t I>
  void on_collect(const Key& key) {
    const int owner = keymap_(key);
    const ReduceShape& rs = reduce_shape<I>(owner);
    auto& rec = rrec<I>(key, owner, rs);
    TTG_CHECK(!rec.closed, "collect wave reached an already-closed subtree");
    rec.closed = true;
    rec.collecting = true;
    start_collect<I>(key, rec, rs);
  }

  /// Owner: finalize() closes the stream at its current global length. The
  /// Close wave must visit *every* edge (counts may still be in flight);
  /// replies carry each subtree's authoritative final count.
  template <std::size_t I>
  void reduce_finalize(const Key& key) {
    const int owner = keymap_(key);
    TTG_CHECK(world_.rank() == owner, "finalize must run on the key's owner");
    const ReduceShape& rs = reduce_shape<I>(owner);
    auto& rec = rrec<I>(key, owner, rs);
    TTG_CHECK(!rec.closed, "stream finalized twice on '" + name_ + "'");
    rec.closed = true;
    start_close<I>(key, rec, rs);
  }

  template <std::size_t I>
  void start_close(const Key& key,
                   ReduceRec<std::tuple_element_t<I, input_values>>& rec,
                   const ReduceShape& rs) {
    const int me = world_.rank();
    const int pos = rs.pos_of_rank[static_cast<std::size_t>(me)];
    const auto& ch = rs.shape.children[static_cast<std::size_t>(pos)];
    rec.pending = static_cast<int>(ch.size());
    for (const int cpos : ch) {
      const int child = rs.shape.ranks[static_cast<std::size_t>(cpos)];
      reduce_ctrl(me, child, [this, key]() { this->template on_close<I>(key); });
    }
    if (rec.pending == 0) finish_subtree<I>(key, rec, rs);
  }

  template <std::size_t I>
  void on_close(const Key& key) {
    const int owner = keymap_(key);
    const ReduceShape& rs = reduce_shape<I>(owner);
    auto& rec = rrec<I>(key, owner, rs);
    TTG_CHECK(!rec.closed, "close wave reached an already-closed subtree");
    rec.closed = true;
    start_close<I>(key, rec, rs);
  }

  /// Owner: set_argstream_size for one key (runs on the owner).
  template <std::size_t I>
  void reduce_set_target(const Key& key, std::int64_t n) {
    const int owner = keymap_(key);
    TTG_CHECK(world_.rank() == owner, "stream size must be set on the key's owner");
    const ReduceShape& rs = reduce_shape<I>(owner);
    auto& rec = rrec<I>(key, owner, rs);
    TTG_CHECK(!rec.closed, "stream size set after completion");
    rec.target = n;
    owner_progress<I>(key, rec, rs);
  }

  /// A child's combined partial landed here (Collect/Close reply).
  template <std::size_t I>
  void on_partial(const Key& key, int slot, std::int64_t cum,
                  std::tuple_element_t<I, input_values>&& v) {
    const int owner = keymap_(key);
    const ReduceShape& rs = reduce_shape<I>(owner);
    auto& rec = rrec<I>(key, owner, rs);
    world_.comm().mutable_stats().reduce_combines += 1;
    if (world_.tracing()) world_.tracer().record_reduce_combine(world_.rank());
    TTG_CHECK(!rec.replied[static_cast<std::size_t>(slot)],
              "duplicate combined partial from one subtree");
    TTG_CHECK(cum >= rec.child_cum[static_cast<std::size_t>(slot)],
              "final subtree count below the relayed view");
    rec.child_cum[static_cast<std::size_t>(slot)] = cum;  // authoritative
    rec.child_val[static_cast<std::size_t>(slot)] = std::move(v);
    child_replied<I>(key, rec, rs, slot);
  }

  /// Close reply from a subtree that never saw a contribution.
  template <std::size_t I>
  void on_final_zero(const Key& key, int slot) {
    const int owner = keymap_(key);
    const ReduceShape& rs = reduce_shape<I>(owner);
    auto& rec = rrec<I>(key, owner, rs);
    TTG_CHECK(!rec.replied[static_cast<std::size_t>(slot)], "duplicate close reply");
    TTG_CHECK(rec.child_cum[static_cast<std::size_t>(slot)] == 0,
              "empty close reply from a subtree that relayed contributions");
    child_replied<I>(key, rec, rs, slot);
  }

  template <std::size_t I>
  void child_replied(const Key& key,
                     ReduceRec<std::tuple_element_t<I, input_values>>& rec,
                     const ReduceShape& rs, int slot) {
    rec.replied[static_cast<std::size_t>(slot)] = true;
    TTG_CHECK(rec.pending > 0, "reduction reply without an open wave");
    if (--rec.pending == 0) finish_subtree<I>(key, rec, rs);
  }

  /// All expected children replied: fold deterministically and either
  /// complete the task record (owner) or send ONE combined partial up.
  template <std::size_t I>
  void finish_subtree(const Key& key,
                      ReduceRec<std::tuple_element_t<I, input_values>>& rec,
                      const ReduceShape& rs) {
    using V = std::tuple_element_t<I, input_values>;
    // Deterministic fold order: the local value first, then the children's
    // partials by ascending child slot — independent of arrival order, so
    // reruns (including fault-induced retransmits) are bit-identical.
    for (auto& cv : rec.child_val) {
      if (!cv) continue;
      if (!rec.has_value) {
        rec.value = std::move(*cv);
        rec.has_value = true;
      } else {
        std::get<I>(reducers_)(rec.value, std::move(*cv));
      }
      cv.reset();
    }
    const std::int64_t cum = reduce_view(rec);
    const int me = world_.rank();
    const int owner = keymap_(key);
    rec.done = true;
    if (me == owner) {
      if (rec.collecting)
        TTG_CHECK(cum == rec.target, "collected total != declared stream size");
      V out = rec.has_value ? std::move(rec.value) : V{};
      rec.has_value = false;
      stream_complete<I>(key, std::move(out), cum);
      return;
    }
    const int pos = rs.pos_of_rank[static_cast<std::size_t>(me)];
    const int parent = rs.shape.ranks[static_cast<std::size_t>(
        rs.shape.parent[static_cast<std::size_t>(pos)])];
    const int slot = slot_in_parent(rs, pos);
    if (cum == 0) {
      reduce_ctrl(me, parent,
                  [this, key, slot]() { this->template on_final_zero<I>(key, slot); });
      return;
    }
    TTG_CHECK(rec.has_value, "non-empty subtree without a combined value");
    world_.comm().mutable_stats().reduce_forwards += 1;
    if (world_.tracing()) world_.tracer().record_reduce_forward(me);
    detail::record_tree_hop(world_, me, parent);
    V out = std::move(rec.value);
    rec.has_value = false;
    reduce_send_partial<I>(me, parent, key, slot, cum, std::move(out));
  }

  /// Owner: deliver the fully-combined value into the ordinary task record
  /// as if `total` flat contributions had arrived (then fire as usual).
  template <std::size_t I>
  void stream_complete(const Key& key, std::tuple_element_t<I, input_values>&& v,
                       std::int64_t total) {
    Record& rec = record(key);
    TTG_CHECK(!rec.done[I], "reduced stream completed an already-satisfied input");
    std::get<I>(rec.vals) = std::move(v);
    rec.received[I] = total;
    rec.target[I] = total;
    rec.done[I] = true;
    maybe_fire(key);
  }

  /// 64-byte reduction-control AM (Count/Collect/Close/FinalZero), charged
  /// and traced exactly like Out::control's stream-control messages; rides
  /// the AM coalescer and ReliableLink like any other control traffic.
  void reduce_ctrl(int from, int to, std::function<void()> action) {
    auto& w = world_;
    auto& comm = w.comm();
    constexpr std::size_t kCtrlBytes = 64;
    const double cpu = comm.send_side_cpu(kCtrlBytes, ser::Protocol::Trivial);
    const double delay = w.scheduler(from).charge(cpu);
    rt::Tracer* tr = w.tracing() ? &w.tracer() : nullptr;
    std::uint32_t msg = rt::Tracer::kNoNode;
    if (tr != nullptr) {
      msg = tr->message_created(name_ + "#rtree", from, to, kCtrlBytes,
                                /*splitmd=*/false);
      tr->add_copies(from, comm.send_copies(ser::Protocol::Trivial));
      tr->add_copies(to, comm.recv_copies(ser::Protocol::Trivial));
    }
    rt::World* wp = &world_;
    const rt::JobId job = w.current_job();
    w.engine().after(delay, [wp, job, from, to, action = std::move(action), tr,
                             msg]() {
      wp->run_as_job(job, [&]() {
        if (tr != nullptr) tr->message_sent(msg, wp->engine().now());
        wp->comm().send_message(from, to, kCtrlBytes, [wp, job, to, action, tr,
                                                       msg]() {
          wp->run_as_job(job, [&]() {
            wp->run_as(to, [&]() {
              // Count/Collect/Close arrivals can complete a reduction (and a
              // task): keep the causality context so it links to this message.
              if (tr != nullptr) {
                tr->message_delivered(msg, wp->engine().now());
                tr->set_context(msg);
              }
              action();
              if (tr != nullptr) tr->clear_context();
            });
          });
        });
      });
    });
  }

  /// Ship one combined partial (value + {key, child slot, final count}) up
  /// the tree. The value lives in a leak-checked DataCopy pinned across
  /// retransmissions. Partials always take the whole-object archive path,
  /// never split-metadata: a combined partial is a *reducer output*, and a
  /// type's SplitMetadata describes single contributions only (e.g. MRA
  /// compress batches merge under reduction into shapes their RMA protocol
  /// cannot express).
  template <std::size_t I>
  void reduce_send_partial(int from, int to, const Key& key, int slot,
                           std::int64_t cum,
                           std::tuple_element_t<I, input_values>&& value) {
    using V = std::tuple_element_t<I, input_values>;
    auto& w = world_;
    auto& comm = w.comm();
    rt::Tracer* tr = w.tracing() ? &w.tracer() : nullptr;
    rt::DataCopy<V> data(w.data_tracker(), tr, comm, from, std::move(value));
    static_assert(std::is_default_constructible_v<V>,
                  "remote TTG values must be default-constructible");
    bool cache_hit = false;
    auto vbuf = data.serialized(&cache_hit);  // a fresh partial: always a miss
    ser::OutputArchive har;
    har& key;
    har& slot;
    har& cum;
    auto hbuf = std::make_shared<const std::vector<std::byte>>(har.release());
    const std::size_t wire = ser::wire_size(data.value(), vbuf->size() + hbuf->size());
    constexpr ser::Protocol proto =
        ser::protocol_for<V>() == ser::Protocol::SplitMetadata
            ? ser::Protocol::Archive
            : ser::protocol_for<V>();
    const double cpu =
        cache_hit ? comm.per_message_cpu() : comm.send_side_cpu(wire, proto);
    const double delay = w.scheduler(from).charge(cpu);
    std::uint32_t msg = rt::Tracer::kNoNode;
    if (tr != nullptr) {
      msg = tr->message_created(name_ + "#rtree", from, to, wire, /*splitmd=*/false);
      tr->add_copies(from, cache_hit ? 0 : comm.send_copies(proto));
      tr->add_copies(to, comm.recv_copies(proto));
    }
    rt::World* wp = &world_;
    const rt::JobId job = w.current_job();
    w.engine().after(delay, [this, wp, job, from, to, wire, vbuf, hbuf, data, tr,
                             msg]() {
      wp->run_as_job(job, [&]() {
        if (tr != nullptr) tr->message_sent(msg, wp->engine().now());
        wp->comm().send_payload(from, to, wire, data.pin(),
                                [this, wp, job, to, vbuf, hbuf, tr, msg]() {
          using VV = std::tuple_element_t<I, input_values>;
          ser::InputArchive ia(*vbuf);
          VV v{};
          ia& v;
          ser::InputArchive ha(*hbuf);
          Key k{};
          int slot2 = 0;
          std::int64_t cum2 = 0;
          ha& k;
          ha& slot2;
          ha& cum2;
          wp->run_as_job(job, [&]() {
            wp->run_as(to, [&]() {
              if (tr != nullptr) {
                tr->message_delivered(msg, wp->engine().now());
                tr->set_context(msg);
              }
              this->template on_partial<I>(k, slot2, cum2, std::move(v));
              if (tr != nullptr) tr->clear_context();
            });
          });
        });
      });
    });
  }

  /// Live (non-tombstoned) reduction records, counted into pending_records
  /// so an incomplete reduction shows up as unfinished work after fence().
  template <std::size_t... Is>
  [[nodiscard]] std::size_t reduce_pending(std::index_sequence<Is...>) const {
    std::size_t n = 0;
    auto count = [&n](const auto& per_rank) {
      for (const auto& m : per_rank)
        for (const auto& kv : m) n += kv.second.done ? 0 : 1;
    };
    (count(std::get<Is>(reduce_)), ...);
    return n;
  }

  template <std::size_t... Is>
  void init_reduce(std::index_sequence<Is...>) {
    (std::get<Is>(reduce_).resize(static_cast<std::size_t>(world_.nranks())), ...);
  }

  void maybe_fire(const Key& key) {
    auto& map = records_[static_cast<std::size_t>(world_.rank())];
    auto it = map.find(key);
    TTG_CHECK(it != map.end(), "record vanished");
    if (it->second.done.count() != kNumIn) return;
    input_values vals = std::move(it->second.vals);
    map.erase(it);
    create_task(key, std::move(vals));
  }

  void create_task(const Key& key, input_values&& vals) {
    const int rank = world_.rank();
    const int prio = priomap_ ? priomap_(key) : 0;
    double cost = 0.0;
    if (costmap_) {
      cost = std::apply(
          [&](const auto&... v) { return costmap_(key, v...); }, vals);
    }
    cost += world_.comm().task_overhead();
    // Resolve the device variant (if any) before the inputs move into the
    // body closure. With placement Off the device op is never consulted, so
    // the Off path is bit-identical to a TT without a device op.
    const bool device_eligible =
        device_op_ && world_.config().device != rt::DevicePlacement::Off;
    rt::DeviceCall dev;
    if (device_eligible) {
      dev = std::apply([&](const auto&... v) { return device_op_(key, v...); },
                       vals);
    }
    // Capture the ambient job at record-completion time: every path that can
    // complete a record (injection, local put, remote delivery) runs under
    // run_as_job, so the task body re-enters the same job when it fires.
    const rt::JobId job = world_.current_job();
    auto body = [this, rank, job, key, vals = std::move(vals)]() mutable {
      world_.run_as_job(job, [&]() {
        world_.run_as(rank, [&]() {
          ++executed_;
          call_body(key, vals);
        });
      });
    };
    if (device_eligible) {
      if (world_.tracing()) {
        world_.scheduler(rank).submit_device(job, prio, cost, std::move(dev),
                                             name_, key_to_string(key),
                                             std::move(body));
      } else {
        world_.scheduler(rank).submit_device(job, prio, cost, std::move(dev),
                                             std::move(body));
      }
      return;
    }
    if (world_.tracing()) {
      world_.scheduler(rank).submit(job, prio, cost, name_, key_to_string(key),
                                    std::move(body));
    } else {
      world_.scheduler(rank).submit(job, prio, cost, std::move(body));
    }
  }

  void call_body(const Key& key, input_values& vals) {
    if constexpr (kNumIn == 0) {
      fn_(key, outs_);
    } else {
      std::apply([&](auto&... v) { fn_(key, v..., outs_); }, vals);
    }
  }

  template <std::size_t... Is>
  void inject(const Key& key, input_values&& tup, std::index_sequence<Is...>) {
    world_.run_as(keymap_(key), [&]() {
      (put<Is>(key, std::move(std::get<Is>(tup))), ...);
    });
  }

  // ---- state ----
  rt::World& world_;
  Fn fn_;
  std::string name_;
  std::function<int(const Key&)> keymap_;
  std::function<int(const Key&)> priomap_;
  std::function<double(const Key&, const InV&...)> costmap_;
  std::function<rt::DeviceCall(const Key&, const InV&...)> device_op_;
  std::vector<std::unordered_map<Key, Record, KeyHash<Key>>> records_;
  std::tuple<std::function<void(InV&, InV&&)>...> reducers_;
  // Tree-reduction state: per slot, per rank, per key. Tombstoned (done)
  // records are kept so stale count relays can be absorbed after the wave;
  // they are excluded from pending_records and hold no payload.
  template <typename V>
  using ReduceMap = std::unordered_map<Key, ReduceRec<V>, KeyHash<Key>>;
  std::tuple<std::vector<ReduceMap<InV>>...> reduce_;
  std::map<std::pair<int, int>, ReduceShape> reduce_shapes_;  ///< (owner, arity)
  std::array<bool, kSlots> is_stream_{};
  std::array<std::int64_t, kSlots> stream_size_{};
  std::tuple<std::shared_ptr<detail::EdgeImpl<Key, InV>>...> in_edges_;
  out_terminals outs_{};
  std::uint64_t executed_ = 0;

  template <std::size_t... Is>
  static auto slots_tuple_helper(std::index_sequence<Is...>) -> std::tuple<Slot<Is>...>;
  using slots_tuple = decltype(slots_tuple_helper(std::make_index_sequence<kNumIn>{}));
  slots_tuple slots_;

  template <std::size_t>
  friend class Slot;
};

/// Compose a template task from a callable and its input/output edges
/// (Listing 1 of the paper). Key is deduced from the input edges; for a
/// task template with no inputs pass the Key explicitly:
/// `make_tt<Int1>(world, fn, std::tuple<>{}, outs, "initiator")`.
template <typename Key, typename Fn, typename... InV, typename... OutK, typename... OutV>
auto make_tt(rt::World& world, Fn fn, const std::tuple<Edge<Key, InV>...>& ins,
             const std::tuple<Edge<OutK, OutV>...>& outs, std::string name = "tt") {
  using TTType = TT<Key, Fn, std::tuple<InV...>, std::tuple<Out<OutK, OutV>...>>;
  return std::make_unique<TTType>(world, std::move(fn), ins, outs, std::move(name));
}

/// Terminal consumer: calls `f(key, value)` for every message on `e`.
/// Convenience for RESULT-style nodes that write output data back.
template <typename Key, typename Value, typename F>
auto make_sink(rt::World& world, const Edge<Key, Value>& e, F f,
               std::string name = "sink") {
  auto fn = [f = std::move(f)](const Key& k, Value& v, std::tuple<>&) { f(k, v); };
  return make_tt(world, std::move(fn), edges(e), std::tuple<>{}, std::move(name));
}

}  // namespace ttg
