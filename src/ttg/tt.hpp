// Template tasks (the TT in TTG) and make_tt.
//
// "Once every input terminal of a given template task has received one
// message with the same value of task ID, a task is created with the data
// parts of the corresponding messages." (Section II.) This header implements
// that matching logic, plus the features the paper added:
//
//   * priority maps (set_priomap) forwarded to the runtime scheduler;
//   * streaming terminals (set_input_reducer / stream sizes / finalize)
//     that accept a bounded or unbounded stream of messages reduced into a
//     single task input;
//   * user-defined process maps (set_keymap) deciding where each task runs;
//   * cost maps (set_costmap) — a simulator extension: the virtual compute
//     duration of a task, derived from kernel flop counts.
//
// A task body is any callable `fn(const Key&, InV&..., OutTuple&)`; inputs
// arrive as private, mutable values ("tasks mutating inputs receive private
// copies"), and the terminal tuple is used with ttg::send / ttg::broadcast.
#pragma once

#include <array>
#include <bitset>
#include <functional>
#include <memory>
#include <string>
#include <tuple>
#include <unordered_map>
#include <utility>
#include <vector>

#include "ttg/keys.hpp"
#include "ttg/terminal.hpp"

namespace ttg {

template <typename Key, typename Fn, typename InTuple, typename OutTuple>
class TT;

/// Template task with inputs InV... keyed by Key, producing messages on
/// output terminals OutTerm... via callable Fn.
template <typename Key, typename Fn, typename... InV, typename... OutTerm>
class TT<Key, Fn, std::tuple<InV...>, std::tuple<OutTerm...>> final : public rt::TTBase {
 public:
  static constexpr std::size_t kNumIn = sizeof...(InV);
  static constexpr std::size_t kNumOut = sizeof...(OutTerm);
  using key_type = Key;
  using input_values = std::tuple<InV...>;
  using out_terminals = std::tuple<OutTerm...>;

  template <typename InEdges, typename OutEdges>
  TT(rt::World& world, Fn fn, const InEdges& ins, const OutEdges& outs, std::string name)
      : world_(world),
        fn_(std::move(fn)),
        name_(std::move(name)),
        records_(static_cast<std::size_t>(world.nranks())) {
    slots_ = make_slots(std::make_index_sequence<kNumIn>{});
    keymap_ = [n = world.nranks()](const Key& k) {
      return static_cast<int>(support::hash_value(k) % static_cast<std::uint64_t>(n));
    };
    stream_size_.fill(-1);
    connect_inputs(ins, std::make_index_sequence<kNumIn>{});
    connect_outputs(outs, std::make_index_sequence<kNumOut>{});
    world_.register_tt(this);
  }

  ~TT() override { world_.deregister_tt(this); }
  TT(const TT&) = delete;
  TT& operator=(const TT&) = delete;

  // --- configuration (call before injecting data) ---

  /// Process map: task ID -> owning rank.
  void set_keymap(std::function<int(const Key&)> f) { keymap_ = std::move(f); }
  /// Priority map: task ID -> scheduler priority (higher runs first).
  void set_priomap(std::function<int(const Key&)> f) { priomap_ = std::move(f); }
  /// Cost map: virtual compute seconds of a task given its key and inputs.
  void set_costmap(std::function<double(const Key&, const InV&...)> f) {
    costmap_ = std::move(f);
  }

  /// Turn input terminal I into a streaming terminal: incoming messages are
  /// folded into the accumulated value with `reducer`; the task fires after
  /// `size` messages (size < 0: unbounded until set_size/finalize).
  template <std::size_t I>
  void set_input_reducer(
      std::function<void(std::tuple_element_t<I, input_values>&,
                         std::tuple_element_t<I, input_values>&&)>
          reducer,
      std::int64_t size = -1) {
    std::get<I>(reducers_) = std::move(reducer);
    is_stream_[I] = true;
    stream_size_[I] = size;
  }

  /// Change the static stream size of streaming terminal I.
  template <std::size_t I>
  void set_static_argstream_size(std::int64_t n) {
    TTG_REQUIRE(is_stream_[I], "terminal is not streaming");
    stream_size_[I] = n;
  }

  /// Declare, for one specific task ID, how many stream items terminal I
  /// expects (Listing 3: per-task stream sizes). Runs on the key's owner;
  /// call during graph setup or from a task on any rank.
  template <std::size_t I>
  void set_argstream_size(const Key& key, std::int64_t n) {
    world_.run_as(keymap_(key), [&]() { set_stream_size<I>(key, n); });
  }

  // --- introspection ---

  [[nodiscard]] const std::string& name() const override { return name_; }
  [[nodiscard]] std::size_t pending_records() const override {
    std::size_t n = 0;
    for (const auto& m : records_) n += m.size();
    return n;
  }
  [[nodiscard]] std::uint64_t tasks_executed() const override { return executed_; }
  [[nodiscard]] int keymap(const Key& k) const { return keymap_(k); }
  [[nodiscard]] rt::World& world() const { return world_; }

  /// Access output terminal I (e.g. for manual injection in tests).
  template <std::size_t I>
  [[nodiscard]] auto& out() {
    return std::get<I>(outs_);
  }

  // --- data injection (the INITIATOR pattern) ---

  /// Create task `key` directly with the given input values, on its owner
  /// rank. Represents reading locally-available data into the graph.
  void invoke(const Key& key, InV... vals)
    requires(kNumIn > 0)
  {
    input_values tup(std::move(vals)...);
    inject(key, std::move(tup), std::make_index_sequence<kNumIn>{});
  }

  /// Create an input-less task `key` on its owner rank.
  void invoke(const Key& key)
    requires(kNumIn == 0)
  {
    world_.run_as(keymap_(key), [&]() { create_task(key, input_values{}); });
  }

 private:
  // ---- input slots: the typed InTerminalBase implementations ----
  template <std::size_t I>
  class Slot final : public InTerminalBase<Key, std::tuple_element_t<I, input_values>> {
   public:
    using value_type = std::tuple_element_t<I, input_values>;
    explicit Slot(TT* tt = nullptr) : tt_(tt) {}
    [[nodiscard]] int owner(const Key& k) const override { return tt_->keymap_(k); }
    void put_local(const Key& k, const value_type& v) override {
      // Each task owns private inputs: this is the one physical copy every
      // by-reference delivery pays, accounted in the data-lifecycle layer.
      tt_->world_.data_tracker().on_input_copy(tt_->world_.rank(),
                                               rt::detail::payload_bytes(v));
      value_type copy = v;
      tt_->template put<I>(k, std::move(copy));
    }
    void put_local_move(const Key& k, value_type&& v) override {
      tt_->template put<I>(k, std::move(v));
    }
    void set_stream_size_local(const Key& k, std::size_t n) override {
      tt_->template set_stream_size<I>(k, static_cast<std::int64_t>(n));
    }
    void finalize_stream_local(const Key& k) override {
      tt_->template finalize_stream<I>(k);
    }
    [[nodiscard]] rt::World& world() const override { return tt_->world_; }
    [[nodiscard]] const std::string& consumer_name() const override { return tt_->name_; }

   private:
    TT* tt_;
  };

  template <std::size_t... Is>
  auto make_slots(std::index_sequence<Is...>) {
    return std::tuple<Slot<Is>...>(Slot<Is>(this)...);
  }

  template <typename InEdges, std::size_t... Is>
  void connect_inputs(const InEdges& ins, std::index_sequence<Is...>) {
    ((std::get<Is>(in_edges_) = std::get<Is>(ins).impl_ptr()), ...);
    (std::get<Is>(in_edges_)->sinks.push_back(&std::get<Is>(slots_)), ...);
  }

  template <typename OutEdges, std::size_t... Is>
  void connect_outputs(const OutEdges& outs, std::index_sequence<Is...>) {
    ((std::get<Is>(outs_) =
          std::tuple_element_t<Is, out_terminals>(&world_, std::get<Is>(outs).impl_ptr())),
     ...);
  }

  // ---- task record: inputs received so far for one task ID ----
  static constexpr std::size_t kSlots = kNumIn > 0 ? kNumIn : 1;
  struct Record {
    input_values vals{};
    std::array<std::int64_t, kSlots> received{};
    std::array<std::int64_t, kSlots> target{};
    std::bitset<kSlots> done;
  };

  Record& record(const Key& key) {
    auto& map = records_[static_cast<std::size_t>(world_.rank())];
    auto it = map.find(key);
    if (it == map.end()) {
      Record rec;
      for (std::size_t i = 0; i < kNumIn; ++i)
        rec.target[i] = is_stream_[i] ? stream_size_[i] : 1;
      it = map.emplace(key, std::move(rec)).first;
    }
    return it->second;
  }

  template <std::size_t I>
  void put(const Key& key, std::tuple_element_t<I, input_values>&& v) {
    static_assert(I < kNumIn);
    Record& rec = record(key);
    TTG_CHECK(!rec.done[I], "input terminal " + std::to_string(I) + " of '" + name_ +
                                "' received a message for an already-satisfied task " +
                                "(duplicate input or stream overflow)");
    if (is_stream_[I]) {
      if (rec.received[I] == 0) {
        std::get<I>(rec.vals) = std::move(v);
      } else {
        auto& reducer = std::get<I>(reducers_);
        reducer(std::get<I>(rec.vals), std::move(v));
      }
      ++rec.received[I];
      if (rec.target[I] >= 0 && rec.received[I] == rec.target[I]) {
        rec.done[I] = true;
        maybe_fire(key);
      } else {
        TTG_CHECK(rec.target[I] < 0 || rec.received[I] < rec.target[I],
                  "stream overflow on '" + name_ + "'");
      }
    } else {
      TTG_CHECK(rec.received[I] == 0,
                "duplicate input on terminal " + std::to_string(I) + " of '" + name_ +
                    "' for task " + key_to_string(key));
      std::get<I>(rec.vals) = std::move(v);
      rec.received[I] = 1;
      rec.done[I] = true;
      maybe_fire(key);
    }
  }

  template <std::size_t I>
  void set_stream_size(const Key& key, std::int64_t n) {
    TTG_REQUIRE(is_stream_[I], "set_size on a non-streaming terminal of '" + name_ + "'");
    Record& rec = record(key);
    TTG_CHECK(!rec.done[I], "stream size set after completion");
    TTG_CHECK(rec.received[I] <= n, "stream size below already-received count");
    rec.target[I] = n;
    if (rec.received[I] == n) {
      rec.done[I] = true;
      maybe_fire(key);
    }
  }

  template <std::size_t I>
  void finalize_stream(const Key& key) {
    TTG_REQUIRE(is_stream_[I], "finalize on a non-streaming terminal of '" + name_ + "'");
    Record& rec = record(key);
    TTG_CHECK(!rec.done[I], "stream finalized twice");
    rec.target[I] = rec.received[I];
    rec.done[I] = true;
    maybe_fire(key);
  }

  void maybe_fire(const Key& key) {
    auto& map = records_[static_cast<std::size_t>(world_.rank())];
    auto it = map.find(key);
    TTG_CHECK(it != map.end(), "record vanished");
    if (it->second.done.count() != kNumIn) return;
    input_values vals = std::move(it->second.vals);
    map.erase(it);
    create_task(key, std::move(vals));
  }

  void create_task(const Key& key, input_values&& vals) {
    const int rank = world_.rank();
    const int prio = priomap_ ? priomap_(key) : 0;
    double cost = 0.0;
    if (costmap_) {
      cost = std::apply(
          [&](const auto&... v) { return costmap_(key, v...); }, vals);
    }
    cost += world_.comm().task_overhead();
    auto body = [this, rank, key, vals = std::move(vals)]() mutable {
      world_.run_as(rank, [&]() {
        ++executed_;
        call_body(key, vals);
      });
    };
    if (world_.tracing()) {
      world_.scheduler(rank).submit(prio, cost, name_, key_to_string(key),
                                    std::move(body));
    } else {
      world_.scheduler(rank).submit(prio, cost, std::move(body));
    }
  }

  void call_body(const Key& key, input_values& vals) {
    if constexpr (kNumIn == 0) {
      fn_(key, outs_);
    } else {
      std::apply([&](auto&... v) { fn_(key, v..., outs_); }, vals);
    }
  }

  template <std::size_t... Is>
  void inject(const Key& key, input_values&& tup, std::index_sequence<Is...>) {
    world_.run_as(keymap_(key), [&]() {
      (put<Is>(key, std::move(std::get<Is>(tup))), ...);
    });
  }

  // ---- state ----
  rt::World& world_;
  Fn fn_;
  std::string name_;
  std::function<int(const Key&)> keymap_;
  std::function<int(const Key&)> priomap_;
  std::function<double(const Key&, const InV&...)> costmap_;
  std::vector<std::unordered_map<Key, Record, KeyHash<Key>>> records_;
  std::tuple<std::function<void(InV&, InV&&)>...> reducers_;
  std::array<bool, kSlots> is_stream_{};
  std::array<std::int64_t, kSlots> stream_size_{};
  std::tuple<std::shared_ptr<detail::EdgeImpl<Key, InV>>...> in_edges_;
  out_terminals outs_{};
  std::uint64_t executed_ = 0;

  template <std::size_t... Is>
  static auto slots_tuple_helper(std::index_sequence<Is...>) -> std::tuple<Slot<Is>...>;
  using slots_tuple = decltype(slots_tuple_helper(std::make_index_sequence<kNumIn>{}));
  slots_tuple slots_;

  template <std::size_t>
  friend class Slot;
};

/// Compose a template task from a callable and its input/output edges
/// (Listing 1 of the paper). Key is deduced from the input edges; for a
/// task template with no inputs pass the Key explicitly:
/// `make_tt<Int1>(world, fn, std::tuple<>{}, outs, "initiator")`.
template <typename Key, typename Fn, typename... InV, typename... OutK, typename... OutV>
auto make_tt(rt::World& world, Fn fn, const std::tuple<Edge<Key, InV>...>& ins,
             const std::tuple<Edge<OutK, OutV>...>& outs, std::string name = "tt") {
  using TTType = TT<Key, Fn, std::tuple<InV...>, std::tuple<Out<OutK, OutV>...>>;
  return std::make_unique<TTType>(world, std::move(fn), ins, outs, std::move(name));
}

/// Terminal consumer: calls `f(key, value)` for every message on `e`.
/// Convenience for RESULT-style nodes that write output data back.
template <typename Key, typename Value, typename F>
auto make_sink(rt::World& world, const Edge<Key, Value>& e, F f,
               std::string name = "sink") {
  auto fn = [f = std::move(f)](const Key& k, Value& v, std::tuple<>&) { f(k, v); };
  return make_tt(world, std::move(fn), edges(e), std::tuple<>{}, std::move(name));
}

}  // namespace ttg
