// Umbrella header for the TTG programming model.
//
// Reproduction of the C++ TTG library described in "Generalized Flow-Graph
// Programming Using Template Task-Graphs: Initial Implementation and
// Assessment" (IPDPS 2022). A TTG program:
//
//   1. declares typed edges:            ttg::Edge<Int2, Tile> potrf_trsm;
//   2. composes template tasks:         auto tt = ttg::make_tt(world, fn,
//                                           ttg::edges(in...), ttg::edges(out...));
//   3. configures maps:                 tt->set_keymap(...); tt->set_priomap(...);
//   4. marks the graph executable:      ttg::make_graph_executable(*tt);
//   5. injects data (INITIATOR):        tt->invoke(key, value);
//   6. executes to quiescence:          world.fence();
//
// Execution is distributed over a simulated cluster (see runtime/world.hpp)
// with either the PaRSEC-like or the MADNESS-like backend.
#pragma once

#include "runtime/world.hpp"
#include "serialization/traits.hpp"
#include "ttg/edge.hpp"
#include "ttg/functions.hpp"
#include "ttg/keys.hpp"
#include "ttg/terminal.hpp"
#include "ttg/tt.hpp"

namespace ttg {

using rt::BackendKind;
using rt::make_graph_executable;
using rt::World;
using rt::WorldConfig;

}  // namespace ttg
