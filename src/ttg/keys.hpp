// Task-ID (key) types.
//
// In the TTG model every message is a (task ID, data) pair; task IDs are
// typically small integer tuples. The paper's Cholesky example uses Int1
// (POTRF iteration), Int2 (TRSM tile coordinate), and Int3 (GEMM tile
// coordinate + iteration); Floyd-Warshall uses Int3 as well. Pure-dataflow
// nodes use a void-like key. All keys are hashable, comparable, trivially
// serializable, and printable.
#pragma once

#include <compare>
#include <cstdint>
#include <string>

#include "support/hash.hpp"

namespace ttg {

/// Null type standing in for `void` task IDs / data parts: "pure control
/// flow can be implemented by omitting the data part ... pure dataflow ...
/// by using the null type to represent the task ID" (Section II).
struct Void {
  auto operator<=>(const Void&) const = default;
  [[nodiscard]] std::uint64_t hash() const { return 0; }
};

/// 1-tuple task ID.
struct Int1 {
  int i = 0;
  auto operator<=>(const Int1&) const = default;
  [[nodiscard]] std::uint64_t hash() const {
    return support::hash_value(static_cast<std::uint64_t>(static_cast<std::uint32_t>(i)));
  }
};

/// 2-tuple task ID (e.g. a tile coordinate).
struct Int2 {
  int i = 0;
  int j = 0;
  auto operator<=>(const Int2&) const = default;
  [[nodiscard]] std::uint64_t hash() const {
    std::uint64_t h = support::hash_value(static_cast<std::uint64_t>(static_cast<std::uint32_t>(i)));
    support::hash_combine(h, static_cast<std::uint32_t>(j));
    return h;
  }
};

/// 3-tuple task ID (e.g. tile coordinate + iteration).
struct Int3 {
  int i = 0;
  int j = 0;
  int k = 0;
  auto operator<=>(const Int3&) const = default;
  [[nodiscard]] std::uint64_t hash() const {
    std::uint64_t h = support::hash_value(static_cast<std::uint64_t>(static_cast<std::uint32_t>(i)));
    support::hash_combine(h, static_cast<std::uint32_t>(j));
    support::hash_combine(h, static_cast<std::uint32_t>(k));
    return h;
  }
};

inline std::string to_string(const Void&) { return "()"; }
inline std::string to_string(const Int1& k) { return "(" + std::to_string(k.i) + ")"; }
inline std::string to_string(const Int2& k) {
  return "(" + std::to_string(k.i) + "," + std::to_string(k.j) + ")";
}
inline std::string to_string(const Int3& k) {
  return "(" + std::to_string(k.i) + "," + std::to_string(k.j) + "," +
         std::to_string(k.k) + ")";
}

namespace detail {
template <typename K>
concept Printable = requires(const K& k) {
  { to_string(k) } -> std::convertible_to<std::string>;
};
}  // namespace detail

/// Best-effort key rendering for diagnostics: uses ADL to_string if the
/// key type provides one.
template <typename K>
std::string key_to_string(const K& k) {
  if constexpr (detail::Printable<K>) {
    return to_string(k);
  } else {
    return "<key>";
  }
}

/// Hash functor for unordered containers keyed by task IDs.
template <typename K>
struct KeyHash {
  std::size_t operator()(const K& k) const {
    return static_cast<std::size_t>(support::hash_value(k));
  }
};

}  // namespace ttg
