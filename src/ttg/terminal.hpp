// Output terminals: sending and broadcasting (Section II-A of the paper).
//
// A task body receives a tuple of Out<Key, Value> terminals and pushes
// messages through them with ttg::send / ttg::broadcast. Routing rules:
//
//   * the destination rank of each (key, value) message is the *consumer's*
//     keymap applied to the key;
//   * local deliveries copy by default; moves and (on backends that own the
//     data, i.e. PaRSEC) const-reference sends are zero-copy;
//   * remote deliveries pick the best serialization protocol for Value:
//     split-metadata (metadata eager + one-sided payload fetch) when the
//     type and backend support it, otherwise whole-object serialization;
//   * broadcasts to several task IDs owned by the same remote rank are
//     coalesced into a single message carrying the key list (the optimized
//     ttg::broadcast the paper introduced) unless the world was configured
//     with optimized_broadcast = false (the ablation / Chameleon profile).
//   * when the consumer backend's CollectivePolicy declares a tree arity
//     (PaRSEC), a coalesced broadcast reaching several remote ranks is
//     routed down a deterministic k-ary spanning tree rooted at the sender:
//     interior ranks store-and-forward the pinned serialized DataCopy block
//     to their children (no deserialize/reserialize on interior hops) while
//     delivering locally, so the root injects O(arity) transfers instead of
//     O(R). With <= arity destinations the tree degenerates to the flat
//     pattern bit-identically.
//   * tree layout is topology-aware: with ranks_per_node > 1 the members of
//     one node form a contiguous subtree under a single leader, so each
//     route crosses the network once per node (collective::build_tree).
//   * streaming inputs whose consumer combines contributions up a reduction
//     tree (stream_reduces_via_tree) are folded into the *sending* rank's
//     partial accumulator instead of being routed to the key's owner; the
//     consumer's reduce layer (ttg/tt.hpp) then relays one combined partial
//     per subtree toward the owner along the inverted spanning tree.
#pragma once

#include <cstring>
#include <map>
#include <memory>
#include <vector>

#include "runtime/collective.hpp"
#include "runtime/datacopy.hpp"
#include "serialization/traits.hpp"
#include "ttg/edge.hpp"
#include "ttg/keys.hpp"

namespace ttg {

namespace detail {
/// Local-copy charge estimate: the declared wire size when available
/// (Tile-like types), else the static size of the value.
template <typename V>
std::size_t local_copy_bytes(const V& v) {
  if constexpr (ser::detail::HasWireBytes<V>) {
    return v.wire_bytes();
  } else {
    return sizeof(V);
  }
}

/// Classify one payload-bearing tree hop as intra- or inter-node (machine
/// topology accounting shared by the broadcast and reduction planes).
inline void record_tree_hop(rt::World& w, int from, int dst) {
  const bool intra = w.topology().same_node(from, dst);
  auto& stats = w.comm().mutable_stats();
  if (intra) {
    stats.intra_node_hops += 1;
  } else {
    stats.inter_node_hops += 1;
  }
  if (w.tracing()) w.tracer().record_tree_hop(from, intra);
}
}  // namespace detail

/// Output terminal attached to one edge; fans out to all of the edge's
/// registered input terminals.
template <typename Key, typename Value>
class Out {
 public:
  using key_type = Key;
  using value_type = Value;

  Out() = default;
  Out(rt::World* world, std::shared_ptr<detail::EdgeImpl<Key, Value>> edge)
      : world_(world), edge_(std::move(edge)) {}

  /// Send one message; the value is copied (mutable afterwards).
  void send(const Key& key, const Value& value) const {
    route(std::vector<Key>{key}, value, /*moved=*/false);
  }
  /// Send one message, surrendering the value (zero-copy path).
  void send(const Key& key, Value&& value) const {
    route(std::vector<Key>{key}, value, /*moved=*/true);
  }
  /// Pure-control send (Value == Void).
  void send(const Key& key) const
    requires std::same_as<Value, Void>
  {
    route(std::vector<Key>{key}, Void{}, /*moved=*/true);
  }

  /// Send the same value to several task IDs (Fig. 2b): the value crosses
  /// the wire once per destination rank, not once per key.
  void broadcast(const std::vector<Key>& keys, const Value& value) const {
    route(keys, value, /*moved=*/false);
  }
  void broadcast(const std::vector<Key>& keys, Value&& value) const {
    route(keys, value, /*moved=*/true);
  }

  /// Declare how many stream items task `key` expects on the connected
  /// streaming input terminals.
  void set_size(const Key& key, std::size_t n) const {
    control(key, [n](InTerminalBase<Key, Value>* sink, const Key& k) {
      sink->set_stream_size_local(k, n);
    });
  }

  /// Close the connected streaming terminals' stream for `key` at its
  /// current length.
  void finalize(const Key& key) const {
    control(key, [](InTerminalBase<Key, Value>* sink, const Key& k) {
      sink->finalize_stream_local(k);
    });
  }

  [[nodiscard]] bool connected() const { return edge_ && !edge_->sinks.empty(); }
  [[nodiscard]] std::size_t fanout() const { return edge_ ? edge_->sinks.size() : 0; }

 private:
  void route(const std::vector<Key>& keys, const Value& value, bool moved) const {
    if (keys.empty()) return;
    TTG_CHECK(world_ != nullptr, "send through a default-constructed terminal");
    TTG_CHECK(connected(), "send through an unconnected output terminal");
    auto& w = *world_;
    const int me = w.rank();
    auto& comm = w.comm();
    const bool coalesce = w.config().optimized_broadcast;

    // The payload enters the data-lifecycle layer lazily: the first remote
    // destination wraps it in a refcounted DataCopy that every message of
    // this broadcast shares — one live allocation, one serialized form under
    // the serialize-once policy, regardless of the destination-rank count.
    // Purely local routing never allocates a handle.
    rt::DataCopy<Value> data;
    const Value* payload = &value;
    auto shared = [&]() -> const rt::DataCopy<Value>& {
      if (!data) {
        rt::Tracer* tr = w.tracing() ? &w.tracer() : nullptr;
        if (moved) {
          // The caller surrendered the value (rvalue send): move it into
          // the runtime-owned block instead of copying.
          data = rt::DataCopy<Value>(w.data_tracker(), tr, comm, me,
                                     std::move(const_cast<Value&>(value)));
        } else {
          data = rt::DataCopy<Value>(w.data_tracker(), tr, comm, me, value);
        }
        payload = &data.value();
      }
      return data;
    };

    for (auto* sink : edge_->sinks) {
      if (sink->stream_reduces_via_tree()) {
        // Tree-reducing streaming sink: every contribution folds into the
        // *current* rank's partial accumulator (ttg/tt.hpp reduce layer);
        // nothing is routed to the key's owner here. Cost accounting is
        // exactly the flat local-delivery path.
        for (const Key& k : keys) {
          if (moved || comm.zero_copy_local()) {
            comm.mutable_stats().local_shares += 1;
          } else {
            comm.mutable_stats().local_copies += 1;
            w.scheduler(me).charge(
                w.machine().copy_time(detail::local_copy_bytes(*payload)));
          }
          sink->put_local(k, *payload);
        }
        continue;
      }
      std::vector<Key> local;
      std::map<int, std::vector<Key>> remote;  // ordered => deterministic
      for (const Key& k : keys) {
        const int dst = sink->owner(k);
        if (dst == me) {
          local.push_back(k);
        } else {
          remote[dst].push_back(k);
        }
      }
      for (const Key& k : local) {
        // Physical copy always happens (each task owns private inputs);
        // the virtual cost depends on the backend's CopyPolicy.
        if (moved || comm.zero_copy_local()) {
          comm.mutable_stats().local_shares += 1;
        } else {
          comm.mutable_stats().local_copies += 1;
          w.scheduler(me).charge(
              w.machine().copy_time(detail::local_copy_bytes(*payload)));
        }
        sink->put_local(k, *payload);
      }
      if (coalesce && comm.collective().tree_arity >= 2 && remote.size() >= 2) {
        // Several remote ranks + a routing backend: ship down the spanning
        // tree. (A single remote rank is a plain point-to-point send.)
        send_tree(sink, me, remote, shared());
        continue;
      }
      for (auto& [dst, ks] : remote) {
        const rt::DataCopy<Value>& dc = shared();
        if (coalesce) {
          send_remote(sink, me, dst, ks, dc);
        } else {
          for (const Key& k : ks) send_remote(sink, me, dst, {k}, dc);
        }
      }
    }
  }

  void send_remote(InTerminalBase<Key, Value>* sink, int src, int dst,
                   const std::vector<Key>& ks, const rt::DataCopy<Value>& data) const {
    auto& w = *world_;
    auto& comm = w.comm();
    if constexpr (ser::is_splitmd_v<Value>) {
      if (comm.supports_splitmd()) {
        send_splitmd(sink, src, dst, ks, data);
        return;
      }
    }
    static_assert(std::is_default_constructible_v<Value>,
                  "remote TTG values must be default-constructible");
    // Whole-object path. The value buffer comes from the DataCopy's
    // serialized cache — one archive pass per broadcast under the
    // serialize-once policy — and only the piggybacked key list is
    // serialized per message. Concatenated, the two buffers carry exactly
    // the bytes of the old single-archive message.
    bool cache_hit = false;
    auto vbuf = data.serialized(&cache_hit);
    ser::OutputArchive kar;
    kar& ks;
    auto kbuf = std::make_shared<const std::vector<std::byte>>(kar.release());
    const std::size_t wire = ser::wire_size(data.value(), vbuf->size() + kbuf->size());
    // Downgrade the protocol label when splitmd exists but the backend
    // cannot use it (MADNESS): costs follow the whole-object path.
    constexpr ser::Protocol proto =
        ser::protocol_for<Value>() == ser::Protocol::SplitMetadata
            ? ser::Protocol::Archive
            : ser::protocol_for<Value>();
    // A cache hit skips the staging pass entirely: the sender pays only the
    // per-message AM injection CPU (the PaRSEC broadcast win). A miss is
    // charged the full send-side cost, exactly as before the cache existed.
    const double cpu =
        cache_hit ? comm.per_message_cpu() : comm.send_side_cpu(wire, proto);
    const double delay = w.scheduler(src).charge(cpu);
    // Trace the message while still inside the sender's body so the
    // producing task becomes the message node's predecessor.
    rt::Tracer* tr = w.tracing() ? &w.tracer() : nullptr;
    std::uint32_t msg = rt::Tracer::kNoNode;
    if (tr != nullptr) {
      msg = tr->message_created(sink->consumer_name(), src, dst, wire,
                                /*splitmd=*/false);
      tr->add_copies(src, cache_hit ? 0 : comm.send_copies(proto));
      tr->add_copies(dst, comm.recv_copies(proto));
    }
    rt::World* wp = world_;
    const rt::JobId job = w.current_job();
    w.engine().after(delay, [wp, &comm, job, src, dst, wire, vbuf, kbuf, data, sink,
                             tr, msg]() {
      wp->run_as_job(job, [&]() {
        if (tr != nullptr) tr->message_sent(msg, wp->engine().now());
        // The pin keeps the DataCopy block (with its cached buffer) alive
        // across retransmissions; the block is released at final delivery.
        comm.send_payload(src, dst, wire, data.pin(), [wp, job, dst, vbuf, kbuf,
                                                       sink, tr, msg]() {
          ser::InputArchive ia(*vbuf);
          Value v{};
          ia& v;
          std::vector<Key> keys;
          ser::InputArchive ka(*kbuf);
          ka& keys;
          wp->run_as_job(job, [&]() {
            wp->run_as(dst, [&]() {
              // Deliveries run under the message's causality context: tasks
              // completed by these puts become the message's successors.
              if (tr != nullptr) {
                tr->message_delivered(msg, wp->engine().now());
                tr->set_context(msg);
              }
              for (std::size_t i = 0; i + 1 < keys.size(); ++i)
                sink->put_local(keys[i], v);
              sink->put_local_move(keys.back(), std::move(v));
              if (tr != nullptr) tr->clear_context();
            });
          });
        });
      });
    });
  }

  void send_splitmd(InTerminalBase<Key, Value>* sink, int src, int dst,
                    const std::vector<Key>& ks, const rt::DataCopy<Value>& data) const {
    using SMD = ser::SplitMetadata<Value>;
    auto& w = *world_;
    auto& comm = w.comm();
    ser::OutputArchive ar;
    auto md = SMD::get_metadata(data.value());
    ar& md;
    ar& ks;
    auto mdbuf = std::make_shared<std::vector<std::byte>>(ar.release());
    const std::size_t payload_bytes = SMD::payload_bytes(data.value());
    // The runtime keeps the source object registered/alive until the remote
    // completion notification. The refcounted DataCopy models that: every
    // destination of a broadcast shares the one runtime-owned block (the
    // old code paid a full per-destination Value copy here).
    auto obj = std::make_shared<Value>();
    auto keys_out = std::make_shared<std::vector<Key>>();
    const double cpu = comm.send_side_cpu(payload_bytes, ser::Protocol::SplitMetadata);
    const double delay = w.scheduler(src).charge(cpu);
    rt::Tracer* tr = w.tracing() ? &w.tracer() : nullptr;
    std::uint32_t msg = rt::Tracer::kNoNode;
    if (tr != nullptr) {
      // Metadata + payload both count toward wire bytes; no staging or
      // unstaging copies are paid on the splitmd data plane.
      msg = tr->message_created(sink->consumer_name(), src, dst,
                                mdbuf->size() + payload_bytes, /*splitmd=*/true);
    }
    rt::World* wp = world_;
    const rt::JobId job = w.current_job();
    w.engine().after(delay, [wp, &comm, job, src, dst, mdbuf, payload_bytes, data,
                             obj, keys_out, sink, tr, msg]() {
      wp->run_as_job(job, [&]() {
        if (tr != nullptr) tr->message_sent(msg, wp->engine().now());
        comm.send_splitmd(
            src, dst, mdbuf->size(), payload_bytes,
            /*on_metadata=*/
            [mdbuf, obj, keys_out]() {
              ser::InputArchive ia(*mdbuf);
              typename SMD::metadata_type m{};
              ia& m;
              ia&* keys_out;
              *obj = SMD::create(m);
            },
            /*on_payload=*/
            [wp, job, dst, data, obj, keys_out, sink, tr, msg]() {
              const auto src_span = SMD::payload(data.value());
              const auto dst_span = SMD::payload(*obj);
              TTG_CHECK(src_span.size() == dst_span.size(),
                        "splitmd payload size mismatch");
              if (!src_span.empty())
                std::memcpy(dst_span.data(), src_span.data(), src_span.size());
              wp->run_as_job(job, [&]() {
                wp->run_as(dst, [&]() {
                  if (tr != nullptr) {
                    tr->message_delivered(msg, wp->engine().now());
                    tr->set_context(msg);
                  }
                  const auto& keys = *keys_out;
                  for (std::size_t i = 0; i + 1 < keys.size(); ++i)
                    sink->put_local(keys[i], *obj);
                  sink->put_local_move(keys.back(), std::move(*obj));
                  if (tr != nullptr) tr->clear_context();
                });
              });
            },
            /*on_release=*/[data]() { /* dropping the handle releases the source */ });
      });
    });
  }

  // ------------------------------------------------------------------
  // Tree-routed broadcast (collective data plane).
  //
  // Destinations are laid out as a topology-aware k-ary tree over positions
  // 0..M (position 0 = sender; see collective::build_tree — with one rank
  // per node this is the plain heap over ascending-rank members). The
  // shared TreeState pins the DataCopy block and carries every member's
  // serialized key list, built once at the root; each hop's wire payload is
  // the value buffer plus the key lists of the receiver's whole subtree, so
  // a leaf hop carries exactly the bytes of the equivalent flat message.
  // Interior ranks re-inject the pinned block toward their children (a
  // serialize-cache reuse, never an archive pass) before delivering
  // locally; each hop is an ordinary payload send, so ReliableLink
  // acks/retransmits protect every edge.
  // ------------------------------------------------------------------

  /// Shared state of one whole-object tree broadcast.
  struct WireTreeState {
    struct Member {
      int rank = 0;
      std::shared_ptr<const std::vector<std::byte>> kbuf;  ///< serialized keys
    };
    rt::World* world = nullptr;
    InTerminalBase<Key, Value>* sink = nullptr;
    rt::JobId job = rt::kDefaultJob;  ///< job of the broadcasting task
    rt::collective::TreeShape shape;  ///< positions: 0 = sender, p -> members[p-1]
    std::vector<Member> members;      ///< tree position p -> members[p-1]
    rt::DataCopy<Value> data;         ///< pins the block (and cached buffer)
    std::shared_ptr<const std::vector<std::byte>> vbuf;  ///< serialized value
  };

  /// Protocol label for tree/flat whole-object sends (splitmd-capable types
  /// downgrade when the backend routes them through the archive path).
  static constexpr ser::Protocol tree_proto() {
    return ser::protocol_for<Value>() == ser::Protocol::SplitMetadata
               ? ser::Protocol::Archive
               : ser::protocol_for<Value>();
  }

  /// Wire bytes of the hop delivering subtree `pos`: the value buffer, the
  /// key lists of every member in the subtree, and a routing header per
  /// forwarded member. A leaf (subtree of one) matches the flat message.
  static std::size_t tree_wire_bytes(const WireTreeState& st, int pos) {
    std::size_t kbytes = 0;
    int sub = 0;
    for (int q : rt::collective::shape_subtree(st.shape, pos)) {
      kbytes += st.members[static_cast<std::size_t>(q) - 1].kbuf->size();
      ++sub;
    }
    const auto routing = static_cast<std::size_t>(sub - 1) * rt::kTreeHopHeaderBytes;
    return ser::wire_size(st.data.value(), st.vbuf->size() + kbytes) + routing;
  }

  /// Issue the hop that delivers subtree `pos` from rank `from`, `lag`
  /// virtual seconds from now. `src_copies` is the staging-copy count to
  /// attribute to the sender (root cache misses only; forwards re-inject
  /// the cached buffer with no staging).
  static void tree_inject(const std::shared_ptr<const WireTreeState>& st, int from,
                          int pos, double lag, int src_copies) {
    rt::World* wp = st->world;
    auto& comm = wp->comm();
    const int dst = st->members[static_cast<std::size_t>(pos) - 1].rank;
    const std::size_t wire = tree_wire_bytes(*st, pos);
    detail::record_tree_hop(*wp, from, dst);
    rt::Tracer* tr = wp->tracing() ? &wp->tracer() : nullptr;
    std::uint32_t msg = rt::Tracer::kNoNode;
    if (tr != nullptr) {
      msg = tr->message_created(st->sink->consumer_name(), from, dst, wire,
                                /*splitmd=*/false);
      tr->add_copies(from, src_copies);
      tr->add_copies(dst, comm.recv_copies(tree_proto()));
    }
    wp->engine().after(lag, [wp, st, from, dst, wire, pos, tr, msg]() {
      wp->run_as_job(st->job, [&]() {
        if (tr != nullptr) tr->message_sent(msg, wp->engine().now());
        wp->comm().send_payload(from, dst, wire, st->data.pin(), [st, pos, tr, msg]() {
          tree_deliver(st, pos, tr, msg);
        });
      });
    });
  }

  /// Delivery of the hop for tree position `pos`: forward the pinned block
  /// to the position's children first (store-and-forward — the cached
  /// buffer is re-injected as-is, paying only per-message injection CPU per
  /// child, pipelined), then deliver the member's keys locally.
  static void tree_deliver(const std::shared_ptr<const WireTreeState>& st, int pos,
                           rt::Tracer* tr, std::uint32_t msg) {
    rt::World* wp = st->world;
    const auto& m = st->members[static_cast<std::size_t>(pos) - 1];
    ser::InputArchive ia(*st->vbuf);
    Value v{};
    ia& v;
    std::vector<Key> keys;
    ser::InputArchive ka(*m.kbuf);
    ka& keys;
    wp->run_as_job(st->job, [&]() {
      wp->run_as(m.rank, [&]() {
        // Under the message's causality context: child hops and the tasks
        // completed by the local puts all become this message's successors.
        if (tr != nullptr) {
          tr->message_delivered(msg, wp->engine().now());
          tr->set_context(msg);
        }
        auto& comm = wp->comm();
        double lag = 0.0;
        for (int c : st->shape.children[static_cast<std::size_t>(pos)]) {
          st->data.record_forward_hit();
          comm.mutable_stats().broadcast_forwards += 1;
          if (tr != nullptr) tr->record_forward(m.rank);
          lag += comm.per_message_cpu();
          tree_inject(st, m.rank, c, lag, /*src_copies=*/0);
        }
        for (std::size_t i = 0; i + 1 < keys.size(); ++i)
          st->sink->put_local(keys[i], v);
        st->sink->put_local_move(keys.back(), std::move(v));
        if (tr != nullptr) tr->clear_context();
      });
    });
  }

  /// Root of a tree broadcast: build the shared state (every member's key
  /// list serialized once, here) and inject the root's child hops. One
  /// serialized() call per root child keeps the per-destination cache
  /// accounting identical to flat routing; the remaining destinations are
  /// covered by record_forward_hit at the interior hops.
  void send_tree(InTerminalBase<Key, Value>* sink, int src,
                 const std::map<int, std::vector<Key>>& remote,
                 const rt::DataCopy<Value>& data) const {
    auto& w = *world_;
    auto& comm = w.comm();
    // Adaptive (opt-in) arity: the root knows the fan and the payload size,
    // and the shape ships with the broadcast, so a dynamic hint is safe here
    // (reductions must use a static hint — see TT::reduce_arity).
    const int arity =
        rt::collective::pick_arity(comm.collective(), /*reduce=*/false,
                                   static_cast<int>(remote.size()),
                                   detail::local_copy_bytes(data.value()));
    if constexpr (ser::is_splitmd_v<Value>) {
      if (comm.supports_splitmd()) {
        send_tree_splitmd(sink, src, arity, remote, data);
        return;
      }
    }
    static_assert(std::is_default_constructible_v<Value>,
                  "remote TTG values must be default-constructible");
    auto st = std::make_shared<WireTreeState>();
    st->world = world_;
    st->sink = sink;
    st->job = w.current_job();
    std::vector<int> dsts;
    dsts.reserve(remote.size());
    for (const auto& [dst, ks] : remote) dsts.push_back(dst);
    st->shape = rt::collective::build_tree(src, std::move(dsts), arity, w.topology());
    st->members.reserve(remote.size());
    for (std::size_t p = 1; p < st->shape.ranks.size(); ++p) {
      const int dst = st->shape.ranks[p];
      ser::OutputArchive kar;
      kar& remote.at(dst);
      st->members.push_back(
          {dst, std::make_shared<const std::vector<std::byte>>(kar.release())});
    }
    st->data = data;
    for (int c : st->shape.children[0]) {
      bool cache_hit = false;
      auto vbuf = data.serialized(&cache_hit);
      if (!st->vbuf) st->vbuf = vbuf;
      const std::size_t wire = tree_wire_bytes(*st, c);
      const double cpu =
          cache_hit ? comm.per_message_cpu() : comm.send_side_cpu(wire, tree_proto());
      const double delay = w.scheduler(src).charge(cpu);
      tree_inject(st, src, c, delay,
                  cache_hit ? 0 : comm.send_copies(tree_proto()));
    }
  }

  /// Shared state of one split-metadata tree broadcast. No serialization
  /// cache is involved (splitmd never archives the payload); members carry
  /// their flat-identical (metadata, keys) buffer and children RMA-fetch
  /// the payload from their parent's landed object instead of the root.
  struct SmdTreeState {
    struct Member {
      int rank = 0;
      std::shared_ptr<std::vector<std::byte>> mdbuf;  ///< archive(md, keys)
    };
    rt::World* world = nullptr;
    InTerminalBase<Key, Value>* sink = nullptr;
    rt::JobId job = rt::kDefaultJob;  ///< job of the broadcasting task
    rt::collective::TreeShape shape;  ///< positions: 0 = sender, p -> members[p-1]
    std::vector<Member> members;
    rt::DataCopy<Value> data;  ///< root source object, alive until all hops land
    std::size_t payload_bytes = 0;
  };

  /// Metadata bytes of the hop delivering subtree `pos` (member metadata
  /// buffers of the subtree + a routing header per forwarded member).
  static std::size_t smd_md_bytes(const SmdTreeState& st, int pos) {
    std::size_t bytes = 0;
    int sub = 0;
    for (int q : rt::collective::shape_subtree(st.shape, pos)) {
      bytes += st.members[static_cast<std::size_t>(q) - 1].mdbuf->size();
      ++sub;
    }
    return bytes + static_cast<std::size_t>(sub - 1) * rt::kTreeHopHeaderBytes;
  }

  /// Issue the splitmd hop for subtree `pos` from rank `from`; `srcv` is
  /// the object the child's one-sided get reads (the root's DataCopy value
  /// or the parent hop's landed object).
  static void smd_inject(const std::shared_ptr<const SmdTreeState>& st, int from,
                         int pos, double lag, std::shared_ptr<const Value> srcv) {
    using SMD = ser::SplitMetadata<Value>;
    rt::World* wp = st->world;
    const int dst = st->members[static_cast<std::size_t>(pos) - 1].rank;
    const std::size_t md_bytes = smd_md_bytes(*st, pos);
    detail::record_tree_hop(*wp, from, dst);
    rt::Tracer* tr = wp->tracing() ? &wp->tracer() : nullptr;
    std::uint32_t msg = rt::Tracer::kNoNode;
    if (tr != nullptr) {
      msg = tr->message_created(st->sink->consumer_name(), from, dst,
                                md_bytes + st->payload_bytes, /*splitmd=*/true);
    }
    auto obj = std::make_shared<Value>();
    auto keys_out = std::make_shared<std::vector<Key>>();
    wp->engine().after(lag, [wp, st, from, dst, md_bytes, pos, obj, keys_out,
                             srcv = std::move(srcv), tr, msg]() {
      wp->run_as_job(st->job, [&]() {
        if (tr != nullptr) tr->message_sent(msg, wp->engine().now());
        const auto& mm = st->members[static_cast<std::size_t>(pos) - 1];
        wp->comm().send_splitmd(
            from, dst, md_bytes, st->payload_bytes,
            /*on_metadata=*/
            [mdbuf = mm.mdbuf, obj, keys_out]() {
              ser::InputArchive ia(*mdbuf);
              typename SMD::metadata_type m{};
              ia& m;
              ia&* keys_out;
              *obj = SMD::create(m);
            },
            /*on_payload=*/
            [st, pos, obj, keys_out, srcv, tr, msg]() {
              const auto src_span = SMD::payload(*srcv);
              const auto dst_span = SMD::payload(*obj);
              TTG_CHECK(src_span.size() == dst_span.size(),
                        "splitmd payload size mismatch");
              if (!src_span.empty())
                std::memcpy(dst_span.data(), src_span.data(), src_span.size());
              smd_deliver(st, pos, obj, keys_out, tr, msg);
            },
            /*on_release=*/[srcv]() { /* drop the parent's source reference */ });
      });
    });
  }

  /// Delivery of a splitmd hop: forward to children first (they fetch the
  /// payload one-sidedly from this hop's landed object), then deliver
  /// locally. Interior hops copy on every local put — the landed object
  /// stays intact as the children's RMA source; leaves move the last key
  /// exactly like the flat path.
  static void smd_deliver(const std::shared_ptr<const SmdTreeState>& st, int pos,
                          const std::shared_ptr<Value>& obj,
                          const std::shared_ptr<std::vector<Key>>& keys_out,
                          rt::Tracer* tr, std::uint32_t msg) {
    rt::World* wp = st->world;
    const auto& m = st->members[static_cast<std::size_t>(pos) - 1];
    wp->run_as_job(st->job, [&]() {
      wp->run_as(m.rank, [&]() {
        if (tr != nullptr) {
          tr->message_delivered(msg, wp->engine().now());
          tr->set_context(msg);
        }
        auto& comm = wp->comm();
        const auto& children = st->shape.children[static_cast<std::size_t>(pos)];
        double lag = 0.0;
        for (int c : children) {
          comm.mutable_stats().broadcast_forwards += 1;
          if (tr != nullptr) tr->record_forward(m.rank);
          lag += comm.per_message_cpu();
          smd_inject(st, m.rank, c, lag, obj);
        }
        const auto& keys = *keys_out;
        if (children.empty()) {
          for (std::size_t i = 0; i + 1 < keys.size(); ++i)
            st->sink->put_local(keys[i], *obj);
          st->sink->put_local_move(keys.back(), std::move(*obj));
        } else {
          for (const Key& k : keys) st->sink->put_local(k, *obj);
        }
        if (tr != nullptr) tr->clear_context();
      });
    });
  }

  /// Root of a splitmd tree broadcast.
  void send_tree_splitmd(InTerminalBase<Key, Value>* sink, int src, int arity,
                         const std::map<int, std::vector<Key>>& remote,
                         const rt::DataCopy<Value>& data) const {
    using SMD = ser::SplitMetadata<Value>;
    auto& w = *world_;
    auto& comm = w.comm();
    auto st = std::make_shared<SmdTreeState>();
    st->world = world_;
    st->sink = sink;
    st->job = w.current_job();
    std::vector<int> dsts;
    dsts.reserve(remote.size());
    for (const auto& [dst, ks] : remote) dsts.push_back(dst);
    st->shape = rt::collective::build_tree(src, std::move(dsts), arity, w.topology());
    st->members.reserve(remote.size());
    auto md = SMD::get_metadata(data.value());
    for (std::size_t p = 1; p < st->shape.ranks.size(); ++p) {
      const int dst = st->shape.ranks[p];
      ser::OutputArchive ar;
      ar& md;
      ar& remote.at(dst);
      st->members.push_back(
          {dst, std::make_shared<std::vector<std::byte>>(ar.release())});
    }
    st->data = data;
    st->payload_bytes = SMD::payload_bytes(data.value());
    // The root's children read the payload straight out of the pinned
    // DataCopy value (aliasing share: releasing it releases the state).
    std::shared_ptr<const Value> rootv(st, &st->data.value());
    for (int c : st->shape.children[0]) {
      const double cpu =
          comm.send_side_cpu(st->payload_bytes, ser::Protocol::SplitMetadata);
      const double delay = w.scheduler(src).charge(cpu);
      smd_inject(st, src, c, delay, rootv);
    }
  }

  /// Route a control action (stream size / finalize) to the owner of `key`
  /// on every sink.
  template <typename Action>
  void control(const Key& key, Action action) const {
    TTG_CHECK(world_ != nullptr, "control through a default-constructed terminal");
    TTG_CHECK(connected(), "control through an unconnected output terminal");
    auto& w = *world_;
    const int me = w.rank();
    auto& comm = w.comm();
    for (auto* sink : edge_->sinks) {
      const int dst = sink->owner(key);
      if (dst == me) {
        action(sink, key);
      } else {
        constexpr std::size_t kCtrlBytes = 64;
        const double cpu = comm.send_side_cpu(kCtrlBytes, ser::Protocol::Trivial);
        const double delay = w.scheduler(me).charge(cpu);
        rt::Tracer* tr = w.tracing() ? &w.tracer() : nullptr;
        std::uint32_t msg = rt::Tracer::kNoNode;
        if (tr != nullptr) {
          msg = tr->message_created(sink->consumer_name() + "#ctrl", me, dst, kCtrlBytes,
                                    /*splitmd=*/false);
          tr->add_copies(me, comm.send_copies(ser::Protocol::Trivial));
          tr->add_copies(dst, comm.recv_copies(ser::Protocol::Trivial));
        }
        rt::World* wp = world_;
        const rt::JobId job = w.current_job();
        w.engine().after(delay, [wp, &comm, job, me, dst, sink, key, action, tr,
                                 msg]() {
          wp->run_as_job(job, [&]() {
            if (tr != nullptr) tr->message_sent(msg, wp->engine().now());
            comm.send_message(me, dst, kCtrlBytes, [wp, job, dst, sink, key, action,
                                                    tr, msg]() {
              wp->run_as_job(job, [&]() {
                wp->run_as(dst, [&]() {
                  // Stream-size/finalize arrivals can complete a task: keep the
                  // causality context so that task links back to this message.
                  if (tr != nullptr) {
                    tr->message_delivered(msg, wp->engine().now());
                    tr->set_context(msg);
                  }
                  action(sink, key);
                  if (tr != nullptr) tr->clear_context();
                });
              });
            });
          });
        });
      }
    }
  }

  rt::World* world_ = nullptr;
  std::shared_ptr<detail::EdgeImpl<Key, Value>> edge_;
};

}  // namespace ttg
