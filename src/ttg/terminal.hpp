// Output terminals: sending and broadcasting (Section II-A of the paper).
//
// A task body receives a tuple of Out<Key, Value> terminals and pushes
// messages through them with ttg::send / ttg::broadcast. Routing rules:
//
//   * the destination rank of each (key, value) message is the *consumer's*
//     keymap applied to the key;
//   * local deliveries copy by default; moves and (on backends that own the
//     data, i.e. PaRSEC) const-reference sends are zero-copy;
//   * remote deliveries pick the best serialization protocol for Value:
//     split-metadata (metadata eager + one-sided payload fetch) when the
//     type and backend support it, otherwise whole-object serialization;
//   * broadcasts to several task IDs owned by the same remote rank are
//     coalesced into a single message carrying the key list (the optimized
//     ttg::broadcast the paper introduced) unless the world was configured
//     with optimized_broadcast = false (the ablation / Chameleon profile).
#pragma once

#include <cstring>
#include <map>
#include <memory>
#include <vector>

#include "runtime/datacopy.hpp"
#include "serialization/traits.hpp"
#include "ttg/edge.hpp"
#include "ttg/keys.hpp"

namespace ttg {

namespace detail {
/// Local-copy charge estimate: the declared wire size when available
/// (Tile-like types), else the static size of the value.
template <typename V>
std::size_t local_copy_bytes(const V& v) {
  if constexpr (ser::detail::HasWireBytes<V>) {
    return v.wire_bytes();
  } else {
    return sizeof(V);
  }
}
}  // namespace detail

/// Output terminal attached to one edge; fans out to all of the edge's
/// registered input terminals.
template <typename Key, typename Value>
class Out {
 public:
  using key_type = Key;
  using value_type = Value;

  Out() = default;
  Out(rt::World* world, std::shared_ptr<detail::EdgeImpl<Key, Value>> edge)
      : world_(world), edge_(std::move(edge)) {}

  /// Send one message; the value is copied (mutable afterwards).
  void send(const Key& key, const Value& value) const {
    route(std::vector<Key>{key}, value, /*moved=*/false);
  }
  /// Send one message, surrendering the value (zero-copy path).
  void send(const Key& key, Value&& value) const {
    route(std::vector<Key>{key}, value, /*moved=*/true);
  }
  /// Pure-control send (Value == Void).
  void send(const Key& key) const
    requires std::same_as<Value, Void>
  {
    route(std::vector<Key>{key}, Void{}, /*moved=*/true);
  }

  /// Send the same value to several task IDs (Fig. 2b): the value crosses
  /// the wire once per destination rank, not once per key.
  void broadcast(const std::vector<Key>& keys, const Value& value) const {
    route(keys, value, /*moved=*/false);
  }
  void broadcast(const std::vector<Key>& keys, Value&& value) const {
    route(keys, value, /*moved=*/true);
  }

  /// Declare how many stream items task `key` expects on the connected
  /// streaming input terminals.
  void set_size(const Key& key, std::size_t n) const {
    control(key, [n](InTerminalBase<Key, Value>* sink, const Key& k) {
      sink->set_stream_size_local(k, n);
    });
  }

  /// Close the connected streaming terminals' stream for `key` at its
  /// current length.
  void finalize(const Key& key) const {
    control(key, [](InTerminalBase<Key, Value>* sink, const Key& k) {
      sink->finalize_stream_local(k);
    });
  }

  [[nodiscard]] bool connected() const { return edge_ && !edge_->sinks.empty(); }
  [[nodiscard]] std::size_t fanout() const { return edge_ ? edge_->sinks.size() : 0; }

 private:
  void route(const std::vector<Key>& keys, const Value& value, bool moved) const {
    if (keys.empty()) return;
    TTG_CHECK(world_ != nullptr, "send through a default-constructed terminal");
    TTG_CHECK(connected(), "send through an unconnected output terminal");
    auto& w = *world_;
    const int me = w.rank();
    auto& comm = w.comm();
    const bool coalesce = w.config().optimized_broadcast;

    // The payload enters the data-lifecycle layer lazily: the first remote
    // destination wraps it in a refcounted DataCopy that every message of
    // this broadcast shares — one live allocation, one serialized form under
    // the serialize-once policy, regardless of the destination-rank count.
    // Purely local routing never allocates a handle.
    rt::DataCopy<Value> data;
    const Value* payload = &value;
    auto shared = [&]() -> const rt::DataCopy<Value>& {
      if (!data) {
        rt::Tracer* tr = w.tracing() ? &w.tracer() : nullptr;
        if (moved) {
          // The caller surrendered the value (rvalue send): move it into
          // the runtime-owned block instead of copying.
          data = rt::DataCopy<Value>(w.data_tracker(), tr, comm, me,
                                     std::move(const_cast<Value&>(value)));
        } else {
          data = rt::DataCopy<Value>(w.data_tracker(), tr, comm, me, value);
        }
        payload = &data.value();
      }
      return data;
    };

    for (auto* sink : edge_->sinks) {
      std::vector<Key> local;
      std::map<int, std::vector<Key>> remote;  // ordered => deterministic
      for (const Key& k : keys) {
        const int dst = sink->owner(k);
        if (dst == me) {
          local.push_back(k);
        } else {
          remote[dst].push_back(k);
        }
      }
      for (const Key& k : local) {
        // Physical copy always happens (each task owns private inputs);
        // the virtual cost depends on the backend's CopyPolicy.
        if (moved || comm.zero_copy_local()) {
          comm.mutable_stats().local_shares += 1;
        } else {
          comm.mutable_stats().local_copies += 1;
          w.scheduler(me).charge(
              w.machine().copy_time(detail::local_copy_bytes(*payload)));
        }
        sink->put_local(k, *payload);
      }
      for (auto& [dst, ks] : remote) {
        const rt::DataCopy<Value>& dc = shared();
        if (coalesce) {
          send_remote(sink, me, dst, ks, dc);
        } else {
          for (const Key& k : ks) send_remote(sink, me, dst, {k}, dc);
        }
      }
    }
  }

  void send_remote(InTerminalBase<Key, Value>* sink, int src, int dst,
                   const std::vector<Key>& ks, const rt::DataCopy<Value>& data) const {
    auto& w = *world_;
    auto& comm = w.comm();
    if constexpr (ser::is_splitmd_v<Value>) {
      if (comm.supports_splitmd()) {
        send_splitmd(sink, src, dst, ks, data);
        return;
      }
    }
    static_assert(std::is_default_constructible_v<Value>,
                  "remote TTG values must be default-constructible");
    // Whole-object path. The value buffer comes from the DataCopy's
    // serialized cache — one archive pass per broadcast under the
    // serialize-once policy — and only the piggybacked key list is
    // serialized per message. Concatenated, the two buffers carry exactly
    // the bytes of the old single-archive message.
    bool cache_hit = false;
    auto vbuf = data.serialized(&cache_hit);
    ser::OutputArchive kar;
    kar& ks;
    auto kbuf = std::make_shared<const std::vector<std::byte>>(kar.release());
    const std::size_t wire = ser::wire_size(data.value(), vbuf->size() + kbuf->size());
    // Downgrade the protocol label when splitmd exists but the backend
    // cannot use it (MADNESS): costs follow the whole-object path.
    constexpr ser::Protocol proto =
        ser::protocol_for<Value>() == ser::Protocol::SplitMetadata
            ? ser::Protocol::Archive
            : ser::protocol_for<Value>();
    // A cache hit skips the staging pass entirely: the sender pays only the
    // per-message AM injection CPU (the PaRSEC broadcast win). A miss is
    // charged the full send-side cost, exactly as before the cache existed.
    const double cpu =
        cache_hit ? comm.per_message_cpu() : comm.send_side_cpu(wire, proto);
    const double delay = w.scheduler(src).charge(cpu);
    // Trace the message while still inside the sender's body so the
    // producing task becomes the message node's predecessor.
    rt::Tracer* tr = w.tracing() ? &w.tracer() : nullptr;
    std::uint32_t msg = rt::Tracer::kNoNode;
    if (tr != nullptr) {
      msg = tr->message_created(sink->consumer_name(), src, dst, wire,
                                /*splitmd=*/false);
      tr->add_copies(src, cache_hit ? 0 : comm.send_copies(proto));
      tr->add_copies(dst, comm.recv_copies(proto));
    }
    rt::World* wp = world_;
    w.engine().after(delay, [wp, &comm, src, dst, wire, vbuf, kbuf, data, sink, tr,
                             msg]() {
      if (tr != nullptr) tr->message_sent(msg, wp->engine().now());
      // The pin keeps the DataCopy block (with its cached buffer) alive
      // across retransmissions; the block is released at final delivery.
      comm.send_payload(src, dst, wire, data.pin(), [wp, dst, vbuf, kbuf, sink, tr,
                                                     msg]() {
        ser::InputArchive ia(*vbuf);
        Value v{};
        ia& v;
        std::vector<Key> keys;
        ser::InputArchive ka(*kbuf);
        ka& keys;
        wp->run_as(dst, [&]() {
          // Deliveries run under the message's causality context: tasks
          // completed by these puts become the message's successors.
          if (tr != nullptr) {
            tr->message_delivered(msg, wp->engine().now());
            tr->set_context(msg);
          }
          for (std::size_t i = 0; i + 1 < keys.size(); ++i) sink->put_local(keys[i], v);
          sink->put_local_move(keys.back(), std::move(v));
          if (tr != nullptr) tr->clear_context();
        });
      });
    });
  }

  void send_splitmd(InTerminalBase<Key, Value>* sink, int src, int dst,
                    const std::vector<Key>& ks, const rt::DataCopy<Value>& data) const {
    using SMD = ser::SplitMetadata<Value>;
    auto& w = *world_;
    auto& comm = w.comm();
    ser::OutputArchive ar;
    auto md = SMD::get_metadata(data.value());
    ar& md;
    ar& ks;
    auto mdbuf = std::make_shared<std::vector<std::byte>>(ar.release());
    const std::size_t payload_bytes = SMD::payload_bytes(data.value());
    // The runtime keeps the source object registered/alive until the remote
    // completion notification. The refcounted DataCopy models that: every
    // destination of a broadcast shares the one runtime-owned block (the
    // old code paid a full per-destination Value copy here).
    auto obj = std::make_shared<Value>();
    auto keys_out = std::make_shared<std::vector<Key>>();
    const double cpu = comm.send_side_cpu(payload_bytes, ser::Protocol::SplitMetadata);
    const double delay = w.scheduler(src).charge(cpu);
    rt::Tracer* tr = w.tracing() ? &w.tracer() : nullptr;
    std::uint32_t msg = rt::Tracer::kNoNode;
    if (tr != nullptr) {
      // Metadata + payload both count toward wire bytes; no staging or
      // unstaging copies are paid on the splitmd data plane.
      msg = tr->message_created(sink->consumer_name(), src, dst,
                                mdbuf->size() + payload_bytes, /*splitmd=*/true);
    }
    rt::World* wp = world_;
    w.engine().after(delay, [wp, &comm, src, dst, mdbuf, payload_bytes, data, obj,
                             keys_out, sink, tr, msg]() {
      if (tr != nullptr) tr->message_sent(msg, wp->engine().now());
      comm.send_splitmd(
          src, dst, mdbuf->size(), payload_bytes,
          /*on_metadata=*/
          [mdbuf, obj, keys_out]() {
            ser::InputArchive ia(*mdbuf);
            typename SMD::metadata_type m{};
            ia& m;
            ia&* keys_out;
            *obj = SMD::create(m);
          },
          /*on_payload=*/
          [wp, dst, data, obj, keys_out, sink, tr, msg]() {
            const auto src_span = SMD::payload(data.value());
            const auto dst_span = SMD::payload(*obj);
            TTG_CHECK(src_span.size() == dst_span.size(), "splitmd payload size mismatch");
            if (!src_span.empty())
              std::memcpy(dst_span.data(), src_span.data(), src_span.size());
            wp->run_as(dst, [&]() {
              if (tr != nullptr) {
                tr->message_delivered(msg, wp->engine().now());
                tr->set_context(msg);
              }
              const auto& keys = *keys_out;
              for (std::size_t i = 0; i + 1 < keys.size(); ++i)
                sink->put_local(keys[i], *obj);
              sink->put_local_move(keys.back(), std::move(*obj));
              if (tr != nullptr) tr->clear_context();
            });
          },
          /*on_release=*/[data]() { /* dropping the handle releases the source */ });
    });
  }

  /// Route a control action (stream size / finalize) to the owner of `key`
  /// on every sink.
  template <typename Action>
  void control(const Key& key, Action action) const {
    TTG_CHECK(world_ != nullptr, "control through a default-constructed terminal");
    TTG_CHECK(connected(), "control through an unconnected output terminal");
    auto& w = *world_;
    const int me = w.rank();
    auto& comm = w.comm();
    for (auto* sink : edge_->sinks) {
      const int dst = sink->owner(key);
      if (dst == me) {
        action(sink, key);
      } else {
        constexpr std::size_t kCtrlBytes = 64;
        const double cpu = comm.send_side_cpu(kCtrlBytes, ser::Protocol::Trivial);
        const double delay = w.scheduler(me).charge(cpu);
        rt::Tracer* tr = w.tracing() ? &w.tracer() : nullptr;
        std::uint32_t msg = rt::Tracer::kNoNode;
        if (tr != nullptr) {
          msg = tr->message_created(sink->consumer_name() + "#ctrl", me, dst, kCtrlBytes,
                                    /*splitmd=*/false);
          tr->add_copies(me, comm.send_copies(ser::Protocol::Trivial));
          tr->add_copies(dst, comm.recv_copies(ser::Protocol::Trivial));
        }
        rt::World* wp = world_;
        w.engine().after(delay, [wp, &comm, me, dst, sink, key, action, tr, msg]() {
          if (tr != nullptr) tr->message_sent(msg, wp->engine().now());
          comm.send_message(me, dst, kCtrlBytes, [wp, dst, sink, key, action, tr, msg]() {
            wp->run_as(dst, [&]() {
              // Stream-size/finalize arrivals can complete a task: keep the
              // causality context so that task links back to this message.
              if (tr != nullptr) {
                tr->message_delivered(msg, wp->engine().now());
                tr->set_context(msg);
              }
              action(sink, key);
              if (tr != nullptr) tr->clear_context();
            });
          });
        });
      }
    }
  }

  rt::World* world_ = nullptr;
  std::shared_ptr<detail::EdgeImpl<Key, Value>> edge_;
};

}  // namespace ttg
