// Free-function send/broadcast API used inside task bodies (Fig. 2).
//
//   ttg::send<i>(key, value, out)            one terminal, one task ID
//   ttg::broadcast<i>(keys, value, out)      one terminal, several task IDs
//   ttg::broadcast<i,j,...>(keylists, value, out)
//                                            several terminals, each with one
//                                            or more task IDs — the form the
//                                            TRSM task template in Listing 1
//                                            uses to feed 4 terminals from
//                                            one tile without re-serializing
//   ttg::set_size<i>(key, n, out)            declare a stream's length
//   ttg::finalize<i>(key, out)               close a stream
#pragma once

#include <tuple>
#include <type_traits>
#include <vector>

#include "ttg/terminal.hpp"

namespace ttg {

namespace detail {
template <typename T>
struct is_key_vector : std::false_type {};
template <typename K, typename A>
struct is_key_vector<std::vector<K, A>> : std::true_type {};

/// Dispatch a single key or a vector of keys into one terminal.
template <typename OutT, typename Keyish, typename V>
void bcast_one(const OutT& term, const Keyish& keyish, const V& value) {
  if constexpr (is_key_vector<Keyish>::value) {
    if (!keyish.empty()) term.broadcast(keyish, value);
  } else {
    term.send(keyish, value);
  }
}
}  // namespace detail

/// Send `value` for task `key` to output terminal `i`.
template <std::size_t i, typename Key, typename V, typename... Outs>
void send(const Key& key, V&& value, std::tuple<Outs...>& out) {
  std::get<i>(out).send(key, std::forward<V>(value));
}

/// Pure-control send (terminal i carries Void data).
template <std::size_t i, typename Key, typename... Outs>
void sendk(const Key& key, std::tuple<Outs...>& out) {
  std::get<i>(out).send(key);
}

/// Send `value` to every task in `keys` on terminal `i`; crosses the wire
/// once per destination rank (Fig. 2b).
template <std::size_t i, typename Key, typename V, typename... Outs>
void broadcast(const std::vector<Key>& keys, const V& value, std::tuple<Outs...>& out) {
  if (!keys.empty()) std::get<i>(out).broadcast(keys, value);
}

/// Multi-terminal broadcast (Fig. 2c): `keylists` is a tuple aligned with
/// the terminal indices `Is...`; each element is a single key or a
/// std::vector of keys for that terminal.
template <std::size_t... Is, typename... KeyLists, typename V, typename... Outs>
  requires(sizeof...(Is) == sizeof...(KeyLists) && sizeof...(Is) > 1)
void broadcast(const std::tuple<KeyLists...>& keylists, const V& value,
               std::tuple<Outs...>& out) {
  [&]<std::size_t... Js>(std::index_sequence<Js...>) {
    constexpr std::size_t idx[] = {Is...};
    (detail::bcast_one(std::get<idx[Js]>(out), std::get<Js>(keylists), value), ...);
  }(std::make_index_sequence<sizeof...(Is)>{});
}

/// Declare that task `key` expects `n` stream items on the streaming input
/// terminals connected to output terminal `i`.
template <std::size_t i, typename Key, typename... Outs>
void set_size(const Key& key, std::size_t n, std::tuple<Outs...>& out) {
  std::get<i>(out).set_size(key, n);
}

/// Close the stream of task `key` on the streaming inputs connected to
/// output terminal `i` at its current length.
template <std::size_t i, typename Key, typename... Outs>
void finalize(const Key& key, std::tuple<Outs...>& out) {
  std::get<i>(out).finalize(key);
}

}  // namespace ttg
