#include "linalg/matrix_gen.hpp"

#include <algorithm>

#include "linalg/kernels.hpp"

namespace ttg::linalg {

TiledMatrix::TiledMatrix(int n, int bs, bool allocate)
    : n_(n), bs_(bs), nt_((n + bs - 1) / bs) {
  TTG_CHECK(n >= 0 && bs > 0, "bad tiling");
  if (allocate) {
    tiles_.reserve(static_cast<std::size_t>(nt_) * nt_);
    for (int i = 0; i < nt_; ++i)
      for (int j = 0; j < nt_; ++j)
        tiles_.emplace_back(tile_rows(i), tile_rows(j));
  } else {
    tiles_.resize(static_cast<std::size_t>(nt_) * nt_);
  }
}

int TiledMatrix::tile_rows(int i) const {
  return std::min(bs_, n_ - i * bs_);
}

Tile& TiledMatrix::tile(int i, int j) {
  TTG_CHECK(i >= 0 && i < nt_ && j >= 0 && j < nt_, "tile index out of range");
  return tiles_[static_cast<std::size_t>(i) * nt_ + j];
}

const Tile& TiledMatrix::tile(int i, int j) const {
  TTG_CHECK(i >= 0 && i < nt_ && j >= 0 && j < nt_, "tile index out of range");
  return tiles_[static_cast<std::size_t>(i) * nt_ + j];
}

Tile TiledMatrix::to_dense() const {
  Tile d(n_, n_);
  for (int ti = 0; ti < nt_; ++ti)
    for (int tj = 0; tj < nt_; ++tj) {
      const Tile& t = tile(ti, tj);
      for (int j = 0; j < t.cols(); ++j)
        for (int i = 0; i < t.rows(); ++i)
          d(ti * bs_ + i, tj * bs_ + j) = t(i, j);
    }
  return d;
}

TiledMatrix TiledMatrix::from_dense(const Tile& dense, int bs) {
  TTG_CHECK(dense.rows() == dense.cols(), "from_dense needs a square matrix");
  TiledMatrix m(dense.rows(), bs);
  for (int ti = 0; ti < m.nt_; ++ti)
    for (int tj = 0; tj < m.nt_; ++tj) {
      Tile& t = m.tile(ti, tj);
      for (int j = 0; j < t.cols(); ++j)
        for (int i = 0; i < t.rows(); ++i)
          t(i, j) = dense(ti * bs + i, tj * bs + j);
    }
  return m;
}

double TiledMatrix::max_abs_diff(const TiledMatrix& other) const {
  TTG_CHECK(n_ == other.n_ && bs_ == other.bs_, "tiling mismatch");
  double m = 0.0;
  for (std::size_t i = 0; i < tiles_.size(); ++i)
    m = std::max(m, tiles_[i].max_abs_diff(other.tiles_[i]));
  return m;
}

Tile random_tile(support::Rng& rng, int rows, int cols, double lo, double hi) {
  Tile t(rows, cols);
  for (double& v : t.data()) v = rng.uniform(lo, hi);
  return t;
}

Tile random_spd_dense(support::Rng& rng, int n) {
  Tile b = random_tile(rng, n, n);
  Tile a(n, n);
  // A = B B^T + n I  (diagonally dominant => SPD).
  for (int j = 0; j < n; ++j)
    for (int i = 0; i < n; ++i) {
      double s = 0.0;
      for (int k = 0; k < n; ++k) s += b(i, k) * b(j, k);
      a(i, j) = s;
    }
  for (int i = 0; i < n; ++i) a(i, i) += n;
  return a;
}

TiledMatrix random_spd(support::Rng& rng, int n, int bs) {
  return TiledMatrix::from_dense(random_spd_dense(rng, n), bs);
}

TiledMatrix random_adjacency(support::Rng& rng, int n, int bs, double density) {
  Tile d(n, n);
  for (int j = 0; j < n; ++j)
    for (int i = 0; i < n; ++i) {
      if (i == j) {
        d(i, j) = 0.0;
      } else if (rng.bernoulli(density)) {
        d(i, j) = rng.uniform(1.0, 10.0);
      } else {
        d(i, j) = kInf;
      }
    }
  return TiledMatrix::from_dense(d, bs);
}

Tile ghost_tile(int n, int bs, int i, int j) {
  // Must stay in lockstep with ghost_matrix below: runs driven by on-demand
  // synthesis are pinned bit-identical to materialized-ghost runs.
  const int rows = std::min(bs, n - i * bs);
  const int cols = std::min(bs, n - j * bs);
  const auto sig = static_cast<std::uint64_t>(i) * 0x1f1f1f1f1ull +
                   static_cast<std::uint64_t>(j) + 1;
  return Tile::ghost(rows, cols, sig);
}

TiledMatrix ghost_matrix(int n, int bs) {
  TiledMatrix m(n, bs, /*allocate=*/false);
  for (int i = 0; i < m.ntiles(); ++i)
    for (int j = 0; j < m.ntiles(); ++j)
      m.tile(i, j) = ghost_tile(n, bs, i, j);
  return m;
}

Tile dense_cholesky(const Tile& spd) {
  Tile l = spd;
  TTG_CHECK(potrf(l), "reference cholesky: matrix not SPD");
  return l;
}

Tile dense_fw(const Tile& adj) {
  Tile w = adj;
  const int n = w.rows();
  for (int k = 0; k < n; ++k)
    for (int j = 0; j < n; ++j) {
      const double wkj = w(k, j);
      if (wkj >= kInf) continue;
      for (int i = 0; i < n; ++i)
        w(i, j) = std::min(w(i, j), w(i, k) + wkj);
    }
  return w;
}

}  // namespace ttg::linalg
