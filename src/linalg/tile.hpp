// Dense matrix tiles — the unit of data flowing through the linear-algebra
// TTGs (Cholesky, Floyd-Warshall, block-sparse GEMM).
//
// A Tile is a column-major rows x cols block of doubles. It exists in two
// modes:
//
//   * real  — carries actual numerical data; used by all correctness tests,
//             the examples, and small benches. Kernels compute real math.
//   * ghost — carries only its dimensions and a 64-bit signature; kernels
//             combine signatures instead of computing, and the declared
//             wire size (wire_bytes) remains rows*cols*8 so the simulated
//             network sees exactly the traffic a real run would generate.
//             This is the substitution that lets 256-node experiments run
//             on a single host (see DESIGN.md).
//
// Tiles support all three TTG serialization protocols: split-metadata (the
// contiguous payload is the data vector), archive (whole object), and the
// signature tracking survives both.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "serialization/traits.hpp"
#include "support/error.hpp"

namespace ttg::linalg {

class Tile {
 public:
  Tile() = default;

  /// Real tile, zero-initialized.
  Tile(int rows, int cols)
      : rows_(rows), cols_(cols), ghost_(false),
        data_(static_cast<std::size_t>(rows) * static_cast<std::size_t>(cols), 0.0) {
    TTG_CHECK(rows >= 0 && cols >= 0, "negative tile dims");
  }

  /// Ghost tile: dimensions + signature only.
  static Tile ghost(int rows, int cols, std::uint64_t sig = 0x9e3779b97f4a7c15ull) {
    Tile t;
    t.rows_ = rows;
    t.cols_ = cols;
    t.ghost_ = true;
    t.sig_ = sig;
    return t;
  }

  [[nodiscard]] int rows() const { return rows_; }
  [[nodiscard]] int cols() const { return cols_; }
  [[nodiscard]] bool is_ghost() const { return ghost_; }
  [[nodiscard]] bool empty() const { return rows_ == 0 || cols_ == 0; }

  /// Column-major element access (real tiles only).
  [[nodiscard]] double& operator()(int i, int j) {
    TTG_CHECK(!ghost_, "element access on ghost tile");
    return data_[static_cast<std::size_t>(j) * rows_ + i];
  }
  [[nodiscard]] double operator()(int i, int j) const {
    TTG_CHECK(!ghost_, "element access on ghost tile");
    return data_[static_cast<std::size_t>(j) * rows_ + i];
  }

  [[nodiscard]] std::vector<double>& data() { return data_; }
  [[nodiscard]] const std::vector<double>& data() const { return data_; }

  /// Ghost signature: a deterministic digest standing in for the numerical
  /// content so ghost runs can be checked for plumbing errors.
  [[nodiscard]] std::uint64_t signature() const { return sig_; }
  void set_signature(std::uint64_t s) { sig_ = s; }

  /// Declared wire size: full data footprint regardless of mode.
  [[nodiscard]] std::size_t wire_bytes() const {
    return static_cast<std::size_t>(rows_) * static_cast<std::size_t>(cols_) *
           sizeof(double);
  }

  /// Frobenius norm (real tiles).
  [[nodiscard]] double norm() const;

  /// Max |a_ij - b_ij| between two real tiles of equal shape.
  [[nodiscard]] double max_abs_diff(const Tile& other) const;

  template <typename Ar>
  void serialize(Ar& ar) {
    ar& rows_& cols_& ghost_& sig_& data_;
  }

  friend bool operator==(const Tile& a, const Tile& b) {
    return a.rows_ == b.rows_ && a.cols_ == b.cols_ && a.ghost_ == b.ghost_ &&
           a.sig_ == b.sig_ && a.data_ == b.data_;
  }

 private:
  int rows_ = 0;
  int cols_ = 0;
  bool ghost_ = false;
  std::uint64_t sig_ = 0;
  std::vector<double> data_;
};

}  // namespace ttg::linalg

namespace ttg::ser {

/// Split-metadata protocol support for tiles: the metadata is the header
/// (dims, mode, signature); the contiguous payload is the data vector. For
/// ghost tiles the actual payload is empty but the declared payload size is
/// the full data footprint — the RMA transfer is charged in full.
template <>
struct SplitMetadata<linalg::Tile> {
  struct metadata_type {
    int rows = 0;
    int cols = 0;
    bool ghost = false;
    std::uint64_t sig = 0;
  };
  static metadata_type get_metadata(const linalg::Tile& t) {
    return {t.rows(), t.cols(), t.is_ghost(), t.signature()};
  }
  static linalg::Tile create(const metadata_type& m) {
    if (m.ghost) return linalg::Tile::ghost(m.rows, m.cols, m.sig);
    return linalg::Tile(m.rows, m.cols);
  }
  static std::size_t payload_bytes(const linalg::Tile& t) { return t.wire_bytes(); }
  static std::span<const std::byte> payload(const linalg::Tile& t) {
    return std::as_bytes(std::span<const double>(t.data()));
  }
  static std::span<std::byte> payload(linalg::Tile& t) {
    return std::as_writable_bytes(std::span<double>(t.data()));
  }
};

}  // namespace ttg::ser
