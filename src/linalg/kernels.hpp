// Dense tile kernels (hand-written LAPACK/BLAS subset) and their cost model.
//
// These are the four kernels of the tiled Cholesky factorization (Fig. 1:
// POTRF, TRSM, SYRK, GEMM), the accumulating GEMM used by block-sparse
// matrix multiplication, and the min-plus product at the heart of
// Floyd-Warshall. Every kernel:
//
//   * computes real math on real tiles (column-major, double precision), and
//   * on ghost tiles combines signatures deterministically and skips math,
//     while the caller charges the same virtual flop cost either way.
//
// The *_time helpers convert analytic flop counts into virtual seconds via
// the machine model, using per-kernel efficiency factors relative to the
// effective DGEMM rate (GEMM vectorizes nearly perfectly; POTRF's
// square-root-laden panel math does not; FW's min-plus semiring lacks FMA).
#pragma once

#include <cstdint>

#include "linalg/tile.hpp"
#include "sim/machine.hpp"

namespace ttg::linalg {

// --- analytic flop counts ---
namespace flops {
/// Cholesky of an n x n tile: n^3/3 + lower-order.
[[nodiscard]] double potrf(int n);
/// Triangular solve of an m x n block against an n x n triangle: m n^2.
[[nodiscard]] double trsm(int m, int n);
/// Rank-k symmetric update C(n x n) -= A(n x k) A^T: n^2 k.
[[nodiscard]] double syrk(int n, int k);
/// General multiply-accumulate m x n x k: 2 m n k.
[[nodiscard]] double gemm(int m, int n, int k);
/// Min-plus product m x n x k: 2 m n k (compare+add).
[[nodiscard]] double minplus(int m, int n, int k);
}  // namespace flops

// --- per-kernel efficiency vs effective DGEMM rate ---
inline constexpr double kGemmEff = 0.92;
inline constexpr double kSyrkEff = 0.80;
inline constexpr double kTrsmEff = 0.72;
inline constexpr double kPotrfEff = 0.45;
inline constexpr double kMinplusEff = 0.35;

[[nodiscard]] double potrf_time(const sim::MachineModel& m, int n);
[[nodiscard]] double trsm_time(const sim::MachineModel& m, int rows, int n);
[[nodiscard]] double syrk_time(const sim::MachineModel& m, int n, int k);
[[nodiscard]] double gemm_time(const sim::MachineModel& m, int rows, int cols, int k);
[[nodiscard]] double minplus_time(const sim::MachineModel& m, int rows, int cols, int k);

// --- device-variant efficiencies vs the GPU's effective DGEMM rate ---
// GEMM maps near-perfectly onto the device; SYRK wastes half the update's
// symmetry; TRSM's triangular solves expose less parallelism per launch.
inline constexpr double kGpuGemmEff = 0.90;
inline constexpr double kGpuSyrkEff = 0.75;
inline constexpr double kGpuTrsmEff = 0.55;

/// Device-kernel times for the op_cuda-style task variants (simulated GPU;
/// launch overhead and staging are charged separately by the scheduler).
[[nodiscard]] double gpu_trsm_time(const sim::MachineModel& m, int rows, int n);
[[nodiscard]] double gpu_syrk_time(const sim::MachineModel& m, int n, int k);
[[nodiscard]] double gpu_gemm_time(const sim::MachineModel& m, int rows, int cols, int k);

// --- kernels ---

/// In-place lower Cholesky factorization of a square tile; the strict upper
/// triangle is zeroed. Returns false if the tile is not positive definite
/// (real mode; ghost mode always succeeds).
[[nodiscard]] bool potrf(Tile& a);

/// Right-looking tiled-Cholesky TRSM: A := A * L^{-T} where L is the lower
/// triangular factor in `lkk` and A is the m x n panel tile `amk`.
void trsm(const Tile& lkk, Tile& amk);

/// Symmetric rank-k update: C := C - A A^T (full square update; only the
/// lower triangle is meaningful in the Cholesky flow).
void syrk(const Tile& a, Tile& c);

/// Cholesky trailing update: C := C - A B^T.
void gemm_nt(Tile& c, const Tile& a, const Tile& b);

/// Accumulating product (block-sparse GEMM): C := C + A B.
void gemm_nn_acc(Tile& c, const Tile& a, const Tile& b);

/// Min-plus (tropical semiring) update for Floyd-Warshall:
/// W(i,j) := min(W(i,j), min_k A(i,k) + B(k,j)).
void minplus(Tile& w, const Tile& a, const Tile& b);

/// Elementwise accumulation A += B (used by streaming C-tile reduction in
/// block-sparse GEMM).
void tile_add(Tile& a, const Tile& b);

/// Deterministic signature combination for ghost-mode kernels.
[[nodiscard]] std::uint64_t combine_sig(std::uint64_t a, std::uint64_t b,
                                        std::uint64_t tag);

}  // namespace ttg::linalg
