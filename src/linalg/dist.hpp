// 2D block-cyclic data distribution.
//
// All dense/tiled applications in the paper (POTRF, FW-APSP, bspmm) place
// tile (i, j) on the rank at position (i mod P, j mod Q) of a P x Q process
// grid — the classic ScaLAPACK layout. The TTG apps install this as the
// keymap of every tile-indexed task template.
#pragma once

#include <cmath>

#include "support/error.hpp"

namespace ttg::linalg {

struct BlockCyclic2D {
  int P = 1;  ///< process grid rows
  int Q = 1;  ///< process grid cols

  /// Owning rank of tile (i, j).
  [[nodiscard]] int owner(int i, int j) const { return (i % P) * Q + (j % Q); }

  [[nodiscard]] int nranks() const { return P * Q; }

  /// Near-square grid for `nranks` processes (P <= Q, P*Q == nranks).
  static BlockCyclic2D make(int nranks) {
    TTG_CHECK(nranks >= 1, "need at least one rank");
    int p = static_cast<int>(std::sqrt(static_cast<double>(nranks)));
    while (nranks % p != 0) --p;
    return BlockCyclic2D{p, nranks / p};
  }
};

}  // namespace ttg::linalg
