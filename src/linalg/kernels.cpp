#include "linalg/kernels.hpp"

#include <algorithm>
#include <cmath>

#include "support/hash.hpp"

namespace ttg::linalg {

namespace flops {
double potrf(int n) { return n / 3.0 * n * n; }
double trsm(int m, int n) { return static_cast<double>(m) * n * n; }
double syrk(int n, int k) { return static_cast<double>(n) * n * k; }
double gemm(int m, int n, int k) { return 2.0 * m * n * k; }
double minplus(int m, int n, int k) { return 2.0 * m * n * k; }
}  // namespace flops

double potrf_time(const sim::MachineModel& m, int n) {
  return m.flops_time(flops::potrf(n), kPotrfEff);
}
double trsm_time(const sim::MachineModel& m, int rows, int n) {
  return m.flops_time(flops::trsm(rows, n), kTrsmEff);
}
double syrk_time(const sim::MachineModel& m, int n, int k) {
  return m.flops_time(flops::syrk(n, k), kSyrkEff);
}
double gemm_time(const sim::MachineModel& m, int rows, int cols, int k) {
  return m.flops_time(flops::gemm(rows, cols, k), kGemmEff);
}
double minplus_time(const sim::MachineModel& m, int rows, int cols, int k) {
  return m.flops_time(flops::minplus(rows, cols, k), kMinplusEff);
}

double gpu_trsm_time(const sim::MachineModel& m, int rows, int n) {
  return m.gpu_flops_time(flops::trsm(rows, n), kGpuTrsmEff);
}
double gpu_syrk_time(const sim::MachineModel& m, int n, int k) {
  return m.gpu_flops_time(flops::syrk(n, k), kGpuSyrkEff);
}
double gpu_gemm_time(const sim::MachineModel& m, int rows, int cols, int k) {
  return m.gpu_flops_time(flops::gemm(rows, cols, k), kGpuGemmEff);
}

std::uint64_t combine_sig(std::uint64_t a, std::uint64_t b, std::uint64_t tag) {
  std::uint64_t h = tag;
  support::hash_combine(h, a);
  support::hash_combine(h, b);
  return h;
}

bool potrf(Tile& a) {
  TTG_CHECK(a.rows() == a.cols(), "potrf needs a square tile");
  if (a.is_ghost()) {
    a.set_signature(combine_sig(a.signature(), 0, /*tag=*/1));
    return true;
  }
  const int n = a.rows();
  for (int j = 0; j < n; ++j) {
    double d = a(j, j);
    for (int k = 0; k < j; ++k) d -= a(j, k) * a(j, k);
    if (d <= 0.0) return false;
    const double ljj = std::sqrt(d);
    a(j, j) = ljj;
    for (int i = j + 1; i < n; ++i) {
      double s = a(i, j);
      for (int k = 0; k < j; ++k) s -= a(i, k) * a(j, k);
      a(i, j) = s / ljj;
    }
    for (int i = 0; i < j; ++i) a(i, j) = 0.0;  // zero strict upper
  }
  return true;
}

void trsm(const Tile& lkk, Tile& amk) {
  TTG_CHECK(lkk.rows() == lkk.cols(), "trsm triangle must be square");
  TTG_CHECK(amk.cols() == lkk.rows(), "trsm shape mismatch");
  if (lkk.is_ghost() || amk.is_ghost()) {
    amk.set_signature(combine_sig(amk.signature(), lkk.signature(), /*tag=*/2));
    return;
  }
  const int m = amk.rows();
  const int n = amk.cols();
  // Solve X L^T = A for X, column by column of X:
  // x(:,k) = (a(:,k) - sum_{j<k} x(:,j) L(k,j)) / L(k,k).
  for (int k = 0; k < n; ++k) {
    const double lkk_kk = lkk(k, k);
    for (int j = 0; j < k; ++j) {
      const double lkj = lkk(k, j);
      if (lkj == 0.0) continue;
      for (int i = 0; i < m; ++i) amk(i, k) -= amk(i, j) * lkj;
    }
    for (int i = 0; i < m; ++i) amk(i, k) /= lkk_kk;
  }
}

void syrk(const Tile& a, Tile& c) {
  TTG_CHECK(c.rows() == c.cols(), "syrk target must be square");
  TTG_CHECK(a.rows() == c.rows(), "syrk shape mismatch");
  if (a.is_ghost() || c.is_ghost()) {
    c.set_signature(combine_sig(c.signature(), a.signature(), /*tag=*/3));
    return;
  }
  const int n = c.rows();
  const int k = a.cols();
  for (int j = 0; j < n; ++j) {
    for (int i = j; i < n; ++i) {  // lower triangle
      double s = 0.0;
      for (int p = 0; p < k; ++p) s += a(i, p) * a(j, p);
      c(i, j) -= s;
      if (i != j) c(j, i) -= s;  // keep the tile symmetric
    }
  }
}

void gemm_nt(Tile& c, const Tile& a, const Tile& b) {
  TTG_CHECK(a.rows() == c.rows() && b.rows() == c.cols() && a.cols() == b.cols(),
            "gemm_nt shape mismatch");
  if (c.is_ghost() || a.is_ghost() || b.is_ghost()) {
    c.set_signature(
        combine_sig(c.signature(), combine_sig(a.signature(), b.signature(), 4), 4));
    return;
  }
  const int m = c.rows();
  const int n = c.cols();
  const int kk = a.cols();
  for (int j = 0; j < n; ++j)
    for (int p = 0; p < kk; ++p) {
      const double bjp = b(j, p);
      if (bjp == 0.0) continue;
      for (int i = 0; i < m; ++i) c(i, j) -= a(i, p) * bjp;
    }
}

void gemm_nn_acc(Tile& c, const Tile& a, const Tile& b) {
  TTG_CHECK(a.rows() == c.rows() && b.cols() == c.cols() && a.cols() == b.rows(),
            "gemm_nn shape mismatch");
  if (c.is_ghost() || a.is_ghost() || b.is_ghost()) {
    c.set_signature(
        combine_sig(c.signature(), combine_sig(a.signature(), b.signature(), 5), 5));
    return;
  }
  const int m = c.rows();
  const int n = c.cols();
  const int kk = a.cols();
  for (int j = 0; j < n; ++j)
    for (int p = 0; p < kk; ++p) {
      const double bpj = b(p, j);
      if (bpj == 0.0) continue;
      for (int i = 0; i < m; ++i) c(i, j) += a(i, p) * bpj;
    }
}

void minplus(Tile& w, const Tile& a, const Tile& b) {
  TTG_CHECK(a.rows() == w.rows() && b.cols() == w.cols() && a.cols() == b.rows(),
            "minplus shape mismatch");
  if (w.is_ghost() || a.is_ghost() || b.is_ghost()) {
    w.set_signature(
        combine_sig(w.signature(), combine_sig(a.signature(), b.signature(), 6), 6));
    return;
  }
  const int m = w.rows();
  const int n = w.cols();
  const int kk = a.cols();
  for (int j = 0; j < n; ++j)
    for (int p = 0; p < kk; ++p) {
      const double bpj = b(p, j);
      for (int i = 0; i < m; ++i) w(i, j) = std::min(w(i, j), a(i, p) + bpj);
    }
}

void tile_add(Tile& a, const Tile& b) {
  TTG_CHECK(a.rows() == b.rows() && a.cols() == b.cols(), "tile_add shape mismatch");
  if (a.is_ghost() || b.is_ghost()) {
    a.set_signature(combine_sig(a.signature(), b.signature(), /*tag=*/7));
    return;
  }
  for (std::size_t i = 0; i < a.data().size(); ++i) a.data()[i] += b.data()[i];
}

}  // namespace ttg::linalg
