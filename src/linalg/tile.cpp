#include "linalg/tile.hpp"

#include <algorithm>
#include <cmath>

namespace ttg::linalg {

double Tile::norm() const {
  TTG_CHECK(!ghost_, "norm of ghost tile");
  double s = 0.0;
  for (double v : data_) s += v * v;
  return std::sqrt(s);
}

double Tile::max_abs_diff(const Tile& other) const {
  TTG_CHECK(!ghost_ && !other.ghost_, "diff of ghost tiles");
  TTG_CHECK(rows_ == other.rows_ && cols_ == other.cols_, "shape mismatch");
  double m = 0.0;
  for (std::size_t i = 0; i < data_.size(); ++i)
    m = std::max(m, std::fabs(data_[i] - other.data_[i]));
  return m;
}

}  // namespace ttg::linalg
