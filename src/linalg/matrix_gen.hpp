// Tiled matrices and deterministic problem generators.
//
// TiledMatrix is the host-side container the examples/tests/benches use to
// stage input data and collect results; inside a TTG run, tiles are
// injected per-owner through INITIATOR nodes and travel as messages. The
// generators produce the paper's workloads: symmetric positive-definite
// matrices for POTRF, random directed-graph adjacency matrices (with +inf
// for absent edges) for FW-APSP, and ghost variants of both for at-scale
// benches.
#pragma once

#include <vector>

#include "linalg/tile.hpp"
#include "support/rng.hpp"

namespace ttg::linalg {

/// "Infinite" edge weight for Floyd-Warshall.
inline constexpr double kInf = 1.0e30;

/// Square matrix of square tiles (last row/col of tiles may be smaller).
class TiledMatrix {
 public:
  TiledMatrix() = default;
  /// n x n matrix in bs x bs tiles, zero-initialized real tiles. Pass
  /// allocate = false for a structure-only shell (tiles default-constructed
  /// empty, to be assigned later) — ghost matrices and result collectors
  /// use this to avoid materializing n^2 doubles.
  explicit TiledMatrix(int n, int bs, bool allocate = true);

  [[nodiscard]] int n() const { return n_; }
  [[nodiscard]] int block() const { return bs_; }
  [[nodiscard]] int ntiles() const { return nt_; }
  /// Row count of tile row i (handles the ragged last tile).
  [[nodiscard]] int tile_rows(int i) const;

  [[nodiscard]] Tile& tile(int i, int j);
  [[nodiscard]] const Tile& tile(int i, int j) const;

  /// Assemble into one dense tile (tests).
  [[nodiscard]] Tile to_dense() const;
  /// Cut a dense tile into this tiling.
  static TiledMatrix from_dense(const Tile& dense, int bs);

  /// Max |a - b| over all elements.
  [[nodiscard]] double max_abs_diff(const TiledMatrix& other) const;

 private:
  int n_ = 0;
  int bs_ = 0;
  int nt_ = 0;
  std::vector<Tile> tiles_;
};

/// Uniform random tile in [lo, hi).
[[nodiscard]] Tile random_tile(support::Rng& rng, int rows, int cols, double lo = -1.0,
                               double hi = 1.0);

/// Dense symmetric positive-definite matrix: B B^T + n I.
[[nodiscard]] Tile random_spd_dense(support::Rng& rng, int n);

/// SPD matrix cut into bs x bs tiles.
[[nodiscard]] TiledMatrix random_spd(support::Rng& rng, int n, int bs);

/// Random directed-graph adjacency matrix for FW: edge (i, j) present with
/// probability `density` and weight in [1, 10); absent edges are kInf;
/// diagonal is 0.
[[nodiscard]] TiledMatrix random_adjacency(support::Rng& rng, int n, int bs,
                                           double density = 0.3);

/// Ghost tiling of an n x n matrix: tiles carry dims + distinct signatures.
[[nodiscard]] TiledMatrix ghost_matrix(int n, int bs);

/// One tile of ghost_matrix(n, bs), synthesized on demand — same dims and
/// signature scheme, so a run fed by ghost_tile is bit-identical to one fed
/// from a materialized ghost matrix. At-scale benches use this to keep host
/// state O(1) per live task instead of O(ntiles^2) per problem.
[[nodiscard]] Tile ghost_tile(int n, int bs, int i, int j);

/// Reference dense Cholesky (calls the tile kernel on the assembled matrix).
[[nodiscard]] Tile dense_cholesky(const Tile& spd);

/// Reference Floyd-Warshall on a dense adjacency tile (O(n^3) scalar loop).
[[nodiscard]] Tile dense_fw(const Tile& adj);

}  // namespace ttg::linalg
