#include "apps/bspmm/bspmm_ttg.hpp"

#include <map>
#include <unordered_map>

#include "linalg/dist.hpp"
#include "linalg/kernels.hpp"
#include "ttg/ttg.hpp"

namespace ttg::apps::bspmm {

using linalg::Tile;
using sparse::BlockSparseMatrix;
using sparse::pack_ij;

Result run(rt::World& world, const BlockSparseMatrix& a, const BlockSparseMatrix& b,
           const Options& opt) {
  TTG_REQUIRE(a.panels() == b.panels(), "bspmm: operand panel structures differ");
  const auto& machine = world.machine();
  const Keymap2D dist =
      make_keymap2d(opt.keymap, world.nranks(), world.config().ranks_per_node);
  const int nranks = world.nranks();

  /* ---- host-side iteration space (the "parameterized" part the paper's
     ReadSp tasks derive from the sparse structure) ---- */
  const auto areads = a.nonzeros();  // (i,k)
  const auto breads = b.nonzeros();  // (k,j)
  const int na = static_cast<int>(areads.size());
  const int nb = static_cast<int>(breads.size());
  const int kw = opt.k_window;
  const int nwin = (a.ntiles() + kw - 1) / kw;
  auto window = [kw](int k) { return k / kw; };

  // Destination ranks of each read (deduplicated per rank).
  auto dests_of_a = [&](int idx) {
    const auto [i, k] = areads[static_cast<std::size_t>(idx)];
    std::vector<int> d;
    for (int j : b.row_nonzeros(k)) {
      const int r = dist.owner(i, j);
      if (std::find(d.begin(), d.end(), r) == d.end()) d.push_back(r);
    }
    return d;
  };
  auto dests_of_b = [&](int idx) {
    const auto [k, j] = breads[static_cast<std::size_t>(idx)];
    std::vector<int> d;
    for (int i : a.col_nonzeros(k)) {
      const int r = dist.owner(i, j);
      if (std::find(d.begin(), d.end(), r) == d.end()) d.push_back(r);
    }
    return d;
  };

  // Per (rank, window): MultiplyAdd count + local-broadcast keys released.
  std::vector<std::vector<std::int64_t>> mm_count(
      static_cast<std::size_t>(nranks), std::vector<std::int64_t>(nwin, 0));
  std::vector<std::vector<std::vector<Int3>>> lb_a_keys(
      static_cast<std::size_t>(nranks), std::vector<std::vector<Int3>>(nwin));
  std::vector<std::vector<std::vector<Int3>>> lb_b_keys(
      static_cast<std::size_t>(nranks), std::vector<std::vector<Int3>>(nwin));
  std::unordered_map<std::uint64_t, std::int64_t> nnzk;  // C(i,j) contributions
  for (const auto& [i, k] : areads) {
    for (int j : b.row_nonzeros(k)) {
      const int r = dist.owner(i, j);
      mm_count[static_cast<std::size_t>(r)][static_cast<std::size_t>(window(k))]++;
      nnzk[pack_ij(i, j)]++;
    }
  }
  for (int idx = 0; idx < na; ++idx) {
    const auto [i, k] = areads[static_cast<std::size_t>(idx)];
    for (int r : dests_of_a(idx))
      lb_a_keys[static_cast<std::size_t>(r)][static_cast<std::size_t>(window(k))]
          .push_back(Int3{i, k, r});
  }
  for (int idx = 0; idx < nb; ++idx) {
    const auto [k, j] = breads[static_cast<std::size_t>(idx)];
    for (int r : dests_of_b(idx))
      lb_b_keys[static_cast<std::size_t>(r)][static_cast<std::size_t>(window(k))]
          .push_back(Int3{k, j, r});
  }

  /* ---- per-rank local tile stores written by LStore, read by LBcast ---- */
  std::vector<std::unordered_map<std::uint64_t, Tile>> astore(
      static_cast<std::size_t>(nranks)),
      bstore(static_cast<std::size_t>(nranks));

  /* ---- edges ---- */
  Edge<Int1, Void> read_a_ctl("read_a_ctl"), read_b_ctl("read_b_ctl");
  Edge<Int1, Tile> a_read_bcast("a_read_bcast"), b_read_bcast("b_read_bcast");
  Edge<Int2, Tile> a_bcast_store("a_bcast_store"), b_bcast_store("b_bcast_store");
  Edge<Int3, Void> a_arrive("a_arrive"), b_arrive("b_arrive");
  Edge<Int3, Void> a_coord("a_coord"), b_coord("b_coord");
  Edge<Int3, Tile> a_to_mm("a_to_mm"), b_to_mm("b_to_mm");
  Edge<Int2, Void> mm_done("mm_done");
  Edge<Int2, Tile> mm_to_c("mm_to_c");
  Edge<Int2, Tile> c_result("c_result");

  /* ---- ReadSpA/B: load a tile from (local) memory, throttled by the
     control-token feedback loop ---- */
  auto read_a_fn = [&a, &areads](const Int1& key, Void&,
                                 std::tuple<Out<Int1, Tile>>& out) {
    const auto [i, k] = areads[static_cast<std::size_t>(key.i)];
    ttg::send<0>(key, a.at(i, k), out);
  };
  auto read_b_fn = [&b, &breads](const Int1& key, Void&,
                                 std::tuple<Out<Int1, Tile>>& out) {
    const auto [k, j] = breads[static_cast<std::size_t>(key.i)];
    ttg::send<0>(key, b.at(k, j), out);
  };
  auto read_a_tt =
      make_tt(world, read_a_fn, edges(read_a_ctl), edges(a_read_bcast), "ReadSpA");
  auto read_b_tt =
      make_tt(world, read_b_fn, edges(read_b_ctl), edges(b_read_bcast), "ReadSpB");

  /* ---- BcastA/B: ship the tile once per destination rank ---- */
  auto bcast_a_fn = [dests_of_a](const Int1& key, Tile& t,
                                 std::tuple<Out<Int2, Tile>>& out) {
    std::vector<Int2> keys;
    for (int r : dests_of_a(key.i)) keys.push_back(Int2{key.i, r});
    ttg::broadcast<0>(keys, std::move(t), out);
  };
  auto bcast_b_fn = [dests_of_b](const Int1& key, Tile& t,
                                 std::tuple<Out<Int2, Tile>>& out) {
    std::vector<Int2> keys;
    for (int r : dests_of_b(key.i)) keys.push_back(Int2{key.i, r});
    ttg::broadcast<0>(keys, std::move(t), out);
  };
  auto bcast_a_tt =
      make_tt(world, bcast_a_fn, edges(a_read_bcast), edges(a_bcast_store), "BcastA");
  auto bcast_b_tt =
      make_tt(world, bcast_b_fn, edges(b_read_bcast), edges(b_bcast_store), "BcastB");

  /* ---- LStoreA/B: store the tile locally, release the next read
     (feedback loop 1), and notify the local broadcast task ---- */
  const int rw = opt.read_window;
  auto lstore_a_fn = [&astore, &areads, dests_of_a, rw, na](
                         const Int2& key, Tile& t,
                         std::tuple<Out<Int1, Void>, Out<Int3, Void>>& out) {
    const auto [ridx, rank] = key;
    const auto [i, k] = areads[static_cast<std::size_t>(ridx)];
    astore[static_cast<std::size_t>(rank)][pack_ij(i, k)] = std::move(t);
    if (rank == dests_of_a(ridx).front() && ridx + rw < na)
      ttg::sendk<0>(Int1{ridx + rw}, out);
    ttg::sendk<1>(Int3{i, k, rank}, out);
  };
  auto lstore_b_fn = [&bstore, &breads, dests_of_b, rw, nb](
                         const Int2& key, Tile& t,
                         std::tuple<Out<Int1, Void>, Out<Int3, Void>>& out) {
    const auto [ridx, rank] = key;
    const auto [k, j] = breads[static_cast<std::size_t>(ridx)];
    bstore[static_cast<std::size_t>(rank)][pack_ij(k, j)] = std::move(t);
    if (rank == dests_of_b(ridx).front() && ridx + rw < nb)
      ttg::sendk<0>(Int1{ridx + rw}, out);
    ttg::sendk<1>(Int3{k, j, rank}, out);
  };
  auto lstore_a_tt = make_tt(world, lstore_a_fn, edges(a_bcast_store),
                             edges(read_a_ctl, a_arrive), "LStoreA");
  auto lstore_b_tt = make_tt(world, lstore_b_fn, edges(b_bcast_store),
                             edges(read_b_ctl, b_arrive), "LStoreB");

  /* ---- LBcastA/B: once the tile has arrived *and* the Coordinator has
     opened its k-window, fan it out to the local MultiplyAdds ---- */
  auto lbcast_a_fn = [&astore, &b, dist](const Int3& key, Void&, Void&,
                                         std::tuple<Out<Int3, Tile>>& out) {
    const auto [i, k, rank] = key;
    const Tile& t = astore[static_cast<std::size_t>(rank)].at(pack_ij(i, k));
    std::vector<Int3> keys;
    for (int j : b.row_nonzeros(k))
      if (dist.owner(i, j) == rank) keys.push_back(Int3{i, j, k});
    ttg::broadcast<0>(keys, t, out);
  };
  auto lbcast_b_fn = [&bstore, &a, dist](const Int3& key, Void&, Void&,
                                         std::tuple<Out<Int3, Tile>>& out) {
    const auto [k, j, rank] = key;
    const Tile& t = bstore[static_cast<std::size_t>(rank)].at(pack_ij(k, j));
    std::vector<Int3> keys;
    for (int i : a.col_nonzeros(k))
      if (dist.owner(i, j) == rank) keys.push_back(Int3{i, j, k});
    ttg::broadcast<0>(keys, t, out);
  };
  auto lbcast_a_tt =
      make_tt(world, lbcast_a_fn, edges(a_arrive, a_coord), edges(a_to_mm), "LBcastA");
  auto lbcast_b_tt =
      make_tt(world, lbcast_b_fn, edges(b_arrive, b_coord), edges(b_to_mm), "LBcastB");

  /* ---- Coordinator: releases window w once all MultiplyAdds of window
     w-1 on this rank completed (feedback loop 2, streaming terminal) ---- */
  auto coord_fn = [&lb_a_keys, &lb_b_keys](
                      const Int2& key, Void&,
                      std::tuple<Out<Int3, Void>, Out<Int3, Void>>& out) {
    const auto [w, rank] = key;
    for (const auto& k : lb_a_keys[static_cast<std::size_t>(rank)]
                                  [static_cast<std::size_t>(w)])
      ttg::sendk<0>(k, out);
    for (const auto& k : lb_b_keys[static_cast<std::size_t>(rank)]
                                  [static_cast<std::size_t>(w)])
      ttg::sendk<1>(k, out);
  };
  auto coord_tt =
      make_tt(world, coord_fn, edges(mm_done), edges(a_coord, b_coord), "Coordinator");
  coord_tt->set_input_reducer<0>([](Void&, Void&&) {});

  /* ---- MultiplyAdd: the compute kernel ---- */
  auto mm_fn = [window, nwin, dist](const Int3& key, Tile& at, Tile& bt,
                                    std::tuple<Out<Int2, Tile>, Out<Int2, Void>>& out) {
    const auto [i, j, k] = key;
    Tile prod = (at.is_ghost() || bt.is_ghost())
                    ? Tile::ghost(at.rows(), bt.cols(), 0)
                    : Tile(at.rows(), bt.cols());
    linalg::gemm_nn_acc(prod, at, bt);
    ttg::send<0>(Int2{i, j}, std::move(prod), out);
    const int w = window(k);
    if (w + 1 < nwin) ttg::sendk<1>(Int2{w + 1, dist.owner(i, j)}, out);
  };
  auto mm_tt = make_tt(world, mm_fn, edges(a_to_mm, b_to_mm), edges(mm_to_c, mm_done),
                       "MultiplyAdd");

  /* ---- CReduce: streaming accumulation of the C tile ---- */
  auto creduce_fn = [](const Int2& key, Tile& c, std::tuple<Out<Int2, Tile>>& out) {
    ttg::send<0>(key, std::move(c), out);
  };
  auto creduce_tt = make_tt(world, creduce_fn, edges(mm_to_c), edges(c_result),
                            "CReduce");
  creduce_tt->set_input_reducer<0>(
      [](Tile& acc, Tile&& next) { linalg::tile_add(acc, next); });

  /* ---- result sink ---- */
  BlockSparseMatrix c_out(a.panels());
  auto sink_tt = make_sink(world, c_result, [&](const Int2& key, Tile& t) {
    if (opt.collect) c_out.set(key.i, key.j, std::move(t));
  });

  /* ---- maps ---- */
  read_a_tt->set_keymap([&areads, dist](const Int1& k) {
    const auto [i, kk] = areads[static_cast<std::size_t>(k.i)];
    return dist.owner(i, kk);
  });
  bcast_a_tt->set_keymap([&areads, dist](const Int1& k) {
    const auto [i, kk] = areads[static_cast<std::size_t>(k.i)];
    return dist.owner(i, kk);
  });
  read_b_tt->set_keymap([&breads, dist](const Int1& k) {
    const auto [kk, j] = breads[static_cast<std::size_t>(k.i)];
    return dist.owner(kk, j);
  });
  bcast_b_tt->set_keymap([&breads, dist](const Int1& k) {
    const auto [kk, j] = breads[static_cast<std::size_t>(k.i)];
    return dist.owner(kk, j);
  });
  lstore_a_tt->set_keymap([](const Int2& k) { return k.j; });
  lstore_b_tt->set_keymap([](const Int2& k) { return k.j; });
  lbcast_a_tt->set_keymap([](const Int3& k) { return k.k; });
  lbcast_b_tt->set_keymap([](const Int3& k) { return k.k; });
  coord_tt->set_keymap([](const Int2& k) { return k.j; });
  mm_tt->set_keymap([dist](const Int3& k) { return dist.owner(k.i, k.j); });
  creduce_tt->set_keymap([dist](const Int2& k) { return dist.owner(k.i, k.j); });
  sink_tt->set_keymap([dist](const Int2& k) { return dist.owner(k.i, k.j); });

  mm_tt->set_costmap([&machine](const Int3&, const Tile& at, const Tile& bt) {
    return linalg::gemm_time(machine, at.rows(), bt.cols(), at.cols());
  });
  /* Device variant: MultiplyAdd is the only kernel worth a GPU here. Tags
     carry the matrix (A/B/C) in the top bits over the packed tile coords,
     so an A tile reused across the row of C tiles it feeds stays resident. */
  if (world.config().device != rt::DevicePlacement::Off) {
    mm_tt->set_device_op([&machine](const Int3& key, const Tile& at, const Tile& bt) {
      auto datum = [](std::uint64_t matrix, int i, int j, int rows, int cols,
                      bool write) {
        rt::DeviceDatum d;
        d.tag = (matrix << 62) | pack_ij(i, j);
        d.bytes = static_cast<std::uint64_t>(rows) * static_cast<std::uint64_t>(cols) *
                  sizeof(double);
        d.write = write;
        return d;
      };
      rt::DeviceCall dc;
      dc.cost = linalg::gpu_gemm_time(machine, at.rows(), bt.cols(), at.cols());
      dc.datums = {datum(1, key.i, key.k, at.rows(), at.cols(), /*write=*/false),
                   datum(2, key.k, key.j, bt.rows(), bt.cols(), /*write=*/false),
                   datum(3, key.i, key.j, at.rows(), bt.cols(), /*write=*/true)};
      return dc;
    });
  }
  read_a_tt->set_costmap([&machine](const Int1&, const Void&) {
    return machine.am_cpu;  // memory load, negligible vs GEMM
  });
  read_b_tt->set_costmap(
      [&machine](const Int1&, const Void&) { return machine.am_cpu; });
  // Favor earlier k-windows so the pipeline drains in order.
  mm_tt->set_priomap([nwin, window](const Int3& k) { return nwin - window(k.k); });

  for (rt::TTBase* t :
       {static_cast<rt::TTBase*>(read_a_tt.get()), static_cast<rt::TTBase*>(read_b_tt.get()),
        static_cast<rt::TTBase*>(bcast_a_tt.get()), static_cast<rt::TTBase*>(bcast_b_tt.get()),
        static_cast<rt::TTBase*>(lstore_a_tt.get()), static_cast<rt::TTBase*>(lstore_b_tt.get()),
        static_cast<rt::TTBase*>(lbcast_a_tt.get()), static_cast<rt::TTBase*>(lbcast_b_tt.get()),
        static_cast<rt::TTBase*>(coord_tt.get()), static_cast<rt::TTBase*>(mm_tt.get()),
        static_cast<rt::TTBase*>(creduce_tt.get()), static_cast<rt::TTBase*>(sink_tt.get())}) {
    make_graph_executable(*t);
  }

  /* ---- per-task stream sizes ---- */
  for (const auto& [key, cnt] : nnzk) {
    creduce_tt->set_argstream_size<0>(
        Int2{static_cast<int>(key >> 32), static_cast<int>(key & 0xffffffffu)}, cnt);
  }
  for (int r = 0; r < nranks; ++r) {
    for (int w = 0; w < nwin; ++w) {
      // Window w waits for window w-1's MultiplyAdds (0 for w == 0).
      const std::int64_t need =
          w == 0 ? 0 : mm_count[static_cast<std::size_t>(r)][static_cast<std::size_t>(w - 1)];
      const bool has_work = !lb_a_keys[static_cast<std::size_t>(r)]
                                      [static_cast<std::size_t>(w)].empty() ||
                            !lb_b_keys[static_cast<std::size_t>(r)]
                                      [static_cast<std::size_t>(w)].empty();
      if (has_work || need > 0) coord_tt->set_argstream_size<0>(Int2{w, r}, need);
    }
  }

  /* ---- go ---- */
  const double t0 = world.engine().now();
  for (int r = 0; r < std::min(rw, na); ++r) read_a_tt->invoke(Int1{r}, Void{});
  for (int r = 0; r < std::min(rw, nb); ++r) read_b_tt->invoke(Int1{r}, Void{});
  const double t1 = world.fence();
  TTG_CHECK(world.unfinished() == 0, "bspmm graph did not quiesce");

  Result res;
  res.makespan = t1 - t0;
  res.gflops = sparse::multiply_flops(a, b) / res.makespan / 1e9;
  res.tasks = mm_tt->tasks_executed();
  res.c = std::move(c_out);
  return res;
}

}  // namespace ttg::apps::bspmm
