// TTG block-sparse matrix-matrix multiplication (Section III-D, Fig. 10).
//
// 2D-SUMMA-style C = A * B over block-sparse operands on a 2D block-cyclic
// process grid, expressed as the paper's flowgraph:
//
//   ReadSpA/B --> BcastA/B --> LStoreA/B --> LBcastA/B --> MultiplyAdd
//        ^                        |               ^            |
//        +---- control tokens ----+               |            v
//              (feedback loop 1)            Coordinator <-- completions
//                                           (feedback loop 2)
//
// Feedback loop 1 bounds how many remote tile broadcasts are in flight
// (window `read_window`); feedback loop 2 releases local broadcasts in
// k-windows only after the previous window's MultiplyAdds completed,
// "reduc[ing] the choices of the scheduler and forc[ing] it to focus on a
// subset of GEMM tasks that work on the same subset of data". Both loops
// use streaming terminals (Section II-B). C tiles are accumulated with a
// streaming input reducer sized per task ID to the number of contributing
// k-products.
#pragma once

#include <cstdint>

#include "runtime/world.hpp"
#include "sparse/block_sparse.hpp"
#include "ttg/keymaps.hpp"

namespace ttg::apps::bspmm {

struct Options {
  int read_window = 256;  ///< in-flight remote tile broadcasts per operand
  int k_window = 8;       ///< SUMMA k-steps released per Coordinator phase
  bool collect = true;    ///< gather C into Result::c
  KeymapKind keymap = KeymapKind::Cyclic;  ///< C-tile placement (ttg/keymaps.hpp)
};

struct Result {
  double makespan = 0.0;
  double gflops = 0.0;
  std::uint64_t tasks = 0;     ///< MultiplyAdd tasks executed
  sparse::BlockSparseMatrix c;
};

/// Multiply C = A * B on `world`. A and B must share panel structure.
Result run(rt::World& world, const sparse::BlockSparseMatrix& a,
           const sparse::BlockSparseMatrix& b, const Options& opt = {});

}  // namespace ttg::apps::bspmm
