#include "apps/fw_apsp/fw_ttg.hpp"

#include "graph/fw_kernels.hpp"
#include "linalg/dist.hpp"
#include "ttg/ttg.hpp"

namespace ttg::apps::fw {

using linalg::Tile;
using linalg::TiledMatrix;

double op_count(int n) { return 2.0 * n * n * n; }

namespace {

/// Task-ID helpers. Rounds are encoded in the key of every kernel:
///   A: Int1{k}; B: Int2{j,k}; C: Int2{i,k}; D: Int3{i,j,k}.
struct OutIdx {
  // Terminal order shared by all four kernel TTs (see run()):
  // 0: to_a, 1: to_b, 2: to_c, 3: to_d, 4: result
  static constexpr std::size_t a = 0, b = 1, c = 2, d = 3, result = 4;
};

/// Route tile (i,j) into round `k` (or to RESULT when rounds are done).
template <typename OutTuple>
void route_tile(int i, int j, int k, int nt, Tile&& t, OutTuple& out) {
  if (k == nt) {
    ttg::send<OutIdx::result>(Int2{i, j}, std::move(t), out);
  } else if (i == k && j == k) {
    ttg::send<OutIdx::a>(Int1{k}, std::move(t), out);
  } else if (i == k) {
    ttg::send<OutIdx::b>(Int2{j, k}, std::move(t), out);
  } else if (j == k) {
    ttg::send<OutIdx::c>(Int2{i, k}, std::move(t), out);
  } else {
    ttg::send<OutIdx::d>(Int3{i, j, k}, std::move(t), out);
  }
}

}  // namespace

Result run(rt::World& world, const TiledMatrix& w0, const Options& opt) {
  const int nt = w0.ntiles();
  const int bs = w0.block();
  const auto& machine = world.machine();
  const Keymap2D dist =
      make_keymap2d(opt.keymap, world.nranks(), world.config().ranks_per_node);

  // Tile chains into each kernel type + finished-panel broadcast edges.
  Edge<Int1, Tile> to_a("to_a");
  Edge<Int2, Tile> to_b("to_b");
  Edge<Int2, Tile> to_c("to_c");
  Edge<Int3, Tile> to_d("to_d");
  Edge<Int2, Tile> a_to_b("a_to_b");
  Edge<Int2, Tile> a_to_c("a_to_c");
  Edge<Int3, Tile> b_to_d("b_to_d");
  Edge<Int3, Tile> c_to_d("c_to_d");
  Edge<Int2, Tile> result("result");

  using Out5 = std::tuple<Out<Int1, Tile>, Out<Int2, Tile>, Out<Int2, Tile>,
                          Out<Int3, Tile>, Out<Int2, Tile>>;

  /* A(k): finish the diagonal tile, broadcast it to its row (B) and column
     (C), and route the tile itself into round k+1. */
  auto a_fn = [nt](const Int1& key, Tile& w,
                   std::tuple<Out<Int1, Tile>, Out<Int2, Tile>, Out<Int2, Tile>,
                              Out<Int3, Tile>, Out<Int2, Tile>, Out<Int2, Tile>,
                              Out<Int2, Tile>>& out) {
    const int k = key.i;
    graph::fw_a(w);
    std::vector<Int2> row_ids, col_ids;
    for (int j = 0; j < nt; ++j) {
      if (j == k) continue;
      row_ids.push_back(Int2{j, k});  // B(j,k)
      col_ids.push_back(Int2{j, k});  // C(i=j,k)
    }
    ttg::broadcast<5>(row_ids, w, out);  // a_to_b
    ttg::broadcast<6>(col_ids, w, out);  // a_to_c
    // Tile (k,k) at round k+1 is an interior (D) tile until round nt.
    auto sub = std::tie(std::get<0>(out), std::get<1>(out), std::get<2>(out),
                        std::get<3>(out), std::get<4>(out));
    route_tile(k, k, k + 1, nt, std::move(w), sub);
  };

  /* B(j,k): row-panel tile (k,j); broadcast the finished panel down its
     column of D tasks and route the tile to round k+1. */
  auto b_fn = [nt](const Int2& key, Tile& a_kk, Tile& w,
                   std::tuple<Out<Int1, Tile>, Out<Int2, Tile>, Out<Int2, Tile>,
                              Out<Int3, Tile>, Out<Int2, Tile>, Out<Int3, Tile>>& out) {
    const auto [j, k] = key;
    graph::fw_b(w, a_kk);
    std::vector<Int3> d_ids;
    for (int i = 0; i < nt; ++i)
      if (i != k) d_ids.push_back(Int3{i, j, k});
    ttg::broadcast<5>(d_ids, w, out);  // b_to_d
    auto sub = std::tie(std::get<0>(out), std::get<1>(out), std::get<2>(out),
                        std::get<3>(out), std::get<4>(out));
    route_tile(k, j, k + 1, nt, std::move(w), sub);
  };

  /* C(i,k): column-panel tile (i,k); broadcast along its row of D tasks. */
  auto c_fn = [nt](const Int2& key, Tile& a_kk, Tile& w,
                   std::tuple<Out<Int1, Tile>, Out<Int2, Tile>, Out<Int2, Tile>,
                              Out<Int3, Tile>, Out<Int2, Tile>, Out<Int3, Tile>>& out) {
    const auto [i, k] = key;
    graph::fw_c(w, a_kk);
    std::vector<Int3> d_ids;
    for (int j = 0; j < nt; ++j)
      if (j != k) d_ids.push_back(Int3{i, j, k});
    ttg::broadcast<5>(d_ids, w, out);  // c_to_d
    auto sub = std::tie(std::get<0>(out), std::get<1>(out), std::get<2>(out),
                        std::get<3>(out), std::get<4>(out));
    route_tile(i, k, k + 1, nt, std::move(w), sub);
  };

  /* D(i,j,k): interior update, then route to round k+1. */
  auto d_fn = [nt](const Int3& key, Tile& w_kj, Tile& w_ik, Tile& w, Out5& out) {
    const auto [i, j, k] = key;
    graph::fw_d(w, w_ik, w_kj);
    route_tile(i, j, k + 1, nt, std::move(w), out);
  };

  auto a_tt = make_tt(world, a_fn, edges(to_a),
                      edges(to_a, to_b, to_c, to_d, result, a_to_b, a_to_c), "FW_A");
  auto b_tt = make_tt(world, b_fn, edges(a_to_b, to_b),
                      edges(to_a, to_b, to_c, to_d, result, b_to_d), "FW_B");
  auto c_tt = make_tt(world, c_fn, edges(a_to_c, to_c),
                      edges(to_a, to_b, to_c, to_d, result, c_to_d), "FW_C");
  auto d_tt = make_tt(world, d_fn, edges(b_to_d, c_to_d, to_d),
                      edges(to_a, to_b, to_c, to_d, result), "FW_D");

  a_tt->set_keymap([dist](const Int1& k) { return dist.owner(k.i, k.i); });
  b_tt->set_keymap([dist](const Int2& k) { return dist.owner(k.j, k.i); });
  c_tt->set_keymap([dist](const Int2& k) { return dist.owner(k.i, k.j); });
  d_tt->set_keymap([dist](const Int3& k) { return dist.owner(k.i, k.j); });

  // Earlier rounds first; panels ahead of interior updates.
  a_tt->set_priomap([nt](const Int1& k) { return 3 * (nt - k.i); });
  b_tt->set_priomap([nt](const Int2& k) { return 2 * (nt - k.j); });
  c_tt->set_priomap([nt](const Int2& k) { return 2 * (nt - k.j); });
  d_tt->set_priomap([nt](const Int3& k) { return nt - k.k; });

  a_tt->set_costmap([&machine](const Int1&, const Tile& w) {
    return graph::fw_time(machine, w.rows(), w.cols(), w.rows());
  });
  b_tt->set_costmap([&machine](const Int2&, const Tile& a, const Tile& w) {
    return graph::fw_time(machine, w.rows(), w.cols(), a.rows());
  });
  c_tt->set_costmap([&machine](const Int2&, const Tile& a, const Tile& w) {
    return graph::fw_time(machine, w.rows(), w.cols(), a.rows());
  });
  d_tt->set_costmap(
      [&machine](const Int3&, const Tile& r, const Tile& c, const Tile& w) {
        (void)c;
        return graph::fw_time(machine, w.rows(), w.cols(), r.rows());
      });

  TiledMatrix w_out;
  if (opt.collect) w_out = TiledMatrix(w0.n(), bs, /*allocate=*/false);
  auto result_tt = make_sink(world, result, [&](const Int2& key, Tile& t) {
    if (opt.collect) w_out.tile(key.i, key.j) = std::move(t);
  });
  result_tt->set_keymap([dist](const Int2& k) { return dist.owner(k.i, k.j); });

  make_graph_executable(*a_tt);
  make_graph_executable(*b_tt);
  make_graph_executable(*c_tt);
  make_graph_executable(*d_tt);
  make_graph_executable(*result_tt);

  /* INITIATOR: route every tile into round 0 on its owner. */
  auto init_fn = [&w0, nt](const Int2& key, Out5& out) {
    Tile t = w0.tile(key.i, key.j);
    route_tile(key.i, key.j, 0, nt, std::move(t), out);
  };
  auto init_tt = make_tt<Int2>(world, init_fn, std::tuple<>{},
                               edges(to_a, to_b, to_c, to_d, result), "INITIATOR");
  init_tt->set_keymap([dist](const Int2& k) { return dist.owner(k.i, k.j); });
  make_graph_executable(*init_tt);

  const double t0 = world.engine().now();
  for (int i = 0; i < nt; ++i)
    for (int j = 0; j < nt; ++j) init_tt->invoke(Int2{i, j});
  const double t1 = world.fence();
  TTG_CHECK(world.unfinished() == 0, "FW graph did not quiesce");

  Result res;
  res.makespan = t1 - t0;
  res.gflops = op_count(w0.n()) / res.makespan / 1e9;
  res.tasks = a_tt->tasks_executed() + b_tt->tasks_executed() +
              c_tt->tasks_executed() + d_tt->tasks_executed();
  res.matrix = std::move(w_out);
  return res;
}

}  // namespace ttg::apps::fw
