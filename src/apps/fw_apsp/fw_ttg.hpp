// TTG implementation of Floyd-Warshall all-pairs-shortest-path
// (Section III-C of the paper).
//
// "In TTG ... a single-level 2D block-cyclic distribution of tiles is used
// and tiles are broadcast to all successor operations independent of other
// tiles." Each round k of the tiled algorithm runs kernel A on the diagonal
// tile, kernels B and C on the tile row/column, and kernel D everywhere
// else; tiles flow from round to round as messages, with no global barrier
// anywhere — round k+1's A kernel can start as soon as tile (k+1,k+1) has
// been updated, while round k's D kernels are still in flight elsewhere.
#pragma once

#include <cstdint>

#include "linalg/matrix_gen.hpp"
#include "runtime/world.hpp"
#include "ttg/keymaps.hpp"

namespace ttg::apps::fw {

struct Options {
  bool collect = true;
  KeymapKind keymap = KeymapKind::Cyclic;  ///< tile placement (ttg/keymaps.hpp)
};

struct Result {
  double makespan = 0.0;
  double gflops = 0.0;  ///< 2 n^3 min-plus op-pairs over makespan
  std::uint64_t tasks = 0;
  linalg::TiledMatrix matrix;  ///< all-pairs distances (if collect)
};

/// Analytic operation count: 2 n^3 (one compare + one add per (i,j,k)).
[[nodiscard]] double op_count(int n);

/// Run tiled FW-APSP on the adjacency matrix `w0` over `world`.
Result run(rt::World& world, const linalg::TiledMatrix& w0, const Options& opt = {});

}  // namespace ttg::apps::fw
