// TTG multiresolution analysis pipeline (Section III-E, Listing 3).
//
// For every Gaussian, the flowgraph adaptively projects the function into
// the order-k multiwavelet basis (recurring down until the local
// representation error is below the truncation threshold), then performs
// the fast wavelet transform (compress, flowing *up* the tree through a
// 2^d = 8-way streaming terminal with an input reducer — Listing 3), the
// inverse transform (reconstruct, flowing back down), and computes the
// function norm for verification. Unlike the native MADNESS implementation
// there is no barrier between the steps: data streams through the entire
// DAG, and different trees proceed completely independently.
#pragma once

#include <cstdint>
#include <map>

#include "mra/function_tree.hpp"
#include "runtime/world.hpp"
#include "ttg/keymaps.hpp"

namespace ttg::apps::mra {

/// Message flowing *up* the tree into a compress task's streaming terminal:
/// child coefficient slices plus the accumulated subtree wavelet norm. The
/// input reducer merges 2^d of these into one batch (Listing 3); a batch is
/// always *sent* with exactly one item, which lets the PaRSEC backend move
/// it with the split-metadata protocol (metadata: child index + norm +
/// size; payload: the coefficient block).
struct CompressBatch {
  struct Item {
    int child = 0;
    ttg::mra::Coeffs s;
    template <typename Ar>
    void serialize(Ar& ar) {
      ar& child& s;
    }
  };
  std::vector<Item> items;
  double dnorm2 = 0.0;

  [[nodiscard]] std::size_t wire_bytes() const {
    std::size_t b = sizeof(double);
    for (const auto& it : items) b += sizeof(int) + it.s.wire_bytes();
    return b;
  }
  template <typename Ar>
  void serialize(Ar& ar) {
    ar& items& dnorm2;
  }
};

/// Root result: total squared norm in compressed form.
struct RootInfo {
  int fid = 0;
  double norm2 = 0.0;
  template <typename Ar>
  void serialize(Ar& ar) {
    ar& fid& norm2;
  }
};

struct Options {
  double tol = 1e-8;    ///< truncation threshold on the wavelet norm
  int max_level = 16;   ///< refinement safety limit
  int rand_level = 2;   ///< keymap scatters subtrees rooted at this level
  /// Benchmark mode: skip the compress/reconstruct arithmetic (which makes
  /// no control-flow decisions) while keeping the full task graph, message
  /// sizes, and virtual kernel costs — the MRA analogue of ghost tiles.
  /// Norms are not computed in this mode. Projection always runs for real
  /// (it drives the adaptive refinement).
  bool light_math = false;
  /// Tree placement. Cyclic (and node2d, which has no tree analogue) is the
  /// historical hash scatter of rand_level subtrees over all ranks;
  /// node-aware routes each rand_level subtree to one node and spreads its
  /// child subtrees over that node's ranks (ttg::node_aware_owner).
  KeymapKind keymap = KeymapKind::Cyclic;
};

struct Result {
  double makespan = 0.0;
  std::uint64_t tasks = 0;
  std::uint64_t tree_nodes = 0;  ///< leaves + interior across all trees
  /// Per function: squared norm from the compressed form and from the
  /// reconstructed leaves (the paper's verification step).
  std::map<int, double> norm2_compressed;
  std::map<int, double> norm2_reconstructed;
};

/// Run the project -> compress -> reconstruct -> norm pipeline for all
/// functions in `ctx` on `world`.
Result run(rt::World& world, const ttg::mra::MraContext& ctx, const Options& opt = {});

}  // namespace ttg::apps::mra

namespace ttg::ser {

/// Split-metadata support for single-item compress slices (every batch on
/// the wire has exactly one item; merging happens in the destination's
/// streaming terminal).
template <>
struct SplitMetadata<apps::mra::CompressBatch> {
  struct metadata_type {
    int child = 0;
    double dnorm2 = 0.0;
    std::uint64_t count = 0;
  };
  static metadata_type get_metadata(const apps::mra::CompressBatch& b) {
    TTG_CHECK(b.items.size() == 1, "compress batch must ship single slices");
    return {b.items[0].child, b.dnorm2, b.items[0].s.v.size()};
  }
  static apps::mra::CompressBatch create(const metadata_type& m) {
    apps::mra::CompressBatch b;
    b.dnorm2 = m.dnorm2;
    b.items.resize(1);
    b.items[0].child = m.child;
    b.items[0].s.v.resize(m.count);
    return b;
  }
  static std::size_t payload_bytes(const apps::mra::CompressBatch& b) {
    return b.items[0].s.wire_bytes();
  }
  static std::span<const std::byte> payload(const apps::mra::CompressBatch& b) {
    return std::as_bytes(std::span<const double>(b.items[0].s.v));
  }
  static std::span<std::byte> payload(apps::mra::CompressBatch& b) {
    return std::as_writable_bytes(std::span<double>(b.items[0].s.v));
  }
};

}  // namespace ttg::ser
