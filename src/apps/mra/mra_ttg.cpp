#include "apps/mra/mra_ttg.hpp"

#include <cmath>
#include <unordered_map>

#include "ttg/ttg.hpp"

namespace ttg::apps::mra {

using ttg::mra::Coeffs;
using ttg::mra::MraContext;
using ttg::mra::TreeKey;

// CompressBatch and RootInfo live in the header (splitmd specialization).

Result run(rt::World& world, const MraContext& ctx, const Options& opt) {
  const auto& machine = world.machine();
  const auto& ts = ctx.twoscale();
  const int nranks = world.nranks();

  /* Overdecomposition keymap: subtrees rooted at rand_level are scattered
     randomly (by hash); every node deeper than that stays with its
     ancestor ("a task ID map that randomly distributes function tree nodes
     and their children across processes at some target level"). */
  const int rpn = world.config().ranks_per_node;
  const bool node_aware = opt.keymap == KeymapKind::NodeAware && rpn > 1 &&
                          nranks % rpn == 0;
  auto keymap = [nranks, rl = opt.rand_level, node_aware, rpn](const TreeKey& key) {
    if (node_aware) {
      // Subtrees rooted at rand_level share a node; their 2^d child
      // subtrees spread over the node's ranks.
      return node_aware_owner(key.ancestor_at(rl).hash(),
                              key.ancestor_at(rl + 1).hash(), nranks, rpn);
    }
    return static_cast<int>(key.ancestor_at(rl).hash() %
                            static_cast<std::uint64_t>(nranks));
  };

  /* Per-rank wavelet-coefficient store written by compress, read by
     reconstruct (both run on owner(key), so access is rank-local). */
  using DStore = std::unordered_map<TreeKey, std::array<Coeffs, 8>,
                                    KeyHash<TreeKey>>;
  std::vector<DStore> dstore(static_cast<std::size_t>(nranks));

  Result res;

  Edge<TreeKey, Void> project_ctl("project_ctl");
  Edge<TreeKey, CompressBatch> compress_in("compress_in");
  Edge<TreeKey, Coeffs> recon_in("recon_in");
  Edge<Int1, RootInfo> root_out("root_out");
  Edge<TreeKey, Coeffs> leaf_out("leaf_out");

  /* ---- PROJECT: adaptive refinement. Computes the 8 child blocks by
     quadrature; if the wavelet residual is below tol the node is a leaf
     and its coefficients flow into the compress stage, else the task
     spawns its children (data-dependent control flow). ---- */
  auto project_fn = [&ctx, &res, opt](
                        const TreeKey& key, Void&,
                        std::tuple<Out<TreeKey, Void>, Out<TreeKey, CompressBatch>,
                                   Out<Int1, RootInfo>, Out<TreeKey, Coeffs>>& out) {
    auto np = ctx.project_node(key);
    ++res.tree_nodes;
    const bool refine = (std::sqrt(np.dnorm2) > opt.tol || ctx.must_refine(key)) &&
                        key.level < opt.max_level;
    if (!refine) {
      Coeffs s = std::move(np.parent);
      if (key.level == 0) {
        // Degenerate single-node tree: it is its own compressed form.
        ttg::send<2>(Int1{key.fid}, RootInfo{key.fid, s.norm2()}, out);
        ttg::send<3>(key, std::move(s), out);  // reconstructed leaf
      } else {
        CompressBatch b;
        b.items.push_back({key.child_index(), std::move(s)});
        ttg::send<1>(key.parent(), std::move(b), out);
      }
    } else {
      for (int c = 0; c < 8; ++c) ttg::sendk<0>(key.child(c), out);
    }
  };
  auto project_tt = make_tt(world, project_fn, edges(project_ctl),
                            edges(project_ctl, compress_in, root_out, leaf_out),
                            "Project");

  /* ---- COMPRESS: 8-way streaming terminal; filter the child blocks,
     store the wavelet residuals, send the scaling part up. At the root,
     emit the norm and kick off reconstruction — no barrier between the
     transforms. ---- */
  auto compress_fn = [&ts, &dstore, &res, keymap, light = opt.light_math](
                         const TreeKey& key, CompressBatch& batch,
                         std::tuple<Out<TreeKey, CompressBatch>, Out<Int1, RootInfo>,
                                    Out<TreeKey, Coeffs>>& out) {
    TTG_CHECK(batch.items.size() == 8, "compress expects 2^d children");
    std::array<std::vector<double>, 8> child_s;
    for (auto& it : batch.items) child_s[static_cast<std::size_t>(it.child)] =
        std::move(it.s.v);
    std::vector<double> parent_s;
    auto& d = dstore[static_cast<std::size_t>(keymap(key))][key];
    double own_d2 = 0.0;
    if (light) {
      // Keep the data sizes and the interior-node marker; skip arithmetic.
      parent_s = std::move(child_s[0]);
      for (int c = 0; c < 8; ++c)
        d[static_cast<std::size_t>(c)].v.resize(parent_s.size());
    } else {
      parent_s = ts.filter(child_s);
      for (int c = 0; c < 8; ++c) {
        const auto proj = ts.unfilter_child(parent_s, c);
        auto& dc = d[static_cast<std::size_t>(c)];
        dc.v.resize(proj.size());
        for (std::size_t i = 0; i < proj.size(); ++i) {
          dc.v[i] = child_s[static_cast<std::size_t>(c)][i] - proj[i];
          own_d2 += dc.v[i] * dc.v[i];
        }
      }
    }
    ++res.tree_nodes;
    Coeffs s;
    s.v = std::move(parent_s);
    const double up_d2 = batch.dnorm2 + own_d2;
    if (key.level == 0) {
      ttg::send<1>(Int1{key.fid}, RootInfo{key.fid, up_d2 + s.norm2()}, out);
      ttg::send<2>(key, std::move(s), out);  // start reconstruction
    } else {
      CompressBatch b;
      b.items.push_back({key.child_index(), std::move(s)});
      b.dnorm2 = up_d2;
      ttg::send<0>(key.parent(), std::move(b), out);
    }
  };
  auto compress_tt = make_tt(world, compress_fn, edges(compress_in),
                             edges(compress_in, root_out, recon_in), "Compress");
  // Listing 3: exactly 2^d messages per task on the streaming terminal.
  compress_tt->set_input_reducer<0>(
      [](CompressBatch& acc, CompressBatch&& next) {
        for (auto& it : next.items) acc.items.push_back(std::move(it));
        acc.dnorm2 += next.dnorm2;
      },
      /*size=*/8);

  /* ---- RECONSTRUCT: walk down; interior nodes (those with stored
     wavelet coefficients) regenerate their children, leaves emit final
     scaling coefficients. ---- */
  auto recon_fn = [&ts, &dstore, keymap, light = opt.light_math](
                      const TreeKey& key, Coeffs& s,
                      std::tuple<Out<TreeKey, Coeffs>, Out<TreeKey, Coeffs>>& out) {
    auto& store = dstore[static_cast<std::size_t>(keymap(key))];
    auto it = store.find(key);
    if (it == store.end()) {
      ttg::send<1>(key, std::move(s), out);  // leaf
      return;
    }
    for (int c = 0; c < 8; ++c) {
      std::vector<double> child;
      if (light) {
        child = s.v;  // pass-through of the same-size block
      } else {
        child = ts.unfilter_child(s.v, c);
        const auto& dc = it->second[static_cast<std::size_t>(c)];
        for (std::size_t i = 0; i < child.size(); ++i) child[i] += dc.v[i];
      }
      Coeffs cs;
      cs.v = std::move(child);
      ttg::send<0>(key.child(c), std::move(cs), out);
    }
  };
  auto recon_tt = make_tt(world, recon_fn, edges(recon_in),
                          edges(recon_in, leaf_out), "Reconstruct");

  /* ---- sinks: compressed-form norm and reconstructed-leaf norm ---- */
  auto root_tt = make_sink(world, root_out, [&res](const Int1& k, RootInfo& r) {
    (void)k;
    res.norm2_compressed[r.fid] += r.norm2;
  });
  auto leaf_tt = make_sink(world, leaf_out, [&res](const TreeKey& k, Coeffs& s) {
    res.norm2_reconstructed[k.fid] += s.norm2();
  });

  project_tt->set_keymap(keymap);
  compress_tt->set_keymap(keymap);
  recon_tt->set_keymap(keymap);
  root_tt->set_keymap([](const Int1&) { return 0; });
  leaf_tt->set_keymap(keymap);

  project_tt->set_costmap([&ctx, &machine](const TreeKey&, const Void&) {
    return machine.flops_time(ctx.project_flops(), 0.5);
  });
  compress_tt->set_costmap([&ctx, &machine](const TreeKey&, const CompressBatch&) {
    return machine.flops_time(ctx.compress_flops(), 0.5);
  });
  recon_tt->set_costmap([&ctx, &machine](const TreeKey&, const Coeffs&) {
    return machine.flops_time(ctx.reconstruct_flops(), 0.5);
  });
  // Depth-first priorities keep the working set small.
  project_tt->set_priomap([](const TreeKey& k) { return k.level; });

  make_graph_executable(*project_tt);
  make_graph_executable(*compress_tt);
  make_graph_executable(*recon_tt);
  make_graph_executable(*root_tt);
  make_graph_executable(*leaf_tt);

  const double t0 = world.engine().now();
  for (int fid = 0; fid < ctx.nfunctions(); ++fid)
    project_tt->invoke(TreeKey{fid, 0, 0, 0, 0}, Void{});
  const double t1 = world.fence();
  TTG_CHECK(world.unfinished() == 0, "MRA graph did not quiesce");

  res.makespan = t1 - t0;
  res.tasks = project_tt->tasks_executed() + compress_tt->tasks_executed() +
              recon_tt->tasks_executed();
  return res;
}

}  // namespace ttg::apps::mra
