// Serving-mode job graphs: reusable, restartable template-graph instances
// for the multi-tenant JobManager (ROADMAP serving mode).
//
// Each JobGraph wraps one compiled TTG DAG — the same TT wiring as the
// standalone apps (apps/cholesky, apps/fw_apsp) or a compact block-sparse
// matmul with a streaming reduction — but built once against a World and
// then *restarted* per job: start(seed) generates that job's input data and
// injects it through the graph's INITIATOR; completion is detected by the
// RESULT sink counting arrivals (no fence needed, so many jobs can be in
// flight in one engine run). Instances plug into rt::GraphCache through
// mutation_count(): a job whose GraphKey matches a pooled, unmutated
// instance reuses it instead of rebuilding the TT wiring.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <utility>
#include <vector>

#include "runtime/job.hpp"
#include "runtime/world.hpp"
#include "ttg/keymaps.hpp"

namespace ttg::apps::serve {

/// Per-tile Frobenius norms of a job's output, keyed by tile coordinate.
/// Order-independent and cheap to compare: two runs of the same job agree
/// exactly (POTRF/FW) or to reduction-order rounding (bspmm).
using ResultMap = std::map<std::pair<int, int>, double>;

/// One compiled, restartable template graph. Exactly one job may be active
/// on an instance at a time (the GraphCache checks instances out
/// exclusively); per-run state is reset by start().
class JobGraph {
 public:
  virtual ~JobGraph() = default;
  JobGraph(const JobGraph&) = delete;
  JobGraph& operator=(const JobGraph&) = delete;

  [[nodiscard]] const rt::GraphKey& key() const { return key_; }

  /// Sum of the TT-structure mutation counters; rt::GraphCache compares
  /// this against the value stamped at release to detect stale instances.
  [[nodiscard]] std::uint64_t mutation_count() const {
    std::uint64_t m = 0;
    for (const rt::TTBase* tt : tts_) m += tt->mutations();
    return m;
  }

  /// Begin one job: (re)generate the input data from `seed` and inject it.
  /// `on_done` fires inside the task body that delivers the last RESULT
  /// tile — i.e. at the job's completion instant on the virtual clock.
  virtual void start(std::uint64_t seed, std::function<void()> on_done) = 0;

  /// Output of the most recently completed (or active) run.
  [[nodiscard]] const ResultMap& result() const { return result_; }

  /// RESULT arrivals the active run still waits for (0 = idle/complete).
  [[nodiscard]] bool running() const { return running_; }

  /// Cumulative task bodies executed by this instance across all runs.
  [[nodiscard]] std::uint64_t tasks_executed() const {
    std::uint64_t n = 0;
    for (const rt::TTBase* tt : tts_) n += tt->tasks_executed();
    return n;
  }

  /// Re-apply a (behaviorally identical) keymap to one TT, bumping its
  /// mutation counter: models post-caching graph surgery so tests can
  /// assert GraphCache eviction.
  void mutate_for_test() {
    TTG_CHECK(mutate_ != nullptr, "graph has no mutate hook");
    mutate_();
  }

  /// Switch the placement keymap of every TT in the wiring (the serving
  /// analogue of the apps' --keymap knob). Each set_keymap bumps that TT's
  /// mutation counter, so a pooled instance rekeyed after release is stale
  /// and the next same-key acquire evicts and rebuilds it.
  void apply_keymap(KeymapKind kind) {
    TTG_CHECK(rekey_ != nullptr,
              "job graph '" + key_.kind + "' has no keymap hook");
    rekey_(kind);
  }

 protected:
  explicit JobGraph(rt::GraphKey key) : key_(std::move(key)) {}

  /// Arm per-run completion state (call first in start()).
  void begin_run(int expected, std::function<void()> on_done) {
    TTG_CHECK(!running_, "job graph '" + key_.kind + "' is already running");
    TTG_CHECK(expected > 0, "job graph with no expected results");
    running_ = true;
    arrived_ = 0;
    expected_ = expected;
    result_.clear();
    on_done_ = std::move(on_done);
  }

  /// One RESULT tile arrived; fires on_done on the last one.
  void finish_one() {
    TTG_CHECK(running_, "result arrived on an idle job graph");
    if (++arrived_ < expected_) return;
    running_ = false;
    auto done = std::move(on_done_);
    on_done_ = nullptr;
    if (done) done();
  }

  rt::GraphKey key_;
  std::vector<rt::TTBase*> tts_;   ///< every TT of the wiring (for counters)
  std::vector<std::shared_ptr<void>> hold_;  ///< owns the typed TT objects
  std::function<void()> mutate_;   ///< re-applies a keymap (test hook)
  std::function<void(KeymapKind)> rekey_;  ///< switches the placement keymap
  ResultMap result_;
  int arrived_ = 0;
  int expected_ = 0;
  bool running_ = false;
  std::function<void()> on_done_;
};

/// Build a fresh graph instance for `key`:
///   kind "potrf":  params = {n, block}   — tiled Cholesky (apps/cholesky DAG)
///   kind "fw":     params = {n, block}   — Floyd-Warshall (apps/fw_apsp DAG)
///   kind "bspmm":  params = {nt, block, density_pct} — block-sparse matmul
///                  with a streaming tile_add reduction per output tile
std::shared_ptr<JobGraph> make_graph(rt::World& world, const rt::GraphKey& key);

/// Cache-aware acquire: reuse a pooled instance from the world's
/// JobManager cache when one with an unchanged structure exists, else
/// build. Pair with release_graph() when the job completes.
std::shared_ptr<JobGraph> acquire_graph(rt::World& world, const rt::GraphKey& key);

/// Return an instance to the world's cache for later same-key jobs.
void release_graph(rt::World& world, std::shared_ptr<JobGraph> g);

}  // namespace ttg::apps::serve
