#include "apps/serve/job_graphs.hpp"

#include <tuple>
#include <utility>
#include <vector>

#include "graph/fw_kernels.hpp"
#include "linalg/dist.hpp"
#include "linalg/kernels.hpp"
#include "linalg/matrix_gen.hpp"
#include "support/rng.hpp"
#include "ttg/ttg.hpp"

namespace ttg::apps::serve {
namespace {

using linalg::Tile;
using linalg::TiledMatrix;

/// Tiled Cholesky with the exact apps/cholesky wiring (edges, kernels,
/// keymaps, priority/cost maps, injection order), rebuilt as a restartable
/// instance: the INITIATOR reads the per-run matrix member instead of a
/// caller-owned matrix, and RESULT records tile norms + counts arrivals.
class PotrfServeGraph final : public JobGraph {
 public:
  PotrfServeGraph(rt::World& world, rt::GraphKey key)
      : JobGraph(std::move(key)),
        world_(world),
        n_(static_cast<int>(key_.params[0])),
        bs_(static_cast<int>(key_.params[1])),
        nt_((n_ + bs_ - 1) / bs_) {
    TTG_REQUIRE(n_ > 0 && bs_ > 0, "potrf job graph needs n > 0 and block > 0");
    const auto* mach = &world_.machine();
    const linalg::BlockCyclic2D dist = linalg::BlockCyclic2D::make(world_.nranks());
    const int nt = nt_;

    Edge<Int1, Tile> to_potrf("to_potrf");
    Edge<Int2, Tile> potrf_trsm("potrf_trsm");
    Edge<Int2, Tile> to_trsm("to_trsm");
    Edge<Int2, Tile> trsm_syrk("trsm_syrk");
    Edge<Int2, Tile> to_syrk("to_syrk");
    Edge<Int3, Tile> trsm_gemm_row("trsm_gemm_row");
    Edge<Int3, Tile> trsm_gemm_col("trsm_gemm_col");
    Edge<Int3, Tile> to_gemm("to_gemm");
    Edge<Int2, Tile> result("result");

    auto potrf_fn = [nt](const Int1& key, Tile& tile_kk,
                         std::tuple<Out<Int2, Tile>, Out<Int2, Tile>>& out) {
      const int k = key.i;
      TTG_CHECK(linalg::potrf(tile_kk), "matrix is not SPD");
      std::vector<Int2> trsm_ids;
      for (int m = k + 1; m < nt; ++m) trsm_ids.push_back(Int2{m, k});
      ttg::send<0>(Int2{k, k}, tile_kk, out);
      ttg::broadcast<1>(trsm_ids, tile_kk, out);
    };
    auto potrf_tt = make_tt(world_, potrf_fn, edges(to_potrf),
                            edges(result, potrf_trsm), "POTRF");

    auto trsm_fn = [nt](const Int2& key, Tile& tile_kk, Tile& tile_mk,
                        std::tuple<Out<Int2, Tile>, Out<Int2, Tile>,
                                   Out<Int3, Tile>, Out<Int3, Tile>>& out) {
      const auto [m, k] = key;
      linalg::trsm(tile_kk, tile_mk);
      std::vector<Int3> row_ids, col_ids;
      for (int n = k + 1; n < m; ++n) row_ids.push_back(Int3{m, n, k});
      for (int i = m + 1; i < nt; ++i) col_ids.push_back(Int3{i, m, k});
      ttg::broadcast<0, 1, 2, 3>(
          std::make_tuple(Int2{m, k}, Int2{k, m}, row_ids, col_ids), tile_mk, out);
    };
    auto trsm_tt =
        make_tt(world_, trsm_fn, edges(potrf_trsm, to_trsm),
                edges(result, trsm_syrk, trsm_gemm_row, trsm_gemm_col), "TRSM");

    auto syrk_fn = [](const Int2& key, Tile& l_mk, Tile& c_mm,
                      std::tuple<Out<Int1, Tile>, Out<Int2, Tile>>& out) {
      const auto [k, m] = key;
      linalg::syrk(l_mk, c_mm);
      if (k == m - 1) {
        ttg::send<0>(Int1{m}, std::move(c_mm), out);
      } else {
        ttg::send<1>(Int2{k + 1, m}, std::move(c_mm), out);
      }
    };
    auto syrk_tt = make_tt(world_, syrk_fn, edges(trsm_syrk, to_syrk),
                           edges(to_potrf, to_syrk), "SYRK");

    auto gemm_fn = [](const Int3& key, Tile& l_mk, Tile& l_nk, Tile& c_mn,
                      std::tuple<Out<Int2, Tile>, Out<Int3, Tile>>& out) {
      const auto [m, n, k] = key;
      linalg::gemm_nt(c_mn, l_mk, l_nk);
      if (k == n - 1) {
        ttg::send<0>(Int2{m, n}, std::move(c_mn), out);
      } else {
        ttg::send<1>(Int3{m, n, k + 1}, std::move(c_mn), out);
      }
    };
    auto gemm_tt = make_tt(world_, gemm_fn,
                           edges(trsm_gemm_row, trsm_gemm_col, to_gemm),
                           edges(to_trsm, to_gemm), "GEMM");

    auto result_tt = make_sink(
        world_, result,
        [this](const Int2& key, Tile& t) {
          result_[{key.i, key.j}] = t.norm();
          finish_one();
        },
        "RESULT");

    potrf_tt->set_keymap([dist](const Int1& k) { return dist.owner(k.i, k.i); });
    trsm_tt->set_keymap([dist](const Int2& k) { return dist.owner(k.i, k.j); });
    syrk_tt->set_keymap([dist](const Int2& k) { return dist.owner(k.j, k.j); });
    gemm_tt->set_keymap([dist](const Int3& k) { return dist.owner(k.i, k.j); });
    result_tt->set_keymap([dist](const Int2& k) { return dist.owner(k.i, k.j); });

    potrf_tt->set_priomap([nt](const Int1& k) { return 3 * (nt - k.i); });
    trsm_tt->set_priomap([nt](const Int2& k) { return 2 * (nt - k.j); });
    syrk_tt->set_priomap([nt](const Int2& k) { return nt - k.i; });
    gemm_tt->set_priomap([nt](const Int3& k) { return nt - k.k; });

    potrf_tt->set_costmap([mach](const Int1&, const Tile& t) {
      return linalg::potrf_time(*mach, t.rows());
    });
    trsm_tt->set_costmap([mach](const Int2&, const Tile& lkk, const Tile& amk) {
      (void)lkk;
      return linalg::trsm_time(*mach, amk.rows(), amk.cols());
    });
    syrk_tt->set_costmap([mach](const Int2&, const Tile& l, const Tile& c) {
      return linalg::syrk_time(*mach, c.rows(), l.cols());
    });
    gemm_tt->set_costmap(
        [mach](const Int3&, const Tile& a_, const Tile& b_, const Tile& c_) {
          (void)b_;
          return linalg::gemm_time(*mach, c_.rows(), c_.cols(), a_.cols());
        });

    auto init_fn = [this](const Int2& key,
                          std::tuple<Out<Int1, Tile>, Out<Int2, Tile>,
                                     Out<Int2, Tile>, Out<Int3, Tile>>& out) {
      const auto [m, n] = key;
      Tile t = a_.tile(m, n);
      if (m == 0 && n == 0) {
        ttg::send<0>(Int1{0}, std::move(t), out);
      } else if (m == n) {
        ttg::send<2>(Int2{0, m}, std::move(t), out);
      } else if (n == 0) {
        ttg::send<1>(Int2{m, 0}, std::move(t), out);
      } else {
        ttg::send<3>(Int3{m, n, 0}, std::move(t), out);
      }
    };
    auto init_tt = make_tt<Int2>(world_, init_fn, std::tuple<>{},
                                 edges(to_potrf, to_trsm, to_syrk, to_gemm),
                                 "INITIATOR");
    init_tt->set_keymap([dist](const Int2& k) { return dist.owner(k.i, k.j); });

    rt::make_graph_executable(*potrf_tt);
    rt::make_graph_executable(*trsm_tt);
    rt::make_graph_executable(*syrk_tt);
    rt::make_graph_executable(*gemm_tt);
    rt::make_graph_executable(*result_tt);
    rt::make_graph_executable(*init_tt);

    tts_ = {potrf_tt.get(), trsm_tt.get(),   syrk_tt.get(),
            gemm_tt.get(),  result_tt.get(), init_tt.get()};
    auto* potrf_raw = potrf_tt.get();
    mutate_ = [potrf_raw, dist]() {
      potrf_raw->set_keymap([dist](const Int1& k) { return dist.owner(k.i, k.i); });
    };
    {
      auto* trsm_raw = trsm_tt.get();
      auto* syrk_raw = syrk_tt.get();
      auto* gemm_raw = gemm_tt.get();
      auto* result_raw = result_tt.get();
      auto* init_keymap_raw = init_tt.get();
      const int nranks = world_.nranks();
      const int rpn = world_.config().ranks_per_node;
      rekey_ = [=](KeymapKind kind) {
        const Keymap2D km = make_keymap2d(kind, nranks, rpn);
        potrf_raw->set_keymap([km](const Int1& k) { return km.owner(k.i, k.i); });
        trsm_raw->set_keymap([km](const Int2& k) { return km.owner(k.i, k.j); });
        syrk_raw->set_keymap([km](const Int2& k) { return km.owner(k.j, k.j); });
        gemm_raw->set_keymap([km](const Int3& k) { return km.owner(k.i, k.j); });
        result_raw->set_keymap([km](const Int2& k) { return km.owner(k.i, k.j); });
        init_keymap_raw->set_keymap(
            [km](const Int2& k) { return km.owner(k.i, k.j); });
      };
    }
    auto* init_raw = init_tt.get();
    inject_ = [this, init_raw]() {
      for (int m = 0; m < nt_; ++m)
        for (int n = 0; n <= m; ++n) init_raw->invoke(Int2{m, n});
    };
    hold_.push_back(std::shared_ptr<void>(std::move(potrf_tt)));
    hold_.push_back(std::shared_ptr<void>(std::move(trsm_tt)));
    hold_.push_back(std::shared_ptr<void>(std::move(syrk_tt)));
    hold_.push_back(std::shared_ptr<void>(std::move(gemm_tt)));
    hold_.push_back(std::shared_ptr<void>(std::move(result_tt)));
    hold_.push_back(std::shared_ptr<void>(std::move(init_tt)));
  }

  void start(std::uint64_t seed, std::function<void()> on_done) override {
    begin_run(nt_ * (nt_ + 1) / 2, std::move(on_done));
    support::Rng rng(seed);
    a_ = linalg::random_spd(rng, n_, bs_);
    inject_();
  }

 private:
  rt::World& world_;
  int n_;
  int bs_;
  int nt_;
  TiledMatrix a_;  ///< this run's input (regenerated by start())
  std::function<void()> inject_;
};

/// Route tile (i,j) into FW round `k` (or to RESULT when rounds are done);
/// identical to the apps/fw_apsp router.
template <typename OutTuple>
void fw_route(int i, int j, int k, int nt, Tile&& t, OutTuple& out) {
  if (k == nt) {
    ttg::send<4>(Int2{i, j}, std::move(t), out);
  } else if (i == k && j == k) {
    ttg::send<0>(Int1{k}, std::move(t), out);
  } else if (i == k) {
    ttg::send<1>(Int2{j, k}, std::move(t), out);
  } else if (j == k) {
    ttg::send<2>(Int2{i, k}, std::move(t), out);
  } else {
    ttg::send<3>(Int3{i, j, k}, std::move(t), out);
  }
}

/// Floyd-Warshall APSP with the exact apps/fw_apsp wiring, restartable:
/// the per-run adjacency matrix is a member and RESULT counts nt^2 tiles.
class FwServeGraph final : public JobGraph {
 public:
  FwServeGraph(rt::World& world, rt::GraphKey key)
      : JobGraph(std::move(key)),
        world_(world),
        n_(static_cast<int>(key_.params[0])),
        bs_(static_cast<int>(key_.params[1])),
        nt_((n_ + bs_ - 1) / bs_) {
    TTG_REQUIRE(n_ > 0 && bs_ > 0, "fw job graph needs n > 0 and block > 0");
    const auto* mach = &world_.machine();
    const auto dist = linalg::BlockCyclic2D::make(world_.nranks());
    const int nt = nt_;

    Edge<Int1, Tile> to_a("to_a");
    Edge<Int2, Tile> to_b("to_b");
    Edge<Int2, Tile> to_c("to_c");
    Edge<Int3, Tile> to_d("to_d");
    Edge<Int2, Tile> a_to_b("a_to_b");
    Edge<Int2, Tile> a_to_c("a_to_c");
    Edge<Int3, Tile> b_to_d("b_to_d");
    Edge<Int3, Tile> c_to_d("c_to_d");
    Edge<Int2, Tile> result("result");

    using Out5 = std::tuple<Out<Int1, Tile>, Out<Int2, Tile>, Out<Int2, Tile>,
                            Out<Int3, Tile>, Out<Int2, Tile>>;

    auto a_fn = [nt](const Int1& key, Tile& w,
                     std::tuple<Out<Int1, Tile>, Out<Int2, Tile>, Out<Int2, Tile>,
                                Out<Int3, Tile>, Out<Int2, Tile>, Out<Int2, Tile>,
                                Out<Int2, Tile>>& out) {
      const int k = key.i;
      graph::fw_a(w);
      std::vector<Int2> row_ids, col_ids;
      for (int j = 0; j < nt; ++j) {
        if (j == k) continue;
        row_ids.push_back(Int2{j, k});
        col_ids.push_back(Int2{j, k});
      }
      ttg::broadcast<5>(row_ids, w, out);
      ttg::broadcast<6>(col_ids, w, out);
      auto sub = std::tie(std::get<0>(out), std::get<1>(out), std::get<2>(out),
                          std::get<3>(out), std::get<4>(out));
      fw_route(k, k, k + 1, nt, std::move(w), sub);
    };

    auto b_fn = [nt](const Int2& key, Tile& a_kk, Tile& w,
                     std::tuple<Out<Int1, Tile>, Out<Int2, Tile>, Out<Int2, Tile>,
                                Out<Int3, Tile>, Out<Int2, Tile>,
                                Out<Int3, Tile>>& out) {
      const auto [j, k] = key;
      graph::fw_b(w, a_kk);
      std::vector<Int3> d_ids;
      for (int i = 0; i < nt; ++i)
        if (i != k) d_ids.push_back(Int3{i, j, k});
      ttg::broadcast<5>(d_ids, w, out);
      auto sub = std::tie(std::get<0>(out), std::get<1>(out), std::get<2>(out),
                          std::get<3>(out), std::get<4>(out));
      fw_route(k, j, k + 1, nt, std::move(w), sub);
    };

    auto c_fn = [nt](const Int2& key, Tile& a_kk, Tile& w,
                     std::tuple<Out<Int1, Tile>, Out<Int2, Tile>, Out<Int2, Tile>,
                                Out<Int3, Tile>, Out<Int2, Tile>,
                                Out<Int3, Tile>>& out) {
      const auto [i, k] = key;
      graph::fw_c(w, a_kk);
      std::vector<Int3> d_ids;
      for (int j = 0; j < nt; ++j)
        if (j != k) d_ids.push_back(Int3{i, j, k});
      ttg::broadcast<5>(d_ids, w, out);
      auto sub = std::tie(std::get<0>(out), std::get<1>(out), std::get<2>(out),
                          std::get<3>(out), std::get<4>(out));
      fw_route(i, k, k + 1, nt, std::move(w), sub);
    };

    auto d_fn = [nt](const Int3& key, Tile& w_kj, Tile& w_ik, Tile& w, Out5& out) {
      const auto [i, j, k] = key;
      graph::fw_d(w, w_ik, w_kj);
      fw_route(i, j, k + 1, nt, std::move(w), out);
    };

    auto a_tt = make_tt(world_, a_fn, edges(to_a),
                        edges(to_a, to_b, to_c, to_d, result, a_to_b, a_to_c),
                        "FW_A");
    auto b_tt = make_tt(world_, b_fn, edges(a_to_b, to_b),
                        edges(to_a, to_b, to_c, to_d, result, b_to_d), "FW_B");
    auto c_tt = make_tt(world_, c_fn, edges(a_to_c, to_c),
                        edges(to_a, to_b, to_c, to_d, result, c_to_d), "FW_C");
    auto d_tt = make_tt(world_, d_fn, edges(b_to_d, c_to_d, to_d),
                        edges(to_a, to_b, to_c, to_d, result), "FW_D");

    a_tt->set_keymap([dist](const Int1& k) { return dist.owner(k.i, k.i); });
    b_tt->set_keymap([dist](const Int2& k) { return dist.owner(k.j, k.i); });
    c_tt->set_keymap([dist](const Int2& k) { return dist.owner(k.i, k.j); });
    d_tt->set_keymap([dist](const Int3& k) { return dist.owner(k.i, k.j); });

    a_tt->set_priomap([nt](const Int1& k) { return 3 * (nt - k.i); });
    b_tt->set_priomap([nt](const Int2& k) { return 2 * (nt - k.j); });
    c_tt->set_priomap([nt](const Int2& k) { return 2 * (nt - k.j); });
    d_tt->set_priomap([nt](const Int3& k) { return nt - k.k; });

    a_tt->set_costmap([mach](const Int1&, const Tile& w) {
      return graph::fw_time(*mach, w.rows(), w.cols(), w.rows());
    });
    b_tt->set_costmap([mach](const Int2&, const Tile& a, const Tile& w) {
      return graph::fw_time(*mach, w.rows(), w.cols(), a.rows());
    });
    c_tt->set_costmap([mach](const Int2&, const Tile& a, const Tile& w) {
      return graph::fw_time(*mach, w.rows(), w.cols(), a.rows());
    });
    d_tt->set_costmap(
        [mach](const Int3&, const Tile& r, const Tile& c, const Tile& w) {
          (void)c;
          return graph::fw_time(*mach, w.rows(), w.cols(), r.rows());
        });

    auto result_tt = make_sink(
        world_, result,
        [this](const Int2& key, Tile& t) {
          result_[{key.i, key.j}] = t.norm();
          finish_one();
        },
        "RESULT");
    result_tt->set_keymap([dist](const Int2& k) { return dist.owner(k.i, k.j); });

    auto init_fn = [this, nt](const Int2& key, Out5& out) {
      Tile t = w0_.tile(key.i, key.j);
      fw_route(key.i, key.j, 0, nt, std::move(t), out);
    };
    auto init_tt = make_tt<Int2>(world_, init_fn, std::tuple<>{},
                                 edges(to_a, to_b, to_c, to_d, result),
                                 "INITIATOR");
    init_tt->set_keymap([dist](const Int2& k) { return dist.owner(k.i, k.j); });

    rt::make_graph_executable(*a_tt);
    rt::make_graph_executable(*b_tt);
    rt::make_graph_executable(*c_tt);
    rt::make_graph_executable(*d_tt);
    rt::make_graph_executable(*result_tt);
    rt::make_graph_executable(*init_tt);

    tts_ = {a_tt.get(),      b_tt.get(), c_tt.get(),
            d_tt.get(),      result_tt.get(), init_tt.get()};
    auto* a_raw = a_tt.get();
    mutate_ = [a_raw, dist]() {
      a_raw->set_keymap([dist](const Int1& k) { return dist.owner(k.i, k.i); });
    };
    auto* init_raw = init_tt.get();
    inject_ = [this, init_raw]() {
      for (int i = 0; i < nt_; ++i)
        for (int j = 0; j < nt_; ++j) init_raw->invoke(Int2{i, j});
    };
    hold_.push_back(std::shared_ptr<void>(std::move(a_tt)));
    hold_.push_back(std::shared_ptr<void>(std::move(b_tt)));
    hold_.push_back(std::shared_ptr<void>(std::move(c_tt)));
    hold_.push_back(std::shared_ptr<void>(std::move(d_tt)));
    hold_.push_back(std::shared_ptr<void>(std::move(result_tt)));
    hold_.push_back(std::shared_ptr<void>(std::move(init_tt)));
  }

  void start(std::uint64_t seed, std::function<void()> on_done) override {
    begin_run(nt_ * nt_, std::move(on_done));
    support::Rng rng(seed);
    w0_ = linalg::random_adjacency(rng, n_, bs_);
    inject_();
  }

 private:
  rt::World& world_;
  int n_;
  int bs_;
  int nt_;
  TiledMatrix w0_;
  std::function<void()> inject_;
};

/// Compact block-sparse matmul C = A * B with a streaming tile_add
/// reduction per output tile (the bspmm accumulation pattern, without the
/// app's coordinator pipeline). The sparsity masks are regenerated per run
/// from the job's seed, so each run's task set differs — exactly the
/// serving scenario where one compiled graph hosts many differently-shaped
/// jobs.
///
/// Streaming-terminal records are tombstoned per key once a reduction
/// closes, so a key cannot be reused by a later run. Each run therefore
/// stamps a fresh epoch into the i-component of its keys (i' = epoch*nt+i);
/// the keymaps unpack `i' % nt`, keeping placement (and thus scheduling
/// behavior) epoch-invariant.
class BspmmServeGraph final : public JobGraph {
 public:
  BspmmServeGraph(rt::World& world, rt::GraphKey key)
      : JobGraph(std::move(key)),
        world_(world),
        nt_(static_cast<int>(key_.params[0])),
        bs_(static_cast<int>(key_.params[1])),
        density_(key_.params[2] > 0
                     ? static_cast<double>(key_.params[2]) / 100.0
                     : 0.4) {
    TTG_REQUIRE(nt_ > 0 && bs_ > 0, "bspmm job graph needs nt > 0 and block > 0");
    const auto* mach = &world_.machine();
    const auto dist = linalg::BlockCyclic2D::make(world_.nranks());
    const int nt = nt_;

    Edge<Int3, Tile> a_to_mm("a_to_mm");
    Edge<Int3, Tile> b_to_mm("b_to_mm");
    Edge<Int2, Tile> mm_to_c("mm_to_c");
    Edge<Int2, Tile> c_result("c_result");

    // READ_A(i', k): broadcast A(i,k) to MM(i,j,k) for every stored B(k,j).
    auto init_a_fn = [this, nt](const Int2& key, std::tuple<Out<Int3, Tile>>& out) {
      const int i = key.i % nt;
      const int k = key.j;
      std::vector<Int3> ids;
      for (int j = 0; j < nt; ++j)
        if (b_mask_[static_cast<std::size_t>(k * nt + j)])
          ids.push_back(Int3{key.i, j, k});
      Tile t = a_tiles_.at({i, k});
      ttg::broadcast<0>(ids, t, out);
    };
    auto init_a_tt = make_tt<Int2>(world_, init_a_fn, std::tuple<>{},
                                   edges(a_to_mm), "READ_A");

    // READ_B(k', j): broadcast B(k,j) to MM(i,j,k) for every stored A(i,k).
    auto init_b_fn = [this, nt](const Int2& key, std::tuple<Out<Int3, Tile>>& out) {
      const int k = key.i % nt;
      const int j = key.j;
      const int epoch_base = key.i - k;
      std::vector<Int3> ids;
      for (int i = 0; i < nt; ++i)
        if (a_mask_[static_cast<std::size_t>(i * nt + k)])
          ids.push_back(Int3{epoch_base + i, j, k});
      Tile t = b_tiles_.at({k, j});
      ttg::broadcast<0>(ids, t, out);
    };
    auto init_b_tt = make_tt<Int2>(world_, init_b_fn, std::tuple<>{},
                                   edges(b_to_mm), "READ_B");

    // MM(i', j, k): one tile product, streamed into C(i,j)'s reduction.
    auto mm_fn = [](const Int3& key, Tile& at, Tile& bt,
                    std::tuple<Out<Int2, Tile>>& out) {
      Tile c(at.rows(), bt.cols());
      linalg::gemm_nn_acc(c, at, bt);
      ttg::send<0>(Int2{key.i, key.j}, std::move(c), out);
    };
    auto mm_tt = make_tt(world_, mm_fn, edges(a_to_mm, b_to_mm),
                         edges(mm_to_c), "MULTIPLY");

    // C_REDUCE(i', j): streaming tile_add fold over the key's products;
    // per-key stream sizes are declared by start() from the run's masks.
    auto red_fn = [](const Int2& key, Tile& acc, std::tuple<Out<Int2, Tile>>& out) {
      ttg::send<0>(key, std::move(acc), out);
    };
    auto red_tt = make_tt(world_, red_fn, edges(mm_to_c), edges(c_result),
                          "C_REDUCE");
    red_tt->set_input_reducer<0>(
        [](Tile& acc, Tile&& v) { linalg::tile_add(acc, v); });

    auto sink_tt = make_sink(
        world_, c_result,
        [this, nt](const Int2& key, Tile& t) {
          result_[{key.i % nt, key.j}] = t.norm();
          finish_one();
        },
        "C_RESULT");

    auto unpack_owner = [dist, nt](const Int2& k) {
      return dist.owner(k.i % nt, k.j);
    };
    init_a_tt->set_keymap(unpack_owner);
    init_b_tt->set_keymap(unpack_owner);
    mm_tt->set_keymap([dist, nt](const Int3& k) {
      return dist.owner(k.i % nt, k.j);
    });
    red_tt->set_keymap(unpack_owner);
    sink_tt->set_keymap(unpack_owner);

    mm_tt->set_costmap([mach](const Int3&, const Tile& at, const Tile& bt) {
      return linalg::gemm_time(*mach, at.rows(), bt.cols(), at.cols());
    });

    rt::make_graph_executable(*init_a_tt);
    rt::make_graph_executable(*init_b_tt);
    rt::make_graph_executable(*mm_tt);
    rt::make_graph_executable(*red_tt);
    rt::make_graph_executable(*sink_tt);

    tts_ = {init_a_tt.get(), init_b_tt.get(), mm_tt.get(), red_tt.get(),
            sink_tt.get()};
    auto* mm_raw = mm_tt.get();
    mutate_ = [mm_raw, dist, nt]() {
      mm_raw->set_keymap([dist, nt](const Int3& k) {
        return dist.owner(k.i % nt, k.j);
      });
    };
    auto* red_raw = red_tt.get();
    set_size_ = [red_raw](const Int2& k, std::int64_t n) {
      red_raw->set_argstream_size<0>(k, n);
    };
    auto* ia_raw = init_a_tt.get();
    auto* ib_raw = init_b_tt.get();
    inject_ = [this, ia_raw, ib_raw]() {
      const int base = epoch_ * nt_;
      for (int i = 0; i < nt_; ++i)
        for (int k = 0; k < nt_; ++k)
          if (a_mask_[static_cast<std::size_t>(i * nt_ + k)])
            ia_raw->invoke(Int2{base + i, k});
      for (int k = 0; k < nt_; ++k)
        for (int j = 0; j < nt_; ++j)
          if (b_mask_[static_cast<std::size_t>(k * nt_ + j)])
            ib_raw->invoke(Int2{base + k, j});
    };
    hold_.push_back(std::shared_ptr<void>(std::move(init_a_tt)));
    hold_.push_back(std::shared_ptr<void>(std::move(init_b_tt)));
    hold_.push_back(std::shared_ptr<void>(std::move(mm_tt)));
    hold_.push_back(std::shared_ptr<void>(std::move(red_tt)));
    hold_.push_back(std::shared_ptr<void>(std::move(sink_tt)));
  }

  void start(std::uint64_t seed, std::function<void()> on_done) override {
    const int nt = nt_;
    epoch_ += 1;
    support::Rng rng(seed);
    a_mask_.assign(static_cast<std::size_t>(nt) * nt, 0);
    b_mask_.assign(static_cast<std::size_t>(nt) * nt, 0);
    for (int i = 0; i < nt; ++i)
      for (int k = 0; k < nt; ++k)
        a_mask_[static_cast<std::size_t>(i * nt + k)] =
            (i == k || rng.bernoulli(density_)) ? 1 : 0;
    for (int k = 0; k < nt; ++k)
      for (int j = 0; j < nt; ++j)
        b_mask_[static_cast<std::size_t>(k * nt + j)] =
            (k == j || rng.bernoulli(density_)) ? 1 : 0;
    a_tiles_.clear();
    b_tiles_.clear();
    for (int i = 0; i < nt; ++i)
      for (int k = 0; k < nt; ++k)
        if (a_mask_[static_cast<std::size_t>(i * nt + k)])
          a_tiles_.emplace(std::make_pair(i, k), linalg::random_tile(rng, bs_, bs_));
    for (int k = 0; k < nt; ++k)
      for (int j = 0; j < nt; ++j)
        if (b_mask_[static_cast<std::size_t>(k * nt + j)])
          b_tiles_.emplace(std::make_pair(k, j), linalg::random_tile(rng, bs_, bs_));

    // Every C(i,j) with at least one product gets a declared stream size.
    const int base = epoch_ * nt;
    std::vector<std::pair<Int2, std::int64_t>> sizes;
    for (int i = 0; i < nt; ++i) {
      for (int j = 0; j < nt; ++j) {
        std::int64_t cnt = 0;
        for (int k = 0; k < nt; ++k)
          if (a_mask_[static_cast<std::size_t>(i * nt + k)] &&
              b_mask_[static_cast<std::size_t>(k * nt + j)])
            ++cnt;
        if (cnt > 0) sizes.emplace_back(Int2{base + i, j}, cnt);
      }
    }
    begin_run(static_cast<int>(sizes.size()), std::move(on_done));
    for (const auto& [k2, cnt] : sizes) set_size_(k2, cnt);
    inject_();
  }

 private:
  rt::World& world_;
  int nt_;
  int bs_;
  double density_;
  int epoch_ = 0;  ///< run counter; packed into key i-components
  std::vector<char> a_mask_, b_mask_;  ///< this run's sparsity (row-major)
  std::map<std::pair<int, int>, Tile> a_tiles_, b_tiles_;
  std::function<void(const Int2&, std::int64_t)> set_size_;
  std::function<void()> inject_;
};

}  // namespace

std::shared_ptr<JobGraph> make_graph(rt::World& world, const rt::GraphKey& key) {
  if (key.kind == "potrf") return std::make_shared<PotrfServeGraph>(world, key);
  if (key.kind == "fw") return std::make_shared<FwServeGraph>(world, key);
  if (key.kind == "bspmm") return std::make_shared<BspmmServeGraph>(world, key);
  TTG_CHECK(false, "unknown job graph kind '" + key.kind + "'");
  return nullptr;
}

std::shared_ptr<JobGraph> acquire_graph(rt::World& world, const rt::GraphKey& key) {
  return world.jobs().cache().acquire<JobGraph>(
      key, [&world, &key]() { return make_graph(world, key); });
}

void release_graph(rt::World& world, std::shared_ptr<JobGraph> g) {
  TTG_CHECK(g != nullptr && !g->running(),
            "releasing a null or still-running job graph");
  const rt::GraphKey key = g->key();
  world.jobs().cache().release<JobGraph>(key, std::move(g));
}

}  // namespace ttg::apps::serve
