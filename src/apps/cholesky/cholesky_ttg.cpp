#include "apps/cholesky/cholesky_ttg.hpp"

#include <functional>

#include "linalg/kernels.hpp"
#include "ttg/ttg.hpp"

namespace ttg::apps::cholesky {

using linalg::Tile;
using linalg::TiledMatrix;

double flop_count(int n) { return n / 3.0 * n * n; }

namespace {

/// Device datum for factor tile (i,j): the logical tile coordinate is the
/// residency tag, so a tile a device task wrote stays resident for the
/// later kernels that read it on the same rank.
rt::DeviceDatum tile_datum(int i, int j, const Tile& t, bool write) {
  rt::DeviceDatum d;
  d.tag = (static_cast<std::uint64_t>(static_cast<std::uint32_t>(i)) << 32) |
          static_cast<std::uint32_t>(j);
  d.bytes = static_cast<std::uint64_t>(t.rows()) * static_cast<std::uint64_t>(t.cols()) *
            sizeof(double);
  d.write = write;
  return d;
}

/// Shared graph construction: the input matrix is abstracted as a tile
/// source so callers can feed either a materialized TiledMatrix or
/// on-demand ghost synthesis (run_ghost) through the identical task graph.
Result run_impl(rt::World& world, int n, int bs,
                const std::function<Tile(int, int)>& tile_src, const Options& opt) {
  const int nt = (n + bs - 1) / bs;
  const auto& machine = world.machine();
  const Keymap2D dist =
      make_keymap2d(opt.keymap, world.nranks(), world.config().ranks_per_node);

  /* Edges, named as in Listing 1. Key types encode what the paper calls
     1-, 2-, and 3-tuple task IDs. */
  Edge<Int1, Tile> to_potrf("to_potrf");
  Edge<Int2, Tile> potrf_trsm("potrf_trsm");
  Edge<Int2, Tile> to_trsm("to_trsm");  // tile (m,k) from INITIATOR or GEMM
  Edge<Int2, Tile> trsm_syrk("trsm_syrk");
  Edge<Int2, Tile> to_syrk("to_syrk");  // diagonal tile chain
  Edge<Int3, Tile> trsm_gemm_row("trsm_gemm_row");
  Edge<Int3, Tile> trsm_gemm_col("trsm_gemm_col");
  Edge<Int3, Tile> to_gemm("to_gemm");  // off-diagonal tile chain
  Edge<Int2, Tile> result("result");

  /* POTRF(k): factor the diagonal tile, broadcast L(k,k) down its column
     of TRSMs, and emit the final tile. */
  auto potrf_fn = [nt](const Int1& key, Tile& tile_kk,
                       std::tuple<Out<Int2, Tile>, Out<Int2, Tile>>& out) {
    const int k = key.i;
    TTG_CHECK(linalg::potrf(tile_kk), "matrix is not SPD");
    std::vector<Int2> trsm_ids;
    for (int m = k + 1; m < nt; ++m) trsm_ids.push_back(Int2{m, k});
    ttg::send<0>(Int2{k, k}, tile_kk, out);  // RESULT
    ttg::broadcast<1>(trsm_ids, tile_kk, out);
  };
  auto potrf_tt = make_tt(world, potrf_fn, edges(to_potrf),
                          edges(result, potrf_trsm), "POTRF");

  /* TRSM(m,k): solve the panel tile, then broadcast it to 4 terminals in
     one call exactly as in Listing 1: RESULT, SYRK, GEMM row, GEMM col. */
  auto trsm_fn = [nt](const Int2& key, Tile& tile_kk, Tile& tile_mk,
                      std::tuple<Out<Int2, Tile>, Out<Int2, Tile>, Out<Int3, Tile>,
                                 Out<Int3, Tile>>& out) {
    const auto [m, k] = key;
    linalg::trsm(tile_kk, tile_mk);
    std::vector<Int3> row_ids, col_ids;
    /* ids for gemms in row m */
    for (int n = k + 1; n < m; ++n) row_ids.push_back(Int3{m, n, k});
    /* ids for gemms in column m */
    for (int i = m + 1; i < nt; ++i) col_ids.push_back(Int3{i, m, k});
    /* broadcast the result to 4 output terminals:
       0: to the final output task writing back the tile;
       1: to the SYRK kernel;
       2: to the gemm tasks in row m;
       3: to the gemm tasks in column m */
    ttg::broadcast<0, 1, 2, 3>(
        std::make_tuple(Int2{m, k}, Int2{k, m}, row_ids, col_ids), tile_mk, out);
  };
  auto trsm_tt =
      make_tt(world, trsm_fn, edges(potrf_trsm, to_trsm),
              edges(result, trsm_syrk, trsm_gemm_row, trsm_gemm_col), "TRSM");

  /* SYRK(k,m): C(m,m) -= L(m,k) L(m,k)^T; chain to the next SYRK of the
     same diagonal tile, or to POTRF(m) when this was the last update. */
  auto syrk_fn = [](const Int2& key, Tile& l_mk, Tile& c_mm,
                    std::tuple<Out<Int1, Tile>, Out<Int2, Tile>>& out) {
    const auto [k, m] = key;
    linalg::syrk(l_mk, c_mm);
    if (k == m - 1) {
      ttg::send<0>(Int1{m}, std::move(c_mm), out);  // ready for POTRF(m)
    } else {
      ttg::send<1>(Int2{k + 1, m}, std::move(c_mm), out);
    }
  };
  auto syrk_tt =
      make_tt(world, syrk_fn, edges(trsm_syrk, to_syrk), edges(to_potrf, to_syrk),
              "SYRK");

  /* GEMM(m,n,k): C(m,n) -= L(m,k) L(n,k)^T; chain to the next GEMM of the
     same tile, or to TRSM(m,n) when this was the last update. */
  auto gemm_fn = [](const Int3& key, Tile& l_mk, Tile& l_nk, Tile& c_mn,
                    std::tuple<Out<Int2, Tile>, Out<Int3, Tile>>& out) {
    const auto [m, n, k] = key;
    linalg::gemm_nt(c_mn, l_mk, l_nk);
    if (k == n - 1) {
      ttg::send<0>(Int2{m, n}, std::move(c_mn), out);  // ready for TRSM(m,n)
    } else {
      ttg::send<1>(Int3{m, n, k + 1}, std::move(c_mn), out);
    }
  };
  auto gemm_tt = make_tt(world, gemm_fn, edges(trsm_gemm_row, trsm_gemm_col, to_gemm),
                         edges(to_trsm, to_gemm), "GEMM");

  /* RESULT: write back the factor tiles (stays on the owning rank, as in
     the paper's distributed write-back). */
  TiledMatrix l_out;
  if (opt.collect) l_out = TiledMatrix(n, bs, /*allocate=*/false);
  auto result_tt = make_sink(world, result, [&](const Int2& key, Tile& t) {
    if (opt.collect) l_out.tile(key.i, key.j) = std::move(t);
  });

  /* Process maps: tasks run where the tile they write lives. */
  potrf_tt->set_keymap([dist](const Int1& k) { return dist.owner(k.i, k.i); });
  trsm_tt->set_keymap([dist](const Int2& k) { return dist.owner(k.i, k.j); });
  syrk_tt->set_keymap([dist](const Int2& k) { return dist.owner(k.j, k.j); });
  gemm_tt->set_keymap([dist](const Int3& k) { return dist.owner(k.i, k.j); });
  result_tt->set_keymap([dist](const Int2& k) { return dist.owner(k.i, k.j); });

  /* Priority map: drive the critical path — factor and solve panels of
     early iterations before trailing updates (lookahead). */
  if (opt.priorities) {
    potrf_tt->set_priomap([nt](const Int1& k) { return 3 * (nt - k.i); });
    trsm_tt->set_priomap([nt](const Int2& k) { return 2 * (nt - k.j); });
    syrk_tt->set_priomap([nt](const Int2& k) { return nt - k.i; });
    gemm_tt->set_priomap([nt](const Int3& k) { return nt - k.k; });
  }

  /* Cost maps: virtual kernel durations from analytic flop counts. */
  potrf_tt->set_costmap([&machine](const Int1&, const Tile& t) {
    return linalg::potrf_time(machine, t.rows());
  });
  trsm_tt->set_costmap([&machine](const Int2&, const Tile& lkk, const Tile& amk) {
    (void)lkk;
    return linalg::trsm_time(machine, amk.rows(), amk.cols());
  });
  syrk_tt->set_costmap([&machine](const Int2&, const Tile& l, const Tile& c) {
    return linalg::syrk_time(machine, c.rows(), l.cols());
  });
  gemm_tt->set_costmap(
      [&machine](const Int3&, const Tile& a_, const Tile& b_, const Tile& c_) {
        (void)b_;
        return linalg::gemm_time(machine, c_.rows(), c_.cols(), a_.cols());
      });

  /* Device variants (op_cuda shape): TRSM/SYRK/GEMM gain simulated-GPU
     kernels; POTRF's square-root-heavy panel math stays host-only, as it
     does in GPU-accelerated tiled Cholesky. Registered only when the world
     actually runs a device placement, so Off stays bit-identical. */
  if (world.config().device != rt::DevicePlacement::Off) {
    trsm_tt->set_device_op(
        [&machine](const Int2& key, const Tile& lkk, const Tile& amk) {
          rt::DeviceCall dc;
          dc.cost = linalg::gpu_trsm_time(machine, amk.rows(), amk.cols());
          dc.datums = {tile_datum(key.j, key.j, lkk, /*write=*/false),
                       tile_datum(key.i, key.j, amk, /*write=*/true)};
          return dc;
        });
    syrk_tt->set_device_op(
        [&machine](const Int2& key, const Tile& l_mk, const Tile& c_mm) {
          rt::DeviceCall dc;
          dc.cost = linalg::gpu_syrk_time(machine, c_mm.rows(), l_mk.cols());
          dc.datums = {tile_datum(key.j, key.i, l_mk, /*write=*/false),
                       tile_datum(key.j, key.j, c_mm, /*write=*/true)};
          return dc;
        });
    gemm_tt->set_device_op([&machine](const Int3& key, const Tile& l_mk,
                                      const Tile& l_nk, const Tile& c_mn) {
      rt::DeviceCall dc;
      dc.cost = linalg::gpu_gemm_time(machine, c_mn.rows(), c_mn.cols(), l_mk.cols());
      dc.datums = {tile_datum(key.i, key.k, l_mk, /*write=*/false),
                   tile_datum(key.j, key.k, l_nk, /*write=*/false),
                   tile_datum(key.i, key.j, c_mn, /*write=*/true)};
      return dc;
    });
  }

  make_graph_executable(*potrf_tt);
  make_graph_executable(*trsm_tt);
  make_graph_executable(*syrk_tt);
  make_graph_executable(*gemm_tt);
  make_graph_executable(*result_tt);

  /* INITIATOR: inject every tile of the lower triangle on its owner rank.
     "The INITIATOR operation is responsible for providing input to tasks
     that have no direct predecessor in the algorithm." (Fig. 1.) */
  auto init_fn = [&tile_src](const Int2& key,
                             std::tuple<Out<Int1, Tile>, Out<Int2, Tile>,
                                        Out<Int2, Tile>, Out<Int3, Tile>>& out) {
    const auto [m, n] = key;
    Tile t = tile_src(m, n);
    if (m == 0 && n == 0) {
      ttg::send<0>(Int1{0}, std::move(t), out);  // POTRF(0)
    } else if (m == n) {
      ttg::send<2>(Int2{0, m}, std::move(t), out);  // SYRK chain start
    } else if (n == 0) {
      ttg::send<1>(Int2{m, 0}, std::move(t), out);  // TRSM(m,0)
    } else {
      ttg::send<3>(Int3{m, n, 0}, std::move(t), out);  // GEMM chain start
    }
  };
  auto init_tt = make_tt<Int2>(world, init_fn, std::tuple<>{},
                               edges(to_potrf, to_trsm, to_syrk, to_gemm), "INITIATOR");
  init_tt->set_keymap([dist](const Int2& k) { return dist.owner(k.i, k.j); });
  make_graph_executable(*init_tt);

  const double t0 = world.engine().now();
  for (int m = 0; m < nt; ++m)
    for (int n = 0; n <= m; ++n) init_tt->invoke(Int2{m, n});
  const double t1 = world.fence();

  TTG_CHECK(world.unfinished() == 0, "cholesky graph did not quiesce");

  Result res;
  res.makespan = t1 - t0;
  res.gflops = flop_count(n) / res.makespan / 1e9;
  res.tasks = potrf_tt->tasks_executed() + trsm_tt->tasks_executed() +
              syrk_tt->tasks_executed() + gemm_tt->tasks_executed();
  res.matrix = std::move(l_out);
  return res;
}

}  // namespace

Result run(rt::World& world, const TiledMatrix& a, const Options& opt) {
  return run_impl(
      world, a.n(), a.block(), [&a](int i, int j) { return a.tile(i, j); }, opt);
}

Result run_ghost(rt::World& world, int n, int bs, const Options& opt) {
  Options o = opt;
  o.collect = false;  // nothing to collect: inputs are synthesized ghosts
  return run_impl(
      world, n, bs, [n, bs](int i, int j) { return linalg::ghost_tile(n, bs, i, j); },
      o);
}

}  // namespace ttg::apps::cholesky
