// TTG implementation of dense tiled Cholesky factorization (Section III-B,
// Fig. 1, Listing 1 of the paper).
//
// The template task graph has four compute task templates plus data in/out:
//
//   INITIATOR --> POTRF(k)    : factor diagonal tile (k,k)
//             \-> TRSM(m,k)   : panel solve, tile (m,k) against L(k,k)
//             \-> SYRK(k,m)   : diagonal update C(m,m) -= L(m,k) L(m,k)^T
//             \-> GEMM(m,n,k) : trailing update C(m,n) -= L(m,k) L(n,k)^T
//   POTRF, TRSM --> RESULT    : write back final L tiles
//
// TRSM uses the paper's 4-terminal ttg::broadcast (Listing 1, lines 37-39)
// to feed the result tile to RESULT, SYRK, and the GEMM row/column in one
// call. Tasks are placed 2D block-cyclically and prioritized by iteration
// (lookahead: early panels run ahead of trailing updates).
#pragma once

#include <cstdint>

#include "linalg/dist.hpp"
#include "linalg/matrix_gen.hpp"
#include "runtime/world.hpp"
#include "ttg/keymaps.hpp"

namespace ttg::apps::cholesky {

struct Options {
  bool collect = true;      ///< gather the factored tiles into Result::matrix
  bool priorities = true;   ///< use the lookahead priority map (ablation knob)
  /// Task/tile placement: cyclic (historical), or a node-aware layout built
  /// on WorldConfig::ranks_per_node (see ttg/keymaps.hpp).
  KeymapKind keymap = KeymapKind::Cyclic;
};

struct Result {
  double makespan = 0.0;    ///< seconds of virtual time for the factorization
  double gflops = 0.0;      ///< analytic n^3/3 flops over makespan
  std::uint64_t tasks = 0;  ///< task bodies executed
  linalg::TiledMatrix matrix;  ///< factored L (valid if Options::collect)
};

/// Analytic flop count of an n x n Cholesky factorization.
[[nodiscard]] double flop_count(int n);

/// Factor `a` (SPD, real or ghost tiles) on the given world; returns the
/// lower-triangular factor and timing. The world is fenced internally.
Result run(rt::World& world, const linalg::TiledMatrix& a, const Options& opt = {});

/// Factor an n x n ghost problem without materializing any tile container:
/// input tiles are synthesized on demand (linalg::ghost_tile) when the
/// INITIATOR fires on the owner rank, and the factor is never collected
/// (Result::matrix stays empty; Options::collect is ignored). Host state is
/// therefore O(1) per live task instead of O(ntiles^2) per problem — this is
/// what lets bench/scale_engine sweep thousands of simulated ranks with flat
/// peak RSS per rank. Bit-identical to run(world, ghost_matrix(n, bs), opt).
Result run_ghost(rt::World& world, int n, int bs, const Options& opt = {});

}  // namespace ttg::apps::cholesky
