// Simulated interconnect.
//
// Models the fabric the paper's runtimes used (Open MPI/UCX on Hawk, Intel
// MPI on Seawulf) at the protocol level the TTG backends care about:
//
//   * eager sends     — one transfer charged to sender NIC, fabric, receiver
//                       NIC; used for small messages and AM control traffic.
//   * rendezvous      — RTS/CTS handshake (two latencies) before the payload
//                       transfer; used for large two-sided messages (the
//                       MADNESS backend's whole-object sends).
//   * RMA get         — the receiver pulls registered memory one-sidedly;
//                       used by the PaRSEC backend's split-metadata protocol.
//
// Contention model: each rank owns a send NIC and a receive NIC (FIFO
// servers at the injection bandwidth); transfers whose endpoints fall in
// different halves of the rank space additionally occupy a shared bisection
// resource whose capacity is bisection_factor * (R/2) * nic_bw. This is
// what lets the 2.5D SUMMA comparator (DBCSR) keep scaling at 256 nodes
// while the 2D SUMMA TTG implementation becomes communication-bound, as in
// Fig. 12 of the paper.
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "sim/engine.hpp"
#include "sim/fault.hpp"
#include "sim/machine.hpp"
#include "sim/resource.hpp"

namespace ttg::net {

/// Aggregate traffic counters, queryable after a run.
struct NetStats {
  std::uint64_t messages = 0;     ///< payload-bearing transfers
  std::uint64_t control_msgs = 0; ///< RTS/CTS/notify/AM-control messages
  std::uint64_t bytes = 0;        ///< payload bytes on the wire
  std::uint64_t rma_gets = 0;     ///< one-sided fetches
  // --- fault-injection accounting (zero on an unperturbed fabric) ---
  std::uint64_t drops = 0;         ///< transfers lost in the fabric
  std::uint64_t dropped_bytes = 0; ///< payload bytes those drops carried
  std::uint64_t duplicates = 0;    ///< transfers delivered twice
  std::uint64_t rma_delays = 0;    ///< delayed RMA completions injected
};

/// Node count up to which the fabric provides its full (scaled) bisection;
/// larger partitions span switch groups with oversubscribed uplinks.
inline constexpr int kFullBisectionEndpoints = 128;

/// Point-to-point simulated network among `nranks` endpoints.
class Network {
 public:
  Network(sim::Engine& engine, const sim::MachineModel& machine, int nranks);

  /// Two-sided send: picks eager or rendezvous by size against the
  /// machine's eager threshold. `on_delivered` fires at the receiver once
  /// the payload has fully arrived.
  void send(int src, int dst, std::size_t nbytes, std::function<void()> on_delivered);

  /// Force the eager path regardless of size (control/AM messages).
  void send_eager(int src, int dst, std::size_t nbytes, std::function<void()> on_delivered);

  /// Force the rendezvous path.
  void send_rendezvous(int src, int dst, std::size_t nbytes,
                       std::function<void()> on_delivered);

  /// One-sided get: `dst` fetches `nbytes` of registered memory from `src`.
  /// `on_done` fires at `dst` when the data has landed; `on_remote_complete`
  /// (optional) fires at `src` when the remote completion notification
  /// arrives (the PaRSEC backend uses it to release the source object).
  void rma_get(int src, int dst, std::size_t nbytes, std::function<void()> on_done,
               std::function<void()> on_remote_complete = {});

  [[nodiscard]] const NetStats& stats() const { return stats_; }
  [[nodiscard]] int nranks() const { return static_cast<int>(send_nic_.size()); }
  [[nodiscard]] const sim::MachineModel& machine() const { return machine_; }

  /// Observe every payload transfer: called as (src, dst, bytes, t_inject,
  /// t_delivered) when the transfer completes. The runtime's tracer uses
  /// this to record wire-occupancy spans without the network layer knowing
  /// about tracing.
  using TransferObserver =
      std::function<void(int, int, std::size_t, sim::Time, sim::Time)>;
  void set_transfer_observer(TransferObserver obs) { observer_ = std::move(obs); }

  /// Arm fault injection for this fabric (call before any traffic). With no
  /// plan configured every fault branch is skipped, so unperturbed runs are
  /// bit-identical to a build without the fault layer.
  void configure_faults(const sim::FaultPlan& plan);
  [[nodiscard]] bool faults_active() const { return faults_ != nullptr; }
  [[nodiscard]] const sim::FaultInjector* faults() const { return faults_.get(); }

  /// Observe injected faults: called as (kind, src, dst, bytes) at the
  /// virtual instant the fault decision is made. The tracer records these
  /// as first-class events without the network knowing about tracing.
  using FaultObserver = std::function<void(sim::FaultKind, int, int, std::size_t)>;
  void set_fault_observer(FaultObserver obs) { fault_observer_ = std::move(obs); }

  /// Busy time of rank r's send NIC (utilization accounting for benches).
  [[nodiscard]] sim::Time nic_busy(int rank) const { return send_nic_[rank]->busy_time(); }

  /// Busy time of rank r's receive NIC. The owner-side load of a
  /// many-to-one streaming reduction lands here: flat routing funnels every
  /// contribution through the owner's receive NIC, tree routing only the
  /// O(arity) combined partials (bench/ablation_reduce).
  [[nodiscard]] sim::Time nic_recv_busy(int rank) const {
    return recv_nic_[static_cast<std::size_t>(rank)]->busy_time();
  }

  /// Number of transfers rank r's send NIC injected (payload + control).
  /// The tree-broadcast tests and ablation use this to show the root's
  /// injection count dropping from O(R) to O(arity) per broadcast.
  [[nodiscard]] std::uint64_t nic_sends(int rank) const {
    return nic_sends_[static_cast<std::size_t>(rank)];
  }

 private:
  /// Charge one payload transfer src->dst through NICs (+ bisection when
  /// the endpoints are in different halves), then fire `on_delivered`.
  /// On a sharded engine with faults enabled the initiation detours through
  /// Engine::shared() so seeded drop/duplicate draws consume their global
  /// ordinals in exact serial order.
  void transfer(int src, int dst, std::size_t nbytes, std::function<void()> on_delivered);
  void transfer_impl(int src, int dst, std::size_t nbytes,
                     std::function<void()> on_delivered);
  void rma_get_impl(int src, int dst, std::size_t nbytes, std::function<void()> on_done,
                    std::function<void()> on_remote_complete);

  [[nodiscard]] bool crosses_bisection(int src, int dst) const;

  sim::Engine& engine_;
  sim::MachineModel machine_;
  std::vector<std::unique_ptr<sim::FifoResource>> send_nic_;
  std::vector<std::unique_ptr<sim::FifoResource>> recv_nic_;
  std::vector<std::uint64_t> nic_sends_;  ///< transfers injected per rank
  std::unique_ptr<sim::FifoResource> bisection_;
  double bisection_bw_ = 0.0;
  NetStats stats_;
  TransferObserver observer_;
  std::unique_ptr<sim::FaultInjector> faults_;
  FaultObserver fault_observer_;
};

}  // namespace ttg::net
