#include "net/network.hpp"

#include <string>

namespace ttg::net {

Network::Network(sim::Engine& engine, const sim::MachineModel& machine, int nranks)
    : engine_(engine), machine_(machine) {
  TTG_CHECK(nranks >= 1, "network needs at least one rank");
  send_nic_.reserve(static_cast<std::size_t>(nranks));
  recv_nic_.reserve(static_cast<std::size_t>(nranks));
  nic_sends_.assign(static_cast<std::size_t>(nranks), 0);
  for (int r = 0; r < nranks; ++r) {
    send_nic_.push_back(
        std::make_unique<sim::FifoResource>(engine, "snic" + std::to_string(r)));
    recv_nic_.push_back(
        std::make_unique<sim::FifoResource>(engine, "rnic" + std::to_string(r)));
  }
  // Shared bisection capacity: half the endpoints can simultaneously push
  // a bisection_factor share of their injection bandwidth across the cut.
  // Beyond kFullBisectionEndpoints nodes the partition spans multiple
  // switch groups and the cross-section stops growing linearly — the
  // effect that favors communication-reducing (2.5D) algorithms at scale
  // (Fig. 12 discussion in the paper).
  const double eff_nodes =
      nranks > 1 ? std::min<double>(nranks, kFullBisectionEndpoints) / 2.0 : 1.0;
  bisection_bw_ = machine_.bisection_factor * eff_nodes * machine_.nic_bw;
  bisection_ = std::make_unique<sim::FifoResource>(engine, "bisection");
}

bool Network::crosses_bisection(int src, int dst) const {
  const int half = nranks() / 2;
  if (half == 0) return false;
  return (src < half) != (dst < half);
}

void Network::configure_faults(const sim::FaultPlan& plan) {
  TTG_CHECK(stats_.messages == 0, "configure_faults after traffic started");
  faults_ = plan.enabled() ? std::make_unique<sim::FaultInjector>(plan) : nullptr;
}

void Network::transfer(int src, int dst, std::size_t nbytes,
                       std::function<void()> on_delivered) {
  if (faults_ != nullptr && engine_.sharded()) {
    // Fault draws (drop/duplicate) consume ordinals from one seeded global
    // stream, so initiation order must match the serial engine exactly:
    // route it through the shared lane, where it replays in serial (time,
    // key) order at the epoch barrier. Nested transfers (rendezvous legs,
    // RMA control) re-enter here already inside the replay and run inline.
    engine_.shared([this, src, dst, nbytes,
                    cb = std::move(on_delivered)]() mutable {
      transfer_impl(src, dst, nbytes, std::move(cb));
    });
    return;
  }
  transfer_impl(src, dst, nbytes, std::move(on_delivered));
}

void Network::transfer_impl(int src, int dst, std::size_t nbytes,
                            std::function<void()> on_delivered) {
  stats_.messages += 1;
  stats_.bytes += nbytes;
  nic_sends_[static_cast<std::size_t>(src)] += 1;
  double latency = machine_.net_latency;
  double wire = machine_.wire_time(nbytes);
  int deliveries = 1;
  if (faults_ != nullptr) {
    latency *= faults_->latency_factor(src, dst);
    const double bw = faults_->bw_factor(src, dst);
    if (bw != 1.0) wire /= bw;
    if (faults_->drop_payload()) {
      stats_.drops += 1;
      stats_.dropped_bytes += nbytes;
      if (fault_observer_) fault_observer_(sim::FaultKind::Drop, src, dst, nbytes);
      // The packet still left the host — charge the send NIC — but it dies
      // in the fabric: no bisection/receiver charges, no delivery.
      send_nic_[src]->submit(wire, [] {});
      return;
    }
    if (faults_->duplicate_payload()) {
      deliveries = 2;
      stats_.duplicates += 1;
      if (fault_observer_)
        fault_observer_(sim::FaultKind::Duplicate, src, dst, nbytes);
    }
  }
  if (observer_) {
    // Wrap delivery so the observer sees the full injection->delivery span.
    const sim::Time injected = engine_.now();
    on_delivered = [this, src, dst, nbytes, injected,
                    inner = std::move(on_delivered)]() mutable {
      observer_(src, dst, nbytes, injected, engine_.now());
      inner();
    };
  }
  // Duplication delivers the same callback twice; share it among copies.
  auto cb = std::make_shared<std::function<void()>>(std::move(on_delivered));
  const bool cross = crosses_bisection(src, dst);
  // Pipeline: sender NIC -> (bisection) -> propagation latency -> recv NIC.
  send_nic_[src]->submit(wire, [this, src, dst, nbytes, cross, wire, latency,
                                deliveries, cb]() {
    auto deliver = [this, dst, wire, latency, deliveries, cb]() {
      for (int i = 0; i < deliveries; ++i) {
        // Deliveries land on the destination rank's lane. The propagation
        // latency is what bounds the sharded engine's lookahead, so this
        // cross-lane event always clears the current epoch window.
        engine_.after_on(engine_.lane_of(dst), latency, [this, dst, wire, cb]() {
          recv_nic_[dst]->submit(wire, [cb]() { (*cb)(); });
        });
      }
    };
    if (cross) {
      // The bisection FIFO is shared by every rank pair that spans the cut:
      // occupancy must accrue in serial request order, so the submit is a
      // shared-lane transaction (a plain inline call on the serial engine).
      const double fabric = static_cast<double>(nbytes) / bisection_bw_;
      engine_.shared([this, fabric, deliver = std::move(deliver)]() mutable {
        bisection_->submit(fabric, std::move(deliver));
      });
    } else {
      deliver();
    }
  });
  (void)src;
}

void Network::send(int src, int dst, std::size_t nbytes,
                   std::function<void()> on_delivered) {
  if (nbytes <= machine_.eager_threshold) {
    send_eager(src, dst, nbytes, std::move(on_delivered));
  } else {
    send_rendezvous(src, dst, nbytes, std::move(on_delivered));
  }
}

void Network::send_eager(int src, int dst, std::size_t nbytes,
                         std::function<void()> on_delivered) {
  transfer(src, dst, nbytes, std::move(on_delivered));
}

void Network::send_rendezvous(int src, int dst, std::size_t nbytes,
                              std::function<void()> on_delivered) {
  // RTS (src->dst) and CTS (dst->src) are latency-bound control messages;
  // we charge them as two extra latencies plus tiny NIC occupancy.
  stats_.control_msgs += 2;
  constexpr std::size_t kCtrlBytes = 64;
  transfer(src, dst, kCtrlBytes, [this, src, dst, nbytes,
                                  on_delivered = std::move(on_delivered)]() mutable {
    transfer(dst, src, kCtrlBytes, [this, src, dst, nbytes,
                                    on_delivered = std::move(on_delivered)]() mutable {
      transfer(src, dst, nbytes, std::move(on_delivered));
    });
  });
}

void Network::rma_get(int src, int dst, std::size_t nbytes, std::function<void()> on_done,
                      std::function<void()> on_remote_complete) {
  if (faults_ != nullptr && engine_.sharded()) {
    // Like transfer(): the rma_extra_delay draw consumes a global ordinal,
    // so initiation replays through the shared lane in serial order.
    engine_.shared([this, src, dst, nbytes, on_done = std::move(on_done),
                    orc = std::move(on_remote_complete)]() mutable {
      rma_get_impl(src, dst, nbytes, std::move(on_done), std::move(orc));
    });
    return;
  }
  rma_get_impl(src, dst, nbytes, std::move(on_done), std::move(on_remote_complete));
}

void Network::rma_get_impl(int src, int dst, std::size_t nbytes,
                           std::function<void()> on_done,
                           std::function<void()> on_remote_complete) {
  stats_.rma_gets += 1;
  if (faults_ != nullptr) {
    // Delayed RMA completion: the payload lands, but the completion event
    // reaches the fetching rank late (NIC completion-queue hiccup).
    const double extra = faults_->rma_extra_delay();
    if (extra > 0.0) {
      stats_.rma_delays += 1;
      if (fault_observer_) fault_observer_(sim::FaultKind::RmaDelay, src, dst, nbytes);
      on_done = [this, extra, inner = std::move(on_done)]() mutable {
        engine_.after(extra, std::move(inner));
      };
    }
  }
  // The get request travels dst->src as a control message, then the payload
  // flows src->dst without CPU involvement on either side, then (optionally)
  // a completion notification flows dst->src.
  stats_.control_msgs += 1;
  constexpr std::size_t kCtrlBytes = 64;
  transfer(dst, src, kCtrlBytes, [this, src, dst, nbytes, on_done = std::move(on_done),
                                  on_remote_complete =
                                      std::move(on_remote_complete)]() mutable {
    transfer(src, dst, nbytes, [this, src, dst, on_done = std::move(on_done),
                                on_remote_complete =
                                    std::move(on_remote_complete)]() mutable {
      on_done();
      if (on_remote_complete) {
        stats_.control_msgs += 1;
        transfer(dst, src, kCtrlBytes, std::move(on_remote_complete));
      }
    });
  });
}

}  // namespace ttg::net
