// Floyd-Warshall tile kernels A/B/C/D (Fig. 7 of the paper).
//
// In the single-level tiled FW-APSP algorithm, round k updates every tile
// using tile row k and tile column k as "via" paths:
//
//   A : the diagonal tile (k,k) runs a self-dependent FW over its own vias;
//   B : row-panel tile (k,j) updates in place against the finished A tile;
//   C : column-panel tile (i,k) updates in place against the A tile;
//   D : interior tile (i,j) takes one min-plus product of the finished
//       C tile (i,k) and B tile (k,j).
//
// A/B/C are order-sensitive (each via row/column must see earlier updates),
// so they are dedicated loops rather than plain min-plus products. Ghost
// tiles combine signatures as usual.
#pragma once

#include "linalg/tile.hpp"
#include "sim/machine.hpp"

namespace ttg::graph {

/// Kernel A: in-place FW of the diagonal tile.
void fw_a(linalg::Tile& w);

/// Kernel B: row panel W(k,j) := FW-update via diagonal tile `a` (left).
void fw_b(linalg::Tile& w, const linalg::Tile& a);

/// Kernel C: column panel W(i,k) := FW-update via diagonal tile `a` (right).
void fw_c(linalg::Tile& w, const linalg::Tile& a);

/// Kernel D: interior tile W(i,j) := min(W, col ⊕ row) — a min-plus product
/// with the finished column tile (i,k) and row tile (k,j).
void fw_d(linalg::Tile& w, const linalg::Tile& col, const linalg::Tile& row);

/// Virtual duration of any FW kernel on an m x n tile with b vias.
[[nodiscard]] double fw_time(const sim::MachineModel& machine, int m, int n, int b);

}  // namespace ttg::graph
