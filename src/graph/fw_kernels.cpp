#include "graph/fw_kernels.hpp"

#include <algorithm>

#include "linalg/kernels.hpp"

namespace ttg::graph {

using linalg::Tile;

void fw_a(Tile& w) {
  TTG_CHECK(w.rows() == w.cols(), "fw_a needs a square tile");
  if (w.is_ghost()) {
    w.set_signature(linalg::combine_sig(w.signature(), 0, /*tag=*/10));
    return;
  }
  const int n = w.rows();
  for (int k = 0; k < n; ++k)
    for (int j = 0; j < n; ++j) {
      const double wkj = w(k, j);
      for (int i = 0; i < n; ++i) w(i, j) = std::min(w(i, j), w(i, k) + wkj);
    }
}

void fw_b(Tile& w, const Tile& a) {
  TTG_CHECK(a.rows() == a.cols() && a.cols() == w.rows(), "fw_b shape mismatch");
  if (w.is_ghost() || a.is_ghost()) {
    w.set_signature(linalg::combine_sig(w.signature(), a.signature(), /*tag=*/11));
    return;
  }
  const int b = a.rows();
  const int n = w.cols();
  // vias run over the diagonal tile; row k' of w updates in place and is
  // visible to later vias.
  for (int k = 0; k < b; ++k)
    for (int j = 0; j < n; ++j) {
      const double wkj = w(k, j);
      for (int i = 0; i < b; ++i) w(i, j) = std::min(w(i, j), a(i, k) + wkj);
    }
}

void fw_c(Tile& w, const Tile& a) {
  TTG_CHECK(a.rows() == a.cols() && a.rows() == w.cols(), "fw_c shape mismatch");
  if (w.is_ghost() || a.is_ghost()) {
    w.set_signature(linalg::combine_sig(w.signature(), a.signature(), /*tag=*/12));
    return;
  }
  const int b = a.rows();
  const int m = w.rows();
  for (int k = 0; k < b; ++k)
    for (int j = 0; j < b; ++j) {
      const double akj = a(k, j);
      for (int i = 0; i < m; ++i) w(i, j) = std::min(w(i, j), w(i, k) + akj);
    }
}

void fw_d(Tile& w, const Tile& col, const Tile& row) {
  linalg::minplus(w, col, row);
}

double fw_time(const sim::MachineModel& machine, int m, int n, int b) {
  return linalg::minplus_time(machine, m, n, b);
}

}  // namespace ttg::graph
