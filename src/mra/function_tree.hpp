// Function-tree types and adaptive projection math for the MRA benchmark
// (Section III-E).
//
// Each 3-D Gaussian test function is represented on an adaptive dyadic tree
// over the unit cube: a node at (level n, translation l) covers the box
// [l 2^-n, (l+1) 2^-n)^3 and, if it is a leaf, carries k^3 scaling
// coefficients. The workload is the paper's: Gaussians with large exponents
// and random centers, whose trees refine ~6+ levels around the center and
// cluster wherever the centers cluster (the load imbalance the benchmark is
// about).
#pragma once

#include <array>
#include <cstdint>
#include <unordered_map>
#include <vector>

#include "mra/legendre.hpp"
#include "mra/twoscale.hpp"
#include "serialization/traits.hpp"
#include "support/hash.hpp"
#include "support/rng.hpp"

namespace ttg::mra {

/// Task ID of a tree node: function id + dyadic box.
struct TreeKey {
  int fid = 0;
  int level = 0;
  int lx = 0, ly = 0, lz = 0;

  auto operator<=>(const TreeKey&) const = default;

  [[nodiscard]] TreeKey child(int c) const {
    return TreeKey{fid, level + 1, 2 * lx + (c & 1), 2 * ly + ((c >> 1) & 1),
                   2 * lz + ((c >> 2) & 1)};
  }
  [[nodiscard]] TreeKey parent() const {
    return TreeKey{fid, level - 1, lx / 2, ly / 2, lz / 2};
  }
  /// Which child of its parent this node is (bit order z|y|x).
  [[nodiscard]] int child_index() const {
    return (lx & 1) | ((ly & 1) << 1) | ((lz & 1) << 2);
  }
  /// Ancestor at `target` level (or the key itself if already coarser).
  [[nodiscard]] TreeKey ancestor_at(int target) const {
    TreeKey a = *this;
    while (a.level > target) a = a.parent();
    return a;
  }

  [[nodiscard]] std::uint64_t hash() const {
    std::uint64_t h = static_cast<std::uint64_t>(fid) * 0x9e3779b97f4a7c15ull;
    support::hash_combine(h, static_cast<std::uint64_t>(level));
    support::hash_combine(h, static_cast<std::uint64_t>(static_cast<std::uint32_t>(lx)));
    support::hash_combine(h, static_cast<std::uint64_t>(static_cast<std::uint32_t>(ly)));
    support::hash_combine(h, static_cast<std::uint64_t>(static_cast<std::uint32_t>(lz)));
    return h;
  }
};

/// Scaling-coefficient block (k^3 doubles) — the node payload flowing
/// through the MRA flowgraph. Supports the split-metadata protocol so the
/// PaRSEC backend moves it without serialization copies.
struct Coeffs {
  std::vector<double> v;

  [[nodiscard]] double norm2() const {
    double s = 0.0;
    for (double x : v) s += x * x;
    return s;
  }
  [[nodiscard]] std::size_t wire_bytes() const { return v.size() * sizeof(double); }

  template <typename Ar>
  void serialize(Ar& ar) {
    ar& v;
  }
};

/// One Gaussian: coeff * exp(-expnt |r - center|^2), center in the unit cube.
struct Gaussian {
  double expnt = 1.0e4;
  double coeff = 1.0;
  std::array<double, 3> center{0.5, 0.5, 0.5};

  [[nodiscard]] double eval(double x, double y, double z) const;
  /// Analytic squared L2 norm over R^3 (tails outside the cube negligible
  /// for the benchmark's exponents).
  [[nodiscard]] double norm2() const;
};

/// Random Gaussians "with centers distributed randomly" (Section III-E);
/// exponent in unit-cube coordinates.
[[nodiscard]] std::vector<Gaussian> random_gaussians(int n, double expnt,
                                                     std::uint64_t seed);

/// Hash functor for TreeKey-keyed containers.
struct KeyHashFwd {
  std::size_t operator()(const TreeKey& k) const {
    return static_cast<std::size_t>(k.hash());
  }
};

/// Shared math context: order, quadrature transforms, two-scale filters,
/// and the function set (one adaptive tree per Gaussian).
class MraContext {
 public:
  MraContext(int k, std::vector<Gaussian> functions);

  [[nodiscard]] int k() const { return twoscale_.k(); }
  [[nodiscard]] int nfunctions() const { return static_cast<int>(fns_.size()); }
  [[nodiscard]] const Gaussian& fn(int fid) const {
    return fns_[static_cast<std::size_t>(fid)];
  }
  [[nodiscard]] const TwoScale& twoscale() const { return twoscale_; }

  /// Scaling coefficients of function `fid` on the box of `key` by
  /// Gauss-Legendre quadrature (k points per dimension).
  [[nodiscard]] Coeffs project_box(const TreeKey& key) const;

  /// Memoize project_box results (benchmark convenience: strong-scaling
  /// sweeps re-project the same functions many times; the math runs once
  /// and later runs replay the cached coefficients). The simulator is
  /// single-threaded, so no synchronization is needed.
  void enable_projection_cache() const { cache_enabled_ = true; }

  /// Coefficients of all 8 children of `key`.
  [[nodiscard]] std::array<std::vector<double>, 8> project_children(
      const TreeKey& key) const;

  /// Full adaptive-projection step for one node: project the 8 children,
  /// filter to the parent scaling block, and measure the wavelet residual
  /// norm that drives refinement. Memoized when the projection cache is
  /// enabled (strong-scaling sweeps revisit identical nodes).
  struct NodeProjection {
    Coeffs parent;
    double dnorm2 = 0.0;
  };
  [[nodiscard]] NodeProjection project_node(const TreeKey& key) const;

  /// Forced refinement near the function's center ("special point"): a box
  /// much wider than the Gaussian's width sees zero at every quadrature
  /// point and would falsely report convergence, so projection must refine
  /// any box containing (or adjacent to) the center until the box width is
  /// comparable to the width 1/sqrt(2 expnt). This mirrors MADNESS's
  /// special-point refinement for narrow features.
  [[nodiscard]] bool must_refine(const TreeKey& key) const;

  /// Flop estimates for the cost model.
  [[nodiscard]] double project_flops() const;
  [[nodiscard]] double compress_flops() const;
  [[nodiscard]] double reconstruct_flops() const;

 private:
  [[nodiscard]] Coeffs project_box_uncached(const TreeKey& key) const;

  TwoScale twoscale_;
  Quadrature quad_;
  std::vector<double> phiw_;  // phi_i(x_q) * w_q, k x k row-major
  std::vector<Gaussian> fns_;
  [[nodiscard]] NodeProjection project_node_uncached(const TreeKey& key) const;

  mutable bool cache_enabled_ = false;
  mutable std::unordered_map<TreeKey, Coeffs, KeyHashFwd> cache_;
  mutable std::unordered_map<TreeKey, NodeProjection, KeyHashFwd> node_cache_;
};

}  // namespace ttg::mra

namespace ttg::ser {

template <>
struct SplitMetadata<mra::Coeffs> {
  struct metadata_type {
    std::uint64_t count = 0;
  };
  static metadata_type get_metadata(const mra::Coeffs& c) { return {c.v.size()}; }
  static mra::Coeffs create(const metadata_type& m) {
    mra::Coeffs c;
    c.v.resize(m.count);
    return c;
  }
  static std::size_t payload_bytes(const mra::Coeffs& c) { return c.wire_bytes(); }
  static std::span<const std::byte> payload(const mra::Coeffs& c) {
    return std::as_bytes(std::span<const double>(c.v));
  }
  static std::span<std::byte> payload(mra::Coeffs& c) {
    return std::as_writable_bytes(std::span<double>(c.v));
  }
};

}  // namespace ttg::ser
