// Two-scale relations of the multiwavelet scaling basis.
//
// The order-k scaling space on a box is a subspace of the scaling space on
// its 2 (per dimension) children. The matrices H0, H1 (k x k) express the
// parent basis in the child bases:
//
//   h0[i][j] = <phi_i, sqrt(2) phi_j(2x)>     on [0, 1/2]
//   h1[i][j] = <phi_i, sqrt(2) phi_j(2x-1)>   on [1/2, 1]
//
// Filtering (compress direction) projects child scaling coefficients onto
// the parent scaling space; unfiltering (reconstruct direction) is the
// adjoint. In d = 3 dimensions both are separable tensor applications of
// H0/H1 per dimension, chosen by the child's bit in that dimension. The
// residual of a child block after filter+unfilter is the wavelet
// ("difference") part — an overcomplete but orthogonal-complement
// representation of Alpert's multiwavelet coefficients with identical
// norms, which is what the compress/reconstruct/norm algorithms need.
#pragma once

#include <array>
#include <vector>

namespace ttg::mra {

/// Precomputed two-scale apparatus for order-k, dimension-3 MRA.
class TwoScale {
 public:
  explicit TwoScale(int k);

  [[nodiscard]] int k() const { return k_; }
  [[nodiscard]] int coeffs_per_node() const { return k_ * k_ * k_; }

  /// h[c] is the k x k matrix (row-major) for child half c in one dim.
  [[nodiscard]] const std::vector<double>& h(int c) const { return h_[c]; }

  /// Project the 8 child coefficient blocks (each k^3, indexed by child
  /// code bit order z|y|x) onto the parent scaling space.
  [[nodiscard]] std::vector<double> filter(
      const std::array<std::vector<double>, 8>& child_s) const;

  /// Parent coefficients -> the projection of child `c`'s block.
  [[nodiscard]] std::vector<double> unfilter_child(const std::vector<double>& parent_s,
                                                   int c) const;

  /// Flops of one filter or unfilter sweep (cost model).
  [[nodiscard]] double filter_flops() const;

 private:
  /// y = (H_{c0} ⊗ H_{c1} ⊗ H_{c2}) x with optional transpose.
  [[nodiscard]] std::vector<double> apply_tensor(const std::vector<double>& x, int cx,
                                                 int cy, int cz, bool transpose) const;

  int k_;
  std::array<std::vector<double>, 2> h_;
};

}  // namespace ttg::mra
