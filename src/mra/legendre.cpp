#include "mra/legendre.hpp"

#include <cmath>

#include "support/error.hpp"

namespace ttg::mra {

void legendre(double x, int k, double* p) {
  if (k <= 0) return;
  p[0] = 1.0;
  if (k == 1) return;
  p[1] = x;
  for (int j = 1; j + 1 < k; ++j) {
    p[j + 1] = ((2 * j + 1) * x * p[j] - j * p[j - 1]) / (j + 1);
  }
}

void scaling_functions(double x, int k, double* phi) {
  legendre(2.0 * x - 1.0, k, phi);
  for (int j = 0; j < k; ++j) phi[j] *= std::sqrt(2.0 * j + 1.0);
}

Quadrature gauss_legendre(int n) {
  TTG_CHECK(n >= 1, "quadrature needs at least one point");
  Quadrature q;
  q.x.resize(static_cast<std::size_t>(n));
  q.w.resize(static_cast<std::size_t>(n));
  // Roots of P_n on [-1,1] via Newton from Chebyshev initial guesses.
  std::vector<double> p(static_cast<std::size_t>(n) + 1);
  for (int i = 0; i < n; ++i) {
    double x = std::cos(M_PI * (i + 0.75) / (n + 0.5));
    for (int iter = 0; iter < 100; ++iter) {
      legendre(x, n + 1, p.data());
      // derivative: P'_n(x) = n (x P_n - P_{n-1}) / (x^2 - 1)
      const double dp = n * (x * p[static_cast<std::size_t>(n)] -
                             p[static_cast<std::size_t>(n) - 1]) /
                        (x * x - 1.0);
      const double dx = p[static_cast<std::size_t>(n)] / dp;
      x -= dx;
      if (std::fabs(dx) < 1e-15) break;
    }
    legendre(x, n + 1, p.data());
    const double dp = n * (x * p[static_cast<std::size_t>(n)] -
                           p[static_cast<std::size_t>(n) - 1]) /
                      (x * x - 1.0);
    // Map [-1,1] -> [0,1]: node (x+1)/2, weight w/2.
    q.x[static_cast<std::size_t>(i)] = 0.5 * (x + 1.0);
    q.w[static_cast<std::size_t>(i)] = 1.0 / ((1.0 - x * x) * dp * dp);
  }
  return q;
}

}  // namespace ttg::mra
