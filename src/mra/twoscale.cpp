#include "mra/twoscale.hpp"

#include <cmath>

#include "mra/legendre.hpp"
#include "support/error.hpp"

namespace ttg::mra {

TwoScale::TwoScale(int k) : k_(k) {
  TTG_CHECK(k >= 1 && k <= 20, "unsupported multiwavelet order");
  // Assemble H0/H1 by Gauss-Legendre quadrature exact for degree 2k-2.
  const auto q = gauss_legendre(2 * k);
  h_[0].assign(static_cast<std::size_t>(k) * k, 0.0);
  h_[1].assign(static_cast<std::size_t>(k) * k, 0.0);
  std::vector<double> phi_parent(static_cast<std::size_t>(k));
  std::vector<double> phi_child(static_cast<std::size_t>(k));
  const double sqrt2 = std::sqrt(2.0);
  for (std::size_t p = 0; p < q.x.size(); ++p) {
    const double y = q.x[p];  // child-local coordinate in [0,1]
    const double w = q.w[p];
    scaling_functions(y, k, phi_child.data());
    for (int c = 0; c < 2; ++c) {
      const double x = 0.5 * (y + c);  // parent coordinate
      scaling_functions(x, k, phi_parent.data());
      for (int i = 0; i < k; ++i)
        for (int j = 0; j < k; ++j)
          h_[c][static_cast<std::size_t>(i) * k + j] +=
              0.5 * w * phi_parent[static_cast<std::size_t>(i)] * sqrt2 *
              phi_child[static_cast<std::size_t>(j)];
    }
  }
}

std::vector<double> TwoScale::apply_tensor(const std::vector<double>& x, int cx, int cy,
                                           int cz, bool transpose) const {
  const int k = k_;
  auto apply_dim = [&](const std::vector<double>& in, const std::vector<double>& m,
                       int dim) {
    // Coefficients indexed v[ix][iy][iz] flattened as (ix*k + iy)*k + iz.
    std::vector<double> out(in.size(), 0.0);
    for (int a = 0; a < k; ++a)
      for (int b = 0; b < k; ++b) {
        const double mab = transpose ? m[static_cast<std::size_t>(b) * k + a]
                                     : m[static_cast<std::size_t>(a) * k + b];
        if (mab == 0.0) continue;
        for (int u = 0; u < k; ++u)
          for (int v = 0; v < k; ++v) {
            std::size_t iin, iout;
            switch (dim) {
              case 0:
                iin = (static_cast<std::size_t>(b) * k + u) * k + v;
                iout = (static_cast<std::size_t>(a) * k + u) * k + v;
                break;
              case 1:
                iin = (static_cast<std::size_t>(u) * k + b) * k + v;
                iout = (static_cast<std::size_t>(u) * k + a) * k + v;
                break;
              default:
                iin = (static_cast<std::size_t>(u) * k + v) * k + b;
                iout = (static_cast<std::size_t>(u) * k + v) * k + a;
                break;
            }
            out[iout] += mab * in[iin];
          }
      }
    return out;
  };
  std::vector<double> t = apply_dim(x, h_[cx], 0);
  t = apply_dim(t, h_[cy], 1);
  t = apply_dim(t, h_[cz], 2);
  return t;
}

std::vector<double> TwoScale::filter(
    const std::array<std::vector<double>, 8>& child_s) const {
  std::vector<double> parent(static_cast<std::size_t>(coeffs_per_node()), 0.0);
  for (int c = 0; c < 8; ++c) {
    const int cx = c & 1, cy = (c >> 1) & 1, cz = (c >> 2) & 1;
    TTG_CHECK(static_cast<int>(child_s[c].size()) == coeffs_per_node(),
              "filter: bad child block");
    auto contrib = apply_tensor(child_s[c], cx, cy, cz, /*transpose=*/false);
    for (std::size_t i = 0; i < parent.size(); ++i) parent[i] += contrib[i];
  }
  return parent;
}

std::vector<double> TwoScale::unfilter_child(const std::vector<double>& parent_s,
                                             int c) const {
  const int cx = c & 1, cy = (c >> 1) & 1, cz = (c >> 2) & 1;
  return apply_tensor(parent_s, cx, cy, cz, /*transpose=*/true);
}

double TwoScale::filter_flops() const {
  // 8 children x 3 separable sweeps x 2 k^4 mul-adds.
  return 8.0 * 3.0 * 2.0 * k_ * k_ * k_ * k_;
}

}  // namespace ttg::mra
