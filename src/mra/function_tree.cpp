#include "mra/function_tree.hpp"

#include <cmath>

#include "mra/legendre.hpp"
#include "support/error.hpp"

namespace ttg::mra {

double Gaussian::eval(double x, double y, double z) const {
  const double dx = x - center[0];
  const double dy = y - center[1];
  const double dz = z - center[2];
  return coeff * std::exp(-expnt * (dx * dx + dy * dy + dz * dz));
}

double Gaussian::norm2() const {
  return coeff * coeff * std::pow(M_PI / (2.0 * expnt), 1.5);
}

std::vector<Gaussian> random_gaussians(int n, double expnt, std::uint64_t seed) {
  support::Rng rng(seed);
  std::vector<Gaussian> v(static_cast<std::size_t>(n));
  for (auto& g : v) {
    g.expnt = expnt;
    g.coeff = 1.0;
    // Random centers; the clustering ("substantial clustering and hence
    // load imbalance") emerges from uniform draws in a bounded cube —
    // kept away from the boundary so tails stay inside the domain.
    for (int d = 0; d < 3; ++d) g.center[d] = rng.uniform(0.15, 0.85);
  }
  return v;
}

MraContext::MraContext(int k, std::vector<Gaussian> functions)
    : twoscale_(k), quad_(gauss_legendre(k)), fns_(std::move(functions)) {
  phiw_.assign(static_cast<std::size_t>(k) * k, 0.0);
  std::vector<double> phi(static_cast<std::size_t>(k));
  for (int q = 0; q < k; ++q) {
    scaling_functions(quad_.x[static_cast<std::size_t>(q)], k, phi.data());
    for (int i = 0; i < k; ++i)
      phiw_[static_cast<std::size_t>(i) * k + q] =
          phi[static_cast<std::size_t>(i)] * quad_.w[static_cast<std::size_t>(q)];
  }
}

Coeffs MraContext::project_box(const TreeKey& key) const {
  if (!cache_enabled_) return project_box_uncached(key);
  auto it = cache_.find(key);
  if (it != cache_.end()) return it->second;
  Coeffs c = project_box_uncached(key);
  cache_.emplace(key, c);
  return c;
}

Coeffs MraContext::project_box_uncached(const TreeKey& key) const {
  const int k = twoscale_.k();
  const double scale = std::pow(2.0, -key.level);
  const Gaussian& g = fn(key.fid);

  // Evaluate f on the k^3 tensor quadrature grid of the box.
  std::vector<double> f(static_cast<std::size_t>(k) * k * k);
  for (int qx = 0; qx < k; ++qx) {
    const double x = (key.lx + quad_.x[static_cast<std::size_t>(qx)]) * scale;
    for (int qy = 0; qy < k; ++qy) {
      const double y = (key.ly + quad_.x[static_cast<std::size_t>(qy)]) * scale;
      for (int qz = 0; qz < k; ++qz) {
        const double z = (key.lz + quad_.x[static_cast<std::size_t>(qz)]) * scale;
        f[(static_cast<std::size_t>(qx) * k + qy) * k + qz] = g.eval(x, y, z);
      }
    }
  }

  // Separable contraction with phi_i(x_q) w_q per dimension.
  auto contract = [&](const std::vector<double>& in, int dim) {
    std::vector<double> out(in.size(), 0.0);
    for (int i = 0; i < k; ++i)
      for (int q = 0; q < k; ++q) {
        const double m = phiw_[static_cast<std::size_t>(i) * k + q];
        for (int u = 0; u < k; ++u)
          for (int v = 0; v < k; ++v) {
            std::size_t iin, iout;
            switch (dim) {
              case 0:
                iin = (static_cast<std::size_t>(q) * k + u) * k + v;
                iout = (static_cast<std::size_t>(i) * k + u) * k + v;
                break;
              case 1:
                iin = (static_cast<std::size_t>(u) * k + q) * k + v;
                iout = (static_cast<std::size_t>(u) * k + i) * k + v;
                break;
              default:
                iin = (static_cast<std::size_t>(u) * k + v) * k + q;
                iout = (static_cast<std::size_t>(u) * k + v) * k + i;
                break;
            }
            out[iout] += m * in[iin];
          }
      }
    return out;
  };
  std::vector<double> s = contract(f, 0);
  s = contract(s, 1);
  s = contract(s, 2);
  // Volume scaling: s_i = 2^{-3n/2} sum_q w f phi.
  const double vol = std::pow(scale, 1.5);
  Coeffs c;
  c.v.resize(s.size());
  for (std::size_t i = 0; i < s.size(); ++i) c.v[i] = s[i] * vol;
  return c;
}

std::array<std::vector<double>, 8> MraContext::project_children(
    const TreeKey& key) const {
  std::array<std::vector<double>, 8> out;
  for (int c = 0; c < 8; ++c) out[c] = project_box(key.child(c)).v;
  return out;
}

MraContext::NodeProjection MraContext::project_node(const TreeKey& key) const {
  if (!cache_enabled_) return project_node_uncached(key);
  auto it = node_cache_.find(key);
  if (it != node_cache_.end()) return it->second;
  NodeProjection np = project_node_uncached(key);
  node_cache_.emplace(key, np);
  return np;
}

MraContext::NodeProjection MraContext::project_node_uncached(const TreeKey& key) const {
  auto child_s = project_children(key);
  NodeProjection np;
  auto parent = twoscale_.filter(child_s);
  for (int c = 0; c < 8; ++c) {
    const auto proj = twoscale_.unfilter_child(parent, c);
    for (std::size_t i = 0; i < proj.size(); ++i) {
      const double d = child_s[static_cast<std::size_t>(c)][i] - proj[i];
      np.dnorm2 += d * d;
    }
  }
  np.parent.v = std::move(parent);
  return np;
}

bool MraContext::must_refine(const TreeKey& key) const {
  const Gaussian& g = fn(key.fid);
  const double width = std::pow(2.0, -key.level);
  const double sigma = 1.0 / std::sqrt(2.0 * g.expnt);
  if (width <= 2.0 * sigma) return false;
  // Is the center inside this box (with a half-box margin)?
  const double margin = 0.5 * width;
  const int l[3] = {key.lx, key.ly, key.lz};
  for (int d = 0; d < 3; ++d) {
    const double lo = l[d] * width - margin;
    const double hi = (l[d] + 1) * width + margin;
    if (g.center[static_cast<std::size_t>(d)] < lo ||
        g.center[static_cast<std::size_t>(d)] > hi)
      return false;
  }
  return true;
}

double MraContext::project_flops() const {
  const int k = twoscale_.k();
  // 8 children x (k^3 evals @ ~25 flops + 3 contractions of 2 k^4).
  return 8.0 * (25.0 * k * k * k + 3.0 * 2.0 * k * k * k * k) +
         2.0 * twoscale_.filter_flops();
}

double MraContext::compress_flops() const { return 2.0 * twoscale_.filter_flops(); }

double MraContext::reconstruct_flops() const { return twoscale_.filter_flops(); }

}  // namespace ttg::mra
