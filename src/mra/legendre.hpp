// Legendre polynomials and Gauss-Legendre quadrature on [0, 1].
//
// The multiresolution analysis (MRA) benchmark of Section III-E represents
// functions in the multiwavelet basis of Alpert: on each dyadic box, the
// scaling space is spanned by the first k normalized Legendre polynomials.
// This header provides the 1D machinery: orthonormal scaling functions
// phi_j(x) = sqrt(2j+1) P_j(2x - 1) on [0,1], and Gauss-Legendre nodes /
// weights (computed by Newton iteration on P_n) used both for projecting
// user functions and for assembling the two-scale filter matrices.
#pragma once

#include <vector>

namespace ttg::mra {

/// Evaluate P_0..P_{k-1} (standard Legendre on [-1,1]) at x.
void legendre(double x, int k, double* p);

/// Evaluate the orthonormal scaling functions phi_0..phi_{k-1} on [0,1].
void scaling_functions(double x, int k, double* phi);

/// Gauss-Legendre quadrature rule with n points, mapped to [0, 1].
struct Quadrature {
  std::vector<double> x;  ///< nodes in (0,1)
  std::vector<double> w;  ///< weights summing to 1
};
[[nodiscard]] Quadrature gauss_legendre(int n);

}  // namespace ttg::mra
