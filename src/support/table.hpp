// Plain-text table formatting for the benchmark harness.
//
// Every bench binary regenerates one table/figure from the paper and prints
// it as an aligned text table (plus a machine-readable CSV block) so the
// series can be compared against the paper's plots directly.
#pragma once

#include <string>
#include <vector>

namespace ttg::support {

/// Column-aligned text table with a title, header row, and data rows.
class Table {
 public:
  Table(std::string title, std::vector<std::string> header);

  /// Append a row; must have the same arity as the header.
  void add_row(std::vector<std::string> row);

  /// Render as an aligned text table.
  [[nodiscard]] std::string str() const;
  /// Render as CSV (header + rows).
  [[nodiscard]] std::string csv() const;
  /// Print both renderings to stdout.
  void print() const;

 private:
  std::string title_;
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

/// Format a double with fixed precision (bench output helper).
std::string fmt(double v, int precision = 2);
/// Format as engineering notation with a unit, e.g. 1234.5 -> "1.23 K".
std::string fmt_si(double v, int precision = 2);

}  // namespace ttg::support
