// Minimal command-line option parsing for examples and bench binaries.
//
// Supports `--name value` and `--name=value` plus boolean flags; anything
// the caller did not declare is rejected so typos never silently fall back
// to defaults.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace ttg::support {

/// Declarative option parser: declare defaults, then parse argv.
class Cli {
 public:
  Cli(std::string program, std::string description);

  /// Declare an option with a default value (stringly typed storage).
  void option(const std::string& name, const std::string& default_value,
              const std::string& help);
  /// Declare a boolean flag (defaults to false).
  void flag(const std::string& name, const std::string& help);

  /// Parse argv; returns false (after printing usage) on --help.
  /// Throws ApiError on unknown options or missing values.
  bool parse(int argc, char** argv);

  [[nodiscard]] std::string get(const std::string& name) const;
  [[nodiscard]] std::int64_t get_int(const std::string& name) const;
  [[nodiscard]] double get_double(const std::string& name) const;
  [[nodiscard]] bool get_flag(const std::string& name) const;

  [[nodiscard]] std::string usage() const;

 private:
  struct Opt {
    std::string value;
    std::string help;
    bool is_flag = false;
  };
  std::string program_;
  std::string description_;
  std::map<std::string, Opt> opts_;
  std::vector<std::string> order_;
};

}  // namespace ttg::support
