#include "support/rng.hpp"

#include <algorithm>
#include <numeric>

namespace ttg::support {

double Rng::uniform(double lo, double hi) {
  return std::uniform_real_distribution<double>(lo, hi)(engine_);
}

std::int64_t Rng::uniform_int(std::int64_t lo, std::int64_t hi) {
  return std::uniform_int_distribution<std::int64_t>(lo, hi)(engine_);
}

double Rng::normal(double mean, double stddev) {
  return std::normal_distribution<double>(mean, stddev)(engine_);
}

bool Rng::bernoulli(double p) { return std::bernoulli_distribution(p)(engine_); }

std::vector<std::size_t> Rng::permutation(std::size_t n) {
  std::vector<std::size_t> p(n);
  std::iota(p.begin(), p.end(), std::size_t{0});
  std::shuffle(p.begin(), p.end(), engine_);
  return p;
}

std::uint64_t splitmix64(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

double hash_uniform(std::uint64_t seed, std::uint64_t stream, std::uint64_t n) {
  const std::uint64_t z = splitmix64(seed ^ splitmix64(stream ^ splitmix64(n)));
  // Top 53 bits -> [0, 1) with full double precision.
  return static_cast<double>(z >> 11) * 0x1.0p-53;
}

}  // namespace ttg::support
