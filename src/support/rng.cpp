#include "support/rng.hpp"

#include <algorithm>
#include <numeric>

namespace ttg::support {

double Rng::uniform(double lo, double hi) {
  return std::uniform_real_distribution<double>(lo, hi)(engine_);
}

std::int64_t Rng::uniform_int(std::int64_t lo, std::int64_t hi) {
  return std::uniform_int_distribution<std::int64_t>(lo, hi)(engine_);
}

double Rng::normal(double mean, double stddev) {
  return std::normal_distribution<double>(mean, stddev)(engine_);
}

bool Rng::bernoulli(double p) { return std::bernoulli_distribution(p)(engine_); }

std::vector<std::size_t> Rng::permutation(std::size_t n) {
  std::vector<std::size_t> p(n);
  std::iota(p.begin(), p.end(), std::size_t{0});
  std::shuffle(p.begin(), p.end(), engine_);
  return p;
}

}  // namespace ttg::support
