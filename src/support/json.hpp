// Minimal JSON parser (RFC 8259 subset sufficient for tooling output).
//
// Exists so tests and tools can parse structured output the repo itself
// produces — most importantly the tracer's Chrome-trace JSON, which the
// trace test suite parses back to prove well-formedness. Numbers are
// doubles, strings support the standard escapes (\uXXXX is decoded as
// UTF-8), and parse errors throw support::ApiError with an offset.
#pragma once

#include <map>
#include <memory>
#include <string>
#include <vector>

namespace ttg::support::json {

class Value;
using Array = std::vector<Value>;
using Object = std::map<std::string, Value>;

/// One JSON value (null / bool / number / string / array / object).
class Value {
 public:
  enum class Type { Null, Bool, Number, String, Array, Object };

  Value() = default;
  explicit Value(bool b) : type_(Type::Bool), bool_(b) {}
  explicit Value(double d) : type_(Type::Number), num_(d) {}
  explicit Value(std::string s) : type_(Type::String), str_(std::move(s)) {}
  explicit Value(Array a);
  explicit Value(Object o);

  [[nodiscard]] Type type() const { return type_; }
  [[nodiscard]] bool is_null() const { return type_ == Type::Null; }

  /// Typed accessors; throw ApiError on type mismatch.
  [[nodiscard]] bool as_bool() const;
  [[nodiscard]] double as_number() const;
  [[nodiscard]] const std::string& as_string() const;
  [[nodiscard]] const Array& as_array() const;
  [[nodiscard]] const Object& as_object() const;

  /// Object field lookup; throws ApiError if absent or not an object.
  [[nodiscard]] const Value& at(const std::string& key) const;
  [[nodiscard]] bool has(const std::string& key) const;
  /// Array element; throws ApiError if out of range or not an array.
  [[nodiscard]] const Value& at(std::size_t i) const;
  [[nodiscard]] std::size_t size() const;

 private:
  Type type_ = Type::Null;
  bool bool_ = false;
  double num_ = 0.0;
  std::string str_;
  std::shared_ptr<Array> arr_;   // shared: Value stays cheaply copyable
  std::shared_ptr<Object> obj_;
};

/// Parse a complete JSON document; trailing non-whitespace is an error.
[[nodiscard]] Value parse(const std::string& text);

}  // namespace ttg::support::json
