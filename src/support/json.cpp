#include "support/json.hpp"

#include <cstdlib>

#include "support/error.hpp"

namespace ttg::support::json {

Value::Value(Array a) : type_(Type::Array), arr_(std::make_shared<Array>(std::move(a))) {}
Value::Value(Object o)
    : type_(Type::Object), obj_(std::make_shared<Object>(std::move(o))) {}

bool Value::as_bool() const {
  TTG_REQUIRE(type_ == Type::Bool, "json: not a bool");
  return bool_;
}

double Value::as_number() const {
  TTG_REQUIRE(type_ == Type::Number, "json: not a number");
  return num_;
}

const std::string& Value::as_string() const {
  TTG_REQUIRE(type_ == Type::String, "json: not a string");
  return str_;
}

const Array& Value::as_array() const {
  TTG_REQUIRE(type_ == Type::Array, "json: not an array");
  return *arr_;
}

const Object& Value::as_object() const {
  TTG_REQUIRE(type_ == Type::Object, "json: not an object");
  return *obj_;
}

const Value& Value::at(const std::string& key) const {
  const Object& o = as_object();
  auto it = o.find(key);
  TTG_REQUIRE(it != o.end(), "json: missing key '" + key + "'");
  return it->second;
}

bool Value::has(const std::string& key) const {
  return type_ == Type::Object && obj_->count(key) > 0;
}

const Value& Value::at(std::size_t i) const {
  const Array& a = as_array();
  TTG_REQUIRE(i < a.size(), "json: index out of range");
  return a[i];
}

std::size_t Value::size() const {
  if (type_ == Type::Array) return arr_->size();
  if (type_ == Type::Object) return obj_->size();
  return 0;
}

namespace {

class Parser {
 public:
  explicit Parser(const std::string& text) : s_(text) {}

  Value run() {
    Value v = value();
    skip_ws();
    TTG_REQUIRE(pos_ == s_.size(), err("trailing characters"));
    return v;
  }

 private:
  [[nodiscard]] std::string err(const std::string& what) const {
    return "json parse error at offset " + std::to_string(pos_) + ": " + what;
  }

  void skip_ws() {
    while (pos_ < s_.size()) {
      const char c = s_[pos_];
      if (c == ' ' || c == '\t' || c == '\n' || c == '\r') {
        ++pos_;
      } else {
        break;
      }
    }
  }

  char peek() {
    TTG_REQUIRE(pos_ < s_.size(), err("unexpected end of input"));
    return s_[pos_];
  }

  void expect(char c) {
    TTG_REQUIRE(peek() == c, err(std::string("expected '") + c + "'"));
    ++pos_;
  }

  bool literal(const char* lit) {
    std::size_t n = 0;
    while (lit[n] != '\0') ++n;
    if (s_.compare(pos_, n, lit) == 0) {
      pos_ += n;
      return true;
    }
    return false;
  }

  Value value() {
    skip_ws();
    const char c = peek();
    switch (c) {
      case '{': return object();
      case '[': return array();
      case '"': return Value(string());
      case 't':
        TTG_REQUIRE(literal("true"), err("bad literal"));
        return Value(true);
      case 'f':
        TTG_REQUIRE(literal("false"), err("bad literal"));
        return Value(false);
      case 'n':
        TTG_REQUIRE(literal("null"), err("bad literal"));
        return Value();
      default: return number();
    }
  }

  Value object() {
    expect('{');
    Object o;
    skip_ws();
    if (peek() == '}') {
      ++pos_;
      return Value(std::move(o));
    }
    while (true) {
      skip_ws();
      std::string key = string();
      skip_ws();
      expect(':');
      o.emplace(std::move(key), value());
      skip_ws();
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      expect('}');
      return Value(std::move(o));
    }
  }

  Value array() {
    expect('[');
    Array a;
    skip_ws();
    if (peek() == ']') {
      ++pos_;
      return Value(std::move(a));
    }
    while (true) {
      a.push_back(value());
      skip_ws();
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      expect(']');
      return Value(std::move(a));
    }
  }

  void append_utf8(std::string& out, unsigned cp) {
    if (cp < 0x80) {
      out += static_cast<char>(cp);
    } else if (cp < 0x800) {
      out += static_cast<char>(0xC0 | (cp >> 6));
      out += static_cast<char>(0x80 | (cp & 0x3F));
    } else {
      out += static_cast<char>(0xE0 | (cp >> 12));
      out += static_cast<char>(0x80 | ((cp >> 6) & 0x3F));
      out += static_cast<char>(0x80 | (cp & 0x3F));
    }
  }

  std::string string() {
    expect('"');
    std::string out;
    while (true) {
      TTG_REQUIRE(pos_ < s_.size(), err("unterminated string"));
      const char c = s_[pos_++];
      if (c == '"') return out;
      if (c != '\\') {
        out += c;
        continue;
      }
      TTG_REQUIRE(pos_ < s_.size(), err("unterminated escape"));
      const char e = s_[pos_++];
      switch (e) {
        case '"': out += '"'; break;
        case '\\': out += '\\'; break;
        case '/': out += '/'; break;
        case 'b': out += '\b'; break;
        case 'f': out += '\f'; break;
        case 'n': out += '\n'; break;
        case 'r': out += '\r'; break;
        case 't': out += '\t'; break;
        case 'u': {
          TTG_REQUIRE(pos_ + 4 <= s_.size(), err("short \\u escape"));
          unsigned cp = 0;
          for (int i = 0; i < 4; ++i) {
            const char h = s_[pos_++];
            cp <<= 4;
            if (h >= '0' && h <= '9') {
              cp |= static_cast<unsigned>(h - '0');
            } else if (h >= 'a' && h <= 'f') {
              cp |= static_cast<unsigned>(h - 'a' + 10);
            } else if (h >= 'A' && h <= 'F') {
              cp |= static_cast<unsigned>(h - 'A' + 10);
            } else {
              TTG_REQUIRE(false, err("bad hex digit in \\u escape"));
            }
          }
          append_utf8(out, cp);
          break;
        }
        default: TTG_REQUIRE(false, err("bad escape character"));
      }
    }
  }

  Value number() {
    const std::size_t start = pos_;
    if (peek() == '-') ++pos_;
    while (pos_ < s_.size()) {
      const char c = s_[pos_];
      if ((c >= '0' && c <= '9') || c == '.' || c == 'e' || c == 'E' || c == '+' ||
          c == '-') {
        ++pos_;
      } else {
        break;
      }
    }
    TTG_REQUIRE(pos_ > start, err("expected a value"));
    const std::string tok = s_.substr(start, pos_ - start);
    char* end = nullptr;
    const double d = std::strtod(tok.c_str(), &end);
    TTG_REQUIRE(end != nullptr && *end == '\0', err("malformed number '" + tok + "'"));
    return Value(d);
  }

  const std::string& s_;
  std::size_t pos_ = 0;
};

}  // namespace

Value parse(const std::string& text) { return Parser(text).run(); }

}  // namespace ttg::support::json
