// Deterministic random number generation.
//
// All stochastic inputs (matrix entries, Gaussian centers, block sparsity)
// are drawn from explicitly seeded engines so every experiment is exactly
// reproducible; nothing in the repository uses std::random_device or time.
#pragma once

#include <cstdint>
#include <random>
#include <vector>

namespace ttg::support {

/// Thin wrapper around mt19937_64 with convenience draws.
class Rng {
 public:
  explicit Rng(std::uint64_t seed) : engine_(seed) {}

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi);
  /// Uniform integer in [lo, hi] inclusive.
  std::int64_t uniform_int(std::int64_t lo, std::int64_t hi);
  /// Standard normal draw.
  double normal(double mean = 0.0, double stddev = 1.0);
  /// Bernoulli draw.
  bool bernoulli(double p);
  /// Random permutation of [0, n).
  std::vector<std::size_t> permutation(std::size_t n);

  std::mt19937_64& engine() { return engine_; }

 private:
  std::mt19937_64 engine_;
};

/// SplitMix64 finalizer: one round of the well-mixed 64-bit hash.
[[nodiscard]] std::uint64_t splitmix64(std::uint64_t x);

/// Stateless uniform draw in [0, 1) from (seed, stream, n). Unlike an
/// engine-backed draw, the result depends only on the three inputs, never on
/// how many draws other streams made — the fault injector uses this so each
/// perturbation decision is a pure function of (seed, decision kind, ordinal)
/// and two runs with the same seed and workload perturb identically.
[[nodiscard]] double hash_uniform(std::uint64_t seed, std::uint64_t stream,
                                  std::uint64_t n);

}  // namespace ttg::support
