// Deterministic random number generation.
//
// All stochastic inputs (matrix entries, Gaussian centers, block sparsity)
// are drawn from explicitly seeded engines so every experiment is exactly
// reproducible; nothing in the repository uses std::random_device or time.
#pragma once

#include <cstdint>
#include <random>
#include <vector>

namespace ttg::support {

/// Thin wrapper around mt19937_64 with convenience draws.
class Rng {
 public:
  explicit Rng(std::uint64_t seed) : engine_(seed) {}

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi);
  /// Uniform integer in [lo, hi] inclusive.
  std::int64_t uniform_int(std::int64_t lo, std::int64_t hi);
  /// Standard normal draw.
  double normal(double mean = 0.0, double stddev = 1.0);
  /// Bernoulli draw.
  bool bernoulli(double p);
  /// Random permutation of [0, n).
  std::vector<std::size_t> permutation(std::size_t n);

  std::mt19937_64& engine() { return engine_; }

 private:
  std::mt19937_64 engine_;
};

}  // namespace ttg::support
