// Hashing utilities for task IDs (keys).
//
// TTG routes every message by hashing/mapping its task ID; keys are small
// tuples of integers (Int1/Int2/Int3 in the paper) or user structs. We
// provide a stable 64-bit combine so unordered_map behaviour is identical
// across runs (determinism is a core requirement of the simulator).
#pragma once

#include <cstdint>
#include <functional>
#include <tuple>
#include <type_traits>

namespace ttg::support {

/// 64-bit hash combiner (boost::hash_combine-style, golden-ratio constant).
inline void hash_combine(std::uint64_t& seed, std::uint64_t v) {
  seed ^= v + 0x9e3779b97f4a7c15ull + (seed << 6) + (seed >> 2);
}

template <typename T>
concept MemberHashable = requires(const T& t) {
  { t.hash() } -> std::convertible_to<std::uint64_t>;
};

/// Hash dispatch: member `hash()` if provided, else std::hash.
template <typename T>
std::uint64_t hash_value(const T& t) {
  if constexpr (MemberHashable<T>) {
    return t.hash();
  } else {
    return std::hash<T>{}(t);
  }
}

}  // namespace ttg::support
