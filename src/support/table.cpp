#include "support/table.hpp"

#include <algorithm>
#include <cstdio>
#include <sstream>

#include "support/error.hpp"

namespace ttg::support {

Table::Table(std::string title, std::vector<std::string> header)
    : title_(std::move(title)), header_(std::move(header)) {}

void Table::add_row(std::vector<std::string> row) {
  TTG_REQUIRE(row.size() == header_.size(), "table row arity mismatch");
  rows_.push_back(std::move(row));
}

std::string Table::str() const {
  std::vector<std::size_t> width(header_.size());
  for (std::size_t c = 0; c < header_.size(); ++c) width[c] = header_[c].size();
  for (const auto& r : rows_)
    for (std::size_t c = 0; c < r.size(); ++c) width[c] = std::max(width[c], r[c].size());

  std::ostringstream os;
  os << "== " << title_ << " ==\n";
  auto emit_row = [&](const std::vector<std::string>& r) {
    for (std::size_t c = 0; c < r.size(); ++c) {
      os << "  ";
      os << r[c];
      os << std::string(width[c] - r[c].size(), ' ');
    }
    os << '\n';
  };
  emit_row(header_);
  std::size_t total = 0;
  for (auto w : width) total += w + 2;
  os << std::string(total, '-') << '\n';
  for (const auto& r : rows_) emit_row(r);
  return os.str();
}

std::string Table::csv() const {
  std::ostringstream os;
  auto emit = [&](const std::vector<std::string>& r) {
    for (std::size_t c = 0; c < r.size(); ++c) {
      if (c) os << ',';
      os << r[c];
    }
    os << '\n';
  };
  emit(header_);
  for (const auto& r : rows_) emit(r);
  return os.str();
}

void Table::print() const {
  std::printf("%s\n[csv]\n%s[/csv]\n\n", str().c_str(), csv().c_str());
}

std::string fmt(double v, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.*f", precision, v);
  return buf;
}

std::string fmt_si(double v, int precision) {
  const char* suffix = "";
  double scaled = v;
  if (v >= 1e12) {
    scaled = v / 1e12;
    suffix = " T";
  } else if (v >= 1e9) {
    scaled = v / 1e9;
    suffix = " G";
  } else if (v >= 1e6) {
    scaled = v / 1e6;
    suffix = " M";
  } else if (v >= 1e3) {
    scaled = v / 1e3;
    suffix = " K";
  }
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.*f%s", precision, scaled, suffix);
  return buf;
}

}  // namespace ttg::support
