#include "support/cli.hpp"

#include <cstdio>
#include <cstdlib>
#include <sstream>

#include "support/error.hpp"

namespace ttg::support {

Cli::Cli(std::string program, std::string description)
    : program_(std::move(program)), description_(std::move(description)) {}

void Cli::option(const std::string& name, const std::string& default_value,
                 const std::string& help) {
  TTG_REQUIRE(!opts_.count(name), "duplicate option: " + name);
  opts_[name] = Opt{default_value, help, /*is_flag=*/false};
  order_.push_back(name);
}

void Cli::flag(const std::string& name, const std::string& help) {
  TTG_REQUIRE(!opts_.count(name), "duplicate flag: " + name);
  opts_[name] = Opt{"0", help, /*is_flag=*/true};
  order_.push_back(name);
}

bool Cli::parse(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg == "--help" || arg == "-h") {
      std::printf("%s", usage().c_str());
      return false;
    }
    TTG_REQUIRE(arg.rfind("--", 0) == 0, "unexpected positional argument: " + arg);
    arg = arg.substr(2);
    std::string value;
    bool has_value = false;
    if (auto eq = arg.find('='); eq != std::string::npos) {
      value = arg.substr(eq + 1);
      arg = arg.substr(0, eq);
      has_value = true;
    }
    auto it = opts_.find(arg);
    TTG_REQUIRE(it != opts_.end(), "unknown option: --" + arg);
    if (it->second.is_flag) {
      TTG_REQUIRE(!has_value, "flag --" + arg + " does not take a value");
      it->second.value = "1";
    } else {
      if (!has_value) {
        TTG_REQUIRE(i + 1 < argc, "missing value for --" + arg);
        value = argv[++i];
      }
      it->second.value = value;
    }
  }
  return true;
}

std::string Cli::get(const std::string& name) const {
  auto it = opts_.find(name);
  TTG_REQUIRE(it != opts_.end(), "undeclared option: " + name);
  return it->second.value;
}

std::int64_t Cli::get_int(const std::string& name) const {
  return std::strtoll(get(name).c_str(), nullptr, 10);
}

double Cli::get_double(const std::string& name) const {
  return std::strtod(get(name).c_str(), nullptr);
}

bool Cli::get_flag(const std::string& name) const { return get(name) == "1"; }

std::string Cli::usage() const {
  std::ostringstream os;
  os << program_ << " — " << description_ << "\n\noptions:\n";
  for (const auto& name : order_) {
    const auto& o = opts_.at(name);
    os << "  --" << name;
    if (!o.is_flag) os << " <value> (default: " << o.value << ")";
    os << "\n      " << o.help << "\n";
  }
  return os.str();
}

}  // namespace ttg::support
