// Error handling primitives shared by all modules.
//
// The simulator is deterministic and single-threaded; internal invariant
// violations are programming errors, so we fail fast with a message rather
// than propagate error codes through the hot path (C++ Core Guidelines E.12,
// I.10: prefer preconditions that terminate over silently bad states).
#pragma once

#include <cstdio>
#include <cstdlib>
#include <stdexcept>
#include <string>

namespace ttg::support {

/// Thrown for user-facing, recoverable misuse of the public API
/// (e.g. connecting edges of mismatched arity, invalid CLI arguments).
class ApiError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

[[noreturn]] inline void fail(const char* file, int line, const std::string& msg) {
  std::fprintf(stderr, "ttg-repro fatal: %s:%d: %s\n", file, line, msg.c_str());
  std::abort();
}

}  // namespace ttg::support

/// Invariant check that is always on (the simulator is not perf-bound by it).
#define TTG_CHECK(cond, msg)                                      \
  do {                                                            \
    if (!(cond)) ::ttg::support::fail(__FILE__, __LINE__, (msg)); \
  } while (0)

/// Precondition on public API arguments: throws ApiError (recoverable).
#define TTG_REQUIRE(cond, msg)                         \
  do {                                                 \
    if (!(cond)) throw ::ttg::support::ApiError(msg);  \
  } while (0)
