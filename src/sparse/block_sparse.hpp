// Block-sparse matrices with irregular tile dimensions (Section III-D).
//
// The bspmm benchmark operates on matrices "tiled in blocks of irregular
// dimensions, with a significant subset of blocks empty". Rows/columns are
// partitioned into panels (one tile row/column per panel); each nonzero
// block is a dense Tile of panel_rows x panel_cols.
#pragma once

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "linalg/tile.hpp"

namespace ttg::sparse {

/// Packed (row, col) tile coordinate.
constexpr std::uint64_t pack_ij(int i, int j) {
  return (static_cast<std::uint64_t>(static_cast<std::uint32_t>(i)) << 32) |
         static_cast<std::uint32_t>(j);
}

class BlockSparseMatrix {
 public:
  BlockSparseMatrix() = default;
  /// Square block structure with the given panel sizes (tile (i,j) has
  /// shape panels[i] x panels[j]).
  explicit BlockSparseMatrix(std::vector<int> panels);

  [[nodiscard]] int ntiles() const { return static_cast<int>(panels_.size()); }
  [[nodiscard]] int panel(int i) const { return panels_[static_cast<std::size_t>(i)]; }
  [[nodiscard]] const std::vector<int>& panels() const { return panels_; }
  /// Total matrix dimension (sum of panels).
  [[nodiscard]] int n() const { return n_; }

  [[nodiscard]] bool has(int i, int j) const { return blocks_.count(pack_ij(i, j)) > 0; }
  [[nodiscard]] linalg::Tile& at(int i, int j);
  [[nodiscard]] const linalg::Tile& at(int i, int j) const;
  /// Insert/overwrite tile (i, j); shape must match the panel structure
  /// (ignored for ghost tiles of matching dims).
  void set(int i, int j, linalg::Tile t);

  [[nodiscard]] std::size_t nnz_tiles() const { return blocks_.size(); }
  /// Fraction of nonzero tiles.
  [[nodiscard]] double occupancy() const;
  /// Nonzero element count (by block footprint).
  [[nodiscard]] std::uint64_t nnz_elements() const;

  /// Deterministically ordered list of nonzero coordinates (row-major).
  [[nodiscard]] std::vector<std::pair<int, int>> nonzeros() const;
  /// Column indices of nonzeros in row i (sorted).
  [[nodiscard]] std::vector<int> row_nonzeros(int i) const;
  /// Row indices of nonzeros in column j (sorted).
  [[nodiscard]] std::vector<int> col_nonzeros(int j) const;

  /// Assemble to a dense tile (tests; real tiles only).
  [[nodiscard]] linalg::Tile to_dense() const;

 private:
  std::vector<int> panels_;
  std::vector<int> offsets_;  // panel start offsets
  int n_ = 0;
  std::unordered_map<std::uint64_t, linalg::Tile> blocks_;
};

/// C = A * B over the block structure (reference; real tiles).
[[nodiscard]] BlockSparseMatrix multiply_reference(const BlockSparseMatrix& a,
                                                   const BlockSparseMatrix& b);

/// Total GEMM flops of C = A * B given both sparsity patterns.
[[nodiscard]] double multiply_flops(const BlockSparseMatrix& a,
                                    const BlockSparseMatrix& b);

}  // namespace ttg::sparse
