#include "sparse/block_sparse.hpp"

#include <algorithm>
#include <numeric>

#include "linalg/kernels.hpp"

namespace ttg::sparse {

using linalg::Tile;

BlockSparseMatrix::BlockSparseMatrix(std::vector<int> panels)
    : panels_(std::move(panels)) {
  offsets_.resize(panels_.size() + 1, 0);
  for (std::size_t i = 0; i < panels_.size(); ++i)
    offsets_[i + 1] = offsets_[i] + panels_[i];
  n_ = offsets_.back();
}

Tile& BlockSparseMatrix::at(int i, int j) {
  auto it = blocks_.find(pack_ij(i, j));
  TTG_CHECK(it != blocks_.end(), "block not present");
  return it->second;
}

const Tile& BlockSparseMatrix::at(int i, int j) const {
  auto it = blocks_.find(pack_ij(i, j));
  TTG_CHECK(it != blocks_.end(), "block not present");
  return it->second;
}

void BlockSparseMatrix::set(int i, int j, Tile t) {
  TTG_CHECK(i >= 0 && i < ntiles() && j >= 0 && j < ntiles(), "block out of range");
  TTG_CHECK(t.rows() == panel(i) && t.cols() == panel(j), "block shape mismatch");
  blocks_[pack_ij(i, j)] = std::move(t);
}

double BlockSparseMatrix::occupancy() const {
  const double total = static_cast<double>(ntiles()) * ntiles();
  return total > 0 ? static_cast<double>(blocks_.size()) / total : 0.0;
}

std::uint64_t BlockSparseMatrix::nnz_elements() const {
  std::uint64_t n = 0;
  for (const auto& [key, t] : blocks_)
    n += static_cast<std::uint64_t>(t.rows()) * static_cast<std::uint64_t>(t.cols());
  return n;
}

std::vector<std::pair<int, int>> BlockSparseMatrix::nonzeros() const {
  std::vector<std::pair<int, int>> v;
  v.reserve(blocks_.size());
  for (const auto& [key, t] : blocks_)
    v.emplace_back(static_cast<int>(key >> 32), static_cast<int>(key & 0xffffffffu));
  std::sort(v.begin(), v.end());
  return v;
}

std::vector<int> BlockSparseMatrix::row_nonzeros(int i) const {
  std::vector<int> v;
  for (int j = 0; j < ntiles(); ++j)
    if (has(i, j)) v.push_back(j);
  return v;
}

std::vector<int> BlockSparseMatrix::col_nonzeros(int j) const {
  std::vector<int> v;
  for (int i = 0; i < ntiles(); ++i)
    if (has(i, j)) v.push_back(i);
  return v;
}

Tile BlockSparseMatrix::to_dense() const {
  Tile d(n_, n_);
  for (const auto& [key, t] : blocks_) {
    const int i = static_cast<int>(key >> 32);
    const int j = static_cast<int>(key & 0xffffffffu);
    for (int c = 0; c < t.cols(); ++c)
      for (int r = 0; r < t.rows(); ++r)
        d(offsets_[static_cast<std::size_t>(i)] + r,
          offsets_[static_cast<std::size_t>(j)] + c) = t(r, c);
  }
  return d;
}

BlockSparseMatrix multiply_reference(const BlockSparseMatrix& a,
                                     const BlockSparseMatrix& b) {
  BlockSparseMatrix c(a.panels());
  for (const auto& [i, k] : a.nonzeros()) {
    for (int j : b.row_nonzeros(k)) {
      if (!c.has(i, j)) c.set(i, j, Tile(a.panel(i), a.panel(j)));
      linalg::gemm_nn_acc(c.at(i, j), a.at(i, k), b.at(k, j));
    }
  }
  return c;
}

double multiply_flops(const BlockSparseMatrix& a, const BlockSparseMatrix& b) {
  double f = 0.0;
  for (const auto& [i, k] : a.nonzeros())
    for (int j : b.row_nonzeros(k))
      f += linalg::flops::gemm(a.panel(i), b.panel(j), a.panel(k));
  return f;
}

}  // namespace ttg::sparse
