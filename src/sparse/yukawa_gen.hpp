// Synthetic Yukawa-operator matrix generator (Fig. 11 substitute).
//
// The paper's bspmm input is "the matrix representation of the Yukawa
// integral operator exp(-r12/5)/r12 in the cc-pVDZ-RIFIT Gaussian atomic
// orbital basis for the main protease of the SARS-CoV-2 virus in complex
// with the N3 inhibitor (total of 2,500 atoms)": dimension 140,440, atom
// panels grouped into tiles of at most 256, blocks with Frobenius norm
// below 1e-8 discarded. We cannot obtain that chemistry output, so we
// generate a synthetic matrix with the same construction and statistics:
//
//   * `natoms` atoms placed as a random compact cluster (protein-like blob)
//     in 3D; each atom contributes a basis panel of 40-70 functions
//     (cc-pVDZ-RIFIT-like), grouped greedily into tiles of at most
//     `max_tile`;
//   * the block norm between tile s and tile t decays as
//     exp(-min-interatomic-distance / screening_length), mirroring the
//     Yukawa kernel's exponential screening;
//   * blocks with norm below `threshold` are dropped.
//
// What the bspmm experiment measures — occupancy, block-size distribution,
// and the clustered decay structure that drives SUMMA's communication — is
// reproduced and reported by structure_report() (bench/fig11).
#pragma once

#include <string>

#include "sparse/block_sparse.hpp"
#include "support/rng.hpp"

namespace ttg::sparse {

struct YukawaParams {
  int natoms = 2500;              ///< atoms in the cluster
  int max_tile = 256;             ///< target tile size cap (paper: 256)
  double screening_length = 5.0;  ///< Yukawa exp(-r/5) screening
  double threshold = 1e-8;        ///< Frobenius-norm drop tolerance
  double box = 40.0;              ///< cluster diameter (angstrom-ish units)
  bool ghost = false;             ///< ghost tiles for at-scale benches
  std::uint64_t seed = 2022;
};

/// Generate the synthetic operator matrix.
[[nodiscard]] BlockSparseMatrix yukawa_matrix(const YukawaParams& p);

/// Printable structure summary (dimension, tiles, occupancy, norm decay) —
/// the data behind Fig. 11.
[[nodiscard]] std::string structure_report(const BlockSparseMatrix& m);

}  // namespace ttg::sparse
