#include "sparse/yukawa_gen.hpp"

#include <algorithm>
#include <array>
#include <cmath>
#include <sstream>

namespace ttg::sparse {

using linalg::Tile;

namespace {
struct Atom {
  std::array<double, 3> pos;
  int nbasis;
};

}  // namespace

BlockSparseMatrix yukawa_matrix(const YukawaParams& p) {
  support::Rng rng(p.seed);

  // Atoms as a compact Gaussian blob (protein-like cluster). Sort along a
  // space-filling-ish key (z-order by coarse cells) so that consecutive
  // atoms — and hence tiles — are spatially close, like the paper's
  // chemistry ordering.
  std::vector<Atom> atoms(static_cast<std::size_t>(p.natoms));
  for (auto& a : atoms) {
    for (int d = 0; d < 3; ++d) a.pos[d] = rng.normal(0.0, p.box / 4.0);
    a.nbasis = static_cast<int>(rng.uniform_int(40, 70));
  }
  std::sort(atoms.begin(), atoms.end(), [&](const Atom& a, const Atom& b) {
    auto cell = [&](const Atom& x) {
      const int cx = static_cast<int>(std::floor(x.pos[0] / 5.0));
      const int cy = static_cast<int>(std::floor(x.pos[1] / 5.0));
      const int cz = static_cast<int>(std::floor(x.pos[2] / 5.0));
      return std::tuple<int, int, int>(cx, cy, cz);
    };
    return cell(a) < cell(b);
  });

  // Greedy panel grouping: pack consecutive atoms into tiles <= max_tile.
  std::vector<int> panels;
  std::vector<std::pair<std::size_t, std::size_t>> tile_atoms;  // [first, last)
  std::size_t first = 0;
  int acc = 0;
  for (std::size_t i = 0; i < atoms.size(); ++i) {
    if (acc > 0 && acc + atoms[i].nbasis > p.max_tile) {
      panels.push_back(acc);
      tile_atoms.emplace_back(first, i);
      first = i;
      acc = 0;
    }
    acc += atoms[i].nbasis;
  }
  if (acc > 0) {
    panels.push_back(acc);
    tile_atoms.emplace_back(first, atoms.size());
  }

  BlockSparseMatrix m(panels);
  const int nt = m.ntiles();

  // Tile centroid distance drives the screened norm. Using centroids (not
  // the full min over atom pairs) keeps generation O(nt^2) instead of
  // O(natoms^2) while preserving the clustered-decay structure.
  std::vector<std::array<double, 3>> centroid(static_cast<std::size_t>(nt));
  for (int t = 0; t < nt; ++t) {
    std::array<double, 3> c{0, 0, 0};
    const auto [lo, hi] = tile_atoms[static_cast<std::size_t>(t)];
    for (std::size_t i = lo; i < hi; ++i)
      for (int d = 0; d < 3; ++d) c[d] += atoms[i].pos[d];
    for (int d = 0; d < 3; ++d) c[d] /= static_cast<double>(hi - lo);
    centroid[static_cast<std::size_t>(t)] = c;
  }

  std::uint64_t sig = 1;
  for (int i = 0; i < nt; ++i) {
    for (int j = 0; j < nt; ++j) {
      double r = 0.0;
      for (int d = 0; d < 3; ++d) {
        const double dd = centroid[static_cast<std::size_t>(i)][d] -
                          centroid[static_cast<std::size_t>(j)][d];
        r += dd * dd;
      }
      r = std::sqrt(r);
      const double norm = std::exp(-r / p.screening_length);
      if (norm < p.threshold) continue;
      if (p.ghost) {
        m.set(i, j, Tile::ghost(m.panel(i), m.panel(j), sig++));
      } else {
        Tile t(m.panel(i), m.panel(j));
        // Per-element scale such that the Frobenius norm matches `norm`.
        const double scale =
            norm / std::sqrt(static_cast<double>(t.rows()) * t.cols());
        for (double& v : t.data()) v = scale * rng.uniform(-1.0, 1.0);
        m.set(i, j, std::move(t));
      }
    }
  }
  return m;
}

std::string structure_report(const BlockSparseMatrix& m) {
  std::ostringstream os;
  const auto nz = m.nonzeros();
  int min_p = m.panel(0), max_p = m.panel(0);
  for (int i = 0; i < m.ntiles(); ++i) {
    min_p = std::min(min_p, m.panel(i));
    max_p = std::max(max_p, m.panel(i));
  }
  // Occupancy as a function of |i - j| (the clustered decay profile).
  std::vector<std::uint64_t> band_nnz(8, 0), band_total(8, 0);
  for (int i = 0; i < m.ntiles(); ++i)
    for (int j = 0; j < m.ntiles(); ++j) {
      const int band = std::min<int>(7, std::abs(i - j) * 8 / std::max(1, m.ntiles()));
      band_total[static_cast<std::size_t>(band)]++;
      if (m.has(i, j)) band_nnz[static_cast<std::size_t>(band)]++;
    }
  os << "matrix dimension: " << m.n() << "\n"
     << "tile rows/cols:   " << m.ntiles() << " (panel sizes " << min_p << ".."
     << max_p << ")\n"
     << "nonzero tiles:    " << m.nnz_tiles() << " (" << nz.size() << ")\n"
     << "tile occupancy:   " << m.occupancy() << "\n"
     << "element nnz:      " << m.nnz_elements() << "\n"
     << "occupancy by |i-j| octile:";
  for (std::size_t b = 0; b < 8; ++b) {
    os << " "
       << (band_total[b] ? static_cast<double>(band_nnz[b]) /
                               static_cast<double>(band_total[b])
                         : 0.0);
  }
  os << "\n";
  return os.str();
}

}  // namespace ttg::sparse
