// Per-rank task scheduler: a pool of virtual cores over two queueing
// substrates.
//
// Each simulated rank runs `MachineModel::cores_per_node` worker cores
// (overridable per World via WorldConfig::workers_per_rank). Ready tasks
// carry a priority — the paper added priority maps to TTG precisely so the
// runtime can favor the critical path (e.g. small-k panels in POTRF) — and
// are dispatched through one of two substrates:
//
//   single queue (default, WorldConfig::work_stealing = off)
//     All cores pull from one per-rank priority queue,
//     highest-priority-first, FIFO among equals. This is the historical
//     scheduler every checked-in CI baseline was produced with; the steal
//     substrate below degenerates to it bit-identically when disabled
//     (pinned by tests/test_steal.cpp).
//
//   per-core deques with steal-half (WorldConfig::work_stealing = on)
//     Every core owns a deque. Tasks made ready inside a task body land on
//     the executing core's deque (producer-consumer locality); tasks made
//     ready outside any body (graph injection, message delivery) are placed
//     round-robin. A core pops its own deque LIFO (depth-first along its
//     continuation); a core whose deque runs dry first drains the per-job
//     overflow heaps, then steals the oldest half of a victim's deque —
//     same-socket victims first, then cross-socket, paying the NUMA-ish
//     steal distance from MachineModel::steal_latency_{local,remote}.
//     Victim selection is a pure function of (World seed, rank, attempt
//     ordinal), so seeded reruns are bit-identical. Priorities still order
//     the overflow heaps but not the deques: locality wins over priority
//     inside a core, which is exactly the trade work-stealing runtimes
//     make.
//
// Multi-tenancy (either substrate): every task belongs to a job (JobId; 0
// is the default job). A job may carry an in-flight cap: at most that many
// of its tasks occupy workers of this rank simultaneously; excess ready
// tasks stay queued even if workers are idle (admission pressure yields to
// other jobs). Capped jobs always queue through their per-job heap — never
// through a deque — so cap accounting is identical under stealing. A freed
// worker arbitrates between jobs' heaps under the rank's fairness policy:
//
//   Strict     — the globally best head by (priority desc, job id asc,
//                enqueue seq asc). Deterministic across jobs by
//                construction, never by map iteration accident; with a
//                single job it degenerates to the historical
//                (priority, FIFO) order bit-identically.
//   WeightedRR — weighted round-robin over jobs' ready queues: each
//                eligible job spends `weight` credits per round, queues are
//                visited in ascending JobId order, and within one job the
//                (priority, FIFO) order is preserved.
//
// Execution model: a task's body (real C++ code) runs at its *completion*
// instant on the virtual clock. Inputs are immutable once the task is
// ready, so running the body at start or at end of its virtual duration is
// observationally equivalent, and doing it at the end lets sends issued by
// the body take effect at exactly the right time without an effect buffer.
// CPU time charged *during* the body (serialization copies on sends) extends
// the worker's busy period beyond the nominal cost.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <queue>
#include <vector>

#include "runtime/job.hpp"
#include "runtime/trace.hpp"
#include "sim/engine.hpp"
#include "sim/resource.hpp"

namespace ttg::rt {

class DataTracker;  // runtime/datacopy.hpp

/// Work-stealing knobs for one rank's scheduler (wired by the World from
/// MachineModel + WorldConfig; see the header comment).
struct StealConfig {
  bool enabled = false;
  std::uint64_t seed = 1;         ///< World seed; victim draws derive from it
  int sockets = 1;                ///< sockets per node (cores split evenly)
  double latency_local = 0.0;     ///< intra-socket steal cost [s]
  double latency_remote = 0.0;    ///< cross-socket steal cost [s]
};

/// Per-rank work-stealing counters (surfaced in --trace-summary and the
/// bench --json outputs; all zero when stealing is off).
struct StealStats {
  std::uint64_t steals_local = 0;   ///< successful same-socket steals
  std::uint64_t steals_remote = 0;  ///< successful cross-socket steals
  std::uint64_t steal_fail = 0;     ///< scans that found every deque empty
  std::uint64_t tasks_stolen = 0;   ///< tasks moved by all steals
};

/// Device-plane knobs for one rank's scheduler (wired by the World from
/// MachineModel + WorldConfig::device; see DESIGN.md "Device placement &
/// residency"). Disabled = the historical host-only scheduler, bit-identical
/// to every checked-in baseline.
struct DeviceConfig {
  bool enabled = false;
  bool always = false;  ///< force every device-capable task onto a GPU
  int gpus = 0;         ///< accelerator lanes on this rank's node share
  double launch_overhead = 0.0;  ///< per-dispatched-kernel cost [s]
  double stage_latency = 0.0;    ///< per-H2D/D2H-transfer latency [s]
  double stage_bw = 1.0;         ///< host<->device bandwidth [B/s]
  std::uint64_t hbm_bytes = 0;   ///< device-memory capacity per GPU [B]
};

/// One datum a device task touches: a stable app-chosen tile tag, its
/// size, and whether the kernel writes it (a written resident is dirty and
/// pays a D2H transfer if evicted). Mirrors the ttg::device::Input/Output
/// declarations of real TTG device tasks.
struct DeviceDatum {
  std::uint64_t tag = 0;
  std::uint64_t bytes = 0;
  bool write = false;
};

/// A task's device variant (the op_cuda alternative to the host op):
/// device-kernel seconds plus the datums the kernel touches. Staging and
/// launch overhead are *not* included in `cost`; the scheduler derives them
/// from residency state and the DeviceConfig.
struct DeviceCall {
  double cost = 0.0;
  std::vector<DeviceDatum> datums;
};

/// Per-rank device-plane counters (all zero when the plane is disabled).
struct DeviceStats {
  std::uint64_t device_tasks = 0;   ///< device-capable tasks placed on a GPU
  std::uint64_t host_tasks = 0;     ///< device-capable tasks kept on the host
  std::uint64_t h2d_transfers = 0;  ///< cold-input staging transfers
  std::uint64_t h2d_bytes = 0;
  std::uint64_t d2h_transfers = 0;  ///< dirty-eviction writebacks
  std::uint64_t d2h_bytes = 0;
  std::uint64_t residency_hits = 0;    ///< inputs already resident on the GPU
  std::uint64_t residency_misses = 0;  ///< inputs that had to be staged
  std::uint64_t evictions = 0;         ///< residents pushed out under pressure
};

/// Priority scheduler over `workers` virtual cores of one rank.
class Scheduler {
 public:
  /// Per-job scheduling counters (tests assert cap compliance on these).
  struct JobCounters {
    std::uint64_t submitted = 0;  ///< tasks enqueued for this job
    std::uint64_t tasks_run = 0;  ///< bodies executed
    int inflight = 0;             ///< tasks currently occupying workers
    int max_inflight = 0;         ///< peak of inflight over the run
  };

  Scheduler(sim::Engine& engine, int rank, int workers);

  /// Enqueue a ready task: `cost` virtual seconds of compute, then `body`
  /// executes (and may add post-body CPU via charge()). Runs as the
  /// default job (0).
  void submit(int priority, double cost, std::function<void()> body);

  /// Like submit(), with a template-task name recorded in the tracer
  /// (if tracing is enabled on this world).
  void submit(int priority, double cost, std::string name, std::function<void()> body);

  /// Like submit(), with both the template-task name and the rendered task
  /// key recorded in the tracer.
  void submit(int priority, double cost, std::string name, std::string key,
              std::function<void()> body);

  /// Enqueue a ready task on behalf of `job`.
  void submit(JobId job, int priority, double cost, std::function<void()> body);
  void submit(JobId job, int priority, double cost, std::string name, std::string key,
              std::function<void()> body);

  /// Install per-job scheduling knobs (WRR weight, in-flight cap). Raising
  /// a cap dispatches newly-eligible queued tasks onto idle workers.
  void configure_job(JobId job, int weight, int inflight_cap);

  /// Select how freed workers arbitrate between jobs' ready queues.
  void set_fairness(FairnessMode mode) { fairness_ = mode; }
  [[nodiscard]] FairnessMode fairness() const { return fairness_; }

  /// Arm (or disable) the per-core deque substrate. Call before any task is
  /// submitted; the off state is the historical single-queue scheduler.
  void configure_steal(const StealConfig& cfg);
  [[nodiscard]] const StealConfig& steal_config() const { return steal_; }
  [[nodiscard]] const StealStats& steal_stats() const { return steal_stats_; }

  /// Arm the device plane: per-GPU FIFO resource lanes plus the residency
  /// table. Call before any task is submitted; disabled (the default) makes
  /// submit_device() forward to the host path bit-identically.
  void configure_device(const DeviceConfig& cfg);
  [[nodiscard]] const DeviceConfig& device_config() const { return device_; }
  [[nodiscard]] const DeviceStats& device_stats() const { return device_stats_; }
  /// Busy seconds summed over this rank's GPU lanes.
  [[nodiscard]] double device_busy() const;
  /// Payload bytes currently resident across this rank's GPUs (the
  /// scheduler-side view World::fence() reconciles against the DataTracker).
  [[nodiscard]] std::uint64_t device_resident_bytes() const;

  /// Device-lifecycle accounting sink (the World's DataTracker); staging
  /// transfers, hits, and evictions are reported into it when set.
  void set_data_tracker(DataTracker* tracker) { data_tracker_ = tracker; }

  /// Enqueue a ready task that carries a device variant. With the device
  /// plane enabled, placement is the greedy cost-model decision
  ///   min(host_cost, device cost + launch + staging for non-resident
  ///       inputs + lane queue wait)
  /// (or forced onto a GPU under DeviceConfig::always); otherwise this is
  /// exactly submit(). `name`/`key` feed the tracer like the host overloads.
  void submit_device(JobId job, int priority, double host_cost, DeviceCall dev,
                     std::function<void()> body);
  void submit_device(JobId job, int priority, double host_cost, DeviceCall dev,
                     std::string name, std::string key, std::function<void()> body);

  /// Per-job counters (a zero record for jobs never seen on this rank).
  [[nodiscard]] const JobCounters& job_counters(JobId job) const;

  /// Attach an execution tracer (owned by the World).
  void set_tracer(Tracer* tracer) { tracer_ = tracer; }
  [[nodiscard]] bool tracing() const { return tracer_ != nullptr; }

  /// Scale all compute on this rank by `f` (>1 models a straggler: thermal
  /// throttling, a noisy neighbor, a degraded socket). Applies to task costs
  /// and in-body charges alike; 1.0 is an exact no-op.
  void set_compute_factor(double f);
  [[nodiscard]] double compute_factor() const { return compute_factor_; }

  /// Extend the currently-executing task's worker occupancy by `dt` seconds
  /// (serialization copies issued from inside a task body). Returns the
  /// total post-body CPU accumulated *including* this charge, so the caller
  /// can delay dependent actions (e.g. wire injection) until the copy is
  /// done. Returns 0 outside a task body (graph injection is uncharged).
  double charge(double dt);

  /// Total accumulated CPU time charged after the current body so far
  /// (zero when not inside a task body).
  [[nodiscard]] double current_charge() const { return in_task_ ? *charge_accum_ : 0.0; }

  [[nodiscard]] int rank() const { return rank_; }
  [[nodiscard]] int workers() const { return workers_; }
  [[nodiscard]] double busy_time() const { return busy_; }
  /// Busy seconds of one core (task spans + charges + steal scans).
  [[nodiscard]] double core_busy(int worker) const {
    return core_busy_[static_cast<std::size_t>(worker)];
  }
  /// Socket a core belongs to (cores split evenly over the configured
  /// sockets; the last socket absorbs the remainder).
  [[nodiscard]] int socket_of(int worker) const;
  [[nodiscard]] std::uint64_t tasks_run() const { return tasks_run_; }
  [[nodiscard]] std::size_t queued() const;

 private:
  struct Ready {
    JobId job;
    int priority;
    std::uint64_t seq;
    double cost;
    std::function<void()> body;
    std::uint32_t trace_node;  ///< Tracer node id, or Tracer::kNoNode
  };
  struct Worse {
    bool operator()(const Ready& a, const Ready& b) const {
      if (a.priority != b.priority) return a.priority < b.priority;  // max-heap
      return a.seq > b.seq;                                          // FIFO ties
    }
  };
  /// One job's ready queue + scheduling knobs and counters.
  struct JobQueue {
    std::priority_queue<Ready, std::vector<Ready>, Worse> heap;
    int weight = 1;        ///< WRR share
    int cap = 0;           ///< in-flight cap (0 = unlimited)
    int credits = 0;       ///< remaining WRR credits this round
    JobCounters counters;
  };

  /// One device-resident tile on one GPU.
  struct Resident {
    std::uint64_t bytes = 0;
    std::uint64_t last_use = 0;  ///< LRU ordinal (monotone dispatch clock)
    bool dirty = false;          ///< written on device; eviction pays a D2H
  };

  void submit_node(JobId job, int priority, double cost, std::uint32_t trace_node,
                   std::function<void()> body);
  void submit_device_node(JobId job, int priority, double host_cost, DeviceCall dev,
                          std::uint32_t trace_node, std::function<void()> body);
  /// Commit `dev`'s datums to GPU `gpu`'s residency table (hits, stagings,
  /// evictions, tracker + tracer reporting); returns the staging seconds the
  /// dispatch pays before the kernel can launch.
  double stage_datums(JobId job, int gpu, const DeviceCall& dev);
  /// Queue one placed device task on its GPU lane.
  void start_device(Ready task, int gpu, double service);
  void start(Ready task, int worker);
  /// A core finished its task (post-body charges drained): find it more
  /// work or park it on the idle list.
  void release_worker(int worker, JobId job);
  /// Steal-mode scan: steal the oldest half of a victim deque (same-socket
  /// victims first) or park the core. Only called with every local source
  /// (own deque, job heaps) exhausted.
  void try_steal(int worker);
  [[nodiscard]] static bool eligible(const JobQueue& jq) {
    return !jq.heap.empty() && (jq.cap == 0 || jq.counters.inflight < jq.cap);
  }
  /// Cross-job head order: (priority desc, job id asc, enqueue seq asc).
  [[nodiscard]] static bool head_before(const Ready& a, const Ready& b) {
    if (a.priority != b.priority) return a.priority > b.priority;
    if (a.job != b.job) return a.job < b.job;
    return a.seq < b.seq;
  }
  static Ready pop_top(JobQueue& jq);
  /// Pick the next task a freed worker should run (fairness policy applied);
  /// false when no job has an eligible ready task.
  bool pop_next(Ready& out);
  /// Dispatch eligible queued tasks onto idle workers (after a cap raise).
  void dispatch_idle();

  sim::Engine& engine_;
  int rank_;
  int workers_;
  std::vector<int> idle_workers_;  ///< free worker indices (LIFO)
  std::uint64_t next_seq_ = 0;
  std::uint64_t tasks_run_ = 0;
  double busy_ = 0.0;
  std::vector<double> core_busy_;  ///< per-core slice of busy_
  double compute_factor_ = 1.0;
  bool in_task_ = false;
  int current_worker_ = -1;  ///< core whose body is executing (-1 outside)
  double* charge_accum_ = nullptr;
  Tracer* tracer_ = nullptr;
  FairnessMode fairness_ = FairnessMode::Strict;
  std::map<JobId, JobQueue> queues_;  ///< ordered: deterministic job scans
  // --- steal substrate (empty/zero when steal_.enabled is false) ---
  StealConfig steal_;
  StealStats steal_stats_;
  std::vector<std::deque<Ready>> deques_;  ///< per-core deques (steal mode)
  std::uint64_t steal_attempts_ = 0;       ///< victim-draw ordinal
  int rr_cursor_ = 0;  ///< round-robin core for outside-body submissions
  // --- device plane (empty/zero when device_.enabled is false) ---
  DeviceConfig device_;
  DeviceStats device_stats_;
  DataTracker* data_tracker_ = nullptr;
  std::vector<std::unique_ptr<sim::FifoResource>> gpu_lanes_;
  /// Per-GPU residency: (job, tile tag) -> resident entry. Keyed by job so
  /// concurrent serving-mode jobs never alias each other's tiles; ordered,
  /// so LRU scans are deterministic.
  std::vector<std::map<std::pair<JobId, std::uint64_t>, Resident>> gpu_resident_;
  std::vector<std::uint64_t> gpu_resident_bytes_;
  std::uint64_t device_clock_ = 0;  ///< LRU ordinal source
};

}  // namespace ttg::rt
