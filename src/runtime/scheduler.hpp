// Per-rank task scheduler.
//
// Each simulated rank runs a pool of worker threads (60 on Hawk, 40 on
// Seawulf in the paper's runs). Ready tasks carry a priority — the paper
// added priority maps to TTG precisely so the runtime can favor the
// critical path (e.g. small-k panels in POTRF) — and are executed
// highest-priority-first, FIFO among equals.
//
// Multi-tenancy: every task belongs to a job (JobId; 0 is the default job)
// and ready tasks queue per job. A freed worker picks its next task under
// the rank's fairness policy:
//
//   Strict     — the globally best head by (priority desc, job id asc,
//                enqueue seq asc). Deterministic across jobs by
//                construction, never by map iteration accident; with a
//                single job it degenerates to the historical
//                (priority, FIFO) order bit-identically.
//   WeightedRR — weighted round-robin over jobs' ready queues: each
//                eligible job spends `weight` credits per round, queues are
//                visited in ascending JobId order, and within one job the
//                (priority, FIFO) order is preserved.
//
// A job may carry an in-flight cap: at most that many of its tasks occupy
// workers of this rank simultaneously; excess ready tasks stay queued even
// if workers are idle (admission pressure yields to other jobs).
//
// Execution model: a task's body (real C++ code) runs at its *completion*
// instant on the virtual clock. Inputs are immutable once the task is
// ready, so running the body at start or at end of its virtual duration is
// observationally equivalent, and doing it at the end lets sends issued by
// the body take effect at exactly the right time without an effect buffer.
// CPU time charged *during* the body (serialization copies on sends) extends
// the worker's busy period beyond the nominal cost.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <queue>
#include <vector>

#include "runtime/job.hpp"
#include "runtime/trace.hpp"
#include "sim/engine.hpp"

namespace ttg::rt {

/// Priority scheduler over `workers` identical virtual cores of one rank.
class Scheduler {
 public:
  /// Per-job scheduling counters (tests assert cap compliance on these).
  struct JobCounters {
    std::uint64_t submitted = 0;  ///< tasks enqueued for this job
    std::uint64_t tasks_run = 0;  ///< bodies executed
    int inflight = 0;             ///< tasks currently occupying workers
    int max_inflight = 0;         ///< peak of inflight over the run
  };

  Scheduler(sim::Engine& engine, int rank, int workers);

  /// Enqueue a ready task: `cost` virtual seconds of compute, then `body`
  /// executes (and may add post-body CPU via charge()). Runs as the
  /// default job (0).
  void submit(int priority, double cost, std::function<void()> body);

  /// Like submit(), with a template-task name recorded in the tracer
  /// (if tracing is enabled on this world).
  void submit(int priority, double cost, std::string name, std::function<void()> body);

  /// Like submit(), with both the template-task name and the rendered task
  /// key recorded in the tracer.
  void submit(int priority, double cost, std::string name, std::string key,
              std::function<void()> body);

  /// Enqueue a ready task on behalf of `job`.
  void submit(JobId job, int priority, double cost, std::function<void()> body);
  void submit(JobId job, int priority, double cost, std::string name, std::string key,
              std::function<void()> body);

  /// Install per-job scheduling knobs (WRR weight, in-flight cap). Raising
  /// a cap dispatches newly-eligible queued tasks onto idle workers.
  void configure_job(JobId job, int weight, int inflight_cap);

  /// Select how freed workers arbitrate between jobs' ready queues.
  void set_fairness(FairnessMode mode) { fairness_ = mode; }
  [[nodiscard]] FairnessMode fairness() const { return fairness_; }

  /// Per-job counters (a zero record for jobs never seen on this rank).
  [[nodiscard]] const JobCounters& job_counters(JobId job) const;

  /// Attach an execution tracer (owned by the World).
  void set_tracer(Tracer* tracer) { tracer_ = tracer; }
  [[nodiscard]] bool tracing() const { return tracer_ != nullptr; }

  /// Scale all compute on this rank by `f` (>1 models a straggler: thermal
  /// throttling, a noisy neighbor, a degraded socket). Applies to task costs
  /// and in-body charges alike; 1.0 is an exact no-op.
  void set_compute_factor(double f);
  [[nodiscard]] double compute_factor() const { return compute_factor_; }

  /// Extend the currently-executing task's worker occupancy by `dt` seconds
  /// (serialization copies issued from inside a task body). Returns the
  /// total post-body CPU accumulated *including* this charge, so the caller
  /// can delay dependent actions (e.g. wire injection) until the copy is
  /// done. Returns 0 outside a task body (graph injection is uncharged).
  double charge(double dt);

  /// Total accumulated CPU time charged after the current body so far
  /// (zero when not inside a task body).
  [[nodiscard]] double current_charge() const { return in_task_ ? *charge_accum_ : 0.0; }

  [[nodiscard]] int rank() const { return rank_; }
  [[nodiscard]] int workers() const { return workers_; }
  [[nodiscard]] double busy_time() const { return busy_; }
  [[nodiscard]] std::uint64_t tasks_run() const { return tasks_run_; }
  [[nodiscard]] std::size_t queued() const;

 private:
  struct Ready {
    JobId job;
    int priority;
    std::uint64_t seq;
    double cost;
    std::function<void()> body;
    std::uint32_t trace_node;  ///< Tracer node id, or Tracer::kNoNode
  };
  struct Worse {
    bool operator()(const Ready& a, const Ready& b) const {
      if (a.priority != b.priority) return a.priority < b.priority;  // max-heap
      return a.seq > b.seq;                                          // FIFO ties
    }
  };
  /// One job's ready queue + scheduling knobs and counters.
  struct JobQueue {
    std::priority_queue<Ready, std::vector<Ready>, Worse> heap;
    int weight = 1;        ///< WRR share
    int cap = 0;           ///< in-flight cap (0 = unlimited)
    int credits = 0;       ///< remaining WRR credits this round
    JobCounters counters;
  };

  void submit_node(JobId job, int priority, double cost, std::uint32_t trace_node,
                   std::function<void()> body);
  void start(Ready task, int worker);
  [[nodiscard]] static bool eligible(const JobQueue& jq) {
    return !jq.heap.empty() && (jq.cap == 0 || jq.counters.inflight < jq.cap);
  }
  /// Cross-job head order: (priority desc, job id asc, enqueue seq asc).
  [[nodiscard]] static bool head_before(const Ready& a, const Ready& b) {
    if (a.priority != b.priority) return a.priority > b.priority;
    if (a.job != b.job) return a.job < b.job;
    return a.seq < b.seq;
  }
  static Ready pop_top(JobQueue& jq);
  /// Pick the next task a freed worker should run (fairness policy applied);
  /// false when no job has an eligible ready task.
  bool pop_next(Ready& out);
  /// Dispatch eligible queued tasks onto idle workers (after a cap raise).
  void dispatch_idle();

  sim::Engine& engine_;
  int rank_;
  int workers_;
  std::vector<int> idle_workers_;  ///< free worker indices (LIFO)
  std::uint64_t next_seq_ = 0;
  std::uint64_t tasks_run_ = 0;
  double busy_ = 0.0;
  double compute_factor_ = 1.0;
  bool in_task_ = false;
  double* charge_accum_ = nullptr;
  Tracer* tracer_ = nullptr;
  FairnessMode fairness_ = FairnessMode::Strict;
  std::map<JobId, JobQueue> queues_;  ///< ordered: deterministic job scans
};

}  // namespace ttg::rt
