// Per-rank task scheduler.
//
// Each simulated rank runs a pool of worker threads (60 on Hawk, 40 on
// Seawulf in the paper's runs). Ready tasks carry a priority — the paper
// added priority maps to TTG precisely so the runtime can favor the
// critical path (e.g. small-k panels in POTRF) — and are executed
// highest-priority-first, FIFO among equals.
//
// Execution model: a task's body (real C++ code) runs at its *completion*
// instant on the virtual clock. Inputs are immutable once the task is
// ready, so running the body at start or at end of its virtual duration is
// observationally equivalent, and doing it at the end lets sends issued by
// the body take effect at exactly the right time without an effect buffer.
// CPU time charged *during* the body (serialization copies on sends) extends
// the worker's busy period beyond the nominal cost.
#pragma once

#include <cstdint>
#include <functional>
#include <queue>
#include <vector>

#include "runtime/trace.hpp"
#include "sim/engine.hpp"

namespace ttg::rt {

/// Priority scheduler over `workers` identical virtual cores of one rank.
class Scheduler {
 public:
  Scheduler(sim::Engine& engine, int rank, int workers);

  /// Enqueue a ready task: `cost` virtual seconds of compute, then `body`
  /// executes (and may add post-body CPU via charge()).
  void submit(int priority, double cost, std::function<void()> body);

  /// Like submit(), with a template-task name recorded in the tracer
  /// (if tracing is enabled on this world).
  void submit(int priority, double cost, std::string name, std::function<void()> body);

  /// Like submit(), with both the template-task name and the rendered task
  /// key recorded in the tracer.
  void submit(int priority, double cost, std::string name, std::string key,
              std::function<void()> body);

  /// Attach an execution tracer (owned by the World).
  void set_tracer(Tracer* tracer) { tracer_ = tracer; }
  [[nodiscard]] bool tracing() const { return tracer_ != nullptr; }

  /// Scale all compute on this rank by `f` (>1 models a straggler: thermal
  /// throttling, a noisy neighbor, a degraded socket). Applies to task costs
  /// and in-body charges alike; 1.0 is an exact no-op.
  void set_compute_factor(double f);
  [[nodiscard]] double compute_factor() const { return compute_factor_; }

  /// Extend the currently-executing task's worker occupancy by `dt` seconds
  /// (serialization copies issued from inside a task body). Returns the
  /// total post-body CPU accumulated *including* this charge, so the caller
  /// can delay dependent actions (e.g. wire injection) until the copy is
  /// done. Returns 0 outside a task body (graph injection is uncharged).
  double charge(double dt);

  /// Total accumulated CPU time charged after the current body so far
  /// (zero when not inside a task body).
  [[nodiscard]] double current_charge() const { return in_task_ ? *charge_accum_ : 0.0; }

  [[nodiscard]] int rank() const { return rank_; }
  [[nodiscard]] int workers() const { return workers_; }
  [[nodiscard]] double busy_time() const { return busy_; }
  [[nodiscard]] std::uint64_t tasks_run() const { return tasks_run_; }
  [[nodiscard]] std::size_t queued() const { return queue_.size(); }

 private:
  struct Ready {
    int priority;
    std::uint64_t seq;
    double cost;
    std::function<void()> body;
    std::uint32_t trace_node;  ///< Tracer node id, or Tracer::kNoNode
  };
  struct Worse {
    bool operator()(const Ready& a, const Ready& b) const {
      if (a.priority != b.priority) return a.priority < b.priority;  // max-heap
      return a.seq > b.seq;                                          // FIFO ties
    }
  };

  void submit_node(int priority, double cost, std::uint32_t trace_node,
                   std::function<void()> body);
  void start(Ready task, int worker);

  sim::Engine& engine_;
  int rank_;
  int workers_;
  std::vector<int> idle_workers_;  ///< free worker indices (LIFO)
  std::uint64_t next_seq_ = 0;
  std::uint64_t tasks_run_ = 0;
  double busy_ = 0.0;
  double compute_factor_ = 1.0;
  bool in_task_ = false;
  double* charge_accum_ = nullptr;
  Tracer* tracer_ = nullptr;
  std::priority_queue<Ready, std::vector<Ready>, Worse> queue_;
};

}  // namespace ttg::rt
