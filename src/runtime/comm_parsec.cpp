#include "runtime/comm_parsec.hpp"

#include <algorithm>
#include <string>

#include "runtime/collective.hpp"
#include "runtime/resilience.hpp"

namespace ttg::rt {

namespace {
// PaRSEC's dependence tracking and scheduling cost per task is small —
// a few hundred nanoseconds in published microbenchmarks.
constexpr double kParsecTaskOverhead = 3.0e-7;
}  // namespace

ParsecComm::ParsecComm(sim::Engine& engine, net::Network& network, double am_cpu_factor,
                       double task_overhead_override, bool enable_splitmd)
    : engine_(engine),
      network_(network),
      am_cpu_(network.machine().am_cpu * am_cpu_factor),
      task_overhead_(task_overhead_override >= 0 ? task_overhead_override
                                                 : kParsecTaskOverhead),
      enable_splitmd_(enable_splitmd) {
  policy_ = default_policy();
  collective_ = default_collective();
  set_flush_engine(engine);
  comm_thread_.reserve(static_cast<std::size_t>(network.nranks()));
  for (int r = 0; r < network.nranks(); ++r) {
    comm_thread_.push_back(
        std::make_unique<sim::FifoResource>(engine, "parsec-comm" + std::to_string(r)));
  }
}

CollectivePolicy ParsecComm::default_collective() const {
  const collective::Tuning t = collective::derive_tuning(network_.machine());
  return {/*tree_arity=*/t.arity, /*am_flush_window=*/t.window,
          /*reduce_arity=*/t.arity, /*adaptive=*/false,
          /*am_coalesce_max=*/t.am_coalesce_max};
}

double ParsecComm::send_side_cpu(std::size_t bytes, ser::Protocol p) const {
  switch (p) {
    case ser::Protocol::SplitMetadata:
      // Metadata serialization only; payload is fetched one-sidedly from
      // registered memory with no CPU copy at either end.
      return am_cpu_;
    case ser::Protocol::Trivial:
      // Contiguous trivially-copyable objects go to the wire directly from
      // object memory (no staging copy).
      return am_cpu_;
    case ser::Protocol::Archive:
      // One staging copy: object -> serialization buffer.
      return am_cpu_ + network_.machine().copy_time(bytes);
  }
  return 0.0;
}

void ParsecComm::process_incoming(int dst, double service,
                                  std::function<void()> deliver) {
  // The comm thread handles the AM and performs the single
  // buffer -> object copy for whole-object protocols.
  auto& thread = *comm_thread_[static_cast<std::size_t>(dst)];
  if (tracer_ != nullptr) {
    const double at = engine_.now();
    tracer_->record_server(dst, at, std::max(0.0, thread.free_at() - at), service);
  }
  thread.submit(service, std::move(deliver));
}

void ParsecComm::enable_resilience(const sim::FaultPlan& plan) {
  make_reliable(engine_, network_, plan);
}

void ParsecComm::wire_send(int src, int dst, std::size_t wire_bytes,
                           std::function<void()> deliver) {
  auto handle = [this, dst, wire_bytes, deliver = std::move(deliver)]() mutable {
    const double service = am_cpu_ + network_.machine().copy_time(wire_bytes);
    process_incoming(dst, service, std::move(deliver));
  };
  if (reliable_) {
    reliable_->send(src, dst, wire_bytes, std::move(handle));
  } else {
    network_.send(src, dst, wire_bytes, std::move(handle));
  }
}

void ParsecComm::send_splitmd(int src, int dst, std::size_t md_bytes,
                              std::size_t payload_bytes, std::function<void()> on_metadata,
                              std::function<void()> on_payload,
                              std::function<void()> on_release) {
  TTG_CHECK(enable_splitmd_, "splitmd disabled on this world");
  stats_.splitmd_sends += 1;
  note_job_splitmd(md_bytes + payload_bytes);
  // Stage 1: metadata + registration info ride the eager protocol (with
  // ack/retry when resilience is on — a lost metadata AM stalls the whole
  // transfer, so it is protected like any other active message).
  auto on_md_arrived = [this, src, dst, payload_bytes,
                        on_metadata = std::move(on_metadata),
                        on_payload = std::move(on_payload),
                        on_release = std::move(on_release)]() mutable {
    process_incoming(
        dst, am_cpu_,
        [this, src, dst, payload_bytes, on_metadata = std::move(on_metadata),
         on_payload = std::move(on_payload), on_release = std::move(on_release)]() mutable {
          // Receiver allocates the object from metadata...
          on_metadata();
          // ...then fetches the contiguous payload with a one-sided get.
          // No CPU copy: the data lands in the new object's memory. The
          // sender is notified on completion and releases the source.
          // Under resilience a stalled get is re-issued after a timeout.
          const double issued = engine_.now();
          auto landed = [this, src, dst, payload_bytes, issued,
                         on_payload = std::move(on_payload)]() mutable {
            if (tracer_ != nullptr)
              tracer_->record_rma(src, dst, payload_bytes, issued, engine_.now());
            on_payload();
          };
          if (reliable_) {
            reliable_->rma_fetch(src, dst, payload_bytes, std::move(landed),
                                 std::move(on_release));
          } else {
            network_.rma_get(src, dst, payload_bytes, std::move(landed),
                             std::move(on_release));
          }
        });
  };
  if (reliable_) {
    reliable_->send(src, dst, md_bytes, std::move(on_md_arrived));
  } else {
    network_.send_eager(src, dst, md_bytes, std::move(on_md_arrived));
  }
}

}  // namespace ttg::rt
