// Collective routing: spanning-tree shape helpers for tree-routed
// broadcasts (paper Section II-A's optimized ttg::broadcast, extended the
// way TaskTorrent and Specx route one-to-many dataflow through intermediate
// ranks).
//
// A coalesced broadcast to M remote destinations is laid out as a
// heap-shaped k-ary tree over *positions* 0..M: position 0 is the sender
// (root), positions 1..M are the destinations in ascending-rank order (the
// order the terminal's per-destination map yields, so the shape is a pure
// function of the member set and the arity — deterministic and
// reproducible). The children of position p are positions k*p+1 .. k*p+k,
// clipped to M; with M <= k the tree degenerates to the flat root-to-all
// pattern bit-identically.
//
// These are pure functions so tests can pin the shape down without running
// a world.
#pragma once

#include <vector>

namespace ttg::rt::collective {

/// Child positions of `pos` in the heap-shaped k-ary tree over positions
/// 0..nmembers (position 0 = root/sender). `arity` < 1 is treated as 1.
[[nodiscard]] std::vector<int> tree_children(int pos, int nmembers, int arity);

/// All member positions in the subtree rooted at `pos` (including `pos`
/// itself when > 0), in deterministic preorder. For pos == 0 this is every
/// member 1..nmembers.
[[nodiscard]] std::vector<int> tree_subtree(int pos, int nmembers, int arity);

/// Number of members in the subtree rooted at `pos` (pos itself included
/// when > 0).
[[nodiscard]] int tree_subtree_size(int pos, int nmembers, int arity);

/// Depth of the deepest member (root = depth 0): the number of serial hops
/// a tree broadcast takes — O(log_k M).
[[nodiscard]] int tree_depth(int nmembers, int arity);

}  // namespace ttg::rt::collective
