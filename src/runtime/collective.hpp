// Collective routing: spanning-tree shape helpers for tree-routed
// broadcasts and streaming reductions (paper Section II-A's optimized
// ttg::broadcast, extended the way TaskTorrent and Specx route one-to-many
// and many-to-one dataflow through intermediate ranks).
//
// A coalesced broadcast to M remote destinations is laid out as a
// heap-shaped k-ary tree over *positions* 0..M: position 0 is the sender
// (root), positions 1..M are the destinations in ascending-rank order (the
// order the terminal's per-destination map yields, so the shape is a pure
// function of the member set and the arity — deterministic and
// reproducible). The children of position p are positions k*p+1 .. k*p+k,
// clipped to M; with M <= k the tree degenerates to the flat root-to-all
// pattern bit-identically.
//
// Streaming reductions route the same trees *inverted*: members send
// combined partial values toward position 0 (the key's owner rank).
//
// On top of the pure heap shape sits a topology-aware layout (build_tree):
// a Topology declares how many consecutive ranks share a node, and the
// member order is rearranged so each node's ranks form one subtree that is
// entered by exactly one inter-node edge — subtrees pack onto a node
// before the route crosses the network. With ranks_per_node <= 1 the
// layout degenerates to the plain heap over ascending ranks, so default
// worlds keep the historical (PR-4) shapes bit-identically.
//
// These are pure functions so tests can pin shapes down without running a
// world.
#pragma once

#include <cstddef>
#include <vector>

namespace ttg::rt {
struct CollectivePolicy;  // runtime/comm.hpp
}
namespace ttg::sim {
struct MachineModel;  // sim/machine.hpp
}

namespace ttg::rt::collective {

/// Child positions of `pos` in the heap-shaped k-ary tree over positions
/// 0..nmembers (position 0 = root/sender). `arity` < 1 is treated as 1.
[[nodiscard]] std::vector<int> tree_children(int pos, int nmembers, int arity);

/// All member positions in the subtree rooted at `pos` (including `pos`
/// itself when > 0), in deterministic preorder. For pos == 0 this is every
/// member 1..nmembers.
[[nodiscard]] std::vector<int> tree_subtree(int pos, int nmembers, int arity);

/// Number of members in the subtree rooted at `pos` (pos itself included
/// when > 0).
[[nodiscard]] int tree_subtree_size(int pos, int nmembers, int arity);

/// Depth of the deepest member (root = depth 0): the number of serial hops
/// a tree broadcast takes — O(log_k M).
[[nodiscard]] int tree_depth(int nmembers, int arity);

/// Machine model for topology-aware tree layout: `ranks_per_node`
/// consecutive ranks share a node (the usual block process mapping), so
/// rank r lives on node r / ranks_per_node. <= 1 means every rank is its
/// own node (layout reduces to the plain heap over ascending ranks).
struct Topology {
  int ranks_per_node = 1;
  [[nodiscard]] int node_of(int rank) const {
    return ranks_per_node > 1 ? rank / ranks_per_node : rank;
  }
  [[nodiscard]] bool same_node(int a, int b) const { return node_of(a) == node_of(b); }
};

/// An explicit tree over member *positions*: position 0 is the root rank,
/// positions 1..M are the members in layout order. Built once per
/// (root, member set, arity, topology) and shared by every hop.
struct TreeShape {
  std::vector<int> ranks;                  ///< position -> rank (ranks[0] = root)
  std::vector<std::vector<int>> children;  ///< position -> child positions
  std::vector<int> parent;                 ///< position -> parent (parent[0] = -1)
  [[nodiscard]] int nmembers() const { return static_cast<int>(ranks.size()) - 1; }
};

/// Topology-aware member order for a tree rooted at `root_rank`: members on
/// the root's node first, then the remaining members grouped by node
/// (nodes ascending), ranks ascending within each group. With
/// ranks_per_node <= 1 this is simply ascending rank order.
[[nodiscard]] std::vector<int> layout_members(int root_rank, std::vector<int> members,
                                              const Topology& topo);

/// Build the k-ary tree over `members` rooted at `root_rank`, packing each
/// node's members into one subtree: the root-node group and the leader
/// (lowest-rank member) of every other node hang as a heap under the root;
/// a group's remaining members hang as a heap under their leader. Exactly
/// one inter-node edge enters each non-root node's group. With
/// ranks_per_node <= 1 every group is a singleton, and the shape is the
/// plain position heap over ascending ranks (identical to tree_children).
[[nodiscard]] TreeShape build_tree(int root_rank, std::vector<int> members, int arity,
                                   const Topology& topo);

/// All member positions in the subtree rooted at `pos` of an explicit
/// shape (pos itself included when > 0), in deterministic preorder.
[[nodiscard]] std::vector<int> shape_subtree(const TreeShape& shape, int pos);

/// Depth of the deepest member of an explicit shape (root = depth 0).
[[nodiscard]] int shape_depth(const TreeShape& shape);

/// Adaptive arity selection (CollectivePolicy::adaptive): derive the tree
/// arity for one collective from its fan (destination count for a
/// broadcast, contributor bound for a reduction) and payload size.
/// Bandwidth-bound payloads (>= 256 KB) prefer a deep binary tree (better
/// hop pipelining); latency-bound coalescable AMs (<= kAmCoalesceMaxBytes)
/// with a wide fan (>= 8x the base arity) double the arity to cut depth.
/// With `adaptive` off — both backends' default — returns the policy's
/// static arity unchanged. Reductions must pass a *static* payload hint
/// (sizeof the value type): every rank derives the tree independently, so
/// the inputs must be rank-invariant; broadcast roots may use the actual
/// serialized size since the root alone decides the shape.
[[nodiscard]] int pick_arity(const CollectivePolicy& policy, bool reduce, int fan,
                             std::size_t payload_bytes);

/// Collective tuning derived from the machine model instead of per-backend
/// constants (carried-forward ROADMAP item). The shapes are functions of
/// the AM path's bandwidth-delay-like product — the bytes the NIC moves in
/// one per-message CPU interval:
///
///   am_coalesce_max — that product rounded up to a power of two, capped at
///                     half the eager threshold so a coalesced batch (plus
///                     framing) stays on the eager protocol;
///   arity           — one tree child per KiB of coalescing headroom,
///                     clamped to [2, 8]: fatter links amortize more
///                     concurrent child sends per store-and-forward hop;
///   window          — the AM service interval (per-message CPU plus half
///                     the wire latency) rounded to the nearest decade, so
///                     the window covers a burst issued back-to-back by one
///                     task body without delaying unrelated traffic.
///
/// On the hawk and seawulf presets this reproduces the historical static
/// tuning {arity 4, window 1 us, coalesce max 4096} bit-identically
/// (pinned by tests/test_device.cpp), so checked-in baselines are
/// unchanged; on machine models with very different NIC/CPU ratios the
/// tuning scales instead of staying frozen.
struct Tuning {
  int arity = 0;
  double window = 0.0;
  std::size_t am_coalesce_max = 0;
};
[[nodiscard]] Tuning derive_tuning(const sim::MachineModel& m);

}  // namespace ttg::rt::collective
