// MADNESS-like communication engine.
//
// Models the MADNESS parallel runtime as described in Section II-D: an SPMD
// model with "a thread dedicated to serving remote active messages" — every
// incoming message is deserialized and dispatched by that single server
// thread, which becomes a serialization point under communication-heavy
// loads. Data always moves as whole serialized objects (MADNESS
// serialization), paying a staging copy on the send side and a copy out of
// the receive buffer, with no RMA path. This is the copy/overhead profile
// the paper cites to explain why TTG-over-MADNESS trails TTG-over-PaRSEC in
// the FW and MRA experiments.
#pragma once

#include <memory>
#include <vector>

#include "net/network.hpp"
#include "runtime/comm.hpp"
#include "sim/resource.hpp"

namespace ttg::rt {

class MadnessComm final : public CommEngine {
 public:
  MadnessComm(sim::Engine& engine, net::Network& network, double am_cpu_factor,
              double task_overhead_override);

  [[nodiscard]] const char* name() const override { return "madness"; }
  [[nodiscard]] double task_overhead() const override { return task_overhead_; }
  [[nodiscard]] bool supports_splitmd() const override { return false; }

  // MADNESS moves whole serialized objects per send: local deliveries copy,
  // and nothing is cached across the destinations of a broadcast.
  [[nodiscard]] CopyPolicy default_policy() const override {
    return {/*zero_copy_local=*/false, /*serialize_once=*/false};
  }

  // MADNESS ships broadcasts flat (point-to-point per destination), does
  // not batch AMs, and funnels every streaming contribution straight to the
  // owner — the paper's asymmetry the ablations quantify.
  [[nodiscard]] CollectivePolicy default_collective() const override {
    return {/*tree_arity=*/0, /*am_flush_window=*/0.0, /*reduce_arity=*/0,
            /*adaptive=*/false};
  }

  [[nodiscard]] double send_side_cpu(std::size_t bytes, ser::Protocol p) const override;
  [[nodiscard]] double per_message_cpu() const override { return am_cpu_; }

  // MADNESS serializes whole objects regardless of protocol preference:
  // one staging copy into the AM buffer at the sender, one copy out of the
  // receive buffer on the server thread.
  [[nodiscard]] int send_copies(ser::Protocol) const override { return 1; }
  [[nodiscard]] int recv_copies(ser::Protocol) const override { return 1; }

  void send_splitmd(int, int, std::size_t, std::size_t, std::function<void()>,
                    std::function<void()>, std::function<void()>) override {
    TTG_CHECK(false, "MADNESS backend has no splitmd support");
  }

  /// Whole-send (rendezvous) retry: a lost RTS/CTS/payload leg times out
  /// and the entire handshake is replayed.
  void enable_resilience(const sim::FaultPlan& plan) override;

 protected:
  void wire_send(int src, int dst, std::size_t wire_bytes,
                 std::function<void()> deliver) override;

 private:
  sim::Engine& engine_;
  net::Network& network_;
  double am_cpu_;
  double task_overhead_;
  /// The dedicated active-message server thread of each rank.
  std::vector<std::unique_ptr<sim::FifoResource>> am_server_;
};

}  // namespace ttg::rt
