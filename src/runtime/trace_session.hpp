// CLI wiring for runtime tracing, fault injection, and device placement:
// `--trace <path>` / `--trace-summary` / `--fault-seed` / `--fault-spec` /
// `--device {off,greedy,always}` / `--gpus <n>`.
//
// Every bench and example binary declares the options through
// add_options(), constructs a TraceSession from the parsed Cli, applies
// the fault plan and device overrides to each WorldConfig, attaches the
// session to each World it creates, and calls finish() after the run:
//
//   support::Cli cli(...);
//   rt::TraceSession::add_options(cli);
//   ...
//   rt::TraceSession trace(cli);
//   rt::WorldConfig cfg;
//   trace.apply(cfg);
//   rt::World world(cfg);
//   trace.attach(world);
//   ... run, fence ...
//   trace.finish(world, "parsec-8nodes");
//
// finish() writes one Chrome-trace JSON file per traced World (the label
// disambiguates binaries that run many configurations) and/or prints the
// per-template summary, the per-rank breakdown, the critical-path report,
// and — when faults are armed — the fault/recovery event table plus the
// comm-plane degradation counters. With no flags given, every call is a
// no-op, so the wiring costs nothing on plain runs.
#pragma once

#include <string>

#include "runtime/world.hpp"
#include "support/cli.hpp"

namespace ttg::rt {

class TraceSession {
 public:
  /// Declare --trace, --trace-summary, --fault-seed, --fault-spec,
  /// --device, and --gpus on a Cli (call before parse()).
  static void add_options(support::Cli& cli);

  /// Read the trace/fault/device options back from a parsed Cli. Throws
  /// support::ApiError on a malformed --fault-spec or --device value.
  explicit TraceSession(const support::Cli& cli);
  TraceSession(std::string path, bool summary);

  [[nodiscard]] bool enabled() const { return !path_.empty() || summary_; }

  /// The fault plan parsed from --fault-spec/--fault-seed (inactive when
  /// --fault-spec was empty or absent).
  [[nodiscard]] const sim::FaultPlan& faults() const { return faults_; }

  /// Install the parsed fault plan and any --device/--gpus overrides into
  /// a WorldConfig. Every override defaults to "leave the config alone",
  /// so flag-free runs are bit-identical to a build without the wiring.
  void apply(WorldConfig& cfg) const;

  /// Enable tracing on `world` (no-op when not enabled).
  void attach(World& world) const;

  /// Export and/or print the trace of one finished World. `label` is
  /// appended to the output file stem when a binary traces several runs;
  /// `makespan` (if >= 0) sizes the idle column of the breakdown table.
  void finish(World& world, const std::string& label = "",
              double makespan = -1.0) const;

 private:
  [[nodiscard]] std::string output_path(const std::string& label) const;

  std::string path_;      ///< Chrome-trace output file ("" = no export)
  bool summary_ = false;  ///< print summary/breakdown/critical-path tables
  sim::FaultPlan faults_; ///< parsed fault plan (inactive unless --fault-spec)
  bool device_set_ = false;  ///< a --device value was given
  DevicePlacement device_ = DevicePlacement::Off;  ///< parsed --device
  int gpus_ = -1;  ///< --gpus override of machine.gpus_per_node (-1 = keep)
};

}  // namespace ttg::rt
