// CLI wiring for runtime tracing: `--trace <path>` / `--trace-summary`.
//
// Every bench and example binary declares the two options through
// add_options(), constructs a TraceSession from the parsed Cli, attaches
// it to each World it creates, and calls finish() after the run:
//
//   support::Cli cli(...);
//   rt::TraceSession::add_options(cli);
//   ...
//   rt::TraceSession trace(cli);
//   rt::World world(cfg);
//   trace.attach(world);
//   ... run, fence ...
//   trace.finish(world, "parsec-8nodes");
//
// finish() writes one Chrome-trace JSON file per traced World (the label
// disambiguates binaries that run many configurations) and/or prints the
// per-template summary, the per-rank breakdown, and the critical-path
// report. With neither flag given, attach()/finish() are no-ops, so the
// wiring costs nothing on untraced runs.
#pragma once

#include <string>

#include "runtime/world.hpp"
#include "support/cli.hpp"

namespace ttg::rt {

class TraceSession {
 public:
  /// Declare --trace and --trace-summary on a Cli (call before parse()).
  static void add_options(support::Cli& cli);

  /// Read the trace options back from a parsed Cli.
  explicit TraceSession(const support::Cli& cli);
  TraceSession(std::string path, bool summary);

  [[nodiscard]] bool enabled() const { return !path_.empty() || summary_; }

  /// Enable tracing on `world` (no-op when not enabled).
  void attach(World& world) const;

  /// Export and/or print the trace of one finished World. `label` is
  /// appended to the output file stem when a binary traces several runs;
  /// `makespan` (if >= 0) sizes the idle column of the breakdown table.
  void finish(World& world, const std::string& label = "",
              double makespan = -1.0) const;

 private:
  [[nodiscard]] std::string output_path(const std::string& label) const;

  std::string path_;      ///< Chrome-trace output file ("" = no export)
  bool summary_ = false;  ///< print summary/breakdown/critical-path tables
};

}  // namespace ttg::rt
