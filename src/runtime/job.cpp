#include "runtime/job.hpp"

#include "runtime/world.hpp"

namespace ttg::rt {

void JobManager::set_max_concurrent(int n) {
  TTG_CHECK(n >= 0, "negative job-concurrency bound");
  max_concurrent_ = n;
  while (!pending_.empty() && (max_concurrent_ == 0 || running_ < max_concurrent_)) {
    const std::size_t idx = pending_.front();
    pending_.pop_front();
    admit(idx);
  }
}

void JobManager::set_fairness(FairnessMode mode) {
  for (int r = 0; r < world_.nranks(); ++r) world_.scheduler(r).set_fairness(mode);
}

JobId JobManager::submit(JobSpec spec, std::function<void(JobId)> start) {
  TTG_CHECK(spec.weight >= 1, "job weight must be >= 1");
  TTG_CHECK(spec.inflight_cap >= 0, "negative in-flight cap");
  JobInfo info;
  info.id = static_cast<JobId>(jobs_.size() + 1);  // 0 is the default job
  info.spec = std::move(spec);
  info.t_submit = world_.engine().now();
  jobs_.push_back(std::move(info));
  starters_.push_back(std::move(start));
  const std::size_t idx = jobs_.size() - 1;
  if (max_concurrent_ == 0 || running_ < max_concurrent_) {
    admit(idx);
  } else {
    pending_.push_back(idx);
  }
  return jobs_[idx].id;
}

void JobManager::admit(std::size_t idx) {
  JobInfo& info = jobs_[idx];
  TTG_CHECK(info.state == JobState::Pending, "job admitted twice");
  info.state = JobState::Running;
  info.t_start = world_.engine().now();
  ++running_;
  for (int r = 0; r < world_.nranks(); ++r)
    world_.scheduler(r).configure_job(info.id, info.spec.weight,
                                      info.spec.inflight_cap);
  // The starter primes the graph (stream sizes, initiator invokes) under the
  // job's ambient context so every task, message and DataCopy it spawns is
  // attributed to this job.
  world_.run_as_job(info.id, [&]() { starters_[idx](info.id); });
}

void JobManager::complete(JobId id) {
  TTG_CHECK(id >= 1 && id <= jobs_.size(), "complete() on an unknown job");
  JobInfo& info = jobs_[id - 1];
  TTG_CHECK(info.state == JobState::Running, "complete() on a non-running job");
  info.state = JobState::Done;
  info.t_done = world_.engine().now();
  --running_;
  ++completed_;
  if (!pending_.empty() && (max_concurrent_ == 0 || running_ < max_concurrent_)) {
    const std::size_t idx = pending_.front();
    pending_.pop_front();
    admit(idx);
  }
}

const JobInfo& JobManager::job(JobId id) const {
  TTG_CHECK(id >= 1 && id <= jobs_.size(), "unknown job id");
  return jobs_[id - 1];
}

std::vector<double> JobManager::latencies() const {
  std::vector<double> out;
  out.reserve(jobs_.size());
  for (const JobInfo& j : jobs_)
    if (j.state == JobState::Done) out.push_back(j.latency());
  return out;
}

}  // namespace ttg::rt
