// PaRSEC-like communication engine.
//
// Models the paper's optimized PaRSEC backend: a communication thread per
// rank handles active messages with low per-message CPU cost; large user
// payloads move via the split-metadata protocol (eager metadata + one-sided
// RMA get + completion callback), so no serialization copies are paid for
// splitmd-capable types; the backend owns data flowing through the graph,
// making local const-reference sends zero-copy.
#pragma once

#include <memory>
#include <vector>

#include "net/network.hpp"
#include "runtime/comm.hpp"
#include "sim/resource.hpp"

namespace ttg::rt {

class ParsecComm final : public CommEngine {
 public:
  ParsecComm(sim::Engine& engine, net::Network& network, double am_cpu_factor,
             double task_overhead_override, bool enable_splitmd);

  [[nodiscard]] const char* name() const override { return "parsec"; }
  [[nodiscard]] double task_overhead() const override { return task_overhead_; }
  [[nodiscard]] bool supports_splitmd() const override { return enable_splitmd_; }

  // PaRSEC owns data flowing through the graph: local const-ref sends are
  // shared, and one serialization is reused across a broadcast's ranks.
  [[nodiscard]] CopyPolicy default_policy() const override {
    return {/*zero_copy_local=*/true, /*serialize_once=*/true};
  }

  // PaRSEC's engineered comm layer routes wide broadcasts down a k-ary
  // spanning tree, coalesces small same-destination AMs within a flush
  // window, and combines streaming reductions up the inverted tree. The
  // arity, window, and eager-AM ceiling are derived from the machine model
  // (collective::derive_tuning) — on the hawk/seawulf presets this lands on
  // the historical {4, 1 us, 4096 B} tuning bit-identically. Arity
  // adaptation stays off by default (opt in via WorldConfig) so baseline
  // shapes are static.
  [[nodiscard]] CollectivePolicy default_collective() const override;

  [[nodiscard]] double send_side_cpu(std::size_t bytes, ser::Protocol p) const override;
  [[nodiscard]] double per_message_cpu() const override { return am_cpu_; }

  // Splitmd and trivially-copyable sends go to the wire straight from
  // object memory; only archive types pay a staging copy. The receive-side
  // comm thread always pays one buffer -> object copy for whole-object
  // messages (splitmd payloads land in place via RMA).
  [[nodiscard]] int send_copies(ser::Protocol p) const override {
    return p == ser::Protocol::Archive ? 1 : 0;
  }
  [[nodiscard]] int recv_copies(ser::Protocol p) const override {
    return p == ser::Protocol::SplitMetadata ? 0 : 1;
  }

  void send_splitmd(int src, int dst, std::size_t md_bytes, std::size_t payload_bytes,
                    std::function<void()> on_metadata, std::function<void()> on_payload,
                    std::function<void()> on_release) override;

  /// Ack/retry for active messages, re-fetch for splitmd RMA payloads.
  void enable_resilience(const sim::FaultPlan& plan) override;

 protected:
  void wire_send(int src, int dst, std::size_t wire_bytes,
                 std::function<void()> deliver) override;

 private:
  /// Receive-side AM handling + delivery, shared by both send paths.
  void process_incoming(int dst, double service, std::function<void()> deliver);

  sim::Engine& engine_;
  net::Network& network_;
  double am_cpu_;
  double task_overhead_;
  bool enable_splitmd_;
  /// One communication thread per rank: processes incoming AMs in order.
  std::vector<std::unique_ptr<sim::FifoResource>> comm_thread_;
};

}  // namespace ttg::rt
