#include "runtime/resilience.hpp"

#include <algorithm>

namespace ttg::rt {

namespace {
/// Acknowledgments are tiny control messages (sequence number + flags).
constexpr std::size_t kAckBytes = 32;
}  // namespace

// Defined here so unique_ptr<ReliableLink> members in CommEngine see the
// complete type.
CommEngine::~CommEngine() = default;

void CommEngine::set_tracer(Tracer* tracer) {
  tracer_ = tracer;
  if (reliable_) reliable_->set_tracer(tracer);
}

void CommEngine::make_reliable(sim::Engine& engine, net::Network& network,
                               const sim::FaultPlan& plan) {
  reliable_ = std::make_unique<ReliableLink>(engine, network, plan, stats_);
  if (tracer_ != nullptr) reliable_->set_tracer(tracer_);
}

void CommEngine::send_payload(int src, int dst, std::size_t wire_bytes,
                              std::shared_ptr<const void> pin,
                              std::function<void()> deliver) {
  // The pin rides inside the delivery closure: under resilience the
  // ReliableLink's SendState holds it across every retransmission, so a
  // retry ships the already-cached serialized bytes instead of paying a
  // fresh archive pass, and the DataCopy block stays alive until the send
  // is acknowledged or dead-lettered.
  send_message(src, dst, wire_bytes,
               [pin = std::move(pin), deliver = std::move(deliver)]() { deliver(); });
}

ReliableLink::ReliableLink(sim::Engine& engine, net::Network& network,
                           const sim::FaultPlan& plan, CommStats& stats)
    : engine_(engine), net_(network), plan_(plan), stats_(stats) {}

double ReliableLink::rto(std::size_t bytes, int attempt) const {
  const auto& m = net_.machine();
  // Conservative one-attempt estimate: rendezvous handshake latencies plus
  // three wire passes (sender NIC, fabric, receiver NIC), degraded by the
  // plan's worst link perturbation so perturbed-but-alive links do not
  // trigger spurious retransmissions.
  const double est = 4.0 * m.net_latency * plan_.max_latency_factor() +
                     3.0 * m.wire_time(bytes) / plan_.min_bw_factor();
  double t = plan_.rto_base + est;
  for (int i = 0; i < attempt; ++i) t *= plan_.backoff;
  return t;
}

struct ReliableLink::SendState {
  int src = 0;
  int dst = 0;
  std::size_t bytes = 0;
  std::function<void()> deliver;
  bool delivered = false;
  bool acked = false;
  int attempt = 0;
  sim::Engine::CancelToken timer;
};

void ReliableLink::send(int src, int dst, std::size_t bytes,
                        std::function<void()> deliver) {
  auto st = std::make_shared<SendState>();
  st->src = src;
  st->dst = dst;
  st->bytes = bytes;
  st->deliver = std::move(deliver);
  attempt_send(st);
}

void ReliableLink::attempt_send(const std::shared_ptr<SendState>& st) {
  net_.send(st->src, st->dst, st->bytes, [this, st]() {
    // A copy arrived at dst — possibly a fabric duplicate or a retransmit
    // racing the original. Deliver exactly once, ack every copy (a lost ack
    // is recovered by the sender re-sending and us re-acking).
    if (!st->delivered) {
      st->delivered = true;
      if (st->attempt > 0) {
        stats_.recovered_msgs += 1;
        stats_.recovered_bytes += st->bytes;
        if (tracer_ != nullptr)
          tracer_->record_fault(sim::FaultKind::Recovered, st->src, st->dst, st->bytes,
                                engine_.now());
      }
      st->deliver();
    } else {
      stats_.dup_discards += 1;
    }
    stats_.acks += 1;
    net_.send_eager(st->dst, st->src, kAckBytes, [st]() {
      st->acked = true;
      sim::Engine::cancel(st->timer);
    });
  });
  st->timer = engine_.after_cancellable(rto(st->bytes, st->attempt), [this, st]() {
    if (st->acked) return;
    if (st->attempt + 1 > plan_.max_retries) {
      stats_.dead_letters += 1;
      if (tracer_ != nullptr)
        tracer_->record_fault(sim::FaultKind::DeadLetter, st->src, st->dst, st->bytes,
                              engine_.now());
      return;
    }
    st->attempt += 1;
    stats_.retries += 1;
    stats_.resent_bytes += st->bytes;
    if (tracer_ != nullptr)
      tracer_->record_fault(sim::FaultKind::Retry, st->src, st->dst, st->bytes,
                            engine_.now());
    attempt_send(st);
  });
}

struct ReliableLink::RmaState {
  int src = 0;
  int dst = 0;
  std::size_t bytes = 0;
  std::function<void()> on_done;
  std::function<void()> on_remote_complete;
  bool done = false;
  bool released = false;
  int attempt = 0;
  sim::Engine::CancelToken timer;
};

void ReliableLink::rma_fetch(int src, int dst, std::size_t bytes,
                             std::function<void()> on_done,
                             std::function<void()> on_remote_complete) {
  auto st = std::make_shared<RmaState>();
  st->src = src;
  st->dst = dst;
  st->bytes = bytes;
  st->on_done = std::move(on_done);
  st->on_remote_complete = std::move(on_remote_complete);
  attempt_rma(st);
}

void ReliableLink::attempt_rma(const std::shared_ptr<RmaState>& st) {
  net_.rma_get(
      st->src, st->dst, st->bytes,
      [this, st]() {
        if (st->done) {  // a late original landing after a re-fetch
          stats_.dup_discards += 1;
          return;
        }
        st->done = true;
        sim::Engine::cancel(st->timer);
        if (st->attempt > 0) {
          stats_.recovered_msgs += 1;
          stats_.recovered_bytes += st->bytes;
          if (tracer_ != nullptr)
            tracer_->record_fault(sim::FaultKind::Recovered, st->src, st->dst,
                                  st->bytes, engine_.now());
        }
        st->on_done();
      },
      [st]() {
        // Release the source exactly once even if several fetches complete.
        if (st->released) return;
        st->released = true;
        if (st->on_remote_complete) st->on_remote_complete();
      });
  st->timer = engine_.after_cancellable(rto(st->bytes, st->attempt), [this, st]() {
    if (st->done) return;
    if (st->attempt + 1 > plan_.max_retries) {
      stats_.dead_letters += 1;
      if (tracer_ != nullptr)
        tracer_->record_fault(sim::FaultKind::DeadLetter, st->src, st->dst, st->bytes,
                              engine_.now());
      return;
    }
    st->attempt += 1;
    stats_.rma_refetches += 1;
    stats_.resent_bytes += st->bytes;
    if (tracer_ != nullptr)
      tracer_->record_fault(sim::FaultKind::RmaRetry, st->src, st->dst, st->bytes,
                            engine_.now());
    attempt_rma(st);
  });
}

}  // namespace ttg::rt
