// Tree-shape helpers plus the CommEngine collective data plane shared by
// both backends: the logical send_message wrapper and the eager-AM
// coalescer (flush-window batching of small same-destination AMs into one
// wire transfer).
#include "runtime/collective.hpp"

#include <utility>

#include "runtime/comm.hpp"
#include "sim/engine.hpp"

namespace ttg::rt::collective {

std::vector<int> tree_children(int pos, int nmembers, int arity) {
  if (arity < 1) arity = 1;
  std::vector<int> out;
  const long first = static_cast<long>(pos) * arity + 1;
  for (long c = first; c < first + arity && c <= nmembers; ++c)
    out.push_back(static_cast<int>(c));
  return out;
}

std::vector<int> tree_subtree(int pos, int nmembers, int arity) {
  std::vector<int> out;
  std::vector<int> stack{pos};
  while (!stack.empty()) {
    const int p = stack.back();
    stack.pop_back();
    if (p > 0) out.push_back(p);
    const auto kids = tree_children(p, nmembers, arity);
    // Reverse push so preorder comes out left-to-right.
    for (auto it = kids.rbegin(); it != kids.rend(); ++it) stack.push_back(*it);
  }
  return out;
}

int tree_subtree_size(int pos, int nmembers, int arity) {
  return static_cast<int>(tree_subtree(pos, nmembers, arity).size());
}

int tree_depth(int nmembers, int arity) {
  if (arity < 1) arity = 1;
  int depth = 0;
  // The deepest position is nmembers; walk parents back to the root.
  for (long p = nmembers; p > 0; p = (p - 1) / arity) ++depth;
  return depth;
}

}  // namespace ttg::rt::collective

namespace ttg::rt {

void CommEngine::send_message(int src, int dst, std::size_t wire_bytes,
                              std::function<void()> deliver) {
  stats_.messages += 1;
  if (flush_engine_ != nullptr && collective_.am_flush_window > 0.0 &&
      wire_bytes <= kAmCoalesceMaxBytes && src != dst) {
    AmBatch& b = batches_[{src, dst}];
    if (b.window_open) {
      b.bytes += wire_bytes;
      b.delivers.push_back(std::move(deliver));
      return;
    }
    // First AM of a burst ships immediately (no added latency) and opens
    // the window that catches followers to the same destination.
    b.window_open = true;
    flush_engine_->after(collective_.am_flush_window,
                         [this, src, dst]() { flush_batch(src, dst); });
  }
  wire_send(src, dst, wire_bytes, std::move(deliver));
}

void CommEngine::flush_batch(int src, int dst) {
  const auto it = batches_.find({src, dst});
  if (it == batches_.end()) return;
  AmBatch b = std::move(it->second);
  it->second = AmBatch{};  // window closed, queue empty
  if (b.delivers.empty()) return;
  if (b.delivers.size() == 1) {
    // A lone follower is just a plain (slightly delayed) send.
    wire_send(src, dst, b.bytes, std::move(b.delivers.front()));
    return;
  }
  stats_.am_batches += 1;
  stats_.batched_msgs += b.delivers.size();
  if (tracer_ != nullptr) tracer_->record_am_batch(src, b.delivers.size());
  // One wire transfer, one receive-side AM handling charge, one ack under
  // resilience; the member AMs deliver in their send order.
  const std::size_t total =
      b.bytes + b.delivers.size() * kAmBatchHeaderBytes;
  wire_send(src, dst, total, [delivers = std::move(b.delivers)]() {
    for (const auto& d : delivers) d();
  });
}

}  // namespace ttg::rt
