// Tree-shape helpers plus the CommEngine collective data plane shared by
// both backends: the logical send_message wrapper and the eager-AM
// coalescer (flush-window batching of small same-destination AMs into one
// wire transfer).
#include "runtime/collective.hpp"

#include <algorithm>
#include <cmath>
#include <map>
#include <utility>

#include "runtime/comm.hpp"
#include "sim/engine.hpp"
#include "sim/machine.hpp"

namespace ttg::rt::collective {

std::vector<int> tree_children(int pos, int nmembers, int arity) {
  if (arity < 1) arity = 1;
  std::vector<int> out;
  const long first = static_cast<long>(pos) * arity + 1;
  for (long c = first; c < first + arity && c <= nmembers; ++c)
    out.push_back(static_cast<int>(c));
  return out;
}

std::vector<int> tree_subtree(int pos, int nmembers, int arity) {
  std::vector<int> out;
  std::vector<int> stack{pos};
  while (!stack.empty()) {
    const int p = stack.back();
    stack.pop_back();
    if (p > 0) out.push_back(p);
    const auto kids = tree_children(p, nmembers, arity);
    // Reverse push so preorder comes out left-to-right.
    for (auto it = kids.rbegin(); it != kids.rend(); ++it) stack.push_back(*it);
  }
  return out;
}

int tree_subtree_size(int pos, int nmembers, int arity) {
  return static_cast<int>(tree_subtree(pos, nmembers, arity).size());
}

int tree_depth(int nmembers, int arity) {
  if (arity < 1) arity = 1;
  int depth = 0;
  // The deepest position is nmembers; walk parents back to the root.
  for (long p = nmembers; p > 0; p = (p - 1) / arity) ++depth;
  return depth;
}

std::vector<int> layout_members(int root_rank, std::vector<int> members,
                                const Topology& topo) {
  const int root_node = topo.node_of(root_rank);
  std::stable_sort(members.begin(), members.end(), [&](int a, int b) {
    const int na = topo.node_of(a);
    const int nb = topo.node_of(b);
    if ((na == root_node) != (nb == root_node)) return na == root_node;
    if (na != nb) return na < nb;
    return a < b;
  });
  return members;
}

TreeShape build_tree(int root_rank, std::vector<int> members, int arity,
                     const Topology& topo) {
  if (arity < 1) arity = 1;
  members = layout_members(root_rank, std::move(members), topo);
  TreeShape s;
  const std::size_t m = members.size();
  s.ranks.reserve(m + 1);
  s.ranks.push_back(root_rank);
  for (int r : members) s.ranks.push_back(r);
  s.children.assign(m + 1, {});
  s.parent.assign(m + 1, -1);
  // Heap-attach the positions of `list` under position `top`: list[idx]'s
  // parent is `top` for the first `arity` entries, then list[idx/arity - 1].
  auto attach_heap = [&](int top, const std::vector<int>& list) {
    for (std::size_t idx = 0; idx < list.size(); ++idx) {
      const int parent = idx < static_cast<std::size_t>(arity)
                             ? top
                             : list[idx / static_cast<std::size_t>(arity) - 1];
      s.parent[static_cast<std::size_t>(list[idx])] = parent;
      s.children[static_cast<std::size_t>(parent)].push_back(list[idx]);
    }
  };
  // Top level under the root: the root-node members plus each other node's
  // leader (its first member in layout order). Remaining group members hang
  // under their leader. With ranks_per_node <= 1 every group is a
  // singleton, so `top` is simply positions 1..M — the plain heap.
  const int root_node = topo.node_of(root_rank);
  std::vector<int> top;
  std::map<int, std::vector<int>> groups;  // node -> member positions
  for (std::size_t i = 0; i < m; ++i) {
    const int pos = static_cast<int>(i) + 1;
    const int node = topo.node_of(members[i]);
    if (node == root_node) {
      top.push_back(pos);
    } else {
      groups[node].push_back(pos);
    }
  }
  for (const auto& [node, positions] : groups) top.push_back(positions.front());
  std::sort(top.begin(), top.end());  // layout order: root-node first, then leaders
  attach_heap(0, top);
  for (const auto& [node, positions] : groups) {
    const std::vector<int> rest(positions.begin() + 1, positions.end());
    attach_heap(positions.front(), rest);
  }
  return s;
}

std::vector<int> shape_subtree(const TreeShape& shape, int pos) {
  std::vector<int> out;
  std::vector<int> stack{pos};
  while (!stack.empty()) {
    const int p = stack.back();
    stack.pop_back();
    if (p > 0) out.push_back(p);
    const auto& kids = shape.children[static_cast<std::size_t>(p)];
    // Reverse push so preorder comes out left-to-right.
    for (auto it = kids.rbegin(); it != kids.rend(); ++it) stack.push_back(*it);
  }
  return out;
}

int shape_depth(const TreeShape& shape) {
  int deepest = 0;
  for (std::size_t p = 1; p < shape.parent.size(); ++p) {
    int depth = 0;
    for (int q = static_cast<int>(p); q > 0; q = shape.parent[static_cast<std::size_t>(q)])
      ++depth;
    deepest = std::max(deepest, depth);
  }
  return deepest;
}

int pick_arity(const CollectivePolicy& policy, bool reduce, int fan,
               std::size_t payload_bytes) {
  const int base = reduce ? policy.reduce_arity : policy.tree_arity;
  if (!policy.adaptive || base < 2) return base;
  if (payload_bytes >= 256 * 1024) return 2;
  if (payload_bytes <= policy.am_coalesce_max && fan >= 8 * base) return 2 * base;
  return base;
}

Tuning derive_tuning(const sim::MachineModel& m) {
  Tuning t;
  // Coalescing ceiling: the AM path's bandwidth-delay-like product (bytes
  // the NIC injects during one per-message CPU interval), rounded up to a
  // power of two, capped at half the eager threshold so a full batch plus
  // framing stays eager.
  const double bdp = m.nic_bw * m.am_cpu;
  std::size_t coalesce = 1;
  while (static_cast<double>(coalesce) < bdp) coalesce <<= 1;
  t.am_coalesce_max = std::min(coalesce, m.eager_threshold / 2);
  // One child per KiB of coalescing headroom, clamped to [2, 8].
  t.arity = static_cast<int>(
      std::clamp<std::size_t>(t.am_coalesce_max / 1024, 2, 8));
  // Flush window: the AM service interval rounded to the nearest decade.
  // The decade table keeps the window an exact decimal literal — the value
  // feeds engine timers, so any ulp drift would shift every event time.
  static constexpr double kDecades[] = {1e-9, 1e-8, 1e-7, 1e-6,
                                        1e-5, 1e-4, 1e-3};
  const double interval = m.am_cpu + m.net_latency / 2.0;
  const int exp10 =
      static_cast<int>(std::lround(std::log10(interval)));  // negative
  const int idx = std::clamp(exp10 + 9, 0, 6);
  t.window = kDecades[idx];
  return t;
}

}  // namespace ttg::rt::collective

namespace ttg::rt {

void CommEngine::send_message(int src, int dst, std::size_t wire_bytes,
                              std::function<void()> deliver) {
  stats_.messages += 1;
  {
    JobCommStats& js = job_stats_[current_job()];
    js.messages += 1;
    js.wire_bytes += static_cast<std::uint64_t>(wire_bytes);
  }
  if (flush_engine_ != nullptr && collective_.am_flush_window > 0.0 &&
      wire_bytes <= collective_.am_coalesce_max && src != dst) {
    AmBatch& b = batches_[{src, dst}];
    if (b.window_open) {
      b.bytes += wire_bytes;
      b.delivers.push_back(std::move(deliver));
      return;
    }
    // First AM of a burst ships immediately (no added latency) and opens
    // the window that catches followers to the same destination.
    b.window_open = true;
    flush_engine_->after(collective_.am_flush_window,
                         [this, src, dst]() { flush_batch(src, dst); });
  }
  wire_send(src, dst, wire_bytes, std::move(deliver));
}

void CommEngine::flush_batch(int src, int dst) {
  const auto it = batches_.find({src, dst});
  if (it == batches_.end()) return;
  AmBatch b = std::move(it->second);
  it->second = AmBatch{};  // window closed, queue empty
  if (b.delivers.empty()) return;
  if (b.delivers.size() == 1) {
    // A lone follower is just a plain (slightly delayed) send.
    wire_send(src, dst, b.bytes, std::move(b.delivers.front()));
    return;
  }
  stats_.am_batches += 1;
  stats_.batched_msgs += b.delivers.size();
  if (tracer_ != nullptr) tracer_->record_am_batch(src, b.delivers.size());
  // One wire transfer, one receive-side AM handling charge, one ack under
  // resilience; the member AMs deliver in their send order.
  const std::size_t total =
      b.bytes + b.delivers.size() * kAmBatchHeaderBytes;
  wire_send(src, dst, total, [delivers = std::move(b.delivers)]() {
    for (const auto& d : delivers) d();
  });
}

}  // namespace ttg::rt
