#include "runtime/trace_session.hpp"

#include <cstdio>

#include "support/table.hpp"

namespace ttg::rt {

void TraceSession::add_options(support::Cli& cli) {
  cli.option("trace", "",
             "write a Chrome-trace JSON (chrome://tracing / Perfetto) to this path");
  cli.flag("trace-summary",
           "print per-template, per-rank, and critical-path trace reports");
}

TraceSession::TraceSession(const support::Cli& cli)
    : path_(cli.get("trace")), summary_(cli.get_flag("trace-summary")) {}

TraceSession::TraceSession(std::string path, bool summary)
    : path_(std::move(path)), summary_(summary) {}

void TraceSession::attach(World& world) const {
  if (enabled()) world.enable_tracing();
}

std::string TraceSession::output_path(const std::string& label) const {
  if (label.empty()) return path_;
  // Insert the label before the extension: out.json -> out.<label>.json.
  const auto slash = path_.find_last_of('/');
  const auto dot = path_.find_last_of('.');
  if (dot == std::string::npos || (slash != std::string::npos && dot < slash))
    return path_ + "." + label;
  return path_.substr(0, dot) + "." + label + path_.substr(dot);
}

void TraceSession::finish(World& world, const std::string& label,
                          double makespan) const {
  if (!enabled()) return;
  Tracer& tracer = world.tracer();
  if (!path_.empty()) {
    const std::string out = output_path(label);
    tracer.write_chrome_trace(out);
    std::printf("# trace: wrote %s (%zu tasks, %zu messages)\n", out.c_str(),
                tracer.records().size(), tracer.messages().size());
  }
  if (summary_) {
    if (!label.empty()) std::printf("# trace summary: %s\n", label.c_str());
    std::printf("%s\n", tracer.summary_table().c_str());
    const double span = makespan >= 0.0 ? makespan : world.engine().now();
    std::printf("%s\n", tracer.breakdown_table(span).str().c_str());
    std::printf("%s\n", tracer.critical_path_report().c_str());
  }
}

}  // namespace ttg::rt
