#include "runtime/trace_session.hpp"

#include <cstdio>

#include "support/error.hpp"
#include "support/table.hpp"

namespace ttg::rt {

void TraceSession::add_options(support::Cli& cli) {
  cli.option("trace", "",
             "write a Chrome-trace JSON (chrome://tracing / Perfetto) to this path");
  cli.flag("trace-summary",
           "print per-template, per-rank, and critical-path trace reports");
  cli.option("fault-seed", "0", "seed for deterministic fault injection");
  cli.option("fault-spec", "",
             "fault plan, e.g. \"drop=0.01,straggler=0:2,latency=*:1.5\" "
             "(empty = no faults)");
  cli.option("device", "",
             "device placement: off, greedy, or always "
             "(empty = the binary's default)");
  cli.option("gpus", "-1",
             "simulated GPUs per node (-1 = the machine preset's count)");
}

namespace {

DevicePlacement parse_placement(const std::string& s) {
  if (s == "off") return DevicePlacement::Off;
  if (s == "greedy") return DevicePlacement::Greedy;
  if (s == "always") return DevicePlacement::Always;
  throw support::ApiError("--device must be off, greedy, or always (got \"" +
                          s + "\")");
}

}  // namespace

TraceSession::TraceSession(const support::Cli& cli)
    : path_(cli.get("trace")),
      summary_(cli.get_flag("trace-summary")),
      faults_(sim::FaultPlan::parse(
          cli.get("fault-spec"),
          static_cast<std::uint64_t>(cli.get_int("fault-seed")))),
      device_set_(!cli.get("device").empty()),
      device_(device_set_ ? parse_placement(cli.get("device"))
                          : DevicePlacement::Off),
      gpus_(static_cast<int>(cli.get_int("gpus"))) {}

TraceSession::TraceSession(std::string path, bool summary)
    : path_(std::move(path)), summary_(summary) {}

void TraceSession::apply(WorldConfig& cfg) const {
  if (faults_.enabled()) cfg.faults = faults_;
  if (device_set_) cfg.device = device_;
  if (gpus_ >= 0) cfg.machine.gpus_per_node = gpus_;
}

void TraceSession::attach(World& world) const {
  if (enabled()) world.enable_tracing();
}

std::string TraceSession::output_path(const std::string& label) const {
  if (label.empty()) return path_;
  // Insert the label before the extension: out.json -> out.<label>.json.
  const auto slash = path_.find_last_of('/');
  const auto dot = path_.find_last_of('.');
  if (dot == std::string::npos || (slash != std::string::npos && dot < slash))
    return path_ + "." + label;
  return path_.substr(0, dot) + "." + label + path_.substr(dot);
}

void TraceSession::finish(World& world, const std::string& label,
                          double makespan) const {
  if (!enabled()) return;
  Tracer& tracer = world.tracer();
  if (!path_.empty()) {
    const std::string out = output_path(label);
    tracer.write_chrome_trace(out);
    std::printf("# trace: wrote %s (%zu tasks, %zu messages)\n", out.c_str(),
                tracer.records().size(), tracer.messages().size());
  }
  if (summary_) {
    if (!label.empty()) std::printf("# trace summary: %s\n", label.c_str());
    std::printf("%s\n", tracer.summary_table().c_str());
    const double span = makespan >= 0.0 ? makespan : world.engine().now();
    std::printf("%s\n", tracer.breakdown_table(span).str().c_str());
    std::printf("%s\n", world.data_tracker().memory_table().str().c_str());
    const auto totals = tracer.totals();
    if (totals.broadcast_forwards > 0 || totals.am_batches > 0 ||
        totals.reduce_forwards > 0 || totals.reduce_combines > 0)
      std::printf("%s\n", tracer.forwarding_table().str().c_str());
    if (totals.steals_local > 0 || totals.steals_remote > 0 || totals.steal_fail > 0)
      std::printf("%s\n", tracer.steal_table().str().c_str());
    if (totals.device_tasks > 0 || totals.residency_hits > 0 ||
        totals.residency_misses > 0)
      std::printf("%s\n", tracer.device_table().str().c_str());
    std::printf("%s\n", tracer.critical_path_report().c_str());
    if (world.engine().sharded()) {
      const auto es = world.engine().stats();
      const double barrier_share =
          es.run_seconds > 0.0 ? es.barrier_seconds / es.run_seconds : 0.0;
      std::printf(
          "# engine: lanes=%d epochs=%llu deferred_events=%llu "
          "deferred_txns=%llu adaptive_extensions=%llu barrier_share=%.1f%%\n",
          world.engine().lanes(), static_cast<unsigned long long>(es.epochs),
          static_cast<unsigned long long>(es.deferred_events),
          static_cast<unsigned long long>(es.deferred_txns),
          static_cast<unsigned long long>(es.adaptive_extensions),
          100.0 * barrier_share);
    }
    if (world.config().faults.enabled()) {
      std::printf("# faults: %s\n", world.config().faults.describe().c_str());
      const std::string faults = tracer.fault_report();
      if (!faults.empty()) std::printf("%s\n", faults.c_str());
      const auto& ns = world.network().stats();
      const auto& cs = world.comm().stats();
      std::printf(
          "# degradation: drops=%llu dropped_bytes=%llu dups=%llu rma_delays=%llu "
          "retries=%llu rma_refetches=%llu resent_bytes=%llu recovered=%llu "
          "recovered_bytes=%llu dup_discards=%llu dead_letters=%llu acks=%llu\n",
          static_cast<unsigned long long>(ns.drops),
          static_cast<unsigned long long>(ns.dropped_bytes),
          static_cast<unsigned long long>(ns.duplicates),
          static_cast<unsigned long long>(ns.rma_delays),
          static_cast<unsigned long long>(cs.retries),
          static_cast<unsigned long long>(cs.rma_refetches),
          static_cast<unsigned long long>(cs.resent_bytes),
          static_cast<unsigned long long>(cs.recovered_msgs),
          static_cast<unsigned long long>(cs.recovered_bytes),
          static_cast<unsigned long long>(cs.dup_discards),
          static_cast<unsigned long long>(cs.dead_letters),
          static_cast<unsigned long long>(cs.acks));
    }
  }
}

}  // namespace ttg::rt
