// Communication engine interface shared by the two TTG backends.
//
// Section II-D of the paper: a TTG backend "provides the ability to schedule
// and execute tasks as well as resource management and coordination for
// communication and computation in a distributed setting". The compute side
// is the per-rank Scheduler; this interface is the communication side. Two
// engines implement it:
//
//   ParsecComm  — models the PaRSEC backend after the paper's optimizations:
//                 active messages for control, one-sided RMA for payloads
//                 (split-metadata protocol), completion callbacks, low
//                 per-message overhead, runtime-owned data (zero-copy local
//                 sends by const reference).
//   MadnessComm — models the MADNESS parallel runtime: one dedicated active-
//                 message *server thread* per process through which every
//                 incoming message is processed serially, whole-object
//                 serialization with copies on both sides, no RMA.
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <utility>
#include <vector>

#include "runtime/job.hpp"
#include "runtime/trace.hpp"
#include "serialization/traits.hpp"

namespace ttg::sim {
class Engine;
struct FaultPlan;
}
namespace ttg::net {
class Network;
}

namespace ttg::rt {

class ReliableLink;

/// Statistics a comm engine accumulates over a run.
struct CommStats {
  std::uint64_t messages = 0;       ///< whole-object messages shipped
  std::uint64_t splitmd_sends = 0;  ///< split-metadata transfers
  std::uint64_t local_copies = 0;   ///< local deliveries that paid a copy
  std::uint64_t local_shares = 0;   ///< local deliveries shared zero-copy
  // --- data-lifecycle layer (DataCopy serialized-buffer cache) ---
  std::uint64_t serializations = 0;   ///< archive passes over payload values
  std::uint64_t serialize_hits = 0;   ///< sends served from the cached buffer
  // --- collective data plane (tree-routed broadcast + AM coalescing) ---
  std::uint64_t broadcast_forwards = 0;  ///< interior-hop store-and-forwards
  std::uint64_t am_batches = 0;          ///< wire transfers carrying >=2 AMs
  std::uint64_t batched_msgs = 0;        ///< AMs that rode inside batches
  // --- reduction trees (many-to-one streaming terminals) ---
  std::uint64_t reduce_forwards = 0;  ///< combined partials sent up reduction trees
  std::uint64_t reduce_combines = 0;  ///< incoming partials absorbed into accumulators
  // --- topology-aware layout: payload-bearing tree hops split by locality ---
  std::uint64_t intra_node_hops = 0;  ///< tree hops whose endpoints share a node
  std::uint64_t inter_node_hops = 0;  ///< tree hops crossing a node boundary
  // --- graceful-degradation accounting (resilience layer; all zero on a
  // --- perfect fabric or when the plan carries no loss faults) ---
  std::uint64_t retries = 0;          ///< retransmissions after ack timeout
  std::uint64_t rma_refetches = 0;    ///< re-issued one-sided gets
  std::uint64_t resent_bytes = 0;     ///< payload bytes sent again
  std::uint64_t recovered_msgs = 0;   ///< deliveries that needed >=1 retry
  std::uint64_t recovered_bytes = 0;  ///< payload bytes those carried
  std::uint64_t dup_discards = 0;     ///< duplicate deliveries suppressed
  std::uint64_t dead_letters = 0;     ///< gave up after bounded retries
  std::uint64_t acks = 0;             ///< acknowledgments sent
};

/// Per-job communication accounting (multi-tenant serving mode): which job's
/// traffic a send belongs to is the ambient job of the issuing context.
struct JobCommStats {
  std::uint64_t messages = 0;       ///< logical whole-object messages
  std::uint64_t splitmd_sends = 0;  ///< split-metadata transfers
  std::uint64_t wire_bytes = 0;     ///< bytes of the logical messages
};

/// A backend's data-copy semantics, declared in one place (paper Section
/// II-D) instead of scattered conditionals:
///
///   zero_copy_local — the runtime owns data flowing through the graph, so
///                     local const-reference sends share it instead of
///                     copying (PaRSEC yes, MADNESS no);
///   serialize_once  — a payload's serialized form is cached on its DataCopy
///                     and reused for every destination rank of a broadcast
///                     and for retransmissions (PaRSEC yes; MADNESS
///                     re-serializes whole objects per send).
///
/// WorldConfig can override either knob for ablation runs
/// (bench/ablation_copies).
struct CopyPolicy {
  bool zero_copy_local = false;
  bool serialize_once = false;
};

/// AMs at or below this wire size are eligible for flush-window coalescing;
/// bulk payloads always go out as their own transfer. This is the historical
/// static value; engines that derive their tuning from the machine model
/// (collective::derive_tuning) may override it per CollectivePolicy.
inline constexpr std::size_t kAmCoalesceMaxBytes = 4096;

/// A backend's collective-routing semantics, declared per backend like
/// CopyPolicy (the paper's asymmetry: PaRSEC's comm layer is engineered,
/// MADNESS ships everything point-to-point through one AM server):
///
///   tree_arity      — >= 2 routes a coalesced broadcast along a
///                     deterministic k-ary spanning tree rooted at the
///                     sender, interior ranks store-and-forwarding the
///                     pinned serialized block; 0 or 1 means flat
///                     root-to-all point-to-point sends.
///   am_flush_window — > 0 batches small AMs (control messages and payloads
///                     up to kAmCoalesceMaxBytes) bound for the same
///                     destination within this window of virtual seconds
///                     into one wire transfer; <= 0 disables coalescing.
///   reduce_arity    — >= 2 routes many-to-one streaming reductions up the
///                     inverted k-ary tree: contributing ranks fold values
///                     into a local partial and send one combined value per
///                     subtree toward the key's owner; 0 or 1 keeps the
///                     flat contribution-to-owner sends.
///   adaptive        — derive the per-collective arity from fan and payload
///                     size via collective::pick_arity instead of using the
///                     static arities (off by default on both backends so
///                     baselines stay bit-identical; WorldConfig can force
///                     it on for ablations).
///
/// WorldConfig can override any knob for ablation runs
/// (bench/ablation_broadcast, bench/ablation_reduce).
struct CollectivePolicy {
  int tree_arity = 0;
  double am_flush_window = 0.0;
  int reduce_arity = 0;
  bool adaptive = false;
  /// Eager-AM payload ceiling for flush-window coalescing (and the adaptive
  /// pick_arity small-payload test). Backends derive it from the machine
  /// model via collective::derive_tuning; the default is the historical
  /// static constant, which the derivation reproduces bit-identically on
  /// the hawk/seawulf presets.
  std::size_t am_coalesce_max = kAmCoalesceMaxBytes;
};

/// Per-AM framing overhead inside a coalesced batch (offset + length).
inline constexpr std::size_t kAmBatchHeaderBytes = 16;
/// Per-subtree routing header a tree-broadcast hop carries for each member
/// beyond the receiver itself (child rank + key-list length).
inline constexpr std::size_t kTreeHopHeaderBytes = 16;

/// Backend communication engine: ships already-serialized payloads between
/// simulated ranks and charges the CPU/NIC costs its real counterpart pays.
/// All `deliver`-style callbacks run at the destination once receive-side
/// processing completes; the caller is responsible for entering the right
/// rank context inside the callback.
class CommEngine {
 public:
  virtual ~CommEngine();  // out-of-line: ReliableLink is incomplete here

  [[nodiscard]] virtual const char* name() const = 0;

  /// Per-task runtime overhead (scheduling, dependence bookkeeping).
  [[nodiscard]] virtual double task_overhead() const = 0;

  /// True if the backend supports the split-metadata (RMA) protocol.
  [[nodiscard]] virtual bool supports_splitmd() const = 0;

  /// The backend's native data-copy semantics (see CopyPolicy).
  [[nodiscard]] virtual CopyPolicy default_policy() const = 0;

  /// The policy in effect: the backend default, possibly overridden per
  /// knob by configure_policy (-1 keeps the default, 0/1 force off/on).
  [[nodiscard]] const CopyPolicy& policy() const { return policy_; }
  void configure_policy(int zero_copy_override, int serialize_once_override) {
    policy_ = default_policy();
    if (zero_copy_override >= 0) policy_.zero_copy_local = zero_copy_override != 0;
    if (serialize_once_override >= 0)
      policy_.serialize_once = serialize_once_override != 0;
  }

  /// True if local sends by const reference can share runtime-owned data
  /// instead of copying (the PaRSEC backend's data-ownership feature).
  [[nodiscard]] bool zero_copy_local() const { return policy_.zero_copy_local; }
  /// True if whole-object sends reuse the DataCopy's cached serialized form.
  [[nodiscard]] bool serialize_once() const { return policy_.serialize_once; }

  /// The backend's native collective-routing semantics (see CollectivePolicy).
  [[nodiscard]] virtual CollectivePolicy default_collective() const = 0;

  /// The collective policy in effect: the backend default, possibly
  /// overridden per knob by configure_collective (negative keeps the
  /// default; arity 0/1 forces flat, window 0 disables coalescing,
  /// adaptive 0/1 forces the arity-selection hook off/on).
  [[nodiscard]] const CollectivePolicy& collective() const { return collective_; }
  void configure_collective(int arity_override, double window_override,
                            int reduce_arity_override = -1,
                            int adaptive_override = -1) {
    collective_ = default_collective();
    if (arity_override >= 0) collective_.tree_arity = arity_override;
    if (window_override >= 0.0) collective_.am_flush_window = window_override;
    if (reduce_arity_override >= 0) collective_.reduce_arity = reduce_arity_override;
    if (adaptive_override >= 0) collective_.adaptive = adaptive_override != 0;
  }

  /// CPU seconds the *sender* pays to stage `bytes` for the wire under the
  /// given protocol (serialization copies). Charged on the sending worker.
  [[nodiscard]] virtual double send_side_cpu(std::size_t bytes, ser::Protocol p) const = 0;

  /// CPU seconds of pure per-message injection overhead (AM issue without
  /// any staging copy) — what a cache-hit send costs the sender.
  [[nodiscard]] virtual double per_message_cpu() const = 0;

  /// Payload staging copies the sender pays for one whole-object message
  /// under protocol `p` (the copies behind send_side_cpu, as a count).
  [[nodiscard]] virtual int send_copies(ser::Protocol p) const = 0;

  /// Payload unstaging copies the receiver pays for one whole-object
  /// message (buffer -> object deserialization).
  [[nodiscard]] virtual int recv_copies(ser::Protocol p) const = 0;

  /// Ship a whole-object message of `wire_bytes`; at the destination, charge
  /// receive-side processing (AM handling + deserialization copy) on the
  /// backend's message-processing resource, then invoke `deliver`. Counts
  /// one *logical* message regardless of routing; when the collective
  /// policy's flush window is open, small AMs to the same destination may
  /// ride the wire together as one coalesced transfer (see flush_batch).
  void send_message(int src, int dst, std::size_t wire_bytes,
                    std::function<void()> deliver);

  /// Split-metadata transfer: eager metadata of `md_bytes`, then a one-sided
  /// fetch of `payload_bytes`. `on_metadata` runs at dst when the metadata
  /// has been processed (allocate the object there); `on_payload` runs at
  /// dst when the RMA get has landed (deliver); `on_release` runs at src
  /// when the completion notification arrives (drop the source reference).
  /// Only meaningful when supports_splitmd().
  virtual void send_splitmd(int src, int dst, std::size_t md_bytes,
                            std::size_t payload_bytes, std::function<void()> on_metadata,
                            std::function<void()> on_payload,
                            std::function<void()> on_release) = 0;

  /// DataCopy-based send: ship a whole-object message whose payload is a
  /// cached serialized buffer. `pin` keeps the payload's DataCopy block (and
  /// with it the buffer) alive until final delivery — or dead-letter — so
  /// the resilience layer retransmits from the cache instead of
  /// re-serializing. Routing and receive-side costs are exactly those of
  /// send_message.
  void send_payload(int src, int dst, std::size_t wire_bytes,
                    std::shared_ptr<const void> pin, std::function<void()> deliver);

  [[nodiscard]] const CommStats& stats() const { return stats_; }
  CommStats& mutable_stats() { return stats_; }

  /// Bind the ambient-job source (the World's current-job variable): every
  /// logical send is attributed to the job current at issue time.
  void set_job_source(const JobId* source) { job_source_ = source; }
  [[nodiscard]] JobId current_job() const {
    return job_source_ != nullptr ? *job_source_ : kDefaultJob;
  }
  /// Per-job traffic (a zero record for jobs that never sent).
  [[nodiscard]] const JobCommStats& job_stats(JobId job) const {
    static const JobCommStats kZero{};
    const auto it = job_stats_.find(job);
    return it != job_stats_.end() ? it->second : kZero;
  }
  [[nodiscard]] const std::map<JobId, JobCommStats>& job_stats_map() const {
    return job_stats_;
  }

  /// Turn on loss recovery for this engine's traffic: every payload message
  /// is acknowledged, retransmitted on timeout with exponential backoff up
  /// to the plan's retry bound, and splitmd gets are re-fetched. Called by
  /// the World when its FaultPlan can lose data; without it the fault-free
  /// protocol (no acks, no timers) is used unchanged.
  virtual void enable_resilience(const sim::FaultPlan& plan) = 0;
  [[nodiscard]] bool resilient() const { return reliable_ != nullptr; }

  /// Attach an execution tracer (owned by the World): the engine records
  /// message-processing queue waits and RMA latencies into it.
  void set_tracer(Tracer* tracer);

 protected:
  /// Build the shared ack/timeout/retry machinery (used by engines'
  /// enable_resilience implementations).
  void make_reliable(sim::Engine& engine, net::Network& network,
                     const sim::FaultPlan& plan);

  /// One wire transfer: the engine-specific transport behind send_message.
  /// Exactly what the old virtual send_message did, minus the logical
  /// message count (kept in the wrapper so coalescing cannot change it).
  virtual void wire_send(int src, int dst, std::size_t wire_bytes,
                         std::function<void()> deliver) = 0;

  /// Derived ctors hand the base their engine so flush-window timers can be
  /// armed; without it (or with window <= 0) every AM ships immediately.
  void set_flush_engine(sim::Engine& engine) { flush_engine_ = &engine; }

  /// Attribute one splitmd transfer to the ambient job (called by backends
  /// at send_splitmd entry, mirroring the wrapper-side message accounting).
  void note_job_splitmd(std::size_t bytes) {
    JobCommStats& js = job_stats_[current_job()];
    js.splitmd_sends += 1;
    js.wire_bytes += bytes;
  }

  CommStats stats_;
  CopyPolicy policy_;  ///< set by configure_policy (World) / derived ctors
  CollectivePolicy collective_;  ///< set by configure_collective / derived ctors
  Tracer* tracer_ = nullptr;
  std::unique_ptr<ReliableLink> reliable_;
  const JobId* job_source_ = nullptr;  ///< the World's ambient-job variable
  std::map<JobId, JobCommStats> job_stats_;

 private:
  /// Pending coalesced AMs for one (src, dst) pair. The first AM of a burst
  /// ships immediately and opens the window; followers queue here until the
  /// window expires and flush_batch ships them as one transfer.
  struct AmBatch {
    bool window_open = false;
    std::size_t bytes = 0;  ///< summed wire bytes of the queued AMs
    std::vector<std::function<void()>> delivers;
  };
  void flush_batch(int src, int dst);

  std::map<std::pair<int, int>, AmBatch> batches_;
  sim::Engine* flush_engine_ = nullptr;
};

}  // namespace ttg::rt
