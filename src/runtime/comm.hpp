// Communication engine interface shared by the two TTG backends.
//
// Section II-D of the paper: a TTG backend "provides the ability to schedule
// and execute tasks as well as resource management and coordination for
// communication and computation in a distributed setting". The compute side
// is the per-rank Scheduler; this interface is the communication side. Two
// engines implement it:
//
//   ParsecComm  — models the PaRSEC backend after the paper's optimizations:
//                 active messages for control, one-sided RMA for payloads
//                 (split-metadata protocol), completion callbacks, low
//                 per-message overhead, runtime-owned data (zero-copy local
//                 sends by const reference).
//   MadnessComm — models the MADNESS parallel runtime: one dedicated active-
//                 message *server thread* per process through which every
//                 incoming message is processed serially, whole-object
//                 serialization with copies on both sides, no RMA.
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <memory>

#include "runtime/trace.hpp"
#include "serialization/traits.hpp"

namespace ttg::sim {
class Engine;
struct FaultPlan;
}
namespace ttg::net {
class Network;
}

namespace ttg::rt {

class ReliableLink;

/// Statistics a comm engine accumulates over a run.
struct CommStats {
  std::uint64_t messages = 0;       ///< whole-object messages shipped
  std::uint64_t splitmd_sends = 0;  ///< split-metadata transfers
  std::uint64_t local_copies = 0;   ///< local deliveries that paid a copy
  std::uint64_t local_shares = 0;   ///< local deliveries shared zero-copy
  // --- data-lifecycle layer (DataCopy serialized-buffer cache) ---
  std::uint64_t serializations = 0;   ///< archive passes over payload values
  std::uint64_t serialize_hits = 0;   ///< sends served from the cached buffer
  // --- graceful-degradation accounting (resilience layer; all zero on a
  // --- perfect fabric or when the plan carries no loss faults) ---
  std::uint64_t retries = 0;          ///< retransmissions after ack timeout
  std::uint64_t rma_refetches = 0;    ///< re-issued one-sided gets
  std::uint64_t resent_bytes = 0;     ///< payload bytes sent again
  std::uint64_t recovered_msgs = 0;   ///< deliveries that needed >=1 retry
  std::uint64_t recovered_bytes = 0;  ///< payload bytes those carried
  std::uint64_t dup_discards = 0;     ///< duplicate deliveries suppressed
  std::uint64_t dead_letters = 0;     ///< gave up after bounded retries
  std::uint64_t acks = 0;             ///< acknowledgments sent
};

/// A backend's data-copy semantics, declared in one place (paper Section
/// II-D) instead of scattered conditionals:
///
///   zero_copy_local — the runtime owns data flowing through the graph, so
///                     local const-reference sends share it instead of
///                     copying (PaRSEC yes, MADNESS no);
///   serialize_once  — a payload's serialized form is cached on its DataCopy
///                     and reused for every destination rank of a broadcast
///                     and for retransmissions (PaRSEC yes; MADNESS
///                     re-serializes whole objects per send).
///
/// WorldConfig can override either knob for ablation runs
/// (bench/ablation_copies).
struct CopyPolicy {
  bool zero_copy_local = false;
  bool serialize_once = false;
};

/// Backend communication engine: ships already-serialized payloads between
/// simulated ranks and charges the CPU/NIC costs its real counterpart pays.
/// All `deliver`-style callbacks run at the destination once receive-side
/// processing completes; the caller is responsible for entering the right
/// rank context inside the callback.
class CommEngine {
 public:
  virtual ~CommEngine();  // out-of-line: ReliableLink is incomplete here

  [[nodiscard]] virtual const char* name() const = 0;

  /// Per-task runtime overhead (scheduling, dependence bookkeeping).
  [[nodiscard]] virtual double task_overhead() const = 0;

  /// True if the backend supports the split-metadata (RMA) protocol.
  [[nodiscard]] virtual bool supports_splitmd() const = 0;

  /// The backend's native data-copy semantics (see CopyPolicy).
  [[nodiscard]] virtual CopyPolicy default_policy() const = 0;

  /// The policy in effect: the backend default, possibly overridden per
  /// knob by configure_policy (-1 keeps the default, 0/1 force off/on).
  [[nodiscard]] const CopyPolicy& policy() const { return policy_; }
  void configure_policy(int zero_copy_override, int serialize_once_override) {
    policy_ = default_policy();
    if (zero_copy_override >= 0) policy_.zero_copy_local = zero_copy_override != 0;
    if (serialize_once_override >= 0)
      policy_.serialize_once = serialize_once_override != 0;
  }

  /// True if local sends by const reference can share runtime-owned data
  /// instead of copying (the PaRSEC backend's data-ownership feature).
  [[nodiscard]] bool zero_copy_local() const { return policy_.zero_copy_local; }
  /// True if whole-object sends reuse the DataCopy's cached serialized form.
  [[nodiscard]] bool serialize_once() const { return policy_.serialize_once; }

  /// CPU seconds the *sender* pays to stage `bytes` for the wire under the
  /// given protocol (serialization copies). Charged on the sending worker.
  [[nodiscard]] virtual double send_side_cpu(std::size_t bytes, ser::Protocol p) const = 0;

  /// CPU seconds of pure per-message injection overhead (AM issue without
  /// any staging copy) — what a cache-hit send costs the sender.
  [[nodiscard]] virtual double per_message_cpu() const = 0;

  /// Payload staging copies the sender pays for one whole-object message
  /// under protocol `p` (the copies behind send_side_cpu, as a count).
  [[nodiscard]] virtual int send_copies(ser::Protocol p) const = 0;

  /// Payload unstaging copies the receiver pays for one whole-object
  /// message (buffer -> object deserialization).
  [[nodiscard]] virtual int recv_copies(ser::Protocol p) const = 0;

  /// Ship a whole-object message of `wire_bytes`; at the destination, charge
  /// receive-side processing (AM handling + deserialization copy) on the
  /// backend's message-processing resource, then invoke `deliver`.
  virtual void send_message(int src, int dst, std::size_t wire_bytes,
                            std::function<void()> deliver) = 0;

  /// Split-metadata transfer: eager metadata of `md_bytes`, then a one-sided
  /// fetch of `payload_bytes`. `on_metadata` runs at dst when the metadata
  /// has been processed (allocate the object there); `on_payload` runs at
  /// dst when the RMA get has landed (deliver); `on_release` runs at src
  /// when the completion notification arrives (drop the source reference).
  /// Only meaningful when supports_splitmd().
  virtual void send_splitmd(int src, int dst, std::size_t md_bytes,
                            std::size_t payload_bytes, std::function<void()> on_metadata,
                            std::function<void()> on_payload,
                            std::function<void()> on_release) = 0;

  /// DataCopy-based send: ship a whole-object message whose payload is a
  /// cached serialized buffer. `pin` keeps the payload's DataCopy block (and
  /// with it the buffer) alive until final delivery — or dead-letter — so
  /// the resilience layer retransmits from the cache instead of
  /// re-serializing. Routing and receive-side costs are exactly those of
  /// send_message.
  void send_payload(int src, int dst, std::size_t wire_bytes,
                    std::shared_ptr<const void> pin, std::function<void()> deliver);

  [[nodiscard]] const CommStats& stats() const { return stats_; }
  CommStats& mutable_stats() { return stats_; }

  /// Turn on loss recovery for this engine's traffic: every payload message
  /// is acknowledged, retransmitted on timeout with exponential backoff up
  /// to the plan's retry bound, and splitmd gets are re-fetched. Called by
  /// the World when its FaultPlan can lose data; without it the fault-free
  /// protocol (no acks, no timers) is used unchanged.
  virtual void enable_resilience(const sim::FaultPlan& plan) = 0;
  [[nodiscard]] bool resilient() const { return reliable_ != nullptr; }

  /// Attach an execution tracer (owned by the World): the engine records
  /// message-processing queue waits and RMA latencies into it.
  void set_tracer(Tracer* tracer);

 protected:
  /// Build the shared ack/timeout/retry machinery (used by engines'
  /// enable_resilience implementations).
  void make_reliable(sim::Engine& engine, net::Network& network,
                     const sim::FaultPlan& plan);

  CommStats stats_;
  CopyPolicy policy_;  ///< set by configure_policy (World) / derived ctors
  Tracer* tracer_ = nullptr;
  std::unique_ptr<ReliableLink> reliable_;
};

}  // namespace ttg::rt
