// Loss recovery for the comm plane (detection + bounded retry).
//
// The simulated fabric can drop, duplicate, or delay transfers once a
// FaultPlan is armed (sim/fault.hpp). Real backends recover at the
// communication layer, and so do ours:
//
//   * whole-object messages (PaRSEC active messages, MADNESS rendezvous
//     sends) are acknowledged by the receiver; the sender arms a
//     retransmission timeout sized from the machine model and the plan's
//     worst-case link perturbation, backs off exponentially, and resends up
//     to the plan's retry bound. For MADNESS this re-runs the whole
//     RTS/CTS/payload rendezvous; for PaRSEC it re-issues the AM.
//   * splitmd payloads are re-fetched: if the one-sided get has not landed
//     before the timeout, the receiver issues it again.
//
// Duplicates — whether injected by the fabric or created by retransmission
// racing a late ack — are suppressed at the receiver, so the consumer sees
// exactly-once delivery. After max_retries unacknowledged attempts the
// message is dead-lettered (counted, traced, and abandoned).
//
// All counters land in the owning engine's CommStats (retries, resent and
// recovered bytes, duplicate discards, dead letters) and every recovery
// action is recorded in the Tracer as a first-class fault event.
#pragma once

#include <cstddef>
#include <functional>
#include <memory>

#include "net/network.hpp"
#include "runtime/comm.hpp"
#include "runtime/trace.hpp"
#include "sim/engine.hpp"
#include "sim/fault.hpp"

namespace ttg::rt {

/// Ack/timeout/retry machinery shared by both backend comm engines. One
/// instance serves every (src, dst) pair of its Network.
class ReliableLink {
 public:
  ReliableLink(sim::Engine& engine, net::Network& network, const sim::FaultPlan& plan,
               CommStats& stats);

  void set_tracer(Tracer* tracer) { tracer_ = tracer; }

  /// Ship one payload message with at-most-once delivery to `deliver` and
  /// retransmission on ack timeout. The protocol (eager vs rendezvous) is
  /// chosen per attempt by the network, exactly as for unreliable sends.
  /// `deliver` is held in the send state across retries: anything it owns —
  /// in particular a DataCopy pin with the cached serialized buffer
  /// (CommEngine::send_payload) — survives until ack or dead-letter, so
  /// retransmissions never re-serialize.
  void send(int src, int dst, std::size_t bytes, std::function<void()> deliver);

  /// One-sided get with re-fetch on timeout. `on_done` fires exactly once at
  /// `dst` when a fetch lands; `on_remote_complete` fires at most once at
  /// `src` when a completion notification arrives.
  void rma_fetch(int src, int dst, std::size_t bytes, std::function<void()> on_done,
                 std::function<void()> on_remote_complete);

 private:
  struct SendState;
  struct RmaState;

  /// Timeout for attempt `attempt` of a `bytes`-sized transfer: base RTO
  /// plus a generous wire-time estimate under the plan's worst-case link
  /// perturbation, doubled per retry by the backoff factor.
  [[nodiscard]] double rto(std::size_t bytes, int attempt) const;

  void attempt_send(const std::shared_ptr<SendState>& st);
  void attempt_rma(const std::shared_ptr<RmaState>& st);

  sim::Engine& engine_;
  net::Network& net_;
  sim::FaultPlan plan_;
  CommStats& stats_;
  Tracer* tracer_ = nullptr;
};

}  // namespace ttg::rt
