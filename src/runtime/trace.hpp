// Structured runtime observability (PaRSEC-style profiling, grown up).
//
// When enabled on a World, the Tracer collects a typed event stream from
// every layer of the runtime:
//
//   * task spans     — TT name, task key, rank, worker, priority, virtual
//                      start/end (recorded by the Scheduler);
//   * message events — send/recv with byte counts and the consumer terminal
//                      name (recorded by the output-terminal send paths);
//   * server events  — queueing delay + service time on the backend's
//                      message-processing resource: the PaRSEC comm thread
//                      or the MADNESS active-message server thread;
//   * RMA events     — one-sided get latency in the PaRSEC splitmd path;
//   * wire spans     — per-transfer NIC/fabric occupancy (recorded by the
//                      Network through an observer callback).
//
// Tasks and messages double as nodes of a causality graph: a task that
// sends a message is the message's predecessor, and a message whose
// delivery completes a task's inputs is that task's predecessor (local
// sends link tasks directly). Node ids are allocated in causal order, so
// the graph is a DAG in id order and supports a linear-time critical-path
// walk. Everything is queryable programmatically — counters per rank, the
// critical path, per-rank busy/idle/comm breakdowns — and exportable as
// Chrome-trace JSON loadable in chrome://tracing or Perfetto.
//
// All records are keyed to the *virtual* clock and produced by the
// deterministic event engine, so two runs of the same workload produce
// byte-identical traces.
#pragma once

#include <cstddef>
#include <cstdint>
#include <limits>
#include <map>
#include <string>
#include <vector>

#include "runtime/job.hpp"
#include "sim/fault.hpp"

namespace ttg::support {
class Table;
}

namespace ttg::rt {

/// One executed task instance (also a node of the causality graph).
struct TaskTrace {
  std::string name;   ///< template task name
  std::string key;    ///< task ID rendered via key_to_string (may be empty)
  JobId job = kDefaultJob;  ///< serving-mode job the task belongs to
  int rank = 0;
  int worker = -1;    ///< worker index within the rank, assigned at start
  int priority = 0;
  double start = 0.0; ///< virtual seconds
  double end = 0.0;   ///< virtual seconds (includes post-body send CPU)
  std::uint64_t exec_seq = 0;        ///< global body-execution order
  std::uint32_t node = 0;            ///< this task's causality-graph node id
  std::vector<std::uint32_t> preds;  ///< node ids this task depends on
  bool executed = false;             ///< body ran (false only mid-run)
};

/// One remote message (whole-object or splitmd), also a graph node.
struct MsgTrace {
  std::string edge;  ///< consumer terminal (TT) name
  JobId job = kDefaultJob;  ///< serving-mode job the message belongs to
  int src = 0;
  int dst = 0;
  std::uint64_t bytes = 0;
  bool splitmd = false;
  double send_time = -1.0;  ///< injection into the comm layer at src
  double recv_time = -1.0;  ///< delivery into the consumer at dst
  std::uint32_t node = 0;
  std::vector<std::uint32_t> preds;
};

/// Queueing on a backend message-processing thread (comm/AM server).
struct ServerTrace {
  int rank = 0;      ///< rank whose server processed the message
  double at = 0.0;   ///< arrival time at the server queue
  double wait = 0.0; ///< time spent queued behind earlier messages
  double service = 0.0;
};

/// One one-sided get in the PaRSEC splitmd data plane.
struct RmaTrace {
  int src = 0;  ///< rank the payload was fetched from
  int dst = 0;  ///< fetching rank
  std::uint64_t bytes = 0;
  double issued = 0.0;
  double landed = 0.0;
  [[nodiscard]] double latency() const { return landed - issued; }
};

/// One payload transfer occupying the simulated wire.
struct WireTrace {
  int src = 0;
  int dst = 0;
  std::uint64_t bytes = 0;
  double start = 0.0;  ///< injection into the sender NIC
  double end = 0.0;    ///< delivery out of the receiver NIC
};

/// One fault-injection or recovery action (drop, duplicate, retry, …);
/// recorded by the Network (injections) and the ReliableLink (recovery).
struct FaultTrace {
  sim::FaultKind kind = sim::FaultKind::Drop;
  int src = 0;
  int dst = 0;
  std::uint64_t bytes = 0;
  double t = 0.0;  ///< virtual time of the event
};

/// Per-template aggregate.
struct TraceSummary {
  std::uint64_t count = 0;
  double total_time = 0.0;
  double max_time = 0.0;
};

/// Per-rank communication/scheduling counters, queryable by tests.
struct CommCounters {
  std::uint64_t msg_sends = 0;       ///< remote messages issued by this rank
  std::uint64_t msg_recvs = 0;       ///< remote messages delivered here
  std::uint64_t bytes_sent = 0;
  std::uint64_t bytes_received = 0;
  std::uint64_t splitmd_sends = 0;       ///< messages using the RMA data plane
  std::uint64_t whole_object_sends = 0;  ///< messages serialized whole
  std::uint64_t serialization_copies = 0;  ///< payload staging/unstaging copies
  std::uint64_t rma_gets = 0;
  // --- data-lifecycle layer (DataCopy handles on this rank) ---
  std::uint64_t data_allocs = 0;     ///< DataCopy blocks entered the runtime
  std::uint64_t data_releases = 0;   ///< blocks whose refcount returned to zero
  std::uint64_t payload_serializations = 0;  ///< archive passes over payloads
  std::uint64_t serialize_cache_hits = 0;    ///< sends reusing the cached buffer
  // --- collective data plane (tree-routed broadcast + AM coalescing) ---
  std::uint64_t broadcast_forwards = 0;  ///< tree hops forwarded from this rank
  std::uint64_t am_batches = 0;          ///< coalesced wire transfers issued
  std::uint64_t batched_msgs = 0;        ///< AMs that rode inside those batches
  // --- reduction tree (many-to-one streaming combine) ---
  std::uint64_t reduce_forwards = 0;  ///< combined partials sent up from here
  std::uint64_t reduce_combines = 0;  ///< incoming partials absorbed here
  // --- machine-topology split of payload-bearing tree hops ---
  std::uint64_t intra_node_hops = 0;  ///< hops staying on the sender's node
  std::uint64_t inter_node_hops = 0;  ///< hops crossing the network
  // --- work-stealing substrate (zero when WorldConfig::work_stealing off) ---
  std::uint64_t steals_local = 0;   ///< same-socket deque steals on this rank
  std::uint64_t steals_remote = 0;  ///< cross-socket deque steals
  std::uint64_t steal_fail = 0;     ///< steal scans that found no victim
  // --- device plane (zero when WorldConfig::device is Off) ---
  std::uint64_t device_tasks = 0;      ///< task bodies run on a simulated GPU
  std::uint64_t h2d_transfers = 0;     ///< host -> device stagings paid
  std::uint64_t h2d_bytes = 0;
  std::uint64_t d2h_transfers = 0;     ///< dirty-eviction writebacks paid
  std::uint64_t d2h_bytes = 0;
  std::uint64_t residency_hits = 0;    ///< device inputs found already resident
  std::uint64_t residency_misses = 0;  ///< device inputs that needed staging
  std::uint64_t device_evictions = 0;  ///< residents dropped under HBM pressure
  double charged_cpu = 0.0;   ///< CPU charged inside task bodies (send copies)
  double server_wait = 0.0;   ///< queueing on the comm/AM server thread
  double server_busy = 0.0;   ///< service time on the comm/AM server thread
  double rma_latency_total = 0.0;
  double rma_latency_max = 0.0;
};

/// One hop of the critical path.
struct CriticalHop {
  enum class Kind { Task, Message };
  Kind kind = Kind::Task;
  std::string label;  ///< TT name (task) or consumer terminal name (message)
  std::string key;    ///< task key, empty for messages
  int rank = 0;       ///< executing rank (task) or destination rank (message)
  double start = 0.0;
  double duration = 0.0;
};

/// The longest task→message→task chain through the run.
struct CriticalPath {
  double length = 0.0;  ///< sum of hop durations (virtual seconds)
  std::vector<CriticalHop> hops;  ///< in causal order, root first
};

class Tracer {
 public:
  static constexpr std::uint32_t kNoNode = std::numeric_limits<std::uint32_t>::max();

  /// Fix the world geometry (called by World::enable_tracing); used for
  /// per-rank tables and Chrome-trace track layout.
  void configure(int nranks, int workers_per_rank);
  [[nodiscard]] int nranks() const { return nranks_; }
  [[nodiscard]] int workers_per_rank() const { return workers_per_rank_; }

  /// Bind the ambient-job source (the World's current-job variable); new
  /// task/message nodes are stamped with the job ambient at creation.
  void set_job_source(const JobId* source) { job_source_ = source; }
  [[nodiscard]] JobId current_job() const {
    return job_source_ != nullptr ? *job_source_ : kDefaultJob;
  }

  // --- causality context (which node is currently executing) ---

  [[nodiscard]] std::uint32_t context() const { return ctx_; }
  void set_context(std::uint32_t node) { ctx_ = node; }
  void clear_context() { ctx_ = kNoNode; }

  // --- recording: scheduler layer ---

  /// Allocate a task node at submit time; links it to the current context
  /// (the task or message that caused the submission), if any.
  std::uint32_t task_created(std::string name, std::string key, int rank, int priority);
  /// Fill in execution data when the task body has run.
  void task_executed(std::uint32_t node, int worker, double start, double end);
  /// CPU charged inside a task body (serialization copies on sends).
  void add_charged_cpu(int rank, double dt) { counters(rank).charged_cpu += dt; }

  /// Back-compat shim: record a completed task span in one call (used by
  /// code that does not carry node ids around).
  void record(std::string name, int rank, int priority, double start, double end) {
    task_executed(task_created(std::move(name), std::string(), rank, priority),
                  /*worker=*/-1, start, end);
  }

  // --- recording: terminal / message layer ---

  /// Allocate a message node (at send-issue time, inside the sender's body
  /// so the producing task becomes its predecessor) and count the send.
  std::uint32_t message_created(std::string edge, int src, int dst, std::uint64_t bytes,
                                bool splitmd);
  /// The message entered the comm layer (post send-side staging).
  void message_sent(std::uint32_t node, double t);
  /// The message was delivered into the consumer at dst; counts the recv.
  void message_delivered(std::uint32_t node, double t);
  /// Payload staging/unstaging copies paid for a message.
  void add_copies(int rank, int n) {
    counters(rank).serialization_copies += static_cast<std::uint64_t>(n);
  }

  // --- recording: data-lifecycle layer (DataCopy) ---

  /// A payload entered the lifecycle layer on `rank` (refcount 0 -> 1).
  void record_data_alloc(int rank) { counters(rank).data_allocs += 1; }
  /// A payload's refcount returned to zero on `rank`.
  void record_data_release(int rank) { counters(rank).data_releases += 1; }
  /// An archive pass over a payload (`cache_hit` false) or a send served
  /// from the cached serialized buffer (`cache_hit` true).
  void record_serialization(int rank, bool cache_hit) {
    auto& c = counters(rank);
    (cache_hit ? c.serialize_cache_hits : c.payload_serializations) += 1;
  }

  // --- recording: collective data plane ---

  /// An interior rank of a broadcast spanning tree re-injected the pinned
  /// serialized block toward one child.
  void record_forward(int rank) { counters(rank).broadcast_forwards += 1; }
  /// `n` small AMs bound for the same destination left `rank` as one
  /// coalesced wire transfer.
  void record_am_batch(int rank, std::size_t n) {
    auto& c = counters(rank);
    c.am_batches += 1;
    c.batched_msgs += static_cast<std::uint64_t>(n);
  }

  /// An interior rank of a reduction tree sent its combined partial up
  /// toward the owner.
  void record_reduce_forward(int rank) { counters(rank).reduce_forwards += 1; }
  /// A rank absorbed one incoming combined partial (fold or init-move)
  /// from a reduction-tree child.
  void record_reduce_combine(int rank) { counters(rank).reduce_combines += 1; }
  /// A payload-bearing tree hop left `rank`; `intra` says whether both
  /// endpoints share a machine node (collective::Topology).
  void record_tree_hop(int rank, bool intra) {
    auto& c = counters(rank);
    (intra ? c.intra_node_hops : c.inter_node_hops) += 1;
  }

  /// Per-rank collective data-plane table (tree forwards + AM batches) for
  /// --trace-summary; rows only for ranks with non-zero activity.
  [[nodiscard]] support::Table forwarding_table() const;

  // --- recording: work-stealing scheduler substrate ---

  /// One successful deque steal on `rank` (`local` = same-socket victim).
  void record_steal(int rank, bool local) {
    auto& c = counters(rank);
    (local ? c.steals_local : c.steals_remote) += 1;
  }
  /// A steal scan on `rank` found every other core's deque empty.
  void record_steal_fail(int rank) { counters(rank).steal_fail += 1; }

  /// Per-rank work-stealing table (local/remote steals + failed scans) for
  /// --trace-summary; rows only for ranks with non-zero activity.
  [[nodiscard]] support::Table steal_table() const;

  // --- recording: device plane (simulated accelerators) ---

  /// A task body was placed on (and ran on) one of `rank`'s simulated GPUs.
  void record_device_task(int rank) { counters(rank).device_tasks += 1; }
  /// One device input datum was looked up in the residency map.
  void record_residency(int rank, bool hit) {
    auto& c = counters(rank);
    (hit ? c.residency_hits : c.residency_misses) += 1;
  }
  /// A host -> device staging transfer was paid for a cold input.
  void record_h2d(int rank, std::uint64_t bytes) {
    auto& c = counters(rank);
    c.h2d_transfers += 1;
    c.h2d_bytes += bytes;
  }
  /// A dirty resident was written back host-side on eviction.
  void record_d2h(int rank, std::uint64_t bytes) {
    auto& c = counters(rank);
    c.d2h_transfers += 1;
    c.d2h_bytes += bytes;
  }
  /// A resident datum was dropped to make room under HBM pressure.
  void record_eviction(int rank) { counters(rank).device_evictions += 1; }

  /// Per-rank device-plane table (device tasks, staging traffic, residency
  /// hit rate) for --trace-summary; rows only for ranks with activity.
  [[nodiscard]] support::Table device_table() const;

  // --- recording: backend comm engines ---

  void record_server(int rank, double at, double wait, double service);
  void record_rma(int src, int dst, std::uint64_t bytes, double issued, double landed);

  // --- recording: network layer ---

  void record_wire(int src, int dst, std::uint64_t bytes, double start, double end);

  // --- recording: fault injection & recovery ---

  void record_fault(sim::FaultKind kind, int src, int dst, std::uint64_t bytes,
                    double t);

  // --- queries ---

  [[nodiscard]] const std::vector<TaskTrace>& records() const { return tasks_; }
  [[nodiscard]] const std::vector<MsgTrace>& messages() const { return msgs_; }
  [[nodiscard]] const std::vector<ServerTrace>& server_events() const { return server_; }
  [[nodiscard]] const std::vector<RmaTrace>& rma_events() const { return rma_; }
  [[nodiscard]] const std::vector<WireTrace>& wire_events() const { return wire_; }
  [[nodiscard]] const std::vector<FaultTrace>& fault_events() const { return faults_; }
  [[nodiscard]] std::size_t size() const { return tasks_.size(); }
  void clear();

  /// Per-rank counters (zero-initialized for ranks never seen).
  [[nodiscard]] const CommCounters& rank_counters(int rank) const;
  /// Counters summed over all ranks.
  [[nodiscard]] CommCounters totals() const;

  /// Aggregate by template-task name.
  [[nodiscard]] std::map<std::string, TraceSummary> summarize() const;

  /// Per-job aggregate over the task stream (serving mode).
  struct JobTotals {
    std::uint64_t tasks = 0;
    std::uint64_t messages = 0;
    double task_time = 0.0;  ///< summed executed-span durations
  };
  [[nodiscard]] std::map<JobId, JobTotals> job_totals() const;

  /// Busy seconds per rank.
  [[nodiscard]] std::vector<double> busy_per_rank(int nranks) const;

  /// Average worker utilization over [0, makespan].
  [[nodiscard]] double utilization(int nranks, int workers_per_rank,
                                   double makespan) const;

  /// Longest dependency chain (tasks + messages) by summed duration.
  [[nodiscard]] CriticalPath critical_path() const;

  // --- rendering ---

  /// Render the per-template summary as an aligned text block.
  [[nodiscard]] std::string summary_table() const;

  /// Per-rank busy/idle/comm breakdown over [0, makespan].
  [[nodiscard]] support::Table breakdown_table(double makespan) const;

  /// The critical path as an aligned text report.
  [[nodiscard]] std::string critical_path_report() const;

  /// Fault/recovery events aggregated by kind as an aligned text report
  /// (empty string when no fault events were recorded).
  [[nodiscard]] std::string fault_report() const;

  /// Chrome-trace ("traceEvents") JSON: tasks on per-worker tracks grouped
  /// by rank, server/RMA activity on backend tracks, transfers on a
  /// synthetic "network" process. Load in chrome://tracing or Perfetto.
  [[nodiscard]] std::string chrome_trace_json() const;
  /// Write chrome_trace_json() to `path` (throws support::ApiError on I/O
  /// failure).
  void write_chrome_trace(const std::string& path) const;

 private:
  struct NodeRef {
    enum class Kind : std::uint8_t { Task, Message } kind;
    std::uint32_t index;  ///< into tasks_ or msgs_
  };

  CommCounters& counters(int rank);
  std::uint32_t new_node(NodeRef::Kind kind, std::uint32_t index);
  void link_from_context(std::vector<std::uint32_t>& preds);

  int nranks_ = 0;
  int workers_per_rank_ = 0;
  const JobId* job_source_ = nullptr;
  std::uint32_t ctx_ = kNoNode;
  std::uint64_t next_exec_seq_ = 0;
  std::vector<TaskTrace> tasks_;
  std::vector<MsgTrace> msgs_;
  std::vector<ServerTrace> server_;
  std::vector<RmaTrace> rma_;
  std::vector<WireTrace> wire_;
  std::vector<FaultTrace> faults_;
  std::vector<NodeRef> nodes_;
  std::vector<CommCounters> counters_;
};

}  // namespace ttg::rt
