// Execution tracing (PaRSEC-style profiling).
//
// When enabled on a World, every task executed by any rank's scheduler is
// recorded with its template name, rank, priority, and virtual start/end
// times. The trace supports the kind of analysis the paper's figures rest
// on: per-kernel time breakdowns, per-rank utilization, and critical-path
// inspection. Records are in execution order (deterministic).
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace ttg::rt {

/// One executed task instance.
struct TaskTrace {
  std::string name;   ///< template task name
  int rank = 0;
  int priority = 0;
  double start = 0.0; ///< virtual seconds
  double end = 0.0;   ///< virtual seconds (includes post-body send CPU)
};

/// Per-template aggregate.
struct TraceSummary {
  std::uint64_t count = 0;
  double total_time = 0.0;
  double max_time = 0.0;
};

class Tracer {
 public:
  void record(std::string name, int rank, int priority, double start, double end) {
    records_.push_back(TaskTrace{std::move(name), rank, priority, start, end});
  }

  [[nodiscard]] const std::vector<TaskTrace>& records() const { return records_; }
  [[nodiscard]] std::size_t size() const { return records_.size(); }
  void clear() { records_.clear(); }

  /// Aggregate by template-task name.
  [[nodiscard]] std::map<std::string, TraceSummary> summarize() const {
    std::map<std::string, TraceSummary> out;
    for (const auto& r : records_) {
      auto& s = out[r.name];
      s.count += 1;
      const double dt = r.end - r.start;
      s.total_time += dt;
      if (dt > s.max_time) s.max_time = dt;
    }
    return out;
  }

  /// Busy seconds per rank.
  [[nodiscard]] std::vector<double> busy_per_rank(int nranks) const {
    std::vector<double> busy(static_cast<std::size_t>(nranks), 0.0);
    for (const auto& r : records_)
      busy[static_cast<std::size_t>(r.rank)] += r.end - r.start;
    return busy;
  }

  /// Average worker utilization over [0, makespan].
  [[nodiscard]] double utilization(int nranks, int workers_per_rank,
                                   double makespan) const {
    if (makespan <= 0.0) return 0.0;
    double busy = 0.0;
    for (const auto& r : records_) busy += r.end - r.start;
    return busy / (static_cast<double>(nranks) * workers_per_rank * makespan);
  }

  /// Render the per-template summary as an aligned text block.
  [[nodiscard]] std::string summary_table() const {
    std::string out = "template        count      total[s]     max[s]\n";
    char buf[128];
    for (const auto& [name, s] : summarize()) {
      std::snprintf(buf, sizeof buf, "%-14s %7llu  %12.6f %10.6f\n", name.c_str(),
                    static_cast<unsigned long long>(s.count), s.total_time,
                    s.max_time);
      out += buf;
    }
    return out;
  }

 private:
  std::vector<TaskTrace> records_;
};

}  // namespace ttg::rt
