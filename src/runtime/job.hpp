// Multi-tenant job layer: JobId, admission control, and the template-graph
// instantiation cache.
//
// One World can host N independent DAG instances ("jobs") concurrently — the
// ROADMAP's serving mode. A JobId threads through the Scheduler (per-job
// ready queues, fairness, in-flight caps), both comm backends (per-job
// message/byte accounting), the Tracer (task/message attribution) and the
// DataTracker (per-job live-handle accounting, so a cross-job DataCopy leak
// is detected at fence time). Job 0 is the default context: a world that
// never submits jobs runs everything as job 0 and behaves bit-identically to
// the single-DAG runtime.
//
// The pieces:
//
//   * JobManager  — admission control (bounded concurrent jobs, FIFO
//                   pending queue) + per-job lifecycle timestamps
//                   (submit/start/done → latency), owned by the World.
//   * GraphCache  — template-graph instantiation cache keyed on TT
//                   structure (GraphKey): a job arriving with an
//                   already-compiled POTRF/bspmm/FW graph reuses the
//                   instance instead of rebuilding it. Entries are checked
//                   out exclusively (two concurrent same-key jobs get two
//                   instances) and invalidated when a TT was mutated after
//                   caching (set_keymap & friends bump a mutation counter).
#pragma once

#include <array>
#include <compare>
#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "support/error.hpp"

namespace ttg::rt {

class World;

/// Identifies one DAG instance (job) hosted by a World. Job 0 is the
/// default/ambient job every pre-serving code path runs under.
using JobId = std::uint32_t;
inline constexpr JobId kDefaultJob = 0;

/// How the Scheduler arbitrates between ready queues of different jobs.
enum class FairnessMode {
  Strict,      ///< global (priority desc, job id asc, enqueue seq asc) order
  WeightedRR,  ///< weighted round-robin over jobs' ready queues
};

/// Per-job scheduling knobs, pushed to every rank's Scheduler at admission.
struct JobSpec {
  std::string name = "job";  ///< label for reports
  int weight = 1;            ///< WRR share (>= 1)
  int inflight_cap = 0;      ///< max in-flight tasks per rank; 0 = unlimited
};

enum class JobState { Pending, Running, Done };

/// Lifecycle record of one job (virtual-clock timestamps).
struct JobInfo {
  JobId id = kDefaultJob;
  JobSpec spec;
  JobState state = JobState::Pending;
  double t_submit = 0.0;  ///< submit() call
  double t_start = 0.0;   ///< admitted (graph primed)
  double t_done = 0.0;    ///< complete() call
  [[nodiscard]] double latency() const { return t_done - t_submit; }
};

/// Structural identity of a template graph: the graph kind plus the
/// parameters that shape its TTs (tile counts, block sizes, ...). Two jobs
/// with equal keys can share one compiled graph instance.
struct GraphKey {
  std::string kind;
  std::array<std::int64_t, 4> params{};
  auto operator<=>(const GraphKey&) const = default;
};

/// Instantiation cache for compiled template graphs. acquire() checks an
/// entry *out* of the pool (exclusive use: concurrent same-key jobs each get
/// their own instance); release() returns it, stamped with the graph's
/// current TT-mutation count. A later acquire() whose entry was mutated
/// since release (set_keymap after caching, ...) evicts it and rebuilds.
class GraphCache {
 public:
  struct Stats {
    std::uint64_t hits = 0;       ///< acquires served from the pool
    std::uint64_t misses = 0;     ///< acquires that built a fresh graph
    std::uint64_t evictions = 0;  ///< pooled entries invalidated by mutation
  };

  /// Get a graph for `key`: reuse a pooled instance whose TTs are unchanged
  /// since release, else call `build`. G must expose
  /// `std::uint64_t mutation_count() const`.
  template <typename G>
  std::shared_ptr<G> acquire(const GraphKey& key,
                             const std::function<std::shared_ptr<G>()>& build) {
    auto it = pool_.find(key);
    while (it != pool_.end() && !it->second.empty()) {
      Entry e = std::move(it->second.back());
      it->second.pop_back();
      auto g = std::static_pointer_cast<G>(e.graph);
      if (g->mutation_count() == e.version) {
        ++stats_.hits;
        return g;
      }
      ++stats_.evictions;  // mutated after caching: drop and keep looking
    }
    ++stats_.misses;
    return build();
  }

  /// Return a graph to the pool for later same-key jobs.
  template <typename G>
  void release(const GraphKey& key, std::shared_ptr<G> g) {
    TTG_CHECK(g != nullptr, "releasing a null graph into the cache");
    const std::uint64_t version = g->mutation_count();
    pool_[key].push_back(Entry{std::move(g), version});
  }

  [[nodiscard]] const Stats& stats() const { return stats_; }
  [[nodiscard]] std::size_t size() const {
    std::size_t n = 0;
    for (const auto& [k, v] : pool_) n += v.size();
    return n;
  }
  void clear() { pool_.clear(); }

 private:
  struct Entry {
    std::shared_ptr<void> graph;
    std::uint64_t version = 0;  ///< mutation count at release time
  };
  std::map<GraphKey, std::vector<Entry>> pool_;
  Stats stats_;
};

/// Admission control + lifecycle bookkeeping for the jobs of one World.
/// At most max_concurrent jobs run at once (0 = unlimited); excess
/// submissions wait in FIFO order and are admitted as running jobs complete.
/// All timestamps are virtual-clock (deterministic).
class JobManager {
 public:
  explicit JobManager(World& world) : world_(world) {}
  JobManager(const JobManager&) = delete;
  JobManager& operator=(const JobManager&) = delete;

  /// Bound on concurrently running jobs (0 = unlimited). Raising the bound
  /// admits pending jobs immediately.
  void set_max_concurrent(int n);
  [[nodiscard]] int max_concurrent() const { return max_concurrent_; }

  /// Select the fairness policy on every rank's Scheduler.
  void set_fairness(FairnessMode mode);

  /// Submit a job: if admissible it starts now (`start(id)` runs under the
  /// job's context with the job's scheduling knobs installed), otherwise it
  /// queues. Returns the new JobId (ids start at 1; 0 is the default job).
  JobId submit(JobSpec spec, std::function<void(JobId)> start);

  /// Mark a job finished (called by its completion callback); records
  /// t_done and admits the next pending job, if any.
  void complete(JobId id);

  [[nodiscard]] const JobInfo& job(JobId id) const;
  [[nodiscard]] std::size_t submitted() const { return jobs_.size(); }
  [[nodiscard]] std::size_t completed() const { return completed_; }
  [[nodiscard]] int running() const { return running_; }
  [[nodiscard]] std::size_t pending() const { return pending_.size(); }

  /// Latencies of completed jobs, in JobId order.
  [[nodiscard]] std::vector<double> latencies() const;

  /// The template-graph instantiation cache shared by this world's jobs.
  [[nodiscard]] GraphCache& cache() { return cache_; }

 private:
  void admit(std::size_t idx);

  World& world_;
  std::vector<JobInfo> jobs_;  ///< index = JobId - 1
  std::vector<std::function<void(JobId)>> starters_;
  std::deque<std::size_t> pending_;  ///< indices awaiting admission (FIFO)
  int max_concurrent_ = 0;
  int running_ = 0;
  std::size_t completed_ = 0;
  GraphCache cache_;
};

}  // namespace ttg::rt
