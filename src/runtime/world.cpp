#include "runtime/world.hpp"

#include <algorithm>

#include "runtime/comm_madness.hpp"
#include "runtime/comm_parsec.hpp"

namespace ttg::rt {

const char* to_string(BackendKind k) {
  switch (k) {
    case BackendKind::Parsec:
      return "parsec";
    case BackendKind::Madness:
      return "madness";
  }
  return "?";
}

const char* to_string(DevicePlacement p) {
  switch (p) {
    case DevicePlacement::Off:
      return "off";
    case DevicePlacement::Greedy:
      return "greedy";
    case DevicePlacement::Always:
      return "always";
  }
  return "?";
}

namespace {

// Lookahead rule: no cross-rank delivery can undercut the propagation
// latency of the fastest link, so epochs of that width are safe to drain
// lane-parallel. Fault plans can only speed a link up via latency_factor < 1.
sim::EngineConfig derive_engine_config(const WorldConfig& cfg) {
  sim::EngineConfig ec;
  if (cfg.engine_lanes <= 0) return ec;  // serial reference engine
  ec.lanes = cfg.engine_lanes;
  ec.threads = cfg.engine_threads;
  ec.nranks = cfg.nranks;
  ec.lookahead = cfg.engine_lookahead;
  if (ec.lookahead <= 0.0) {
    double factor = cfg.faults.enabled() ? cfg.faults.min_latency_factor() : 1.0;
    ec.lookahead = cfg.machine.net_latency * std::min(1.0, factor);
  }
  ec.adaptive = cfg.engine_adaptive_lookahead;
  ec.window_cap = cfg.engine_window_cap;
  return ec;
}

}  // namespace

World::World(WorldConfig cfg) : cfg_(cfg), engine_(derive_engine_config(cfg_)) {
  TTG_REQUIRE(cfg_.nranks >= 1, "world needs at least one rank");
  workers_ = cfg_.workers_per_rank > 0 ? cfg_.workers_per_rank
                                       : cfg_.machine.cores_per_node;
  network_ = std::make_unique<net::Network>(engine_, cfg_.machine, cfg_.nranks);
  switch (cfg_.backend) {
    case BackendKind::Parsec:
      comm_ = std::make_unique<ParsecComm>(engine_, *network_, cfg_.am_cpu_factor,
                                           cfg_.task_overhead_override,
                                           cfg_.enable_splitmd);
      break;
    case BackendKind::Madness:
      comm_ = std::make_unique<MadnessComm>(engine_, *network_, cfg_.am_cpu_factor,
                                            cfg_.task_overhead_override);
      break;
  }
  comm_->configure_policy(cfg_.zero_copy_local, cfg_.serialize_once);
  comm_->configure_collective(cfg_.broadcast_tree_arity, cfg_.am_flush_window,
                              cfg_.reduce_tree_arity, cfg_.collective_adaptive);
  comm_->set_job_source(&current_job_);
  data_.configure(cfg_.nranks);
  data_.set_job_source(&current_job_);
  sched_.reserve(static_cast<std::size_t>(cfg_.nranks));
  for (int r = 0; r < cfg_.nranks; ++r) {
    sched_.push_back(std::make_unique<Scheduler>(engine_, r, workers_));
  }
  if (cfg_.device != DevicePlacement::Off) {
    TTG_REQUIRE(cfg_.machine.gpus_per_node > 0,
                "device placement enabled but machine model has no GPUs");
    DeviceConfig dc;
    dc.enabled = true;
    dc.always = cfg_.device == DevicePlacement::Always;
    dc.gpus = cfg_.machine.gpus_per_node;
    dc.launch_overhead = cfg_.machine.gpu_launch_overhead;
    dc.stage_latency = cfg_.machine.pcie_latency;
    dc.stage_bw = cfg_.machine.pcie_bw;
    dc.hbm_bytes = static_cast<std::uint64_t>(cfg_.machine.hbm_bytes);
    for (auto& s : sched_) {
      s->set_data_tracker(&data_);
      s->configure_device(dc);
    }
  }
  if (cfg_.work_stealing) {
    StealConfig sc;
    sc.enabled = true;
    sc.seed = cfg_.seed;
    sc.sockets = std::max(1, cfg_.machine.sockets_per_node);
    sc.latency_local = cfg_.machine.steal_latency_local;
    sc.latency_remote = cfg_.machine.steal_latency_remote;
    for (auto& s : sched_) s->configure_steal(sc);
  }
  if (cfg_.faults.enabled()) {
    network_->configure_faults(cfg_.faults);
    for (int r = 0; r < cfg_.nranks; ++r) {
      sched_[static_cast<std::size_t>(r)]->set_compute_factor(
          cfg_.faults.compute_factor(r));
    }
    // Arm the comm-plane recovery protocol only when transfers can actually
    // be lost or delayed; pure perturbation plans (stragglers, slow links)
    // keep the fault-free wire protocol so no ack traffic is added.
    if (cfg_.faults.needs_reliability()) comm_->enable_resilience(cfg_.faults);
  }
}

World::~World() = default;

sim::Time World::fence() {
  for (const TTBase* tt : tts_) {
    TTG_REQUIRE(tt->executable,
                "fence() before make_graph_executable on TT '" + tt->name() + "'");
  }
  const sim::Time t = engine_.run();
  // The queue is drained, so every send/broadcast closure has been run (or
  // cancelled and freed): any DataCopy still alive is a genuine leak.
  data_.check_no_leaks();
  // With the device plane on, reconcile the tracker's resident-byte view
  // against the schedulers' residency maps (a disagreement means staging or
  // eviction accounting went unbalanced somewhere).
  if (cfg_.device != DevicePlacement::Off) {
    std::vector<std::uint64_t> view;
    view.reserve(sched_.size());
    for (const auto& s : sched_) view.push_back(s->device_resident_bytes());
    data_.check_device_residency(view);
  }
  return t;
}

std::size_t World::unfinished() const {
  std::size_t n = 0;
  for (const TTBase* tt : tts_) n += tt->pending_records();
  return n;
}

JobManager& World::jobs() {
  if (!jobs_) jobs_ = std::make_unique<JobManager>(*this);
  return *jobs_;
}

void World::enable_tracing() {
  if (tracer_) return;
  tracer_ = std::make_unique<Tracer>();
  tracer_->configure(cfg_.nranks, workers_);
  tracer_->set_job_source(&current_job_);
  for (auto& s : sched_) s->set_tracer(tracer_.get());
  comm_->set_tracer(tracer_.get());
  network_->set_transfer_observer(
      [t = tracer_.get()](int src, int dst, std::size_t bytes, sim::Time t0,
                          sim::Time t1) {
        t->record_wire(src, dst, static_cast<std::uint64_t>(bytes), t0, t1);
      });
  network_->set_fault_observer(
      [this, t = tracer_.get()](sim::FaultKind kind, int src, int dst,
                                std::size_t bytes) {
        t->record_fault(kind, src, dst, static_cast<std::uint64_t>(bytes),
                        engine_.now());
      });
}

void World::register_tt(TTBase* tt) { tts_.push_back(tt); }

void World::deregister_tt(TTBase* tt) {
  tts_.erase(std::remove(tts_.begin(), tts_.end(), tt), tts_.end());
}

double World::total_busy_time() const {
  double t = 0.0;
  for (const auto& s : sched_) t += s->busy_time();
  return t;
}

void make_graph_executable(TTBase& tt) { tt.executable = true; }

}  // namespace ttg::rt
