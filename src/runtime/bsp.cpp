#include "runtime/bsp.hpp"

#include <algorithm>
#include <cmath>
#include <queue>

#include "support/error.hpp"

namespace ttg::rt {

BspExecutor::BspExecutor(const sim::MachineModel& machine, int nranks,
                         int workers_per_rank)
    : machine_(machine),
      workers_(workers_per_rank > 0 ? workers_per_rank : machine.cores_per_node),
      clock_(static_cast<std::size_t>(nranks), 0.0) {
  TTG_CHECK(nranks >= 1, "BSP executor needs at least one rank");
}

void BspExecutor::compute(int rank, double seconds) {
  TTG_CHECK(seconds >= 0.0, "negative compute time");
  clock_[static_cast<std::size_t>(rank)] += seconds;
}

void BspExecutor::compute_phase(const std::vector<double>& seconds_per_rank) {
  TTG_CHECK(seconds_per_rank.size() == clock_.size(), "phase arity mismatch");
  for (std::size_t r = 0; r < clock_.size(); ++r) clock_[r] += seconds_per_rank[r];
  barrier();
}

double BspExecutor::list_schedule(const std::vector<double>& task_seconds, int workers) {
  TTG_CHECK(workers > 0, "list_schedule needs workers");
  // Greedy: longest-processing-time-first onto the earliest-free worker.
  std::vector<double> sorted = task_seconds;
  std::sort(sorted.begin(), sorted.end(), std::greater<>());
  std::priority_queue<double, std::vector<double>, std::greater<>> free_at;
  for (int w = 0; w < workers; ++w) free_at.push(0.0);
  double makespan = 0.0;
  for (double t : sorted) {
    double start = free_at.top();
    free_at.pop();
    double done = start + t;
    makespan = std::max(makespan, done);
    free_at.push(done);
  }
  return makespan;
}

double BspExecutor::msg_time(std::size_t bytes) const {
  return machine_.net_latency + machine_.wire_time(bytes);
}

void BspExecutor::p2p(int src, int dst, std::size_t bytes) {
  const double start = std::max(clock_[static_cast<std::size_t>(src)],
                                clock_[static_cast<std::size_t>(dst)]);
  const double done = start + msg_time(bytes);
  clock_[static_cast<std::size_t>(src)] = start + machine_.wire_time(bytes);
  clock_[static_cast<std::size_t>(dst)] = done;
  bytes_ += bytes;
  messages_ += 1;
}

void BspExecutor::broadcast(int root, std::size_t bytes, const std::vector<int>& group) {
  std::vector<int> g = group;
  if (g.empty()) {
    g.resize(clock_.size());
    for (std::size_t r = 0; r < clock_.size(); ++r) g[r] = static_cast<int>(r);
  }
  TTG_CHECK(std::find(g.begin(), g.end(), root) != g.end(), "root not in group");
  if (g.size() <= 1) return;
  double start = 0.0;
  for (int r : g) start = std::max(start, clock_[static_cast<std::size_t>(r)]);
  const int hops = static_cast<int>(std::ceil(std::log2(static_cast<double>(g.size()))));
  const double done = start + hops * msg_time(bytes);
  for (int r : g) clock_[static_cast<std::size_t>(r)] = done;
  bytes_ += bytes * (g.size() - 1);
  messages_ += g.size() - 1;
}

void BspExecutor::reduce(int root, std::size_t bytes, const std::vector<int>& group) {
  // Same tree shape as broadcast, traversed upward.
  broadcast(root, bytes, group);
}

void BspExecutor::allreduce(std::size_t bytes) {
  // Reduce + broadcast.
  const int hops =
      2 * static_cast<int>(std::ceil(std::log2(static_cast<double>(clock_.size()))));
  double start = now();
  const double done = start + hops * msg_time(bytes);
  for (auto& c : clock_) c = done;
  bytes_ += bytes * 2 * (clock_.size() - 1);
  messages_ += 2 * (clock_.size() - 1);
}

void BspExecutor::barrier() {
  const int hops =
      clock_.size() > 1
          ? 2 * static_cast<int>(std::ceil(std::log2(static_cast<double>(clock_.size()))))
          : 0;
  const double done = now() + hops * machine_.net_latency;
  for (auto& c : clock_) c = done;
}

double BspExecutor::fabric_time(std::uint64_t total_cross_bytes) const {
  // Same cross-section model as net::Network (cap at 128 endpoints).
  const double eff_nodes =
      clock_.size() > 1 ? std::min<double>(static_cast<double>(clock_.size()), 128.0) / 2.0
                        : 1.0;
  const double bis_bw = machine_.bisection_factor * eff_nodes * machine_.nic_bw;
  return static_cast<double>(total_cross_bytes) / bis_bw;
}

double BspExecutor::now() const {
  return *std::max_element(clock_.begin(), clock_.end());
}

}  // namespace ttg::rt
