#include "runtime/trace.hpp"

#include <algorithm>
#include <cstdio>
#include <sstream>

#include "support/error.hpp"
#include "support/table.hpp"

namespace ttg::rt {

void Tracer::configure(int nranks, int workers_per_rank) {
  nranks_ = nranks;
  workers_per_rank_ = workers_per_rank;
  if (static_cast<int>(counters_.size()) < nranks)
    counters_.resize(static_cast<std::size_t>(nranks));
}

CommCounters& Tracer::counters(int rank) {
  if (rank >= static_cast<int>(counters_.size()))
    counters_.resize(static_cast<std::size_t>(rank) + 1);
  return counters_[static_cast<std::size_t>(rank)];
}

const CommCounters& Tracer::rank_counters(int rank) const {
  static const CommCounters kZero{};
  if (rank < 0 || rank >= static_cast<int>(counters_.size())) return kZero;
  return counters_[static_cast<std::size_t>(rank)];
}

CommCounters Tracer::totals() const {
  CommCounters t;
  for (const auto& c : counters_) {
    t.msg_sends += c.msg_sends;
    t.msg_recvs += c.msg_recvs;
    t.bytes_sent += c.bytes_sent;
    t.bytes_received += c.bytes_received;
    t.splitmd_sends += c.splitmd_sends;
    t.whole_object_sends += c.whole_object_sends;
    t.serialization_copies += c.serialization_copies;
    t.rma_gets += c.rma_gets;
    t.data_allocs += c.data_allocs;
    t.data_releases += c.data_releases;
    t.payload_serializations += c.payload_serializations;
    t.serialize_cache_hits += c.serialize_cache_hits;
    t.broadcast_forwards += c.broadcast_forwards;
    t.am_batches += c.am_batches;
    t.batched_msgs += c.batched_msgs;
    t.reduce_forwards += c.reduce_forwards;
    t.reduce_combines += c.reduce_combines;
    t.intra_node_hops += c.intra_node_hops;
    t.inter_node_hops += c.inter_node_hops;
    t.steals_local += c.steals_local;
    t.steals_remote += c.steals_remote;
    t.steal_fail += c.steal_fail;
    t.device_tasks += c.device_tasks;
    t.h2d_transfers += c.h2d_transfers;
    t.h2d_bytes += c.h2d_bytes;
    t.d2h_transfers += c.d2h_transfers;
    t.d2h_bytes += c.d2h_bytes;
    t.residency_hits += c.residency_hits;
    t.residency_misses += c.residency_misses;
    t.device_evictions += c.device_evictions;
    t.charged_cpu += c.charged_cpu;
    t.server_wait += c.server_wait;
    t.server_busy += c.server_busy;
    t.rma_latency_total += c.rma_latency_total;
    t.rma_latency_max = std::max(t.rma_latency_max, c.rma_latency_max);
  }
  return t;
}

std::uint32_t Tracer::new_node(NodeRef::Kind kind, std::uint32_t index) {
  const auto id = static_cast<std::uint32_t>(nodes_.size());
  nodes_.push_back(NodeRef{kind, index});
  return id;
}

void Tracer::link_from_context(std::vector<std::uint32_t>& preds) {
  if (ctx_ != kNoNode) preds.push_back(ctx_);
}

std::uint32_t Tracer::task_created(std::string name, std::string key, int rank,
                                   int priority) {
  TaskTrace t;
  t.name = std::move(name);
  t.key = std::move(key);
  t.job = current_job();
  t.rank = rank;
  t.priority = priority;
  link_from_context(t.preds);
  t.node = new_node(NodeRef::Kind::Task, static_cast<std::uint32_t>(tasks_.size()));
  tasks_.push_back(std::move(t));
  return tasks_.back().node;
}

void Tracer::task_executed(std::uint32_t node, int worker, double start, double end) {
  TTG_CHECK(node < nodes_.size() && nodes_[node].kind == NodeRef::Kind::Task,
            "task_executed on a non-task node");
  TaskTrace& t = tasks_[nodes_[node].index];
  t.worker = worker;
  t.start = start;
  t.end = end;
  t.exec_seq = next_exec_seq_++;
  t.executed = true;
}

std::uint32_t Tracer::message_created(std::string edge, int src, int dst,
                                      std::uint64_t bytes, bool splitmd) {
  MsgTrace m;
  m.edge = std::move(edge);
  m.job = current_job();
  m.src = src;
  m.dst = dst;
  m.bytes = bytes;
  m.splitmd = splitmd;
  link_from_context(m.preds);
  m.node = new_node(NodeRef::Kind::Message, static_cast<std::uint32_t>(msgs_.size()));
  msgs_.push_back(std::move(m));
  auto& c = counters(src);
  c.msg_sends += 1;
  c.bytes_sent += bytes;
  (splitmd ? c.splitmd_sends : c.whole_object_sends) += 1;
  return msgs_.back().node;
}

void Tracer::message_sent(std::uint32_t node, double t) {
  TTG_CHECK(node < nodes_.size() && nodes_[node].kind == NodeRef::Kind::Message,
            "message_sent on a non-message node");
  msgs_[nodes_[node].index].send_time = t;
}

void Tracer::message_delivered(std::uint32_t node, double t) {
  TTG_CHECK(node < nodes_.size() && nodes_[node].kind == NodeRef::Kind::Message,
            "message_delivered on a non-message node");
  MsgTrace& m = msgs_[nodes_[node].index];
  m.recv_time = t;
  auto& c = counters(m.dst);
  c.msg_recvs += 1;
  c.bytes_received += m.bytes;
}

void Tracer::record_server(int rank, double at, double wait, double service) {
  server_.push_back(ServerTrace{rank, at, wait, service});
  auto& c = counters(rank);
  c.server_wait += wait;
  c.server_busy += service;
}

void Tracer::record_rma(int src, int dst, std::uint64_t bytes, double issued,
                        double landed) {
  rma_.push_back(RmaTrace{src, dst, bytes, issued, landed});
  auto& c = counters(dst);
  c.rma_gets += 1;
  const double lat = landed - issued;
  c.rma_latency_total += lat;
  c.rma_latency_max = std::max(c.rma_latency_max, lat);
}

void Tracer::record_wire(int src, int dst, std::uint64_t bytes, double start,
                         double end) {
  wire_.push_back(WireTrace{src, dst, bytes, start, end});
}

void Tracer::record_fault(sim::FaultKind kind, int src, int dst, std::uint64_t bytes,
                          double t) {
  faults_.push_back(FaultTrace{kind, src, dst, bytes, t});
}

void Tracer::clear() {
  ctx_ = kNoNode;
  next_exec_seq_ = 0;
  tasks_.clear();
  msgs_.clear();
  server_.clear();
  rma_.clear();
  wire_.clear();
  faults_.clear();
  nodes_.clear();
  counters_.assign(counters_.size(), CommCounters{});
}

std::map<std::string, TraceSummary> Tracer::summarize() const {
  std::map<std::string, TraceSummary> out;
  for (const auto& r : tasks_) {
    if (!r.executed) continue;
    auto& s = out[r.name];
    s.count += 1;
    const double dt = r.end - r.start;
    s.total_time += dt;
    if (dt > s.max_time) s.max_time = dt;
  }
  return out;
}

std::map<JobId, Tracer::JobTotals> Tracer::job_totals() const {
  std::map<JobId, JobTotals> out;
  for (const auto& r : tasks_) {
    if (!r.executed) continue;
    auto& j = out[r.job];
    j.tasks += 1;
    j.task_time += r.end - r.start;
  }
  for (const auto& m : msgs_) out[m.job].messages += 1;
  return out;
}

std::vector<double> Tracer::busy_per_rank(int nranks) const {
  std::vector<double> busy(static_cast<std::size_t>(nranks), 0.0);
  for (const auto& r : tasks_) {
    if (!r.executed) continue;
    busy[static_cast<std::size_t>(r.rank)] += r.end - r.start;
  }
  return busy;
}

double Tracer::utilization(int nranks, int workers_per_rank, double makespan) const {
  if (makespan <= 0.0) return 0.0;
  double busy = 0.0;
  for (const auto& r : tasks_) {
    if (r.executed) busy += r.end - r.start;
  }
  return busy / (static_cast<double>(nranks) * workers_per_rank * makespan);
}

CriticalPath Tracer::critical_path() const {
  CriticalPath out;
  const std::size_t n = nodes_.size();
  if (n == 0) return out;
  // Node ids are allocated in causal order (a predecessor always exists
  // before its successor), so a single id-order pass is a topological walk.
  std::vector<double> score(n, 0.0);
  std::vector<std::uint32_t> from(n, kNoNode);
  auto duration = [&](std::uint32_t id) -> double {
    const NodeRef& ref = nodes_[id];
    if (ref.kind == NodeRef::Kind::Task) {
      const TaskTrace& t = tasks_[ref.index];
      return t.executed ? t.end - t.start : 0.0;
    }
    const MsgTrace& m = msgs_[ref.index];
    return (m.send_time >= 0.0 && m.recv_time >= 0.0) ? m.recv_time - m.send_time : 0.0;
  };
  auto preds_of = [&](std::uint32_t id) -> const std::vector<std::uint32_t>& {
    const NodeRef& ref = nodes_[id];
    return ref.kind == NodeRef::Kind::Task ? tasks_[ref.index].preds
                                           : msgs_[ref.index].preds;
  };
  std::uint32_t best = 0;
  for (std::uint32_t id = 0; id < n; ++id) {
    double base = 0.0;
    for (std::uint32_t p : preds_of(id)) {
      if (score[p] > base) {
        base = score[p];
        from[id] = p;
      }
    }
    score[id] = base + duration(id);
    if (score[id] > score[best]) best = id;
  }
  out.length = score[best];
  for (std::uint32_t id = best; id != kNoNode; id = from[id]) {
    const NodeRef& ref = nodes_[id];
    CriticalHop hop;
    hop.duration = duration(id);
    if (ref.kind == NodeRef::Kind::Task) {
      const TaskTrace& t = tasks_[ref.index];
      hop.kind = CriticalHop::Kind::Task;
      hop.label = t.name;
      hop.key = t.key;
      hop.rank = t.rank;
      hop.start = t.start;
    } else {
      const MsgTrace& m = msgs_[ref.index];
      hop.kind = CriticalHop::Kind::Message;
      hop.label = m.edge;
      hop.rank = m.dst;
      hop.start = m.send_time;
    }
    out.hops.push_back(std::move(hop));
  }
  std::reverse(out.hops.begin(), out.hops.end());
  return out;
}

std::string Tracer::summary_table() const {
  std::string out = "template        count      total[s]     max[s]\n";
  char buf[128];
  for (const auto& [name, s] : summarize()) {
    std::snprintf(buf, sizeof buf, "%-14s %7llu  %12.6f %10.6f\n", name.c_str(),
                  static_cast<unsigned long long>(s.count), s.total_time, s.max_time);
    out += buf;
  }
  return out;
}

support::Table Tracer::breakdown_table(double makespan) const {
  support::Table t("per-rank breakdown",
                   {"rank", "tasks", "busy[s]", "idle[s]", "util%", "sends", "recvs",
                    "sent[B]", "recvd[B]", "copies", "srv wait[s]"});
  const int nr = std::max(nranks_, static_cast<int>(counters_.size()));
  std::vector<double> busy(static_cast<std::size_t>(std::max(nr, 1)), 0.0);
  std::vector<std::uint64_t> ntasks(busy.size(), 0);
  for (const auto& r : tasks_) {
    if (!r.executed) continue;
    if (r.rank >= static_cast<int>(busy.size())) continue;
    busy[static_cast<std::size_t>(r.rank)] += r.end - r.start;
    ntasks[static_cast<std::size_t>(r.rank)] += 1;
  }
  const double capacity = std::max(1, workers_per_rank_) * makespan;
  for (int r = 0; r < nr; ++r) {
    const auto& c = rank_counters(r);
    const double b = busy[static_cast<std::size_t>(r)];
    t.add_row({std::to_string(r), std::to_string(ntasks[static_cast<std::size_t>(r)]),
               support::fmt(b, 6), support::fmt(std::max(0.0, capacity - b), 6),
               support::fmt(capacity > 0 ? 100.0 * b / capacity : 0.0, 1),
               std::to_string(c.msg_sends), std::to_string(c.msg_recvs),
               std::to_string(c.bytes_sent), std::to_string(c.bytes_received),
               std::to_string(c.serialization_copies), support::fmt(c.server_wait, 6)});
  }
  return t;
}

support::Table Tracer::forwarding_table() const {
  support::Table t("collective data plane (tree broadcast + reduction + AM coalescing)",
                   {"rank", "bcast fwds", "reduce fwds", "combines", "intra hops",
                    "inter hops", "am batches", "batched msgs", "msg sends"});
  for (int r = 0; r < static_cast<int>(counters_.size()); ++r) {
    const auto& c = counters_[static_cast<std::size_t>(r)];
    if (c.broadcast_forwards == 0 && c.am_batches == 0 && c.reduce_forwards == 0 &&
        c.reduce_combines == 0) {
      continue;
    }
    t.add_row({std::to_string(r), std::to_string(c.broadcast_forwards),
               std::to_string(c.reduce_forwards), std::to_string(c.reduce_combines),
               std::to_string(c.intra_node_hops), std::to_string(c.inter_node_hops),
               std::to_string(c.am_batches), std::to_string(c.batched_msgs),
               std::to_string(c.msg_sends)});
  }
  return t;
}

support::Table Tracer::steal_table() const {
  support::Table t("work-stealing scheduler (per-core deques, steal-half)",
                   {"rank", "steals local", "steals remote", "failed scans"});
  for (int r = 0; r < static_cast<int>(counters_.size()); ++r) {
    const auto& c = counters_[static_cast<std::size_t>(r)];
    if (c.steals_local == 0 && c.steals_remote == 0 && c.steal_fail == 0) continue;
    t.add_row({std::to_string(r), std::to_string(c.steals_local),
               std::to_string(c.steals_remote), std::to_string(c.steal_fail)});
  }
  return t;
}

support::Table Tracer::device_table() const {
  support::Table t("device plane (simulated GPUs, cost-model placement)",
                   {"rank", "device tasks", "h2d", "h2d B", "d2h", "d2h B",
                    "res hits", "res misses", "evictions"});
  for (int r = 0; r < static_cast<int>(counters_.size()); ++r) {
    const auto& c = counters_[static_cast<std::size_t>(r)];
    if (c.device_tasks == 0 && c.h2d_transfers == 0 && c.residency_hits == 0 &&
        c.residency_misses == 0) {
      continue;
    }
    t.add_row({std::to_string(r), std::to_string(c.device_tasks),
               std::to_string(c.h2d_transfers), std::to_string(c.h2d_bytes),
               std::to_string(c.d2h_transfers), std::to_string(c.d2h_bytes),
               std::to_string(c.residency_hits), std::to_string(c.residency_misses),
               std::to_string(c.device_evictions)});
  }
  return t;
}

std::string Tracer::critical_path_report() const {
  const CriticalPath cp = critical_path();
  std::ostringstream os;
  os << "critical path: " << cp.hops.size() << " hops, "
     << support::fmt(cp.length * 1e6, 2) << " us\n";
  support::Table t("critical path (root first)",
                   {"#", "kind", "name", "key", "rank", "start[us]", "dur[us]"});
  for (std::size_t i = 0; i < cp.hops.size(); ++i) {
    const auto& h = cp.hops[i];
    t.add_row({std::to_string(i), h.kind == CriticalHop::Kind::Task ? "task" : "msg",
               h.label, h.key, std::to_string(h.rank), support::fmt(h.start * 1e6, 2),
               support::fmt(h.duration * 1e6, 2)});
  }
  os << t.str();
  return os.str();
}

std::string Tracer::fault_report() const {
  if (faults_.empty()) return std::string();
  struct Agg {
    std::uint64_t count = 0;
    std::uint64_t bytes = 0;
  };
  std::map<std::string, Agg> by_kind;
  for (const auto& f : faults_) {
    auto& a = by_kind[sim::to_string(f.kind)];
    a.count += 1;
    a.bytes += f.bytes;
  }
  support::Table t("fault/recovery events", {"kind", "count", "bytes"});
  for (const auto& [kind, a] : by_kind) {
    t.add_row({kind, std::to_string(a.count), std::to_string(a.bytes)});
  }
  return t.str();
}

namespace {

std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char ch : s) {
    switch (ch) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(ch) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", ch);
          out += buf;
        } else {
          out += ch;
        }
    }
  }
  return out;
}

std::string num(double v) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.3f", v);
  return buf;
}

/// Greedy interval-to-lane packing so overlapping spans land on distinct
/// Chrome-trace threads (Perfetto requires spans within a tid to nest).
class Lanes {
 public:
  int assign(double start, double end) {
    for (std::size_t i = 0; i < free_at_.size(); ++i) {
      if (free_at_[i] <= start + 1e-15) {
        free_at_[i] = end;
        return static_cast<int>(i);
      }
    }
    free_at_.push_back(end);
    return static_cast<int>(free_at_.size()) - 1;
  }
  [[nodiscard]] int count() const { return static_cast<int>(free_at_.size()); }

 private:
  std::vector<double> free_at_;
};

}  // namespace

std::string Tracer::chrome_trace_json() const {
  // Track layout, per rank process (pid == rank):
  //   tid 0..W-1      worker timelines (task spans)
  //   tid W           tasks recorded without a worker id (back-compat)
  //   tid W+1         backend message-processing thread (comm/AM server)
  //   tid W+2+lane    inbound message spans (send->recv)
  //   tid W+100+lane  RMA gets landing at this rank
  // plus a synthetic "network" process (pid == nranks) for wire occupancy.
  const int w = std::max(1, workers_per_rank_);
  int nr = std::max(1, nranks_);
  for (const auto& t : tasks_) nr = std::max(nr, t.rank + 1);
  const int net_pid = nr;
  std::ostringstream os;
  os << "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[";
  bool first = true;
  auto emit = [&](const std::string& ev) {
    if (!first) os << ",";
    first = false;
    os << "\n" << ev;
  };
  auto meta = [&](int pid, int tid, const char* what, const std::string& name) {
    emit("{\"ph\":\"M\",\"pid\":" + std::to_string(pid) + ",\"tid\":" +
         std::to_string(tid) + ",\"name\":\"" + what + "\",\"args\":{\"name\":\"" +
         json_escape(name) + "\"}}");
  };
  for (int r = 0; r < nr; ++r) {
    meta(r, 0, "process_name", "rank " + std::to_string(r));
    for (int i = 0; i < w; ++i)
      meta(r, i, "thread_name", "worker " + std::to_string(i));
    meta(r, w + 1, "thread_name", "comm server");
  }
  meta(net_pid, 0, "process_name", "network");

  // Task spans.
  for (const auto& t : tasks_) {
    if (!t.executed) continue;
    const int tid = t.worker >= 0 && t.worker < w ? t.worker : w;
    emit("{\"ph\":\"X\",\"pid\":" + std::to_string(t.rank) + ",\"tid\":" +
         std::to_string(tid) + ",\"ts\":" + num(t.start * 1e6) + ",\"dur\":" +
         num((t.end - t.start) * 1e6) + ",\"name\":\"" + json_escape(t.name) +
         "\",\"args\":{\"key\":\"" + json_escape(t.key) +
         "\",\"priority\":" + std::to_string(t.priority) + "}}");
  }
  // Server (comm/AM thread) service spans; FIFO, so they never overlap.
  for (const auto& s : server_) {
    emit("{\"ph\":\"X\",\"pid\":" + std::to_string(s.rank) + ",\"tid\":" +
         std::to_string(w + 1) + ",\"ts\":" + num((s.at + s.wait) * 1e6) +
         ",\"dur\":" + num(s.service * 1e6) +
         ",\"name\":\"serve\",\"args\":{\"wait_us\":" + num(s.wait * 1e6) + "}}");
  }
  // Inbound message spans, lane-packed per destination rank.
  {
    std::vector<Lanes> lanes(static_cast<std::size_t>(nr));
    for (const auto& m : msgs_) {
      if (m.send_time < 0.0 || m.recv_time < 0.0 || m.dst >= nr) continue;
      const int lane = lanes[static_cast<std::size_t>(m.dst)].assign(m.send_time,
                                                                     m.recv_time);
      emit("{\"ph\":\"X\",\"pid\":" + std::to_string(m.dst) + ",\"tid\":" +
           std::to_string(w + 2 + lane) + ",\"ts\":" + num(m.send_time * 1e6) +
           ",\"dur\":" + num((m.recv_time - m.send_time) * 1e6) + ",\"name\":\"" +
           json_escape((m.splitmd ? "splitmd:" : "msg:") + m.edge) +
           "\",\"args\":{\"src\":" + std::to_string(m.src) + ",\"bytes\":" +
           std::to_string(m.bytes) + "}}");
    }
    for (int r = 0; r < nr; ++r)
      for (int i = 0; i < lanes[static_cast<std::size_t>(r)].count(); ++i)
        meta(r, w + 2 + i, "thread_name", "msg in #" + std::to_string(i));
  }
  // RMA gets, lane-packed per fetching rank.
  {
    std::vector<Lanes> lanes(static_cast<std::size_t>(nr));
    for (const auto& g : rma_) {
      if (g.dst >= nr) continue;
      const int lane = lanes[static_cast<std::size_t>(g.dst)].assign(g.issued, g.landed);
      emit("{\"ph\":\"X\",\"pid\":" + std::to_string(g.dst) + ",\"tid\":" +
           std::to_string(w + 100 + lane) + ",\"ts\":" + num(g.issued * 1e6) +
           ",\"dur\":" + num(g.latency() * 1e6) +
           ",\"name\":\"rma get\",\"args\":{\"src\":" + std::to_string(g.src) +
           ",\"bytes\":" + std::to_string(g.bytes) + "}}");
    }
    for (int r = 0; r < nr; ++r)
      for (int i = 0; i < lanes[static_cast<std::size_t>(r)].count(); ++i)
        meta(r, w + 100 + i, "thread_name", "rma #" + std::to_string(i));
  }
  // Wire occupancy on the synthetic network process.
  {
    Lanes lanes;
    for (const auto& x : wire_) {
      const int lane = lanes.assign(x.start, x.end);
      emit("{\"ph\":\"X\",\"pid\":" + std::to_string(net_pid) + ",\"tid\":" +
           std::to_string(lane) + ",\"ts\":" + num(x.start * 1e6) + ",\"dur\":" +
           num((x.end - x.start) * 1e6) + ",\"name\":\"" + std::to_string(x.src) +
           "\\u2192" + std::to_string(x.dst) + "\",\"args\":{\"bytes\":" +
           std::to_string(x.bytes) + "}}");
    }
    for (int i = 0; i < lanes.count(); ++i)
      meta(net_pid, i, "thread_name", "wire #" + std::to_string(i));
  }
  // Fault/recovery instants on the network process (global scope so they
  // render as full-height markers in Perfetto).
  for (const auto& f : faults_) {
    emit("{\"ph\":\"i\",\"s\":\"p\",\"pid\":" + std::to_string(net_pid) +
         ",\"tid\":0,\"ts\":" + num(f.t * 1e6) + ",\"name\":\"" +
         json_escape(std::string(sim::to_string(f.kind))) + " " +
         std::to_string(f.src) + "\\u2192" + std::to_string(f.dst) +
         "\",\"args\":{\"bytes\":" + std::to_string(f.bytes) + "}}");
  }
  os << "\n]}\n";
  return os.str();
}

void Tracer::write_chrome_trace(const std::string& path) const {
  std::FILE* f = std::fopen(path.c_str(), "w");
  TTG_REQUIRE(f != nullptr, "cannot open trace output file: " + path);
  const std::string json = chrome_trace_json();
  const std::size_t written = std::fwrite(json.data(), 1, json.size(), f);
  std::fclose(f);
  TTG_REQUIRE(written == json.size(), "short write to trace output file: " + path);
}

}  // namespace ttg::rt
