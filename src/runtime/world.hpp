// World: one simulated distributed execution context.
//
// A World bundles the virtual cluster (engine + machine model + network),
// the per-rank schedulers, and the backend communication engine. It plays
// the role of ttg::World / the default execution context in the real TTG
// implementation: template tasks register with it, `fence()` drains all
// outstanding work (TTG's global termination detection), and the current
// rank context says on whose behalf code is presently executing (the
// simulator is SPMD over R ranks inside one OS process).
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "net/network.hpp"
#include "runtime/collective.hpp"
#include "runtime/comm.hpp"
#include "runtime/datacopy.hpp"
#include "runtime/job.hpp"
#include "runtime/scheduler.hpp"
#include "runtime/trace.hpp"
#include "sim/engine.hpp"
#include "sim/fault.hpp"
#include "sim/machine.hpp"

namespace ttg::rt {

/// Which of the two TTG backends executes this world (Section II-D).
enum class BackendKind { Parsec, Madness };

[[nodiscard]] const char* to_string(BackendKind k);

/// Device-plane task placement (DESIGN.md "Device placement & residency").
/// Off   — host-only; every checked-in baseline, bit-identical to the
///         pre-device runtime even for TTs that registered a device op.
/// Greedy — per-task cost model: run on the GPU whose queue-wait + staging
///         of non-resident inputs + launch + kernel beats the host, else
///         stay on the host.
/// Always — force every task with a device variant onto a GPU (ablation
///         arm; shows why the cost model matters).
enum class DevicePlacement { Off, Greedy, Always };

[[nodiscard]] const char* to_string(DevicePlacement p);

/// Construction parameters for a World. The ablation knobs correspond to
/// the features the paper introduced (optimized broadcast, splitmd) so the
/// benches can turn them off individually.
struct WorldConfig {
  sim::MachineModel machine = sim::hawk();
  int nranks = 1;
  int workers_per_rank = 0;  ///< 0 → machine.cores_per_node
  BackendKind backend = BackendKind::Parsec;
  // Intra-node work-stealing substrate (DESIGN.md "Intra-node scheduling").
  // Off = the historical single-queue scheduler, bit-identical to every
  // checked-in baseline. On = per-core deques with steal-half; victim draws
  // derive from `seed`, steal distances from machine.steal_latency_* and
  // machine.sockets_per_node.
  bool work_stealing = false;
  std::uint64_t seed = 1;  ///< world seed (steal victim selection)
  bool optimized_broadcast = true;  ///< group broadcast keys by destination rank
  bool enable_splitmd = true;       ///< allow the split-metadata protocol
  // Data-lifecycle CopyPolicy overrides (bench/ablation_copies): tri-state,
  // -1 = backend default, 0/1 = force off/on.
  int zero_copy_local = -1;   ///< share vs copy local const-ref sends
  int serialize_once = -1;    ///< cache a broadcast's serialized form
  // Collective-routing CollectivePolicy overrides (bench/ablation_broadcast,
  // bench/ablation_reduce): negative = backend default.
  int broadcast_tree_arity = -1;  ///< 0/1 = flat, k >= 2 = k-ary spanning tree
  double am_flush_window = -1.0;  ///< 0 = no coalescing, > 0 = window [s]
  int reduce_tree_arity = -1;     ///< 0/1 = flat, k >= 2 = k-ary reduction tree
  int collective_adaptive = -1;   ///< 0/1 = force pick_arity adaptation off/on
  // Machine topology for tree layout: consecutive ranks sharing a node are
  // packed into the same subtree before a route crosses the network.
  int ranks_per_node = 1;  ///< <= 1: every rank is its own node
  double task_overhead_override = -1.0;  ///< <0 → backend default
  double am_cpu_factor = 1.0;  ///< scales per-message CPU (Chameleon-like profile)
  sim::FaultPlan faults;       ///< fault-injection plan; default-constructed = off
  // Sharded-engine selection (DESIGN.md "Sharded discrete-event engine").
  // 0 = the serial reference engine (every checked-in baseline); >= 1 shards
  // ranks onto that many event lanes under conservative lookahead, with
  // results bit-identical to serial (tests/test_scale_equiv.cpp). Sharded
  // multi-tenant serving (JobManager) is not supported yet.
  int engine_lanes = 0;
  int engine_threads = 1;  ///< OS threads draining lanes and redistributing
                           ///< at barriers (sharded engine only)
  double engine_lookahead = -1.0;  ///< <= 0 → net_latency * min latency factor
  /// Adaptive lookahead: when a low-traffic phase leaves every pending
  /// event on a single lane (a straggler finishing a tail, gaps between
  /// serving-mode jobs), extend that lane's epoch window up to
  /// engine_window_cap lookaheads so one wide epoch replaces many barrier
  /// crossings. Bit-identical to the conservative window for any workload;
  /// off by default so the conservative path stays the reference.
  bool engine_adaptive_lookahead = false;
  /// Cap on adaptive windows, in lookahead units past the epoch start
  /// (bounds per-epoch deferred-buffer growth). Ignored unless adaptive.
  double engine_window_cap = 64.0;
  // Heterogeneous device plane (DESIGN.md "Device placement & residency").
  // Off = host-only, bit-identical to the pre-device runtime; Greedy/Always
  // enable machine.gpus_per_node simulated GPUs per rank with cost-model /
  // forced placement of TT device variants.
  DevicePlacement device = DevicePlacement::Off;
};

/// Type-erased base of every template task, for registration and
/// quiescence checking.
class TTBase {
 public:
  virtual ~TTBase() = default;
  [[nodiscard]] virtual const std::string& name() const = 0;
  /// Task records created but not yet fired (on any rank). Nonzero after a
  /// drained fence indicates an incomplete graph (missing messages).
  [[nodiscard]] virtual std::size_t pending_records() const = 0;
  /// Number of task bodies executed (all ranks).
  [[nodiscard]] virtual std::uint64_t tasks_executed() const = 0;

  /// Times a structure-affecting setter (keymap/priomap/costmap/reducer)
  /// has been called. The GraphCache stores this at release and refuses to
  /// reuse an instance mutated since (stale-entry eviction).
  [[nodiscard]] std::uint64_t mutations() const { return mutations_; }
  void note_mutation() { ++mutations_; }

  bool executable = false;  ///< set by make_graph_executable

 protected:
  std::uint64_t mutations_ = 0;
};

class World {
 public:
  explicit World(WorldConfig cfg);
  World(const World&) = delete;
  World& operator=(const World&) = delete;
  ~World();

  [[nodiscard]] sim::Engine& engine() { return engine_; }
  [[nodiscard]] net::Network& network() { return *network_; }
  [[nodiscard]] const sim::MachineModel& machine() const { return cfg_.machine; }
  [[nodiscard]] const WorldConfig& config() const { return cfg_; }
  [[nodiscard]] CommEngine& comm() { return *comm_; }
  /// Machine topology used for tree layout (collective::build_tree).
  [[nodiscard]] collective::Topology topology() const {
    return collective::Topology{cfg_.ranks_per_node > 1 ? cfg_.ranks_per_node : 1};
  }
  [[nodiscard]] int nranks() const { return cfg_.nranks; }
  [[nodiscard]] int workers_per_rank() const { return workers_; }

  /// Rank on whose behalf code is currently executing.
  [[nodiscard]] int rank() const { return current_rank_; }

  /// Execute `fn` in the context of rank `r` (restores on exit). On a
  /// sharded engine this also sets the ambient event lane to r's lane, so
  /// engine pushes made by `fn` (task completions, send charges) land on the
  /// lane that owns the rank without per-call plumbing.
  template <typename F>
  void run_as(int r, F&& fn) {
    TTG_CHECK(r >= 0 && r < nranks(), "rank out of range");
    sim::Engine::LaneScope lane(engine_, engine_.lane_of(r));
    const int saved = current_rank_;
    current_rank_ = r;
    fn();
    current_rank_ = saved;
  }

  /// Serving-mode job on whose behalf code is currently executing
  /// (kDefaultJob outside multi-tenant runs). CommEngine, DataTracker, and
  /// Tracer all read this through their job-source pointer, so everything a
  /// task does — sends, DataCopy allocations, trace nodes — is attributed
  /// to its job without any per-call plumbing.
  [[nodiscard]] JobId current_job() const { return current_job_; }

  /// Execute `fn` in the context of job `j` (restores on exit). Deferred
  /// engine callbacks capture the job at issue time and re-enter it here.
  template <typename F>
  void run_as_job(JobId j, F&& fn) {
    const JobId saved = current_job_;
    current_job_ = j;
    fn();
    current_job_ = saved;
  }

  /// Multi-tenant job admission/lifecycle (lazily created; owns the
  /// graph-instantiation cache).
  [[nodiscard]] JobManager& jobs();

  [[nodiscard]] Scheduler& scheduler(int r) { return *sched_[static_cast<std::size_t>(r)]; }
  [[nodiscard]] Scheduler& scheduler() { return scheduler(current_rank_); }

  /// Drain all outstanding events (tasks, messages); global termination
  /// detection. Returns the virtual time reached — across the whole run,
  /// i.e. the cumulative makespan after several fences. Once drained, the
  /// data-lifecycle layer is audited: every DataCopy refcount must be back
  /// to zero (throws support::ApiError on a leak).
  sim::Time fence();

  /// Per-rank data-lifecycle accounting (always on).
  [[nodiscard]] DataTracker& data_tracker() { return data_; }
  [[nodiscard]] const DataTracker& data_tracker() const { return data_; }

  /// Sum of pending task records across all registered template tasks.
  [[nodiscard]] std::size_t unfinished() const;

  void register_tt(TTBase* tt);
  void deregister_tt(TTBase* tt);

  /// Flop accounting for GFLOP/s reporting in benches.
  void add_flops(double f) { flops_ += f; }
  [[nodiscard]] double total_flops() const { return flops_; }

  /// Turn on per-task execution tracing (PaRSEC-style profiling). Call
  /// before injecting work; records accumulate across fences.
  void enable_tracing();
  [[nodiscard]] bool tracing() const { return tracer_ != nullptr; }
  /// The trace (valid only after enable_tracing()).
  [[nodiscard]] Tracer& tracer() {
    TTG_CHECK(tracer_ != nullptr, "tracing not enabled");
    return *tracer_;
  }

  /// Aggregate busy time across all workers of all ranks.
  [[nodiscard]] double total_busy_time() const;

 private:
  WorldConfig cfg_;
  int workers_;
  // data_ and tracer_ are declared before engine_ on purpose: closures still
  // queued in the engine at destruction can own DataCopy blocks, and a
  // block's destructor reports into both.
  DataTracker data_;
  std::unique_ptr<Tracer> tracer_;
  sim::Engine engine_;
  std::unique_ptr<net::Network> network_;
  std::unique_ptr<CommEngine> comm_;
  std::vector<std::unique_ptr<Scheduler>> sched_;
  std::vector<TTBase*> tts_;
  std::unique_ptr<JobManager> jobs_;
  int current_rank_ = 0;
  JobId current_job_ = kDefaultJob;
  double flops_ = 0.0;
};

/// Validate a template task for execution (all worlds' TTs must be marked
/// executable before fence(), mirroring ttg::make_graph_executable).
void make_graph_executable(TTBase& tt);

}  // namespace ttg::rt
