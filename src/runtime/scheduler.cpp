#include "runtime/scheduler.hpp"

namespace ttg::rt {

Scheduler::Scheduler(sim::Engine& engine, int rank, int workers)
    : engine_(engine), rank_(rank), workers_(workers), idle_(workers) {
  TTG_CHECK(workers > 0, "scheduler needs at least one worker");
}

void Scheduler::submit(int priority, double cost, std::function<void()> body) {
  submit(priority, cost, std::string(), std::move(body));
}

void Scheduler::submit(int priority, double cost, std::string name,
                       std::function<void()> body) {
  TTG_CHECK(cost >= 0.0, "negative task cost");
  Ready task{priority, next_seq_++, cost, std::move(body), std::move(name)};
  if (idle_ > 0) {
    --idle_;
    start(std::move(task));
  } else {
    queue_.push(std::move(task));
  }
}

double Scheduler::charge(double dt) {
  TTG_CHECK(dt >= 0.0, "negative charge");
  if (!in_task_) return 0.0;  // charges outside a task (graph injection) are free
  *charge_accum_ += dt;
  return *charge_accum_;
}

void Scheduler::start(Ready task) {
  const double t_start = engine_.now();
  // The body runs at the task's completion instant (see header comment).
  engine_.after(task.cost, [this, t_start, task = std::move(task)]() mutable {
    double extra = 0.0;
    in_task_ = true;
    charge_accum_ = &extra;
    task.body();
    in_task_ = false;
    charge_accum_ = nullptr;
    busy_ += task.cost + extra;
    ++tasks_run_;
    if (tracer_ != nullptr && !task.name.empty()) {
      tracer_->record(std::move(task.name), rank_, task.priority, t_start,
                      engine_.now() + extra);
    }
    // The worker stays busy for `extra` more seconds (post-body copies),
    // then picks up the next ready task.
    engine_.after(extra, [this]() {
      if (!queue_.empty()) {
        Ready next = std::move(const_cast<Ready&>(queue_.top()));
        queue_.pop();
        start(std::move(next));
      } else {
        ++idle_;
      }
    });
  });
}

}  // namespace ttg::rt
