#include "runtime/scheduler.hpp"

#include <algorithm>
#include <limits>
#include <string>

#include "runtime/datacopy.hpp"
#include "support/rng.hpp"

namespace ttg::rt {

Scheduler::Scheduler(sim::Engine& engine, int rank, int workers)
    : engine_(engine), rank_(rank), workers_(workers) {
  TTG_CHECK(workers > 0, "scheduler needs at least one worker");
  // LIFO free list seeded so the first task lands on worker 0.
  idle_workers_.reserve(static_cast<std::size_t>(workers));
  for (int w = workers - 1; w >= 0; --w) idle_workers_.push_back(w);
  core_busy_.assign(static_cast<std::size_t>(workers), 0.0);
}

void Scheduler::submit(int priority, double cost, std::function<void()> body) {
  submit_node(kDefaultJob, priority, cost, Tracer::kNoNode, std::move(body));
}

void Scheduler::submit(int priority, double cost, std::string name,
                       std::function<void()> body) {
  submit(priority, cost, std::move(name), std::string(), std::move(body));
}

void Scheduler::submit(int priority, double cost, std::string name, std::string key,
                       std::function<void()> body) {
  submit(kDefaultJob, priority, cost, std::move(name), std::move(key),
         std::move(body));
}

void Scheduler::submit(JobId job, int priority, double cost,
                       std::function<void()> body) {
  submit_node(job, priority, cost, Tracer::kNoNode, std::move(body));
}

void Scheduler::submit(JobId job, int priority, double cost, std::string name,
                       std::string key, std::function<void()> body) {
  const std::uint32_t node =
      tracer_ != nullptr
          ? tracer_->task_created(std::move(name), std::move(key), rank_, priority)
          : Tracer::kNoNode;
  submit_node(job, priority, cost, node, std::move(body));
}

void Scheduler::configure_job(JobId job, int weight, int inflight_cap) {
  TTG_CHECK(weight >= 1, "job weight must be >= 1");
  TTG_CHECK(inflight_cap >= 0, "negative in-flight cap");
  JobQueue& jq = queues_[job];
  jq.weight = weight;
  jq.cap = inflight_cap;
  dispatch_idle();  // a raised cap can make queued tasks eligible
}

void Scheduler::configure_steal(const StealConfig& cfg) {
  TTG_CHECK(next_seq_ == 0, "configure_steal after tasks were submitted");
  TTG_CHECK(cfg.sockets >= 1, "need at least one socket");
  steal_ = cfg;
  deques_.clear();
  if (steal_.enabled) deques_.resize(static_cast<std::size_t>(workers_));
}

void Scheduler::configure_device(const DeviceConfig& cfg) {
  TTG_CHECK(next_seq_ == 0, "configure_device after tasks were submitted");
  device_ = cfg;
  gpu_lanes_.clear();
  gpu_resident_.clear();
  gpu_resident_bytes_.clear();
  if (!device_.enabled) return;
  TTG_CHECK(device_.gpus >= 1, "device plane needs at least one GPU");
  TTG_CHECK(device_.stage_bw > 0.0, "staging bandwidth must be positive");
  gpu_lanes_.reserve(static_cast<std::size_t>(device_.gpus));
  for (int g = 0; g < device_.gpus; ++g) {
    gpu_lanes_.push_back(std::make_unique<sim::FifoResource>(
        engine_, "gpu" + std::to_string(rank_) + "." + std::to_string(g)));
  }
  gpu_resident_.resize(static_cast<std::size_t>(device_.gpus));
  gpu_resident_bytes_.assign(static_cast<std::size_t>(device_.gpus), 0);
}

double Scheduler::device_busy() const {
  double t = 0.0;
  for (const auto& lane : gpu_lanes_) t += lane->busy_time();
  return t;
}

std::uint64_t Scheduler::device_resident_bytes() const {
  std::uint64_t n = 0;
  for (const std::uint64_t b : gpu_resident_bytes_) n += b;
  return n;
}

int Scheduler::socket_of(int worker) const {
  const int sockets = std::max(1, steal_.sockets);
  const int per = std::max(1, (workers_ + sockets - 1) / sockets);
  return std::min(worker / per, sockets - 1);
}

const Scheduler::JobCounters& Scheduler::job_counters(JobId job) const {
  static const JobCounters kZero{};
  const auto it = queues_.find(job);
  return it != queues_.end() ? it->second.counters : kZero;
}

std::size_t Scheduler::queued() const {
  std::size_t n = 0;
  for (const auto& [job, jq] : queues_) n += jq.heap.size();
  for (const auto& d : deques_) n += d.size();
  return n;
}

void Scheduler::set_compute_factor(double f) {
  TTG_CHECK(f > 0.0, "compute factor must be positive");
  compute_factor_ = f;
}

void Scheduler::submit_node(JobId job, int priority, double cost,
                            std::uint32_t trace_node, std::function<void()> body) {
  TTG_CHECK(cost >= 0.0, "negative task cost");
  JobQueue& jq = queues_[job];
  jq.counters.submitted += 1;
  Ready task{job,  priority, next_seq_++, cost * compute_factor_, std::move(body),
             trace_node};
  if (!idle_workers_.empty() && (jq.cap == 0 || jq.counters.inflight < jq.cap)) {
    const int worker = idle_workers_.back();
    idle_workers_.pop_back();
    start(std::move(task), worker);
  } else if (steal_.enabled && jq.cap == 0) {
    // Deque substrate: a task made ready inside a body stays with its
    // producing core; outside-body submissions spread round-robin. Capped
    // jobs never enter a deque (cap accounting stays on the heap path).
    const int w = current_worker_ >= 0 ? current_worker_ : rr_cursor_;
    if (current_worker_ < 0) rr_cursor_ = (rr_cursor_ + 1) % workers_;
    deques_[static_cast<std::size_t>(w)].push_back(std::move(task));
  } else {
    jq.heap.push(std::move(task));
  }
}

void Scheduler::submit_device(JobId job, int priority, double host_cost,
                              DeviceCall dev, std::function<void()> body) {
  submit_device_node(job, priority, host_cost, std::move(dev), Tracer::kNoNode,
                     std::move(body));
}

void Scheduler::submit_device(JobId job, int priority, double host_cost,
                              DeviceCall dev, std::string name, std::string key,
                              std::function<void()> body) {
  const std::uint32_t node =
      tracer_ != nullptr
          ? tracer_->task_created(std::move(name), std::move(key), rank_, priority)
          : Tracer::kNoNode;
  submit_device_node(job, priority, host_cost, std::move(dev), node, std::move(body));
}

void Scheduler::submit_device_node(JobId job, int priority, double host_cost,
                                   DeviceCall dev, std::uint32_t trace_node,
                                   std::function<void()> body) {
  if (!device_.enabled) {
    // Off state: exactly the host submit path (bit-identical baselines).
    submit_node(job, priority, host_cost, trace_node, std::move(body));
    return;
  }
  TTG_CHECK(host_cost >= 0.0 && dev.cost >= 0.0, "negative task cost");
  // Greedy placement: for each GPU estimate queue wait + staging of
  // non-resident inputs + launch + kernel, take the best, and compare it to
  // the host-side cost. The estimate deliberately ignores eviction
  // writebacks (committed only on the chosen GPU by stage_datums) — an
  // optimistic, deterministic tie-break.
  const double now = engine_.now();
  int best = 0;
  double best_finish = std::numeric_limits<double>::infinity();
  for (int g = 0; g < device_.gpus; ++g) {
    const auto& res = gpu_resident_[static_cast<std::size_t>(g)];
    double staging = 0.0;
    for (const auto& d : dev.datums) {
      if (res.find({job, d.tag}) == res.end()) {
        staging +=
            device_.stage_latency + static_cast<double>(d.bytes) / device_.stage_bw;
      }
    }
    const double wait =
        std::max(0.0, gpu_lanes_[static_cast<std::size_t>(g)]->free_at() - now);
    const double finish = wait + staging + device_.launch_overhead + dev.cost;
    if (finish < best_finish) {
      best_finish = finish;
      best = g;
    }
  }
  if (!device_.always && host_cost * compute_factor_ <= best_finish) {
    device_stats_.host_tasks += 1;
    submit_node(job, priority, host_cost, trace_node, std::move(body));
    return;
  }
  const double staging = stage_datums(job, best, dev);
  const double service = staging + device_.launch_overhead + dev.cost;
  device_stats_.device_tasks += 1;
  if (tracer_ != nullptr) tracer_->record_device_task(rank_);
  queues_[job].counters.submitted += 1;
  Ready task{job, priority, next_seq_++, service, std::move(body), trace_node};
  start_device(std::move(task), best, service);
}

double Scheduler::stage_datums(JobId job, int gpu, const DeviceCall& dev) {
  auto& res = gpu_resident_[static_cast<std::size_t>(gpu)];
  auto& used = gpu_resident_bytes_[static_cast<std::size_t>(gpu)];
  double staging = 0.0;
  ++device_clock_;  // all datums of one dispatch share the LRU stamp
  for (const auto& d : dev.datums) {
    const std::pair<JobId, std::uint64_t> key{job, d.tag};
    auto it = res.find(key);
    if (it != res.end()) {
      // Already resident: the owner-computes reuse the cost model exists
      // to exploit — no transfer, just an LRU touch.
      device_stats_.residency_hits += 1;
      it->second.last_use = device_clock_;
      it->second.dirty = it->second.dirty || d.write;
      if (data_tracker_ != nullptr) data_tracker_->on_device_hit(rank_);
      if (tracer_ != nullptr) tracer_->record_residency(rank_, true);
      continue;
    }
    device_stats_.residency_misses += 1;
    if (tracer_ != nullptr) tracer_->record_residency(rank_, false);
    // HBM pressure: evict least-recently-used residents not touched by this
    // dispatch; dirty victims pay the D2H writeback before the slot frees.
    if (device_.hbm_bytes > 0) {
      while (used + d.bytes > device_.hbm_bytes && !res.empty()) {
        auto victim = res.end();
        for (auto jt = res.begin(); jt != res.end(); ++jt) {
          if (jt->second.last_use == device_clock_) continue;  // pinned now
          if (victim == res.end() ||
              jt->second.last_use < victim->second.last_use) {
            victim = jt;
          }
        }
        if (victim == res.end()) break;  // everything pinned by this dispatch
        device_stats_.evictions += 1;
        if (victim->second.dirty) {
          device_stats_.d2h_transfers += 1;
          device_stats_.d2h_bytes += victim->second.bytes;
          staging += device_.stage_latency +
                     static_cast<double>(victim->second.bytes) / device_.stage_bw;
          if (tracer_ != nullptr) tracer_->record_d2h(rank_, victim->second.bytes);
        }
        if (tracer_ != nullptr) tracer_->record_eviction(rank_);
        if (data_tracker_ != nullptr) {
          data_tracker_->on_device_evict(rank_, victim->second.bytes,
                                         victim->second.dirty);
        }
        used -= victim->second.bytes;
        res.erase(victim);
      }
    }
    device_stats_.h2d_transfers += 1;
    device_stats_.h2d_bytes += d.bytes;
    staging +=
        device_.stage_latency + static_cast<double>(d.bytes) / device_.stage_bw;
    if (tracer_ != nullptr) tracer_->record_h2d(rank_, d.bytes);
    if (data_tracker_ != nullptr) data_tracker_->on_stage_h2d(rank_, d.bytes);
    res.emplace(key, Resident{d.bytes, device_clock_, d.write});
    used += d.bytes;
  }
  return staging;
}

void Scheduler::start_device(Ready task, int gpu, double service) {
  const double t_start = engine_.now();
  {
    JobCounters& jc = queues_[task.job].counters;
    jc.inflight += 1;
    jc.max_inflight = std::max(jc.max_inflight, jc.inflight);
  }
  // The lane is a FIFO resource: the kernel queues behind earlier dispatches
  // to the same GPU, and — like the host path — the body runs at the task's
  // virtual completion instant.
  gpu_lanes_[static_cast<std::size_t>(gpu)]->submit(
      service, [this, t_start, gpu, task = std::move(task)]() mutable {
        double extra = 0.0;
        in_task_ = true;
        current_worker_ = -1;  // no host core is occupied by a device body
        charge_accum_ = &extra;
        const bool traced = tracer_ != nullptr && task.trace_node != Tracer::kNoNode;
        if (traced) tracer_->set_context(task.trace_node);
        task.body();
        if (traced) tracer_->clear_context();
        in_task_ = false;
        charge_accum_ = nullptr;
        ++tasks_run_;
        JobCounters& jc = queues_[task.job].counters;
        jc.tasks_run += 1;
        jc.inflight -= 1;
        if (traced) {
          // Device spans render on per-GPU tracks placed after the host
          // cores; `extra` is the host-side send CPU charged by the body.
          tracer_->task_executed(task.trace_node, workers_ + gpu, t_start,
                                 engine_.now() + extra);
        }
        // Freed in-flight credit can make a capped job's queued host tasks
        // eligible for idle workers.
        dispatch_idle();
      });
}

double Scheduler::charge(double dt) {
  TTG_CHECK(dt >= 0.0, "negative charge");
  if (!in_task_) return 0.0;  // charges outside a task (graph injection) are free
  dt *= compute_factor_;  // stragglers serialize slower, too
  *charge_accum_ += dt;
  if (tracer_ != nullptr) tracer_->add_charged_cpu(rank_, dt);
  return *charge_accum_;
}

Scheduler::Ready Scheduler::pop_top(JobQueue& jq) {
  Ready next = std::move(const_cast<Ready&>(jq.heap.top()));
  jq.heap.pop();
  return next;
}

bool Scheduler::pop_next(Ready& out) {
  if (fairness_ == FairnessMode::WeightedRR) {
    // Round-robin rounds: visit jobs in ascending id; a job spends one
    // credit per dispatched task and starts each round with its weight.
    for (int pass = 0; pass < 2; ++pass) {
      for (auto& [job, jq] : queues_) {
        if (!eligible(jq) || jq.credits <= 0) continue;
        --jq.credits;
        out = pop_top(jq);
        return true;
      }
      // No eligible job holds credits: open a new round.
      bool any = false;
      for (auto& [job, jq] : queues_) {
        if (!eligible(jq)) continue;
        jq.credits = jq.weight;
        any = true;
      }
      if (!any) return false;
    }
    return false;
  }
  // Strict: the globally best eligible head, ordered by (priority desc,
  // job id asc, enqueue seq asc) — explicitly, never by container accident.
  JobQueue* best = nullptr;
  for (auto& [job, jq] : queues_) {
    if (!eligible(jq)) continue;
    if (best == nullptr || head_before(jq.heap.top(), best->heap.top())) best = &jq;
  }
  if (best == nullptr) return false;
  out = pop_top(*best);
  return true;
}

void Scheduler::dispatch_idle() {
  while (!idle_workers_.empty()) {
    Ready next;
    if (!pop_next(next)) return;
    const int worker = idle_workers_.back();
    idle_workers_.pop_back();
    start(std::move(next), worker);
  }
}

void Scheduler::release_worker(int worker, JobId job) {
  queues_[job].counters.inflight -= 1;
  if (steal_.enabled) {
    // Own deque first (LIFO: depth-first along this core's continuation),
    // then the per-job overflow heaps (fairness policy applied), then a
    // steal scan across the other cores' deques.
    auto& own = deques_[static_cast<std::size_t>(worker)];
    if (!own.empty()) {
      Ready next = std::move(own.back());
      own.pop_back();
      start(std::move(next), worker);
      return;
    }
    Ready next;
    if (pop_next(next)) {
      start(std::move(next), worker);
      return;
    }
    try_steal(worker);
    return;
  }
  Ready next;
  if (pop_next(next)) {
    start(std::move(next), worker);
  } else {
    idle_workers_.push_back(worker);
  }
}

void Scheduler::try_steal(int worker) {
  // Victim order is a pure function of (seed, rank, attempt ordinal):
  // seeded circular scan over same-socket victims first, then cross-socket
  // — two runs of the same workload steal identically.
  const std::uint64_t draw = support::splitmix64(
      steal_.seed ^ (static_cast<std::uint64_t>(rank_) * 0x9e3779b97f4a7c15ull) ^
      (steal_attempts_ * 0xd1b54a32d192ed03ull));
  ++steal_attempts_;
  const int start_at = static_cast<int>(draw % static_cast<std::uint64_t>(workers_));
  const int my_socket = socket_of(worker);
  for (const bool want_local : {true, false}) {
    for (int k = 0; k < workers_; ++k) {
      const int victim = (start_at + k) % workers_;
      if (victim == worker) continue;
      const bool local = socket_of(victim) == my_socket;
      if (local != want_local) continue;
      auto& vd = deques_[static_cast<std::size_t>(victim)];
      if (vd.empty()) continue;
      // Steal-half: take the oldest half of the victim's deque (its FIFO
      // end — the tasks the owner would reach last), run the first stolen
      // task after the steal distance, keep the rest in age order.
      const std::size_t take = (vd.size() + 1) / 2;
      auto& own = deques_[static_cast<std::size_t>(worker)];
      Ready first = std::move(vd.front());
      vd.pop_front();
      for (std::size_t i = 1; i < take; ++i) {
        own.push_back(std::move(vd.front()));
        vd.pop_front();
      }
      (local ? steal_stats_.steals_local : steal_stats_.steals_remote) += 1;
      steal_stats_.tasks_stolen += static_cast<std::uint64_t>(take);
      if (tracer_ != nullptr) tracer_->record_steal(rank_, local);
      // The thief's core is busy bouncing deque cache lines for the steal
      // distance before the stolen task can start.
      const double dt =
          (local ? steal_.latency_local : steal_.latency_remote) * compute_factor_;
      busy_ += dt;
      core_busy_[static_cast<std::size_t>(worker)] += dt;
      engine_.after(dt, [this, worker, first = std::move(first)]() mutable {
        start(std::move(first), worker);
      });
      return;
    }
  }
  steal_stats_.steal_fail += 1;
  if (tracer_ != nullptr) tracer_->record_steal_fail(rank_);
  idle_workers_.push_back(worker);
}

void Scheduler::start(Ready task, int worker) {
  const double t_start = engine_.now();
  {
    JobCounters& jc = queues_[task.job].counters;
    jc.inflight += 1;
    jc.max_inflight = std::max(jc.max_inflight, jc.inflight);
  }
  // The body runs at the task's completion instant (see header comment).
  engine_.after(task.cost, [this, t_start, worker, task = std::move(task)]() mutable {
    double extra = 0.0;
    in_task_ = true;
    current_worker_ = worker;
    charge_accum_ = &extra;
    const bool traced = tracer_ != nullptr && task.trace_node != Tracer::kNoNode;
    if (traced) tracer_->set_context(task.trace_node);
    task.body();
    if (traced) tracer_->clear_context();
    in_task_ = false;
    current_worker_ = -1;
    charge_accum_ = nullptr;
    busy_ += task.cost + extra;
    core_busy_[static_cast<std::size_t>(worker)] += task.cost + extra;
    ++tasks_run_;
    queues_[task.job].counters.tasks_run += 1;
    if (traced) {
      tracer_->task_executed(task.trace_node, worker, t_start, engine_.now() + extra);
    }
    // The worker stays busy for `extra` more seconds (post-body copies),
    // then picks up the next ready task.
    engine_.after(extra, [this, worker, job = task.job]() {
      release_worker(worker, job);
    });
  });
}

}  // namespace ttg::rt
