#include "runtime/scheduler.hpp"

namespace ttg::rt {

Scheduler::Scheduler(sim::Engine& engine, int rank, int workers)
    : engine_(engine), rank_(rank), workers_(workers) {
  TTG_CHECK(workers > 0, "scheduler needs at least one worker");
  // LIFO free list seeded so the first task lands on worker 0.
  idle_workers_.reserve(static_cast<std::size_t>(workers));
  for (int w = workers - 1; w >= 0; --w) idle_workers_.push_back(w);
}

void Scheduler::submit(int priority, double cost, std::function<void()> body) {
  submit_node(priority, cost, Tracer::kNoNode, std::move(body));
}

void Scheduler::submit(int priority, double cost, std::string name,
                       std::function<void()> body) {
  submit(priority, cost, std::move(name), std::string(), std::move(body));
}

void Scheduler::submit(int priority, double cost, std::string name, std::string key,
                       std::function<void()> body) {
  const std::uint32_t node =
      tracer_ != nullptr
          ? tracer_->task_created(std::move(name), std::move(key), rank_, priority)
          : Tracer::kNoNode;
  submit_node(priority, cost, node, std::move(body));
}

void Scheduler::set_compute_factor(double f) {
  TTG_CHECK(f > 0.0, "compute factor must be positive");
  compute_factor_ = f;
}

void Scheduler::submit_node(int priority, double cost, std::uint32_t trace_node,
                            std::function<void()> body) {
  TTG_CHECK(cost >= 0.0, "negative task cost");
  Ready task{priority, next_seq_++, cost * compute_factor_, std::move(body), trace_node};
  if (!idle_workers_.empty()) {
    const int worker = idle_workers_.back();
    idle_workers_.pop_back();
    start(std::move(task), worker);
  } else {
    queue_.push(std::move(task));
  }
}

double Scheduler::charge(double dt) {
  TTG_CHECK(dt >= 0.0, "negative charge");
  if (!in_task_) return 0.0;  // charges outside a task (graph injection) are free
  dt *= compute_factor_;  // stragglers serialize slower, too
  *charge_accum_ += dt;
  if (tracer_ != nullptr) tracer_->add_charged_cpu(rank_, dt);
  return *charge_accum_;
}

void Scheduler::start(Ready task, int worker) {
  const double t_start = engine_.now();
  // The body runs at the task's completion instant (see header comment).
  engine_.after(task.cost, [this, t_start, worker, task = std::move(task)]() mutable {
    double extra = 0.0;
    in_task_ = true;
    charge_accum_ = &extra;
    const bool traced = tracer_ != nullptr && task.trace_node != Tracer::kNoNode;
    if (traced) tracer_->set_context(task.trace_node);
    task.body();
    if (traced) tracer_->clear_context();
    in_task_ = false;
    charge_accum_ = nullptr;
    busy_ += task.cost + extra;
    ++tasks_run_;
    if (traced) {
      tracer_->task_executed(task.trace_node, worker, t_start, engine_.now() + extra);
    }
    // The worker stays busy for `extra` more seconds (post-body copies),
    // then picks up the next ready task.
    engine_.after(extra, [this, worker]() {
      if (!queue_.empty()) {
        Ready next = std::move(const_cast<Ready&>(queue_.top()));
        queue_.pop();
        start(std::move(next), worker);
      } else {
        idle_workers_.push_back(worker);
      }
    });
  });
}

}  // namespace ttg::rt
