// Bulk-synchronous-parallel executor for the comparator implementations.
//
// The paper compares TTG against libraries we cannot link (ScaLAPACK, SLATE,
// the MPI+OpenMP recursive FW code, DBCSR). Their distinguishing property —
// the reason the paper's figures show two separated groups — is their
// *synchronization structure*: compute phases separated by collective
// communication and barriers, with no inter-iteration lookahead. We model
// them faithfully at that level: per-rank virtual clocks advanced by real
// per-phase kernel costs (list-scheduled on the node's cores), binomial-tree
// collectives charged with the same latency/bandwidth/bisection parameters
// the event-driven network uses, and barriers that synchronize all clocks.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "sim/machine.hpp"

namespace ttg::rt {

/// Analytic BSP machine over per-rank clocks.
class BspExecutor {
 public:
  BspExecutor(const sim::MachineModel& machine, int nranks, int workers_per_rank = 0);

  [[nodiscard]] int nranks() const { return static_cast<int>(clock_.size()); }
  [[nodiscard]] int workers() const { return workers_; }
  [[nodiscard]] const sim::MachineModel& machine() const { return machine_; }

  /// Advance rank r's clock by `seconds` of local compute.
  void compute(int rank, double seconds);

  /// Every rank computes its entry of `seconds_per_rank`, then a barrier.
  void compute_phase(const std::vector<double>& seconds_per_rank);

  /// Greedy list-scheduling makespan of `task_seconds` on `workers` cores —
  /// the fork-join node-level model (OpenMP tasks / threaded BLAS).
  [[nodiscard]] static double list_schedule(const std::vector<double>& task_seconds,
                                            int workers);

  /// Point-to-point message src -> dst (advances both clocks appropriately).
  void p2p(int src, int dst, std::size_t bytes);

  /// Binomial-tree broadcast of `bytes` from `root` to `group` (all ranks if
  /// empty). All group clocks meet at start_max + ceil(log2 |group|) hops.
  void broadcast(int root, std::size_t bytes, const std::vector<int>& group = {});

  /// Binomial-tree reduction to `root` over `group`.
  void reduce(int root, std::size_t bytes, const std::vector<int>& group = {});

  /// Tree allreduce over all ranks.
  void allreduce(std::size_t bytes);

  /// Synchronize all clocks to the max (MPI_Barrier + its latency cost).
  void barrier();

  /// Extra time floor when `total_cross_bytes` must cross the bisection in
  /// one phase (used by SUMMA-style exchanges where every rank communicates
  /// simultaneously).
  [[nodiscard]] double fabric_time(std::uint64_t total_cross_bytes) const;

  [[nodiscard]] double now() const;           ///< max over rank clocks
  [[nodiscard]] double clock(int rank) const { return clock_[static_cast<std::size_t>(rank)]; }
  [[nodiscard]] std::uint64_t bytes_sent() const { return bytes_; }
  [[nodiscard]] std::uint64_t messages() const { return messages_; }

  /// One-hop message time: latency + bytes at injection bandwidth.
  [[nodiscard]] double msg_time(std::size_t bytes) const;

 private:
  sim::MachineModel machine_;
  int workers_;
  std::vector<double> clock_;
  std::uint64_t bytes_ = 0;
  std::uint64_t messages_ = 0;
};

}  // namespace ttg::rt
