// First-class data-lifecycle layer: refcounted payload handles + accounting.
//
// The paper's central PaRSEC-backend advantage is runtime-owned data
// (Section II-D): a payload flowing through the task graph is tracked by the
// runtime with reference counting, so local consumers share it zero-copy and
// a broadcast serializes it once no matter how many destination ranks it
// reaches. MADNESS, by contrast, copies whole objects per send. Instead of
// modelling that difference with ad-hoc charge() calls scattered through the
// terminals and comm engines, this layer makes it first class:
//
//   * DataCopy<V>  — a refcounted, immutable payload handle owning the value,
//                    its declared wire size, and a lazily built serialized-
//                    buffer cache (serialize once, reuse for every destination
//                    rank and for retransmissions). Which copies are actually
//                    paid is decided by the owning CommEngine's CopyPolicy,
//                    declared in one place per backend (comm.hpp).
//   * DataTracker  — always-on per-rank accounting of handle allocations,
//                    releases, live bytes (with high watermark), serialization
//                    passes vs. cache hits, and task-private input copies.
//                    World::fence() asks it to verify that every refcount
//                    returned to zero (leak check); --trace-summary renders
//                    its per-rank memory table.
//
// The handle is host-side bookkeeping: creating or sharing one costs no
// virtual time by itself. Virtual CPU charges stay where they were (terminal
// send paths), but are now derived from the policy + cache state instead of
// being hard-coded per call site.
#pragma once

#include <cstddef>
#include <cstdint>
#include <map>
#include <memory>
#include <utility>
#include <vector>

#include "runtime/comm.hpp"
#include "runtime/trace.hpp"
#include "serialization/archive.hpp"
#include "serialization/traits.hpp"
#include "support/error.hpp"

namespace ttg::support {
class Table;
}

namespace ttg::rt {

namespace detail {
/// Accounted size of a payload: the declared wire size when available
/// (ghost Tile-like types), else the static size of the value.
template <typename V>
std::size_t payload_bytes(const V& v) {
  if constexpr (ser::detail::HasWireBytes<V>) {
    return v.wire_bytes();
  } else {
    return sizeof(V);
  }
}
}  // namespace detail

/// Per-rank data-lifecycle accounting (always on; owned by the World).
class DataTracker {
 public:
  struct RankStats {
    std::uint64_t allocs = 0;           ///< DataCopy blocks created on this rank
    std::uint64_t releases = 0;         ///< blocks whose refcount returned to zero
    std::uint64_t live_handles = 0;     ///< blocks currently alive
    std::uint64_t live_bytes = 0;       ///< payload bytes currently alive
    std::uint64_t high_watermark = 0;   ///< peak of live_bytes over the run
    std::uint64_t serializations = 0;   ///< archive passes over payload values
    std::uint64_t serialize_hits = 0;   ///< sends served from the cached buffer
    std::uint64_t input_copies = 0;     ///< task-private input copies made
    std::uint64_t input_copy_bytes = 0; ///< bytes those copies moved
    // --- device residency (all zero without the device plane) ---
    std::uint64_t h2d_transfers = 0;       ///< host -> device stagings
    std::uint64_t h2d_bytes = 0;
    std::uint64_t d2h_transfers = 0;       ///< dirty-eviction writebacks
    std::uint64_t d2h_bytes = 0;
    std::uint64_t device_hits = 0;         ///< inputs found already resident
    std::uint64_t device_live_bytes = 0;   ///< bytes currently device-resident
    std::uint64_t device_watermark = 0;    ///< peak of device_live_bytes
  };

  /// Per-job data-lifecycle accounting (multi-tenant serving mode). A block
  /// is attributed to the job ambient at its *allocation* and released
  /// against the same job, so a job whose payloads outlive it shows up as a
  /// per-job leak even while other jobs still hold live data.
  struct JobStats {
    std::uint64_t allocs = 0;
    std::uint64_t releases = 0;
    std::uint64_t live_handles = 0;
    std::uint64_t live_bytes = 0;
    std::uint64_t input_copies = 0;
  };

  /// Fix the rank count (called by the World constructor).
  void configure(int nranks);

  /// Bind the ambient-job source (the World's current-job variable).
  void set_job_source(const JobId* source) { job_source_ = source; }
  [[nodiscard]] JobId current_job() const {
    return job_source_ != nullptr ? *job_source_ : kDefaultJob;
  }

  void on_alloc(int rank, std::size_t bytes) {
    on_alloc(rank, bytes, current_job());
  }
  void on_alloc(int rank, std::size_t bytes, JobId job);
  void on_release(int rank, std::size_t bytes) {
    on_release(rank, bytes, current_job());
  }
  void on_release(int rank, std::size_t bytes, JobId job);
  void on_serialize(int rank, bool cache_hit);
  void on_input_copy(int rank, std::size_t bytes);

  // --- device residency accounting (reported by the schedulers' device
  // plane and by DataCopy::stage_to_device; all no-ops when never called) ---
  void on_stage_h2d(int rank, std::size_t bytes);
  void on_device_evict(int rank, std::size_t bytes, bool dirty);
  void on_device_hit(int rank);

  [[nodiscard]] const RankStats& rank_stats(int rank) const;
  [[nodiscard]] RankStats totals() const;
  [[nodiscard]] std::uint64_t live_handles() const;
  [[nodiscard]] std::uint64_t live_bytes() const;

  /// Per-job accounting (a zero record for jobs never seen).
  [[nodiscard]] const JobStats& job_stats(JobId job) const;
  [[nodiscard]] const std::map<JobId, JobStats>& job_stats_map() const {
    return jobs_;
  }

  /// Fence-time leak check: every DataCopy created during the run must have
  /// been released by the time the event queue drains — globally and per
  /// job (no cross-job leaks). Throws support::ApiError naming the leaking
  /// ranks/jobs otherwise.
  void check_no_leaks() const;

  /// Fence-time device-residency reconciliation: when the device plane is
  /// enabled, the bytes the tracker believes are resident on each rank must
  /// match the schedulers' own residency maps (`scheduler_view[rank]`).
  /// Throws support::ApiError naming the mismatching ranks otherwise.
  void check_device_residency(const std::vector<std::uint64_t>& scheduler_view) const;

  /// Per-rank memory table (live/peak bytes, handle and copy counts) for
  /// --trace-summary.
  [[nodiscard]] support::Table memory_table() const;

 private:
  RankStats& at(int rank);

  std::vector<RankStats> ranks_;
  const JobId* job_source_ = nullptr;
  std::map<JobId, JobStats> jobs_;
};

/// Refcounted, immutable payload handle: the runtime-owned datum of the
/// PaRSEC data-lifecycle model. Copying the handle shares the block; the
/// value itself is never duplicated by the handle. The serialized-buffer
/// cache makes a broadcast to R ranks pay exactly one archive pass under the
/// serialize-once policy, and lets the resilience layer retransmit from the
/// cached bytes instead of re-serializing.
template <typename V>
class DataCopy {
 public:
  DataCopy() = default;

  /// Enter `value` into the lifecycle layer on `owner`'s behalf. `tracer`
  /// may be null (tracing disabled); `comm` supplies the CopyPolicy and the
  /// CommStats the serialization cache reports into.
  DataCopy(DataTracker& tracker, Tracer* tracer, CommEngine& comm, int owner, V value)
      : b_(std::make_shared<Block>(tracker, tracer, comm, owner, std::move(value))) {}

  [[nodiscard]] explicit operator bool() const { return b_ != nullptr; }

  [[nodiscard]] const V& value() const {
    TTG_CHECK(b_ != nullptr, "value() on an empty DataCopy");
    return b_->value;
  }
  /// Accounted payload size (declared wire size when available).
  [[nodiscard]] std::size_t bytes() const { return b_ ? b_->bytes : 0; }
  /// Rank that entered the value into the lifecycle layer.
  [[nodiscard]] int owner() const { return b_ ? b_->owner : -1; }
  /// Current reference count (handles + pins sharing the block).
  [[nodiscard]] long use_count() const { return b_ ? b_.use_count() : 0; }

  /// The whole-object serialized form of the value. Under the owning
  /// backend's serialize-once policy the first call pays the archive pass
  /// and every later call is a cache hit returning the same buffer; with the
  /// policy off (MADNESS semantics) every call rebuilds, so each send still
  /// counts — and is charged as — a full serialization. Counts land in
  /// CommStats, the DataTracker, and (when enabled) the Tracer. `cache_hit`,
  /// when non-null, reports which case this call was.
  [[nodiscard]] std::shared_ptr<const std::vector<std::byte>> serialized(
      bool* cache_hit = nullptr) const {
    TTG_CHECK(b_ != nullptr, "serialized() on an empty DataCopy");
    Block& b = *b_;
    const bool hit = b.comm->policy().serialize_once && b.cache != nullptr;
    if (!hit) {
      ser::OutputArchive ar;
      ar& b.value;
      // A fresh shared_ptr per rebuild: in-flight deliveries created from an
      // earlier pass keep their buffer valid.
      b.cache = std::make_shared<const std::vector<std::byte>>(ar.release());
    }
    CommStats& cs = b.comm->mutable_stats();
    (hit ? cs.serialize_hits : cs.serializations) += 1;
    b.tracker->on_serialize(b.owner, hit);
    if (b.tracer != nullptr) b.tracer->record_serialization(b.owner, hit);
    if (cache_hit != nullptr) *cache_hit = hit;
    return b.cache;
  }

  /// Account an interior-hop forward of the serialized form (tree-routed
  /// broadcast): the forwarding rank re-injects the already-built buffer it
  /// received, so the send is by construction a cache reuse — never an
  /// archive pass — regardless of the serialize-once policy. Attributed to
  /// the owning rank like every other cache event, keeping flat and tree
  /// routing's serialization totals identical (serializations +
  /// serialize_hits == remote destinations either way).
  void record_forward_hit() const {
    TTG_CHECK(b_ != nullptr, "record_forward_hit() on an empty DataCopy");
    Block& b = *b_;
    b.comm->mutable_stats().serialize_hits += 1;
    b.tracker->on_serialize(b.owner, /*cache_hit=*/true);
    if (b.tracer != nullptr) b.tracer->record_serialization(b.owner, true);
  }

  /// Stage the payload into device `gpu`'s memory (simulated residency: the
  /// handle keeps at most one device copy). Returns true when the H2D
  /// transfer was actually paid; a repeat staging onto the same device is a
  /// residency hit and costs nothing. Staging onto a *different* device
  /// first writes the old copy back (clean eviction). All traffic lands in
  /// the DataTracker's device counters.
  bool stage_to_device(int gpu) {
    TTG_CHECK(b_ != nullptr, "stage_to_device() on an empty DataCopy");
    TTG_CHECK(gpu >= 0, "stage_to_device() needs a non-negative device id");
    Block& b = *b_;
    if (b.device == gpu) {
      b.tracker->on_device_hit(b.owner);
      return false;
    }
    if (b.device >= 0) b.tracker->on_device_evict(b.owner, b.bytes, /*dirty=*/false);
    b.tracker->on_stage_h2d(b.owner, b.bytes);
    b.device = gpu;
    return true;
  }

  /// Drop the device copy; a dirty unstage pays the D2H writeback.
  void unstage(bool dirty = false) {
    TTG_CHECK(b_ != nullptr, "unstage() on an empty DataCopy");
    Block& b = *b_;
    if (b.device < 0) return;
    b.tracker->on_device_evict(b.owner, b.bytes, dirty);
    b.device = -1;
  }

  /// Device currently holding a staged copy, or -1 when host-only.
  [[nodiscard]] int device() const { return b_ ? b_->device : -1; }

  /// Type-erased ownership share, e.g. for pinning the block (and its
  /// cached buffer) inside the comm layer across retransmissions.
  [[nodiscard]] std::shared_ptr<const void> pin() const { return b_; }

  void reset() { b_.reset(); }

 private:
  struct Block {
    Block(DataTracker& t, Tracer* tr, CommEngine& c, int o, V v)
        : tracker(&t),
          tracer(tr),
          comm(&c),
          owner(o),
          job(t.current_job()),
          bytes(detail::payload_bytes(v)),
          value(std::move(v)) {
      tracker->on_alloc(owner, bytes, job);
      if (tracer != nullptr) tracer->record_data_alloc(owner);
    }
    ~Block() {
      // A still-staged device copy is dropped (clean) with the block so the
      // fence-time residency reconciliation balances.
      if (device >= 0) tracker->on_device_evict(owner, bytes, /*dirty=*/false);
      // Released against the allocating job, regardless of which job (if
      // any) is ambient when the last reference drops.
      tracker->on_release(owner, bytes, job);
      if (tracer != nullptr) tracer->record_data_release(owner);
    }
    Block(const Block&) = delete;
    Block& operator=(const Block&) = delete;

    DataTracker* tracker;
    Tracer* tracer;
    CommEngine* comm;
    int owner;
    JobId job;
    std::size_t bytes;
    int device = -1;  ///< device holding a staged copy, -1 when host-only
    V value;
    std::shared_ptr<const std::vector<std::byte>> cache;
  };

  std::shared_ptr<Block> b_;
};

}  // namespace ttg::rt
