#include "runtime/comm_madness.hpp"

#include <algorithm>
#include <string>

#include "runtime/resilience.hpp"

namespace ttg::rt {

namespace {
// MADNESS creates a future per dependence and dispatches through its task
// queue: noticeably heavier per task than PaRSEC's bookkeeping.
constexpr double kMadnessTaskOverhead = 1.2e-6;
// The AM server does considerably more per message than a bare handler:
// RMI dispatch through the pending-message queue, future assignment, and
// task spawning — several microseconds in published MADNESS measurements.
constexpr double kAmServerFactor = 6.0;
}  // namespace

MadnessComm::MadnessComm(sim::Engine& engine, net::Network& network, double am_cpu_factor,
                         double task_overhead_override)
    : engine_(engine),
      network_(network),
      am_cpu_(network.machine().am_cpu * am_cpu_factor * kAmServerFactor),
      task_overhead_(task_overhead_override >= 0 ? task_overhead_override
                                                 : kMadnessTaskOverhead) {
  policy_ = default_policy();
  collective_ = default_collective();
  set_flush_engine(engine);
  am_server_.reserve(static_cast<std::size_t>(network.nranks()));
  for (int r = 0; r < network.nranks(); ++r) {
    am_server_.push_back(
        std::make_unique<sim::FifoResource>(engine, "mad-amserver" + std::to_string(r)));
  }
}

double MadnessComm::send_side_cpu(std::size_t bytes, ser::Protocol p) const {
  // Whole-object serialization regardless of protocol preference: the
  // object is staged into an AM buffer (one copy) before hitting the wire.
  (void)p;
  return am_cpu_ + network_.machine().copy_time(bytes);
}

void MadnessComm::enable_resilience(const sim::FaultPlan& plan) {
  make_reliable(engine_, network_, plan);
}

void MadnessComm::wire_send(int src, int dst, std::size_t wire_bytes,
                            std::function<void()> deliver) {
  auto handle = [this, dst, wire_bytes, deliver = std::move(deliver)]() mutable {
    // Everything funnels through the single AM server thread: RMI dispatch
    // plus the buffer -> object deserialization copy.
    const double service = am_cpu_ + network_.machine().copy_time(wire_bytes);
    auto& server = *am_server_[static_cast<std::size_t>(dst)];
    if (tracer_ != nullptr) {
      const double at = engine_.now();
      tracer_->record_server(dst, at, std::max(0.0, server.free_at() - at), service);
    }
    server.submit(service, std::move(deliver));
  };
  if (reliable_) {
    // Whole-object sends retried end to end: a timeout replays the full
    // rendezvous handshake (RTS/CTS/payload) for large messages.
    reliable_->send(src, dst, wire_bytes, std::move(handle));
  } else {
    network_.send(src, dst, wire_bytes, std::move(handle));
  }
}

}  // namespace ttg::rt
