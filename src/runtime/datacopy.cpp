#include "runtime/datacopy.hpp"

#include <string>

#include "support/table.hpp"

namespace ttg::rt {

void DataTracker::configure(int nranks) {
  TTG_CHECK(nranks >= 1, "DataTracker needs at least one rank");
  ranks_.assign(static_cast<std::size_t>(nranks), RankStats{});
}

DataTracker::RankStats& DataTracker::at(int rank) {
  if (rank >= static_cast<int>(ranks_.size()))
    ranks_.resize(static_cast<std::size_t>(rank) + 1);
  TTG_CHECK(rank >= 0, "negative rank in data-lifecycle accounting");
  return ranks_[static_cast<std::size_t>(rank)];
}

void DataTracker::on_alloc(int rank, std::size_t bytes, JobId job) {
  RankStats& s = at(rank);
  s.allocs += 1;
  s.live_handles += 1;
  s.live_bytes += bytes;
  if (s.live_bytes > s.high_watermark) s.high_watermark = s.live_bytes;
  JobStats& j = jobs_[job];
  j.allocs += 1;
  j.live_handles += 1;
  j.live_bytes += bytes;
}

void DataTracker::on_release(int rank, std::size_t bytes, JobId job) {
  RankStats& s = at(rank);
  TTG_CHECK(s.live_handles > 0 && s.live_bytes >= bytes,
            "data-lifecycle release without a matching alloc");
  s.releases += 1;
  s.live_handles -= 1;
  s.live_bytes -= bytes;
  JobStats& j = jobs_[job];
  TTG_CHECK(j.live_handles > 0 && j.live_bytes >= bytes,
            "per-job data-lifecycle release without a matching alloc");
  j.releases += 1;
  j.live_handles -= 1;
  j.live_bytes -= bytes;
}

void DataTracker::on_serialize(int rank, bool cache_hit) {
  RankStats& s = at(rank);
  (cache_hit ? s.serialize_hits : s.serializations) += 1;
}

void DataTracker::on_input_copy(int rank, std::size_t bytes) {
  RankStats& s = at(rank);
  s.input_copies += 1;
  s.input_copy_bytes += bytes;
  jobs_[current_job()].input_copies += 1;
}

void DataTracker::on_stage_h2d(int rank, std::size_t bytes) {
  RankStats& s = at(rank);
  s.h2d_transfers += 1;
  s.h2d_bytes += bytes;
  s.device_live_bytes += bytes;
  if (s.device_live_bytes > s.device_watermark)
    s.device_watermark = s.device_live_bytes;
}

void DataTracker::on_device_evict(int rank, std::size_t bytes, bool dirty) {
  RankStats& s = at(rank);
  TTG_CHECK(s.device_live_bytes >= bytes,
            "device eviction without a matching staging");
  s.device_live_bytes -= bytes;
  if (dirty) {
    s.d2h_transfers += 1;
    s.d2h_bytes += bytes;
  }
}

void DataTracker::on_device_hit(int rank) { at(rank).device_hits += 1; }

const DataTracker::JobStats& DataTracker::job_stats(JobId job) const {
  static const JobStats kZero{};
  const auto it = jobs_.find(job);
  return it != jobs_.end() ? it->second : kZero;
}

const DataTracker::RankStats& DataTracker::rank_stats(int rank) const {
  static const RankStats kZero{};
  if (rank < 0 || rank >= static_cast<int>(ranks_.size())) return kZero;
  return ranks_[static_cast<std::size_t>(rank)];
}

DataTracker::RankStats DataTracker::totals() const {
  RankStats t;
  for (const RankStats& s : ranks_) {
    t.allocs += s.allocs;
    t.releases += s.releases;
    t.live_handles += s.live_handles;
    t.live_bytes += s.live_bytes;
    t.high_watermark += s.high_watermark;  // sum of per-rank peaks
    t.serializations += s.serializations;
    t.serialize_hits += s.serialize_hits;
    t.input_copies += s.input_copies;
    t.input_copy_bytes += s.input_copy_bytes;
    t.h2d_transfers += s.h2d_transfers;
    t.h2d_bytes += s.h2d_bytes;
    t.d2h_transfers += s.d2h_transfers;
    t.d2h_bytes += s.d2h_bytes;
    t.device_hits += s.device_hits;
    t.device_live_bytes += s.device_live_bytes;
    t.device_watermark += s.device_watermark;  // sum of per-rank peaks
  }
  return t;
}

std::uint64_t DataTracker::live_handles() const {
  std::uint64_t n = 0;
  for (const RankStats& s : ranks_) n += s.live_handles;
  return n;
}

std::uint64_t DataTracker::live_bytes() const {
  std::uint64_t n = 0;
  for (const RankStats& s : ranks_) n += s.live_bytes;
  return n;
}

void DataTracker::check_no_leaks() const {
  if (live_handles() == 0) {
    // Global zero implies per-job zero (alloc/release pair on one job), but
    // keep the invariant honest rather than assumed.
    for (const auto& [job, js] : jobs_)
      TTG_CHECK(js.live_handles == 0 && js.live_bytes == 0,
                "per-job live count out of sync with global at fence");
    return;
  }
  std::string who;
  for (std::size_t r = 0; r < ranks_.size(); ++r) {
    if (ranks_[r].live_handles == 0) continue;
    if (!who.empty()) who += ", ";
    who += "rank " + std::to_string(r) + ": " +
           std::to_string(ranks_[r].live_handles) + " handle(s)/" +
           std::to_string(ranks_[r].live_bytes) + " B";
  }
  for (const auto& [job, js] : jobs_) {
    if (js.live_handles == 0) continue;
    if (!who.empty()) who += ", ";
    who += "job " + std::to_string(job) + ": " +
           std::to_string(js.live_handles) + " handle(s)/" +
           std::to_string(js.live_bytes) + " B";
  }
  TTG_REQUIRE(false, "DataCopy leak at fence — refcounts not back to zero (" + who +
                         "); a handle outlived the work that produced it");
}

void DataTracker::check_device_residency(
    const std::vector<std::uint64_t>& scheduler_view) const {
  std::string who;
  for (std::size_t r = 0; r < ranks_.size(); ++r) {
    const std::uint64_t sched =
        r < scheduler_view.size() ? scheduler_view[r] : 0;
    if (ranks_[r].device_live_bytes == sched) continue;
    if (!who.empty()) who += ", ";
    who += "rank " + std::to_string(r) + ": tracker " +
           std::to_string(ranks_[r].device_live_bytes) + " B vs scheduler " +
           std::to_string(sched) + " B";
  }
  TTG_REQUIRE(who.empty(),
              "device-residency mismatch at fence — tracker and scheduler "
              "disagree on resident bytes (" + who + ")");
}

support::Table DataTracker::memory_table() const {
  support::Table t("data lifecycle (per rank)",
                   {"rank", "allocs", "releases", "live", "live B", "peak B",
                    "serializations", "cache hits", "input copies", "input B"});
  auto row = [&t](const std::string& label, const RankStats& s) {
    t.add_row({label, std::to_string(s.allocs), std::to_string(s.releases),
               std::to_string(s.live_handles), std::to_string(s.live_bytes),
               std::to_string(s.high_watermark), std::to_string(s.serializations),
               std::to_string(s.serialize_hits), std::to_string(s.input_copies),
               std::to_string(s.input_copy_bytes)});
  };
  for (std::size_t r = 0; r < ranks_.size(); ++r)
    row(std::to_string(r), ranks_[r]);
  row("total", totals());
  return t;
}

}  // namespace ttg::rt
