// Fig. 9: strong scaling of FW-APSP on Seawulf (paper: 32k matrix, blocks
// 128/256, up to 32 nodes).
// Expected shape: TTG outperforms MPI+OpenMP by up to ~4x on <=32 nodes;
// TTG/MADNESS with block 256 tracks TTG/PaRSEC more closely than with
// smaller blocks (fewer messages through its AM server).
#include <vector>

#include "apps/fw_apsp/fw_ttg.hpp"
#include "baselines/fw_mpi_omp.hpp"
#include "bench_common.hpp"
#include "runtime/trace_session.hpp"
#include "ttg/ttg.hpp"

using namespace ttg;

int main(int argc, char** argv) {
  support::Cli cli("fig9_fw_seawulf", "FW-APSP strong scaling on Seawulf (Fig. 9)");
  cli.option("n", "12288", "matrix dimension (paper: 32768)");
  cli.option("keymap", "cyclic", "tile placement: cyclic|node2d|node-aware");
  cli.option("rpn", "1", "ranks per node (drives node-aware keymaps + tree layout)");
  cli.flag("steal", "enable the work-stealing intra-node scheduler");
  cli.flag("full", "paper-scale 32k matrix (slow)");
  rt::TraceSession::add_options(cli);
  if (!cli.parse(argc, argv)) return 0;
  const rt::TraceSession trace(cli);
  const int n = cli.get_flag("full") ? 32768 : static_cast<int>(cli.get_int("n"));
  const KeymapKind keymap = keymap_from_string(cli.get("keymap"));
  const auto m = sim::seawulf();

  bench::preamble("Fig. 9: FW-APSP strong scaling (seconds), Seawulf",
                  "32k matrix, blocks 128/256, up to 32 nodes (40 threads/node)",
                  std::to_string(n) + " matrix, blocks {128,256} (scaled)");

  const std::vector<int> nodes_list = {1, 4, 16, 32};
  support::Table t("Fig. 9 (time [s] vs nodes)",
                   {"impl", "block", "1", "4", "16", "32"});
  for (int bs : {128, 256}) {
    for (auto backend : {rt::BackendKind::Parsec, rt::BackendKind::Madness}) {
      std::vector<std::string> row{
          backend == rt::BackendKind::Parsec ? "TTG/PaRSEC" : "TTG/MADNESS",
          std::to_string(bs)};
      for (int nodes : nodes_list) {
        auto ghost = linalg::ghost_matrix(n, bs);
        rt::WorldConfig cfg;
        cfg.machine = m;
        cfg.nranks = nodes;
        cfg.backend = backend;
        cfg.work_stealing = cli.get_flag("steal");
        cfg.ranks_per_node = static_cast<int>(cli.get_int("rpn"));
        trace.apply(cfg);
        rt::World world(cfg);
        trace.attach(world);
        apps::fw::Options opt;
        opt.collect = false;
        opt.keymap = keymap;
        auto res = apps::fw::run(world, ghost, opt);
        trace.finish(world,
                     std::string(rt::to_string(backend)) + "-bs" +
                         std::to_string(bs) + "-" + std::to_string(nodes) + "nodes",
                     res.makespan);
        row.push_back(support::fmt(res.makespan, 3));
      }
      t.add_row(row);
    }
  }
  for (int bs : {128, 256}) {
    std::vector<std::string> row{"MPI+OpenMP", std::to_string(bs)};
    for (int nodes : nodes_list) {
      if (!baselines::fw_mpi_omp_supports(nodes)) {
        row.push_back(bench::na());
        continue;
      }
      row.push_back(support::fmt(baselines::run_fw_mpi_omp(m, nodes, n, bs).makespan, 3));
    }
    t.add_row(row);
  }
  t.print();
  std::printf(
      "expected shape: TTG up to ~4x faster than MPI+OpenMP; TTG/MADNESS at\n"
      "block 256 close to TTG/PaRSEC, worse at 128 (more messages).\n");
  return 0;
}
