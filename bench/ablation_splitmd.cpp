// Ablation: split-metadata serialization on vs off (PaRSEC backend).
// Section II-C introduced splitmd to eliminate serialization copies for
// contiguous payloads; disabling it forces the whole-object path.
#include <cstdio>
#include <string>
#include <vector>

#include "apps/fw_apsp/fw_ttg.hpp"
#include "apps/mra/mra_ttg.hpp"
#include "bench_common.hpp"
#include "runtime/trace_session.hpp"
#include "ttg/ttg.hpp"

using namespace ttg;

namespace {

/// One (workload, splitmd on/off) pair's deterministic makespans.
struct Row {
  std::string workload;
  double on = 0.0;   ///< makespan with splitmd
  double off = 0.0;  ///< makespan forced through the whole-object path
};

void write_json(const std::string& path, int nodes, const std::vector<Row>& rows) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  TTG_REQUIRE(f != nullptr, "cannot open --json output file: " + path);
  std::fprintf(f, "{\"bench\":\"ablation_splitmd\",\"nodes\":%d,\"rows\":[", nodes);
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const auto& r = rows[i];
    std::fprintf(f,
                 "%s\n{\"workload\":\"%s\",\"splitmd_on\":%.17g,"
                 "\"splitmd_off\":%.17g,\"ratio\":%.17g}",
                 i ? "," : "", r.workload.c_str(), r.on, r.off,
                 r.on > 0 ? r.off / r.on : 0.0);
  }
  std::fprintf(f, "\n]}\n");
  std::fclose(f);
}

}  // namespace

int main(int argc, char** argv) {
  support::Cli cli("ablation_splitmd", "splitmd on/off on comm-bound workloads");
  cli.option("nodes", "16", "node count");
  cli.option("json", "", "write both workloads' makespans as JSON to this path");
  rt::TraceSession::add_options(cli);
  if (!cli.parse(argc, argv)) return 0;
  const rt::TraceSession trace(cli);
  const int nodes = static_cast<int>(cli.get_int("nodes"));
  const std::string json_path = cli.get("json");
  const auto m = sim::hawk();

  bench::preamble("Ablation: split-metadata protocol", "paper Section II-C",
                  std::to_string(nodes) + " Hawk nodes");

  support::Table t("splitmd ablation (seconds)",
                   {"workload", "splitmd on", "splitmd off", "off/on"});

  auto fw_run = [&](bool sm) {
    auto ghost = linalg::ghost_matrix(4096, 128);
    rt::WorldConfig cfg;
    cfg.machine = m;
    cfg.nranks = nodes;
    cfg.enable_splitmd = sm;
    trace.apply(cfg);
    rt::World world(cfg);
    trace.attach(world);
    apps::fw::Options opt;
    opt.collect = false;
    auto res = apps::fw::run(world, ghost, opt);
    trace.finish(world, sm ? "fw-splitmd-on" : "fw-splitmd-off", res.makespan);
    return res.makespan;
  };
  const double fw_on = fw_run(true), fw_off = fw_run(false);
  t.add_row({"FW-APSP 4096/128", support::fmt(fw_on, 4), support::fmt(fw_off, 4),
             support::fmt(fw_off / fw_on, 2)});

  auto fns = mra::random_gaussians(12, 3.0e4, 5);
  mra::MraContext ctx(10, fns);
  auto mra_run = [&](bool sm) {
    rt::WorldConfig cfg;
    cfg.machine = m;
    cfg.nranks = nodes;
    cfg.enable_splitmd = sm;
    trace.apply(cfg);
    rt::World world(cfg);
    trace.attach(world);
    apps::mra::Options opt;
    opt.tol = 1e-6;
    auto res = apps::mra::run(world, ctx, opt);
    trace.finish(world, sm ? "mra-splitmd-on" : "mra-splitmd-off", res.makespan);
    return res.makespan;
  };
  const double mra_on = mra_run(true), mra_off = mra_run(false);
  t.add_row({"MRA k=10 x12 fns", support::fmt(mra_on, 4), support::fmt(mra_off, 4),
             support::fmt(mra_off / mra_on, 2)});
  t.print();
  if (!json_path.empty()) {
    const std::vector<Row> rows{{"fw-apsp-4096-128", fw_on, fw_off},
                                {"mra-k10-12fns", mra_on, mra_off}};
    write_json(json_path, nodes, rows);
    std::printf("# json: wrote %s (%zu rows)\n", json_path.c_str(), rows.size());
  }
  std::printf("expected: ratios >= 1 (splitmd removes copies from the data path).\n");
  return 0;
}
