// Fig. 13b: MRA strong scaling on Hawk (up to 64 nodes).
#include "fig13_common.hpp"

int main(int argc, char** argv) {
  return ttg::bench::run_fig13("Fig. 13b: MRA strong scaling, Hawk", ttg::sim::hawk(),
                               {1, 2, 4, 8, 16, 32, 64}, argc, argv);
}
