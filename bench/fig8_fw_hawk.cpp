// Fig. 8: strong scaling of FW-APSP on Hawk (paper: 32k matrix, block
// sizes 64/128/256, up to 256 nodes).
// Expected shape: TTG beats MPI+OpenMP by ~2x up to 16 nodes and keeps
// scaling; smaller blocks scale further for TTG/PaRSEC; TTG/MADNESS
// prefers larger blocks and is limited in scalability; block 128 reaches
// its parallelism limit by 256 nodes (few tiles per process).
#include <vector>

#include "apps/fw_apsp/fw_ttg.hpp"
#include "baselines/fw_mpi_omp.hpp"
#include "bench_common.hpp"
#include "runtime/trace_session.hpp"
#include "ttg/ttg.hpp"

using namespace ttg;

namespace {

/// Scheduler/placement knobs shared by every TTG run of the sweep.
struct SchedOpts {
  KeymapKind keymap = KeymapKind::Cyclic;
  bool steal = false;
  int rpn = 1;  ///< ranks per node (keymap + tree-layout topology)
};

std::string ttg_time(const sim::MachineModel& m, int nodes, int n, int bs,
                     rt::BackendKind backend, const rt::TraceSession& trace,
                     const SchedOpts& so) {
  auto ghost = linalg::ghost_matrix(n, bs);
  rt::WorldConfig cfg;
  cfg.machine = m;
  cfg.nranks = nodes;
  cfg.backend = backend;
  cfg.work_stealing = so.steal;
  cfg.ranks_per_node = so.rpn;
  trace.apply(cfg);
  rt::World world(cfg);
  trace.attach(world);
  apps::fw::Options opt;
  opt.collect = false;
  opt.keymap = so.keymap;
  auto res = apps::fw::run(world, ghost, opt);
  trace.finish(world,
               std::string(rt::to_string(backend)) + "-bs" + std::to_string(bs) +
                   "-" + std::to_string(nodes) + "nodes",
               res.makespan);
  return support::fmt(res.makespan, 3);
}

}  // namespace

int main(int argc, char** argv) {
  support::Cli cli("fig8_fw_hawk", "FW-APSP strong scaling on Hawk (Fig. 8)");
  cli.option("n", "8192", "matrix dimension (paper: 32768)");
  cli.option("keymap", "cyclic", "tile placement: cyclic|node2d|node-aware");
  cli.option("rpn", "1", "ranks per node (drives node-aware keymaps + tree layout)");
  cli.flag("steal", "enable the work-stealing intra-node scheduler");
  cli.flag("full", "paper-scale 32k matrix incl. block 64 (slow)");
  rt::TraceSession::add_options(cli);
  if (!cli.parse(argc, argv)) return 0;
  const rt::TraceSession trace(cli);
  const bool full = cli.get_flag("full");
  const int n = full ? 32768 : static_cast<int>(cli.get_int("n"));
  SchedOpts so;
  so.keymap = keymap_from_string(cli.get("keymap"));
  so.steal = cli.get_flag("steal");
  so.rpn = static_cast<int>(cli.get_int("rpn"));
  const auto m = sim::hawk();

  // TTG/PaRSEC additionally runs the smallest block size — the series that
  // keeps scaling furthest in the paper's plot.
  std::vector<int> blocks_parsec = {64, 128, 256};
  std::vector<int> blocks = {128, 256};
  if (full) blocks = blocks_parsec;
  const std::vector<int> nodes_parsec = {1, 4, 16, 64, 256};
  const std::vector<int> nodes_madness = {1, 4, 16, 64};

  bench::preamble("Fig. 8: FW-APSP strong scaling (seconds), Hawk",
                  "32k matrix, blocks 64/128/256, up to 256 nodes",
                  std::to_string(n) + " matrix, blocks {128,256}" +
                      (full ? "+64" : "") + " (scaled)");

  support::Table t("Fig. 8 (time [s] vs nodes)",
                   {"impl", "block", "1", "4", "16", "64", "256"});
  for (int bs : blocks_parsec) {
    std::vector<std::string> row{"TTG/PaRSEC", std::to_string(bs)};
    for (int nodes : nodes_parsec) {
      // Scalability limit: fewer tiles per process than threads (the
      // paper's (n/bs)/grid analysis for block 128 at 256 nodes).
      row.push_back(ttg_time(m, nodes, n, bs, rt::BackendKind::Parsec, trace, so));
    }
    t.add_row(row);
  }
  for (int bs : blocks) {
    std::vector<std::string> row{"TTG/MADNESS", std::to_string(bs)};
    for (int nodes : nodes_parsec) {
      if (std::find(nodes_madness.begin(), nodes_madness.end(), nodes) ==
          nodes_madness.end()) {
        row.push_back(bench::na());
        continue;
      }
      row.push_back(ttg_time(m, nodes, n, bs, rt::BackendKind::Madness, trace, so));
    }
    t.add_row(row);
  }
  for (int bs : blocks) {
    std::vector<std::string> row{"MPI+OpenMP", std::to_string(bs)};
    for (int nodes : nodes_parsec) {
      if (!baselines::fw_mpi_omp_supports(nodes)) {
        row.push_back(bench::na());
        continue;
      }
      row.push_back(support::fmt(baselines::run_fw_mpi_omp(m, nodes, n, bs).makespan, 3));
    }
    t.add_row(row);
  }
  t.print();
  std::printf(
      "expected shape: TTG/PaRSEC fastest and scaling furthest (smaller blocks\n"
      "scale better); TTG/MADNESS prefers big blocks, limited scaling;\n"
      "MPI+OpenMP ~2x slower through 16 nodes.\n");
  return 0;
}
