// Ablation: the bspmm Coordinator window (feedback loop 2 of Fig. 10) and
// the read window (feedback loop 1). The Coordinator "reduces the choices
// of the scheduler and forces it to focus on a subset of GEMM tasks that
// work on the same subset of data"; too-small windows serialize the
// pipeline, too-large windows lose the working-set focus.
#include "apps/bspmm/bspmm_ttg.hpp"
#include "bench_common.hpp"
#include "runtime/trace_session.hpp"
#include "sparse/yukawa_gen.hpp"
#include "ttg/ttg.hpp"

using namespace ttg;

int main(int argc, char** argv) {
  support::Cli cli("ablation_bspmm_window", "bspmm feedback-loop windows");
  cli.option("nodes", "16", "node count");
  cli.option("natoms", "300", "atoms in the synthetic matrix");
  rt::TraceSession::add_options(cli);
  if (!cli.parse(argc, argv)) return 0;
  const rt::TraceSession trace(cli);
  const int nodes = static_cast<int>(cli.get_int("nodes"));

  sparse::YukawaParams p;
  p.natoms = static_cast<int>(cli.get_int("natoms"));
  p.max_tile = 256;
  p.threshold = 1e-8;
  p.box = 240.0;
  p.ghost = true;
  auto a = sparse::yukawa_matrix(p);

  bench::preamble("Ablation: bspmm feedback-loop windows", "paper Fig. 10",
                  std::to_string(nodes) + " Hawk nodes, " +
                      std::to_string(a.nnz_tiles()) + " nnz tiles");

  auto run = [&](int read_window, int k_window) {
    rt::WorldConfig cfg;
    cfg.machine = sim::hawk();
    cfg.nranks = nodes;
    trace.apply(cfg);
    rt::World world(cfg);
    trace.attach(world);
    apps::bspmm::Options opt;
    opt.collect = false;
    opt.read_window = read_window;
    opt.k_window = k_window;
    auto res = apps::bspmm::run(world, a, a, opt);
    trace.finish(world,
                 "rw" + std::to_string(read_window) + "-kw" +
                     std::to_string(k_window),
                 res.makespan);
    return res.gflops;
  };

  support::Table t("Coordinator k-window sweep (read window 64)",
                   {"k_window", "GFLOP/s"});
  for (int kw : {1, 2, 4, 8, 16, 64}) {
    t.add_row({std::to_string(kw), support::fmt(run(64, kw), 0)});
  }
  t.print();

  support::Table t2("read-window sweep (k window 8)", {"read_window", "GFLOP/s"});
  for (int rw : {1, 4, 16, 64, 256}) {
    t2.add_row({std::to_string(rw), support::fmt(run(rw, 8), 0)});
  }
  t2.print();
  std::printf("expected: throughput collapses for window 1, saturates beyond ~8.\n");
  return 0;
}
