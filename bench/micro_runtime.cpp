// Micro-benchmarks (google-benchmark) of the substrate hot paths: archive
// serialization, event-engine throughput, scheduler throughput, and a
// small end-to-end TTG pipeline.
#include <benchmark/benchmark.h>

#include <cstdint>
#include <functional>

#include "linalg/tile.hpp"
#include "serialization/traits.hpp"
#include "ttg/ttg.hpp"

namespace {

using namespace ttg;

void BM_SerializeTile(benchmark::State& state) {
  linalg::Tile t(static_cast<int>(state.range(0)), static_cast<int>(state.range(0)));
  for (auto& v : t.data()) v = 1.5;
  for (auto _ : state) {
    auto buf = ser::to_bytes(t);
    benchmark::DoNotOptimize(buf);
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(t.wire_bytes()));
}
BENCHMARK(BM_SerializeTile)->Arg(32)->Arg(128)->Arg(512);

void BM_DeserializeTile(benchmark::State& state) {
  linalg::Tile t(static_cast<int>(state.range(0)), static_cast<int>(state.range(0)));
  const auto buf = ser::to_bytes(t);
  for (auto _ : state) {
    auto out = ser::from_bytes<linalg::Tile>(buf);
    benchmark::DoNotOptimize(out);
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(t.wire_bytes()));
}
BENCHMARK(BM_DeserializeTile)->Arg(32)->Arg(128)->Arg(512);

void BM_EngineEvents(benchmark::State& state) {
  for (auto _ : state) {
    sim::Engine e;
    const int n = static_cast<int>(state.range(0));
    for (int i = 0; i < n; ++i) e.at(static_cast<double>(i), [] {});
    e.run();
    benchmark::DoNotOptimize(e.events_processed());
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) * state.range(0));
}
BENCHMARK(BM_EngineEvents)->Arg(1024)->Arg(16384);

void BM_EngineCancellableEvents(benchmark::State& state) {
  // The retransmission-timer pattern: arm a cancellable event per message,
  // cancel half of them (the acked ones), drain the rest. Exercises the
  // pooled cancel slots and the heap's skip-without-advancing path.
  for (auto _ : state) {
    sim::Engine e;
    const int n = static_cast<int>(state.range(0));
    std::vector<sim::Engine::CancelToken> tokens;
    tokens.reserve(static_cast<std::size_t>(n));
    for (int i = 0; i < n; ++i)
      tokens.push_back(e.at_cancellable(static_cast<double>(i), [] {}));
    for (int i = 0; i < n; i += 2) sim::Engine::cancel(tokens[static_cast<std::size_t>(i)]);
    e.run();
    benchmark::DoNotOptimize(e.events_processed());
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) * state.range(0));
}
BENCHMARK(BM_EngineCancellableEvents)->Arg(1024)->Arg(16384);

// One construct + dispatch + destroy round-trip of an event closure.
// Arg 0: EventFn, 16-byte capture (inline buffer — the steady-state path).
// Arg 1: EventFn, 88-byte capture from a FnArena (pooled overflow).
// Arg 2: std::function with the same 88-byte capture — the engine's former
//        closure representation, one heap allocation per event.
void BM_EventClosureDispatch(benchmark::State& state) {
  struct Fat {
    std::uint64_t pad[10] = {};
    std::uint64_t* out = nullptr;
    void operator()() const { ++*out; }
  };
  static_assert(sizeof(Fat) > sim::EventFn::kInlineSize);
  static_assert(sizeof(Fat) <= sim::FnArena::kPayload);
  sim::FnArena arena;
  // As on the engine hot path: the draining thread owns the arena it is
  // recycling through, so frees take the non-atomic local-list route.
  sim::FnArena::OwnerScope own(arena);
  std::uint64_t sink = 0;
  const int mode = static_cast<int>(state.range(0));
  for (auto _ : state) {
    switch (mode) {
      case 0: {
        sim::EventFn fn([&sink] { ++sink; });
        fn();
        break;
      }
      case 1: {
        sim::EventFn fn(Fat{.out = &sink}, &arena);
        fn();
        break;
      }
      default: {
        std::function<void()> fn{Fat{.out = &sink}};
        fn();
        break;
      }
    }
  }
  benchmark::DoNotOptimize(sink);
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()));
}
BENCHMARK(BM_EventClosureDispatch)->Arg(0)->Arg(1)->Arg(2);

// Sharded-engine epoch turnover: chains of cross-lane hops, each paying
// exactly the lookahead, so every event is deferred, merged, renumbered and
// redistributed at a barrier. Measures the k-way merge + renumber +
// parallel-redistribution machinery as lane count grows.
void BM_BarrierMergeRenumber(benchmark::State& state) {
  const int lanes = static_cast<int>(state.range(0));
  const int ranks = lanes * 8;
  constexpr int kHops = 32;
  struct Hop {
    sim::Engine* e;
    int ranks;
    int r;
    int left;
    void operator()() const {
      if (left <= 0) return;
      const int nxt = (r + 7) % ranks;
      e->after_on(e->lane_of(nxt), 1e-6, Hop{e, ranks, nxt, left - 1});
    }
  };
  for (auto _ : state) {
    sim::EngineConfig cfg;
    cfg.lanes = lanes;
    cfg.nranks = ranks;
    cfg.lookahead = 1e-6;
    sim::Engine e(cfg);
    for (int r = 0; r < ranks; ++r)
      e.at_on(e.lane_of(r), 0.0, Hop{&e, ranks, r, kHops});
    e.run();
    benchmark::DoNotOptimize(e.events_processed());
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) * ranks *
                          (kHops + 1));
}
BENCHMARK(BM_BarrierMergeRenumber)->Arg(4)->Arg(16)->Arg(64);

void BM_SchedulerThroughput(benchmark::State& state) {
  for (auto _ : state) {
    rt::WorldConfig cfg;
    cfg.nranks = 1;
    cfg.machine.cores_per_node = 8;
    rt::World w(cfg);
    const int n = static_cast<int>(state.range(0));
    for (int i = 0; i < n; ++i) w.scheduler(0).submit(i % 3, 1e-6, [] {});
    w.fence();
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) * state.range(0));
}
BENCHMARK(BM_SchedulerThroughput)->Arg(1024)->Arg(8192);

void BM_TtgPipeline(benchmark::State& state) {
  for (auto _ : state) {
    rt::WorldConfig cfg;
    cfg.nranks = 4;
    rt::World w(cfg);
    Edge<Int1, int> a("a"), b("b");
    auto tt = make_tt(w,
                      [](const Int1& k, int& v, std::tuple<Out<Int1, int>>& out) {
                        ttg::send<0>(k, v + 1, out);
                      },
                      edges(a), edges(b), "inc");
    long sum = 0;
    auto sink = make_sink(w, b, [&](const Int1&, int& v) { sum += v; });
    make_graph_executable(*tt);
    make_graph_executable(*sink);
    const int n = static_cast<int>(state.range(0));
    for (int i = 0; i < n; ++i) tt->invoke(Int1{i}, i);
    w.fence();
    benchmark::DoNotOptimize(sum);
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) * state.range(0));
}
BENCHMARK(BM_TtgPipeline)->Arg(256)->Arg(2048);

// Host-side cost of driving a 32-rank single-owner streaming reduction
// through the simulator: Arg = reduction tree arity (0 = flat funnel into
// the owner, 4 = combined partials at interior ranks). Measures simulator
// event throughput of the two routings, not simulated time.
void BM_StreamingReduceFanIn(benchmark::State& state) {
  const int ranks = 32;
  const int arity = static_cast<int>(state.range(0));
  for (auto _ : state) {
    rt::WorldConfig cfg;
    cfg.nranks = ranks;
    cfg.reduce_tree_arity = arity;
    rt::World w(cfg);
    Edge<Int1, Void> start("start");
    Edge<Int1, long long> stream("stream"), out_e("out");
    auto prod = make_tt(w,
                        [](const Int1& k, Void&,
                           std::tuple<Out<Int1, long long>>& out) {
                          ttg::send<0>(Int1{0}, static_cast<long long>(k.i + 1),
                                       out);
                        },
                        edges(start), edges(stream), "produce");
    prod->set_keymap([ranks](const Int1& k) { return k.i % ranks; });
    auto red = make_tt(w,
                       [](const Int1& k, long long& sum,
                          std::tuple<Out<Int1, long long>>& out) {
                         ttg::send<0>(k, sum, out);
                       },
                       edges(stream), edges(out_e), "reduce");
    red->set_input_reducer<0>([](long long& acc, long long&& v) { acc += v; },
                              ranks);
    red->set_keymap([](const Int1&) { return 0; });
    long long sum = 0;
    auto sink = make_sink(w, out_e, [&](const Int1&, long long& v) { sum = v; });
    sink->set_keymap([](const Int1&) { return 0; });
    make_graph_executable(*prod);
    make_graph_executable(*red);
    make_graph_executable(*sink);
    for (int r = 0; r < ranks; ++r) prod->invoke(Int1{r}, Void{});
    w.fence();
    benchmark::DoNotOptimize(sum);
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) * ranks);
}
BENCHMARK(BM_StreamingReduceFanIn)->Arg(0)->Arg(4);

// Device-residency bookkeeping on the DataCopy staging hot path, in a
// device-off world (staging is tracker accounting only — no simulated
// time). Arg 0: resident — stage once, every further stage_to_device is a
// free residency hit (the owner-computes GEMM-chain steady state). Arg 1:
// cold — stage + clean unstage per round trip (the eviction-thrash
// pattern), paying the H2D/live-bytes books both ways.
void BM_StagingCopy(benchmark::State& state) {
  rt::WorldConfig cfg;
  cfg.nranks = 1;
  rt::World w(cfg);
  linalg::Tile t(128, 128);
  rt::DataCopy<linalg::Tile> c(w.data_tracker(), nullptr, w.comm(), 0,
                               std::move(t));
  const bool cold = state.range(0) != 0;
  if (!cold) c.stage_to_device(0);
  for (auto _ : state) {
    if (cold) {
      c.stage_to_device(0);
      c.unstage();
    } else {
      benchmark::DoNotOptimize(c.stage_to_device(0));
    }
  }
  c.unstage();
  benchmark::DoNotOptimize(w.data_tracker().rank_stats(0).device_hits);
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()));
}
BENCHMARK(BM_StagingCopy)->Arg(0)->Arg(1);

}  // namespace
