// Ablation: heterogeneous device lane — cost-model GPU placement.
//
// Two workloads with opposite device affinities:
//   1. POTRF (ghost tiled Cholesky, 512-tiles): TRSM/SYRK/GEMM device
//      kernels are two orders of magnitude faster than the host cores, the
//      factor tiles are fat enough to amortize PCIe staging, and the
//      residency map turns the trailing-update reuse (an L(m,k) panel tile
//      feeds a whole row/column of GEMMs on its rank) into staging hits.
//      The greedy cost model sends essentially everything but the host-only
//      POTRF panel to the GPUs.
//   2. bspmm (Yukawa block-sparse GEMM, mixed tile sizes): the screening
//      threshold produces both fat tiles (device-worthy) and slivers whose
//      host GEMM is cheaper than a kernel launch plus staging. Forcing
//      every MultiplyAdd onto the 4 GPU lanes (gpu-always) serializes the
//      slivers behind launches; the greedy model keeps them on the 60 host
//      cores and beats both pure arms.
//
// Arms are {cpu-only, gpu-greedy, gpu-always} x {potrf, bspmm} on 64 Hawk
// nodes (4 simulated V100-class GPUs each). cpu-only is the pre-device
// runtime path, bit-identical to every checked-in baseline.
//
// Invariants asserted here (CI re-asserts them on the JSON):
//   - device counters are exactly zero in the cpu-only arms;
//   - a gpu-greedy rerun is bit-identical (deterministic placement);
//   - task counts are placement-invariant per workload;
//   - potrf: gpu-greedy makespan <= 0.5x cpu-only;
//   - bspmm: gpu-greedy strictly beats gpu-always AND cpu-only.
#include <cstdio>
#include <string>
#include <vector>

#include "apps/bspmm/bspmm_ttg.hpp"
#include "apps/cholesky/cholesky_ttg.hpp"
#include "bench_common.hpp"
#include "runtime/trace_session.hpp"
#include "sparse/yukawa_gen.hpp"
#include "ttg/ttg.hpp"

using namespace ttg;

namespace {

/// One (workload, placement) arm's deterministic outcome.
struct Arm {
  const char* workload = "";
  const char* placement = "";
  double makespan = 0.0;
  double device_busy = 0.0;  ///< summed GPU-lane occupancy [s]
  std::uint64_t tasks = 0;
  std::uint64_t device_tasks = 0;
  std::uint64_t host_tasks = 0;  ///< device-eligible tasks the model kept on host
  std::uint64_t h2d_transfers = 0;
  std::uint64_t h2d_bytes = 0;
  std::uint64_t d2h_transfers = 0;
  std::uint64_t d2h_bytes = 0;
  std::uint64_t residency_hits = 0;
  std::uint64_t residency_misses = 0;
  std::uint64_t evictions = 0;
};

void collect_device(rt::World& world, Arm& a) {
  for (int r = 0; r < world.nranks(); ++r) {
    const auto& s = world.scheduler(r).device_stats();
    a.device_tasks += s.device_tasks;
    a.host_tasks += s.host_tasks;
    a.h2d_transfers += s.h2d_transfers;
    a.h2d_bytes += s.h2d_bytes;
    a.d2h_transfers += s.d2h_transfers;
    a.d2h_bytes += s.d2h_bytes;
    a.residency_hits += s.residency_hits;
    a.residency_misses += s.residency_misses;
    a.evictions += s.evictions;
    a.device_busy += world.scheduler(r).device_busy();
  }
}

void write_json(const std::string& path, int ranks, int workers, int gpus,
                const std::vector<Arm>& arms) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  TTG_REQUIRE(f != nullptr, "cannot open --json output file: " + path);
  std::fprintf(f,
               "{\"bench\":\"ablation_device\",\"ranks\":%d,\"workers\":%d,"
               "\"gpus\":%d,",
               ranks, workers, gpus);
  // check_perf.py gates this file: the arm list is its "points" array.
  std::fprintf(f, "\"points\":[");
  for (std::size_t i = 0; i < arms.size(); ++i) {
    const auto& a = arms[i];
    std::fprintf(
        f,
        "%s\n{\"workload\":\"%s\",\"placement\":\"%s\",\"makespan\":%.17g,"
        "\"device_busy\":%.17g,\"tasks\":%llu,\"device_tasks\":%llu,"
        "\"host_tasks\":%llu,\"h2d_transfers\":%llu,\"h2d_bytes\":%llu,"
        "\"d2h_transfers\":%llu,\"d2h_bytes\":%llu,\"residency_hits\":%llu,"
        "\"residency_misses\":%llu,\"evictions\":%llu}",
        i ? "," : "", a.workload, a.placement, a.makespan, a.device_busy,
        static_cast<unsigned long long>(a.tasks),
        static_cast<unsigned long long>(a.device_tasks),
        static_cast<unsigned long long>(a.host_tasks),
        static_cast<unsigned long long>(a.h2d_transfers),
        static_cast<unsigned long long>(a.h2d_bytes),
        static_cast<unsigned long long>(a.d2h_transfers),
        static_cast<unsigned long long>(a.d2h_bytes),
        static_cast<unsigned long long>(a.residency_hits),
        static_cast<unsigned long long>(a.residency_misses),
        static_cast<unsigned long long>(a.evictions));
  }
  std::fprintf(f, "\n]}\n");
  std::fclose(f);
}

const char* to_label(rt::DevicePlacement p) {
  return p == rt::DevicePlacement::Off
             ? "cpu-only"
             : (p == rt::DevicePlacement::Greedy ? "gpu-greedy" : "gpu-always");
}

}  // namespace

int main(int argc, char** argv) {
  support::Cli cli("ablation_device",
                   "simulated-GPU lane: cost-model vs forced vs host placement");
  cli.option("ranks", "64", "rank count (one Hawk node each)");
  cli.option("workers", "0", "worker cores per rank (0: machine default)");
  cli.option("n", "16384", "POTRF matrix dimension");
  cli.option("bs", "512", "POTRF tile size");
  cli.option("natoms", "80", "atoms for the bspmm arm");
  cli.option("max-tile", "256", "bspmm max tile size (mixed-size workload)");
  cli.option("json", "", "write all arms as JSON to this path");
  rt::TraceSession::add_options(cli);
  if (!cli.parse(argc, argv)) return 0;
  const rt::TraceSession trace(cli);
  const int ranks = static_cast<int>(cli.get_int("ranks"));
  const int workers = static_cast<int>(cli.get_int("workers"));
  const int n = static_cast<int>(cli.get_int("n"));
  const int bs = static_cast<int>(cli.get_int("bs"));
  const std::string json_path = cli.get("json");
  const auto m = sim::hawk();

  bench::preamble("Ablation: device placement",
                  "greedy cost model vs forced GPU vs host-only",
                  std::to_string(ranks) + " Hawk nodes x " +
                      std::to_string(m.gpus_per_node) + " GPUs (" +
                      support::fmt(m.gpu_gflops / 1000.0, 1) + " TF/s each)");

  auto make_cfg = [&](rt::DevicePlacement p) {
    rt::WorldConfig cfg;
    cfg.machine = m;
    cfg.nranks = ranks;
    if (workers > 0) cfg.workers_per_rank = workers;
    cfg.device = p;
    return cfg;
  };

  auto potrf_run = [&](rt::DevicePlacement p) {
    rt::WorldConfig cfg = make_cfg(p);
    trace.apply(cfg);
    rt::World world(cfg);
    trace.attach(world);
    apps::cholesky::Options opt;
    auto res = apps::cholesky::run_ghost(world, n, bs, opt);
    trace.finish(world, std::string("potrf-") + to_label(p), res.makespan);
    Arm a;
    a.workload = "potrf";
    a.placement = to_label(p);
    a.makespan = res.makespan;
    a.tasks = res.tasks;
    collect_device(world, a);
    return a;
  };

  sparse::YukawaParams p;
  p.natoms = static_cast<int>(cli.get_int("natoms"));
  p.max_tile = static_cast<int>(cli.get_int("max-tile"));
  p.threshold = 1e-3;
  p.box = 60.0;
  p.screening_length = 5.0;
  p.seed = 7;
  p.ghost = true;
  auto mat = sparse::yukawa_matrix(p);

  auto bspmm_run = [&](rt::DevicePlacement pl) {
    rt::WorldConfig cfg = make_cfg(pl);
    trace.apply(cfg);
    rt::World world(cfg);
    trace.attach(world);
    apps::bspmm::Options opt;
    opt.collect = false;
    auto res = apps::bspmm::run(world, mat, mat, opt);
    trace.finish(world, std::string("bspmm-") + to_label(pl), res.makespan);
    Arm a;
    a.workload = "bspmm";
    a.placement = to_label(pl);
    a.makespan = res.makespan;
    a.tasks = res.tasks;
    collect_device(world, a);
    return a;
  };

  std::vector<Arm> arms;
  for (const rt::DevicePlacement pl :
       {rt::DevicePlacement::Off, rt::DevicePlacement::Greedy,
        rt::DevicePlacement::Always}) {
    arms.push_back(potrf_run(pl));
    arms.push_back(bspmm_run(pl));
  }

  support::Table t("device placement (" + std::to_string(ranks) + " nodes x " +
                       std::to_string(m.gpus_per_node) + " GPUs)",
                   {"workload", "placement", "time [s]", "dev tasks", "host kept",
                    "h2d MB", "res hits", "evictions", "gpu busy [s]"});
  for (const auto& a : arms)
    t.add_row({a.workload, a.placement, support::fmt(a.makespan, 6),
               std::to_string(a.device_tasks), std::to_string(a.host_tasks),
               support::fmt(static_cast<double>(a.h2d_bytes) / 1e6, 1),
               std::to_string(a.residency_hits), std::to_string(a.evictions),
               support::fmt(a.device_busy, 4)});
  t.print();

  auto find = [&](const char* wl, const char* pl) -> const Arm& {
    for (const auto& a : arms)
      if (std::string(a.workload) == wl && std::string(a.placement) == pl)
        return a;
    TTG_REQUIRE(false, "arm not found");
    return arms[0];
  };

  // cpu-only arms must not touch the device plane at all.
  for (const auto& a : arms) {
    if (std::string(a.placement) != "cpu-only") continue;
    TTG_REQUIRE(a.device_tasks == 0 && a.h2d_transfers == 0 &&
                    a.residency_hits == 0 && a.residency_misses == 0 &&
                    a.device_busy == 0.0,
                "device counters must be zero with placement off");
  }
  // Task counts are placement-invariant per workload.
  for (const auto& a : arms)
    TTG_REQUIRE(a.tasks == find(a.workload, "cpu-only").tasks,
                "task count must not depend on placement");

  // Deterministic placement: a gpu-greedy rerun is bit-identical.
  {
    const Arm& first = find("potrf", "gpu-greedy");
    const Arm again = potrf_run(rt::DevicePlacement::Greedy);
    TTG_REQUIRE(again.makespan == first.makespan &&
                    again.device_tasks == first.device_tasks &&
                    again.h2d_bytes == first.h2d_bytes &&
                    again.residency_hits == first.residency_hits &&
                    again.evictions == first.evictions,
                "gpu-greedy rerun must be bit-identical");
  }

  const Arm& po = find("potrf", "cpu-only");
  const Arm& pg = find("potrf", "gpu-greedy");
  std::printf(
      "potrf, gpu-greedy vs cpu-only: %.6fs -> %.6fs (%.2fx), %llu device "
      "tasks, %.1f MB staged, %llu residency hits\n",
      po.makespan, pg.makespan, po.makespan / pg.makespan,
      static_cast<unsigned long long>(pg.device_tasks),
      static_cast<double>(pg.h2d_bytes) / 1e6,
      static_cast<unsigned long long>(pg.residency_hits));
  TTG_REQUIRE(pg.device_tasks > 0, "greedy POTRF must use the GPUs");
  TTG_REQUIRE(pg.residency_hits > 0,
              "trailing-update reuse must hit the residency map");
  TTG_REQUIRE(pg.makespan <= 0.5 * po.makespan,
              "gpu-greedy POTRF must at least halve the cpu-only makespan");

  const Arm& bo = find("bspmm", "cpu-only");
  const Arm& bg = find("bspmm", "gpu-greedy");
  const Arm& ba = find("bspmm", "gpu-always");
  std::printf(
      "bspmm, greedy %.6fs vs always %.6fs vs cpu-only %.6fs (greedy kept "
      "%llu tasks on host, sent %llu to GPUs)\n",
      bg.makespan, ba.makespan, bo.makespan,
      static_cast<unsigned long long>(bg.host_tasks),
      static_cast<unsigned long long>(bg.device_tasks));
  TTG_REQUIRE(bg.device_tasks > 0 && bg.host_tasks > 0,
              "greedy bspmm must split the mixed-size tiles across planes");
  TTG_REQUIRE(bg.makespan < ba.makespan,
              "gpu-greedy bspmm must strictly beat gpu-always");
  TTG_REQUIRE(bg.makespan < bo.makespan,
              "gpu-greedy bspmm must strictly beat cpu-only");

  if (!json_path.empty()) {
    write_json(json_path, ranks,
               workers > 0 ? workers : m.cores_per_node, m.gpus_per_node, arms);
    std::printf("# json: wrote %s (%zu arms)\n", json_path.c_str(), arms.size());
  }
  std::printf(
      "expected: POTRF's fat 512-tiles amortize staging, so greedy offloads\n"
      "nearly all TRSM/SYRK/GEMM work; bspmm's sliver tiles punish gpu-always\n"
      "(launch + staging > host GEMM), and the cost model splits the difference.\n");
  return 0;
}
