// Ablation: broadcast routing on POTRF fan-out — per-dependence sends
// (Section II-A's baseline), rank-coalesced flat broadcast (the paper's
// optimized ttg::broadcast), and the tree-routed collective plane (k-ary
// spanning-tree store-and-forward) at arities 2 and 4.
//
// The tree arms show the root's send NIC unloading (O(arity) injections
// per broadcast instead of O(R)) and the makespan effect of pipelining
// the fan-out through interior ranks.
#include <algorithm>
#include <cstdio>
#include <string>
#include <vector>

#include "apps/cholesky/cholesky_ttg.hpp"
#include "linalg/tile.hpp"
#include "bench_common.hpp"
#include "runtime/trace_session.hpp"
#include "ttg/ttg.hpp"

using namespace ttg;

namespace {

/// One routing arm's deterministic outcome.
struct Arm {
  const char* name = "";
  int optimized = 1;        ///< rank-coalesced broadcast on/off
  int arity = 0;            ///< 0 = flat, k >= 2 = spanning tree
  double makespan = 0.0;
  double max_nic_busy = 0.0;        ///< busiest send NIC (the broadcast roots)
  std::uint64_t max_nic_sends = 0;  ///< most transfers injected by one rank
  std::uint64_t wire_transfers = 0; ///< payload-bearing network transfers
  std::uint64_t messages = 0;       ///< logical AMs (routing-invariant)
  std::uint64_t splitmd_sends = 0;
  std::uint64_t broadcast_forwards = 0;
  std::uint64_t am_batches = 0;
  std::uint64_t batched_msgs = 0;
};

/// One arm of the single-root broadcast microbenchmark: rank 0 ships one
/// 512^2 tile to every other rank; the root's NIC tells the routing story
/// undiluted (in the POTRF arms every rank is both root and forwarder).
struct RootArm {
  const char* name = "";
  int arity = 0;
  double completion = 0.0;     ///< virtual time until the last delivery
  double root_nic_busy = 0.0;  ///< send-NIC busy time of the broadcast root
  std::uint64_t root_nic_sends = 0;
  std::uint64_t broadcast_forwards = 0;
};

void write_json(const std::string& path, int nodes, int nt,
                const std::vector<RootArm>& roots, const std::vector<Arm>& arms) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  TTG_REQUIRE(f != nullptr, "cannot open --json output file: " + path);
  std::fprintf(f, "{\"bench\":\"ablation_broadcast\",\"nodes\":%d,\"nt\":%d,", nodes,
               nt);
  std::fprintf(f, "\"root_broadcast\":[");
  for (std::size_t i = 0; i < roots.size(); ++i) {
    const auto& a = roots[i];
    std::fprintf(f,
                 "%s\n{\"arm\":\"%s\",\"arity\":%d,\"completion\":%.17g,"
                 "\"root_nic_busy\":%.17g,\"root_nic_sends\":%llu,"
                 "\"broadcast_forwards\":%llu}",
                 i ? "," : "", a.name, a.arity, a.completion, a.root_nic_busy,
                 static_cast<unsigned long long>(a.root_nic_sends),
                 static_cast<unsigned long long>(a.broadcast_forwards));
  }
  std::fprintf(f, "\n],\"arms\":[");
  for (std::size_t i = 0; i < arms.size(); ++i) {
    const auto& a = arms[i];
    std::fprintf(
        f,
        "%s\n{\"arm\":\"%s\",\"optimized\":%d,\"arity\":%d,\"makespan\":%.17g,"
        "\"max_nic_busy\":%.17g,\"max_nic_sends\":%llu,\"wire_transfers\":%llu,"
        "\"messages\":%llu,\"splitmd_sends\":%llu,\"broadcast_forwards\":%llu,"
        "\"am_batches\":%llu,\"batched_msgs\":%llu}",
        i ? "," : "", a.name, a.optimized, a.arity, a.makespan, a.max_nic_busy,
        static_cast<unsigned long long>(a.max_nic_sends),
        static_cast<unsigned long long>(a.wire_transfers),
        static_cast<unsigned long long>(a.messages),
        static_cast<unsigned long long>(a.splitmd_sends),
        static_cast<unsigned long long>(a.broadcast_forwards),
        static_cast<unsigned long long>(a.am_batches),
        static_cast<unsigned long long>(a.batched_msgs));
  }
  std::fprintf(f, "\n]}\n");
  std::fclose(f);
}

}  // namespace

int main(int argc, char** argv) {
  support::Cli cli("ablation_broadcast",
                   "broadcast routing: per-dependence vs flat vs tree (POTRF)");
  cli.option("nodes", "64", "node count");
  cli.option("nt", "16", "tiles per dimension (tile 512)");
  cli.option("json", "", "write all arms as JSON to this path");
  rt::TraceSession::add_options(cli);
  if (!cli.parse(argc, argv)) return 0;
  const rt::TraceSession trace(cli);
  const int nodes = static_cast<int>(cli.get_int("nodes"));
  const int nt = static_cast<int>(cli.get_int("nt"));
  const std::string json_path = cli.get("json");
  const auto m = sim::hawk();

  bench::preamble("Ablation: broadcast routing (per-dependence / flat / tree)",
                  "paper Section II-A, Fig. 2, + tree-routed collective plane",
                  std::to_string(nodes) + " Hawk nodes, " + std::to_string(nt) +
                      "x" + std::to_string(nt) + " tiles of 512^2");

  // --- single-root broadcast: the routing effect undiluted ---
  auto root_run = [&](const char* name, int arity) {
    rt::WorldConfig cfg;
    cfg.machine = m;
    cfg.nranks = nodes;
    cfg.broadcast_tree_arity = arity;
    trace.apply(cfg);
    rt::World world(cfg);
    trace.attach(world);
    Edge<Int1, linalg::Tile> in("in"), out_e("out");
    const int fanout = nodes - 1;
    auto tt = make_tt(world,
                      [fanout](const Int1&, linalg::Tile& t,
                               std::tuple<Out<Int1, linalg::Tile>>& out) {
                        std::vector<Int1> keys;
                        for (int i = 1; i <= fanout; ++i) keys.push_back(Int1{i});
                        ttg::broadcast<0>(keys, t, out);
                      },
                      edges(in), edges(out_e), "root-bcast");
    tt->set_keymap([](const Int1&) { return 0; });
    auto sink = make_sink(world, out_e, [](const Int1&, linalg::Tile&) {});
    sink->set_keymap([nodes](const Int1& k) { return k.i % nodes; });
    make_graph_executable(*tt);
    make_graph_executable(*sink);
    tt->invoke(Int1{0}, linalg::Tile(512, 512));
    world.fence();
    RootArm a;
    a.name = name;
    a.arity = arity;
    a.completion = world.engine().now();
    a.root_nic_busy = world.network().nic_busy(0);
    a.root_nic_sends = world.network().nic_sends(0);
    a.broadcast_forwards = world.comm().stats().broadcast_forwards;
    return a;
  };

  std::vector<RootArm> roots;
  roots.push_back(root_run("flat", 0));
  roots.push_back(root_run("tree-k2", 2));
  roots.push_back(root_run("tree-k4", 4));

  support::Table rt_table(
      "single-root broadcast: one 512^2 tile, rank 0 -> all " +
          std::to_string(nodes - 1) + " others",
      {"arm", "completion [s]", "root nic busy [s]", "root nic sends", "fwds"});
  for (const auto& a : roots)
    rt_table.add_row({a.name, support::fmt(a.completion, 5),
                      support::fmt(a.root_nic_busy, 5),
                      std::to_string(a.root_nic_sends),
                      std::to_string(a.broadcast_forwards)});
  rt_table.print();

  // --- POTRF: routing under real fan-out traffic ---
  auto run = [&](const char* name, bool optimized, int arity) {
    auto ghost = linalg::ghost_matrix(512 * nt, 512);
    rt::WorldConfig cfg;
    cfg.machine = m;
    cfg.nranks = nodes;
    cfg.optimized_broadcast = optimized;
    cfg.broadcast_tree_arity = arity;
    trace.apply(cfg);
    rt::World world(cfg);
    trace.attach(world);
    apps::cholesky::Options opt;
    opt.collect = false;
    auto res = apps::cholesky::run(world, ghost, opt);
    trace.finish(world, name, res.makespan);
    Arm a;
    a.name = name;
    a.optimized = optimized ? 1 : 0;
    a.arity = arity;
    a.makespan = res.makespan;
    for (int r = 0; r < nodes; ++r) {
      a.max_nic_busy = std::max(a.max_nic_busy, world.network().nic_busy(r));
      a.max_nic_sends = std::max(a.max_nic_sends, world.network().nic_sends(r));
    }
    const auto& cs = world.comm().stats();
    a.wire_transfers = world.network().stats().messages;
    a.messages = cs.messages;
    a.splitmd_sends = cs.splitmd_sends;
    a.broadcast_forwards = cs.broadcast_forwards;
    a.am_batches = cs.am_batches;
    a.batched_msgs = cs.batched_msgs;
    return a;
  };

  std::vector<Arm> arms;
  arms.push_back(run("per-dependence", /*optimized=*/false, /*arity=*/0));
  arms.push_back(run("coalesced-flat", /*optimized=*/true, /*arity=*/0));
  arms.push_back(run("tree-k2", /*optimized=*/true, /*arity=*/2));
  arms.push_back(run("tree-k4", /*optimized=*/true, /*arity=*/4));

  support::Table t("broadcast routing ablation",
                   {"arm", "time [s]", "max nic busy [s]", "max nic sends",
                    "wire transfers", "fwds", "batches"});
  for (const auto& a : arms)
    t.add_row({a.name, support::fmt(a.makespan, 4), support::fmt(a.max_nic_busy, 4),
               std::to_string(a.max_nic_sends), std::to_string(a.wire_transfers),
               std::to_string(a.broadcast_forwards), std::to_string(a.am_batches)});
  t.print();

  const RootArm& rflat = roots[0];
  const RootArm& rk4 = roots[2];
  std::printf(
      "root broadcast, tree-k4 vs flat: root nic busy %.5fs -> %.5fs (%.1fx "
      "less), completion %.5fs -> %.5fs (%.2fx)\n",
      rflat.root_nic_busy, rk4.root_nic_busy,
      rk4.root_nic_busy > 0 ? rflat.root_nic_busy / rk4.root_nic_busy : 0.0,
      rflat.completion, rk4.completion,
      rk4.completion > 0 ? rflat.completion / rk4.completion : 0.0);
  const Arm& flat = arms[1];
  const Arm& k4 = arms[3];
  std::printf(
      "potrf, tree-k4 vs coalesced-flat: makespan %.4fs -> %.4fs (%.2fx)\n",
      flat.makespan, k4.makespan,
      k4.makespan > 0 ? flat.makespan / k4.makespan : 0.0);
  if (!json_path.empty()) {
    write_json(json_path, nodes, nt, roots, arms);
    std::printf("# json: wrote %s (%zu+%zu arms)\n", json_path.c_str(), roots.size(),
                arms.size());
  }
  std::printf(
      "expected: coalescing beats per-dependence; tree routing then unloads\n"
      "the broadcast root's NIC (fewer injections per broadcast) and improves\n"
      "makespan further once fan-outs exceed the arity.\n");
  return 0;
}
