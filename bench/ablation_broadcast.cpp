// Ablation: optimized (rank-coalesced) ttg::broadcast vs per-dependence
// point-to-point sends — the optimization Section II-A introduced, and the
// communication difference behind Chameleon's deficit in Figs. 5-6.
#include "apps/cholesky/cholesky_ttg.hpp"
#include "bench_common.hpp"
#include "runtime/trace_session.hpp"
#include "ttg/ttg.hpp"

using namespace ttg;

int main(int argc, char** argv) {
  support::Cli cli("ablation_broadcast", "optimized broadcast on/off (POTRF)");
  cli.option("nodes", "16", "node count");
  cli.option("nt", "16", "tiles per dimension (tile 512)");
  rt::TraceSession::add_options(cli);
  if (!cli.parse(argc, argv)) return 0;
  const rt::TraceSession trace(cli);
  const int nodes = static_cast<int>(cli.get_int("nodes"));
  const int nt = static_cast<int>(cli.get_int("nt"));
  const auto m = sim::hawk();

  bench::preamble("Ablation: optimized ttg::broadcast", "paper Section II-A, Fig. 2",
                  std::to_string(nodes) + " Hawk nodes, " + std::to_string(nt) +
                      "x" + std::to_string(nt) + " tiles of 512^2");

  auto run = [&](bool optimized) {
    auto ghost = linalg::ghost_matrix(512 * nt, 512);
    rt::WorldConfig cfg;
    cfg.machine = m;
    cfg.nranks = nodes;
    cfg.optimized_broadcast = optimized;
    trace.apply_faults(cfg);
    rt::World world(cfg);
    trace.attach(world);
    apps::cholesky::Options opt;
    opt.collect = false;
    auto res = apps::cholesky::run(world, ghost, opt);
    trace.finish(world, optimized ? "coalesced" : "per-dependence", res.makespan);
    const auto& st = world.comm().stats();
    return std::pair<double, std::uint64_t>(res.makespan,
                                            st.messages + st.splitmd_sends);
  };
  auto [t_on, m_on] = run(true);
  auto [t_off, m_off] = run(false);

  support::Table t("broadcast ablation", {"variant", "time [s]", "wire transfers"});
  t.add_row({"optimized (coalesced)", support::fmt(t_on, 4), std::to_string(m_on)});
  t.add_row({"per-dependence sends", support::fmt(t_off, 4), std::to_string(m_off)});
  t.print();
  std::printf("expected: coalescing sends fewer transfers and is no slower.\n");
  return 0;
}
