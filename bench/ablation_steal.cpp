// Ablation: intra-node work-stealing scheduler x process-map-aware keymaps.
//
// Two workloads whose readiness profiles react to execution order:
//   1. MRA: adaptive tree refinement + 8-way streaming compress +
//      reconstruct. The single-queue scheduler dispatches same-priority
//      tasks FIFO, i.e. breadth-first across all function trees at once —
//      every subtree finishes near the end and the upward compress traffic
//      bursts with no compute left to overlap it. The deque substrate pops
//      LIFO (depth-first along the producing core's continuation), so
//      subtrees complete early and the compress/reconstruct pipeline
//      overlaps refinement still in flight.
//   2. bspmm (Yukawa block-sparse GEMM): irregular per-tile work where the
//      k-window coordinator creates bursts; stealing rebalances a rank's
//      cores inside each burst.
//
// Arms are the cross product {steal off, steal on} x {cyclic, node-aware}
// with several ranks per node, few workers per rank (oversubscription makes
// intra-rank imbalance visible), and the Hawk two-socket steal distances.
// Each arm reports makespan, aggregate core idle time, and the steal
// counters; the steal-on cyclic arm runs twice to pin seeded determinism.
//
// Invariants asserted here (CI re-asserts them on the JSON):
//   - steal counters are exactly zero in the off arms;
//   - a steal-on rerun with the same seed is bit-identical;
//   - steal-on reduces MRA aggregate core idle vs steal-off (same keymap);
//   - steal-on improves the MRA makespan vs steal-off (same keymap).
#include <cstdio>
#include <string>
#include <vector>

#include "apps/bspmm/bspmm_ttg.hpp"
#include "apps/mra/mra_ttg.hpp"
#include "bench_common.hpp"
#include "runtime/trace_session.hpp"
#include "sparse/yukawa_gen.hpp"
#include "ttg/ttg.hpp"

using namespace ttg;

namespace {

/// One (workload, steal, keymap) arm's deterministic outcome.
struct Arm {
  const char* workload = "";
  bool steal = false;
  const char* keymap = "";
  double makespan = 0.0;
  double core_idle = 0.0;  ///< sum over all cores of (makespan - busy)
  std::uint64_t tasks = 0;
  std::uint64_t steals_local = 0;
  std::uint64_t steals_remote = 0;
  std::uint64_t steal_fail = 0;
  std::uint64_t tasks_stolen = 0;
};

void collect_steals(rt::World& world, Arm& a) {
  for (int r = 0; r < world.nranks(); ++r) {
    const auto& s = world.scheduler(r).steal_stats();
    a.steals_local += s.steals_local;
    a.steals_remote += s.steals_remote;
    a.steal_fail += s.steal_fail;
    a.tasks_stolen += s.tasks_stolen;
  }
}

double core_idle(rt::World& world, double makespan) {
  const double total =
      static_cast<double>(world.nranks()) * world.workers_per_rank() * makespan;
  return total - world.total_busy_time();
}

void write_json(const std::string& path, int ranks, int workers, int rpn,
                const std::vector<Arm>& arms) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  TTG_REQUIRE(f != nullptr, "cannot open --json output file: " + path);
  std::fprintf(f,
               "{\"bench\":\"ablation_steal\",\"ranks\":%d,\"workers\":%d,"
               "\"ranks_per_node\":%d,",
               ranks, workers, rpn);
  std::fprintf(f, "\"arms\":[");
  for (std::size_t i = 0; i < arms.size(); ++i) {
    const auto& a = arms[i];
    std::fprintf(f,
                 "%s\n{\"workload\":\"%s\",\"steal\":%s,\"keymap\":\"%s\","
                 "\"makespan\":%.17g,\"core_idle\":%.17g,\"tasks\":%llu,"
                 "\"steals_local\":%llu,\"steals_remote\":%llu,"
                 "\"steal_fail\":%llu,\"tasks_stolen\":%llu}",
                 i ? "," : "", a.workload, a.steal ? "true" : "false", a.keymap,
                 a.makespan, a.core_idle, static_cast<unsigned long long>(a.tasks),
                 static_cast<unsigned long long>(a.steals_local),
                 static_cast<unsigned long long>(a.steals_remote),
                 static_cast<unsigned long long>(a.steal_fail),
                 static_cast<unsigned long long>(a.tasks_stolen));
  }
  std::fprintf(f, "\n]}\n");
  std::fclose(f);
}

}  // namespace

int main(int argc, char** argv) {
  support::Cli cli("ablation_steal",
                   "work-stealing scheduler x node-aware keymaps");
  cli.option("ranks", "8", "rank count");
  cli.option("rpn", "4", "ranks per node");
  cli.option("workers", "4", "worker cores per rank (small: oversubscription)");
  cli.option("funcs", "16", "MRA Gaussians");
  cli.option("tol", "1e-4", "MRA truncation threshold");
  cli.option("rand-level", "2", "MRA keymap scatter level");
  cli.option("natoms", "60", "atoms for the bspmm arm");
  cli.option("seed", "1", "world seed (steal victim selection)");
  cli.option("json", "", "write all arms as JSON to this path");
  rt::TraceSession::add_options(cli);
  if (!cli.parse(argc, argv)) return 0;
  const rt::TraceSession trace(cli);
  const int ranks = static_cast<int>(cli.get_int("ranks"));
  const int rpn = static_cast<int>(cli.get_int("rpn"));
  const int workers = static_cast<int>(cli.get_int("workers"));
  const auto seed = static_cast<std::uint64_t>(cli.get_int("seed"));
  const std::string json_path = cli.get("json");
  const auto m = sim::hawk();

  bench::preamble("Ablation: work stealing x keymaps",
                  "per-core deques, steal-half, NUMA steal distances",
                  std::to_string(ranks) + " Hawk ranks x " +
                      std::to_string(workers) + " cores, " + std::to_string(rpn) +
                      " ranks/node, 2 sockets");

  auto make_cfg = [&](bool steal) {
    rt::WorldConfig cfg;
    cfg.machine = m;
    cfg.nranks = ranks;
    cfg.workers_per_rank = workers;
    cfg.ranks_per_node = rpn;
    cfg.work_stealing = steal;
    cfg.seed = seed;
    return cfg;
  };

  // --- MRA ---
  auto fns = ttg::mra::random_gaussians(static_cast<int>(cli.get_int("funcs")),
                                        3.0e4, 2022);
  ttg::mra::MraContext ctx(6, fns);
  ctx.enable_projection_cache();

  auto mra_run = [&](bool steal, KeymapKind km) {
    rt::WorldConfig cfg = make_cfg(steal);
    trace.apply(cfg);
    rt::World world(cfg);
    trace.attach(world);
    apps::mra::Options opt;
    opt.tol = cli.get_double("tol");
    opt.rand_level = static_cast<int>(cli.get_int("rand-level"));
    opt.light_math = true;
    opt.keymap = km;
    auto res = apps::mra::run(world, ctx, opt);
    trace.finish(world,
                 std::string("mra-") + (steal ? "steal" : "off") + "-" +
                     to_string(km),
                 res.makespan);
    Arm a;
    a.workload = "mra";
    a.steal = steal;
    a.keymap = to_string(km);
    a.makespan = res.makespan;
    a.core_idle = core_idle(world, res.makespan);
    a.tasks = res.tasks;
    collect_steals(world, a);
    return a;
  };

  // --- bspmm ---
  sparse::YukawaParams p;
  p.natoms = static_cast<int>(cli.get_int("natoms"));
  p.max_tile = 64;
  p.threshold = 1e-3;
  p.box = 60.0;
  p.screening_length = 5.0;
  p.seed = 7;
  p.ghost = true;
  auto mat = sparse::yukawa_matrix(p);

  auto bspmm_run = [&](bool steal, KeymapKind km) {
    rt::WorldConfig cfg = make_cfg(steal);
    trace.apply(cfg);
    rt::World world(cfg);
    trace.attach(world);
    apps::bspmm::Options opt;
    opt.collect = false;
    opt.keymap = km;
    auto res = apps::bspmm::run(world, mat, mat, opt);
    trace.finish(world,
                 std::string("bspmm-") + (steal ? "steal" : "off") + "-" +
                     to_string(km),
                 res.makespan);
    Arm a;
    a.workload = "bspmm";
    a.steal = steal;
    a.keymap = to_string(km);
    a.makespan = res.makespan;
    a.core_idle = core_idle(world, res.makespan);
    a.tasks = res.tasks;
    collect_steals(world, a);
    return a;
  };

  std::vector<Arm> arms;
  for (const bool steal : {false, true}) {
    for (const KeymapKind km : {KeymapKind::Cyclic, KeymapKind::NodeAware}) {
      arms.push_back(mra_run(steal, km));
      arms.push_back(bspmm_run(steal, km));
    }
  }

  support::Table t("steal x keymap (" + std::to_string(ranks) + " ranks x " +
                       std::to_string(workers) + " cores)",
                   {"workload", "steal", "keymap", "time [s]", "core idle [s]",
                    "steals l/r", "fails", "stolen"});
  for (const auto& a : arms)
    t.add_row({a.workload, a.steal ? "on" : "off", a.keymap,
               support::fmt(a.makespan, 6), support::fmt(a.core_idle, 6),
               std::to_string(a.steals_local) + "/" +
                   std::to_string(a.steals_remote),
               std::to_string(a.steal_fail), std::to_string(a.tasks_stolen)});
  t.print();

  auto find = [&](const char* wl, bool steal, const char* km) -> const Arm& {
    for (const auto& a : arms)
      if (std::string(a.workload) == wl && a.steal == steal &&
          std::string(a.keymap) == km)
        return a;
    TTG_REQUIRE(false, "arm not found");
    return arms[0];
  };

  // Off arms must not touch the steal machinery at all.
  for (const auto& a : arms) {
    if (a.steal) continue;
    TTG_REQUIRE(a.steals_local == 0 && a.steals_remote == 0 && a.steal_fail == 0,
                "steal counters must be zero with stealing off");
  }
  // Task counts are placement/schedule-invariant per workload.
  for (const auto& a : arms)
    TTG_REQUIRE(a.tasks == find(a.workload, false, "cyclic").tasks,
                "task count must not depend on steal/keymap");

  // Seeded determinism: the same steal-on arm rerun is bit-identical.
  {
    const Arm& first = find("mra", true, "cyclic");
    const Arm again = mra_run(true, KeymapKind::Cyclic);
    TTG_REQUIRE(again.makespan == first.makespan &&
                    again.steals_local == first.steals_local &&
                    again.steals_remote == first.steals_remote &&
                    again.steal_fail == first.steal_fail,
                "seeded steal-on rerun must be bit-identical");
  }

  const Arm& mra_off = find("mra", false, "cyclic");
  const Arm& mra_on = find("mra", true, "cyclic");
  std::printf(
      "mra, steal-on vs off (cyclic): makespan %.6fs -> %.6fs (%+.2f%%), core "
      "idle %.6fs -> %.6fs, %llu steals (%llu tasks)\n",
      mra_off.makespan, mra_on.makespan,
      100.0 * (mra_on.makespan - mra_off.makespan) / mra_off.makespan,
      mra_off.core_idle, mra_on.core_idle,
      static_cast<unsigned long long>(mra_on.steals_local + mra_on.steals_remote),
      static_cast<unsigned long long>(mra_on.tasks_stolen));
  TTG_REQUIRE(mra_on.steals_local + mra_on.steals_remote > 0,
              "oversubscribed MRA must exercise the steal path");
  TTG_REQUIRE(mra_on.core_idle < mra_off.core_idle,
              "steal-on must reduce MRA aggregate core idle");
  TTG_REQUIRE(mra_on.makespan < mra_off.makespan,
              "steal-on must improve the MRA makespan");

  if (!json_path.empty()) {
    write_json(json_path, ranks, workers, rpn, arms);
    std::printf("# json: wrote %s (%zu arms)\n", json_path.c_str(), arms.size());
  }
  std::printf(
      "expected: depth-first deque order completes MRA subtrees early, so\n"
      "compress/reconstruct overlap refinement (lower makespan + core idle);\n"
      "off arms are the historical single-queue scheduler, steal counters 0.\n");
  return 0;
}
