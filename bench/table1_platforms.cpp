// Table I: software/hardware configurations of the evaluation platforms,
// realized as the simulator's machine-model presets.
#include "bench_common.hpp"

int main() {
  using namespace ttg;
  support::Table sw("Table I: software configurations (as modeled)",
                    {"Software", "Hawk", "Seawulf"});
  sw.add_row({"MPI", "Open MPI 4.1.1, UCX 1.10.0 (simulated)",
              "Intel MPI 20.0.2 (simulated)"});
  sw.add_row({"Compiler", "GCC 10.2.0 (paper)", "GCC 10.2.0 (paper)"});
  sw.add_row({"HWLOC", "1.11.9 (paper)", "1.11.12 (paper)"});
  sw.add_row({"MKL", "19.1.0 (paper)", "20.0.2 (paper)"});
  sw.print();

  support::Table hw("Machine-model calibration constants",
                    {"Parameter", "Hawk", "Seawulf"});
  const auto h = sim::hawk();
  const auto s = sim::seawulf();
  hw.add_row({"worker threads / node", std::to_string(h.cores_per_node),
              std::to_string(s.cores_per_node)});
  hw.add_row({"per-core DGEMM GF/s", support::fmt(h.core_gflops, 1),
              support::fmt(s.core_gflops, 1)});
  hw.add_row({"node DGEMM GF/s", support::fmt(h.node_gflops(), 0),
              support::fmt(s.node_gflops(), 0)});
  hw.add_row({"NIC bandwidth GB/s", support::fmt(h.nic_bw / 1e9, 1),
              support::fmt(s.nic_bw / 1e9, 1)});
  hw.add_row({"latency us", support::fmt(h.net_latency * 1e6, 2),
              support::fmt(s.net_latency * 1e6, 2)});
  hw.add_row({"bisection factor", support::fmt(h.bisection_factor, 2),
              support::fmt(s.bisection_factor, 2)});
  hw.add_row({"eager threshold B", std::to_string(h.eager_threshold),
              std::to_string(s.eager_threshold)});
  hw.add_row({"copy bandwidth GB/s", support::fmt(h.copy_bw / 1e9, 1),
              support::fmt(s.copy_bw / 1e9, 1)});
  hw.print();
  return 0;
}
