// Fig. 11: structure of the block-sparse matrix used by the bspmm
// experiment. The paper's matrix is the Yukawa operator of the SARS-CoV-2
// main protease (140,440 rows, atom panels capped at 256, 1e-8 Frobenius
// cutoff); ours is the synthetic equivalent with the same construction
// (see DESIGN.md). This bench prints the structure statistics that stand
// in for the sparsity plot.
#include "bench_common.hpp"
#include "sparse/yukawa_gen.hpp"

using namespace ttg;

int main(int argc, char** argv) {
  support::Cli cli("fig11_matrix_structure", "synthetic Yukawa operator structure");
  cli.option("natoms", "2500", "atoms (paper: 2500)");
  cli.option("max-tile", "256", "tile size cap (paper: 256)");
  cli.option("threshold", "1e-8", "Frobenius cutoff (paper: 1e-8)");
  cli.option("box", "240", "cluster diameter parameter");
  if (!cli.parse(argc, argv)) return 0;

  sparse::YukawaParams p;
  p.natoms = static_cast<int>(cli.get_int("natoms"));
  p.max_tile = static_cast<int>(cli.get_int("max-tile"));
  p.threshold = cli.get_double("threshold");
  p.box = cli.get_double("box");
  p.ghost = true;  // structure only; no payload data needed

  bench::preamble("Fig. 11: block-sparse Yukawa operator structure",
                  "SARS-CoV-2 main protease, cc-pVDZ-RIFIT, dim 140,440",
                  "synthetic cluster, " + std::to_string(p.natoms) + " atoms");

  auto m = sparse::yukawa_matrix(p);
  std::printf("%s\n", sparse::structure_report(m).c_str());
  std::printf("total GEMM flops of C = A*A: %s\n",
              support::fmt_si(sparse::multiply_flops(m, m), 2).c_str());
  std::printf(
      "expected shape: clustered decay — near-full occupancy close to the\n"
      "diagonal, decaying with tile distance, as in the paper's plot.\n");
  return 0;
}
