// Multi-tenant serving mode: one World hosting a stream of independent
// POTRF / bspmm / FW jobs through the JobManager (admission control,
// per-job scheduler queues, graph-instantiation cache).
//
// Open loop: jobs arrive on a deterministic Poisson-like schedule (hashed
// exponential gaps) regardless of completions — queueing shows up as
// latency. Closed loop (--mode closed): all jobs are submitted at t=0 and
// the admission bound (--max-concurrent) fixes the multiprogramming level.
// Reported per configuration: throughput (jobs/s of virtual time), p50/p99
// job latency, Jain fairness over per-job slowdowns (latency / solo
// latency of the same graph kind), and graph-cache hit counts. All of it
// is deterministic, so --json output is CI-gated exactly like fig5/fig12.
#include <algorithm>
#include <cmath>
#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "apps/serve/job_graphs.hpp"
#include "bench_common.hpp"
#include "support/rng.hpp"
#include "ttg/ttg.hpp"

using namespace ttg;

namespace {

/// The mixed workload: jobs cycle through these graph shapes.
std::vector<rt::GraphKey> workload_keys() {
  return {
      rt::GraphKey{"potrf", {512, 128, 0, 0}},
      rt::GraphKey{"bspmm", {4, 64, 40, 0}},
      rt::GraphKey{"fw", {384, 128, 0, 0}},
  };
}

[[nodiscard]] double percentile(std::vector<double> v, double q) {
  TTG_REQUIRE(!v.empty(), "percentile of an empty sample");
  std::sort(v.begin(), v.end());
  const auto n = static_cast<double>(v.size());
  const auto idx = static_cast<std::size_t>(
      std::min(n - 1.0, std::max(0.0, std::ceil(q * n) - 1.0)));
  return v[idx];
}

/// Jain's fairness index over per-job slowdowns: 1 = perfectly even,
/// 1/n = one job got everything.
[[nodiscard]] double jain_index(const std::vector<double>& x) {
  double s = 0.0, s2 = 0.0;
  for (const double v : x) {
    s += v;
    s2 += v * v;
  }
  if (s2 <= 0.0) return 1.0;
  return s * s / (static_cast<double>(x.size()) * s2);
}

struct PointResult {
  int nodes = 0;
  const char* backend = "";
  double makespan = 0.0;  ///< virtual time to drain the whole job stream
  double jobs_per_s = 0.0;
  double p50 = 0.0;
  double p99 = 0.0;
  double fairness = 0.0;
  std::uint64_t jobs = 0;
  std::uint64_t job_messages = 0;  ///< sum of per-job attributed messages
  std::uint64_t job_splitmd = 0;   ///< sum of per-job split-metadata sends
  std::uint64_t messages = 0;      ///< global comm messages (includes job 0)
  std::uint64_t splitmd_sends = 0;  ///< global splitmd sends (parsec traffic)
  std::uint64_t cache_hits = 0;
  std::uint64_t cache_misses = 0;
};

struct RunConfig {
  int njobs = 24;
  int max_concurrent = 4;
  bool closed_loop = false;
  double arrival_mean = 0.0;  ///< open loop: mean inter-arrival gap [s]
  std::uint64_t seed = 1;
  rt::FairnessMode fairness = rt::FairnessMode::Strict;
};

/// Deterministic arrival times: exponential gaps from the stateless hash
/// stream, so every (seed, i) pair maps to the same schedule forever.
std::vector<double> arrival_times(const RunConfig& rc) {
  std::vector<double> t(static_cast<std::size_t>(rc.njobs), 0.0);
  if (rc.closed_loop) return t;
  double clock = 0.0;
  for (int i = 0; i < rc.njobs; ++i) {
    const double u = support::hash_uniform(rc.seed, /*stream=*/7, i);
    clock += -rc.arrival_mean * std::log(1.0 - u);
    t[static_cast<std::size_t>(i)] = clock;
  }
  return t;
}

/// Run one configuration's whole job stream; solo[kind] gives the
/// single-job latency used for slowdown normalization (empty = skip
/// fairness, used by the calibration runs themselves).
PointResult run_stream(const sim::MachineModel& m, int nodes,
                       rt::BackendKind backend, const RunConfig& rc,
                       const std::map<std::string, double>& solo) {
  rt::WorldConfig cfg;
  cfg.machine = m;
  cfg.nranks = nodes;
  cfg.backend = backend;
  rt::World world(cfg);
  auto& jm = world.jobs();
  jm.set_max_concurrent(rc.max_concurrent);
  jm.set_fairness(rc.fairness);

  const std::vector<rt::GraphKey> kinds = workload_keys();
  const std::vector<double> arrivals = arrival_times(rc);
  std::vector<std::string> kind_of_job(static_cast<std::size_t>(rc.njobs));

  for (int i = 0; i < rc.njobs; ++i) {
    const rt::GraphKey key = kinds[static_cast<std::size_t>(i) % kinds.size()];
    kind_of_job[static_cast<std::size_t>(i)] = key.kind;
    const std::uint64_t job_seed = rc.seed + static_cast<std::uint64_t>(i) * 1000003ULL;
    world.engine().at(arrivals[static_cast<std::size_t>(i)], [&world, &jm, key,
                                                             job_seed]() {
      rt::JobSpec spec;
      spec.name = key.kind;
      jm.submit(spec, [&world, key, job_seed](rt::JobId id) {
        auto g = apps::serve::acquire_graph(world, key);
        auto* jmp = &world.jobs();
        // on_done runs inside the task body delivering the job's last
        // RESULT tile; the captured shared_ptr keeps the graph alive and
        // is dropped (cycle broken) when finish_one() clears the callback.
        g->start(job_seed, [&world, jmp, id, g]() {
          apps::serve::release_graph(world, g);
          jmp->complete(id);
        });
      });
    });
  }

  const double makespan = world.fence();
  TTG_REQUIRE(jm.completed() == static_cast<std::size_t>(rc.njobs),
              "job stream did not drain");

  PointResult pr;
  pr.nodes = nodes;
  pr.backend = rt::to_string(backend);
  pr.makespan = makespan;
  pr.jobs = static_cast<std::uint64_t>(rc.njobs);
  pr.jobs_per_s = static_cast<double>(rc.njobs) / makespan;
  const std::vector<double> lat = jm.latencies();
  pr.p50 = percentile(lat, 0.50);
  pr.p99 = percentile(lat, 0.99);
  if (!solo.empty()) {
    std::vector<double> slowdowns;
    slowdowns.reserve(lat.size());
    for (std::size_t i = 0; i < lat.size(); ++i)
      slowdowns.push_back(lat[i] / solo.at(kind_of_job[i]));
    pr.fairness = jain_index(slowdowns);
  }
  for (std::size_t i = 0; i < lat.size(); ++i) {
    const auto& js = world.comm().job_stats(static_cast<rt::JobId>(i + 1));
    pr.job_messages += js.messages;
    pr.job_splitmd += js.splitmd_sends;
  }
  pr.messages = world.comm().stats().messages;
  pr.splitmd_sends = world.comm().stats().splitmd_sends;
  pr.cache_hits = jm.cache().stats().hits;
  pr.cache_misses = jm.cache().stats().misses;
  return pr;
}

/// Solo latency per graph kind: a fresh world runs exactly one job of that
/// kind through the same serving path.
std::map<std::string, double> calibrate_solo(const sim::MachineModel& m,
                                             int nodes, rt::BackendKind backend,
                                             std::uint64_t seed) {
  std::map<std::string, double> solo;
  for (const rt::GraphKey& key : workload_keys()) {
    RunConfig rc;
    rc.njobs = 1;
    rc.max_concurrent = 1;
    rc.closed_loop = true;
    rc.seed = seed;
    // A one-job stream's only latency is the solo latency of kinds[0], so
    // pin the workload by running the stream against a one-kind list.
    rt::WorldConfig cfg;
    cfg.machine = m;
    cfg.nranks = nodes;
    cfg.backend = backend;
    rt::World world(cfg);
    auto& jm = world.jobs();
    jm.set_max_concurrent(1);
    rt::JobSpec spec;
    spec.name = key.kind;
    jm.submit(spec, [&world, key, seed](rt::JobId id) {
      auto g = apps::serve::acquire_graph(world, key);
      auto* jmp = &world.jobs();
      g->start(seed, [&world, jmp, id, g]() {
        apps::serve::release_graph(world, g);
        jmp->complete(id);
      });
    });
    world.fence();
    solo[key.kind] = jm.latencies().front();
  }
  return solo;
}

void write_json(const std::string& path, const RunConfig& rc,
                const std::vector<PointResult>& points) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  TTG_REQUIRE(f != nullptr, "cannot open --json output file: " + path);
  std::fprintf(f,
               "{\"bench\":\"serve_jobs\",\"njobs\":%d,\"max_concurrent\":%d,"
               "\"mode\":\"%s\",\"arrival_mean\":%.17g,\"seed\":%llu,",
               rc.njobs, rc.max_concurrent, rc.closed_loop ? "closed" : "open",
               rc.arrival_mean, static_cast<unsigned long long>(rc.seed));
  std::fprintf(f, "\"points\":[");
  for (std::size_t i = 0; i < points.size(); ++i) {
    const auto& p = points[i];
    std::fprintf(f,
                 "%s\n{\"nodes\":%d,\"backend\":\"%s\",\"makespan\":%.17g,"
                 "\"jobs_per_s\":%.17g,\"p50\":%.17g,\"p99\":%.17g,"
                 "\"fairness\":%.17g,\"jobs\":%llu,\"job_messages\":%llu,"
                 "\"job_splitmd\":%llu,\"messages\":%llu,\"splitmd_sends\":%llu,"
                 "\"cache_hits\":%llu,\"cache_misses\":%llu}",
                 i ? "," : "", p.nodes, p.backend, p.makespan, p.jobs_per_s,
                 p.p50, p.p99, p.fairness,
                 static_cast<unsigned long long>(p.jobs),
                 static_cast<unsigned long long>(p.job_messages),
                 static_cast<unsigned long long>(p.job_splitmd),
                 static_cast<unsigned long long>(p.messages),
                 static_cast<unsigned long long>(p.splitmd_sends),
                 static_cast<unsigned long long>(p.cache_hits),
                 static_cast<unsigned long long>(p.cache_misses));
  }
  std::fprintf(f, "\n]}\n");
  std::fclose(f);
}

// --- saturating closed-loop knee sweep (--mode knee) ---
//
// The default open-loop sweep is arrival-limited at default scale: the
// stream never outruns service capacity, so jobs/s measures the arrival
// schedule, not the runtime. The knee sweep instead submits everything at
// t=0 (closed loop) and raises the admission bound until throughput stops
// scaling: the knee is the smallest multiprogramming level whose marginal
// throughput gain over the previous level falls under 5% — beyond it,
// extra concurrency only buys p99 latency.

struct KneePoint {
  int mpl = 0;
  bool knee = false;
  PointResult pr;
};

std::vector<int> parse_levels(const std::string& spec) {
  std::vector<int> levels;
  std::size_t pos = 0;
  while (pos < spec.size()) {
    const std::size_t comma = spec.find(',', pos);
    const std::string tok = spec.substr(pos, comma - pos);
    levels.push_back(std::stoi(tok));
    if (comma == std::string::npos) break;
    pos = comma + 1;
  }
  TTG_REQUIRE(!levels.empty(), "--levels must name at least one admission bound");
  for (std::size_t i = 1; i < levels.size(); ++i)
    TTG_REQUIRE(levels[i] > levels[i - 1], "--levels must be strictly increasing");
  return levels;
}

std::vector<KneePoint> knee_sweep(const sim::MachineModel& m, int nodes,
                                  rt::BackendKind backend, RunConfig rc,
                                  const std::vector<int>& levels) {
  rc.closed_loop = true;
  const auto solo = calibrate_solo(m, nodes, backend, rc.seed);
  std::vector<KneePoint> out;
  for (const int mpl : levels) {
    rc.max_concurrent = mpl;
    KneePoint kp;
    kp.mpl = mpl;
    kp.pr = run_stream(m, nodes, backend, rc, solo);
    out.push_back(kp);
  }
  // Knee: the last level that still bought >= 5% throughput.
  std::size_t knee = 0;
  for (std::size_t i = 1; i < out.size(); ++i) {
    if (out[i].pr.jobs_per_s < out[i - 1].pr.jobs_per_s * 1.05) break;
    knee = i;
  }
  out[knee].knee = true;
  return out;
}

void write_knee_json(const std::string& path, const RunConfig& rc,
                     const std::vector<KneePoint>& points) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  TTG_REQUIRE(f != nullptr, "cannot open --json output file: " + path);
  std::fprintf(f,
               "{\"bench\":\"serve_jobs_knee\",\"njobs\":%d,\"seed\":%llu,"
               "\"points\":[",
               rc.njobs, static_cast<unsigned long long>(rc.seed));
  for (std::size_t i = 0; i < points.size(); ++i) {
    const auto& kp = points[i];
    std::fprintf(f,
                 "%s\n{\"nodes\":%d,\"backend\":\"%s\",\"mpl\":%d,"
                 "\"knee\":%s,\"makespan\":%.17g,\"jobs_per_s\":%.17g,"
                 "\"p50\":%.17g,\"p99\":%.17g,\"fairness\":%.17g}",
                 i ? "," : "", kp.pr.nodes, kp.pr.backend, kp.mpl,
                 kp.knee ? "true" : "false", kp.pr.makespan, kp.pr.jobs_per_s,
                 kp.pr.p50, kp.pr.p99, kp.pr.fairness);
  }
  std::fprintf(f, "\n]}\n");
  std::fclose(f);
}

int run_knee_mode(const support::Cli& cli, RunConfig rc) {
  const int max_nodes = static_cast<int>(cli.get_int("max-nodes"));
  const auto m = sim::hawk();
  const std::vector<int> levels = parse_levels(cli.get("levels"));

  bench::preamble(
      "Serving mode: closed-loop saturation sweep (throughput knee)",
      "n/a (extension): multiprogramming level vs jobs/s and p99",
      std::to_string(rc.njobs) + " jobs at t=0, admission bound swept over " +
          cli.get("levels"));

  support::Table t("serve_jobs knee (closed loop, per nodes x backend)",
                   {"nodes", "backend", "mpl", "jobs/s", "p50[s]", "p99[s]",
                    "fairness", "knee"});
  std::vector<KneePoint> all;
  for (int nodes : {4, 8}) {
    if (nodes > max_nodes) break;
    for (const rt::BackendKind b :
         {rt::BackendKind::Parsec, rt::BackendKind::Madness}) {
      const auto pts = knee_sweep(m, nodes, b, rc, levels);
      for (const auto& kp : pts) {
        t.add_row({std::to_string(nodes), kp.pr.backend, std::to_string(kp.mpl),
                   support::fmt(kp.pr.jobs_per_s, 1), support::fmt(kp.pr.p50, 4),
                   support::fmt(kp.pr.p99, 4), support::fmt(kp.pr.fairness, 3),
                   kp.knee ? "<-- knee" : ""});
        all.push_back(kp);
      }
    }
  }
  t.print();
  const std::string json_path = cli.get("json");
  if (!json_path.empty()) {
    write_knee_json(json_path, rc, all);
    std::printf("# json: wrote %s (%zu points)\n", json_path.c_str(), all.size());
  }
  std::printf(
      "expected shape: jobs/s climbs with the admission bound until the\n"
      "ranks saturate, then flattens while p99 keeps inflating (queueing\n"
      "moves from the admission queue into the schedulers); the knee marks\n"
      "the last level that still bought >= 5%% throughput.\n");
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  support::Cli cli("serve_jobs",
                   "multi-tenant serving: concurrent POTRF/bspmm/FW jobs over "
                   "one World");
  cli.option("jobs", "24", "jobs in the arrival stream");
  cli.option("max-nodes", "8", "largest node count to run");
  cli.option("max-concurrent", "4", "admission bound (running jobs per world)");
  cli.option("arrival", "0.02", "open-loop mean inter-arrival gap [s]");
  cli.option("mode", "open", "arrival mode: open | closed | knee");
  cli.option("levels", "1,2,4,8,16,32",
             "knee mode: admission bounds to sweep (strictly increasing)");
  cli.option("fairness", "strict", "scheduler policy: strict | wrr");
  cli.option("seed", "1", "base seed for arrivals and job inputs");
  cli.option("json", "", "write deterministic results as JSON to this path");
  if (!cli.parse(argc, argv)) return 0;

  RunConfig rc;
  rc.njobs = static_cast<int>(cli.get_int("jobs"));
  rc.max_concurrent = static_cast<int>(cli.get_int("max-concurrent"));
  rc.closed_loop = cli.get("mode") == "closed";
  rc.arrival_mean = std::stod(cli.get("arrival"));
  rc.seed = static_cast<std::uint64_t>(cli.get_int("seed"));
  rc.fairness = cli.get("fairness") == "wrr" ? rt::FairnessMode::WeightedRR
                                             : rt::FairnessMode::Strict;
  if (cli.get("mode") == "knee") return run_knee_mode(cli, rc);
  const int max_nodes = static_cast<int>(cli.get_int("max-nodes"));
  const auto m = sim::hawk();

  bench::preamble(
      "Serving mode: mixed POTRF+bspmm+FW job stream",
      "n/a (extension): N concurrent template graphs over one runtime",
      std::to_string(rc.njobs) + " jobs, " +
          (rc.closed_loop ? std::string("closed loop") : "open loop (mean gap " +
           cli.get("arrival") + "s)") +
          ", admission bound " + std::to_string(rc.max_concurrent));

  support::Table t("serve_jobs (per nodes x backend)",
                   {"nodes", "backend", "jobs/s", "p50[s]", "p99[s]", "fairness",
                    "cache h/m"});
  std::vector<PointResult> points;
  for (int nodes : {4, 8}) {
    if (nodes > max_nodes) break;
    for (const rt::BackendKind b : {rt::BackendKind::Parsec, rt::BackendKind::Madness}) {
      const auto solo = calibrate_solo(m, nodes, b, rc.seed);
      const PointResult pr = run_stream(m, nodes, b, rc, solo);
      points.push_back(pr);
      t.add_row({std::to_string(nodes), pr.backend, support::fmt(pr.jobs_per_s, 1),
                 support::fmt(pr.p50, 4), support::fmt(pr.p99, 4),
                 support::fmt(pr.fairness, 3),
                 std::to_string(pr.cache_hits) + "/" +
                     std::to_string(pr.cache_misses)});
    }
  }
  t.print();
  const std::string json_path = cli.get("json");
  if (!json_path.empty()) {
    write_json(json_path, rc, points);
    std::printf("# json: wrote %s (%zu points)\n", json_path.c_str(), points.size());
  }
  std::printf(
      "expected shape: cache hits ~ jobs - distinct kinds; fairness near 1\n"
      "under strict ordering with a generous admission bound, dropping as the\n"
      "arrival rate outruns service capacity (queueing inflates p99 first).\n");
  return 0;
}
