// Ablation: data-lifecycle copy semantics (CopyPolicy knobs).
//
// Sweeps the two DataCopy policy knobs — zero-copy local delivery and the
// serialize-once broadcast cache — independently on both backends, over a
// Fig. 5-style POTRF (splitmd disabled so whole-object sends exercise the
// archive path) and a Fig. 12-style block-sparse GEMM. Reports the copy
// counters next to makespan and sender-side CPU so the cost of each copy
// class is attributable: local_copies vs local_shares for the zero-copy
// knob, serializations vs serialize_hits for the cache knob.
#include <cstdio>
#include <string>
#include <vector>

#include "apps/bspmm/bspmm_ttg.hpp"
#include "apps/cholesky/cholesky_ttg.hpp"
#include "bench_common.hpp"
#include "sparse/yukawa_gen.hpp"
#include "ttg/ttg.hpp"

using namespace ttg;

namespace {

/// One (workload, backend, policy) cell of the sweep.
struct Cell {
  std::string workload;
  const char* backend = "";
  int zero_copy = 0;       ///< forced zero_copy_local value
  int ser_once = 0;        ///< forced serialize_once value
  double makespan = 0.0;
  double sender_cpu = 0.0; ///< CPU charged in task bodies (send staging)
  std::uint64_t messages = 0;
  std::uint64_t splitmd_sends = 0;
  std::uint64_t local_copies = 0;
  std::uint64_t local_shares = 0;
  std::uint64_t serializations = 0;
  std::uint64_t serialize_hits = 0;
};

template <typename RunFn>
Cell run_cell(const std::string& workload, const sim::MachineModel& m, int nodes,
              rt::BackendKind backend, int zero_copy, int ser_once, RunFn&& body) {
  rt::WorldConfig cfg;
  cfg.machine = m;
  cfg.nranks = nodes;
  cfg.backend = backend;
  cfg.enable_splitmd = false;  // force the whole-object/archive path
  cfg.zero_copy_local = zero_copy;
  cfg.serialize_once = ser_once;
  rt::World world(cfg);
  world.enable_tracing();  // for per-rank charged (sender) CPU
  const double makespan = body(world);
  const auto& cs = world.comm().stats();
  return Cell{workload,
              rt::to_string(backend),
              zero_copy,
              ser_once,
              makespan,
              world.tracer().totals().charged_cpu,
              cs.messages,
              cs.splitmd_sends,
              cs.local_copies,
              cs.local_shares,
              cs.serializations,
              cs.serialize_hits};
}

void write_json(const std::string& path, int nodes, const std::vector<Cell>& cells) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  TTG_REQUIRE(f != nullptr, "cannot open --json output file: " + path);
  std::fprintf(f, "{\"bench\":\"ablation_copies\",\"nodes\":%d,\"cells\":[", nodes);
  for (std::size_t i = 0; i < cells.size(); ++i) {
    const auto& c = cells[i];
    std::fprintf(
        f,
        "%s\n{\"workload\":\"%s\",\"backend\":\"%s\",\"zero_copy_local\":%d,"
        "\"serialize_once\":%d,\"makespan\":%.17g,\"sender_cpu\":%.17g,"
        "\"messages\":%llu,\"splitmd_sends\":%llu,\"local_copies\":%llu,"
        "\"local_shares\":%llu,\"serializations\":%llu,\"serialize_hits\":%llu}",
        i ? "," : "", c.workload.c_str(), c.backend, c.zero_copy, c.ser_once,
        c.makespan, c.sender_cpu, static_cast<unsigned long long>(c.messages),
        static_cast<unsigned long long>(c.splitmd_sends),
        static_cast<unsigned long long>(c.local_copies),
        static_cast<unsigned long long>(c.local_shares),
        static_cast<unsigned long long>(c.serializations),
        static_cast<unsigned long long>(c.serialize_hits));
  }
  std::fprintf(f, "\n]}\n");
  std::fclose(f);
}

}  // namespace

int main(int argc, char** argv) {
  support::Cli cli("ablation_copies",
                   "zero-copy-local x serialize-once sweep on both backends");
  cli.option("nodes", "8", "node count");
  cli.option("n", "2048", "POTRF matrix dimension");
  cli.option("bs", "128", "POTRF tile size");
  cli.option("natoms", "96", "bspmm Yukawa atoms");
  cli.option("json", "", "write the full sweep as JSON to this path");
  if (!cli.parse(argc, argv)) return 0;
  const int nodes = static_cast<int>(cli.get_int("nodes"));
  const int n = static_cast<int>(cli.get_int("n"));
  const int bs = static_cast<int>(cli.get_int("bs"));
  const std::string json_path = cli.get("json");
  const auto m = sim::hawk();

  bench::preamble("Ablation: DataCopy policy (zero-copy local x serialize-once)",
                  "paper Section II-D data-ownership / serialization costs",
                  std::to_string(nodes) + " Hawk nodes, splitmd disabled " +
                      "(whole-object archive path)");

  auto ghost = linalg::ghost_matrix(n, bs);
  auto potrf = [&](rt::World& w) {
    apps::cholesky::Options opt;
    opt.collect = false;
    return apps::cholesky::run(w, ghost, opt).makespan;
  };

  sparse::YukawaParams p;
  p.natoms = static_cast<int>(cli.get_int("natoms"));
  p.max_tile = 128;
  p.ghost = true;
  auto a = sparse::yukawa_matrix(p);
  auto bspmm = [&](rt::World& w) {
    apps::bspmm::Options opt;
    opt.collect = false;
    return apps::bspmm::run(w, a, a, opt).makespan;
  };

  const std::string potrf_name =
      "potrf " + std::to_string(n) + "/" + std::to_string(bs);
  const std::string bspmm_name = "bspmm " + std::to_string(p.natoms) + " atoms";

  std::vector<Cell> cells;
  support::Table t("copy-policy sweep",
                   {"workload", "backend", "zcl", "ser1", "makespan[s]",
                    "sender cpu[s]", "msgs", "loc copy", "loc share", "serial.",
                    "cache hit"});
  for (auto backend : {rt::BackendKind::Parsec, rt::BackendKind::Madness}) {
    for (int zcl : {0, 1}) {
      for (int so : {0, 1}) {
        for (int wl : {0, 1}) {
          const auto& name = wl ? bspmm_name : potrf_name;
          Cell c = wl ? run_cell(name, m, nodes, backend, zcl, so, bspmm)
                      : run_cell(name, m, nodes, backend, zcl, so, potrf);
          t.add_row({c.workload, c.backend, std::to_string(zcl), std::to_string(so),
                     support::fmt(c.makespan, 4), support::fmt(c.sender_cpu, 4),
                     std::to_string(c.messages), std::to_string(c.local_copies),
                     std::to_string(c.local_shares), std::to_string(c.serializations),
                     std::to_string(c.serialize_hits)});
          cells.push_back(std::move(c));
        }
      }
    }
  }
  t.print();

  // Headline comparison: the PaRSEC default policy (both knobs on) vs the
  // fully ablated policy, per workload.
  auto find = [&](const std::string& wl, const char* be, int zcl, int so) -> const Cell& {
    for (const auto& c : cells)
      if (c.workload == wl && std::string(c.backend) == be && c.zero_copy == zcl &&
          c.ser_once == so)
        return c;
    TTG_CHECK(false, "sweep cell missing");
    return cells.front();
  };
  for (const auto& wl : {potrf_name, bspmm_name}) {
    const Cell& on = find(wl, "parsec", 1, 1);
    const Cell& off = find(wl, "parsec", 0, 0);
    std::printf(
        "parsec %-18s serialize-once+zero-copy: sender cpu %.4fs -> %.4fs "
        "(%.2fx), makespan %.4fs -> %.4fs (%.2fx)\n",
        wl.c_str(), off.sender_cpu, on.sender_cpu,
        on.sender_cpu > 0 ? off.sender_cpu / on.sender_cpu : 0.0, off.makespan,
        on.makespan, on.makespan > 0 ? off.makespan / on.makespan : 0.0);
  }
  if (!json_path.empty()) {
    write_json(json_path, nodes, cells);
    std::printf("# json: wrote %s (%zu cells)\n", json_path.c_str(), cells.size());
  }
  std::printf(
      "expected: with both knobs on (the PaRSEC default), broadcasts serialize\n"
      "once (cache hits) and local sends share instead of copy, so sender CPU\n"
      "and makespan drop; the MADNESS default (both off) is the upper bound.\n");
  return 0;
}
