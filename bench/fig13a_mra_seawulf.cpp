// Fig. 13a: MRA strong scaling on Seawulf (up to 32 nodes).
#include "fig13_common.hpp"

int main(int argc, char** argv) {
  return ttg::bench::run_fig13("Fig. 13a: MRA strong scaling, Seawulf",
                               ttg::sim::seawulf(), {1, 2, 4, 8, 16, 32}, argc, argv);
}
