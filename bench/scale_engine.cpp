// Engine scale sweep behind the scale-smoke CI gate: serial reference engine
// vs the sharded (lane + epoch barrier) engine, 256 to 4096 simulated ranks.
//
// Two phases, two claims:
//
//   * potrf — ghost POTRF, weak-scaled tiling. Pins *determinism* (makespan,
//     task/event/message counts are exact and identical between the two
//     engine modes — the sharded engine is bit-identical to serial by
//     construction; tests/test_scale_equiv.cpp) and *memory* (peak live
//     payload bytes per rank stays flat as ranks grow: ghost tiles are
//     synthesized on demand, O(1) host state per live task). Events/sec is
//     reported for both modes; at this workload's event density the serial
//     heap holds only O(ranks) events (the NICs queue work internally), so
//     the two engines run neck and neck on one host core — this phase is a
//     correctness-at-scale gate, not the throughput gate.
//
//   * storm — the throughput gate. A rank-local timer storm keeps a constant
//     2^21 events in flight (self-rescheduling chains, the population a
//     timer-per-message transport sustains at scale), which is where a
//     serial DES actually hurts: every pop percolates a ~100-byte event
//     through a multi-megabyte cold heap. The sharded engine partitions the
//     same population into per-lane heaps that stay cache-resident while a
//     lane drains its epoch window, and the storm is all same-lane traffic,
//     so the epoch barrier is near-empty. Sharded events/sec must be >= 2x
//     serial at >= 1024 ranks (gated via the "speedup" floor in
//     ci/BENCH_scale_baseline.json); final virtual time and event counts
//     are exact and identical between modes.
//
// Events/sec is wall-clock and therefore machine-dependent: the JSON gate
// gives absolute rates a very wide tolerance and pins the speedup *ratio*
// (same host, same second) plus all counts and makespans exactly.
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "apps/cholesky/cholesky_ttg.hpp"
#include "bench_common.hpp"
#include "sim/engine.hpp"
#include "ttg/ttg.hpp"

using namespace ttg;

namespace {

/// Process peak RSS in MB from /proc/self/status (0 where unavailable).
/// Informational only: it is a process-wide high watermark, monotone across
/// the sweep — the deterministic per-rank gate is DataTracker's watermark.
double peak_rss_mb() {
  std::FILE* f = std::fopen("/proc/self/status", "r");
  if (f == nullptr) return 0.0;
  char line[256];
  double mb = 0.0;
  while (std::fgets(line, sizeof line, f) != nullptr) {
    long kb = 0;
    if (std::sscanf(line, "VmHWM: %ld kB", &kb) == 1) {
      mb = static_cast<double>(kb) / 1024.0;
      break;
    }
  }
  std::fclose(f);
  return mb;
}

struct Point {
  int ranks = 0;
  int nt = 0;  ///< tile rows/cols of the swept matrix
  const char* mode = "";
  int lanes = 0;
  double makespan = 0.0;          ///< virtual seconds (exact)
  std::uint64_t tasks = 0;        ///< task bodies executed (exact)
  std::uint64_t events = 0;       ///< engine events processed (exact)
  std::uint64_t net_messages = 0; ///< payload transfers on the wire (exact)
  double events_per_sec = 0.0;    ///< host throughput (wall-clock)
  std::uint64_t peak_live_per_rank = 0;  ///< max over ranks of the DataCopy
                                         ///< live-bytes high watermark (exact)
  double rss_mb = 0.0;            ///< process VmHWM after this run (info)
};

Point run_point(int ranks, int nt, int bs, int lanes) {
  rt::WorldConfig cfg;
  cfg.nranks = ranks;
  cfg.workers_per_rank = 8;  // scheduler state lean at thousands of ranks
  cfg.ranks_per_node = 4;
  cfg.engine_lanes = lanes;
  rt::World world(cfg);
  const auto t0 = std::chrono::steady_clock::now();
  const auto res = apps::cholesky::run_ghost(world, nt * bs, bs);
  const auto t1 = std::chrono::steady_clock::now();
  const double wall = std::chrono::duration<double>(t1 - t0).count();

  Point p;
  p.ranks = ranks;
  p.nt = nt;
  p.mode = lanes > 0 ? "sharded" : "serial";
  p.lanes = lanes;
  p.makespan = res.makespan;
  p.tasks = res.tasks;
  p.events = world.engine().events_processed();
  p.net_messages = world.network().stats().messages;
  p.events_per_sec = static_cast<double>(p.events) / (wall > 0.0 ? wall : 1e-9);
  for (int r = 0; r < ranks; ++r) {
    const auto& rs = world.data_tracker().rank_stats(r);
    if (rs.high_watermark > p.peak_live_per_rank)
      p.peak_live_per_rank = rs.high_watermark;
  }
  p.rss_mb = peak_rss_mb();
  return p;
}

// ---- storm phase ----------------------------------------------------------

constexpr double kStormDt = 1.2e-6;       ///< mean reschedule interval [s]
constexpr std::uint64_t kStormPending = 1ull << 21;  ///< in-flight events
constexpr int kStormHops = 3;             ///< reschedules per chain

std::uint64_t mix(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

/// One hop of a self-rescheduling chain. The remaining-hop counter lives in
/// the low 4 bits of the PRNG state, so the closure captures 16 bytes and
/// fits std::function's small-buffer storage — the storm measures heap
/// behavior, not allocator behavior.
std::function<void()> storm_hop(sim::Engine* e, std::uint64_t s) {
  return [e, s] {
    const int h = static_cast<int>(s & 15u);
    if (h == 0) return;
    const std::uint64_t s2 = (mix(s) & ~15ull) | static_cast<unsigned>(h - 1);
    const double u = static_cast<double>(s2 >> 11) * 0x1p-53;
    e->after(kStormDt * (0.25 + 1.5 * u), storm_hop(e, s2));
  };
}

struct StormRun {
  double end = 0.0;             ///< final virtual time (exact)
  std::uint64_t events = 0;     ///< events processed (exact)
  double events_per_sec = 0.0;  ///< host throughput (wall-clock)
  std::uint64_t epochs = 0;     ///< sharded epochs (exact; 0 for serial)
  double barrier_fraction = 0.0;  ///< barrier wall / run wall (wall-clock)
  double epochs_per_sec = 0.0;    ///< epoch turnover (wall-clock)
};

StormRun run_storm(int ranks, int lanes, int threads) {
  sim::EngineConfig cfg;
  cfg.lanes = lanes;
  cfg.threads = threads;
  cfg.nranks = ranks;
  cfg.lookahead = kStormDt;
  sim::Engine eng(cfg);
  const int depth = static_cast<int>(kStormPending / static_cast<unsigned>(ranks));
  for (int r = 0; r < ranks; ++r) {
    for (int d = 0; d < depth; ++d) {
      const std::uint64_t s0 = mix(static_cast<std::uint64_t>(r) * 65551u + d);
      const std::uint64_t s = (s0 & ~15ull) | static_cast<unsigned>(kStormHops);
      const double u = static_cast<double>(s >> 11) * 0x1p-53;
      eng.at_on(eng.lane_of(r), kStormDt * (0.25 + 1.5 * u), storm_hop(&eng, s));
    }
  }
  const auto t0 = std::chrono::steady_clock::now();
  StormRun sr;
  sr.end = eng.run();
  const auto t1 = std::chrono::steady_clock::now();
  const double wall = std::chrono::duration<double>(t1 - t0).count();
  sr.events = eng.events_processed();
  sr.events_per_sec = static_cast<double>(sr.events) / (wall > 0.0 ? wall : 1e-9);
  if (lanes > 0) {
    const auto es = eng.stats();
    sr.epochs = es.epochs;
    sr.barrier_fraction =
        es.run_seconds > 0.0 ? es.barrier_seconds / es.run_seconds : 0.0;
    sr.epochs_per_sec =
        static_cast<double>(sr.epochs) / (wall > 0.0 ? wall : 1e-9);
  }
  return sr;
}

// ---- steady-state allocation check ---------------------------------------
//
// The engine's closures must allocate nothing once warm: small captures live
// in EventFn's inline buffer, oversized ones recycle through the per-lane
// FnArena free lists. Run the same event wave twice on one engine with
// deliberately fat closures and require both the arena slab count and the
// heap-fallback count to stay exactly flat across the second wave.

constexpr std::uint64_t kAllocPending = 1ull << 17;

/// A self-rescheduling hop whose capture overflows EventFn's inline buffer,
/// forcing every reschedule through the arena path.
struct FatHop {
  sim::Engine* eng = nullptr;
  std::uint64_t s = 0;
  std::uint64_t pad[7] = {};
  void operator()() const {
    const int h = static_cast<int>(s & 15u);
    if (h == 0) return;
    FatHop nxt = *this;
    nxt.s = (mix(s) & ~15ull) | static_cast<unsigned>(h - 1);
    const double u = static_cast<double>(nxt.s >> 11) * 0x1p-53;
    eng->after(kStormDt * (0.25 + 1.5 * u), nxt);
  }
};
static_assert(sizeof(FatHop) > sim::EventFn::kInlineSize,
              "FatHop must overflow the inline buffer to exercise the arena");
static_assert(sizeof(FatHop) <= sim::FnArena::kPayload,
              "FatHop must fit an arena block (not the heap fallback)");

struct AllocPoint {
  int ranks = 0;
  int lanes = 0;
  std::uint64_t events = 0;        ///< total over both waves (exact)
  double end = 0.0;                ///< final virtual time (exact)
  std::uint64_t fn_arena_slabs = 0;  ///< slabs after warm-up (exact)
  std::uint64_t arena_slab_delta = 0;  ///< wave-2 slab growth (exact: 0)
  std::uint64_t fn_heap_delta = 0;     ///< wave-2 heap fallbacks (exact: 0)
};

AllocPoint run_alloc_check(int ranks, int lanes) {
  sim::EngineConfig cfg;
  cfg.lanes = lanes;
  cfg.threads = 1;
  cfg.nranks = ranks;
  cfg.lookahead = kStormDt;
  sim::Engine eng(cfg);
  const int depth = static_cast<int>(kAllocPending / static_cast<unsigned>(ranks));
  // Both waves use identical seeds (and therefore identical relative event
  // patterns): the second wave's per-arena peak block population exactly
  // matches the warm-up's, so any slab growth is a recycling bug, not jitter.
  const auto seed = [&] {
    for (int r = 0; r < ranks; ++r) {
      for (int d = 0; d < depth; ++d) {
        const std::uint64_t s0 = mix(static_cast<std::uint64_t>(r) * 65551u + d);
        const std::uint64_t s = (s0 & ~15ull) | static_cast<unsigned>(kStormHops);
        const double u = static_cast<double>(s >> 11) * 0x1p-53;
        eng.after_on(eng.lane_of(r), kStormDt * (0.25 + 1.5 * u),
                     FatHop{&eng, s});
      }
    }
  };
  seed();
  eng.run();
  const auto warm = eng.stats();
  seed();
  AllocPoint a;
  a.ranks = ranks;
  a.lanes = lanes;
  a.end = eng.run();
  a.events = eng.events_processed();
  const auto steady = eng.stats();
  a.fn_arena_slabs = steady.fn_arena_slabs;
  a.arena_slab_delta = steady.fn_arena_slabs - warm.fn_arena_slabs;
  a.fn_heap_delta = steady.fn_heap_allocs - warm.fn_heap_allocs;
  TTG_CHECK(a.arena_slab_delta == 0,
            "closure arena grew at steady state (wave 2 allocated slabs)");
  TTG_CHECK(a.fn_heap_delta == 0,
            "closure fell back to the heap at steady state");
  return a;
}

struct StormPoint {
  int ranks = 0;
  int lanes = 0;
  std::uint64_t pending = 0;
  std::uint64_t events = 0;  ///< identical between modes (exact)
  double end = 0.0;          ///< identical between modes (exact)
  double serial_evps = 0.0;
  double sharded_evps = 0.0;
  double speedup = 0.0;  ///< sharded/serial, gated >= 2.0 in CI
  std::uint64_t epochs = 0;       ///< sharded epoch count (exact)
  double barrier_fraction = 0.0;  ///< sharded barrier share (wall-clock)
  double epochs_per_sec = 0.0;    ///< sharded epoch turnover (wall-clock)
};

struct ThreadPoint {
  int ranks = 0;
  int lanes = 0;
  int threads = 0;
  std::uint64_t pending = 0;
  std::uint64_t events = 0;  ///< identical across thread counts (exact)
  double end = 0.0;          ///< identical across thread counts (exact)
  double events_per_sec = 0.0;
  std::uint64_t epochs = 0;       ///< identical across thread counts (exact)
  double barrier_fraction = 0.0;
  double epochs_per_sec = 0.0;
  double threads_speedup = 0.0;  ///< evps vs the threads=1 run of this sweep
  bool gate_speedup = false;     ///< emit threads_speedup to JSON (host has
                                 ///< enough cores for the floor to be fair)
};

void write_json(const std::string& path, int bs, const std::vector<Point>& potrf,
                const std::vector<StormPoint>& storm,
                const std::vector<ThreadPoint>& tpoints,
                const std::vector<AllocPoint>& apoints) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  TTG_REQUIRE(f != nullptr, "cannot open --json output file: " + path);
  std::fprintf(f, "{\"bench\":\"scale_engine\",\"bs\":%d,\"points\":[", bs);
  bool first = true;
  for (const auto& p : potrf) {
    std::fprintf(f,
                 "%s\n{\"phase\":\"potrf\",\"ranks\":%d,\"mode\":\"%s\",\"nt\":%d,"
                 "\"lanes\":%d,\"makespan\":%.17g,\"tasks\":%llu,\"events\":%llu,"
                 "\"net_messages\":%llu,\"events_per_sec\":%.17g,"
                 "\"peak_live_per_rank\":%llu,\"rss_mb\":%.3f}",
                 first ? "" : ",", p.ranks, p.mode, p.nt, p.lanes, p.makespan,
                 static_cast<unsigned long long>(p.tasks),
                 static_cast<unsigned long long>(p.events),
                 static_cast<unsigned long long>(p.net_messages), p.events_per_sec,
                 static_cast<unsigned long long>(p.peak_live_per_rank), p.rss_mb);
    first = false;
  }
  for (const auto& s : storm) {
    std::fprintf(f,
                 "%s\n{\"phase\":\"storm\",\"ranks\":%d,\"mode\":\"both\","
                 "\"lanes\":%d,\"pending\":%llu,\"events\":%llu,\"end\":%.17g,"
                 "\"serial_events_per_sec\":%.17g,\"sharded_events_per_sec\":%.17g,"
                 "\"speedup\":%.17g,\"epochs\":%llu,\"barrier_fraction\":%.17g,"
                 "\"epochs_per_sec\":%.17g}",
                 first ? "" : ",", s.ranks, s.lanes,
                 static_cast<unsigned long long>(s.pending),
                 static_cast<unsigned long long>(s.events), s.end, s.serial_evps,
                 s.sharded_evps, s.speedup,
                 static_cast<unsigned long long>(s.epochs), s.barrier_fraction,
                 s.epochs_per_sec);
    first = false;
  }
  for (const auto& t : tpoints) {
    std::fprintf(f,
                 "%s\n{\"phase\":\"storm_threads\",\"ranks\":%d,\"mode\":\"t%d\","
                 "\"lanes\":%d,\"threads\":%d,\"pending\":%llu,\"events\":%llu,"
                 "\"end\":%.17g,\"events_per_sec\":%.17g,\"epochs\":%llu,"
                 "\"barrier_fraction\":%.17g,\"epochs_per_sec\":%.17g",
                 first ? "" : ",", t.ranks, t.threads, t.lanes, t.threads,
                 static_cast<unsigned long long>(t.pending),
                 static_cast<unsigned long long>(t.events), t.end,
                 t.events_per_sec, static_cast<unsigned long long>(t.epochs),
                 t.barrier_fraction, t.epochs_per_sec);
    if (t.gate_speedup)
      std::fprintf(f, ",\"threads_speedup\":%.17g", t.threads_speedup);
    std::fprintf(f, "}");
    first = false;
  }
  for (const auto& a : apoints) {
    std::fprintf(f,
                 "%s\n{\"phase\":\"storm_alloc\",\"ranks\":%d,\"mode\":\"fat\","
                 "\"lanes\":%d,\"events\":%llu,\"end\":%.17g,"
                 "\"fn_arena_slabs\":%llu,\"arena_slab_delta\":%llu,"
                 "\"fn_heap_delta\":%llu}",
                 first ? "" : ",", a.ranks, a.lanes,
                 static_cast<unsigned long long>(a.events), a.end,
                 static_cast<unsigned long long>(a.fn_arena_slabs),
                 static_cast<unsigned long long>(a.arena_slab_delta),
                 static_cast<unsigned long long>(a.fn_heap_delta));
    first = false;
  }
  std::fprintf(f, "\n]}\n");
  std::fclose(f);
}

}  // namespace

int main(int argc, char** argv) {
  support::Cli cli("scale_engine",
                   "serial vs sharded engine at 256..4096 simulated ranks");
  cli.option("max-ranks", "4096", "largest rank count to sweep");
  cli.option("bs", "256", "tile size (ghost tiles: affects virtual time only)");
  cli.option("json", "",
             "write deterministic results (counts, makespans) + wall-clock "
             "events/sec as JSON to this path");
  if (!cli.parse(argc, argv)) return 0;
  const int max_ranks = static_cast<int>(cli.get_int("max-ranks"));
  const int bs = static_cast<int>(cli.get_int("bs"));
  const std::string json_path = cli.get("json");

  bench::preamble("Engine scale sweep: ghost POTRF + timer storm, serial vs sharded",
                  "n/a (simulator-only scaling study)",
                  "ranks 256..." + std::to_string(max_ranks) +
                      ", weak-scaled tiling, 1 host core");

  support::Table pt("potrf: determinism + flat memory (events/sec informational)",
                    {"ranks", "nt", "tasks", "events", "serial ev/s",
                     "sharded ev/s", "ratio", "peak live/rank [B]"});
  std::vector<Point> potrf;
  std::uint64_t peak_min = 0, peak_max = 0;
  for (int ranks : {256, 512, 1024, 2048, 4096}) {
    if (ranks > max_ranks) break;
    // Weak-ish scaling: tile count grows with sqrt(ranks) so work per rank
    // stays in the same ballpark across the sweep.
    const int nt = 2 * static_cast<int>(std::lround(std::sqrt(ranks)));
    const int lanes = std::min(64, ranks / 16);
    const Point serial = run_point(ranks, nt, bs, 0);
    const Point sharded = run_point(ranks, nt, bs, lanes);
    potrf.push_back(serial);
    potrf.push_back(sharded);
    TTG_CHECK(serial.makespan == sharded.makespan &&
                  serial.events == sharded.events &&
                  serial.net_messages == sharded.net_messages &&
                  serial.peak_live_per_rank == sharded.peak_live_per_rank,
              "sharded run diverged from the serial reference");
    peak_min = peak_min == 0 ? serial.peak_live_per_rank
                             : std::min(peak_min, serial.peak_live_per_rank);
    peak_max = std::max(peak_max, serial.peak_live_per_rank);
    pt.add_row({std::to_string(ranks), std::to_string(nt),
                std::to_string(serial.tasks), std::to_string(serial.events),
                support::fmt(serial.events_per_sec / 1e6, 2) + "M",
                support::fmt(sharded.events_per_sec / 1e6, 2) + "M",
                support::fmt(sharded.events_per_sec / serial.events_per_sec, 2) + "x",
                std::to_string(sharded.peak_live_per_rank)});
  }
  pt.print();
  // Flat memory: the per-rank live-byte watermark may wiggle with the tile
  // layout but must not grow with the rank count (it is deterministic, so
  // this bound is stable wherever the bench runs).
  TTG_CHECK(peak_max <= 2 * peak_min,
            "peak live bytes per rank grew with the rank count");

  support::Table st("storm: 2^21 in-flight events, throughput gate (>= 2x)",
                    {"ranks", "lanes", "pending/rank", "events", "serial ev/s",
                     "sharded ev/s", "speedup", "epochs", "barrier"});
  std::vector<StormPoint> storm;
  for (int ranks : {1024, 2048, 4096}) {
    if (ranks > max_ranks) break;
    const int lanes = std::min(128, ranks / 8);
    const StormRun serial = run_storm(ranks, 0, 1);
    const StormRun sharded = run_storm(ranks, lanes, 1);
    TTG_CHECK(serial.end == sharded.end && serial.events == sharded.events,
              "sharded storm diverged from the serial reference");
    StormPoint s;
    s.ranks = ranks;
    s.lanes = lanes;
    s.pending = kStormPending;
    s.events = serial.events;
    s.end = serial.end;
    s.serial_evps = serial.events_per_sec;
    s.sharded_evps = sharded.events_per_sec;
    s.speedup = sharded.events_per_sec / serial.events_per_sec;
    s.epochs = sharded.epochs;
    s.barrier_fraction = sharded.barrier_fraction;
    s.epochs_per_sec = sharded.epochs_per_sec;
    storm.push_back(s);
    st.add_row({std::to_string(ranks), std::to_string(lanes),
                std::to_string(kStormPending / static_cast<unsigned>(ranks)),
                std::to_string(s.events),
                support::fmt(s.serial_evps / 1e6, 2) + "M",
                support::fmt(s.sharded_evps / 1e6, 2) + "M",
                support::fmt(s.speedup, 2) + "x", std::to_string(s.epochs),
                support::fmt(100.0 * s.barrier_fraction, 1) + "%"});
  }
  st.print();

  // Thread sweep: the same storm at a fixed shape, draining lanes and
  // redistributing barriers on 1..8 OS threads. The parallel barrier's
  // claim: counts, epochs and the final virtual time are bit-identical at
  // every thread count, and on a host with >= 4 cores the 4-thread run
  // clears an additional >= 1.5x over 1 thread (gated via the
  // "threads_speedup" floor — the field is only emitted where the hardware
  // can honestly answer, so single-core CI hosts skip the floor, and the
  // baseline must be refreshed on the same class of host).
  std::vector<ThreadPoint> tpoints;
  std::vector<AllocPoint> apoints;
  if (max_ranks >= 1024) {
    const int ranks = 1024;
    const int lanes = 128;
    const bool can_gate = std::thread::hardware_concurrency() >= 4;
    support::Table tt("storm thread sweep: parallel drain + barrier at " +
                          std::to_string(ranks) + " ranks",
                      {"threads", "events", "epochs", "ev/s", "epochs/s",
                       "barrier", "vs 1T"});
    double evps1 = 0.0;
    for (int threads : {1, 2, 4, 8}) {
      const StormRun r = run_storm(ranks, lanes, threads);
      ThreadPoint t;
      t.ranks = ranks;
      t.lanes = lanes;
      t.threads = threads;
      t.pending = kStormPending;
      t.events = r.events;
      t.end = r.end;
      t.events_per_sec = r.events_per_sec;
      t.epochs = r.epochs;
      t.barrier_fraction = r.barrier_fraction;
      t.epochs_per_sec = r.epochs_per_sec;
      if (threads == 1) evps1 = r.events_per_sec;
      t.threads_speedup = evps1 > 0.0 ? r.events_per_sec / evps1 : 0.0;
      t.gate_speedup = threads == 4 && can_gate;
      TTG_CHECK(storm.empty() ||
                    (t.events == storm.front().events && t.end == storm.front().end),
                "threaded storm diverged from the single-threaded reference");
      TTG_CHECK(tpoints.empty() || t.epochs == tpoints.front().epochs,
                "thread count changed the epoch structure");
      tpoints.push_back(t);
      tt.add_row({std::to_string(threads), std::to_string(t.events),
                  std::to_string(t.epochs),
                  support::fmt(t.events_per_sec / 1e6, 2) + "M",
                  support::fmt(t.epochs_per_sec / 1e3, 1) + "k",
                  support::fmt(100.0 * t.barrier_fraction, 1) + "%",
                  support::fmt(t.threads_speedup, 2) + "x"});
    }
    tt.print();
    if (!can_gate)
      std::printf("# threads_speedup not emitted: host has %u cores (< 4)\n",
                  std::thread::hardware_concurrency());

    // Steady-state allocation gate: fat closures, two identical waves on one
    // engine — the second wave must allocate nothing (slab and heap counters
    // exactly flat), in both engine modes, with bit-identical results.
    const AllocPoint aser = run_alloc_check(ranks, 0);
    const AllocPoint ashr = run_alloc_check(ranks, lanes);
    TTG_CHECK(aser.end == ashr.end && aser.events == ashr.events,
              "fat-closure storm diverged between serial and sharded");
    apoints.push_back(ashr);
    std::printf(
        "# steady-state allocs: %llu events, %llu arena slabs warm, wave-2 "
        "slab delta %llu, heap delta %llu (gated == 0)\n",
        static_cast<unsigned long long>(ashr.events),
        static_cast<unsigned long long>(ashr.fn_arena_slabs),
        static_cast<unsigned long long>(ashr.arena_slab_delta),
        static_cast<unsigned long long>(ashr.fn_heap_delta));
  }

  if (!json_path.empty()) {
    write_json(json_path, bs, potrf, storm, tpoints, apoints);
    std::printf("# json: wrote %s (%zu points)\n", json_path.c_str(),
                potrf.size() + storm.size() + tpoints.size() + apoints.size());
  }
  std::printf(
      "expected shape: identical counts/makespans per row (bit-identical\n"
      "engines, at every thread count); potrf peak live bytes/rank flat across\n"
      "ranks; storm speedup exceeds 2x at >= 1024 ranks (per-lane heaps stay\n"
      "cache-resident while the serial heap percolates through tens of MB of\n"
      "cold events); 4-thread storm adds >= 1.5x over 1 thread where the host\n"
      "has the cores; steady-state waves allocate nothing (flat arena/heap).\n");
  return 0;
}
