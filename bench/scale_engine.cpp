// Engine scale sweep behind the scale-smoke CI gate: serial reference engine
// vs the sharded (lane + epoch barrier) engine, 256 to 4096 simulated ranks.
//
// Two phases, two claims:
//
//   * potrf — ghost POTRF, weak-scaled tiling. Pins *determinism* (makespan,
//     task/event/message counts are exact and identical between the two
//     engine modes — the sharded engine is bit-identical to serial by
//     construction; tests/test_scale_equiv.cpp) and *memory* (peak live
//     payload bytes per rank stays flat as ranks grow: ghost tiles are
//     synthesized on demand, O(1) host state per live task). Events/sec is
//     reported for both modes; at this workload's event density the serial
//     heap holds only O(ranks) events (the NICs queue work internally), so
//     the two engines run neck and neck on one host core — this phase is a
//     correctness-at-scale gate, not the throughput gate.
//
//   * storm — the throughput gate. A rank-local timer storm keeps a constant
//     2^21 events in flight (self-rescheduling chains, the population a
//     timer-per-message transport sustains at scale), which is where a
//     serial DES actually hurts: every pop percolates a ~100-byte event
//     through a multi-megabyte cold heap. The sharded engine partitions the
//     same population into per-lane heaps that stay cache-resident while a
//     lane drains its epoch window, and the storm is all same-lane traffic,
//     so the epoch barrier is near-empty. Sharded events/sec must be >= 2x
//     serial at >= 1024 ranks (gated via the "speedup" floor in
//     ci/BENCH_scale_baseline.json); final virtual time and event counts
//     are exact and identical between modes.
//
// Events/sec is wall-clock and therefore machine-dependent: the JSON gate
// gives absolute rates a very wide tolerance and pins the speedup *ratio*
// (same host, same second) plus all counts and makespans exactly.
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "apps/cholesky/cholesky_ttg.hpp"
#include "bench_common.hpp"
#include "sim/engine.hpp"
#include "ttg/ttg.hpp"

using namespace ttg;

namespace {

/// Process peak RSS in MB from /proc/self/status (0 where unavailable).
/// Informational only: it is a process-wide high watermark, monotone across
/// the sweep — the deterministic per-rank gate is DataTracker's watermark.
double peak_rss_mb() {
  std::FILE* f = std::fopen("/proc/self/status", "r");
  if (f == nullptr) return 0.0;
  char line[256];
  double mb = 0.0;
  while (std::fgets(line, sizeof line, f) != nullptr) {
    long kb = 0;
    if (std::sscanf(line, "VmHWM: %ld kB", &kb) == 1) {
      mb = static_cast<double>(kb) / 1024.0;
      break;
    }
  }
  std::fclose(f);
  return mb;
}

struct Point {
  int ranks = 0;
  int nt = 0;  ///< tile rows/cols of the swept matrix
  const char* mode = "";
  int lanes = 0;
  double makespan = 0.0;          ///< virtual seconds (exact)
  std::uint64_t tasks = 0;        ///< task bodies executed (exact)
  std::uint64_t events = 0;       ///< engine events processed (exact)
  std::uint64_t net_messages = 0; ///< payload transfers on the wire (exact)
  double events_per_sec = 0.0;    ///< host throughput (wall-clock)
  std::uint64_t peak_live_per_rank = 0;  ///< max over ranks of the DataCopy
                                         ///< live-bytes high watermark (exact)
  double rss_mb = 0.0;            ///< process VmHWM after this run (info)
};

Point run_point(int ranks, int nt, int bs, int lanes) {
  rt::WorldConfig cfg;
  cfg.nranks = ranks;
  cfg.workers_per_rank = 8;  // scheduler state lean at thousands of ranks
  cfg.ranks_per_node = 4;
  cfg.engine_lanes = lanes;
  rt::World world(cfg);
  const auto t0 = std::chrono::steady_clock::now();
  const auto res = apps::cholesky::run_ghost(world, nt * bs, bs);
  const auto t1 = std::chrono::steady_clock::now();
  const double wall = std::chrono::duration<double>(t1 - t0).count();

  Point p;
  p.ranks = ranks;
  p.nt = nt;
  p.mode = lanes > 0 ? "sharded" : "serial";
  p.lanes = lanes;
  p.makespan = res.makespan;
  p.tasks = res.tasks;
  p.events = world.engine().events_processed();
  p.net_messages = world.network().stats().messages;
  p.events_per_sec = static_cast<double>(p.events) / (wall > 0.0 ? wall : 1e-9);
  for (int r = 0; r < ranks; ++r) {
    const auto& rs = world.data_tracker().rank_stats(r);
    if (rs.high_watermark > p.peak_live_per_rank)
      p.peak_live_per_rank = rs.high_watermark;
  }
  p.rss_mb = peak_rss_mb();
  return p;
}

// ---- storm phase ----------------------------------------------------------

constexpr double kStormDt = 1.2e-6;       ///< mean reschedule interval [s]
constexpr std::uint64_t kStormPending = 1ull << 21;  ///< in-flight events
constexpr int kStormHops = 3;             ///< reschedules per chain

std::uint64_t mix(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

/// One hop of a self-rescheduling chain. The remaining-hop counter lives in
/// the low 4 bits of the PRNG state, so the closure captures 16 bytes and
/// fits std::function's small-buffer storage — the storm measures heap
/// behavior, not allocator behavior.
std::function<void()> storm_hop(sim::Engine* e, std::uint64_t s) {
  return [e, s] {
    const int h = static_cast<int>(s & 15u);
    if (h == 0) return;
    const std::uint64_t s2 = (mix(s) & ~15ull) | static_cast<unsigned>(h - 1);
    const double u = static_cast<double>(s2 >> 11) * 0x1p-53;
    e->after(kStormDt * (0.25 + 1.5 * u), storm_hop(e, s2));
  };
}

struct StormRun {
  double end = 0.0;             ///< final virtual time (exact)
  std::uint64_t events = 0;     ///< events processed (exact)
  double events_per_sec = 0.0;  ///< host throughput (wall-clock)
};

StormRun run_storm(int ranks, int lanes) {
  sim::EngineConfig cfg;
  cfg.lanes = lanes;
  cfg.threads = 1;
  cfg.nranks = ranks;
  cfg.lookahead = kStormDt;
  sim::Engine eng(cfg);
  const int depth = static_cast<int>(kStormPending / static_cast<unsigned>(ranks));
  for (int r = 0; r < ranks; ++r) {
    for (int d = 0; d < depth; ++d) {
      const std::uint64_t s0 = mix(static_cast<std::uint64_t>(r) * 65551u + d);
      const std::uint64_t s = (s0 & ~15ull) | static_cast<unsigned>(kStormHops);
      const double u = static_cast<double>(s >> 11) * 0x1p-53;
      eng.at_on(eng.lane_of(r), kStormDt * (0.25 + 1.5 * u), storm_hop(&eng, s));
    }
  }
  const auto t0 = std::chrono::steady_clock::now();
  StormRun sr;
  sr.end = eng.run();
  const auto t1 = std::chrono::steady_clock::now();
  const double wall = std::chrono::duration<double>(t1 - t0).count();
  sr.events = eng.events_processed();
  sr.events_per_sec = static_cast<double>(sr.events) / (wall > 0.0 ? wall : 1e-9);
  return sr;
}

struct StormPoint {
  int ranks = 0;
  int lanes = 0;
  std::uint64_t pending = 0;
  std::uint64_t events = 0;  ///< identical between modes (exact)
  double end = 0.0;          ///< identical between modes (exact)
  double serial_evps = 0.0;
  double sharded_evps = 0.0;
  double speedup = 0.0;  ///< sharded/serial, gated >= 2.0 in CI
};

void write_json(const std::string& path, int bs, const std::vector<Point>& potrf,
                const std::vector<StormPoint>& storm) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  TTG_REQUIRE(f != nullptr, "cannot open --json output file: " + path);
  std::fprintf(f, "{\"bench\":\"scale_engine\",\"bs\":%d,\"points\":[", bs);
  bool first = true;
  for (const auto& p : potrf) {
    std::fprintf(f,
                 "%s\n{\"phase\":\"potrf\",\"ranks\":%d,\"mode\":\"%s\",\"nt\":%d,"
                 "\"lanes\":%d,\"makespan\":%.17g,\"tasks\":%llu,\"events\":%llu,"
                 "\"net_messages\":%llu,\"events_per_sec\":%.17g,"
                 "\"peak_live_per_rank\":%llu,\"rss_mb\":%.3f}",
                 first ? "" : ",", p.ranks, p.mode, p.nt, p.lanes, p.makespan,
                 static_cast<unsigned long long>(p.tasks),
                 static_cast<unsigned long long>(p.events),
                 static_cast<unsigned long long>(p.net_messages), p.events_per_sec,
                 static_cast<unsigned long long>(p.peak_live_per_rank), p.rss_mb);
    first = false;
  }
  for (const auto& s : storm) {
    std::fprintf(f,
                 "%s\n{\"phase\":\"storm\",\"ranks\":%d,\"mode\":\"both\","
                 "\"lanes\":%d,\"pending\":%llu,\"events\":%llu,\"end\":%.17g,"
                 "\"serial_events_per_sec\":%.17g,\"sharded_events_per_sec\":%.17g,"
                 "\"speedup\":%.17g}",
                 first ? "" : ",", s.ranks, s.lanes,
                 static_cast<unsigned long long>(s.pending),
                 static_cast<unsigned long long>(s.events), s.end, s.serial_evps,
                 s.sharded_evps, s.speedup);
    first = false;
  }
  std::fprintf(f, "\n]}\n");
  std::fclose(f);
}

}  // namespace

int main(int argc, char** argv) {
  support::Cli cli("scale_engine",
                   "serial vs sharded engine at 256..4096 simulated ranks");
  cli.option("max-ranks", "4096", "largest rank count to sweep");
  cli.option("bs", "256", "tile size (ghost tiles: affects virtual time only)");
  cli.option("json", "",
             "write deterministic results (counts, makespans) + wall-clock "
             "events/sec as JSON to this path");
  if (!cli.parse(argc, argv)) return 0;
  const int max_ranks = static_cast<int>(cli.get_int("max-ranks"));
  const int bs = static_cast<int>(cli.get_int("bs"));
  const std::string json_path = cli.get("json");

  bench::preamble("Engine scale sweep: ghost POTRF + timer storm, serial vs sharded",
                  "n/a (simulator-only scaling study)",
                  "ranks 256..." + std::to_string(max_ranks) +
                      ", weak-scaled tiling, 1 host core");

  support::Table pt("potrf: determinism + flat memory (events/sec informational)",
                    {"ranks", "nt", "tasks", "events", "serial ev/s",
                     "sharded ev/s", "ratio", "peak live/rank [B]"});
  std::vector<Point> potrf;
  std::uint64_t peak_min = 0, peak_max = 0;
  for (int ranks : {256, 512, 1024, 2048, 4096}) {
    if (ranks > max_ranks) break;
    // Weak-ish scaling: tile count grows with sqrt(ranks) so work per rank
    // stays in the same ballpark across the sweep.
    const int nt = 2 * static_cast<int>(std::lround(std::sqrt(ranks)));
    const int lanes = std::min(64, ranks / 16);
    const Point serial = run_point(ranks, nt, bs, 0);
    const Point sharded = run_point(ranks, nt, bs, lanes);
    potrf.push_back(serial);
    potrf.push_back(sharded);
    TTG_CHECK(serial.makespan == sharded.makespan &&
                  serial.events == sharded.events &&
                  serial.net_messages == sharded.net_messages &&
                  serial.peak_live_per_rank == sharded.peak_live_per_rank,
              "sharded run diverged from the serial reference");
    peak_min = peak_min == 0 ? serial.peak_live_per_rank
                             : std::min(peak_min, serial.peak_live_per_rank);
    peak_max = std::max(peak_max, serial.peak_live_per_rank);
    pt.add_row({std::to_string(ranks), std::to_string(nt),
                std::to_string(serial.tasks), std::to_string(serial.events),
                support::fmt(serial.events_per_sec / 1e6, 2) + "M",
                support::fmt(sharded.events_per_sec / 1e6, 2) + "M",
                support::fmt(sharded.events_per_sec / serial.events_per_sec, 2) + "x",
                std::to_string(sharded.peak_live_per_rank)});
  }
  pt.print();
  // Flat memory: the per-rank live-byte watermark may wiggle with the tile
  // layout but must not grow with the rank count (it is deterministic, so
  // this bound is stable wherever the bench runs).
  TTG_CHECK(peak_max <= 2 * peak_min,
            "peak live bytes per rank grew with the rank count");

  support::Table st("storm: 2^21 in-flight events, throughput gate (>= 2x)",
                    {"ranks", "lanes", "pending/rank", "events", "serial ev/s",
                     "sharded ev/s", "speedup"});
  std::vector<StormPoint> storm;
  for (int ranks : {1024, 2048, 4096}) {
    if (ranks > max_ranks) break;
    const int lanes = std::min(128, ranks / 8);
    const StormRun serial = run_storm(ranks, 0);
    const StormRun sharded = run_storm(ranks, lanes);
    TTG_CHECK(serial.end == sharded.end && serial.events == sharded.events,
              "sharded storm diverged from the serial reference");
    StormPoint s;
    s.ranks = ranks;
    s.lanes = lanes;
    s.pending = kStormPending;
    s.events = serial.events;
    s.end = serial.end;
    s.serial_evps = serial.events_per_sec;
    s.sharded_evps = sharded.events_per_sec;
    s.speedup = sharded.events_per_sec / serial.events_per_sec;
    storm.push_back(s);
    st.add_row({std::to_string(ranks), std::to_string(lanes),
                std::to_string(kStormPending / static_cast<unsigned>(ranks)),
                std::to_string(s.events),
                support::fmt(s.serial_evps / 1e6, 2) + "M",
                support::fmt(s.sharded_evps / 1e6, 2) + "M",
                support::fmt(s.speedup, 2) + "x"});
  }
  st.print();

  if (!json_path.empty()) {
    write_json(json_path, bs, potrf, storm);
    std::printf("# json: wrote %s (%zu points)\n", json_path.c_str(),
                potrf.size() + storm.size());
  }
  std::printf(
      "expected shape: identical counts/makespans per row (bit-identical\n"
      "engines); potrf peak live bytes/rank flat across ranks; storm speedup\n"
      "exceeds 2x at >= 1024 ranks (per-lane heaps stay cache-resident while\n"
      "the serial heap percolates through tens of MB of cold events).\n");
  return 0;
}
