// Fig. 12: strong scaling of block-sparse GEMM on Hawk (paper: squaring
// the 140,440-dim Yukawa matrix, 8..256 nodes; series TTG/PaRSEC,
// TTG/MADNESS, DBCSR).
// Expected shape: all three similar with near-linear scaling 8 -> 128
// nodes; the 2D-SUMMA TTG implementation stops scaling at ~128 nodes
// (communication-dominated), while DBCSR's 2.5D algorithm keeps scaling
// at 256 thanks to its lower cross-section traffic.
#include <vector>

#include "apps/bspmm/bspmm_ttg.hpp"
#include "baselines/dbcsr_like.hpp"
#include "bench_common.hpp"
#include "runtime/trace_session.hpp"
#include "sparse/yukawa_gen.hpp"
#include "ttg/ttg.hpp"

using namespace ttg;

int main(int argc, char** argv) {
  support::Cli cli("fig12_bspmm", "block-sparse GEMM strong scaling (Fig. 12)");
  cli.option("natoms", "420", "atoms (paper: 2500)");
  cli.flag("full", "paper-scale 2500 atoms (slow)");
  rt::TraceSession::add_options(cli);
  if (!cli.parse(argc, argv)) return 0;
  const rt::TraceSession trace(cli);

  sparse::YukawaParams p;
  p.natoms = cli.get_flag("full") ? 2500 : static_cast<int>(cli.get_int("natoms"));
  p.max_tile = 256;
  p.threshold = 1e-8;
  p.box = 240.0;
  p.ghost = true;
  auto a = sparse::yukawa_matrix(p);
  const auto m = sim::hawk();
  const double flops = sparse::multiply_flops(a, a);

  bench::preamble("Fig. 12: bspmm strong scaling (GFLOP/s), Hawk",
                  "Yukawa/protease matrix (140k dim), 8..256 nodes",
                  "synthetic matrix, " + std::to_string(p.natoms) + " atoms, dim " +
                      std::to_string(a.n()) + ", " + std::to_string(a.nnz_tiles()) +
                      " nnz tiles, " + support::fmt_si(flops, 1) + "flops (scaled)");

  support::Table t("Fig. 12 (GFLOP/s vs nodes)",
                   {"nodes", "TTG/PaRSEC", "TTG/MADNESS", "DBCSR(2.5D)", "dbcsr c"});
  for (int nodes : {8, 16, 32, 64, 128, 256}) {
    auto run_ttg = [&](rt::BackendKind b) {
      rt::WorldConfig cfg;
      cfg.machine = m;
      cfg.nranks = nodes;
      cfg.backend = b;
      trace.apply_faults(cfg);
      rt::World world(cfg);
      trace.attach(world);
      apps::bspmm::Options opt;
      opt.collect = false;
      auto res = apps::bspmm::run(world, a, a, opt);
      trace.finish(world,
                   std::string(rt::to_string(b)) + "-" + std::to_string(nodes) +
                       "nodes",
                   res.makespan);
      return res.gflops;
    };
    auto db = baselines::run_dbcsr(m, nodes, a, a);
    t.add_row({std::to_string(nodes), support::fmt(run_ttg(rt::BackendKind::Parsec), 0),
               support::fmt(run_ttg(rt::BackendKind::Madness), 0),
               support::fmt(db.gflops, 0), std::to_string(db.replication)});
  }
  t.print();
  std::printf(
      "expected shape: all series comparable and ~linear to 128 nodes; the 2D\n"
      "TTG variants flatten at 128-256 while DBCSR (2.5D) keeps scaling.\n");
  return 0;
}
