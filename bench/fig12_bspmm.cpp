// Fig. 12: strong scaling of block-sparse GEMM on Hawk (paper: squaring
// the 140,440-dim Yukawa matrix, 8..256 nodes; series TTG/PaRSEC,
// TTG/MADNESS, DBCSR).
// Expected shape: all three similar with near-linear scaling 8 -> 128
// nodes; the 2D-SUMMA TTG implementation stops scaling at ~128 nodes
// (communication-dominated), while DBCSR's 2.5D algorithm keeps scaling
// at 256 thanks to its lower cross-section traffic.
#include <string>
#include <vector>

#include "apps/bspmm/bspmm_ttg.hpp"
#include "baselines/dbcsr_like.hpp"
#include "bench_common.hpp"
#include "runtime/trace_session.hpp"
#include "sparse/yukawa_gen.hpp"
#include "ttg/ttg.hpp"

using namespace ttg;

namespace {

/// One TTG configuration's deterministic outcome, fig5-shaped so
/// ci/check_perf.py gates it against ci/BENCH_bspmm_baseline.json.
struct TtgPoint {
  int nodes = 0;
  const char* backend = "";
  double gflops = 0.0;
  double makespan = 0.0;
  std::uint64_t messages = 0;
  std::uint64_t splitmd_sends = 0;
  std::uint64_t serializations = 0;
  std::uint64_t serialize_hits = 0;
  std::uint64_t broadcast_forwards = 0;
  std::uint64_t am_batches = 0;
  std::uint64_t batched_msgs = 0;
  std::uint64_t reduce_forwards = 0;
  std::uint64_t reduce_combines = 0;
  std::uint64_t intra_node_hops = 0;
  std::uint64_t inter_node_hops = 0;
  std::uint64_t steals_local = 0;
  std::uint64_t steals_remote = 0;
  std::uint64_t steal_fail = 0;
};

void write_json(const std::string& path, int natoms, const std::vector<TtgPoint>& points) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  TTG_REQUIRE(f != nullptr, "cannot open --json output file: " + path);
  std::fprintf(f, "{\"bench\":\"fig12_bspmm\",\"natoms\":%d,", natoms);
  std::fprintf(f, "\"points\":[");
  for (std::size_t i = 0; i < points.size(); ++i) {
    const auto& p = points[i];
    std::fprintf(f,
                 "%s\n{\"nodes\":%d,\"backend\":\"%s\",\"gflops\":%.17g,"
                 "\"makespan\":%.17g,\"messages\":%llu,\"splitmd_sends\":%llu,"
                 "\"serializations\":%llu,\"serialize_hits\":%llu,"
                 "\"broadcast_forwards\":%llu,\"am_batches\":%llu,"
                 "\"batched_msgs\":%llu,\"reduce_forwards\":%llu,"
                 "\"reduce_combines\":%llu,\"intra_node_hops\":%llu,"
                 "\"inter_node_hops\":%llu,\"steals_local\":%llu,"
                 "\"steals_remote\":%llu,\"steal_fail\":%llu}",
                 i ? "," : "", p.nodes, p.backend, p.gflops, p.makespan,
                 static_cast<unsigned long long>(p.messages),
                 static_cast<unsigned long long>(p.splitmd_sends),
                 static_cast<unsigned long long>(p.serializations),
                 static_cast<unsigned long long>(p.serialize_hits),
                 static_cast<unsigned long long>(p.broadcast_forwards),
                 static_cast<unsigned long long>(p.am_batches),
                 static_cast<unsigned long long>(p.batched_msgs),
                 static_cast<unsigned long long>(p.reduce_forwards),
                 static_cast<unsigned long long>(p.reduce_combines),
                 static_cast<unsigned long long>(p.intra_node_hops),
                 static_cast<unsigned long long>(p.inter_node_hops),
                 static_cast<unsigned long long>(p.steals_local),
                 static_cast<unsigned long long>(p.steals_remote),
                 static_cast<unsigned long long>(p.steal_fail));
  }
  std::fprintf(f, "\n]}\n");
  std::fclose(f);
}

}  // namespace

int main(int argc, char** argv) {
  support::Cli cli("fig12_bspmm", "block-sparse GEMM strong scaling (Fig. 12)");
  cli.option("natoms", "420", "atoms (paper: 2500)");
  cli.option("max-nodes", "256", "largest node count to run (CI uses a small cap)");
  cli.option("json", "", "write deterministic results (makespan, message counts) "
                         "as JSON to this path");
  cli.option("keymap", "cyclic", "C-tile placement: cyclic|node2d|node-aware");
  cli.option("rpn", "1", "ranks per node (drives node-aware keymaps + tree layout)");
  cli.option("lanes", "-1", "event-engine lanes (-1: serial up to 64 ranks)");
  cli.flag("steal", "enable the work-stealing intra-node scheduler");
  cli.flag("full", "paper-scale 2500 atoms (slow)");
  rt::TraceSession::add_options(cli);
  if (!cli.parse(argc, argv)) return 0;
  const rt::TraceSession trace(cli);

  sparse::YukawaParams p;
  p.natoms = cli.get_flag("full") ? 2500 : static_cast<int>(cli.get_int("natoms"));
  p.max_tile = 256;
  p.threshold = 1e-8;
  p.box = 240.0;
  p.ghost = true;
  auto a = sparse::yukawa_matrix(p);
  const auto m = sim::hawk();
  const double flops = sparse::multiply_flops(a, a);

  bench::preamble("Fig. 12: bspmm strong scaling (GFLOP/s), Hawk",
                  "Yukawa/protease matrix (140k dim), 8..256 nodes",
                  "synthetic matrix, " + std::to_string(p.natoms) + " atoms, dim " +
                      std::to_string(a.n()) + ", " + std::to_string(a.nnz_tiles()) +
                      " nnz tiles, " + support::fmt_si(flops, 1) + "flops (scaled)");

  const int max_nodes = static_cast<int>(cli.get_int("max-nodes"));
  const std::string json_path = cli.get("json");
  support::Table t("Fig. 12 (GFLOP/s vs nodes)",
                   {"nodes", "TTG/PaRSEC", "TTG/MADNESS", "DBCSR(2.5D)", "dbcsr c"});
  std::vector<TtgPoint> points;
  for (int nodes : {8, 16, 32, 64, 128, 256}) {
    if (nodes > max_nodes) break;
    auto run_ttg = [&](rt::BackendKind b) {
      rt::WorldConfig cfg;
      cfg.machine = m;
      cfg.nranks = nodes;
      cfg.backend = b;
      cfg.work_stealing = cli.get_flag("steal");
      cfg.ranks_per_node = static_cast<int>(cli.get_int("rpn"));
      const int lanes = static_cast<int>(cli.get_int("lanes"));
      cfg.engine_lanes = lanes >= 0 ? lanes : (nodes > 64 ? 8 : 0);
      trace.apply(cfg);
      rt::World world(cfg);
      trace.attach(world);
      apps::bspmm::Options opt;
      opt.collect = false;
      opt.keymap = keymap_from_string(cli.get("keymap"));
      auto res = apps::bspmm::run(world, a, a, opt);
      trace.finish(world,
                   std::string(rt::to_string(b)) + "-" + std::to_string(nodes) +
                       "nodes",
                   res.makespan);
      const auto& cs = world.comm().stats();
      rt::StealStats ss;
      for (int r = 0; r < world.nranks(); ++r) {
        const auto& s = world.scheduler(r).steal_stats();
        ss.steals_local += s.steals_local;
        ss.steals_remote += s.steals_remote;
        ss.steal_fail += s.steal_fail;
      }
      points.push_back(TtgPoint{nodes, rt::to_string(b), res.gflops, res.makespan,
                                cs.messages, cs.splitmd_sends, cs.serializations,
                                cs.serialize_hits, cs.broadcast_forwards,
                                cs.am_batches, cs.batched_msgs, cs.reduce_forwards,
                                cs.reduce_combines, cs.intra_node_hops,
                                cs.inter_node_hops, ss.steals_local,
                                ss.steals_remote, ss.steal_fail});
      return res.gflops;
    };
    auto db = baselines::run_dbcsr(m, nodes, a, a);
    t.add_row({std::to_string(nodes), support::fmt(run_ttg(rt::BackendKind::Parsec), 0),
               support::fmt(run_ttg(rt::BackendKind::Madness), 0),
               support::fmt(db.gflops, 0), std::to_string(db.replication)});
  }
  t.print();
  if (!json_path.empty()) {
    write_json(json_path, p.natoms, points);
    std::printf("# json: wrote %s (%zu points)\n", json_path.c_str(), points.size());
  }
  std::printf(
      "expected shape: all series comparable and ~linear to 128 nodes; the 2D\n"
      "TTG variants flatten at 128-256 while DBCSR (2.5D) keeps scaling.\n");
  return 0;
}
