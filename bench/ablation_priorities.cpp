// Ablation: task priorities (the priority-map feature added in this paper)
// on vs off for POTRF lookahead.
#include "apps/cholesky/cholesky_ttg.hpp"
#include "bench_common.hpp"
#include "runtime/trace_session.hpp"
#include "ttg/ttg.hpp"

using namespace ttg;

int main(int argc, char** argv) {
  support::Cli cli("ablation_priorities", "priority maps on/off (POTRF)");
  cli.option("nodes", "16", "node count");
  cli.option("nt", "48", "tiles per dimension (tile 512)");
  rt::TraceSession::add_options(cli);
  if (!cli.parse(argc, argv)) return 0;
  const rt::TraceSession trace(cli);
  const int nodes = static_cast<int>(cli.get_int("nodes"));
  const int nt = static_cast<int>(cli.get_int("nt"));

  bench::preamble("Ablation: priority maps (POTRF lookahead)",
                  "paper Section II: 'the ability to assign priorities to tasks'",
                  std::to_string(nodes) + " Hawk nodes, " + std::to_string(nt) +
                      "^2 tiles of 512^2");

  auto run = [&](bool prio) {
    auto ghost = linalg::ghost_matrix(512 * nt, 512);
    rt::WorldConfig cfg;
    cfg.machine = sim::hawk();
    cfg.nranks = nodes;
    trace.apply(cfg);
    rt::World world(cfg);
    trace.attach(world);
    apps::cholesky::Options opt;
    opt.collect = false;
    opt.priorities = prio;
    auto res = apps::cholesky::run(world, ghost, opt);
    trace.finish(world, prio ? "priomap-on" : "priomap-off", res.makespan);
    return res.makespan;
  };
  const double t_on = run(true);
  const double t_off = run(false);
  support::Table t("priority ablation", {"variant", "time [s]", "GFLOP/s"});
  const double flops = apps::cholesky::flop_count(512 * nt);
  t.add_row({"priomap on", support::fmt(t_on, 4), support::fmt(flops / t_on / 1e9, 0)});
  t.add_row(
      {"priomap off", support::fmt(t_off, 4), support::fmt(flops / t_off / 1e9, 0)});
  t.print();
  std::printf("expected: priorities give a small edge when queues back up; on <= off. (The\ndataflow itself already exposes the lookahead, so the gain is modest.)\n");
  return 0;
}
