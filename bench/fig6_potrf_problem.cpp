// Fig. 6: POTRF problem-size scaling on a fixed 64-node partition of Hawk.
// Expected shape: both groups rise toward their asymptotic peak; the
// task-based implementations reach (near-)peak at much smaller matrices
// than ScaLAPACK/SLATE, which need the largest sizes to amortize their
// per-iteration synchronization.
#include <vector>

#include "apps/cholesky/cholesky_ttg.hpp"
#include "baselines/bsp_cholesky.hpp"
#include "baselines/chameleon_like.hpp"
#include "baselines/dplasma_like.hpp"
#include "bench_common.hpp"
#include "runtime/trace_session.hpp"
#include "ttg/ttg.hpp"

using namespace ttg;

int main(int argc, char** argv) {
  support::Cli cli("fig6_potrf_problem", "POTRF problem scaling on 64 nodes (Fig. 6)");
  cli.option("nodes", "64", "fixed node count");
  cli.option("bs", "512", "tile size");
  cli.flag("full", "extend to paper-scale 200k+ matrices (slow)");
  rt::TraceSession::add_options(cli);
  if (!cli.parse(argc, argv)) return 0;
  const rt::TraceSession trace(cli);
  const int nodes = static_cast<int>(cli.get_int("nodes"));
  const int bs = static_cast<int>(cli.get_int("bs"));
  const auto m = sim::hawk();

  std::vector<int> sizes = {8192, 16384, 24576, 32768, 49152, 65536};
  if (cli.get_flag("full")) sizes = {32768, 65536, 98304, 131072, 196608, 245760};

  bench::preamble("Fig. 6: POTRF problem scaling on 64 nodes (GFLOP/s), Hawk",
                  "tile 512^2, matrix size swept to 240k",
                  "tile " + std::to_string(bs) + "^2, sizes to " +
                      std::to_string(sizes.back()) + " (scaled)");

  support::Table t("Fig. 6 (GFLOP/s vs matrix size)",
                   {"N", "TTG/PaRSEC", "TTG/MADNESS", "DPLASMA", "Chameleon",
                    "SLATE", "ScaLAPACK"});
  for (int n : sizes) {
    auto ghost = linalg::ghost_matrix(n, bs);
    auto run_ttg = [&](rt::BackendKind b) {
      rt::WorldConfig cfg;
      cfg.machine = m;
      cfg.nranks = nodes;
      cfg.backend = b;
      trace.apply(cfg);
      rt::World world(cfg);
      trace.attach(world);
      apps::cholesky::Options opt;
      opt.collect = false;
      auto res = apps::cholesky::run(world, ghost, opt);
      trace.finish(world,
                   std::string(rt::to_string(b)) + "-n" + std::to_string(n),
                   res.makespan);
      return res.gflops;
    };
    t.add_row(
        {std::to_string(n), support::fmt(run_ttg(rt::BackendKind::Parsec), 0),
         support::fmt(run_ttg(rt::BackendKind::Madness), 0),
         support::fmt(baselines::run_dplasma_cholesky(m, nodes, ghost).gflops, 0),
         support::fmt(baselines::run_chameleon_cholesky(m, nodes, ghost).gflops, 0),
         support::fmt(
             baselines::run_bsp_cholesky(m, nodes, n, bs, baselines::BspVariant::Slate)
                 .gflops,
             0),
         support::fmt(baselines::run_bsp_cholesky(m, nodes, n, bs,
                                                  baselines::BspVariant::ScaLapack)
                          .gflops,
                      0)});
  }
  t.print();
  std::printf(
      "expected shape: two separated groups; the task-based group approaches its\n"
      "peak at much smaller N than SLATE/ScaLAPACK.\n");
  return 0;
}
