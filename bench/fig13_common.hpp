// Shared driver for Figs. 13a/13b: MRA strong scaling on one machine.
// Paper: order-10 multiwavelet representation of 3-D Gaussians (exponent
// 30,000, eps 1e-8, centers random in a cube), series TTG/PaRSEC,
// TTG/MADNESS, native MADNESS.
// Expected shape: TTG/PaRSEC clearly fastest; TTG/MADNESS pays POD-copy
// and AM-server overheads; native MADNESS slowest and stops scaling (a
// barrier after every computational step).
#pragma once

#include <vector>

#include "apps/mra/mra_ttg.hpp"
#include "baselines/madness_native_mra.hpp"
#include "bench_common.hpp"
#include "runtime/trace_session.hpp"
#include "ttg/ttg.hpp"

namespace ttg::bench {

inline int run_fig13(const char* figure, const sim::MachineModel& machine,
                     const std::vector<int>& nodes_list, int argc, char** argv) {
  support::Cli cli(figure, "MRA strong scaling");
  cli.option("k", "10", "multiwavelet order (paper: 10)");
  cli.option("funcs", "64", "number of Gaussians");
  cli.option("tol", "1e-8", "truncation threshold (paper: 1e-8)");
  cli.option("keymap", "cyclic", "tree placement: cyclic|node-aware");
  cli.option("rpn", "1", "ranks per node (drives node-aware keymaps + tree layout)");
  cli.flag("steal", "enable the work-stealing intra-node scheduler");
  cli.flag("full", "larger run: 128 functions (slow)");
  cli.flag("verify", "full per-run arithmetic incl. norm verification (slow)");
  rt::TraceSession::add_options(cli);
  if (!cli.parse(argc, argv)) return 0;
  const rt::TraceSession trace(cli);
  const bool full = cli.get_flag("full");
  const int k = static_cast<int>(cli.get_int("k"));
  const int nfuncs = full ? 128 : static_cast<int>(cli.get_int("funcs"));
  const double tol = cli.get_double("tol");
  const bool light = !cli.get_flag("verify");

  auto fns = ttg::mra::random_gaussians(nfuncs, 3.0e4, 2022);
  ttg::mra::MraContext ctx(k, fns);
  // The sweep re-projects identical functions at every node count; memoize
  // the quadrature so the real math runs once.
  ctx.enable_projection_cache();

  preamble(figure,
           "order-10 multiwavelets, exponent 30000, eps 1e-8, random centers",
           "order " + std::to_string(k) + ", " + std::to_string(nfuncs) +
               " functions, tol " + support::fmt(tol, 9) + " (scaled)");

  support::Table t(std::string(figure) + " (time [s] vs nodes)",
                   {"nodes", "TTG/PaRSEC", "TTG/MADNESS", "native MADNESS"});
  for (int nodes : nodes_list) {
    auto run_ttg = [&](rt::BackendKind b) {
      rt::WorldConfig cfg;
      cfg.machine = machine;
      cfg.nranks = nodes;
      cfg.backend = b;
      cfg.work_stealing = cli.get_flag("steal");
      cfg.ranks_per_node = static_cast<int>(cli.get_int("rpn"));
      trace.apply(cfg);
      rt::World world(cfg);
      trace.attach(world);
      apps::mra::Options opt;
      opt.tol = tol;
      opt.rand_level = 3;  // finer overdecomposition for the bigger runs
      opt.light_math = light;
      opt.keymap = keymap_from_string(cli.get("keymap"));
      auto res = apps::mra::run(world, ctx, opt);
      trace.finish(world,
                   std::string(rt::to_string(b)) + "-" + std::to_string(nodes) +
                       "nodes",
                   res.makespan);
      return res.makespan;
    };
    double native;
    {
      rt::WorldConfig cfg;
      cfg.machine = machine;
      cfg.nranks = nodes;
      cfg.backend = rt::BackendKind::Madness;
      rt::World world(cfg);
      baselines::NativeMraOptions opt;
      opt.tol = tol;
      opt.rand_level = 3;
      opt.light_math = light;
      native = baselines::run_native_mra(world, ctx, opt).makespan;
    }
    t.add_row({std::to_string(nodes),
               support::fmt(run_ttg(rt::BackendKind::Parsec), 4),
               support::fmt(run_ttg(rt::BackendKind::Madness), 4),
               support::fmt(native, 4)});
  }
  t.print();
  std::printf(
      "expected shape: TTG/PaRSEC < TTG/MADNESS < native MADNESS, with native\n"
      "MADNESS flattening first (per-step barriers + tree re-allocation).\n");
  return 0;
}

}  // namespace ttg::bench
