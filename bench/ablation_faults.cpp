// Ablation: makespan under injected faults (resilience study).
//
// Sweeps message drop rate x straggler factor over both backends on a
// fixed tiled-Cholesky workload and reports how gracefully each backend
// degrades: makespan inflation, retransmissions, re-fetches, and whether
// every drop was recovered (dead letters must stay zero below drop=1).
// All fault decisions are seeded, so the table is bit-reproducible.
#include <string>
#include <vector>

#include "apps/cholesky/cholesky_ttg.hpp"
#include "bench_common.hpp"
#include "runtime/trace_session.hpp"
#include "ttg/ttg.hpp"

using namespace ttg;

namespace {

struct Cell {
  double makespan = 0.0;
  rt::CommStats comm;
  net::NetStats net;
};

Cell run_one(const sim::MachineModel& m, int nodes, int n, int bs,
             rt::BackendKind backend, const sim::FaultPlan& plan,
             const rt::TraceSession& trace) {
  auto ghost = linalg::ghost_matrix(n, bs);
  rt::WorldConfig cfg;
  cfg.machine = m;
  cfg.nranks = nodes;
  cfg.backend = backend;
  cfg.faults = plan;
  rt::World world(cfg);
  trace.attach(world);
  apps::cholesky::Options opt;
  opt.collect = false;
  auto res = apps::cholesky::run(world, ghost, opt);
  trace.finish(world,
               std::string(rt::to_string(backend)) + "-" + plan.describe(),
               res.makespan);
  return Cell{res.makespan, world.comm().stats(), world.network().stats()};
}

std::string spec_for(double drop, double straggler) {
  std::string spec;
  if (drop > 0.0) spec += "drop=" + support::fmt(drop, 4);
  if (straggler > 1.0) {
    if (!spec.empty()) spec += ",";
    spec += "straggler=0:" + support::fmt(straggler, 1);
  }
  return spec;
}

}  // namespace

int main(int argc, char** argv) {
  support::Cli cli("ablation_faults",
                   "POTRF makespan vs drop rate and straggler factor");
  cli.option("n", "4096", "matrix dimension");
  cli.option("bs", "256", "tile size");
  cli.option("nodes", "8", "simulated cluster size");
  rt::TraceSession::add_options(cli);
  if (!cli.parse(argc, argv)) return 0;
  const rt::TraceSession trace(cli);
  const int n = static_cast<int>(cli.get_int("n"));
  const int bs = static_cast<int>(cli.get_int("bs"));
  const int nodes = static_cast<int>(cli.get_int("nodes"));
  const std::uint64_t seed = trace.faults().seed;
  const auto m = sim::hawk();

  bench::preamble("Ablation: fault injection & resilience (POTRF makespan)",
                  "perfect fabric (no faults)",
                  std::to_string(n) + "^2, " + std::to_string(bs) + "^2 tiles, " +
                      std::to_string(nodes) + " nodes, fault seed " +
                      std::to_string(seed));

  const std::vector<double> drops = {0.0, 0.005, 0.02};
  const std::vector<double> stragglers = {1.0, 2.0, 4.0};

  for (rt::BackendKind backend : {rt::BackendKind::Parsec, rt::BackendKind::Madness}) {
    support::Table t(std::string("TTG/") + rt::to_string(backend) +
                         ": makespan[ms] (x slowdown vs fault-free)",
                     {"drop", "straggler", "makespan", "slowdown", "retries",
                      "refetches", "recovered", "dead"});
    double base = 0.0;
    for (double drop : drops) {
      for (double straggler : stragglers) {
        const auto plan = sim::FaultPlan::parse(spec_for(drop, straggler), seed);
        const Cell c = run_one(m, nodes, n, bs, backend, plan, trace);
        if (drop == 0.0 && straggler == 1.0) base = c.makespan;
        t.add_row({support::fmt(drop, 3), support::fmt(straggler, 1),
                   support::fmt(c.makespan * 1e3, 3),
                   base > 0.0 ? support::fmt(c.makespan / base, 2) : "1.00",
                   std::to_string(c.comm.retries),
                   std::to_string(c.comm.rma_refetches),
                   std::to_string(c.comm.recovered_msgs),
                   std::to_string(c.comm.dead_letters)});
      }
    }
    t.print();
    std::printf("\n");
  }
  std::printf(
      "expected shape: makespan grows smoothly with drop rate (every drop is\n"
      "retransmitted, none dead-letter); a straggler rank stretches the critical\n"
      "path on both backends; PaRSEC additionally re-fetches splitmd payloads.\n");
  return 0;
}
