// Ablation: streaming-reduction routing — flat (every contribution funnels
// into the key owner's receive NIC) vs the tree-routed data plane that
// combines partial values at interior ranks (k = 2, 4) and the
// topology-aware layout that packs node-local subtrees before a partial
// crosses the network.
//
// Two experiments:
//   1. single-owner fan-in: 64 ranks each stream one 512^2 tile into one
//      key owned by rank 0. Flat routing delivers 63 tiles (and 63 reducer
//      invocations) at the owner; tree routing delivers <= arity combined
//      partials, unloading the owner's receive NIC by ~R/arity.
//   2. bspmm: block-sparse GEMM whose C-tile accumulation runs through the
//      same streaming terminals — the no-regression arm (its contributions
//      are owner-local, so routing must not change a single byte).
#include <algorithm>
#include <cstdio>
#include <string>
#include <vector>

#include "apps/bspmm/bspmm_ttg.hpp"
#include "bench_common.hpp"
#include "linalg/tile.hpp"
#include "runtime/trace_session.hpp"
#include "sparse/yukawa_gen.hpp"
#include "ttg/ttg.hpp"

using namespace ttg;

namespace {

/// One routing arm of the single-owner fan-in experiment.
struct RedArm {
  const char* name = "";
  int arity = 0;  ///< 0 = flat, k >= 2 = k-ary reduction tree
  int rpn = 1;    ///< ranks per node for the topology-aware layout
  double completion = 0.0;       ///< virtual time until the reduced value fires
  double owner_recv_busy = 0.0;  ///< receive-NIC busy time at the key owner
  std::uint64_t owner_reduce_calls = 0;  ///< reducer invocations at the owner
  std::uint64_t total_reduce_calls = 0;  ///< reducer invocations on all ranks
  std::uint64_t reduce_forwards = 0;
  std::uint64_t reduce_combines = 0;
  std::uint64_t intra_hops = 0;
  std::uint64_t inter_hops = 0;
  double checksum = 0.0;  ///< Frobenius norm of the combined tile
};

/// One arm of the bspmm no-regression experiment.
struct BspmmArm {
  const char* name = "";
  int arity = 0;
  double makespan = 0.0;
  double gflops = 0.0;
  std::uint64_t reduce_forwards = 0;
  std::uint64_t reduce_combines = 0;
};

void write_json(const std::string& path, int ranks, int dim,
                const std::vector<RedArm>& reds, const std::vector<BspmmArm>& bs) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  TTG_REQUIRE(f != nullptr, "cannot open --json output file: " + path);
  std::fprintf(f, "{\"bench\":\"ablation_reduce\",\"ranks\":%d,\"dim\":%d,", ranks,
               dim);
  std::fprintf(f, "\"fan_in\":[");
  for (std::size_t i = 0; i < reds.size(); ++i) {
    const auto& a = reds[i];
    std::fprintf(f,
                 "%s\n{\"arm\":\"%s\",\"arity\":%d,\"ranks_per_node\":%d,"
                 "\"completion\":%.17g,\"owner_recv_busy\":%.17g,"
                 "\"owner_reduce_calls\":%llu,\"total_reduce_calls\":%llu,"
                 "\"reduce_forwards\":%llu,\"reduce_combines\":%llu,"
                 "\"intra_node_hops\":%llu,\"inter_node_hops\":%llu,"
                 "\"checksum\":%.17g}",
                 i ? "," : "", a.name, a.arity, a.rpn, a.completion,
                 a.owner_recv_busy,
                 static_cast<unsigned long long>(a.owner_reduce_calls),
                 static_cast<unsigned long long>(a.total_reduce_calls),
                 static_cast<unsigned long long>(a.reduce_forwards),
                 static_cast<unsigned long long>(a.reduce_combines),
                 static_cast<unsigned long long>(a.intra_hops),
                 static_cast<unsigned long long>(a.inter_hops), a.checksum);
  }
  std::fprintf(f, "\n],\"bspmm\":[");
  for (std::size_t i = 0; i < bs.size(); ++i) {
    const auto& a = bs[i];
    std::fprintf(f,
                 "%s\n{\"arm\":\"%s\",\"arity\":%d,\"makespan\":%.17g,"
                 "\"gflops\":%.17g,\"reduce_forwards\":%llu,"
                 "\"reduce_combines\":%llu}",
                 i ? "," : "", a.name, a.arity, a.makespan, a.gflops,
                 static_cast<unsigned long long>(a.reduce_forwards),
                 static_cast<unsigned long long>(a.reduce_combines));
  }
  std::fprintf(f, "\n]}\n");
  std::fclose(f);
}

}  // namespace

int main(int argc, char** argv) {
  support::Cli cli("ablation_reduce",
                   "streaming-reduction routing: flat vs reduction tree");
  cli.option("ranks", "64", "rank count (one contribution per rank)");
  cli.option("dim", "512", "tile dimension for the fan-in experiment");
  cli.option("natoms", "180", "atoms for the bspmm arm");
  cli.option("json", "", "write all arms as JSON to this path");
  rt::TraceSession::add_options(cli);
  if (!cli.parse(argc, argv)) return 0;
  const rt::TraceSession trace(cli);
  const int ranks = static_cast<int>(cli.get_int("ranks"));
  const int dim = static_cast<int>(cli.get_int("dim"));
  const std::string json_path = cli.get("json");
  const auto m = sim::hawk();

  bench::preamble("Ablation: streaming-reduction routing (flat / tree / topo)",
                  "tree-routed collective plane, inverted for many-to-one",
                  std::to_string(ranks) + " Hawk ranks, one " +
                      std::to_string(dim) + "^2 tile per rank -> one owner");

  // --- single-owner fan-in: the routing effect undiluted ---
  auto fan_run = [&](const char* name, int arity, int rpn) {
    rt::WorldConfig cfg;
    cfg.machine = m;
    cfg.nranks = ranks;
    cfg.reduce_tree_arity = arity;
    cfg.ranks_per_node = rpn;
    trace.apply(cfg);
    rt::World world(cfg);
    trace.attach(world);
    rt::World* wp = &world;
    std::uint64_t owner_calls = 0, total_calls = 0;
    Edge<Int1, Void> start("start");
    Edge<Int1, linalg::Tile> stream("stream"), out_e("out");
    const int d = dim;
    // One producer task per rank streams its tile into the single key 0.
    auto prod = make_tt(world,
                        [d](const Int1& k, Void&,
                            std::tuple<Out<Int1, linalg::Tile>>& out) {
                          linalg::Tile t(d, d);
                          for (int j = 0; j < d; ++j)
                            for (int i = 0; i < d; ++i)
                              t(i, j) = 1e-3 * (k.i + 1) * (i + 2 * j + 1);
                          ttg::send<0>(Int1{0}, std::move(t), out);
                        },
                        edges(start), edges(stream), "produce");
    prod->set_keymap([ranks](const Int1& k) { return k.i % ranks; });
    auto red = make_tt(world,
                       [](const Int1& k, linalg::Tile& sum,
                          std::tuple<Out<Int1, linalg::Tile>>& out) {
                         ttg::send<0>(k, sum, out);
                       },
                       edges(stream), edges(out_e), "reduce");
    red->set_input_reducer<0>(
        [wp, &owner_calls, &total_calls](linalg::Tile& acc, linalg::Tile&& v) {
          total_calls += 1;
          if (wp->rank() == 0) owner_calls += 1;
          auto& a = acc.data();
          const auto& b = v.data();
          for (std::size_t i = 0; i < a.size(); ++i) a[i] += b[i];
        },
        ranks);
    red->set_keymap([](const Int1&) { return 0; });
    double checksum = 0.0;
    auto sink = make_sink(world, out_e,
                          [&](const Int1&, linalg::Tile& t) { checksum = t.norm(); });
    sink->set_keymap([](const Int1&) { return 0; });
    make_graph_executable(*prod);
    make_graph_executable(*red);
    make_graph_executable(*sink);
    for (int r = 0; r < ranks; ++r) prod->invoke(Int1{r}, Void{});
    world.fence();
    trace.finish(world, name, world.engine().now());
    RedArm a;
    a.name = name;
    a.arity = arity;
    a.rpn = rpn;
    a.completion = world.engine().now();
    a.owner_recv_busy = world.network().nic_recv_busy(0);
    a.owner_reduce_calls = owner_calls;
    a.total_reduce_calls = total_calls;
    const auto& cs = world.comm().stats();
    a.reduce_forwards = cs.reduce_forwards;
    a.reduce_combines = cs.reduce_combines;
    a.intra_hops = cs.intra_node_hops;
    a.inter_hops = cs.inter_node_hops;
    a.checksum = checksum;
    return a;
  };

  std::vector<RedArm> reds;
  reds.push_back(fan_run("flat", 0, 1));
  reds.push_back(fan_run("tree-k2", 2, 1));
  reds.push_back(fan_run("tree-k4", 4, 1));
  reds.push_back(fan_run("tree-k4-topo", 4, 8));

  support::Table rt_table(
      "single-owner streaming reduction: " + std::to_string(ranks) +
          " contributions of " + std::to_string(dim) + "^2 doubles -> rank 0",
      {"arm", "completion [s]", "owner recv busy [s]", "owner calls", "fwds",
       "combines", "intra", "inter"});
  for (const auto& a : reds)
    rt_table.add_row({a.name, support::fmt(a.completion, 5),
                      support::fmt(a.owner_recv_busy, 5),
                      std::to_string(a.owner_reduce_calls),
                      std::to_string(a.reduce_forwards),
                      std::to_string(a.reduce_combines),
                      std::to_string(a.intra_hops), std::to_string(a.inter_hops)});
  rt_table.print();

  for (const auto& a : reds)
    TTG_REQUIRE(a.checksum == reds[0].checksum,
                "reduction result must be routing-invariant");

  // --- bspmm: streaming C accumulation under real traffic ---
  sparse::YukawaParams p;
  p.natoms = static_cast<int>(cli.get_int("natoms"));
  p.max_tile = 256;
  p.threshold = 1e-8;
  p.box = 240.0;
  p.ghost = true;
  auto mat = sparse::yukawa_matrix(p);

  auto bspmm_run = [&](const char* name, int arity) {
    rt::WorldConfig cfg;
    cfg.machine = m;
    cfg.nranks = ranks;
    cfg.reduce_tree_arity = arity;
    trace.apply(cfg);
    rt::World world(cfg);
    trace.attach(world);
    apps::bspmm::Options opt;
    opt.collect = false;
    auto res = apps::bspmm::run(world, mat, mat, opt);
    trace.finish(world, std::string("bspmm-") + name, res.makespan);
    BspmmArm a;
    a.name = name;
    a.arity = arity;
    a.makespan = res.makespan;
    a.gflops = res.gflops;
    const auto& cs = world.comm().stats();
    a.reduce_forwards = cs.reduce_forwards;
    a.reduce_combines = cs.reduce_combines;
    return a;
  };

  std::vector<BspmmArm> bs;
  bs.push_back(bspmm_run("flat", 0));
  bs.push_back(bspmm_run("tree-k4", 4));

  support::Table bt("bspmm (" + std::to_string(p.natoms) + " atoms, " +
                        std::to_string(ranks) + " ranks): C accumulation",
                    {"arm", "time [s]", "GFLOP/s", "fwds", "combines"});
  for (const auto& a : bs)
    bt.add_row({a.name, support::fmt(a.makespan, 4), support::fmt(a.gflops, 0),
                std::to_string(a.reduce_forwards),
                std::to_string(a.reduce_combines)});
  bt.print();
  TTG_REQUIRE(bs[0].makespan == bs[1].makespan,
              "bspmm (owner-local accumulation) must be routing-invariant");

  const RedArm& flat = reds[0];
  const RedArm& k4 = reds[2];
  std::printf(
      "fan-in, tree-k4 vs flat: owner recv busy %.5fs -> %.5fs (%.1fx less),\n"
      "owner reducer calls %llu -> %llu, completion %.5fs -> %.5fs (%.2fx)\n",
      flat.owner_recv_busy, k4.owner_recv_busy,
      k4.owner_recv_busy > 0 ? flat.owner_recv_busy / k4.owner_recv_busy : 0.0,
      static_cast<unsigned long long>(flat.owner_reduce_calls),
      static_cast<unsigned long long>(k4.owner_reduce_calls), flat.completion,
      k4.completion, k4.completion > 0 ? flat.completion / k4.completion : 0.0);
  if (!json_path.empty()) {
    write_json(json_path, ranks, dim, reds, bs);
    std::printf("# json: wrote %s (%zu+%zu arms)\n", json_path.c_str(), reds.size(),
                bs.size());
  }
  std::printf(
      "expected: flat funnels every contribution through the owner's receive\n"
      "NIC (R-1 deliveries, R-1 reducer calls); the reduction tree combines\n"
      "partials at interior ranks so the owner sees <= arity of each, and the\n"
      "topology-aware layout converts most hops to intra-node links.\n");
  return 0;
}
