// Fig. 5: weak scaling of tiled Cholesky (POTRF) on Hawk.
// Paper: each node holds a 30k^2 submatrix, tile 512^2, nodes 1..64+;
// series TTG/PaRSEC, TTG/MADNESS, DPLASMA, Chameleon, SLATE, ScaLAPACK.
// Expected shape: the task-based group (TTG x2, DPLASMA, Chameleon) grows
// strongly and nearly overlaps (Chameleon slightly trailing); ScaLAPACK
// and SLATE form a clearly separated slow-growing group.
#include <cmath>
#include <cstdio>
#include <string>
#include <vector>

#include "apps/cholesky/cholesky_ttg.hpp"
#include "baselines/bsp_cholesky.hpp"
#include "baselines/chameleon_like.hpp"
#include "baselines/dplasma_like.hpp"
#include "bench_common.hpp"
#include "runtime/trace_session.hpp"
#include "ttg/ttg.hpp"

using namespace ttg;

namespace {

/// One TTG configuration's deterministic outcome (drives the CI perf gate:
/// simulated makespan and message counts are bit-reproducible, unlike
/// wall-clock).
struct TtgPoint {
  int nodes = 0;
  int matrix = 0;
  const char* backend = "";
  double gflops = 0.0;
  double makespan = 0.0;
  std::uint64_t messages = 0;
  std::uint64_t splitmd_sends = 0;
  std::uint64_t serializations = 0;   ///< archive passes over payloads
  std::uint64_t serialize_hits = 0;   ///< sends served from the DataCopy cache
  std::uint64_t broadcast_forwards = 0; ///< tree hops re-injected by interior ranks
  std::uint64_t am_batches = 0;         ///< coalesced eager-AM flushes
  std::uint64_t batched_msgs = 0;       ///< member AMs those flushes carried
  std::uint64_t reduce_forwards = 0;    ///< combined partials sent up reduction trees
  std::uint64_t reduce_combines = 0;    ///< incoming partials absorbed into accumulators
  std::uint64_t intra_node_hops = 0;    ///< tree hops whose endpoints share a node
  std::uint64_t inter_node_hops = 0;    ///< tree hops crossing a node boundary
  std::uint64_t steals_local = 0;       ///< same-socket deque steals (0 if off)
  std::uint64_t steals_remote = 0;      ///< cross-socket deque steals (0 if off)
  std::uint64_t steal_fail = 0;         ///< steal scans finding every deque empty
};

/// Scheduler/placement knobs shared by all points of one invocation.
struct SchedOpts {
  KeymapKind keymap = KeymapKind::Cyclic;
  bool steal = false;
  int rpn = 1;    ///< ranks per node (keymap + tree-layout topology)
  int lanes = -1; ///< engine lanes; -1 = serial up to 64 ranks, sharded above
};

TtgPoint ttg_run(const sim::MachineModel& m, int nodes, int n, int bs,
                 rt::BackendKind backend, const SchedOpts& so,
                 const rt::TraceSession& trace) {
  auto ghost = linalg::ghost_matrix(n, bs);
  rt::WorldConfig cfg;
  cfg.machine = m;
  cfg.nranks = nodes;
  cfg.backend = backend;
  cfg.work_stealing = so.steal;
  cfg.ranks_per_node = so.rpn;
  // Past 64 ranks the serial reference engine gets slow; shard the event
  // queue (bit-identical to serial, tests/test_scale_equiv.cpp).
  cfg.engine_lanes = so.lanes >= 0 ? so.lanes : (nodes > 64 ? 8 : 0);
  trace.apply(cfg);
  rt::World world(cfg);
  trace.attach(world);
  apps::cholesky::Options opt;
  opt.collect = false;
  opt.keymap = so.keymap;
  auto res = apps::cholesky::run(world, ghost, opt);
  trace.finish(world,
               std::string(rt::to_string(backend)) + "-" + std::to_string(nodes) +
                   "nodes",
               res.makespan);
  const auto& cs = world.comm().stats();
  rt::StealStats ss;
  for (int r = 0; r < world.nranks(); ++r) {
    const auto& s = world.scheduler(r).steal_stats();
    ss.steals_local += s.steals_local;
    ss.steals_remote += s.steals_remote;
    ss.steal_fail += s.steal_fail;
  }
  return TtgPoint{nodes,
                  n,
                  rt::to_string(backend),
                  res.gflops,
                  res.makespan,
                  cs.messages,
                  cs.splitmd_sends,
                  cs.serializations,
                  cs.serialize_hits,
                  cs.broadcast_forwards,
                  cs.am_batches,
                  cs.batched_msgs,
                  cs.reduce_forwards,
                  cs.reduce_combines,
                  cs.intra_node_hops,
                  cs.inter_node_hops,
                  ss.steals_local,
                  ss.steals_remote,
                  ss.steal_fail};
}

void write_json(const std::string& path, int per_node, int bs,
                const std::vector<TtgPoint>& points) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  TTG_REQUIRE(f != nullptr, "cannot open --json output file: " + path);
  std::fprintf(f, "{\"bench\":\"fig5_potrf_weak\",\"per_node\":%d,\"bs\":%d,", per_node,
               bs);
  std::fprintf(f, "\"points\":[");
  for (std::size_t i = 0; i < points.size(); ++i) {
    const auto& p = points[i];
    std::fprintf(f,
                 "%s\n{\"nodes\":%d,\"matrix\":%d,\"backend\":\"%s\","
                 "\"gflops\":%.17g,\"makespan\":%.17g,\"messages\":%llu,"
                 "\"splitmd_sends\":%llu,\"serializations\":%llu,"
                 "\"serialize_hits\":%llu,\"broadcast_forwards\":%llu,"
                 "\"am_batches\":%llu,\"batched_msgs\":%llu,"
                 "\"reduce_forwards\":%llu,\"reduce_combines\":%llu,"
                 "\"intra_node_hops\":%llu,\"inter_node_hops\":%llu,"
                 "\"steals_local\":%llu,\"steals_remote\":%llu,"
                 "\"steal_fail\":%llu}",
                 i ? "," : "", p.nodes, p.matrix, p.backend, p.gflops, p.makespan,
                 static_cast<unsigned long long>(p.messages),
                 static_cast<unsigned long long>(p.splitmd_sends),
                 static_cast<unsigned long long>(p.serializations),
                 static_cast<unsigned long long>(p.serialize_hits),
                 static_cast<unsigned long long>(p.broadcast_forwards),
                 static_cast<unsigned long long>(p.am_batches),
                 static_cast<unsigned long long>(p.batched_msgs),
                 static_cast<unsigned long long>(p.reduce_forwards),
                 static_cast<unsigned long long>(p.reduce_combines),
                 static_cast<unsigned long long>(p.intra_node_hops),
                 static_cast<unsigned long long>(p.inter_node_hops),
                 static_cast<unsigned long long>(p.steals_local),
                 static_cast<unsigned long long>(p.steals_remote),
                 static_cast<unsigned long long>(p.steal_fail));
  }
  std::fprintf(f, "\n]}\n");
  std::fclose(f);
}

}  // namespace

int main(int argc, char** argv) {
  support::Cli cli("fig5_potrf_weak", "POTRF weak scaling on Hawk (Fig. 5)");
  cli.option("per-node", "8192", "submatrix dimension per node (paper: 30000)");
  cli.option("bs", "512", "tile size");
  cli.option("max-nodes", "64", "largest node count to run (CI uses a small cap; "
                                "up to 256 supported via sharded engine lanes)");
  cli.option("json", "", "write deterministic results (makespan, message counts) "
                         "as JSON to this path");
  cli.option("keymap", "cyclic", "tile placement: cyclic|node2d|node-aware");
  cli.option("rpn", "1", "ranks per node (drives node-aware keymaps + tree layout)");
  cli.option("lanes", "-1", "event-engine lanes (-1: serial up to 64 ranks)");
  cli.flag("steal", "enable the work-stealing intra-node scheduler");
  cli.flag("full", "paper-scale submatrix (30k per node; slow)");
  rt::TraceSession::add_options(cli);
  if (!cli.parse(argc, argv)) return 0;
  const rt::TraceSession trace(cli);
  const int per_node = cli.get_flag("full") ? 30000
                                            : static_cast<int>(cli.get_int("per-node"));
  const int bs = static_cast<int>(cli.get_int("bs"));
  const int max_nodes = static_cast<int>(cli.get_int("max-nodes"));
  const std::string json_path = cli.get("json");
  SchedOpts so;
  so.keymap = keymap_from_string(cli.get("keymap"));
  so.steal = cli.get_flag("steal");
  so.rpn = static_cast<int>(cli.get_int("rpn"));
  so.lanes = static_cast<int>(cli.get_int("lanes"));
  const auto m = sim::hawk();

  bench::preamble("Fig. 5: POTRF weak scaling (GFLOP/s), Hawk",
                  "30k^2 per node, 512^2 tiles, 60 threads/node",
                  std::to_string(per_node) + "^2 per node, " + std::to_string(bs) +
                      "^2 tiles (scaled; shapes preserved)");

  support::Table t("Fig. 5 (GFLOP/s vs nodes)",
                   {"nodes", "matrix", "TTG/PaRSEC", "TTG/MADNESS", "DPLASMA",
                    "Chameleon", "SLATE", "ScaLAPACK"});
  std::vector<TtgPoint> points;
  for (int nodes : {1, 2, 4, 8, 16, 32, 64, 128, 256}) {
    if (nodes > max_nodes) break;
    const int n =
        static_cast<int>(std::lround(per_node * std::sqrt(static_cast<double>(nodes)) /
                                     bs)) * bs;  // round to whole tiles
    auto ghost = linalg::ghost_matrix(n, bs);
    const TtgPoint p_parsec =
        ttg_run(m, nodes, n, bs, rt::BackendKind::Parsec, so, trace);
    const TtgPoint p_mad =
        ttg_run(m, nodes, n, bs, rt::BackendKind::Madness, so, trace);
    points.push_back(p_parsec);
    points.push_back(p_mad);
    const double g_parsec = p_parsec.gflops;
    const double g_mad = p_mad.gflops;
    const double g_dpl = baselines::run_dplasma_cholesky(m, nodes, ghost).gflops;
    const double g_cha =
        baselines::run_chameleon_cholesky(m, nodes, ghost).gflops;
    const double g_sla =
        baselines::run_bsp_cholesky(m, nodes, n, bs, baselines::BspVariant::Slate)
            .gflops;
    const double g_sca =
        baselines::run_bsp_cholesky(m, nodes, n, bs, baselines::BspVariant::ScaLapack)
            .gflops;
    t.add_row({std::to_string(nodes), std::to_string(n), support::fmt(g_parsec, 0),
               support::fmt(g_mad, 0), support::fmt(g_dpl, 0), support::fmt(g_cha, 0),
               support::fmt(g_sla, 0), support::fmt(g_sca, 0)});
  }
  t.print();
  if (!json_path.empty()) {
    write_json(json_path, per_node, bs, points);
    std::printf("# json: wrote %s (%zu points)\n", json_path.c_str(), points.size());
  }
  std::printf(
      "expected shape: task-based group (TTG/PaRSEC ~ DPLASMA >= Chameleon, with\n"
      "TTG/MADNESS close) well above the BSP group (SLATE ~ ScaLAPACK).\n");
  return 0;
}
