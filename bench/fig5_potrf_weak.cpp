// Fig. 5: weak scaling of tiled Cholesky (POTRF) on Hawk.
// Paper: each node holds a 30k^2 submatrix, tile 512^2, nodes 1..64+;
// series TTG/PaRSEC, TTG/MADNESS, DPLASMA, Chameleon, SLATE, ScaLAPACK.
// Expected shape: the task-based group (TTG x2, DPLASMA, Chameleon) grows
// strongly and nearly overlaps (Chameleon slightly trailing); ScaLAPACK
// and SLATE form a clearly separated slow-growing group.
#include <cmath>
#include <vector>

#include "apps/cholesky/cholesky_ttg.hpp"
#include "baselines/bsp_cholesky.hpp"
#include "baselines/chameleon_like.hpp"
#include "baselines/dplasma_like.hpp"
#include "bench_common.hpp"
#include "runtime/trace_session.hpp"
#include "ttg/ttg.hpp"

using namespace ttg;

namespace {

double ttg_run(const sim::MachineModel& m, int nodes, int n, int bs,
               rt::BackendKind backend, const rt::TraceSession& trace) {
  auto ghost = linalg::ghost_matrix(n, bs);
  rt::WorldConfig cfg;
  cfg.machine = m;
  cfg.nranks = nodes;
  cfg.backend = backend;
  rt::World world(cfg);
  trace.attach(world);
  apps::cholesky::Options opt;
  opt.collect = false;
  auto res = apps::cholesky::run(world, ghost, opt);
  trace.finish(world,
               std::string(rt::to_string(backend)) + "-" + std::to_string(nodes) +
                   "nodes",
               res.makespan);
  return res.gflops;
}

}  // namespace

int main(int argc, char** argv) {
  support::Cli cli("fig5_potrf_weak", "POTRF weak scaling on Hawk (Fig. 5)");
  cli.option("per-node", "8192", "submatrix dimension per node (paper: 30000)");
  cli.option("bs", "512", "tile size");
  cli.flag("full", "paper-scale submatrix (30k per node; slow)");
  rt::TraceSession::add_options(cli);
  if (!cli.parse(argc, argv)) return 0;
  const rt::TraceSession trace(cli);
  const int per_node = cli.get_flag("full") ? 30000
                                            : static_cast<int>(cli.get_int("per-node"));
  const int bs = static_cast<int>(cli.get_int("bs"));
  const auto m = sim::hawk();

  bench::preamble("Fig. 5: POTRF weak scaling (GFLOP/s), Hawk",
                  "30k^2 per node, 512^2 tiles, 60 threads/node",
                  std::to_string(per_node) + "^2 per node, " + std::to_string(bs) +
                      "^2 tiles (scaled; shapes preserved)");

  support::Table t("Fig. 5 (GFLOP/s vs nodes)",
                   {"nodes", "matrix", "TTG/PaRSEC", "TTG/MADNESS", "DPLASMA",
                    "Chameleon", "SLATE", "ScaLAPACK"});
  for (int nodes : {1, 2, 4, 8, 16, 32, 64}) {
    const int n =
        static_cast<int>(std::lround(per_node * std::sqrt(static_cast<double>(nodes)) /
                                     bs)) * bs;  // round to whole tiles
    auto ghost = linalg::ghost_matrix(n, bs);
    const double g_parsec = ttg_run(m, nodes, n, bs, rt::BackendKind::Parsec, trace);
    const double g_mad = ttg_run(m, nodes, n, bs, rt::BackendKind::Madness, trace);
    const double g_dpl = baselines::run_dplasma_cholesky(m, nodes, ghost).gflops;
    const double g_cha =
        baselines::run_chameleon_cholesky(m, nodes, ghost).gflops;
    const double g_sla =
        baselines::run_bsp_cholesky(m, nodes, n, bs, baselines::BspVariant::Slate)
            .gflops;
    const double g_sca =
        baselines::run_bsp_cholesky(m, nodes, n, bs, baselines::BspVariant::ScaLapack)
            .gflops;
    t.add_row({std::to_string(nodes), std::to_string(n), support::fmt(g_parsec, 0),
               support::fmt(g_mad, 0), support::fmt(g_dpl, 0), support::fmt(g_cha, 0),
               support::fmt(g_sla, 0), support::fmt(g_sca, 0)});
  }
  t.print();
  std::printf(
      "expected shape: task-based group (TTG/PaRSEC ~ DPLASMA >= Chameleon, with\n"
      "TTG/MADNESS close) well above the BSP group (SLATE ~ ScaLAPACK).\n");
  return 0;
}
