// Shared helpers for the per-figure benchmark binaries.
//
// Every binary regenerates one table/figure of the paper. Because the
// simulated cluster runs on one host core, default problem sizes are
// scaled down from the paper's (the scale is printed with each table);
// pass --full for paper-scale parameters when you have the patience.
// Shapes — who wins, by what factor, where crossovers fall — are the
// reproduction target, not absolute GFLOP/s (see EXPERIMENTS.md).
#pragma once

#include <cstdio>
#include <string>

#include "sim/machine.hpp"
#include "support/cli.hpp"
#include "support/table.hpp"

namespace ttg::bench {

inline sim::MachineModel machine_by_name(const std::string& name) {
  if (name == "seawulf") return sim::seawulf();
  return sim::hawk();
}

/// Print the standard preamble: which figure, which machine, which scale.
inline void preamble(const char* figure, const char* paper_setup,
                     const std::string& this_setup) {
  std::printf("# %s\n# paper setup: %s\n# this run:    %s\n\n", figure, paper_setup,
              this_setup.c_str());
}

/// "n/a" helper for series that cannot run at a configuration.
inline std::string na() { return "n/a"; }

}  // namespace ttg::bench
