// Block-sparse matrix squaring (the paper's Section III-D application) on a
// synthetic screened-operator matrix: builds the protease-like block
// structure, runs the Fig. 10 flowgraph with both feedback loops, verifies
// against a reference multiply, and prints the structure report (Fig. 11).
//
//   $ ./examples/bspmm_demo [--natoms 80] [--nranks 4]
#include <cstdio>

#include "apps/bspmm/bspmm_ttg.hpp"
#include "runtime/trace_session.hpp"
#include "sparse/yukawa_gen.hpp"
#include "support/cli.hpp"
#include "ttg/ttg.hpp"

int main(int argc, char** argv) {
  using namespace ttg;
  support::Cli cli("bspmm_demo", "TTG block-sparse GEMM on a screened operator");
  cli.option("natoms", "80", "atoms in the synthetic cluster");
  cli.option("max-tile", "64", "tile size cap");
  cli.option("nranks", "4", "simulated cluster size");
  cli.option("read-window", "32", "in-flight remote broadcasts (feedback loop 1)");
  cli.option("k-window", "4", "k-steps per Coordinator phase (feedback loop 2)");
  rt::TraceSession::add_options(cli);
  if (!cli.parse(argc, argv)) return 0;
  const rt::TraceSession trace(cli);

  sparse::YukawaParams p;
  p.natoms = static_cast<int>(cli.get_int("natoms"));
  p.max_tile = static_cast<int>(cli.get_int("max-tile"));
  p.box = 120.0;
  p.threshold = 1e-5;
  auto a = sparse::yukawa_matrix(p);
  std::printf("%s", sparse::structure_report(a).c_str());

  auto ref = sparse::multiply_reference(a, a);

  WorldConfig cfg;
  cfg.machine = sim::hawk();
  cfg.nranks = static_cast<int>(cli.get_int("nranks"));
  trace.apply(cfg);
  World world(cfg);
  trace.attach(world);
  apps::bspmm::Options opt;
  opt.read_window = static_cast<int>(cli.get_int("read-window"));
  opt.k_window = static_cast<int>(cli.get_int("k-window"));
  auto res = apps::bspmm::run(world, a, a, opt);
  trace.finish(world, "", res.makespan);

  double err = 0.0;
  for (auto [i, j] : ref.nonzeros()) {
    if (!res.c.has(i, j)) {
      std::fprintf(stderr, "missing block C(%d,%d)\n", i, j);
      return 1;
    }
    err = std::max(err, ref.at(i, j).max_abs_diff(res.c.at(i, j)));
  }
  std::printf(
      "C = A*A: %llu MultiplyAdd tasks, makespan %.3f ms, %.1f GFLOP/s, "
      "max |err| %.2e\n",
      static_cast<unsigned long long>(res.tasks), res.makespan * 1e3, res.gflops,
      err);
  if (err > 1e-10) {
    std::fprintf(stderr, "VERIFICATION FAILED\n");
    return 1;
  }
  std::printf("verified against the reference block-sparse multiply\n");
  return 0;
}
