// Wavefront dynamic programming with TTG: blocked longest-common-
// subsequence. A classic control+data-flow pattern distinct from the
// paper's four benchmarks: block (i,j) consumes the bottom border of its
// upper neighbor and the right border of its left neighbor (the diagonal
// corner rides along with the top border), so tasks become ready along
// anti-diagonal wavefronts that the runtime discovers dynamically.
//
// Also demonstrates the execution tracer: per-template task counts, times,
// and worker utilization (PaRSEC-style profiling).
//
//   $ ./examples/wavefront_lcs [--n 512] [--bs 64] [--nranks 4]
#include <algorithm>
#include <cstdio>
#include <string>

#include "linalg/dist.hpp"
#include "runtime/trace_session.hpp"
#include "support/cli.hpp"
#include "support/rng.hpp"
#include "ttg/ttg.hpp"

namespace {

/// Border message: one row (or column) of DP values plus the corner cell.
struct Border {
  std::vector<int> v;
  int corner = 0;
  template <typename Ar>
  void serialize(Ar& ar) {
    ar& v& corner;
  }
};

/// Reference scalar LCS table value at (n-1, n-1).
int lcs_reference(const std::string& a, const std::string& b) {
  const std::size_t n = a.size();
  std::vector<int> prev(n + 1, 0), cur(n + 1, 0);
  for (std::size_t i = 1; i <= n; ++i) {
    for (std::size_t j = 1; j <= n; ++j) {
      cur[j] = a[i - 1] == b[j - 1] ? prev[j - 1] + 1
                                    : std::max(prev[j], cur[j - 1]);
    }
    std::swap(prev, cur);
  }
  return prev[n];
}

}  // namespace

int main(int argc, char** argv) {
  using namespace ttg;
  support::Cli cli("wavefront_lcs", "blocked LCS as a TTG wavefront");
  cli.option("n", "512", "string length");
  cli.option("bs", "64", "block size");
  cli.option("nranks", "4", "simulated cluster size");
  rt::TraceSession::add_options(cli);
  if (!cli.parse(argc, argv)) return 0;
  const rt::TraceSession trace(cli);
  const int n = static_cast<int>(cli.get_int("n"));
  const int bs = static_cast<int>(cli.get_int("bs"));
  const int nb = (n + bs - 1) / bs;

  support::Rng rng(13);
  std::string a(static_cast<std::size_t>(n), ' '), b = a;
  for (auto& c : a) c = static_cast<char>('A' + rng.uniform_int(0, 3));
  for (auto& c : b) c = static_cast<char>('A' + rng.uniform_int(0, 3));

  WorldConfig cfg;
  cfg.machine = sim::hawk();
  cfg.nranks = static_cast<int>(cli.get_int("nranks"));
  trace.apply(cfg);
  World world(cfg);
  world.enable_tracing();

  Edge<Int2, Border> top("top"), left("left");
  Edge<Int2, int> result("result");

  linalg::BlockCyclic2D dist = linalg::BlockCyclic2D::make(world.nranks());

  auto block_fn = [&, nb, bs](const Int2& key, Border& t, Border& l,
                              std::tuple<Out<Int2, Border>, Out<Int2, Border>,
                                         Out<Int2, int>>& out) {
    const auto [bi, bj] = key;
    const int rows = std::min(bs, n - bi * bs);
    const int cols = std::min(bs, n - bj * bs);
    // Local DP over this block, seeded from the incoming borders.
    std::vector<std::vector<int>> h(static_cast<std::size_t>(rows) + 1,
                                    std::vector<int>(static_cast<std::size_t>(cols) + 1));
    h[0][0] = t.corner;
    for (int j = 1; j <= cols; ++j) h[0][static_cast<std::size_t>(j)] = t.v[static_cast<std::size_t>(j - 1)];
    for (int i = 1; i <= rows; ++i) h[static_cast<std::size_t>(i)][0] = l.v[static_cast<std::size_t>(i - 1)];
    for (int i = 1; i <= rows; ++i) {
      for (int j = 1; j <= cols; ++j) {
        const char ca = a[static_cast<std::size_t>(bi * bs + i - 1)];
        const char cb = b[static_cast<std::size_t>(bj * bs + j - 1)];
        auto& hi = h[static_cast<std::size_t>(i)];
        const auto& hp = h[static_cast<std::size_t>(i) - 1];
        hi[static_cast<std::size_t>(j)] =
            ca == cb ? hp[static_cast<std::size_t>(j) - 1] + 1
                     : std::max(hp[static_cast<std::size_t>(j)],
                                hi[static_cast<std::size_t>(j) - 1]);
      }
    }
    if (bi + 1 < nb) {
      Border down;
      down.v.assign(h[static_cast<std::size_t>(rows)].begin() + 1,
                    h[static_cast<std::size_t>(rows)].end());
      down.corner = l.v[static_cast<std::size_t>(rows) - 1];  // corner for (bi+1, bj)
      ttg::send<0>(Int2{bi + 1, bj}, std::move(down), out);
    }
    if (bj + 1 < nb) {
      Border right;
      right.v.resize(static_cast<std::size_t>(rows));
      for (int i = 1; i <= rows; ++i)
        right.v[static_cast<std::size_t>(i - 1)] = h[static_cast<std::size_t>(i)][static_cast<std::size_t>(cols)];
      right.corner = 0;
      ttg::send<1>(Int2{bi, bj + 1}, std::move(right), out);
    }
    if (bi == nb - 1 && bj == nb - 1) {
      ttg::send<2>(Int2{bi, bj}, h[static_cast<std::size_t>(rows)][static_cast<std::size_t>(cols)], out);
    }
  };
  auto block_tt = make_tt(world, block_fn, edges(top, left),
                          edges(top, left, result), "LCSBlock");
  block_tt->set_keymap([dist](const Int2& k) { return dist.owner(k.i, k.j); });
  block_tt->set_priomap([nb](const Int2& k) { return 2 * nb - k.i - k.j; });
  block_tt->set_costmap([&](const Int2&, const Border&, const Border&) {
    return world.machine().flops_time(3.0 * bs * bs, 0.2);
  });
  make_graph_executable(*block_tt);

  // Inject the zero borders of row 0 and column 0.
  for (int j = 0; j < nb; ++j) {
    Border t;
    t.v.assign(static_cast<std::size_t>(std::min(bs, n - j * bs)), 0);
    Border dummy_l;  // only (i,0) blocks get a real left border injected
    if (j == 0) {
      dummy_l.v.assign(static_cast<std::size_t>(std::min(bs, n)), 0);
      block_tt->invoke(Int2{0, 0}, std::move(t), std::move(dummy_l));
      continue;
    }
    world.run_as(block_tt->keymap(Int2{0, j}), [&] {
      block_tt->out<0>().send(Int2{0, j}, std::move(t));
    });
  }
  for (int i = 1; i < nb; ++i) {
    Border l;
    l.v.assign(static_cast<std::size_t>(std::min(bs, n - i * bs)), 0);
    world.run_as(block_tt->keymap(Int2{i, 0}), [&] {
      block_tt->out<1>().send(Int2{i, 0}, std::move(l));
    });
  }

  int lcs = -1;
  auto sink = make_sink(world, result, [&](const Int2&, int& v) { lcs = v; });
  make_graph_executable(*sink);

  const double makespan = world.fence();
  const int ref = lcs_reference(a, b);
  std::printf("blocked LCS over %dx%d blocks: %d (reference %d)\n", nb, nb, lcs, ref);
  std::printf("virtual makespan: %.3f ms on %d ranks\n", makespan * 1e3,
              world.nranks());
  std::printf("\nexecution trace:\n%s", world.tracer().summary_table().c_str());
  std::printf("worker utilization: %.1f%%\n",
              100.0 * world.tracer().utilization(world.nranks(),
                                                 world.workers_per_rank(), makespan));
  trace.finish(world, "", makespan);
  return lcs == ref ? 0 : 1;
}
