// Quickstart: the smallest complete TTG program.
//
// Builds a three-node flowgraph that squares numbers and sums the results
// over a 4-rank simulated cluster:
//
//   GENERATE --> SQUARE --> SUM (streaming reduction)
//
// Demonstrates: typed edges, make_tt, keymaps, ttg::send, a streaming
// terminal with an input reducer, and fence() for global termination.
//
//   $ ./examples/quickstart [--nranks 4] [--count 32]
#include <cstdio>

#include "runtime/trace_session.hpp"
#include "support/cli.hpp"
#include "ttg/ttg.hpp"

int main(int argc, char** argv) {
  using namespace ttg;
  support::Cli cli("quickstart", "smallest complete TTG program");
  cli.option("nranks", "4", "simulated cluster size");
  cli.option("count", "32", "how many numbers to push through the graph");
  cli.option("backend", "parsec", "parsec | madness");
  rt::TraceSession::add_options(cli);
  if (!cli.parse(argc, argv)) return 0;
  const rt::TraceSession trace(cli);
  const int nranks = static_cast<int>(cli.get_int("nranks"));
  const int count = static_cast<int>(cli.get_int("count"));

  WorldConfig cfg;
  cfg.machine = sim::hawk();
  cfg.nranks = nranks;
  cfg.backend =
      cli.get("backend") == "madness" ? BackendKind::Madness : BackendKind::Parsec;
  trace.apply(cfg);
  World world(cfg);
  trace.attach(world);

  // Edges are strongly typed: (task ID, data).
  Edge<Int1, long> numbers("numbers");
  Edge<Int1, long> squares("squares");

  // SQUARE: one task per number, placed round-robin by the keymap.
  auto square = make_tt(
      world,
      [](const Int1& /*key*/, long& x, std::tuple<Out<Int1, long>>& out) {
        ttg::send<0>(Int1{0}, x * x, out);  // all results stream to task 0 of SUM
      },
      edges(numbers), edges(squares), "square");
  square->set_keymap([nranks](const Int1& k) { return k.i % nranks; });
  square->set_costmap([](const Int1&, const long&) { return 1e-6; });

  // SUM: a streaming terminal reduces `count` messages into one input.
  long total = 0;
  auto sum = make_tt(
      world, [&](const Int1&, long& acc, std::tuple<>&) { total = acc; },
      edges(squares), std::tuple<>{}, "sum");
  sum->set_input_reducer<0>([](long& acc, long&& next) { acc += next; }, count);
  sum->set_keymap([](const Int1&) { return 0; });

  make_graph_executable(*square);
  make_graph_executable(*sum);

  for (int i = 1; i <= count; ++i) square->invoke(Int1{i}, long{i});
  const double makespan = world.fence();

  const long expect = static_cast<long>(count) * (count + 1) * (2 * count + 1) / 6;
  std::printf("sum of squares 1..%d = %ld (expected %ld)\n", count, total, expect);
  std::printf("virtual makespan on %d ranks (%s backend): %.2f us\n", nranks,
              rt::to_string(cfg.backend), makespan * 1e6);
  std::printf("tasks executed: %llu square + %llu sum\n",
              static_cast<unsigned long long>(square->tasks_executed()),
              static_cast<unsigned long long>(sum->tasks_executed()));
  trace.finish(world, "", makespan);
  return total == expect ? 0 : 1;
}
