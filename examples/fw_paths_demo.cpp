// All-pairs shortest paths on a random road-network-like graph using the
// TTG Floyd-Warshall implementation (Section III-C), with verification
// against a scalar reference and a comparison with the MPI+OpenMP
// fork-join comparator at the same node count.
//
//   $ ./examples/fw_paths_demo [--vertices 128] [--bs 32] [--nranks 4]
#include <cstdio>

#include "apps/fw_apsp/fw_ttg.hpp"
#include "baselines/fw_mpi_omp.hpp"
#include "runtime/trace_session.hpp"
#include "support/cli.hpp"
#include "ttg/ttg.hpp"

int main(int argc, char** argv) {
  using namespace ttg;
  support::Cli cli("fw_paths_demo", "TTG all-pairs shortest paths");
  cli.option("vertices", "128", "number of graph vertices");
  cli.option("bs", "32", "tile size");
  cli.option("nranks", "4", "simulated cluster size (square for comparator)");
  cli.option("density", "0.15", "edge probability");
  rt::TraceSession::add_options(cli);
  if (!cli.parse(argc, argv)) return 0;
  const rt::TraceSession trace(cli);

  const int n = static_cast<int>(cli.get_int("vertices"));
  const int bs = static_cast<int>(cli.get_int("bs"));
  const int nranks = static_cast<int>(cli.get_int("nranks"));
  support::Rng rng(7);

  std::printf("random digraph: %d vertices, density %.2f\n", n,
              cli.get_double("density"));
  auto w0 = linalg::random_adjacency(rng, n, bs, cli.get_double("density"));
  auto ref = linalg::dense_fw(w0.to_dense());

  WorldConfig cfg;
  cfg.machine = sim::hawk();
  cfg.nranks = nranks;
  trace.apply(cfg);
  World world(cfg);
  trace.attach(world);
  auto res = apps::fw::run(world, w0);
  trace.finish(world, "", res.makespan);
  const double err = res.matrix.to_dense().max_abs_diff(ref);
  std::printf("TTG FW-APSP: %llu tasks, makespan %.3f ms, max |err| %.2e\n",
              static_cast<unsigned long long>(res.tasks), res.makespan * 1e3, err);
  if (err > 1e-12) {
    std::fprintf(stderr, "VERIFICATION FAILED\n");
    return 1;
  }

  // Count reachable pairs as a sanity statistic.
  auto d = res.matrix.to_dense();
  long reachable = 0;
  for (int i = 0; i < n; ++i)
    for (int j = 0; j < n; ++j)
      if (i != j && d(i, j) < linalg::kInf / 2) ++reachable;
  std::printf("reachable ordered pairs: %ld / %ld\n", reachable,
              static_cast<long>(n) * (n - 1));

  if (baselines::fw_mpi_omp_supports(nranks)) {
    auto omp = baselines::run_fw_mpi_omp(sim::hawk(), nranks, n, bs);
    std::printf("MPI+OpenMP comparator: makespan %.3f ms (%.2fx TTG)\n",
                omp.makespan * 1e3, omp.makespan / res.makespan);
  } else {
    std::printf("MPI+OpenMP comparator skipped: %d is not a square multiple of 2\n",
                nranks);
  }
  return 0;
}
