// Adaptive multiresolution analysis of 3-D Gaussians (Section III-E,
// Listing 3): project each function into the order-k multiwavelet basis on
// an adaptive dyadic tree, compress (fast wavelet transform, streaming
// 8-way reduction), reconstruct, and verify the norms against the analytic
// Gaussian norm — all streaming through one flowgraph with no barriers.
//
//   $ ./examples/mra_demo [--k 8] [--funcs 8] [--exponent 3e4] [--nranks 4]
#include <cmath>
#include <cstdio>

#include "apps/mra/mra_ttg.hpp"
#include "runtime/trace_session.hpp"
#include "support/cli.hpp"
#include "ttg/ttg.hpp"

int main(int argc, char** argv) {
  using namespace ttg;
  support::Cli cli("mra_demo", "adaptive multiwavelet representation of Gaussians");
  cli.option("k", "8", "multiwavelet order");
  cli.option("funcs", "8", "number of Gaussian functions");
  cli.option("exponent", "3e4", "Gaussian exponent (unit-cube coordinates)");
  cli.option("tol", "1e-7", "truncation threshold");
  cli.option("nranks", "4", "simulated cluster size");
  rt::TraceSession::add_options(cli);
  if (!cli.parse(argc, argv)) return 0;
  const rt::TraceSession trace(cli);

  const int nfuncs = static_cast<int>(cli.get_int("funcs"));
  auto fns = mra::random_gaussians(nfuncs, cli.get_double("exponent"), 2022);
  mra::MraContext ctx(static_cast<int>(cli.get_int("k")), fns);

  WorldConfig cfg;
  cfg.machine = sim::hawk();
  cfg.nranks = static_cast<int>(cli.get_int("nranks"));
  trace.apply(cfg);
  World world(cfg);
  trace.attach(world);
  apps::mra::Options opt;
  opt.tol = cli.get_double("tol");
  auto res = apps::mra::run(world, ctx, opt);
  trace.finish(world, "", res.makespan);

  std::printf("%d functions, %llu tree nodes, %llu tasks, makespan %.3f ms\n",
              nfuncs, static_cast<unsigned long long>(res.tree_nodes),
              static_cast<unsigned long long>(res.tasks), res.makespan * 1e3);
  std::printf("%4s %14s %14s %14s %10s\n", "fid", "analytic", "compressed",
              "reconstructed", "rel.err");
  double worst = 0.0;
  for (int f = 0; f < nfuncs; ++f) {
    const double analytic = fns[static_cast<std::size_t>(f)].norm2();
    const double nc = res.norm2_compressed.at(f);
    const double nr = res.norm2_reconstructed.at(f);
    const double rel = std::fabs(nc - analytic) / analytic;
    worst = std::max(worst, rel);
    std::printf("%4d %14.6e %14.6e %14.6e %10.2e\n", f, analytic, nc, nr, rel);
  }
  if (worst > 1e-3) {
    std::fprintf(stderr, "VERIFICATION FAILED (worst rel.err %.2e)\n", worst);
    return 1;
  }
  std::printf("verified: norms match the analytic Gaussian norm\n");
  return 0;
}
