// Dense tiled Cholesky factorization with TTG (the paper's Fig. 1 /
// Listing 1 application), end to end with real numerics:
//
//   1. generate a random SPD matrix,
//   2. factor it with the TTG POTRF graph on a simulated cluster,
//   3. verify A == L L^T against a dense reference factorization,
//   4. report virtual GFLOP/s on both backends.
//
//   $ ./examples/cholesky_demo [--n 256] [--bs 64] [--nranks 4]
#include <cstdio>

#include "apps/cholesky/cholesky_ttg.hpp"
#include "runtime/trace_session.hpp"
#include "support/cli.hpp"
#include "ttg/ttg.hpp"

int main(int argc, char** argv) {
  using namespace ttg;
  support::Cli cli("cholesky_demo", "TTG tiled Cholesky with verification");
  cli.option("n", "256", "matrix dimension");
  cli.option("bs", "64", "tile size");
  cli.option("nranks", "4", "simulated cluster size");
  cli.option("seed", "42", "RNG seed");
  rt::TraceSession::add_options(cli);
  if (!cli.parse(argc, argv)) return 0;
  const rt::TraceSession trace(cli);

  const int n = static_cast<int>(cli.get_int("n"));
  const int bs = static_cast<int>(cli.get_int("bs"));
  support::Rng rng(static_cast<std::uint64_t>(cli.get_int("seed")));

  std::printf("generating %dx%d SPD matrix in %dx%d tiles...\n", n, n, bs, bs);
  auto a = linalg::random_spd(rng, n, bs);
  auto ref = linalg::dense_cholesky(a.to_dense());

  for (auto backend : {BackendKind::Parsec, BackendKind::Madness}) {
    WorldConfig cfg;
    cfg.machine = sim::hawk();
    cfg.nranks = static_cast<int>(cli.get_int("nranks"));
    cfg.backend = backend;
    trace.apply(cfg);
    World world(cfg);
    trace.attach(world);
    auto res = apps::cholesky::run(world, a);
    trace.finish(world, rt::to_string(backend), res.makespan);
    const double err = res.matrix.to_dense().max_abs_diff(ref);
    std::printf(
        "backend %-7s: %llu tasks, makespan %.3f ms, %.1f GFLOP/s, max |err| %.2e\n",
        rt::to_string(backend), static_cast<unsigned long long>(res.tasks),
        res.makespan * 1e3, res.gflops, err);
    if (err > 1e-9) {
      std::fprintf(stderr, "VERIFICATION FAILED\n");
      return 1;
    }
  }
  std::printf("verified: A == L L^T on both backends\n");
  return 0;
}
